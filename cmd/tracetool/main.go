// Command tracetool records, inspects, and replays page-access traces —
// the workflow for evaluating prefetcher changes against captured fault
// behaviour instead of hand-written loops.
//
//	tracetool record  -workload quicksort -out qs.trace
//	tracetool analyze qs.trace
//	tracetool replay  qs.trace -prefetch trend -cache 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/trace"
	"dilos/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "analyze":
		analyze(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool record|analyze|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "seqread", "seqread | quicksort | redis-get")
	out := fs.String("out", "dilos.trace", "output file")
	pages := fs.Uint64("pages", 4096, "working-set pages")
	cache := fs.Float64("cache", 0.125, "local-memory fraction")
	fs.Parse(args)

	rec := trace.NewRecorder(0)
	eng := sim.New()
	frames := int(float64(*pages) * *cache)
	if frames < 96 {
		frames = 96
	}
	sys := core.New(eng, core.Config{
		CacheFrames: frames, Cores: 2, RemoteBytes: *pages*4096 + (128 << 20),
		Fabric: fabric.DefaultParams(), Prefetcher: prefetch.NewReadahead(0),
		Trace: rec,
	})
	sys.Start()
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		switch *workload {
		case "seqread":
			base, _ := sys.MmapDDC(*pages)
			workloads.SeqRead(sp, base, *pages)
		case "quicksort":
			n := *pages * 4096 / 8
			base, _ := sys.MmapDDC(*pages + 1)
			workloads.FillRandomU64(sp, base, n, 1)
			workloads.Quicksort(sp, base, n)
		case "redis-get":
			srv := redis.NewServer(sp)
			keys := int(*pages) / 2
			redis.PopulateGET(srv, keys, redis.SizeFixed(4096))
			redis.RunGET(sp, srv, keys, keys*2, redis.SizeFixed(4096), 1)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
	})
	eng.Run()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rec.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d events (%d dropped) from %s to %s\n",
		rec.Len(), rec.Dropped(), *workload, *out)
	printStats(rec.Analyze())
}

func loadFile(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return events
}

func analyze(args []string) {
	if len(args) < 1 {
		usage()
	}
	events := loadFile(args[0])
	rec := trace.NewRecorder(len(events) + 1)
	for _, e := range events {
		rec.Record(e.At, e.VPN, e.Kind)
	}
	fmt.Printf("%s: %d events over %d pages\n", args[0], len(events), trace.Span(events))
	printStats(rec.Analyze())
}

func printStats(st trace.Stats) {
	fmt.Printf("  major=%d minor=%d hit=%d write=%d unique-pages=%d\n",
		st.Counts[trace.Major], st.Counts[trace.Minor], st.Counts[trace.Hit],
		st.Counts[trace.Write], st.UniquePages)
	fmt.Printf("  sequential transitions: %.1f%%; top stride %d (%.1f%%)\n",
		100*st.SeqFraction, st.TopStride, 100*st.TopStrideFrac)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	pf := fs.String("prefetch", "readahead", "none | readahead | trend | leap")
	cache := fs.Float64("cache", 0.125, "local-memory fraction of the trace span")
	if len(args) < 1 {
		usage()
	}
	file := args[0]
	fs.Parse(args[1:])

	events := loadFile(file)
	span := trace.Span(events)
	var prefetcher prefetch.Prefetcher
	switch *pf {
	case "none":
	case "readahead":
		prefetcher = prefetch.NewReadahead(0)
	case "trend":
		prefetcher = prefetch.NewTrend()
	case "leap":
		prefetcher = prefetch.NewLeap()
	default:
		fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", *pf)
		os.Exit(2)
	}
	frames := int(float64(span) * *cache)
	if frames < 96 {
		frames = 96
	}
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames, Cores: 2, RemoteBytes: span*4096 + (128 << 20),
		Fabric: fabric.DefaultParams(), Prefetcher: prefetcher,
	})
	sys.Start()
	var elapsed sim.Time
	sys.Launch("replay", 0, func(sp *core.DDCProc) {
		base, _ := sys.MmapDDC(span + 1)
		t0 := sp.Now()
		trace.Replay(sp, base, events)
		elapsed = sp.Now() - t0
	})
	eng.Run()
	fmt.Printf("replayed %d events over %d pages with %s @ %.1f%% local: %v\n",
		len(events), span, *pf, *cache*100, elapsed)
	fmt.Printf("  major=%d minor=%d hits=%d prefetches=%d\n",
		sys.MajorFaults.N, sys.MinorFaults.N, sys.LateMapHits.N, sys.Prefetches.N)
}
