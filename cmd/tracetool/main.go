// Command tracetool records, inspects, and replays page-access traces —
// the workflow for evaluating prefetcher changes against captured fault
// behaviour instead of hand-written loops.
//
//	tracetool record   -workload quicksort -out qs.trace
//	tracetool analyze  qs.trace
//	tracetool stats    -top 20 qs.trace
//	tracetool replay   qs.trace -prefetch trend -cache 0.25
//	tracetool timeline -workload seqread -out timeline.json
//	tracetool timeline -check timeline.json
//	tracetool events   journal.jsonl -type slo_alert,breaker_trip
//	tracetool events   journal.jsonl -merge timeline.json -out merged.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
	"dilos/internal/trace"
	"dilos/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "analyze":
		analyze(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "timeline":
		timeline(os.Args[2:])
	case "events":
		eventsCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool record|analyze|stats|replay|timeline|events [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "seqread", "seqread | quicksort | redis-get")
	out := fs.String("out", "dilos.trace", "output file")
	pages := fs.Uint64("pages", 4096, "working-set pages")
	cache := fs.Float64("cache", 0.125, "local-memory fraction")
	fs.Parse(args)

	rec := trace.NewRecorder(0)
	eng := sim.New()
	frames := int(float64(*pages) * *cache)
	if frames < 96 {
		frames = 96
	}
	sys := core.New(eng, core.Config{
		CacheFrames: frames, Cores: 2, RemoteBytes: *pages*4096 + (128 << 20),
		Fabric: fabric.DefaultParams(), Prefetcher: prefetch.NewReadahead(0),
		Trace: rec,
	})
	sys.Start()
	launchWorkload(sys, *workload, *pages)
	eng.Run()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rec.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d events (%d dropped) from %s to %s\n",
		rec.Len(), rec.Dropped(), *workload, *out)
	printStats(rec.Analyze())
}

// launchWorkload starts the named workload app on sys (both record and
// timeline drive the same harness).
func launchWorkload(sys *core.System, workload string, pages uint64) {
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		switch workload {
		case "seqread":
			base, _ := sys.MmapDDC(pages)
			workloads.SeqRead(sp, base, pages)
		case "quicksort":
			n := pages * 4096 / 8
			base, _ := sys.MmapDDC(pages + 1)
			workloads.FillRandomU64(sp, base, n, 1)
			workloads.Quicksort(sp, base, n)
		case "redis-get":
			srv := redis.NewServer(sp)
			keys := int(pages) / 2
			redis.PopulateGET(srv, keys, redis.SizeFixed(4096))
			redis.RunGET(sp, srv, keys, keys*2, redis.SizeFixed(4096), 1)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", workload)
			os.Exit(2)
		}
	})
}

func loadFile(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return events
}

func analyze(args []string) {
	if len(args) < 1 {
		usage()
	}
	events := loadFile(args[0])
	rec := trace.NewRecorder(len(events) + 1)
	for _, e := range events {
		rec.RecordOn(e.At, e.VPN, e.Kind, e.Core)
	}
	fmt.Printf("%s: %d events over %d pages\n", args[0], len(events), trace.Span(events))
	printStats(rec.Analyze())
}

func printStats(st trace.Stats) {
	fmt.Printf("  major=%d minor=%d hit=%d write=%d unique-pages=%d\n",
		st.Counts[trace.Major], st.Counts[trace.Minor], st.Counts[trace.Hit],
		st.Counts[trace.Write], st.UniquePages)
	fmt.Printf("  sequential transitions: %.1f%%; top stride %d (%.1f%%)\n",
		100*st.SeqFraction, st.TopStride, 100*st.TopStrideFrac)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	pf := fs.String("prefetch", "readahead", "none | readahead | trend | leap")
	cache := fs.Float64("cache", 0.125, "local-memory fraction of the trace span")
	if len(args) < 1 {
		usage()
	}
	file := args[0]
	fs.Parse(args[1:])

	events := loadFile(file)
	span := trace.Span(events)
	var prefetcher prefetch.Prefetcher
	switch *pf {
	case "none":
	case "readahead":
		prefetcher = prefetch.NewReadahead(0)
	case "trend":
		prefetcher = prefetch.NewTrend()
	case "leap":
		prefetcher = prefetch.NewLeap()
	default:
		fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", *pf)
		os.Exit(2)
	}
	frames := int(float64(span) * *cache)
	if frames < 96 {
		frames = 96
	}
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames, Cores: 2, RemoteBytes: span*4096 + (128 << 20),
		Fabric: fabric.DefaultParams(), Prefetcher: prefetcher,
	})
	sys.Start()
	var elapsed sim.Time
	sys.Launch("replay", 0, func(sp *core.DDCProc) {
		base, _ := sys.MmapDDC(span + 1)
		t0 := sp.Now()
		trace.Replay(sp, base, events)
		elapsed = sp.Now() - t0
	})
	eng.Run()
	fmt.Printf("replayed %d events over %d pages with %s @ %.1f%% local: %v\n",
		len(events), span, *pf, *cache*100, elapsed)
	fmt.Printf("  major=%d minor=%d hits=%d prefetches=%d\n",
		sys.MajorFaults.N, sys.MinorFaults.N, sys.LateMapHits.N, sys.Prefetches.N)
}

// statsCmd ranks the hottest pages of a recorded access trace, and with
// -by-core breaks the event mix down per faulting core.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	top := fs.Int("top", 10, "how many hottest pages to list")
	byCore := fs.Bool("by-core", false, "break events down per faulting core")
	fs.Parse(args)
	if fs.NArg() < 1 {
		usage()
	}
	events := loadFile(fs.Arg(0))
	if *byCore {
		statsByCore(fs.Arg(0), events)
		return
	}
	type pageCount struct {
		vpn          pagetable.VPN
		total        int
		major, minor int
	}
	byVPN := map[pagetable.VPN]*pageCount{}
	for _, e := range events {
		pc := byVPN[e.VPN]
		if pc == nil {
			pc = &pageCount{vpn: e.VPN}
			byVPN[e.VPN] = pc
		}
		pc.total++
		switch e.Kind {
		case trace.Major:
			pc.major++
		case trace.Minor:
			pc.minor++
		}
	}
	ranked := make([]*pageCount, 0, len(byVPN))
	for _, pc := range byVPN {
		ranked = append(ranked, pc)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].total != ranked[j].total {
			return ranked[i].total > ranked[j].total
		}
		return ranked[i].vpn < ranked[j].vpn
	})
	if *top < len(ranked) {
		ranked = ranked[:*top]
	}
	fmt.Printf("%s: %d events over %d pages; top %d:\n",
		fs.Arg(0), len(events), len(byVPN), len(ranked))
	fmt.Printf("  %4s %10s %8s %8s %8s %7s\n", "rank", "vpn", "events", "major", "minor", "share")
	for i, pc := range ranked {
		fmt.Printf("  %4d %10d %8d %8d %8d %6.2f%%\n",
			i+1, pc.vpn, pc.total, pc.major, pc.minor, 100*float64(pc.total)/float64(len(events)))
	}
}

// statsByCore prints the per-core event breakdown of a trace: how many
// events each faulting core produced by kind, how many distinct pages it
// touched, and its share of the whole — the per-core view that shows
// whether fault load is balanced across the sharded handlers.
func statsByCore(path string, events []trace.Event) {
	type coreCount struct {
		core                     int
		total                    int
		major, minor, hit, write int
		pages                    map[pagetable.VPN]bool
	}
	byCore := map[int]*coreCount{}
	for _, e := range events {
		cc := byCore[e.Core]
		if cc == nil {
			cc = &coreCount{core: e.Core, pages: map[pagetable.VPN]bool{}}
			byCore[e.Core] = cc
		}
		cc.total++
		cc.pages[e.VPN] = true
		switch e.Kind {
		case trace.Major:
			cc.major++
		case trace.Minor:
			cc.minor++
		case trace.Hit:
			cc.hit++
		case trace.Write:
			cc.write++
		}
	}
	ranked := make([]*coreCount, 0, len(byCore))
	for _, cc := range byCore {
		ranked = append(ranked, cc)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].core < ranked[j].core })
	fmt.Printf("%s: %d events across %d cores\n", path, len(events), len(ranked))
	fmt.Printf("  %6s %8s %8s %8s %8s %8s %8s %7s\n",
		"core", "events", "major", "minor", "hit", "write", "pages", "share")
	for _, cc := range ranked {
		fmt.Printf("  %6d %8d %8d %8d %8d %8d %8d %6.2f%%\n",
			cc.core, cc.total, cc.major, cc.minor, cc.hit, cc.write,
			len(cc.pages), 100*float64(cc.total)/float64(len(events)))
	}
}

// journalEvent is one parsed line of a control-plane event journal
// (internal/obs JSONL — ddcrun -journal-out, or a scraped /journalz page).
type journalEvent struct {
	At    int64
	Type  string
	Attrs map[string]json.RawMessage // everything but at_ns/type
}

// loadJournal parses a JSONL journal file.
func loadJournal(path string) []journalEvent {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	var events []journalEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal([]byte(text), &raw); err != nil {
			fmt.Fprintf(os.Stderr, "%s:%d: %v\n", path, line, err)
			os.Exit(1)
		}
		var e journalEvent
		if err := json.Unmarshal(raw["at_ns"], &e.At); err != nil {
			fmt.Fprintf(os.Stderr, "%s:%d: bad at_ns: %v\n", path, line, err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw["type"], &e.Type); err != nil {
			fmt.Fprintf(os.Stderr, "%s:%d: bad type: %v\n", path, line, err)
			os.Exit(1)
		}
		delete(raw, "at_ns")
		delete(raw, "type")
		e.Attrs = raw
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return events
}

// eventsCmd filters a control-plane event journal and either prints it or
// merges it into an existing Perfetto timeline as instant markers, so the
// "what happened" (breaker trips, drains, steals, SLO alert edges) lines
// up against the "what it cost" (the span tracks).
func eventsCmd(args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	typeFilter := fs.String("type", "", "comma list of event types to keep (empty = all)")
	from := fs.Duration("from", 0, "drop events before this virtual time")
	to := fs.Duration("to", 0, "drop events at or after this virtual time (0 = no bound)")
	merge := fs.String("merge", "", "existing Perfetto/Chrome trace JSON to merge the filtered events into")
	out := fs.String("out", "", "output file for -merge (default: <merge file> in place)")
	if len(args) < 1 {
		usage()
	}
	file := args[0]
	fs.Parse(args[1:])
	events := loadJournal(file)

	keep := map[string]bool{}
	for _, t := range strings.Split(*typeFilter, ",") {
		if t = strings.TrimSpace(t); t != "" {
			keep[t] = true
		}
	}
	filtered := events[:0]
	for _, e := range events {
		if len(keep) > 0 && !keep[e.Type] {
			continue
		}
		if e.At < from.Nanoseconds() {
			continue
		}
		if *to > 0 && e.At >= to.Nanoseconds() {
			continue
		}
		filtered = append(filtered, e)
	}

	if *merge != "" {
		dst := *out
		if dst == "" {
			dst = *merge
		}
		mergeEvents(*merge, dst, filtered)
		fmt.Printf("events: merged %d of %d journal events into %s\n",
			len(filtered), len(events), dst)
		return
	}
	for _, e := range filtered {
		fmt.Printf("%12s  %-16s %s\n", sim.Time(e.At), e.Type, attrString(e.Attrs))
	}
	fmt.Printf("%d of %d events\n", len(filtered), len(events))
}

// attrString renders an event's attributes as sorted key=value pairs.
func attrString(attrs map[string]json.RawMessage) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+string(attrs[k]))
	}
	return strings.Join(parts, " ")
}

// mergeEvents appends the journal events to a Chrome trace as global
// instant markers ("ph":"i") on the process track, preserving everything
// already in the file.
func mergeEvents(tracePath, outPath string, events []journalEvent) {
	data, err := os.ReadFile(tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tracePath, err)
		os.Exit(1)
	}
	for _, e := range events {
		args, err := json.Marshal(e.Attrs) // map keys marshal sorted
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ev := fmt.Sprintf(`{"ph":"i","pid":0,"tid":0,"ts":%d.%03d,"s":"g","name":%q,"args":%s}`,
			e.At/1000, e.At%1000, e.Type, args)
		doc.TraceEvents = append(doc.TraceEvents, json.RawMessage(ev))
	}
	merged, err := json.Marshal(doc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, merged, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// timeline either records a live run into a Perfetto/Chrome trace JSON, or
// with -check validates a previously written file against the schema the
// writer promises.
func timeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	workload := fs.String("workload", "seqread", "seqread | quicksort | redis-get")
	out := fs.String("out", "timeline.json", "output Perfetto/Chrome trace JSON")
	pages := fs.Uint64("pages", 4096, "working-set pages")
	cache := fs.Float64("cache", 0.125, "local-memory fraction")
	pf := fs.String("prefetch", "readahead", "none | readahead | trend | leap")
	sample := fs.Duration("sample-interval", 50*time.Microsecond,
		"virtual-time gauge sampling interval (0 disables counter tracks)")
	check := fs.String("check", "", "validate an existing trace file instead of running a workload")
	fs.Parse(args)

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sum, err := telemetry.Validate(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Chrome trace — %d events (%d meta, %d spans, %d counters) on %d tracks, horizon %.3fms\n",
			*check, sum.Events, sum.Meta, sum.Spans, sum.Counters, sum.Tracks, float64(sum.MaxTsNs)/1e6)
		return
	}

	var prefetcher prefetch.Prefetcher
	switch *pf {
	case "none":
	case "readahead":
		prefetcher = prefetch.NewReadahead(0)
	case "trend":
		prefetcher = prefetch.NewTrend()
	case "leap":
		prefetcher = prefetch.NewLeap()
	default:
		fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", *pf)
		os.Exit(2)
	}
	frames := int(float64(*pages) * *cache)
	if frames < 96 {
		frames = 96
	}
	rec := telemetry.NewRecorder(0)
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames, Cores: 2, RemoteBytes: *pages*4096 + (128 << 20),
		Fabric: fabric.DefaultParams(), Prefetcher: prefetcher,
		Tel: rec, SampleEvery: sim.Time((*sample).Nanoseconds()),
	})
	sys.Start()
	launchWorkload(sys, *workload, *pages)
	eng.Run()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	_, sam := sys.Telemetry()
	if err := telemetry.WritePerfetto(f, rec, sam); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("timeline: wrote %s from %s (%d spans, %d dropped)\n",
		*out, *workload, rec.Len(), rec.DroppedTotal())
}
