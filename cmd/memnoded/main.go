// Command memnoded is the memory node daemon: it registers a memory region
// and serves one-sided READ/WRITE/vectored requests over the TCP transport
// (internal/transport, protocol v2 with a legacy v1 fallback) — the role
// the paper's memory node plays (§5 "Memory node"), runnable on any host.
//
// Usage:
//
//	memnoded -listen :7479 -size 1024 -pkey 0xd170
//	memnoded -listen :7479 -metrics-addr :9479   # + /metrics /statusz /healthz /journalz
//	memnoded -listen :7479 -debug-addr :6060     # + net/http/pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -debug-addr; no listener unless the flag is set
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dilos/internal/memnode"
	"dilos/internal/obs"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/transport"
)

// plane is memnoded's wall-clock observability plane: the same monitor,
// journal, and exporter the simulator uses, but clocked by time.Since(start)
// instead of virtual time. ObserveLatency arrives from concurrent
// connection handlers, and the SLO monitor is unsynchronised by design, so
// every touch funnels through mu.
type plane struct {
	mu    sync.Mutex
	start time.Time

	mon   *obs.Monitor
	sloID int
	jrn   *obs.Journal
	hist  *stats.Histogram
	sink  *obs.Server

	node *memnode.Node
	srv  *transport.Server
}

func newPlane(node *memnode.Node, srv *transport.Server, budget time.Duration) *plane {
	j := obs.NewJournal(0)
	m := obs.NewMonitor(j)
	p := &plane{
		start: time.Now(),
		mon:   m,
		jrn:   j,
		hist:  stats.NewHistogram("memnoded.op_latency"),
		sink:  obs.NewServer(),
		node:  node,
		srv:   srv,
	}
	p.sloID = m.Register(obs.Objective{
		Name:   "memnoded",
		Budget: sim.Time(budget.Nanoseconds()),
		// Wall-clock multi-window defaults: 14.4x over 1h/5m, 6x over
		// 6h/30m — the monitor's windows are clock-agnostic.
	})
	srv.ObserveLatency = func(ns int64) {
		p.mu.Lock()
		p.mon.Observe(p.sloID, p.now(), sim.Time(ns))
		p.hist.Record(sim.Time(ns))
		p.mu.Unlock()
	}
	return p
}

// now is the plane's clock: wall nanoseconds since process start, in the
// sim.Time unit the monitor's windows are expressed in.
func (p *plane) now() sim.Time { return sim.Time(time.Since(p.start).Nanoseconds()) }

// emit appends one journal event under the lock.
func (p *plane) emit(typ string, attrs ...obs.Attr) {
	p.mu.Lock()
	p.jrn.Emit(p.now(), typ, attrs...)
	p.mu.Unlock()
}

// snapshot rebuilds the exporter registry from the transport's atomics and
// the node's allocator — the daemon's metrics live in lock-free counters,
// so the registry is assembled per scrape-publish rather than maintained.
func (p *plane) snapshot() stats.Snapshot {
	r := stats.NewRegistry()
	for _, c := range []*stats.Counter{
		{Name: "memnoded.reads", N: p.srv.Reads.Load()},
		{Name: "memnoded.writes", N: p.srv.Writes.Load()},
		{Name: "memnoded.pings", N: p.srv.Pings.Load()},
		{Name: "memnoded.batches", N: p.srv.Batches.Load()},
		{Name: "memnoded.rejects", N: p.srv.Rejects.Load()},
	} {
		r.RegisterCounter(c)
	}
	pages := &stats.Gauge{Name: "memnoded.pages_in_use"}
	pages.Set(int64(p.node.PagesInUse()))
	huge := &stats.Gauge{Name: "memnoded.huge_pages"}
	huge.Set(int64(p.node.HugePages()))
	r.RegisterGauge(pages)
	r.RegisterGauge(huge)
	r.RegisterHistogram(p.hist)
	p.mon.RegisterStats(r)
	return r.Snapshot()
}

// publish renders and swaps in all four endpoint pages. Called from the
// collector tick, under the lock for the monitor/histogram/journal parts.
func (p *plane) publish() {
	p.mu.Lock()
	now := p.now()
	p.mon.Evaluate(now)
	metrics := obs.AppendMetrics(nil, p.snapshot(), nil)
	status := append([]byte(nil), "memnoded status at "...)
	status = append(status, now.String()...)
	status = append(status, fmt.Sprintf("\npages_in_use=%d huge_pages=%d draining=%v\n",
		p.node.PagesInUse(), p.node.HugePages(), p.srv.Draining())...)
	status = p.mon.AppendStatus(status, now)
	journal := p.jrn.AppendJSONL(nil)
	p.mu.Unlock()

	p.sink.PublishMetrics(metrics)
	p.sink.PublishStatus(status)
	p.sink.PublishJournal(journal)
	if p.srv.Draining() {
		p.sink.SetHealth(false, "draining")
	} else {
		p.sink.SetHealth(true, "ok")
	}
}

func main() {
	listen := flag.String("listen", ":7479", "address to listen on")
	sizeMB := flag.Uint64("size", 1024, "registered region size (MiB)")
	pkey := flag.Uint("pkey", 0xd170, "protection key clients must present")
	statsEvery := flag.Duration("stats", 0, "periodically log usage (e.g. 30s; 0 disables)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second,
		"how long a graceful shutdown waits for clients to hang up")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /statusz, /journalz, /healthz on this address (empty disables)")
	metricsEvery := flag.Duration("metrics-interval", time.Second,
		"how often the exporter pages refresh")
	sloBudget := flag.Duration("slo-budget", time.Millisecond,
		"per-request latency budget for the burn-rate SLO (99.9% of ops must finish within it)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (off by default; see DESIGN.md §14)")
	flag.Parse()

	node := memnode.New(*sizeMB<<20, uint32(*pkey))
	srv := transport.NewServer(node)

	var pl *plane
	if *metricsAddr != "" {
		pl = newPlane(node, srv, *sloBudget)
		addr, err := pl.sink.ListenAndServe(*metricsAddr)
		if err != nil {
			log.Fatalf("memnoded: metrics: %v", err)
		}
		pl.emit("boot", obs.I("size_mib", int64(*sizeMB)))
		pl.publish() // pages are live before the first tick
		go func() {
			for range time.Tick(*metricsEvery) {
				pl.publish()
			}
		}()
		fmt.Printf("memnoded: metrics on http://%s/metrics\n", addr)
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("memnoded: pprof: %v", err)
			}
		}()
		fmt.Printf("memnoded: pprof on http://%s/debug/pprof/\n", *debugAddr)
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("memnoded: %v", err)
	}
	fmt.Printf("memnoded: serving %d MiB (%d huge pages) on %s, pkey %#x\n",
		*sizeMB, node.HugePages(), addr, *pkey)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				log.Printf("memnoded: %d pages in use, %d reads, %d writes, %d batches, %d rejects served",
					node.PagesInUse(), srv.Reads.Load(), srv.Writes.Load(),
					srv.Batches.Load(), srv.Rejects.Load())
			}
		}()
	}
	// Graceful shutdown on SIGINT/SIGTERM (both — orchestrators send
	// SIGTERM): enter the drain phase so in-flight requests finish and new
	// ones are answered StatusDraining, then exit once the connections are
	// gone or the grace runs out.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s := <-sig
		log.Printf("memnoded: %v: draining (%d pages in use, %d reads, %d writes served)",
			s, node.PagesInUse(), srv.Reads.Load(), srv.Writes.Load())
		if pl != nil {
			pl.emit("drain_requested", obs.S("signal", s.String()))
			pl.publish()
		}
		srv.Drain(*drainGrace)
		close(done)
	}()

	if err := srv.Serve(); err != nil {
		log.Printf("memnoded: listener closed: %v", err)
	}
	select {
	case <-done: // drained
	case <-time.After(100 * time.Millisecond):
		// Serve returned without a signal (listener closed some other way).
	}
}
