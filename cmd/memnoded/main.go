// Command memnoded is the memory node daemon: it registers a memory region
// and serves one-sided READ/WRITE/vectored requests over the TCP transport
// (internal/transport) — the role the paper's memory node plays (§5
// "Memory node"), runnable on any host.
//
// Usage:
//
//	memnoded -listen :7479 -size 1024 -pkey 0xd170
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"dilos/internal/memnode"
	"dilos/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7479", "address to listen on")
	sizeMB := flag.Uint64("size", 1024, "registered region size (MiB)")
	pkey := flag.Uint("pkey", 0xd170, "protection key clients must present")
	statsEvery := flag.Duration("stats", 0, "periodically log usage (e.g. 30s; 0 disables)")
	flag.Parse()

	node := memnode.New(*sizeMB<<20, uint32(*pkey))
	srv := transport.NewServer(node)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("memnoded: %v", err)
	}
	fmt.Printf("memnoded: serving %d MiB (%d huge pages) on %s, pkey %#x\n",
		*sizeMB, node.HugePages(), addr, *pkey)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				log.Printf("memnoded: %d pages in use, %d reads, %d writes served",
					node.PagesInUse(), node.ReadsSrv.N, node.WritesSv.N)
			}
		}()
	}
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, report, exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Printf("memnoded: shutting down (%d pages were in use)", node.PagesInUse())
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		log.Printf("memnoded: listener closed: %v", err)
	}
}
