// Command memnoded is the memory node daemon: it registers a memory region
// and serves one-sided READ/WRITE/vectored requests over the TCP transport
// (internal/transport, protocol v2 with a legacy v1 fallback) — the role
// the paper's memory node plays (§5 "Memory node"), runnable on any host.
//
// Usage:
//
//	memnoded -listen :7479 -size 1024 -pkey 0xd170
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dilos/internal/memnode"
	"dilos/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7479", "address to listen on")
	sizeMB := flag.Uint64("size", 1024, "registered region size (MiB)")
	pkey := flag.Uint("pkey", 0xd170, "protection key clients must present")
	statsEvery := flag.Duration("stats", 0, "periodically log usage (e.g. 30s; 0 disables)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second,
		"how long a graceful shutdown waits for clients to hang up")
	flag.Parse()

	node := memnode.New(*sizeMB<<20, uint32(*pkey))
	srv := transport.NewServer(node)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("memnoded: %v", err)
	}
	fmt.Printf("memnoded: serving %d MiB (%d huge pages) on %s, pkey %#x\n",
		*sizeMB, node.HugePages(), addr, *pkey)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				log.Printf("memnoded: %d pages in use, %d reads, %d writes, %d batches, %d rejects served",
					node.PagesInUse(), srv.Reads.Load(), srv.Writes.Load(),
					srv.Batches.Load(), srv.Rejects.Load())
			}
		}()
	}
	// Graceful shutdown on SIGINT/SIGTERM (both — orchestrators send
	// SIGTERM): enter the drain phase so in-flight requests finish and new
	// ones are answered StatusDraining, then exit once the connections are
	// gone or the grace runs out.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s := <-sig
		log.Printf("memnoded: %v: draining (%d pages in use, %d reads, %d writes served)",
			s, node.PagesInUse(), srv.Reads.Load(), srv.Writes.Load())
		srv.Drain(*drainGrace)
		close(done)
	}()

	if err := srv.Serve(); err != nil {
		log.Printf("memnoded: listener closed: %v", err)
	}
	select {
	case <-done: // drained
	case <-time.After(100 * time.Millisecond):
		// Serve returned without a signal (listener closed some other way).
	}
}
