// Command dilosbench regenerates the paper's tables and figures (§6) from
// the reproduction and prints them in the paper's format, with the
// published values alongside for comparison.
//
// The command itself is a thin driver: every experiment lives in
// internal/experiments and self-registers via experiments.Register, so
// -list, dispatch, and -json all run off the registry.
//
// Usage:
//
//	dilosbench -exp all          # everything (several minutes)
//	dilosbench -exp tab2         # one artifact
//	dilosbench -list             # what's available
//	dilosbench -exp fig7a -scale 2   # larger working sets
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug-addr; no handlers registered unless it serves
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"time"

	"dilos/internal/experiments"
	"dilos/internal/obs"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// writeMemProfile dumps a heap profile for -memprofile (after a GC, so the
// profile reflects live simulator state rather than garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// coresList is the parsed -cores sweep (empty = defaults, no sweep).
var coresList []int

// parseCores parses a -cores comma list like "1,2,4,8".
func parseCores(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cores wants a comma list of positive core counts, got %q", spec)
		}
		out = append(out, n)
	}
	return out, nil
}

// runExp runs one experiment, once per -cores setting when a sweep is
// active. CoresAware experiments (ext10) sweep core counts internally, so
// they consume the list directly instead of being looped.
func runExp(e experiments.Entry, sc experiments.Scale) {
	if len(coresList) == 0 || e.CoresAware {
		e.Run(sc)
		return
	}
	for i, n := range coresList {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== cores=%d ===\n", n)
		experiments.CoreCount = n
		e.Run(sc)
	}
	experiments.CoreCount = 0
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	scale := flag.Float64("scale", 1, "working-set scale multiplier")
	asJSON := flag.Bool("json", false, "emit structured JSON instead of tables")
	withStats := flag.Bool("stats", false,
		"capture a full stats snapshot per system run and dump them as JSON")
	flag.Uint64Var(&experiments.ChaosSeed, "chaos-seed", 42,
		"seed for the seeded experiments' deterministic fault injection and determinism legs (same seed ⇒ identical run)")
	batch := flag.String("batch", "off",
		"doorbell-batched submission (on|off) for every DiLOS system the experiments build; ext5 measures both regardless")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	traceOut := flag.String("trace-out", "",
		"record a flight-recorder trace and write it as Perfetto/Chrome JSON to this file (the last system run of the invocation wins)")
	sampleInterval := flag.Duration("sample-interval", 50*time.Microsecond,
		"virtual-time gauge sampling interval for -trace-out counter tracks (0 disables them)")
	flag.IntVar(&experiments.MigrateDrainNode, "migrate-drain", 2,
		"memory node ext7 drains out of its 3-node pool (0-2)")
	flag.Float64Var(&experiments.MigrateWatermark, "migrate-watermark", 0,
		"occupancy-imbalance fraction that arms continuous auto-rebalancing on ext7's migration engine (0 = drain/join only)")
	flag.Int64Var(&experiments.TenantAggressorRate, "tenant-rate", experiments.TenantAggressorRate,
		"fabric token-bucket rate (bytes/s) capping ext8's aggressor tenant in the isolated leg")
	flag.IntVar(&experiments.KVLayers, "kv-layers", experiments.KVLayers,
		"ext12: transformer layers per sequence")
	flag.IntVar(&experiments.KVSeqs, "kv-seqs", experiments.KVSeqs,
		"ext12: concurrent sequences in the KV-cache batch")
	flag.IntVar(&experiments.KVDecode, "kv-decode", experiments.KVDecode,
		"ext12: decode steps per sequence after prefill")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /statusz, /journalz, /healthz on this address for the duration of the invocation (pages refresh after every system run)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (off by default; see DESIGN.md §14 for the profiling workflow)")
	coresSpec := flag.String("cores", "",
		"comma list of core counts (e.g. 1,2,4,8): run each experiment once per setting with the sharded manager at that core count (one stats block per setting); ext10 sweeps exactly this list")
	flag.BoolVar(&experiments.WideLocks, "wide-locks", false,
		"with -cores: boot DiLOS with the shared-structure wide-lock baseline instead of the sharded manager (ext10's ablation arm, for ad-hoc runs)")
	flag.Parse()
	var err error
	if coresList, err = parseCores(*coresSpec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(coresList) > 0 {
		experiments.ScalingCores = coresList
	}
	if experiments.WideLocks && len(coresList) == 0 {
		fmt.Fprintln(os.Stderr, "-wide-locks needs -cores")
		os.Exit(2)
	}
	if experiments.MigrateDrainNode < 0 || experiments.MigrateDrainNode > 2 {
		fmt.Fprintf(os.Stderr, "-migrate-drain must be 0-2, got %d\n", experiments.MigrateDrainNode)
		os.Exit(2)
	}
	switch *batch {
	case "on":
		experiments.Batch = true
	case "off":
		experiments.Batch = false
	default:
		fmt.Fprintf(os.Stderr, "-batch must be on or off, got %q\n", *batch)
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)
	jsonOut = *asJSON
	statsOut = *withStats
	if *traceOut != "" {
		experiments.Telemetry = true
		experiments.SampleEvery = sim.Time((*sampleInterval).Nanoseconds())
		experiments.TelemetrySink = func(label string, rec *telemetry.Recorder, sam *telemetry.Sampler) {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := telemetry.WritePerfetto(f, rec, sam); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %s (%s)\n", *traceOut, label)
		}
	}
	if statsOut {
		experiments.Collect = func(label string, snap stats.Snapshot) {
			statsDump = append(statsDump, labeledSnapshot{Label: label, Stats: snap})
		}
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", *debugAddr)
	}
	if *metricsAddr != "" {
		srv := obs.NewServer()
		addr, err := srv.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics on http://%s/\n", addr)
		// Each finished system run re-publishes the exporter pages; the
		// scrape target stays live across the whole batch.
		prev := experiments.Collect
		experiments.Collect = func(label string, snap stats.Snapshot) {
			if prev != nil {
				prev(label, snap)
			}
			srv.PublishMetrics(obs.AppendMetrics(nil, snap, nil))
			srv.PublishStatus([]byte("dilosbench last run: " + label + "\n"))
		}
	}

	if *list || *exp == "" {
		fmt.Println("experiments (pass -exp <id> or -exp all):")
		for _, e := range experiments.Entries() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	sc := scaled(*scale)
	if jsonOut {
		runJSON(sc, *exp)
		return
	}
	if *exp == "all" {
		for _, e := range experiments.Entries() {
			runExp(e, sc)
			fmt.Println()
		}
		dumpStats()
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		e, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		runExp(e, sc)
		fmt.Println()
	}
	dumpStats()
}

// dumpStats prints the accumulated per-run snapshots after the tables.
func dumpStats() {
	if !statsOut {
		return
	}
	fmt.Println("stats snapshots (one object per system run):")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsDump); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func scaled(mult float64) experiments.Scale {
	sc := experiments.DefaultScale()
	m := func(v uint64) uint64 { return uint64(float64(v) * mult) }
	sc.SeqPages = m(sc.SeqPages)
	sc.QuicksortN = m(sc.QuicksortN)
	sc.KMeansPoints = m(sc.KMeansPoints)
	sc.SnappyBytes = m(sc.SnappyBytes)
	sc.DataframeRows = m(sc.DataframeRows)
	sc.RedisKeys4K = int(float64(sc.RedisKeys4K) * mult)
	sc.RedisKeys64K = int(float64(sc.RedisKeys64K) * mult)
	sc.RedisKeysMix = int(float64(sc.RedisKeysMix) * mult)
	sc.RedisListElem = int(float64(sc.RedisListElem) * mult)
	return sc
}

// jsonOut switches the harness into structured output.
var jsonOut bool

// statsOut enables the per-run stats snapshot dump (-stats); statsDump
// accumulates whatever the experiments.Collect hook hands back.
var statsOut bool

type labeledSnapshot struct {
	Label string         `json:"label"`
	Stats stats.Snapshot `json:"stats"`
}

var statsDump []labeledSnapshot

func runJSON(sc experiments.Scale, exp string) {
	out := map[string]any{}
	var entries []experiments.Entry
	if exp == "all" {
		entries = experiments.Entries()
	} else {
		for _, id := range strings.Split(exp, ",") {
			e, ok := experiments.Lookup(id)
			if !ok || e.JSON == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}
	for _, e := range entries {
		if e.JSON == nil {
			continue
		}
		out[e.ID] = e.JSON(sc)
	}
	var doc any = out
	if statsOut {
		doc = map[string]any{"results": out, "stats": statsDump}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
