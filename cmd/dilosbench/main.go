// Command dilosbench regenerates the paper's tables and figures (§6) from
// the reproduction and prints them in the paper's format, with the
// published values alongside for comparison.
//
// Usage:
//
//	dilosbench -exp all          # everything (several minutes)
//	dilosbench -exp tab2         # one artifact
//	dilosbench -list             # what's available
//	dilosbench -exp fig7a -scale 2   # larger working sets
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug-addr; no handlers registered unless it serves
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"time"

	"dilos/internal/experiments"
	"dilos/internal/obs"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// writeMemProfile dumps a heap profile for -memprofile (after a GC, so the
// profile reflects live simulator state rather than garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

var registry = map[string]struct {
	desc string
	run  func(sc experiments.Scale)
}{
	"fig1":   {"Fastswap fault-handler latency breakdown", runFig1},
	"fig2":   {"RDMA latency vs object size", func(experiments.Scale) { runFig2() }},
	"tab1":   {"fault counts, sequential read on Fastswap", runTab1},
	"tab2":   {"sequential read/write throughput (GB/s)", runTab2},
	"fig6":   {"fault latency breakdown, DiLOS vs Fastswap", runFig6},
	"tab3":   {"fault counts, sequential read, all systems", runTab3},
	"fig7a":  {"quicksort completion time", wrapCompletion("Figure 7(a) — quicksort", experiments.Fig7a, "s")},
	"fig7b":  {"k-means completion time", wrapCompletion("Figure 7(b) — k-means", experiments.Fig7b, "s")},
	"fig7c":  {"snappy compression completion time", wrapCompletion("Figure 7(c) — compression", experiments.Fig7c, "ms")},
	"fig7d":  {"snappy decompression completion time", wrapCompletion("Figure 7(d) — decompression", experiments.Fig7d, "ms")},
	"fig8":   {"DataFrame NYC-taxi completion time", wrapCompletion("Figure 8 — DataFrame (NYC taxi)", experiments.Fig8, "ms")},
	"fig9a":  {"GAPBS PageRank, 4 threads", wrapCompletion("Figure 9(a) — PageRank", experiments.Fig9a, "ms")},
	"fig9b":  {"GAPBS betweenness centrality, 4 threads", wrapCompletion("Figure 9(b) — betweenness centrality", experiments.Fig9b, "ms")},
	"fig10a": {"Redis GET throughput, 4 KiB values", wrapRedis("Figure 10(a) — GET 4KiB", experiments.Fig10a)},
	"fig10b": {"Redis GET throughput, 64 KiB values", wrapRedis("Figure 10(b) — GET 64KiB", experiments.Fig10b)},
	"fig10c": {"Redis GET throughput, mixed sizes", wrapRedis("Figure 10(c) — GET mixed", experiments.Fig10c)},
	"fig10d": {"Redis LRANGE_100 throughput", wrapRedis("Figure 10(d) — LRANGE_100", experiments.Fig10d)},
	"tab4":   {"Redis tail latency, GET(mixed) + LRANGE", runTab4},
	"fig12":  {"bandwidth with guided paging, DEL + GET", runFig12},
	"abl1":   {"ablation: eager vs on-demand reclamation", runAbl1},
	"abl2":   {"ablation: shared-nothing vs shared queues", runAbl2},
	"ext1":   {"extension: sharding across 1/2/4 memory nodes", runExt1},
	"ext2":   {"extension: PageRank thread scaling on DiLOS", runExt2},
	"ext3":   {"extension: placement policies across 4 memory nodes", runExt3},
	"ext4":   {"extension: chaos — node crash, failover, recovery", runExt4},
	"ext5":   {"extension: doorbell-batched vs per-op submission", runExt5},
	"ext6":   {"extension: per-fault latency anatomy from the flight recorder", runExt6},
	"ext7":   {"extension: elastic pool — live drain + migration under load", runExt7},
	"ext8":   {"extension: multi-tenant pool — noisy neighbour vs QoS quotas", runExt8},
	"ext10":  {"extension: per-core fault-path scaling — sharded vs shared manager", runExt10},
	"ext11":  {"extension: always-on observability plane — overhead + burn-rate detection", runExt11},
}

var order = []string{
	"fig1", "fig2", "tab1", "tab2", "fig6", "tab3",
	"fig7a", "fig7b", "fig7c", "fig7d", "fig8", "fig9a", "fig9b",
	"fig10a", "fig10b", "fig10c", "fig10d", "tab4", "fig12",
	"abl1", "abl2", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext10", "ext11",
}

// coresList is the parsed -cores sweep (empty = defaults, no sweep).
var coresList []int

// parseCores parses a -cores comma list like "1,2,4,8".
func parseCores(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cores wants a comma list of positive core counts, got %q", spec)
		}
		out = append(out, n)
	}
	return out, nil
}

// runExp runs one experiment, once per -cores setting when a sweep is
// active. ext10 sweeps core counts internally, so it consumes the list
// directly instead of being looped.
func runExp(id string, sc experiments.Scale) {
	e := registry[id]
	if len(coresList) == 0 || id == "ext10" {
		e.run(sc)
		return
	}
	for i, n := range coresList {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== cores=%d ===\n", n)
		experiments.CoreCount = n
		e.run(sc)
	}
	experiments.CoreCount = 0
}

// chaosSeed drives ext4's deterministic fault injection (-chaos-seed).
var chaosSeed uint64

func main() {
	exp := flag.String("exp", "", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	scale := flag.Float64("scale", 1, "working-set scale multiplier")
	asJSON := flag.Bool("json", false, "emit structured JSON instead of tables")
	withStats := flag.Bool("stats", false,
		"capture a full stats snapshot per system run and dump them as JSON")
	flag.Uint64Var(&chaosSeed, "chaos-seed", 42,
		"seed for ext4's deterministic fault injection (same seed ⇒ identical run)")
	batch := flag.String("batch", "off",
		"doorbell-batched submission (on|off) for every DiLOS system the experiments build; ext5 measures both regardless")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	traceOut := flag.String("trace-out", "",
		"record a flight-recorder trace and write it as Perfetto/Chrome JSON to this file (the last system run of the invocation wins)")
	sampleInterval := flag.Duration("sample-interval", 50*time.Microsecond,
		"virtual-time gauge sampling interval for -trace-out counter tracks (0 disables them)")
	flag.IntVar(&experiments.MigrateDrainNode, "migrate-drain", 2,
		"memory node ext7 drains out of its 3-node pool (0-2)")
	flag.Float64Var(&experiments.MigrateWatermark, "migrate-watermark", 0,
		"occupancy-imbalance fraction that arms continuous auto-rebalancing on ext7's migration engine (0 = drain/join only)")
	flag.Int64Var(&experiments.TenantAggressorRate, "tenant-rate", experiments.TenantAggressorRate,
		"fabric token-bucket rate (bytes/s) capping ext8's aggressor tenant in the isolated leg")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /statusz, /journalz, /healthz on this address for the duration of the invocation (pages refresh after every system run)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (off by default; see DESIGN.md §14 for the profiling workflow)")
	coresSpec := flag.String("cores", "",
		"comma list of core counts (e.g. 1,2,4,8): run each experiment once per setting with the sharded manager at that core count (one stats block per setting); ext10 sweeps exactly this list")
	flag.BoolVar(&experiments.WideLocks, "wide-locks", false,
		"with -cores: boot DiLOS with the shared-structure wide-lock baseline instead of the sharded manager (ext10's ablation arm, for ad-hoc runs)")
	flag.Parse()
	var err error
	if coresList, err = parseCores(*coresSpec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(coresList) > 0 {
		experiments.ScalingCores = coresList
	}
	if experiments.WideLocks && len(coresList) == 0 {
		fmt.Fprintln(os.Stderr, "-wide-locks needs -cores")
		os.Exit(2)
	}
	if experiments.MigrateDrainNode < 0 || experiments.MigrateDrainNode > 2 {
		fmt.Fprintf(os.Stderr, "-migrate-drain must be 0-2, got %d\n", experiments.MigrateDrainNode)
		os.Exit(2)
	}
	switch *batch {
	case "on":
		experiments.Batch = true
	case "off":
		experiments.Batch = false
	default:
		fmt.Fprintf(os.Stderr, "-batch must be on or off, got %q\n", *batch)
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)
	jsonOut = *asJSON
	statsOut = *withStats
	if *traceOut != "" {
		experiments.Telemetry = true
		experiments.SampleEvery = sim.Time((*sampleInterval).Nanoseconds())
		experiments.TelemetrySink = func(label string, rec *telemetry.Recorder, sam *telemetry.Sampler) {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := telemetry.WritePerfetto(f, rec, sam); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %s (%s)\n", *traceOut, label)
		}
	}
	if statsOut {
		experiments.Collect = func(label string, snap stats.Snapshot) {
			statsDump = append(statsDump, labeledSnapshot{Label: label, Stats: snap})
		}
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", *debugAddr)
	}
	if *metricsAddr != "" {
		srv := obs.NewServer()
		addr, err := srv.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics on http://%s/\n", addr)
		// Each finished system run re-publishes the exporter pages; the
		// scrape target stays live across the whole batch.
		prev := experiments.Collect
		experiments.Collect = func(label string, snap stats.Snapshot) {
			if prev != nil {
				prev(label, snap)
			}
			srv.PublishMetrics(obs.AppendMetrics(nil, snap, nil))
			srv.PublishStatus([]byte("dilosbench last run: " + label + "\n"))
		}
	}

	if *list || *exp == "" {
		fmt.Println("experiments (pass -exp <id> or -exp all):")
		for _, id := range order {
			fmt.Printf("  %-7s %s\n", id, registry[id].desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	sc := scaled(*scale)
	if jsonOut {
		runJSON(sc, *exp)
		return
	}
	if *exp == "all" {
		for _, id := range order {
			runExp(id, sc)
			fmt.Println()
		}
		dumpStats()
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		if _, ok := registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		runExp(id, sc)
		fmt.Println()
	}
	dumpStats()
}

// dumpStats prints the accumulated per-run snapshots after the tables.
func dumpStats() {
	if !statsOut {
		return
	}
	fmt.Println("stats snapshots (one object per system run):")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsDump); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func scaled(mult float64) experiments.Scale {
	sc := experiments.DefaultScale()
	m := func(v uint64) uint64 { return uint64(float64(v) * mult) }
	sc.SeqPages = m(sc.SeqPages)
	sc.QuicksortN = m(sc.QuicksortN)
	sc.KMeansPoints = m(sc.KMeansPoints)
	sc.SnappyBytes = m(sc.SnappyBytes)
	sc.DataframeRows = m(sc.DataframeRows)
	sc.RedisKeys4K = int(float64(sc.RedisKeys4K) * mult)
	sc.RedisKeys64K = int(float64(sc.RedisKeys64K) * mult)
	sc.RedisKeysMix = int(float64(sc.RedisKeysMix) * mult)
	sc.RedisListElem = int(float64(sc.RedisListElem) * mult)
	return sc
}

func us(t sim.Time) string { return fmt.Sprintf("%6.2f", t.Micros()) }

func runFig1(sc experiments.Scale) {
	fmt.Println("Figure 1 — Fastswap page fault handler latency breakdown (µs)")
	fmt.Println("  [paper: average ≈6.2µs total with 46% fetch, 9% exception, 29% reclaim]")
	printBreakdown(experiments.Fig1(sc))
}

func runFig6(sc experiments.Scale) {
	fmt.Println("Figure 6 — fault latency breakdown, DiLOS vs Fastswap (µs)")
	fmt.Println("  [paper: DiLOS cuts fault latency ≈49%; DiLOS reclaim = 0]")
	printBreakdown(experiments.Fig6(sc))
}

func printBreakdown(rows []experiments.BreakdownRow) {
	fmt.Printf("  %-22s %9s %9s %9s %9s %9s %9s\n",
		"", "exception", "software", "fetch", "map", "reclaim", "total")
	for _, r := range rows {
		fmt.Printf("  %-22s %9s %9s %9s %9s %9s %9s\n",
			r.Label, us(r.Exception), us(r.Software), us(r.Fetch), us(r.Map), us(r.Reclaim), us(r.Total))
	}
}

func runFig2() {
	fmt.Println("Figure 2 — one-sided RDMA latency (µs) per object size")
	fmt.Println("  [paper: 4KiB costs only ≈0.6µs more than 128B]")
	fmt.Printf("  %8s %10s %10s\n", "size", "read", "write")
	for _, r := range experiments.Fig2() {
		fmt.Printf("  %8d %10s %10s\n", r.Size, us(r.ReadLat), us(r.WriteLat))
	}
}

func runTab1(sc experiments.Scale) {
	fmt.Println("Table 1 — page faults during sequential read on Fastswap")
	fmt.Printf("  [paper: 655,737 major (12.5%%) / 4,587,164 minor (87.5%%) on 20GB]\n")
	r := experiments.Tab1(sc)
	printFaultRows([]experiments.FaultCountRow{r})
}

func runTab3(sc experiments.Scale) {
	fmt.Println("Table 3 — page faults during sequential read")
	fmt.Println("  [paper: DiLOS-readahead ≈25% fewer minor faults than Fastswap]")
	printFaultRows(experiments.Tab3(sc))
}

func printFaultRows(rows []experiments.FaultCountRow) {
	fmt.Printf("  %-22s %10s %10s %10s %8s\n", "", "major", "minor", "total", "major%")
	for _, r := range rows {
		fmt.Printf("  %-22s %10d %10d %10d %7.1f%%\n",
			r.System, r.Major, r.Minor, r.Total, 100*float64(r.Major)/float64(r.Total))
	}
}

func runTab2(sc experiments.Scale) {
	fmt.Println("Table 2 — sequential read/write throughput (GB/s)")
	fmt.Println("  [paper: Fastswap 0.98/0.49; DiLOS none 1.24/1.14; readahead 3.74/3.49; trend 3.73/3.49]")
	fmt.Printf("  %-22s %8s %8s\n", "", "read", "write")
	for _, r := range experiments.Tab2(sc) {
		fmt.Printf("  %-22s %8.2f %8.2f\n", r.System, r.ReadGBs, r.WriteGBs)
	}
}

func wrapCompletion(title string, fn func(experiments.Scale) []experiments.CompletionRow, unit string) func(experiments.Scale) {
	return func(sc experiments.Scale) {
		fmt.Println(title + " — completion time (lower is better)")
		rows := fn(sc)
		printCompletion(rows, unit)
	}
}

func printCompletion(rows []experiments.CompletionRow, unit string) {
	// Group: system → fraction → time.
	systems := []experiments.SystemKind{}
	seen := map[experiments.SystemKind]bool{}
	fracs := []float64{}
	seenF := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.System] {
			seen[r.System] = true
			systems = append(systems, r.System)
		}
		if !seenF[r.Fraction] {
			seenF[r.Fraction] = true
			fracs = append(fracs, r.Fraction)
		}
	}
	sort.Float64s(fracs)
	fmt.Printf("  %-22s", "local memory:")
	for _, f := range fracs {
		fmt.Printf(" %9s", experiments.FracLabel(f))
	}
	fmt.Println()
	for _, s := range systems {
		fmt.Printf("  %-22s", s)
		for _, f := range fracs {
			for _, r := range rows {
				if r.System == s && r.Fraction == f {
					switch unit {
					case "s":
						fmt.Printf(" %9.3f", r.Elapsed.Seconds())
					default:
						fmt.Printf(" %9.2f", float64(r.Elapsed)/1e6)
					}
				}
			}
		}
		fmt.Printf("  (%s)\n", unit)
	}
}

func wrapRedis(title string, fn func(experiments.Scale) []experiments.RedisRow) func(experiments.Scale) {
	return func(sc experiments.Scale) {
		fmt.Println(title + " — throughput (ops/s, higher is better)")
		rows := fn(sc)
		systems := []experiments.SystemKind{}
		seen := map[experiments.SystemKind]bool{}
		fracs := []float64{}
		seenF := map[float64]bool{}
		for _, r := range rows {
			if !seen[r.System] {
				seen[r.System] = true
				systems = append(systems, r.System)
			}
			if !seenF[r.Fraction] {
				seenF[r.Fraction] = true
				fracs = append(fracs, r.Fraction)
			}
		}
		sort.Float64s(fracs)
		fmt.Printf("  %-22s", "local memory:")
		for _, f := range fracs {
			fmt.Printf(" %10s", experiments.FracLabel(f))
		}
		fmt.Println()
		for _, s := range systems {
			fmt.Printf("  %-22s", s)
			for _, f := range fracs {
				for _, r := range rows {
					if r.System == s && r.Fraction == f {
						fmt.Printf(" %10.0f", r.OpsPerS)
					}
				}
			}
			fmt.Println()
		}
	}
}

func runTab4(sc experiments.Scale) {
	fmt.Println("Table 4 — tail latency at 12.5% local memory (µs)")
	fmt.Println("  [paper (ms, 20GB sets): Fastswap GET 10.0/11.0, LRANGE 25.8/34.3;")
	fmt.Println("   DiLOS app-aware GET 3.0/4.0, LRANGE 14.6/18.4]")
	fmt.Printf("  %-22s %12s %12s %12s %12s %12s %12s\n",
		"", "GET p99", "GET p99.9", "LRANGE p99", "LRANGE p99.9", "major p99", "minor p99")
	for _, r := range experiments.Tab4(sc) {
		fmt.Printf("  %-22s %12s %12s %12s %12s %12s %12s\n",
			r.System, us(r.GetP99), us(r.GetP999), us(r.LRangeP99), us(r.LRangeP999),
			us(r.MajorFaultP99), us(r.MinorFaultP99))
	}
}

func runFig12(sc experiments.Scale) {
	fmt.Println("Figure 12 — network traffic with guided paging (DEL churn, then GET sweep)")
	fmt.Println("  [paper: guided paging saves 12% on DEL, 29% on GET]")
	rows := experiments.Fig12(sc)
	fmt.Printf("  %-22s %12s %12s %14s\n", "", "DEL tx (MB)", "GET rx (MB)", "saved (bytes)")
	for _, r := range rows {
		label := "default paging"
		if r.Guided {
			label = "guided paging"
		}
		fmt.Printf("  %-22s %12.2f %12.2f %14d\n", label, r.DelTxMB, r.GetRxMB, r.SavedBytes)
	}
	def, g := rows[0], rows[1]
	fmt.Printf("  reduction: DEL %.0f%%, GET %.0f%%\n",
		100*(1-g.DelTxMB/def.DelTxMB), 100*(1-g.GetRxMB/def.GetRxMB))
	fmt.Println("  rx bandwidth over time (default vs guided):")
	fmt.Printf("    default %s\n", sparkline(def.RxSeries, 64))
	fmt.Printf("    guided  %s\n", sparkline(g.RxSeries, 64))
}

// sparkline renders a bandwidth series as unicode blocks, resampled to
// `width` buckets and normalized across the series.
func sparkline(pts []stats.BandwidthPoint, width int) string {
	if len(pts) == 0 {
		return "(empty)"
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	resampled := make([]float64, width)
	for i, p := range pts {
		resampled[i*width/len(pts)] += p.BytesPerSec
	}
	max := 0.0
	for _, v := range resampled {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return "(idle)"
	}
	out := make([]rune, width)
	for i, v := range resampled {
		idx := int(v / max * float64(len(blocks)-1))
		out[i] = blocks[idx]
	}
	return string(out)
}

func runAbl1(sc experiments.Scale) {
	fmt.Println("Ablation — eager background reclamation (§4.4) vs on-demand")
	fmt.Printf("  %-32s %8s %8s %12s\n", "", "read", "write", "alloc waits")
	for _, r := range experiments.AblationEagerEviction(sc) {
		fmt.Printf("  %-32s %8.2f %8.2f %12d\n", r.Label, r.ReadGBs, r.WriteGBs, r.AllocWait)
	}
}

func runAbl2(sc experiments.Scale) {
	fmt.Println("Ablation — shared-nothing per-module queues (§4.5) vs one queue per core")
	fmt.Printf("  %-32s %8s %14s\n", "", "write", "fault p99")
	for _, r := range experiments.AblationSharedQueue(sc) {
		fmt.Printf("  %-32s %8.2f %14s\n", r.Label, r.WriteGBs, us(r.FaultP99))
	}
}

func runExt2(sc experiments.Scale) {
	fmt.Println("Extension — PageRank thread scaling on DiLOS, 12.5% local memory")
	fmt.Printf("  %-10s %12s\n", "threads", "time (ms)")
	for _, r := range experiments.ExtThreadScaling(sc) {
		fmt.Printf("  %-10d %12.2f\n", r.Workers, float64(r.Elapsed)/1e6)
	}
}

func runExt1(sc experiments.Scale) {
	fmt.Println("Extension — page-striped sharding across memory nodes (§5.1 future work)")
	fmt.Printf("  %-10s %10s   %s\n", "nodes", "read GB/s", "RX GB per node")
	for _, r := range experiments.ExtMultiNode(sc) {
		fmt.Printf("  %-10d %10.2f   %v\n", r.Nodes, r.ReadGBs, r.PerLink)
	}
}

func runExt3(sc experiments.Scale) {
	fmt.Println("Extension — placement policies, sequential read over 4 memory nodes")
	fmt.Printf("  %-10s %10s %8s   %s\n", "policy", "read GB/s", "spread", "RX GB per node")
	for _, r := range experiments.ExtPlacement(sc) {
		fmt.Printf("  %-10s %10.2f %8.2f   %v\n", r.Policy, r.ReadGBs, r.Spread, r.PerLink)
	}
}

func runExt4(sc experiments.Scale) {
	fmt.Println("Extension — chaos: replicated DiLOS through a memory-node crash")
	fmt.Printf("  [seed %d; node 1 down %.0f–%.0fms; Replicas: 2]\n",
		chaosSeed, experiments.ExtChaosCrashAt().Seconds()*1e3, experiments.ExtChaosCrashUntil().Seconds()*1e3)
	r := experiments.ExtChaos(sc, chaosSeed)
	fmt.Printf("  %d pages over a %.0fms run\n", r.Pages, r.RunFor.Seconds()*1e3)
	if r.RecoveredAt == 0 {
		fmt.Printf("  detected %.3fms after crash; recovery did not complete in the run\n",
			(r.DetectedAt-r.CrashAt).Seconds()*1e3)
	} else {
		fmt.Printf("  detected %.3fms after crash; recovered %.3fms after the node returned\n",
			(r.DetectedAt-r.CrashAt).Seconds()*1e3, (r.RecoveredAt-r.CrashUntil).Seconds()*1e3)
	}
	fmt.Printf("  %-12s %-12s %-12s %-12s\n", "baseline", "outage avg", "outage dip", "recovered")
	fmt.Printf("  %-12.2f %-12.2f %-12.2f %-12.2f  (GB/s touched)\n",
		r.BaselineGBs, r.OutageGBs, r.DipGBs, r.RecoveredGBs)
	fmt.Printf("  injected fails %d, retries %d (timeouts %d, gave up %d)\n",
		r.InjectedFails, r.Retries, r.Timeouts, r.GaveUp)
	fmt.Printf("  replica fetches %d, failed write-backs %d, re-replicated pages %d\n",
		r.ReplicaFetches, r.WriteFails, r.ReReplicated)
	fmt.Printf("  breaker: %d trip(s), %d recovery(ies)\n", r.NodeFails, r.NodeRecoveries)
	fmt.Println("  throughput over time (1ms buckets):")
	fmt.Printf("    %s\n", floatSparkline(r.Series))
}

func runExt5(sc experiments.Scale) {
	fmt.Println("Extension — doorbell-batched I/O pipeline (ext5): per-op vs batched submission")
	fmt.Println("  [12.5% local cache; batched = one doorbell per prefetch window / cleaner")
	fmt.Println("   node-batch, contiguous remote offsets coalesced into ≤3-segment vectors]")
	rows := experiments.ExtBatch(sc)
	fmt.Printf("  %-22s %-8s %-34s %9s %7s %9s\n",
		"workload", "mode", "result", "doorbells", "ops/db", "coalesced")
	var base experiments.BatchRow
	for _, r := range rows {
		var result string
		var cur, ref float64
		switch {
		case r.ReadGBs > 0:
			result = fmt.Sprintf("%.2f GB/s", r.ReadGBs)
			cur, ref = r.ReadGBs, base.ReadGBs
		case r.WriteGBs > 0:
			result = fmt.Sprintf("%.2f GB/s (wb %.2f GB/s)", r.WriteGBs, r.CleanGBs)
			cur, ref = r.WriteGBs, base.WriteGBs
		case r.OpsPerS > 0:
			result = fmt.Sprintf("%.1f kops/s", r.OpsPerS/1e3)
			cur, ref = r.OpsPerS, base.OpsPerS
		default:
			result = fmt.Sprintf("%.2f ms", r.Elapsed.Seconds()*1e3)
			cur, ref = 1/r.Elapsed.Seconds(), 1/base.Elapsed.Seconds()
		}
		mode := "per-op"
		if r.Batched {
			mode = "batched"
			if ref > 0 {
				result += fmt.Sprintf("  %+.1f%%", (cur/ref-1)*100)
			}
		} else {
			base = r
		}
		fmt.Printf("  %-22s %-8s %-34s %9d %7.1f %9d\n",
			r.Workload, mode, result, r.Doorbells, r.MeanBatch, r.Coalesced)
	}
	fmt.Println("  (paper has no batched variant; the per-op rows are the §6 baseline shapes)")
}

func runExt6(sc experiments.Scale) {
	fmt.Println("Extension — per-fault latency anatomy from the flight recorder (µs)")
	fmt.Println("  [sequential write+read sweep; major faults only; stage means sum to the")
	fmt.Println("   total mean. DiLOS never reclaims on the fault path; Fastswap's direct")
	fmt.Println("   reclamation grows as the cache shrinks]")
	rows := experiments.ExtAnatomy(sc)
	stages := []string{"exception", "lookup", "reclaim", "issue", "guide", "wait", "map"}
	lastFrac := -1.0
	for _, r := range rows {
		if r.Fraction != lastFrac {
			lastFrac = r.Fraction
			fmt.Printf("  local memory %s:\n", experiments.FracLabel(r.Fraction))
			fmt.Printf("    %-22s %-4s", "system", "")
			for _, st := range stages {
				fmt.Printf(" %9s", st)
			}
			fmt.Printf(" %9s %8s\n", "total", "faults")
		}
		a := r.Anatomy
		fmt.Printf("    %-22s %-4s", r.System, "mean")
		for _, st := range stages {
			fmt.Printf(" %9.2f", float64(a.Stage(st).MeanNs)/1e3)
		}
		fmt.Printf(" %9.2f %8d\n", float64(a.MeanNs)/1e3, a.Faults)
		fmt.Printf("    %-22s %-4s", "", "p99")
		for _, st := range stages {
			fmt.Printf(" %9.2f", float64(a.Stage(st).P99Ns)/1e3)
		}
		fmt.Printf(" %9.2f\n", float64(a.P99Ns)/1e3)
	}
}

func runExt7(sc experiments.Scale) {
	fmt.Println("Extension — elastic pool: drain a memory node under load (ext7)")
	fmt.Printf("  [3 nodes, Replicas: 2, 12.5%% local cache; node %d drains at 3ms;\n",
		experiments.MigrateDrainNode)
	fmt.Println("   chaos leg crashes the draining node mid-copy (seed -chaos-seed)]")
	r := experiments.ExtElastic(sc, chaosSeed)
	fmt.Printf("  %d pages over a %.0fms run\n", r.Pages, r.RunFor.Seconds()*1e3)
	if r.DrainDoneAt == 0 {
		fmt.Println("  drain did not complete in the run")
	} else {
		fmt.Printf("  drain completed in %.2fms: %d pages moved (%d copy restarts, %d stranded retries, %d forwarded)\n",
			(r.DrainDoneAt-r.DrainAt).Seconds()*1e3, r.PagesMoved, r.CopyRestarts, r.Stranded, r.Forwarded)
	}
	fmt.Printf("  %-10s %12s %12s %10s\n", "phase", "fault p50", "fault p99", "GB/s")
	fmt.Printf("  %-10s %12s %12s %10.2f\n", "baseline", us(r.BaselineP50), us(r.BaselineP99), r.BaselineGBs)
	fmt.Printf("  %-10s %12s %12s %10.2f\n", "drain", us(r.DrainP50), us(r.DrainP99), r.DrainGBs)
	fmt.Printf("  %-10s %12s %12s %10.2f\n", "after", "", us(r.AfterP99), r.AfterGBs)
	fmt.Printf("  drain p99 = %.2fx baseline (target ≤ 2x); corruptions: %d (must be 0)\n",
		r.P99Ratio, r.Corruptions)
	if r.ChaosDrainDoneAt == 0 {
		fmt.Printf("  chaos leg: drain pending at run end (node crashed mid-copy; %d breaker trips)\n",
			r.ChaosNodeFails)
	} else {
		fmt.Printf("  chaos leg: crash mid-copy, drain still done at %.2fms (%d moved, %d stranded retries, %d breaker trips)\n",
			r.ChaosDrainDoneAt.Seconds()*1e3, r.ChaosPagesMoved, r.ChaosStranded, r.ChaosNodeFails)
	}
	fmt.Printf("  chaos leg corruptions: %d (must be 0)\n", r.ChaosCorruptions)
	fmt.Println("  throughput over time (1ms buckets):")
	fmt.Printf("    %s\n", floatSparkline(r.Series))
}

func runExt8(sc experiments.Scale) {
	fmt.Println("Extension — multi-tenant pool: noisy neighbour vs QoS quotas (ext8)")
	fmt.Printf("  [victim hot set fits its quota; aggressor streams 8x its quota;\n")
	fmt.Printf("   isolated leg caps the aggressor at %d MB/s of fabric]\n",
		experiments.TenantAggressorRate>>20)
	r := experiments.ExtTenant(sc)
	fmt.Printf("  victim %d hot + %d cold pages on %d frames; aggressor %d pages on %d frames (+%d slack)\n",
		r.VictimHotPages, r.VictimColdPages, r.VictimFrames,
		r.AggressorPages, r.AggressorFrames, r.SlackFrames)
	fmt.Printf("  %-12s %12s %12s %8s %8s\n", "leg", "victim p50", "victim p99", "faults", "ratio")
	fmt.Printf("  %-12s %12s %12s %8d %8s\n", "solo", us(r.SoloP50), us(r.SoloP99), r.SoloFaults, "1.00")
	fmt.Printf("  %-12s %12s %12s %8d %8.2f\n", "isolated", us(r.IsoP50), us(r.IsoP99), r.IsoFaults, r.IsoRatio)
	fmt.Printf("  %-12s %12s %12s %8d %8.2f\n", "control", us(r.CtrlP50), us(r.CtrlP99), r.CtrlFaults, r.CtrlRatio)
	verdict := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	fmt.Printf("  gate: isolated <= %.1fx solo: %s; unpartitioned control > gate: %s\n",
		r.Gate, verdict(r.IsoPass), verdict(r.CtrlExceeds))
	fmt.Printf("  aggressor majors: %d capped vs %d uncapped; victim floor %d, reserved %d at end\n",
		r.AggrFaultsIso, r.AggrFaultsCtrl, r.VictimFloor, r.VictimReservedEnd)
	fmt.Printf("  repeat isolated leg byte-identical: %v\n", r.Deterministic)
}

func runExt10(sc experiments.Scale) {
	fmt.Println("Extension — per-core fault-path scaling: sharded vs shared manager (ext10)")
	fmt.Println("  [weak scaling: each core random-writes its own partition at 25% local")
	fmt.Println("   cache, re-dirtying a hot window every iteration; shared = one wide lock")
	fmt.Println("   across every daemon sweep and fault transition, sharded = Shards=cores]")
	r := experiments.ExtScaling(sc)
	fmt.Printf("  %-6s %14s %12s | %14s %12s\n",
		"cores", "shared flt/s", "shared p99", "sharded flt/s", "sharded p99")
	for _, row := range r.Rows {
		fmt.Printf("  %-6d %14.0f %12v | %14.0f %12v\n",
			row.Cores, row.SharedRate, row.SharedP99, row.ShardedRate, row.ShardedP99)
	}
	fmt.Printf("  1->4 core fault-throughput speedup: shared %.2fx, sharded %.2fx\n",
		r.SharedSpeedup, r.ShardedSpeedup)
}

func runExt11(sc experiments.Scale) {
	fmt.Println("Extension — always-on observability plane: overhead + detection (ext11)")
	fmt.Printf("  [tail storm ×30 on 60%% of ops from %.1fms; SLO budget 25µs, target 99%%,\n",
		experiments.Ext11TailAt().Seconds()*1e3)
	fmt.Printf("   burn-rate rule 500µs/100µs ×8; detection budget %.0fµs]\n",
		experiments.Ext11DetectBudget().Micros())
	r := experiments.ExtObs(sc, chaosSeed)
	fmt.Printf("  seq read 12.5%%: plane off %.2f GB/s, plane on %.2f GB/s (virtual-time delta %+d ns)\n",
		r.OffGBs, r.OnGBs, int64(r.OnElapsed-r.OffElapsed))
	fmt.Printf("  same-seed pages byte-identical: %v (%d bytes rendered, %d journal events, %d spans sampled out)\n",
		r.Deterministic, r.PageBytes, r.JournalEvents, r.SampledOut)
	if r.Detected {
		fmt.Printf("  storm: %d tails injected; alert raised %.0fµs after onset (%d raise edges)\n",
			r.TailsInjected, r.DetectLatency.Micros(), r.StormRaised)
	} else {
		fmt.Println("  storm: alert never fired (FAIL)")
	}
	fmt.Printf("  clean legs raised %d alerts (must be 0)\n", r.CleanAlerts)
}

// floatSparkline renders a plain float series as unicode blocks.
func floatSparkline(vals []float64) string {
	if len(vals) == 0 {
		return "(empty)"
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return "(idle)"
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		out[i] = blocks[int(v/max*float64(len(blocks)-1))]
	}
	return string(out)
}

// jsonOut switches the harness into structured output.
var jsonOut bool

// statsOut enables the per-run stats snapshot dump (-stats); statsDump
// accumulates whatever the experiments.Collect hook hands back.
var statsOut bool

type labeledSnapshot struct {
	Label string         `json:"label"`
	Stats stats.Snapshot `json:"stats"`
}

var statsDump []labeledSnapshot

// jsonRunners maps experiment ids to row-producing functions for -json.
var jsonRunners = map[string]func(experiments.Scale) any{
	"fig1":   func(sc experiments.Scale) any { return experiments.Fig1(sc) },
	"fig2":   func(experiments.Scale) any { return experiments.Fig2() },
	"tab1":   func(sc experiments.Scale) any { return experiments.Tab1(sc) },
	"tab2":   func(sc experiments.Scale) any { return experiments.Tab2(sc) },
	"fig6":   func(sc experiments.Scale) any { return experiments.Fig6(sc) },
	"tab3":   func(sc experiments.Scale) any { return experiments.Tab3(sc) },
	"fig7a":  func(sc experiments.Scale) any { return experiments.Fig7a(sc) },
	"fig7b":  func(sc experiments.Scale) any { return experiments.Fig7b(sc) },
	"fig7c":  func(sc experiments.Scale) any { return experiments.Fig7c(sc) },
	"fig7d":  func(sc experiments.Scale) any { return experiments.Fig7d(sc) },
	"fig8":   func(sc experiments.Scale) any { return experiments.Fig8(sc) },
	"fig9a":  func(sc experiments.Scale) any { return experiments.Fig9a(sc) },
	"fig9b":  func(sc experiments.Scale) any { return experiments.Fig9b(sc) },
	"fig10a": func(sc experiments.Scale) any { return experiments.Fig10a(sc) },
	"fig10b": func(sc experiments.Scale) any { return experiments.Fig10b(sc) },
	"fig10c": func(sc experiments.Scale) any { return experiments.Fig10c(sc) },
	"fig10d": func(sc experiments.Scale) any { return experiments.Fig10d(sc) },
	"tab4":   func(sc experiments.Scale) any { return experiments.Tab4(sc) },
	"fig12":  func(sc experiments.Scale) any { return experiments.Fig12(sc) },
	"abl1":   func(sc experiments.Scale) any { return experiments.AblationEagerEviction(sc) },
	"abl2":   func(sc experiments.Scale) any { return experiments.AblationSharedQueue(sc) },
	"ext1":   func(sc experiments.Scale) any { return experiments.ExtMultiNode(sc) },
	"ext2":   func(sc experiments.Scale) any { return experiments.ExtThreadScaling(sc) },
	"ext3":   func(sc experiments.Scale) any { return experiments.ExtPlacement(sc) },
	"ext4":   func(sc experiments.Scale) any { return experiments.ExtChaos(sc, chaosSeed) },
	"ext5":   func(sc experiments.Scale) any { return experiments.ExtBatch(sc) },
	"ext6":   func(sc experiments.Scale) any { return experiments.ExtAnatomy(sc) },
	"ext7":   func(sc experiments.Scale) any { return experiments.ExtElastic(sc, chaosSeed) },
	"ext8":   func(sc experiments.Scale) any { return experiments.ExtTenant(sc) },
	"ext10":  func(sc experiments.Scale) any { return experiments.ExtScaling(sc) },
	"ext11":  func(sc experiments.Scale) any { return experiments.ExtObs(sc, chaosSeed) },
}

func runJSON(sc experiments.Scale, exp string) {
	out := map[string]any{}
	ids := strings.Split(exp, ",")
	if exp == "all" {
		ids = order
	}
	for _, id := range ids {
		fn, ok := jsonRunners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		out[id] = fn(sc)
	}
	var doc any = out
	if statsOut {
		doc = map[string]any{"results": out, "stats": statsDump}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
