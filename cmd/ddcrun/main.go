// Command ddcrun runs a named workload on a chosen paging backend with a
// chosen local-memory fraction and prefetcher — the interactive companion
// to dilosbench for exploring individual configurations.
//
// Usage:
//
//	ddcrun -workload seqread -system dilos -prefetch readahead -cache 0.125
//	ddcrun -workload quicksort -system fastswap -cache 0.25
//	ddcrun -workload redis-get -system dilos -prefetch app-aware
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dilos/internal/chaos"
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/space"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
	"dilos/internal/workloads"
)

func main() {
	workload := flag.String("workload", "seqread",
		"seqread | seqwrite | quicksort | kmeans | redis-get | redis-lrange")
	system := flag.String("system", "dilos", "dilos | fastswap")
	pf := flag.String("prefetch", "readahead", "none | readahead | trend | leap | app-aware (dilos only)")
	cache := flag.Float64("cache", 0.125, "local memory as a fraction of the working set")
	pages := flag.Uint64("pages", 16384, "working-set pages for seq workloads")
	nodes := flag.Int("nodes", 1, "memory node count (dilos only)")
	replicas := flag.Int("replicas", 1, "replicas per page, up to -nodes (dilos only)")
	policyName := flag.String("placement", "striped",
		"page placement policy: striped | blocked | hashed (dilos only)")
	dumpStats := flag.Bool("stats", false, "dump the full stats snapshot as JSON after the run")
	chaosProfile := flag.String("chaos-profile", "none",
		"fault injection profile: none | flaky | tail | crash (dilos only)")
	chaosSeed := flag.Uint64("chaos-seed", 42,
		"seed for deterministic fault injection (same seed ⇒ identical faults)")
	traceOut := flag.String("trace-out", "",
		"record a flight-recorder trace and write it as Perfetto/Chrome JSON to this file")
	sampleInterval := flag.Duration("sample-interval", 50*time.Microsecond,
		"virtual-time gauge sampling interval for -trace-out counter tracks (0 disables them)")
	flag.Parse()

	policy, err := placement.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosCfg, err := chaos.ParseProfile(*chaosProfile, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosOn := *chaosProfile != "" && *chaosProfile != "none"
	if *system != "dilos" && (*nodes != 1 || *replicas != 1 || *policyName != "striped" || chaosOn) {
		fmt.Fprintf(os.Stderr, "-nodes/-replicas/-placement/-chaos-profile require -system dilos\n")
		os.Exit(2)
	}
	if chaosOn {
		for _, w := range chaosCfg.Crashes {
			if w.Node >= *nodes {
				fmt.Fprintf(os.Stderr, "profile %q crashes node %d; raise -nodes (and use -replicas 2 to survive it)\n",
					*chaosProfile, w.Node)
				os.Exit(2)
			}
		}
	}
	if *nodes < 1 || *replicas < 1 || *replicas > *nodes {
		fmt.Fprintf(os.Stderr, "-replicas must be between 1 and -nodes (%d)\n", *nodes)
		os.Exit(2)
	}

	var prefetcher prefetch.Prefetcher
	switch *pf {
	case "none", "app-aware":
	case "readahead":
		prefetcher = prefetch.NewReadahead(0)
	case "trend":
		prefetcher = prefetch.NewTrend()
	case "leap":
		prefetcher = prefetch.NewLeap()
	default:
		fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", *pf)
		os.Exit(2)
	}

	eng := sim.New()
	frames := int(float64(*pages) * *cache)
	if frames < 96 {
		frames = 96
	}
	remote := *pages*4096 + (128 << 20)

	var launch func(fn func(sp space.Space, mmap func(uint64) (uint64, error)))
	var report func()
	var registry *stats.Registry
	var rec *telemetry.Recorder
	var sampleEvery sim.Time
	var telOf func() (*telemetry.Recorder, *telemetry.Sampler)
	if *traceOut != "" {
		rec = telemetry.NewRecorder(0)
		sampleEvery = sim.Time((*sampleInterval).Nanoseconds())
	}

	var guide *redis.AppGuide
	if *pf == "app-aware" {
		guide = redis.NewAppGuide()
	}
	switch *system {
	case "dilos":
		cfg := core.Config{
			CacheFrames: frames, Cores: 4, RemoteBytes: remote,
			Fabric: fabric.DefaultParams(), Prefetcher: prefetcher,
			MemNodes: *nodes, Replicas: *replicas, Placement: policy,
			Tel: rec, SampleEvery: sampleEvery,
		}
		if guide != nil {
			cfg.Guide = guide
		}
		if chaosOn {
			cfg.Chaos = chaos.NewInjector(chaosCfg)
		}
		sys := core.New(eng, cfg)
		sys.Start()
		registry = sys.Registry()
		telOf = sys.Telemetry
		launch = func(fn func(space.Space, func(uint64) (uint64, error))) {
			sys.Launch("app", 0, func(sp *core.DDCProc) { fn(sp, sys.MmapDDC) })
		}
		report = func() {
			fmt.Printf("faults: major=%d minor=%d late-map=%d prefetches=%d\n",
				sys.MajorFaults.N, sys.MinorFaults.N, sys.LateMapHits.N, sys.Prefetches.N)
			fmt.Printf("page manager: cleaned=%d evicted=%d sync-writes=%d\n",
				sys.Mgr.Cleaned.N, sys.Mgr.Evicted.N, sys.Mgr.SyncWrites.N)
			fmt.Printf("network: rx=%d MB tx=%d MB\n",
				sys.Link.RxBytes.N>>20, sys.Link.TxBytes.N>>20)
			if sys.Chaos != nil {
				fmt.Printf("chaos: injected-fails=%d tails=%d stalls=%d node-down-ops=%d\n",
					sys.Chaos.Fails.N, sys.Chaos.Tails.N, sys.Chaos.Stalls.N, sys.Chaos.Crashed.N)
				fmt.Printf("recovery: retries=%d gave-up=%d replica-fetches=%d write-fails=%d "+
					"prefetch-fails=%d rereplicated=%d breaker-trips=%d recoveries=%d\n",
					sys.FetchRetries.Retries.N, sys.FetchRetries.GaveUp.N, sys.ReplicaFetches.N,
					sys.Mgr.WriteFails.N, sys.PrefetchFails.N, sys.ReReplicated.N,
					sys.Health.NodeFails.N, sys.Health.NodeRecoveries.N)
			}
		}
	case "fastswap":
		sys := fastswap.New(eng, fastswap.Config{
			CacheFrames: frames, Cores: 4, RemoteBytes: remote,
			Fabric: fabric.DefaultParams(),
			Tel:    rec, SampleEvery: sampleEvery,
		})
		sys.Start()
		registry = sys.Registry()
		telOf = sys.Telemetry
		launch = func(fn func(space.Space, func(uint64) (uint64, error))) {
			sys.Launch("app", 0, func(sp *fastswap.FSProc) { fn(sp, sys.MmapDDC) })
		}
		report = func() {
			fmt.Printf("faults: major=%d minor=%d direct-reclaims=%d sync-writes=%d\n",
				sys.MajorFaults.N, sys.MinorFaults.N, sys.DirectRecl.N, sys.SyncWrites.N)
			fmt.Printf("network: rx=%d MB tx=%d MB\n",
				sys.Link.RxBytes.N>>20, sys.Link.TxBytes.N>>20)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	var elapsed sim.Time
	var summary string
	launch(func(sp space.Space, mmap func(uint64) (uint64, error)) {
		switch *workload {
		case "seqread":
			base, _ := mmap(*pages)
			elapsed = workloads.SeqRead(sp, base, *pages)
			summary = fmt.Sprintf("%.2f GB/s", stats.GBps(float64(*pages*4096)/elapsed.Seconds()))
		case "seqwrite":
			base, _ := mmap(*pages)
			elapsed = workloads.SeqWrite(sp, base, *pages)
			summary = fmt.Sprintf("%.2f GB/s", stats.GBps(float64(*pages*4096)/elapsed.Seconds()))
		case "quicksort":
			n := *pages * 4096 / 8
			base, _ := mmap(*pages + 1)
			workloads.FillRandomU64(sp, base, n, 1)
			elapsed = workloads.Quicksort(sp, base, n)
			if !workloads.IsSorted(sp, base, n) {
				summary = "SORT FAILED"
			} else {
				summary = fmt.Sprintf("sorted %d elements", n)
			}
		case "kmeans":
			cfg := workloads.DefaultKMeans(*pages * 4096 / (15 * 8 * 4))
			pb, ab, db := workloads.KMeansLayout(cfg)
			base, _ := mmap((pb+ab+db)/4096 + 2)
			workloads.KMeansInit(sp, base, cfg)
			var inertia uint64
			elapsed, inertia = workloads.KMeans(sp, base, base+pb, base+pb+ab, cfg)
			summary = fmt.Sprintf("inertia=%d", inertia)
		case "redis-get":
			srv := redis.NewServer(sp)
			if guide != nil {
				guide.Install(srv, procOf(sp))
			}
			keys := int(*pages) / 2
			redis.PopulateGET(srv, keys, redis.SizeFixed(4096))
			res := redis.RunGET(sp, srv, keys, keys*2, redis.SizeFixed(4096), 1)
			elapsed = res.Elapsed
			summary = fmt.Sprintf("%.0f ops/s, p99=%v, bad=%d",
				res.ThroughputOps(), res.Latency.P99(), res.BadValues)
		case "redis-lrange":
			srv := redis.NewServer(sp)
			if guide != nil {
				guide.Install(srv, procOf(sp))
			}
			redis.PopulateLRANGE(srv, 64, int(*pages)*4, 100, 2)
			res := redis.RunLRANGE(sp, srv, 64, 500, 3)
			elapsed = res.Elapsed
			summary = fmt.Sprintf("%.0f ops/s, p99=%v", res.ThroughputOps(), res.Latency.P99())
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
	})
	eng.Run()

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r, sam := telOf()
		if err := telemetry.WritePerfetto(f, r, sam); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s (%d spans, %d dropped)\n",
			*traceOut, r.Len(), r.DroppedTotal())
	}

	fmt.Printf("%s on %s (%s, %.1f%% local): %v — %s\n",
		*workload, *system, *pf, *cache*100, elapsed, summary)
	if *nodes > 1 || *replicas > 1 {
		fmt.Printf("placement: %s across %d nodes, %d replica(s) per page\n",
			policy.Name(), *nodes, *replicas)
	}
	report()
	if *dumpStats {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(registry.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func procOf(sp space.Space) *sim.Proc {
	type hasProc interface{ Proc() *sim.Proc }
	return sp.(hasProc).Proc()
}
