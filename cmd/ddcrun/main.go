// Command ddcrun runs a named workload on a chosen paging backend with a
// chosen local-memory fraction and prefetcher — the interactive companion
// to dilosbench for exploring individual configurations.
//
// Usage:
//
//	ddcrun -workload seqread -system dilos -prefetch readahead -cache 0.125
//	ddcrun -workload quicksort -system fastswap -cache 0.25
//	ddcrun -workload redis-get -system dilos -prefetch app-aware
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dilos/internal/chaos"
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/migrate"
	"dilos/internal/obs"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/redis"
	"dilos/internal/sim"
	"dilos/internal/space"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
	"dilos/internal/tenant"
	"dilos/internal/workloads"
)

// writeMemProfile dumps a heap profile for -memprofile (after a GC, so the
// profile reflects live simulator state rather than garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// parseDrainSpec parses -migrate-drain: "NODE" or "NODE@WHEN", e.g. "2" or
// "2@5ms". WHEN is virtual time from the start of the run; it defaults to
// 1ms so the cache is warm before the evacuation starts.
func parseDrainSpec(spec string) (node int, at sim.Time, err error) {
	at = sim.Millisecond
	nodePart := spec
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		nodePart = spec[:i]
		d, err := time.ParseDuration(spec[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("-migrate-drain %q: %v", spec, err)
		}
		at = sim.Time(d.Nanoseconds())
	}
	node, err = strconv.Atoi(nodePart)
	if err != nil || node < 0 {
		return 0, 0, fmt.Errorf("-migrate-drain %q: want NODE or NODE@WHEN (e.g. 2@5ms)", spec)
	}
	return node, at, nil
}

func main() {
	workload := flag.String("workload", "seqread",
		"seqread | seqwrite | quicksort | kmeans | redis-get | redis-lrange")
	system := flag.String("system", "dilos", "dilos | fastswap")
	pf := flag.String("prefetch", "readahead", "none | readahead | trend | leap | app-aware (dilos only)")
	cache := flag.Float64("cache", 0.125, "local memory as a fraction of the working set")
	pages := flag.Uint64("pages", 16384, "working-set pages for seq workloads")
	nodes := flag.Int("nodes", 1, "memory node count (dilos only)")
	replicas := flag.Int("replicas", 1, "replicas per page, up to -nodes (dilos only)")
	policyName := flag.String("placement", "striped",
		"page placement policy: striped | blocked | hashed (dilos only)")
	dumpStats := flag.Bool("stats", false, "dump the full stats snapshot as JSON after the run")
	chaosProfile := flag.String("chaos-profile", "none",
		"fault injection profile: none | flaky | tail | crash (dilos only)")
	chaosSeed := flag.Uint64("chaos-seed", 42,
		"seed for deterministic fault injection (same seed ⇒ identical faults)")
	traceOut := flag.String("trace-out", "",
		"record a flight-recorder trace and write it as Perfetto/Chrome JSON to this file")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /statusz, /journalz, /healthz on this address while the run executes (dilos only; pages refresh every 1ms of virtual time and hold the final state after the run)")
	journalOut := flag.String("journal-out", "",
		"write the control-plane event journal (drains, breaker trips, steals, SLO alerts) as JSON lines to this file (dilos only; feed it to tracetool events)")
	sampleInterval := flag.Duration("sample-interval", 50*time.Microsecond,
		"virtual-time gauge sampling interval for -trace-out counter tracks (0 disables them)")
	batch := flag.Bool("batch", false,
		"doorbell-batched submission on the prefetch and cleaner paths (dilos only)")
	coresSpec := flag.String("cores", "",
		"comma list of core counts (e.g. 1,2,4): repeat the run once per setting with the sharded page manager at that core count, one report/stats block per setting (dilos boots Shards=N; empty = 4 cores, legacy manager)")
	wideLocks := flag.Bool("wide-locks", false,
		"with -cores: boot the shared-structure wide-lock baseline instead of the sharded manager (dilos only)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	drainSpec := flag.String("migrate-drain", "",
		"live-drain a memory node mid-run: NODE or NODE@WHEN, e.g. 2@5ms (dilos only; arms the migration engine)")
	watermark := flag.Float64("migrate-watermark", 0,
		"imbalance watermark (0-1) for continuous auto-rebalancing, 0 = off (dilos only; arms the migration engine)")
	tenants := flag.Int("tenants", 0,
		"multi-tenant mode (dilos only): split the pool across N equal-weight tenants, run the workload in tenant 0 and a streaming-store neighbour in each other tenant")
	tenantRate := flag.Int64("tenant-rate", 0,
		"fabric token-bucket rate (bytes/s) capping each neighbour tenant, 0 = uncapped (needs -tenants >= 2)")
	realNodes := flag.Int("real-nodes", 0,
		"ext9 real-process mode: spawn N memnoded daemons, kill -9 one mid-run, verify against a host shadow (0 = off; ignores the simulator flags)")
	realReplicas := flag.Int("real-replicas", 2, "replicas per page in -real-nodes mode")
	realPages := flag.Int("real-pages", 512, "working-set pages in -real-nodes mode")
	realWorkers := flag.Int("real-workers", 4, "driver workers in -real-nodes mode")
	realDeadline := flag.Duration("real-deadline", 500*time.Millisecond,
		"per-request budget in -real-nodes mode (the stall bound)")
	realBaseline := flag.Duration("real-baseline", time.Second, "healthy phase before the kill")
	realOutage := flag.Duration("real-outage", 1200*time.Millisecond, "kill -9 .. restart window")
	realRecovery := flag.Duration("real-recovery", time.Second, "post-restart observation phase")
	realMemnoded := flag.String("real-memnoded", "",
		"path to a built memnoded binary (default: go build it into a temp dir)")
	flag.Parse()

	if *realNodes > 0 {
		os.Exit(runRealChaos(realChaosFlags{
			nodes: *realNodes, replicas: *realReplicas, pages: *realPages,
			workers: *realWorkers, deadline: *realDeadline,
			baseline: *realBaseline, outage: *realOutage, recovery: *realRecovery,
			memnoded: *realMemnoded, dumpStats: *dumpStats,
		}))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	policy, err := placement.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosCfg, err := chaos.ParseProfile(*chaosProfile, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosOn := *chaosProfile != "" && *chaosProfile != "none"
	migrateOn := *drainSpec != "" || *watermark > 0
	obsOn := *metricsAddr != "" || *journalOut != ""
	if *system != "dilos" && (*nodes != 1 || *replicas != 1 || *policyName != "striped" || chaosOn || migrateOn || *tenants > 0 || obsOn) {
		fmt.Fprintf(os.Stderr, "-nodes/-replicas/-placement/-chaos-profile/-migrate-*/-tenants/-metrics-addr/-journal-out require -system dilos\n")
		os.Exit(2)
	}
	// The HTTP sink binds once and survives the -cores sweep; each run
	// re-publishes into it.
	var obsSink *obs.Server
	if *metricsAddr != "" {
		obsSink = obs.NewServer()
		addr, err := obsSink.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("obs: serving /metrics on http://%s/\n", addr)
	}
	if *tenants < 0 || *tenants == 1 {
		fmt.Fprintf(os.Stderr, "-tenants wants 0 (off) or >= 2, got %d\n", *tenants)
		os.Exit(2)
	}
	if *tenantRate > 0 && *tenants == 0 {
		fmt.Fprintln(os.Stderr, "-tenant-rate needs -tenants >= 2")
		os.Exit(2)
	}
	if *watermark < 0 || *watermark > 1 {
		fmt.Fprintf(os.Stderr, "-migrate-watermark must be in [0,1], got %g\n", *watermark)
		os.Exit(2)
	}
	drainNode, drainAt := -1, sim.Time(0)
	if *drainSpec != "" {
		var err error
		drainNode, drainAt, err = parseDrainSpec(*drainSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if drainNode >= *nodes {
			fmt.Fprintf(os.Stderr, "-migrate-drain node %d out of range; raise -nodes (%d)\n", drainNode, *nodes)
			os.Exit(2)
		}
		if *nodes < 2 {
			fmt.Fprintln(os.Stderr, "-migrate-drain needs at least -nodes 2: the pages must have somewhere to go")
			os.Exit(2)
		}
	}
	if chaosOn {
		for _, w := range chaosCfg.Crashes {
			if w.Node >= *nodes {
				fmt.Fprintf(os.Stderr, "profile %q crashes node %d; raise -nodes (and use -replicas 2 to survive it)\n",
					*chaosProfile, w.Node)
				os.Exit(2)
			}
		}
	}
	if *nodes < 1 || *replicas < 1 || *replicas > *nodes {
		fmt.Fprintf(os.Stderr, "-replicas must be between 1 and -nodes (%d)\n", *nodes)
		os.Exit(2)
	}
	coresList := []int{0} // 0 = the 4-core default with the legacy manager
	if *coresSpec != "" {
		coresList = coresList[:0]
		for _, f := range strings.Split(*coresSpec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "-cores wants a comma list of positive core counts, got %q\n", *coresSpec)
				os.Exit(2)
			}
			coresList = append(coresList, n)
		}
		if *tenants > 0 {
			fmt.Fprintln(os.Stderr, "-cores boots the sharded manager, which does not compose with -tenants")
			os.Exit(2)
		}
	}
	if *wideLocks && *coresSpec == "" {
		fmt.Fprintln(os.Stderr, "-wide-locks needs -cores")
		os.Exit(2)
	}

	runOnce := func(coreN int) {
		var prefetcher prefetch.Prefetcher
		switch *pf {
		case "none", "app-aware":
		case "readahead":
			prefetcher = prefetch.NewReadahead(0)
		case "trend":
			prefetcher = prefetch.NewTrend()
		case "leap":
			prefetcher = prefetch.NewLeap()
		default:
			fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", *pf)
			os.Exit(2)
		}

		eng := sim.New()
		frames := int(float64(*pages) * *cache)
		if frames < 96 {
			frames = 96
		}
		remote := *pages*4096 + (128 << 20)

		var launch func(fn func(sp space.Space, mmap func(uint64) (uint64, error)))
		var report func()
		var obsFinish func()
		var registry *stats.Registry
		var rec *telemetry.Recorder
		var sampleEvery sim.Time
		var telOf func() (*telemetry.Recorder, *telemetry.Sampler)
		if *traceOut != "" {
			rec = telemetry.NewRecorder(0)
			sampleEvery = sim.Time((*sampleInterval).Nanoseconds())
		}

		var guide *redis.AppGuide
		if *pf == "app-aware" {
			guide = redis.NewAppGuide()
		}
		switch *system {
		case "dilos":
			coreCount := 4
			if coreN > 0 {
				coreCount = coreN
			}
			cfg := core.Config{
				CacheFrames: frames, Cores: coreCount, RemoteBytes: remote,
				Fabric: fabric.DefaultParams(), Prefetcher: prefetcher,
				MemNodes: *nodes, Replicas: *replicas, Placement: policy,
				Batch: *batch,
				Tel:   rec, SampleEvery: sampleEvery,
			}
			if coreN > 0 {
				if *wideLocks {
					cfg.Shards, cfg.WideLocks = 1, true
				} else {
					cfg.Shards = coreN
				}
			}
			if chaosOn {
				cfg.Chaos = chaos.NewInjector(chaosCfg)
			}
			if migrateOn {
				cfg.Migrate = &migrate.Tuning{Watermark: *watermark}
			}
			if *tenants > 0 {
				cfg.RemoteBytes = uint64(*tenants)*(*pages)*4096 + (128 << 20)
				cfg.Tenancy = &core.TenancyConfig{
					SlackFrames:    frames / 8,
					RebalanceEvery: 500 * sim.Microsecond,
					RebalanceStep:  8,
				}
			}
			var pl *obs.Plane
			if obsOn {
				pl = obs.NewPlane()
				// µs-scale objective so short interactive runs (and the tail
				// chaos profile) exercise the burn-rate alerts: 99% of faults
				// within 25µs, one 500µs/100µs ×8 rule.
				pl.Objective = obs.Objective{
					Budget: 25 * sim.Microsecond,
					Target: 0.99,
					Rules:  []obs.BurnRule{{Long: 500 * sim.Microsecond, Short: 100 * sim.Microsecond, MaxBurn: 8}},
				}
				pl.Sink = obsSink
				cfg.Obs = pl
			}
			sys := core.New(eng, cfg)
			if guide != nil {
				sys.AttachGuide(guide)
			}
			var tens []*core.Tenant
			for i := 0; i < *tenants; i++ {
				q := tenant.Quota{Weight: 1, FloorFrames: 48}
				if i > 0 && *tenantRate > 0 {
					q.FabricBytesPerSec = *tenantRate
					q.FabricBurstBytes = 16 << 10
				}
				spec := core.TenantSpec{Name: fmt.Sprintf("t%d", i), Quota: q}
				if i == 0 {
					spec.Prefetcher = prefetcher
				} else {
					spec.Prefetcher = prefetch.NewReadahead(0)
				}
				tn, err := sys.NewTenant(spec)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				tens = append(tens, tn)
			}
			sys.Start()
			// Neighbour tenants stream stores over a working set the size of the
			// workload's — thrashing their shares so tenant 0's numbers show what
			// the quotas (and -tenant-rate) do and don't protect.
			for i := 1; i < *tenants; i++ {
				tn := tens[i]
				cpu := 1 + (i-1)%3
				tn.Launch("neighbour", cpu, func(sp *core.DDCProc) {
					base, err := tn.MmapDDC(*pages)
					if err != nil {
						panic(err)
					}
					for round := 0; round < 2; round++ {
						for p := uint64(0); p < *pages; p++ {
							sp.StoreU64(base+p*4096, p)
						}
					}
				})
			}
			if drainNode >= 0 {
				// A plain proc (not a daemon) so the engine stays alive until the
				// evacuation finishes even if the workload completes first; the
				// cutoff bounds the run if the drain can never converge.
				eng.Go("drain-driver", func(p *sim.Proc) {
					p.Sleep(drainAt)
					if err := sys.Drain(drainNode); err != nil {
						fmt.Fprintf(os.Stderr, "drain: %v\n", err)
						return
					}
					cutoff := drainAt + 500*sim.Millisecond
					for p.Now() < cutoff {
						if sys.Space().State(drainNode) == placement.Removed {
							fmt.Printf("drain: node %d removed at %v (%d pages moved)\n",
								drainNode, p.Now(), sys.Mig.PagesMoved.N)
							return
						}
						p.Sleep(100 * sim.Microsecond)
					}
					fmt.Fprintf(os.Stderr, "drain: node %d not removed by %v (occupancy %d)\n",
						drainNode, cutoff, sys.Space().Occupancy(drainNode))
				})
			}
			registry = sys.Registry()
			telOf = sys.Telemetry
			if pl != nil {
				obsFinish = func() {
					if pl.Sink != nil {
						// Final render so scrapes after the run see end state.
						pl.Sink.PublishMetrics(obs.AppendMetrics(nil, sys.Registry().Snapshot(), sys.Tel))
						pl.Sink.PublishStatus(sys.AppendStatus(nil, eng.Now()))
						pl.Sink.PublishJournal(pl.Journal.AppendJSONL(nil))
					}
					if *journalOut != "" {
						if err := os.WriteFile(*journalOut, pl.Journal.AppendJSONL(nil), 0o644); err != nil {
							fmt.Fprintln(os.Stderr, err)
							os.Exit(1)
						}
						fmt.Printf("journal: wrote %s (%d events)\n", *journalOut, len(pl.Journal.Events()))
					}
					fmt.Printf("slo: %d bad events, %d alerts raised, %d cleared\n",
						pl.Monitor.Bad.N, pl.Monitor.Raised.N, pl.Monitor.Cleared.N)
				}
			}
			app := sys
			if len(tens) > 0 {
				app = tens[0].Sys
			}
			launch = func(fn func(space.Space, func(uint64) (uint64, error))) {
				app.Launch("app", 0, func(sp *core.DDCProc) { fn(sp, app.MmapDDC) })
			}
			report = func() {
				fmt.Printf("faults: major=%d minor=%d late-map=%d prefetches=%d\n",
					app.MajorFaults.N, app.MinorFaults.N, app.LateMapHits.N, app.Prefetches.N)
				fmt.Printf("page manager: cleaned=%d evicted=%d sync-writes=%d\n",
					app.Mgr.Cleaned.N, app.Mgr.Evicted.N, app.Mgr.SyncWrites.N)
				for _, tn := range tens {
					fmt.Printf("tenant %s: reserved=%d used=%d borrowed=%d major=%d evicted=%d alloc-waits=%d\n",
						tn.Name, tn.View().Reserved(), tn.View().Used(), tn.View().Borrowed(),
						tn.Sys.MajorFaults.N, tn.Sys.Mgr.Evicted.N, tn.Sys.Mgr.AllocWaits.N)
				}
				fmt.Printf("network: rx=%d MB tx=%d MB\n",
					sys.Link.RxBytes.N>>20, sys.Link.TxBytes.N>>20)
				if sys.Mig != nil {
					fmt.Printf("migration: moved=%d restarts=%d stranded=%d drains-done=%d rebalances=%d forwarded=%d\n",
						sys.Mig.PagesMoved.N, sys.Mig.CopyRestarts.N, sys.Mig.Stranded.N,
						sys.Mig.DrainsDone.N, sys.Mig.Rebalances.N, sys.Space().Forwarded())
				}
				if sys.Chaos != nil {
					fmt.Printf("chaos: injected-fails=%d tails=%d stalls=%d node-down-ops=%d\n",
						sys.Chaos.Fails.N, sys.Chaos.Tails.N, sys.Chaos.Stalls.N, sys.Chaos.Crashed.N)
					fmt.Printf("recovery: retries=%d gave-up=%d replica-fetches=%d write-fails=%d "+
						"prefetch-fails=%d rereplicated=%d breaker-trips=%d recoveries=%d\n",
						sys.FetchRetries.Retries.N, sys.FetchRetries.GaveUp.N, sys.ReplicaFetches.N,
						sys.Mgr.WriteFails.N, sys.PrefetchFails.N, sys.ReReplicated.N,
						sys.Health.NodeFails.N, sys.Health.NodeRecoveries.N)
				}
			}
		case "fastswap":
			coreCount := 4
			if coreN > 0 {
				coreCount = coreN
			}
			sys := fastswap.New(eng, fastswap.Config{
				CacheFrames: frames, Cores: coreCount, RemoteBytes: remote,
				Fabric: fabric.DefaultParams(),
				Tel:    rec, SampleEvery: sampleEvery,
			})
			sys.Start()
			registry = sys.Registry()
			telOf = sys.Telemetry
			launch = func(fn func(space.Space, func(uint64) (uint64, error))) {
				sys.Launch("app", 0, func(sp *fastswap.FSProc) { fn(sp, sys.MmapDDC) })
			}
			report = func() {
				fmt.Printf("faults: major=%d minor=%d direct-reclaims=%d sync-writes=%d\n",
					sys.MajorFaults.N, sys.MinorFaults.N, sys.DirectRecl.N, sys.SyncWrites.N)
				fmt.Printf("network: rx=%d MB tx=%d MB\n",
					sys.Link.RxBytes.N>>20, sys.Link.TxBytes.N>>20)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
			os.Exit(2)
		}

		var elapsed sim.Time
		var summary string
		launch(func(sp space.Space, mmap func(uint64) (uint64, error)) {
			switch *workload {
			case "seqread":
				base, _ := mmap(*pages)
				elapsed = workloads.SeqRead(sp, base, *pages)
				summary = fmt.Sprintf("%.2f GB/s", stats.GBps(float64(*pages*4096)/elapsed.Seconds()))
			case "seqwrite":
				base, _ := mmap(*pages)
				elapsed = workloads.SeqWrite(sp, base, *pages)
				summary = fmt.Sprintf("%.2f GB/s", stats.GBps(float64(*pages*4096)/elapsed.Seconds()))
			case "quicksort":
				n := *pages * 4096 / 8
				base, _ := mmap(*pages + 1)
				workloads.FillRandomU64(sp, base, n, 1)
				elapsed = workloads.Quicksort(sp, base, n)
				if !workloads.IsSorted(sp, base, n) {
					summary = "SORT FAILED"
				} else {
					summary = fmt.Sprintf("sorted %d elements", n)
				}
			case "kmeans":
				cfg := workloads.DefaultKMeans(*pages * 4096 / (15 * 8 * 4))
				pb, ab, db := workloads.KMeansLayout(cfg)
				base, _ := mmap((pb+ab+db)/4096 + 2)
				workloads.KMeansInit(sp, base, cfg)
				var inertia uint64
				elapsed, inertia = workloads.KMeans(sp, base, base+pb, base+pb+ab, cfg)
				summary = fmt.Sprintf("inertia=%d", inertia)
			case "redis-get":
				srv := redis.NewServer(sp)
				if guide != nil {
					guide.Install(srv, procOf(sp))
				}
				keys := int(*pages) / 2
				redis.PopulateGET(srv, keys, redis.SizeFixed(4096))
				res := redis.RunGET(sp, srv, keys, keys*2, redis.SizeFixed(4096), 1)
				elapsed = res.Elapsed
				summary = fmt.Sprintf("%.0f ops/s, p99=%v, bad=%d",
					res.ThroughputOps(), res.Latency.P99(), res.BadValues)
			case "redis-lrange":
				srv := redis.NewServer(sp)
				if guide != nil {
					guide.Install(srv, procOf(sp))
				}
				redis.PopulateLRANGE(srv, 64, int(*pages)*4, 100, 2)
				res := redis.RunLRANGE(sp, srv, 64, 500, 3)
				elapsed = res.Elapsed
				summary = fmt.Sprintf("%.0f ops/s, p99=%v", res.ThroughputOps(), res.Latency.P99())
			default:
				fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
				os.Exit(2)
			}
		})
		eng.Run()

		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			r, sam := telOf()
			if err := telemetry.WritePerfetto(f, r, sam); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("trace: wrote %s (%d spans, %d dropped)\n",
				*traceOut, r.Len(), r.DroppedTotal())
		}

		fmt.Printf("%s on %s (%s, %.1f%% local): %v — %s\n",
			*workload, *system, *pf, *cache*100, elapsed, summary)
		if *nodes > 1 || *replicas > 1 {
			fmt.Printf("placement: %s across %d nodes, %d replica(s) per page\n",
				policy.Name(), *nodes, *replicas)
		}
		report()
		if obsFinish != nil {
			obsFinish()
		}
		if *dumpStats {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(registry.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	for i, coreN := range coresList {
		if i > 0 {
			fmt.Println()
		}
		if *coresSpec != "" {
			fmt.Printf("=== cores=%d ===\n", coreN)
		}
		runOnce(coreN)
	}
}

func procOf(sp space.Space) *sim.Proc {
	type hasProc interface{ Proc() *sim.Proc }
	return sp.(hasProc).Proc()
}
