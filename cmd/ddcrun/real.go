package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"dilos/internal/experiments"
)

// realChaosFlags carries the -real-* flag values into runRealChaos.
type realChaosFlags struct {
	nodes, replicas, pages, workers int
	deadline                        time.Duration
	baseline, outage, recovery      time.Duration
	memnoded                        string
	dumpStats                       bool
}

// runRealChaos is the ext9 entry point: instead of driving the simulator it
// spawns real memnoded processes over loopback TCP, kill -9's one mid-run,
// and verifies every acknowledged byte against a host-side shadow. Returns
// the process exit code (non-zero on corruption or harness failure).
func runRealChaos(f realChaosFlags) int {
	bin := f.memnoded
	if bin == "" {
		dir, err := os.MkdirTemp("", "ddcrun-memnoded-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.RemoveAll(dir)
		fmt.Fprintf(os.Stderr, "ext9: building memnoded into %s\n", dir)
		if bin, err = experiments.BuildMemnoded(dir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	res, err := experiments.ExtRealChaos(experiments.RealChaosConfig{
		MemnodedPath: bin,
		Nodes:        f.nodes,
		Replicas:     f.replicas,
		Pages:        f.pages,
		Workers:      f.workers,
		Deadline:     f.deadline,
		Baseline:     f.baseline,
		Outage:       f.outage,
		Recovery:     f.recovery,
		V1Compare:    true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ext9: %v\n", err)
		return 1
	}

	fmt.Printf("ext9: %d memnoded replicas=%d pages=%d, killed node %d (pid %d) at %v, restarted at %v\n",
		res.Nodes, res.Replicas, res.Pages, res.KilledNode, res.KilledPid, res.KillAt, res.RecoverAt)
	fmt.Printf("ext9: %d ops (%d reads, %d writes), %d bounded failures, %d verified, re-replicated %d pages in %v\n",
		res.Ops, res.Reads, res.Writes, res.FailedOps, res.Verified, res.ReReplicated, res.RecoverTook)
	fmt.Printf("ext9: throughput baseline %.1f MB/s, outage %.1f MB/s, recovered %.1f MB/s\n",
		res.BaselineMBs, res.OutageMBs, res.RecoveredMBs)
	fmt.Printf("ext9: stall (budget %v): p50=%v p99=%v max=%v\n",
		res.DeadlineBudget, res.StallP50, res.StallP99, res.StallMax)
	if res.V1ReadMBs > 0 {
		fmt.Printf("ext9: loopback 4KiB READ: v1 sequential %.1f MB/s, v2 pipelined %.1f MB/s (%.2fx)\n",
			res.V1ReadMBs, res.V2ReadMBs, res.V2ReadMBs/res.V1ReadMBs)
	}
	keys := make([]string, 0, len(res.Transport))
	for k := range res.Transport {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-26s %d\n", k, res.Transport[k])
	}
	fmt.Printf("ext9: corruptions: %d\n", res.Corruptions)

	if f.dumpStats {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	if res.Corruptions != 0 {
		fmt.Fprintf(os.Stderr, "ext9: FAIL: %d corruptions against the host-side shadow\n", res.Corruptions)
		return 1
	}
	return 0
}
