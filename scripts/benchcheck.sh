#!/usr/bin/env sh
# benchcheck.sh — benchstat-style regression gate for the host-side
# hot-path benchmarks. Runs BenchmarkFaultPath and BenchmarkFaultPathObs
# (root; the latter is the same fault loop with the full observability
# plane attached, so their delta is the plane's per-fault cost),
# BenchmarkKVDecodeStep (root; one guided KV decode step end to end) and
# BenchmarkSubmit (internal/fabric) several times, takes the best
# (minimum) ns/op per benchmark — the benchstat idea: noise only ever
# slows a run down — and fails if any regresses more than 10% over the
# committed baseline in bench_baseline.txt.
#
#   scripts/benchcheck.sh          # check against the baseline
#   scripts/benchcheck.sh -update  # re-measure and rewrite the baseline
#
# Plain sh + awk on purpose: the CI image needs no extra tooling.
set -eu

cd "$(dirname "$0")/.."
BASELINE=bench_baseline.txt
RUNS=3
TOLERANCE=1.10

# best_ns <bench-regexp> <package> <benchtime> → minimum ns/op over $RUNS runs
best_ns() {
    best=""
    for _ in $(seq "$RUNS"); do
        ns=$(go test -bench "$1" -benchtime "$3" -run 'XXX' "$2" |
            awk -v b="${1#^}" '$1 ~ b {print $3; exit}')
        [ -n "$ns" ] || { echo "benchcheck: no ns/op from $1 in $2" >&2; exit 1; }
        if [ -z "$best" ] || awk -v n="$ns" -v b="$best" 'BEGIN{exit !(n<b)}'; then
            best=$ns
        fi
    done
    echo "$best"
}

faultpath=$(best_ns '^BenchmarkFaultPath$' '.' 20000x)
faultobs=$(best_ns '^BenchmarkFaultPathObs$' '.' 20000x)
kvdecode=$(best_ns '^BenchmarkKVDecodeStep$' '.' 500x)
submit=$(best_ns '^BenchmarkSubmit$' './internal/fabric/' 50000x)

if [ "${1:-}" = "-update" ]; then
    {
        echo "# Host-side ns/op baselines for scripts/benchcheck.sh (best of $RUNS runs)."
        echo "# Refresh on the reference machine with: scripts/benchcheck.sh -update"
        echo "BenchmarkFaultPath $faultpath"
        echo "BenchmarkFaultPathObs $faultobs"
        echo "BenchmarkKVDecodeStep $kvdecode"
        echo "BenchmarkSubmit $submit"
    } >"$BASELINE"
    echo "benchcheck: baseline updated — FaultPath ${faultpath} ns/op, FaultPathObs ${faultobs} ns/op, KVDecodeStep ${kvdecode} ns/op, Submit ${submit} ns/op"
    exit 0
fi

[ -f "$BASELINE" ] || { echo "benchcheck: missing $BASELINE (run with -update)" >&2; exit 1; }

fail=0
for pair in "BenchmarkFaultPath $faultpath" "BenchmarkFaultPathObs $faultobs" "BenchmarkKVDecodeStep $kvdecode" "BenchmarkSubmit $submit"; do
    name=${pair% *}
    got=${pair#* }
    want=$(awk -v n="$name" '$1 == n {print $2}' "$BASELINE")
    [ -n "$want" ] || { echo "benchcheck: $name missing from $BASELINE" >&2; exit 1; }
    if awk -v g="$got" -v w="$want" -v t="$TOLERANCE" 'BEGIN{exit !(g > w*t)}'; then
        echo "FAIL $name: $got ns/op vs baseline $want (>${TOLERANCE}x)"
        fail=1
    else
        echo "ok   $name: $got ns/op vs baseline $want"
    fi
done
exit $fail
