// Package dalloc is the reproduction's take on DiLOS' modified mimalloc
// (§5 "Prefetchers and guides"): a size-class allocator over disaggregated
// memory that tracks live objects with **per-page allocation bitmaps**
// instead of free lists. The bitmaps are what guided paging (§4.4) reads:
// the cleaner asks for a page's live chunks and moves only those with
// vectored RDMA, and the fault handler re-fetches only those from an
// Action PTE.
//
// Layout follows mimalloc's spirit: small allocations come from size-class
// pages (every chunk in a page has the same size, so one bitmap bit per
// chunk suffices); large allocations get dedicated page runs. Allocator
// metadata lives host-side (it models mimalloc's out-of-band page
// descriptors); only object payloads live in the simulated address space.
package dalloc

import (
	"fmt"
	"math/bits"

	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/space"
)

// PageSize is the allocator's page granularity (matches the paging unit).
const PageSize = pagetable.PageSize

// classes are the chunk sizes of size-class pages. 16 B minimum (mimalloc's
// small-object floor), 2048 B maximum (two chunks per page); anything
// larger becomes a dedicated run.
var classes = []uint32{16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048}

// maxSmall is the largest size served from a size-class page.
const maxSmall = 2048

// AllocCost models the CPU cost of one malloc/free (mimalloc's fast path).
const AllocCost = 15 * sim.Nanosecond

type pageMeta struct {
	base   uint64 // first byte of the page
	class  uint32 // chunk size; 0 for a large run
	chunks uint32 // chunks per page
	bitmap [4]uint64
	used   uint32
	next   *pageMeta // free-page list per class
	large  uint64    // for large runs: total bytes of the run (head page only)
}

// Allocator is one allocator instance bound to a Space.
type Allocator struct {
	sp    space.Space
	pages map[pagetable.VPN]*pageMeta
	avail []*pageMeta // per class: pages with free chunks (head of list)

	Allocs int64
	Frees  int64
	InUse  int64
}

// New creates an allocator over a Space.
func New(sp space.Space) *Allocator {
	return &Allocator{
		sp:    sp,
		pages: map[pagetable.VPN]*pageMeta{},
		avail: make([]*pageMeta, len(classes)),
	}
}

func classIndex(size uint64) int {
	for i, c := range classes {
		if uint64(c) >= size {
			return i
		}
	}
	return -1
}

// Alloc returns the address of a size-byte object.
func (a *Allocator) Alloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	a.sp.Compute(AllocCost)
	a.Allocs++
	a.InUse++
	if size > maxSmall {
		return a.allocLarge(size)
	}
	ci := classIndex(size)
	pm := a.avail[ci]
	if pm == nil {
		pm = a.newClassPage(ci)
	}
	// Find a clear bit.
	for w := 0; w < 4; w++ {
		free := ^pm.bitmap[w]
		if free == 0 {
			continue
		}
		bit := bits.TrailingZeros64(free)
		idx := uint32(w*64 + bit)
		if idx >= pm.chunks {
			break
		}
		pm.bitmap[w] |= 1 << uint(bit)
		pm.used++
		if pm.used == pm.chunks {
			a.avail[ci] = pm.next
			pm.next = nil
		}
		return pm.base + uint64(idx)*uint64(pm.class)
	}
	panic("dalloc: available page had no free chunk")
}

func (a *Allocator) newClassPage(ci int) *pageMeta {
	base := a.sp.Malloc(PageSize)
	if base%PageSize != 0 {
		panic("dalloc: backing page not aligned")
	}
	pm := &pageMeta{
		base:   base,
		class:  classes[ci],
		chunks: uint32(PageSize / classes[ci]),
		next:   a.avail[ci],
	}
	a.avail[ci] = pm
	a.pages[pagetable.VPNOf(base)] = pm
	return pm
}

func (a *Allocator) allocLarge(size uint64) uint64 {
	npages := (size + PageSize - 1) / PageSize
	base := a.sp.Malloc(npages * PageSize)
	head := &pageMeta{base: base, large: npages * PageSize}
	a.pages[pagetable.VPNOf(base)] = head
	for i := uint64(1); i < npages; i++ {
		a.pages[pagetable.VPNOf(base+i*PageSize)] = head
	}
	return base
}

// Free releases an object by address.
func (a *Allocator) Free(addr uint64) {
	a.sp.Compute(AllocCost)
	pm := a.pages[pagetable.VPNOf(addr)]
	if pm == nil {
		panic(fmt.Sprintf("dalloc: free of unknown address %#x", addr))
	}
	a.Frees++
	a.InUse--
	if pm.class == 0 {
		// Large run: drop all page metadata; the range returns to the
		// region allocator.
		npages := pm.large / PageSize
		for i := uint64(0); i < npages; i++ {
			delete(a.pages, pagetable.VPNOf(pm.base+i*PageSize))
		}
		a.sp.Free(pm.base, pm.large)
		return
	}
	off := addr - pm.base
	if off%uint64(pm.class) != 0 {
		panic(fmt.Sprintf("dalloc: free of interior pointer %#x", addr))
	}
	idx := uint32(off / uint64(pm.class))
	w, bit := idx/64, idx%64
	if pm.bitmap[w]&(1<<bit) == 0 {
		panic(fmt.Sprintf("dalloc: double free of %#x", addr))
	}
	// Like mimalloc, the freed block's first word carries allocator state
	// (the free-list link). This write is what dirties fragmenting pages
	// during DEL churn — and since the chunk is now dead, guided paging
	// excludes exactly these bytes from the write-back (Figure 12's DEL
	// savings).
	a.sp.StoreU64(addr, 0)
	wasFull := pm.used == pm.chunks
	pm.bitmap[w] &^= 1 << bit
	pm.used--
	if wasFull {
		ci := classIndex(uint64(pm.class))
		pm.next = a.avail[ci]
		a.avail[ci] = pm
	}
}

// SizeOf returns the allocated size of the object at addr.
func (a *Allocator) SizeOf(addr uint64) uint64 {
	pm := a.pages[pagetable.VPNOf(addr)]
	if pm == nil {
		panic(fmt.Sprintf("dalloc: SizeOf of unknown address %#x", addr))
	}
	if pm.class == 0 {
		return pm.large
	}
	return uint64(pm.class)
}

// LiveChunks implements pagemgr.EvictionGuide: it reads the page's
// allocation bitmap and returns the live byte ranges, merged down to at
// most pagemgr.MaxVectorSegs segments (the paper's vectored-RDMA sweet
// spot). ok=false means "no information / not worth vectoring" — the page
// manager then moves the whole page.
func (a *Allocator) LiveChunks(vpn pagetable.VPN) ([]pagemgr.Chunk, bool) {
	pm := a.pages[vpn]
	if pm == nil || pm.class == 0 {
		return nil, false // not an allocator page, or a large run
	}
	if pm.used == 0 {
		// Fully dead page: a single degenerate chunk would still move
		// bytes; report the smallest legal vector (one chunk) instead of
		// claiming the whole page.
		return []pagemgr.Chunk{{Off: 0, Len: pm.class}}, true
	}
	if pm.used == pm.chunks {
		return nil, false // fully live: vectoring saves nothing
	}
	// Collect runs of consecutive live chunks.
	var runs []pagemgr.Chunk
	var cur *pagemgr.Chunk
	for idx := uint32(0); idx < pm.chunks; idx++ {
		live := pm.bitmap[idx/64]&(1<<(idx%64)) != 0
		if live {
			off := idx * pm.class
			if cur != nil && cur.Off+cur.Len == off {
				cur.Len += pm.class
			} else {
				runs = append(runs, pagemgr.Chunk{Off: off, Len: pm.class})
				cur = &runs[len(runs)-1]
			}
		} else {
			cur = nil
		}
	}
	// Merge runs with the smallest gaps until we fit the vector cap.
	for len(runs) > pagemgr.MaxVectorSegs {
		best := 1
		bestGap := uint32(PageSize)
		for i := 1; i < len(runs); i++ {
			gap := runs[i].Off - (runs[i-1].Off + runs[i-1].Len)
			if gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		runs[best-1].Len = runs[best].Off + runs[best].Len - runs[best-1].Off
		runs = append(runs[:best], runs[best+1:]...)
	}
	total := uint32(0)
	for _, r := range runs {
		total += r.Len
	}
	if total >= PageSize {
		return nil, false
	}
	return runs, true
}

// Classes exposes the size-class table (for tests and docs).
func Classes() []uint32 {
	out := make([]uint32, len(classes))
	copy(out, classes)
	return out
}
