package dalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/space"
)

func newAlloc() (*Allocator, *space.Local) {
	sp := space.NewLocal(64 << 20)
	return New(sp), sp
}

func TestAllocDistinctAligned(t *testing.T) {
	a, _ := newAlloc()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		addr := a.Alloc(64)
		if addr%16 != 0 {
			t.Fatalf("unaligned address %#x", addr)
		}
		if seen[addr] {
			t.Fatalf("duplicate address %#x", addr)
		}
		seen[addr] = true
	}
	if a.InUse != 1000 {
		t.Fatalf("in use = %d", a.InUse)
	}
}

func TestFreeAndReuse(t *testing.T) {
	a, _ := newAlloc()
	x := a.Alloc(128)
	a.Free(x)
	y := a.Alloc(128)
	if y != x {
		t.Fatalf("freed chunk not reused: %#x vs %#x", y, x)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a, _ := newAlloc()
	x := a.Alloc(32)
	a.Free(x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Free(x)
}

func TestInteriorFreePanics(t *testing.T) {
	a, _ := newAlloc()
	x := a.Alloc(256)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Free(x + 8)
}

func TestSizeOf(t *testing.T) {
	a, _ := newAlloc()
	if got := a.SizeOf(a.Alloc(100)); got != 128 {
		t.Fatalf("SizeOf(100-byte alloc) = %d, want class 128", got)
	}
	if got := a.SizeOf(a.Alloc(5000)); got != 8192 {
		t.Fatalf("SizeOf(5000-byte alloc) = %d, want 2 pages", got)
	}
}

func TestLargeAllocation(t *testing.T) {
	a, _ := newAlloc()
	x := a.Alloc(3 * PageSize)
	if x%PageSize != 0 {
		t.Fatalf("large alloc not page aligned: %#x", x)
	}
	// All its pages are known to the allocator and report "whole page".
	for i := uint64(0); i < 3; i++ {
		if _, ok := a.LiveChunks(pagetable.VPNOf(x + i*PageSize)); ok {
			t.Fatal("large-run page must not offer a vector")
		}
	}
	a.Free(x)
	if _, ok := a.pages[pagetable.VPNOf(x)]; ok {
		t.Fatal("large-run metadata leaked after free")
	}
}

func TestLiveChunksFullPage(t *testing.T) {
	a, _ := newAlloc()
	var addrs []uint64
	// Fill one 512-class page completely (8 chunks).
	for i := 0; i < 8; i++ {
		addrs = append(addrs, a.Alloc(512))
	}
	if _, ok := a.LiveChunks(pagetable.VPNOf(addrs[0])); ok {
		t.Fatal("fully live page must not offer a vector (saves nothing)")
	}
}

func TestLiveChunksAfterFrees(t *testing.T) {
	a, _ := newAlloc()
	var addrs []uint64
	for i := 0; i < 8; i++ {
		addrs = append(addrs, a.Alloc(512))
	}
	// Free chunks 1,2,3,5,6,7 — keep 0 and 4.
	for _, i := range []int{1, 2, 3, 5, 6, 7} {
		a.Free(addrs[i])
	}
	chunks, ok := a.LiveChunks(pagetable.VPNOf(addrs[0]))
	if !ok {
		t.Fatal("expected a vector")
	}
	if len(chunks) != 2 {
		t.Fatalf("chunks = %v", chunks)
	}
	if chunks[0].Off != 0 || chunks[0].Len != 512 || chunks[1].Off != 2048 || chunks[1].Len != 512 {
		t.Fatalf("chunks = %v", chunks)
	}
}

func TestLiveChunksRespectsSegmentCap(t *testing.T) {
	a, _ := newAlloc()
	var addrs []uint64
	for i := 0; i < 32; i++ { // one 128-class page
		addrs = append(addrs, a.Alloc(128))
	}
	// Free every other chunk: 16 runs — must merge to <= MaxVectorSegs.
	for i := 1; i < 32; i += 2 {
		a.Free(addrs[i])
	}
	chunks, ok := a.LiveChunks(pagetable.VPNOf(addrs[0]))
	if !ok {
		t.Fatal("expected a vector")
	}
	if len(chunks) > pagemgr.MaxVectorSegs {
		t.Fatalf("vector too long: %d segments", len(chunks))
	}
	// Every live chunk must be covered.
	covered := func(off uint32) bool {
		for _, c := range chunks {
			if off >= c.Off && off+128 <= c.Off+c.Len {
				return true
			}
		}
		return false
	}
	for i := 0; i < 32; i += 2 {
		off := uint32(addrs[i] % PageSize)
		if !covered(off) {
			t.Fatalf("live chunk at %d not covered by %v", off, chunks)
		}
	}
}

func TestLiveChunksUnknownPage(t *testing.T) {
	a, _ := newAlloc()
	if _, ok := a.LiveChunks(12345); ok {
		t.Fatal("unknown page must not offer a vector")
	}
}

// Property (DESIGN.md §6): bitmap popcount == live object count per page,
// and random alloc/free sequences never hand out overlapping objects.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := newAlloc()
		type obj struct {
			addr uint64
			size uint64
		}
		var live []obj
		for i := 0; i < 600; i++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				size := uint64(rng.Intn(1024) + 1)
				addr := a.Alloc(size)
				// No overlap with any live object (use class size, since
				// that's the reserved extent).
				got := a.SizeOf(addr)
				for _, o := range live {
					if addr < o.addr+o.size && o.addr < addr+got {
						return false
					}
				}
				live = append(live, obj{addr, got})
			} else {
				k := rng.Intn(len(live))
				a.Free(live[k].addr)
				live = append(live[:k], live[k+1:]...)
			}
		}
		// Per-page: used counter equals bitmap popcount equals live objects.
		counts := map[pagetable.VPN]int{}
		for _, o := range live {
			counts[pagetable.VPNOf(o.addr)]++
		}
		for vpn, pm := range a.pages {
			if pm.class == 0 {
				continue
			}
			if vpn != pagetable.VPNOf(pm.base) {
				continue
			}
			pop := 0
			for _, w := range pm.bitmap {
				for ; w != 0; w &= w - 1 {
					pop++
				}
			}
			if pop != int(pm.used) || pop != counts[vpn] {
				return false
			}
		}
		return a.InUse == int64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: LiveChunks always covers every live chunk and never exceeds
// the segment cap.
func TestQuickLiveChunksCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := newAlloc()
		class := classes[rng.Intn(len(classes))]
		n := int(PageSize / class)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = a.Alloc(uint64(class))
		}
		vpn := pagetable.VPNOf(addrs[0])
		livemap := make([]bool, n)
		for i := range livemap {
			livemap[i] = true
		}
		for i := range addrs {
			if rng.Intn(2) == 0 {
				a.Free(addrs[i])
				livemap[i] = false
			}
		}
		chunks, ok := a.LiveChunks(vpn)
		if !ok {
			return true // whole-page fallback is always safe
		}
		if len(chunks) > pagemgr.MaxVectorSegs {
			return false
		}
		for i, lv := range livemap {
			if !lv {
				continue
			}
			off := uint32(addrs[i] % PageSize)
			found := false
			for _, c := range chunks {
				if off >= c.Off && off+class <= c.Off+c.Len {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
