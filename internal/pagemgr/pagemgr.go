// Package pagemgr is DiLOS' page manager (§4.4). It owns the local frame
// pool and hides reclamation latency inside the fetch window of page faults
// by doing all of it in the background:
//
//   - the *allocator* hands the fault handler a free frame in O(1) and, by
//     eagerly keeping a free watermark, (almost) never blocks;
//   - the *cleaner* daemon periodically scans the LRU list for dirty pages,
//     writes them back to the memory node on its own queue pair, and clears
//     their dirty bits;
//   - the *reclaimer* daemon runs the clock algorithm over the LRU list and
//     evicts the least-recently-used *clean* pages when free frames fall
//     below the low watermark.
//
// Guided paging (§4.4) plugs in through EvictionGuide: the cleaner asks the
// guide for a page's live chunks (from the user allocator's per-page
// bitmaps), writes back only those with a vectored RDMA request, and logs
// the vector; the reclaimer then evicts the page to an Action PTE holding
// the vector-log index, so the eventual re-fetch also moves only live bytes.
package pagemgr

import (
	"fmt"

	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// Chunk is a live byte range within a page (offsets relative to the page).
type Chunk struct {
	Off uint32
	Len uint32
}

// EvictionGuide supplies allocator semantics for guided paging: the live
// chunks of a page. ok=false means "no information — move the whole page".
type EvictionGuide interface {
	LiveChunks(vpn pagetable.VPN) (chunks []Chunk, ok bool)
}

// MaxVectorSegs caps guided-paging vectors: the paper measured a steep
// vectored-RDMA slowdown past three segments, so guides merge or fall back
// beyond it (§6.3).
const MaxVectorSegs = 3

// HugeRegions maps pages that live inside a 2 MB huge region to their
// write-back sub-page (the 32 KiB dirty-tracking granule). The batched
// cleaner expands a dirty page it finds into the whole sub-span — the
// contiguous pages coalesce into one vectored write — instead of writing
// pages back one at a time. Implemented by core.System for regions mapped
// with MmapDDCHuge; ok=false means the page is ordinarily mapped.
type HugeRegions interface {
	SubSpan(vpn pagetable.VPN) (start pagetable.VPN, pages int, ok bool)
}

// Config tunes the page manager.
type Config struct {
	LowWater      int      // wake the reclaimer below this many free frames
	HighWater     int      // reclaim until this many frames are free
	CleanerPeriod sim.Time // cleaner scan interval
	CleanerBatch  int      // max pages written back per cleaner pass
	ScanCost      sim.Time // CPU cost per frame examined by a daemon
	UnmapCost     sim.Time // CPU cost of one unmap + shootdown
	TagCAS        sim.Time // CPU cost of one narrow PTE tag transition (sharded mode only; 0 = uncharged)
}

// DefaultConfig sizes watermarks for a pool of `frames` frames.
func DefaultConfig(frames int) Config {
	low := frames / 16
	if low < 16 {
		low = 16
	}
	return Config{
		LowWater:      low,
		HighWater:     low * 3,
		CleanerPeriod: 20 * sim.Microsecond,
		CleanerBatch:  128,
		ScanCost:      30 * sim.Nanosecond,
		UnmapCost:     100 * sim.Nanosecond,
	}
}

// Target names a page's remote slot: the region offset on its memory node
// and the queue pairs that reach that node. With a single memory node all
// pages share the same queue pairs; with sharding (the §5.1 extension) the
// system hands back per-node queues. Replicas, when present, are further
// slots every write-back must also reach (the fault-tolerance extension);
// reads always use the head slot.
type Target struct {
	Off       uint64
	CleanQP   *fabric.QP
	ReclaimQP *fabric.QP
	Replicas  []Target
}

// Manager is the page manager instance of one owner — the whole computing
// node in single-owner mode, or one tenant's partition (a dram.View) in
// multi-tenant mode. Each manager keeps its own clock/dirty state; the
// cleaner and reclaimer daemons live in a Service shared across managers.
type Manager struct {
	Pool  dram.Frames
	Table *pagetable.Table
	Cfg   Config

	// RemoteOf maps a virtual page to its remote slot.
	RemoteOf func(pagetable.VPN) (Target, bool)

	// Throttled, when set, reports whether this owner's fabric share is
	// currently backlogged (its token bucket is over budget). The shared
	// cleaner and reclaimer consult it before doing write-back work on the
	// owner's behalf and skip to the next manager instead of waiting out
	// the backlog — a throttled tenant's dirty pages drain at that tenant's
	// own rate, and its allocators (not its neighbours') absorb the stall.
	Throttled func(now sim.Time) bool

	// Guide, when non-nil, enables guided paging.
	Guide EvictionGuide

	// Huge, when non-nil, resolves 2 MB huge-page regions: the batched
	// cleaner writes such pages back a 32 KiB sub-span at a time (see
	// HugeRegions). Wired by core.System on the first MmapDDCHuge call.
	Huge HugeRegions

	// Batch enables doorbell-batched write-backs: the cleaner sweeps its
	// dirty set first, groups targets by queue pair (one per memory node,
	// replicas included), coalesces contiguous remote offsets into vectored
	// writes, and posts each node's set through a single doorbell
	// (fabric.QP.Submit). The reclaimer's emergency clean does the same on
	// its own queue pair. Off by default: the per-op path is the paper's
	// calibrated baseline.
	Batch bool

	// Shards is the number of per-core LRU/clock shards this manager
	// sweeps (0 or 1 = the legacy single-list layout; must match
	// Pool.Shards()). With n > 1 the service runs one cleaner/reclaimer
	// pair per shard and each pair touches only its own list and scratch.
	Shards int

	// Wide, when set, is the modeled coarse page-manager lock: daemons
	// hold it across a whole sweep (including the pacing wait) and the
	// fault handler acquires it around every PTE transition. It exists so
	// the scaling experiments can measure what the shared-structure
	// baseline costs; production mode leaves it nil.
	Wide *sim.Lock

	svc   *Service   // the shared cleaner/reclaimer service, set by Attach
	freed sim.Waiter // allocators park here when the pool is empty

	// Per-shard, per-daemon scratch arenas for batched write-backs (the
	// cleaner and the reclaimer can interleave across yields — and shards
	// across each other — so none may share). Index 0 serves legacy mode.
	cleanScs   []wbScratch
	reclaimScs []wbScratch

	// vectors is the action-PTE payload log (guided paging). A frame's
	// last-cleaned vector index lives on the frame itself
	// (dram.Frame.VecIdx); eviction transfers the slot into an Action PTE
	// payload and the fault handler's Vector call releases it.
	vectors  []vecEntry
	freeVecs []uint64

	Cleaned     stats.Counter // pages written back by the cleaner
	Evicted     stats.Counter // pages evicted by the reclaimer
	SyncWrites  stats.Counter // emergency synchronous write-backs
	AllocWaits  stats.Counter // allocations that had to wait for a free frame
	VectorSaves stats.Counter // bytes saved by guided paging write-backs
	WriteFails  stats.Counter // write-backs left dirty because a replica write failed
	Steals      stats.Counter // evictions taken from a neighbour shard's list

	// OnSteal, when set, is called after a sharded reclaimer evicts from a
	// neighbour's list (thief = the daemon's home shard, victim = the shard
	// it raided). Core wires it to the control-plane journal.
	OnSteal func(now sim.Time, thief, victim int)

	// Gauges for the telemetry sampler: free-list depth vs the (constant)
	// watermarks, and the dirty set the last cleaner sweep encountered.
	FreeG      stats.Gauge
	DirtyG     stats.Gauge
	LowWaterG  stats.Gauge
	HighWaterG stats.Gauge

	// Tel, when set, records one span per cleaner pass that wrote pages
	// back (on CleanTrack, Arg = pages cleaned) and one per reclaimer
	// eviction step (on ReclaimTrack). Wired by the owning system. In
	// sharded mode CleanTracks/ReclaimTracks carry one track per shard
	// (clean/shard0, reclaim/shard1, ...) instead.
	Tel           *telemetry.Recorder
	CleanTrack    int
	ReclaimTrack  int
	CleanTracks   []int
	ReclaimTracks []int
}

func (m *Manager) cleanTrackFor(shard int) int {
	if shard < len(m.CleanTracks) {
		return m.CleanTracks[shard]
	}
	return m.CleanTrack
}

func (m *Manager) reclaimTrackFor(shard int) int {
	if shard < len(m.ReclaimTracks) {
		return m.ReclaimTracks[shard]
	}
	return m.ReclaimTrack
}

// cleanScFor returns the cleaner's scratch arena for one shard, growing
// the arena table on first use.
func (m *Manager) cleanScFor(shard int) *wbScratch {
	for len(m.cleanScs) <= shard {
		m.cleanScs = append(m.cleanScs, wbScratch{})
	}
	return &m.cleanScs[shard]
}

func (m *Manager) reclaimScFor(shard int) *wbScratch {
	for len(m.reclaimScs) <= shard {
		m.reclaimScs = append(m.reclaimScs, wbScratch{})
	}
	return &m.reclaimScs[shard]
}

type vecEntry struct {
	chunks []Chunk
	used   bool
}

// wbScratch holds one daemon's reusable buffers for batched write-backs.
type wbScratch struct {
	items []wbItem
	qps   []*fabric.QP
	segs  []fabric.Seg
	owner []int // parallel to segs: index into items
	reqs  []fabric.Req
	ops   []*fabric.Op
	spans []pagetable.VPN // huge sub-span starts already collected this pass
}

// wbItem is one dirty page picked up by a batched sweep, with everything
// the flush and retire phases need resolved up front (no yields happen
// between the sweep and the retire, so the snapshot stays valid).
type wbItem struct {
	id     dram.FrameID
	vpn    pagetable.VPN
	pte    pagetable.PTE
	tgt    Target
	chunks []Chunk
	guided bool
	failed bool
}

func qpOf(t *Target, reclaimPath bool) *fabric.QP {
	if reclaimPath {
		return t.ReclaimQP
	}
	return t.CleanQP
}

// New creates a page manager over the pool (or tenant view) and table.
func New(pool dram.Frames, tbl *pagetable.Table, cfg Config) *Manager {
	m := &Manager{
		Pool:        pool,
		Table:       tbl,
		Cfg:         cfg,
		Cleaned:     stats.Counter{Name: "pagemgr.cleaned"},
		Evicted:     stats.Counter{Name: "pagemgr.evicted"},
		SyncWrites:  stats.Counter{Name: "pagemgr.sync_writes"},
		AllocWaits:  stats.Counter{Name: "pagemgr.alloc_waits"},
		VectorSaves: stats.Counter{Name: "pagemgr.vector_saved_bytes"},
		WriteFails:  stats.Counter{Name: "pagemgr.write_fails"},
		Steals:      stats.Counter{Name: "pagemgr.steals"},
		FreeG:       stats.Gauge{Name: "pagemgr.free_frames"},
		DirtyG:      stats.Gauge{Name: "pagemgr.dirty_pages"},
		LowWaterG:   stats.Gauge{Name: "pagemgr.low_water"},
		HighWaterG:  stats.Gauge{Name: "pagemgr.high_water"},
	}
	m.LowWaterG.Set(int64(cfg.LowWater))
	m.HighWaterG.Set(int64(cfg.HighWater))
	return m
}

// RegisterStats folds the manager's counters into its owner's registry.
func (m *Manager) RegisterStats(r *stats.Registry) {
	r.RegisterCounter(&m.Cleaned)
	r.RegisterCounter(&m.Evicted)
	r.RegisterCounter(&m.SyncWrites)
	r.RegisterCounter(&m.AllocWaits)
	r.RegisterCounter(&m.VectorSaves)
	r.RegisterCounter(&m.WriteFails)
	r.RegisterCounter(&m.Steals)
	r.RegisterGauge(&m.FreeG)
	r.RegisterGauge(&m.DirtyG)
	r.RegisterGauge(&m.LowWaterG)
	r.RegisterGauge(&m.HighWaterG)
}

// SampleGauges refreshes the sampler-visible levels from live state.
func (m *Manager) SampleGauges() {
	m.FreeG.Set(int64(m.Pool.FreeCount()))
}

// PrefixStats renames every metric with a prefix (e.g. "tenant.a.") so
// multiple managers can register into one registry without name clashes.
// Must run before RegisterStats.
func (m *Manager) PrefixStats(prefix string) {
	for _, c := range []*stats.Counter{&m.Cleaned, &m.Evicted, &m.SyncWrites,
		&m.AllocWaits, &m.VectorSaves, &m.WriteFails, &m.Steals} {
		c.Name = prefix + c.Name
	}
	for _, g := range []*stats.Gauge{&m.FreeG, &m.DirtyG, &m.LowWaterG, &m.HighWaterG} {
		g.Name = prefix + g.Name
	}
}

// SetWatermarks retunes the reclamation watermarks at runtime — the quota
// rebalancer calls this when it resizes a tenant's reservation, so a shrunk
// tenant starts evicting toward its new quota and a grown one stops early.
func (m *Manager) SetWatermarks(low, high int) {
	m.Cfg.LowWater, m.Cfg.HighWater = low, high
	m.LowWaterG.Set(int64(low))
	m.HighWaterG.Set(int64(high))
}

// Start launches a private cleaner/reclaimer service for this manager —
// the single-owner configuration. Multi-tenant systems instead Attach
// several managers to one Service and Start that.
func (m *Manager) Start(eng *sim.Engine) {
	svc := NewService()
	svc.Attach(m)
	svc.Start(eng)
}

// AllocFrame returns a free frame for the fault handler, waking the
// reclaimer at the low watermark and blocking only when the pool is
// completely empty (which eager eviction makes rare — that is the design's
// whole point).
func (m *Manager) AllocFrame(p *sim.Proc) dram.FrameID {
	for {
		if m.Pool.FreeCount() <= m.Cfg.LowWater && m.svc != nil {
			m.svc.needReclaim.Wake(p.Now())
		}
		if id, ok := m.Pool.Alloc(); ok {
			return id
		}
		m.AllocWaits.Inc()
		m.freed.Wait(p)
	}
}

// TryAllocFrame is the prefetcher's non-blocking allocation: it declines
// when the pool is at the low watermark so prefetching never causes
// reclamation pressure on the demand path.
func (m *Manager) TryAllocFrame(p *sim.Proc) (dram.FrameID, bool) {
	if m.Pool.FreeCount() <= m.Cfg.LowWater {
		if m.svc != nil {
			m.svc.needReclaim.Wake(p.Now())
		}
		return dram.NoFrame, false
	}
	return m.Pool.Alloc()
}

// InsertLRU registers a freshly mapped frame with the LRU list (shard 0 —
// the legacy single-list entry point).
func (m *Manager) InsertLRU(id dram.FrameID, vpn pagetable.VPN) {
	m.InsertLRUFor(0, id, vpn)
}

// InsertLRUFor registers a freshly mapped frame with the faulting core's
// home shard. With sharding off every core folds to shard 0, so the call
// is byte-identical to InsertLRU.
func (m *Manager) InsertLRUFor(core int, id dram.FrameID, vpn pagetable.VPN) {
	meta := m.Pool.Meta(id)
	meta.VPN = vpn
	shard := 0
	if m.Shards > 1 {
		shard = core % m.Shards
	}
	m.Pool.LRUPushBackOn(shard, id)
}

// Vector returns the chunks stored under an action payload and releases
// the log slot. The fault handler calls this to build the vectored fetch.
func (m *Manager) Vector(idx uint64) []Chunk {
	e := &m.vectors[idx]
	if !e.used {
		panic(fmt.Sprintf("pagemgr: vector slot %d already released", idx))
	}
	e.used = false
	m.freeVecs = append(m.freeVecs, idx)
	return e.chunks
}

// releaseVector frees one vector-log slot without consuming its chunks
// (the page was re-cleaned or its content superseded before eviction).
func (m *Manager) releaseVector(idx uint64) {
	e := &m.vectors[idx]
	if !e.used {
		panic(fmt.Sprintf("pagemgr: vector slot %d double release", idx))
	}
	e.used = false
	m.freeVecs = append(m.freeVecs, idx)
}

// setFrameVector records `chunks` as the frame's last-cleaned vector in
// the log, releasing any vector the frame already held. guided=false
// clears instead.
func (m *Manager) setFrameVector(f *dram.Frame, chunks []Chunk, guided bool) {
	if f.VecIdx != dram.NoVec {
		m.releaseVector(uint64(f.VecIdx))
		f.VecIdx = dram.NoVec
	}
	if guided {
		f.VecIdx = int32(m.storeVector(chunks))
	}
}

func (m *Manager) storeVector(chunks []Chunk) uint64 {
	if k := len(m.freeVecs); k > 0 {
		idx := m.freeVecs[k-1]
		m.freeVecs = m.freeVecs[:k-1]
		m.vectors[idx] = vecEntry{chunks: chunks, used: true}
		return idx
	}
	m.vectors = append(m.vectors, vecEntry{chunks: chunks, used: true})
	return uint64(len(m.vectors) - 1)
}

// Service owns the cleaner and reclaimer daemons: one pair of background
// processes serving every attached Manager. In single-owner mode exactly
// one manager is attached and the loops reduce to the original per-manager
// daemons; in multi-tenant mode the shared daemons sweep each tenant's own
// LRU/dirty state in attach order — the work stays per-tenant (and is
// charged to the tenant's queue pairs and counters), only the scheduling
// vehicle is shared.
type Service struct {
	mgrs []*Manager
	// Shards, when > 1, runs one cleaner/reclaimer daemon pair per shard
	// (pagemgr.cleaner0, pagemgr.reclaimer0, ...); each pair sweeps only
	// its shard of every attached sharded manager. 0 or 1 keeps the
	// legacy two daemons with the legacy names — byte-identical runs.
	Shards      int
	needReclaim sim.Waiter // reclaimer parks here when all pools are above high water
}

// NewService creates an empty cleaner/reclaimer service.
func NewService() *Service { return &Service{} }

// Attach registers a manager with the service. Must run before Start; the
// manager's RemoteOf must already be wired.
func (s *Service) Attach(m *Manager) {
	if m.RemoteOf == nil {
		panic("pagemgr: Attach before wiring RemoteOf")
	}
	m.svc = s
	s.mgrs = append(s.mgrs, m)
}

// Start launches the cleaner and reclaimer daemons: the legacy pair for
// an unsharded service, or one pair per shard when Shards > 1.
func (s *Service) Start(eng *sim.Engine) {
	if len(s.mgrs) == 0 {
		panic("pagemgr: Start with no managers attached")
	}
	if s.Shards <= 1 {
		eng.GoDaemon("pagemgr.cleaner", func(p *sim.Proc) { s.cleanerLoop(p, 0) })
		eng.GoDaemon("pagemgr.reclaimer", func(p *sim.Proc) { s.reclaimerLoop(p, 0) })
		return
	}
	for i := 0; i < s.Shards; i++ {
		shard := i
		eng.GoDaemon(fmt.Sprintf("pagemgr.cleaner%d", shard), func(p *sim.Proc) { s.cleanerLoop(p, shard) })
		eng.GoDaemon(fmt.Sprintf("pagemgr.reclaimer%d", shard), func(p *sim.Proc) { s.reclaimerLoop(p, shard) })
	}
}

// shardOf maps a service daemon's shard index onto one manager: a sharded
// manager is swept shard-for-shard; a single-list manager (legacy or a
// tenant view) is swept only by daemon 0 so its list is never scanned
// twice per period.
func shardOf(m *Manager, shard int) (int, bool) {
	if m.Shards > 1 {
		if shard < m.Shards {
			return shard, true
		}
		return 0, false
	}
	return 0, shard == 0
}

// cleanerLoop periodically writes dirty pages back to the memory node and
// clears their dirty bits, so the reclaimer always finds clean victims.
// The period comes from the first attached manager (all managers of one
// system share a Config template).
func (s *Service) cleanerLoop(p *sim.Proc, shard int) {
	for {
		p.Sleep(s.mgrs[0].Cfg.CleanerPeriod)
		for _, m := range s.mgrs {
			sh, ok := shardOf(m, shard)
			if !ok {
				continue
			}
			if m.Throttled != nil && m.Throttled(p.Now()) {
				continue // this owner's dirty set drains at its own rate
			}
			if m.Wide != nil {
				// The shared-structure baseline: the whole sweep — pacing
				// wait included — sits inside the coarse lock, so every
				// fault handler transition queues behind it.
				m.Wide.Acquire(p)
				m.cleanPass(p, sh)
				m.Wide.Release(p)
				continue
			}
			m.cleanPass(p, sh)
		}
	}
}

// reclaimerLoop keeps every attached pool's free list above its high
// watermark by evicting the least-recently-used clean pages with the clock
// algorithm. It parks only when every pool is above water. A sharded
// reclaimer prefers its own shard and steals a victim from a neighbour's
// list when its own is empty of evictable pages, so no core starves the
// pool.
func (s *Service) reclaimerLoop(p *sim.Proc, shard int) {
	for {
		idle, evicted := true, false
		for _, m := range s.mgrs {
			sh, ok := shardOf(m, shard)
			if !ok {
				continue
			}
			if m.Pool.FreeCount() >= m.Cfg.HighWater {
				continue
			}
			idle = false
			if m.Throttled != nil && m.Throttled(p.Now()) {
				// Below water but over its fabric budget: retry on the sleep
				// path below rather than stalling the shared daemon inside
				// this owner's gated write-backs.
				continue
			}
			t0 := p.Now()
			if victim, ok := m.reclaimStepSteal(p, sh); ok {
				evicted = true
				if m.Tel != nil {
					m.Tel.Emit(m.reclaimTrackFor(sh), telemetry.Span{
						Kind: telemetry.KindReclaim, Start: t0, End: p.Now(), Arg: 1,
					})
				}
				if victim != sh {
					// Cross-shard steal: mark the thief's track with the
					// victim so the timeline shows who raided whom.
					m.Steals.Inc()
					if m.Tel != nil {
						m.Tel.Emit(m.reclaimTrackFor(sh), telemetry.Span{
							Kind: telemetry.KindSteal, Start: t0, End: p.Now(), Arg: uint64(victim),
						})
					}
					if m.OnSteal != nil {
						m.OnSteal(p.Now(), sh, victim)
					}
				}
			}
		}
		if idle {
			s.needReclaim.Wait(p)
			continue
		}
		if !evicted {
			// Nothing evictable this instant (all pinned/accessed just
			// cleared); yield briefly and retry.
			p.Sleep(5 * sim.Microsecond)
		}
	}
}

// reclaimStepSteal tries the daemon's own shard first and then steals
// round-robin from the other shards. Rotation and removal always use a
// frame's *home* shard, so stealing never reorders a neighbour's clock
// beyond the normal second-chance rotation. Returns the shard the victim
// came from, so callers can attribute cross-shard steals.
func (m *Manager) reclaimStepSteal(p *sim.Proc, shard int) (victim int, ok bool) {
	if m.Wide != nil {
		m.Wide.Acquire(p)
		defer m.Wide.Release(p)
	}
	if m.reclaimStep(p, shard) {
		return shard, true
	}
	n := 1
	if m.Shards > 1 {
		n = m.Shards
	}
	for k := 1; k < n; k++ {
		v := (shard + k) % n
		if m.reclaimStep(p, v) {
			return v, true
		}
	}
	return shard, false
}

// cleanPass performs one cleaner scan over one shard's list; exposed for
// tests (shard 0 is the whole list in legacy mode).
func (m *Manager) cleanPass(p *sim.Proc, shard int) {
	if m.Batch {
		m.cleanPassBatched(p, shard)
		return
	}
	t0 := p.Now()
	var lastOp *fabric.Op
	batch, dirty := 0, 0
	m.Pool.WalkShard(shard, func(id dram.FrameID, f *dram.Frame) bool {
		p.Advance(m.Cfg.ScanCost)
		if batch >= m.Cfg.CleanerBatch {
			return false
		}
		if f.Pinned || f.VPN == dram.NoVPN {
			return true
		}
		pte := m.Table.Lookup(f.VPN)
		if pte.Tag() != pagetable.TagLocal || !pte.Dirty() {
			return true
		}
		dirty++
		op, ok := m.writeBack(p, id, f.VPN, false)
		if !ok {
			// A replica write failed at issue (fabric errors are known at
			// issue time) or the page has no reachable write target: leave
			// the dirty bit set so the next pass retries, and never let the
			// reclaimer treat the page as clean.
			m.WriteFails.Inc()
			return true
		}
		lastOp = op
		p.Advance(m.Cfg.TagCAS)
		m.Table.Set(f.VPN, pte&^pagetable.BitDirty)
		m.Cleaned.Inc()
		batch++
		return true
	})
	if batch > 0 {
		m.Table.BumpGen() // one shootdown per pass covers all cleared bits
	}
	if lastOp != nil {
		lastOp.Wait(p) // pace the cleaner to the link, off the demand path
	}
	m.DirtyG.Set(int64(dirty))
	if m.Tel != nil && batch > 0 {
		m.Tel.Emit(m.cleanTrackFor(shard), telemetry.Span{
			Kind: telemetry.KindClean, Start: t0, End: p.Now(), Arg: uint64(batch),
		})
	}
}

// cleanPassBatched is the doorbell-batched cleaner pass: sweep the dirty
// set, flush it per queue pair through single doorbells, then retire —
// clearing the dirty bit only for pages whose every replica write landed.
// Sweep, flush, and retire run without a yield, so the page snapshots
// taken by the sweep stay valid until the bits are cleared.
func (m *Manager) cleanPassBatched(p *sim.Proc, shard int) {
	t0 := p.Now()
	sc := m.cleanScFor(shard)
	sc.items = sc.items[:0]
	sc.spans = sc.spans[:0]
	m.Pool.WalkShard(shard, func(id dram.FrameID, f *dram.Frame) bool {
		p.Advance(m.Cfg.ScanCost)
		if len(sc.items) >= m.Cfg.CleanerBatch {
			return false
		}
		if f.Pinned || f.VPN == dram.NoVPN {
			return true
		}
		pte := m.Table.Lookup(f.VPN)
		if pte.Tag() != pagetable.TagLocal || !pte.Dirty() {
			return true
		}
		m.collectItem(sc, id, f.VPN, pte)
		return true
	})
	lastOp := m.flushBatch(p, sc, false)
	cleaned := m.retireBatch(p, sc, true)
	if cleaned > 0 {
		m.Table.BumpGen() // one shootdown per pass covers all cleared bits
	}
	if lastOp != nil {
		lastOp.Wait(p) // pace the cleaner to the link, off the demand path
	}
	m.DirtyG.Set(int64(len(sc.items)))
	if m.Tel != nil && cleaned > 0 {
		m.Tel.Emit(m.cleanTrackFor(shard), telemetry.Span{
			Kind: telemetry.KindClean, Start: t0, End: p.Now(), Arg: uint64(cleaned),
		})
	}
}

// collectItem snapshots one dirty page into the sweep's item list: its
// (replicated) remote target and, under guided paging, its live chunks. A
// page with no reachable write target is counted failed immediately and
// stays dirty.
func (m *Manager) collectItem(sc *wbScratch, id dram.FrameID, vpn pagetable.VPN, pte pagetable.PTE) {
	if m.Huge != nil {
		if start, pages, ok := m.Huge.SubSpan(vpn); ok {
			m.collectSpan(sc, start, pages)
			return
		}
	}
	tgt, ok := m.RemoteOf(vpn)
	if !ok {
		m.WriteFails.Inc()
		return
	}
	it := wbItem{id: id, vpn: vpn, pte: pte, tgt: tgt}
	if m.Guide != nil {
		if c, ok := m.Guide.LiveChunks(vpn); ok && usable(c) {
			it.chunks, it.guided = c, true
		}
	}
	sc.items = append(sc.items, it)
}

// collectSpan collects a huge region's whole 32 KiB write-back sub-span:
// every resident, unpinned page of it — clean neighbours included, so the
// span's remote offsets stay contiguous and Coalesce folds them into one
// vectored write (a clean page's rewrite is idempotent; the contiguity is
// the win). Sub-page dirty granularity is exactly this routine: one dirty
// bit anywhere in the 32 KiB granule moves the granule, never the whole
// 2 MB region. Spans dedup within the pass so a sweep that sees several
// dirty pages of one granule writes it back once.
func (m *Manager) collectSpan(sc *wbScratch, start pagetable.VPN, pages int) {
	for _, s := range sc.spans {
		if s == start {
			return
		}
	}
	sc.spans = append(sc.spans, start)
	for i := 0; i < pages; i++ {
		vpn := start + pagetable.VPN(i)
		pte := m.Table.Lookup(vpn)
		if pte.Tag() != pagetable.TagLocal {
			continue
		}
		id := dram.FrameID(pte.Frame())
		if m.Pool.Meta(id).Pinned {
			continue
		}
		tgt, ok := m.RemoteOf(vpn)
		if !ok {
			if pte.Dirty() {
				m.WriteFails.Inc()
			}
			continue
		}
		sc.items = append(sc.items, wbItem{id: id, vpn: vpn, pte: pte, tgt: tgt})
	}
}

// flushBatch posts every collected page to every one of its replica
// targets, one doorbell per distinct queue pair (i.e. per memory node and
// path), with contiguous remote offsets coalesced into vectored writes.
// Failure is known at issue time, so a failed request marks every page it
// carried as failed. Returns the op that completes last, for pacing.
func (m *Manager) flushBatch(p *sim.Proc, sc *wbScratch, reclaimPath bool) *fabric.Op {
	if len(sc.items) == 0 {
		return nil
	}
	// Distinct queue pairs in first-appearance order (primary before
	// replicas), so seeded runs replay identically.
	sc.qps = sc.qps[:0]
	for i := range sc.items {
		it := &sc.items[i]
		sc.addQP(qpOf(&it.tgt, reclaimPath))
		for r := range it.tgt.Replicas {
			sc.addQP(qpOf(&it.tgt.Replicas[r], reclaimPath))
		}
	}
	var last *fabric.Op
	for _, qp := range sc.qps {
		sc.segs, sc.owner = sc.segs[:0], sc.owner[:0]
		for i := range sc.items {
			it := &sc.items[i]
			m.gatherSegs(sc, i, &it.tgt, qp, reclaimPath)
			for r := range it.tgt.Replicas {
				m.gatherSegs(sc, i, &it.tgt.Replicas[r], qp, reclaimPath)
			}
		}
		sc.reqs = qp.Coalesce(fabric.OpWrite, sc.segs, sc.reqs[:0])
		sc.ops = qp.Submit(p.Now(), sc.reqs, sc.ops[:0])
		idx := 0
		for r, req := range sc.reqs {
			op := sc.ops[r]
			if op.Err != nil {
				for k := 0; k < len(req.Segs); k++ {
					sc.items[sc.owner[idx+k]].failed = true
				}
			} else if last == nil || op.CompleteAt > last.CompleteAt {
				last = op
			}
			idx += len(req.Segs)
		}
	}
	return last
}

func (sc *wbScratch) addQP(qp *fabric.QP) {
	for _, q := range sc.qps {
		if q == qp {
			return
		}
	}
	sc.qps = append(sc.qps, qp)
}

// gatherSegs appends item i's segments for one replica target if that
// target rides the queue pair currently being flushed.
func (m *Manager) gatherSegs(sc *wbScratch, i int, t *Target, qp *fabric.QP, reclaimPath bool) {
	if qpOf(t, reclaimPath) != qp {
		return
	}
	it := &sc.items[i]
	data := m.Pool.Bytes(it.id)
	if it.guided {
		live := 0
		for _, c := range it.chunks {
			sc.segs = append(sc.segs, fabric.Seg{Off: t.Off + uint64(c.Off), Buf: data[c.Off : c.Off+c.Len]})
			sc.owner = append(sc.owner, i)
			live += int(c.Len)
		}
		m.VectorSaves.Add(int64(pagetable.PageSize - live))
		return
	}
	sc.segs = append(sc.segs, fabric.Seg{Off: t.Off, Buf: data})
	sc.owner = append(sc.owner, i)
}

// retireBatch clears the dirty bit of every page whose writes all landed
// (recording its clean vector under guided paging) and counts the rest as
// write failures — they stay dirty so the next pass retries and the
// reclaimer never evicts the only good copy.
func (m *Manager) retireBatch(p *sim.Proc, sc *wbScratch, countCleaned bool) int {
	cleaned := 0
	for i := range sc.items {
		it := &sc.items[i]
		if it.failed {
			m.WriteFails.Inc()
			continue
		}
		p.Advance(m.Cfg.TagCAS)
		m.Table.Set(it.vpn, it.pte&^pagetable.BitDirty)
		m.setFrameVector(m.Pool.Meta(it.id), it.chunks, it.guided)
		if countCleaned {
			m.Cleaned.Inc()
		}
		cleaned++
	}
	return cleaned
}

// writeBack writes a page's content to its remote slot — the whole page,
// or just the live chunks when a guide provides them (logging the vector
// for the reclaimer). reclaimPath selects the reclaimer's queue pair
// instead of the cleaner's. ok=false means at least one replica write did
// not land (failed at issue, or the page currently has no reachable write
// target): the caller must keep the page dirty so the write-back is
// retried — clearing the dirty bit after a failed write would let the
// reclaimer evict the only good copy.
func (m *Manager) writeBack(p *sim.Proc, id dram.FrameID, vpn pagetable.VPN, reclaimPath bool) (*fabric.Op, bool) {
	tgt, ok := m.RemoteOf(vpn)
	if !ok {
		return nil, false
	}
	data := m.Pool.Bytes(id)
	targets := append([]Target{tgt}, tgt.Replicas...)
	var chunks []Chunk
	guided := false
	if m.Guide != nil {
		if c, ok := m.Guide.LiveChunks(vpn); ok && usable(c) {
			chunks, guided = c, true
		}
	}
	// Issue the write to every replica slot; return the op that completes
	// last so callers pacing on it cover the whole replica set. Failure is
	// known at issue time (see the fabric's data-movement contract), so a
	// failed replica write is visible here synchronously.
	var last *fabric.Op
	ok = true
	for _, t := range targets {
		qp := t.CleanQP
		if reclaimPath {
			qp = t.ReclaimQP
		}
		var op *fabric.Op
		if guided {
			segs := make([]fabric.Seg, len(chunks))
			live := 0
			for i, c := range chunks {
				segs[i] = fabric.Seg{Off: t.Off + uint64(c.Off), Buf: data[c.Off : c.Off+c.Len]}
				live += int(c.Len)
			}
			m.VectorSaves.Add(int64(pagetable.PageSize - live))
			op = qp.WriteV(p.Now(), segs)
		} else {
			op = qp.Write(p.Now(), t.Off, data)
		}
		if op.Err != nil {
			ok = false
			continue
		}
		if last == nil || op.CompleteAt > last.CompleteAt {
			last = op
		}
	}
	if !ok {
		return last, false
	}
	m.setFrameVector(m.Pool.Meta(id), chunks, guided)
	return last, true
}

// usable reports whether a chunk vector is worth a vectored request: within
// the segment cap and actually smaller than the page.
func usable(chunks []Chunk) bool {
	if len(chunks) == 0 || len(chunks) > MaxVectorSegs {
		return false
	}
	total := 0
	for _, c := range chunks {
		if uint64(c.Off)+uint64(c.Len) > pagetable.PageSize || c.Len == 0 {
			return false
		}
		total += int(c.Len)
	}
	return total < pagetable.PageSize
}

// reclaimStep runs the clock hand over one shard's list until one page is
// evicted or the list is exhausted. Returns whether it evicted a page.
func (m *Manager) reclaimStep(p *sim.Proc, shard int) bool {
	n := m.Pool.LRULenOf(shard)
	var firstDirty dram.FrameID = dram.NoFrame
	for i := 0; i < n; i++ {
		id := m.Pool.LRUFrontOf(shard)
		if id == dram.NoFrame {
			return false
		}
		f := m.Pool.Meta(id)
		p.Advance(m.Cfg.ScanCost)
		if f.Pinned {
			m.Pool.LRURotate(id)
			continue
		}
		pte := m.Table.Lookup(f.VPN)
		if pte.Tag() != pagetable.TagLocal {
			panic(fmt.Sprintf("pagemgr: LRU frame %d (vpn %d) not mapped: %v", id, f.VPN, pte))
		}
		if pte.Accessed() {
			// Second chance: clear the bit and rotate. The generation bump
			// below makes future accesses re-walk and re-set it.
			m.Table.Set(f.VPN, pte&^pagetable.BitAccessed)
			m.Table.BumpGen()
			m.Pool.LRURotate(id)
			continue
		}
		if pte.Dirty() {
			if firstDirty == dram.NoFrame {
				firstDirty = id
			}
			m.Pool.LRURotate(id)
			continue
		}
		if m.evict(p, id, f.VPN) {
			return true
		}
		m.Pool.LRURotate(id) // no reachable remote slot right now; skip
		continue
	}
	// No clean victim in a full sweep: the cleaner is behind. Clean a batch
	// of cold dirty pages ourselves on the reclaim QP (asynchronously,
	// waiting once at the end — still entirely off the fault handler, which
	// is the design's invariant), then evict the first of them.
	if firstDirty != dram.NoFrame {
		if m.Batch {
			return m.reclaimCleanBatched(p, shard)
		}
		var lastOp *fabric.Op
		cleaned := 0
		var victim dram.FrameID = dram.NoFrame
		var victimVPN pagetable.VPN
		m.Pool.WalkShard(shard, func(id dram.FrameID, f *dram.Frame) bool {
			if cleaned >= 32 {
				return false
			}
			if f.Pinned || f.VPN == dram.NoVPN {
				return true
			}
			pte := m.Table.Lookup(f.VPN)
			if pte.Tag() != pagetable.TagLocal || !pte.Dirty() {
				return true
			}
			p.Advance(m.Cfg.ScanCost)
			op, ok := m.writeBack(p, id, f.VPN, true)
			if !ok {
				m.WriteFails.Inc()
				return true
			}
			lastOp = op
			p.Advance(m.Cfg.TagCAS)
			m.Table.Set(f.VPN, pte&^pagetable.BitDirty)
			cleaned++
			if victim == dram.NoFrame && !pte.Accessed() {
				victim, victimVPN = id, f.VPN
			}
			return true
		})
		if cleaned > 0 {
			m.Table.BumpGen()
		}
		if lastOp != nil {
			lastOp.Wait(p)
			m.SyncWrites.Inc()
		}
		if victim != dram.NoFrame {
			// The wait above yielded: the victim may have been touched,
			// re-dirtied, or pinned since we chose it. Re-validate before
			// evicting, or its newest writes would be lost.
			f := m.Pool.Meta(victim)
			pte := m.Table.Lookup(victimVPN)
			if !f.Pinned && f.VPN == victimVPN && pte.Tag() == pagetable.TagLocal &&
				!pte.Dirty() && !pte.Accessed() && m.evict(p, victim, victimVPN) {
				return true
			}
		}
		return cleaned > 0
	}
	return false
}

// reclaimCleanBatched is the reclaimer's emergency clean under batching:
// sweep a batch of cold dirty pages, flush them through the reclaim queue
// pairs with one doorbell per node, retire the survivors, then wait once
// and evict a victim — still entirely off the fault handler.
func (m *Manager) reclaimCleanBatched(p *sim.Proc, shard int) bool {
	sc := m.reclaimScFor(shard)
	sc.items = sc.items[:0]
	sc.spans = sc.spans[:0]
	m.Pool.WalkShard(shard, func(id dram.FrameID, f *dram.Frame) bool {
		if len(sc.items) >= 32 {
			return false
		}
		if f.Pinned || f.VPN == dram.NoVPN {
			return true
		}
		pte := m.Table.Lookup(f.VPN)
		if pte.Tag() != pagetable.TagLocal || !pte.Dirty() {
			return true
		}
		p.Advance(m.Cfg.ScanCost)
		m.collectItem(sc, id, f.VPN, pte)
		return true
	})
	lastOp := m.flushBatch(p, sc, true)
	cleaned := m.retireBatch(p, sc, false)
	// Pick the victim before waiting: the wait yields, and the scratch
	// snapshot is only valid until then.
	var victim dram.FrameID = dram.NoFrame
	var victimVPN pagetable.VPN
	for i := range sc.items {
		if it := &sc.items[i]; !it.failed && !it.pte.Accessed() {
			victim, victimVPN = it.id, it.vpn
			break
		}
	}
	if cleaned > 0 {
		m.Table.BumpGen()
	}
	if lastOp != nil {
		lastOp.Wait(p)
		m.SyncWrites.Inc()
	}
	if victim != dram.NoFrame {
		// The wait above yielded: the victim may have been touched,
		// re-dirtied, or pinned since we chose it. Re-validate before
		// evicting, or its newest writes would be lost.
		f := m.Pool.Meta(victim)
		pte := m.Table.Lookup(victimVPN)
		if !f.Pinned && f.VPN == victimVPN && pte.Tag() == pagetable.TagLocal &&
			!pte.Dirty() && !pte.Accessed() && m.evict(p, victim, victimVPN) {
			return true
		}
	}
	return cleaned > 0
}

// evict unmaps a clean page and frees its frame. With a logged clean vector
// the page leaves as an Action PTE (guided paging); otherwise as Remote.
// Returns false — leaving the page resident — when the page currently has
// no reachable remote slot (every replica's node is down): evicting it then
// would discard the only copy.
func (m *Manager) evict(p *sim.Proc, id dram.FrameID, vpn pagetable.VPN) bool {
	tgt, ok := m.RemoteOf(vpn)
	if !ok {
		return false
	}
	p.Advance(m.Cfg.UnmapCost)
	p.Advance(m.Cfg.TagCAS)
	f := m.Pool.Meta(id)
	if f.VecIdx != dram.NoVec {
		// The cleaner's logged vector becomes the Action payload; the slot
		// is released when the fault handler consumes it via Vector.
		m.Table.Set(vpn, pagetable.Action(uint64(f.VecIdx)))
		f.VecIdx = dram.NoVec
	} else {
		m.Table.Set(vpn, pagetable.Remote(tgt.Off/pagetable.PageSize))
	}
	m.Table.BumpGen()
	m.Pool.LRURemove(id)
	m.Pool.Free(id)
	m.Evicted.Inc()
	m.freed.Wake(p.Now())
	return true
}

// PageOut evicts one resident page on behalf of an application-directed
// pager (core.PageOutRange): unmap, transition the PTE to Remote (or
// Action under guided paging), and free the frame. The caller must have
// written dirty content back to every replica first — PageOut itself
// performs no write-back — and must pass a page whose frame is unpinned.
// Returns false, leaving the page resident, when no replica is reachable.
func (m *Manager) PageOut(p *sim.Proc, id dram.FrameID, vpn pagetable.VPN) bool {
	return m.evict(p, id, vpn)
}
