// Package pagemgr is DiLOS' page manager (§4.4). It owns the local frame
// pool and hides reclamation latency inside the fetch window of page faults
// by doing all of it in the background:
//
//   - the *allocator* hands the fault handler a free frame in O(1) and, by
//     eagerly keeping a free watermark, (almost) never blocks;
//   - the *cleaner* daemon periodically scans the LRU list for dirty pages,
//     writes them back to the memory node on its own queue pair, and clears
//     their dirty bits;
//   - the *reclaimer* daemon runs the clock algorithm over the LRU list and
//     evicts the least-recently-used *clean* pages when free frames fall
//     below the low watermark.
//
// Guided paging (§4.4) plugs in through EvictionGuide: the cleaner asks the
// guide for a page's live chunks (from the user allocator's per-page
// bitmaps), writes back only those with a vectored RDMA request, and logs
// the vector; the reclaimer then evicts the page to an Action PTE holding
// the vector-log index, so the eventual re-fetch also moves only live bytes.
package pagemgr

import (
	"fmt"

	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// Chunk is a live byte range within a page (offsets relative to the page).
type Chunk struct {
	Off uint32
	Len uint32
}

// EvictionGuide supplies allocator semantics for guided paging: the live
// chunks of a page. ok=false means "no information — move the whole page".
type EvictionGuide interface {
	LiveChunks(vpn pagetable.VPN) (chunks []Chunk, ok bool)
}

// MaxVectorSegs caps guided-paging vectors: the paper measured a steep
// vectored-RDMA slowdown past three segments, so guides merge or fall back
// beyond it (§6.3).
const MaxVectorSegs = 3

// Config tunes the page manager.
type Config struct {
	LowWater      int      // wake the reclaimer below this many free frames
	HighWater     int      // reclaim until this many frames are free
	CleanerPeriod sim.Time // cleaner scan interval
	CleanerBatch  int      // max pages written back per cleaner pass
	ScanCost      sim.Time // CPU cost per frame examined by a daemon
	UnmapCost     sim.Time // CPU cost of one unmap + shootdown
}

// DefaultConfig sizes watermarks for a pool of `frames` frames.
func DefaultConfig(frames int) Config {
	low := frames / 16
	if low < 16 {
		low = 16
	}
	return Config{
		LowWater:      low,
		HighWater:     low * 3,
		CleanerPeriod: 20 * sim.Microsecond,
		CleanerBatch:  128,
		ScanCost:      30 * sim.Nanosecond,
		UnmapCost:     100 * sim.Nanosecond,
	}
}

// Target names a page's remote slot: the region offset on its memory node
// and the queue pairs that reach that node. With a single memory node all
// pages share the same queue pairs; with sharding (the §5.1 extension) the
// system hands back per-node queues. Replicas, when present, are further
// slots every write-back must also reach (the fault-tolerance extension);
// reads always use the head slot.
type Target struct {
	Off       uint64
	CleanQP   *fabric.QP
	ReclaimQP *fabric.QP
	Replicas  []Target
}

// Manager is the page manager instance of one computing node.
type Manager struct {
	Pool  *dram.Pool
	Table *pagetable.Table
	Cfg   Config

	// RemoteOf maps a virtual page to its remote slot.
	RemoteOf func(pagetable.VPN) (Target, bool)

	// Guide, when non-nil, enables guided paging.
	Guide EvictionGuide

	needReclaim sim.Waiter // reclaimer parks here when free >= high water
	freed       sim.Waiter // allocators park here when the pool is empty

	// cleanVec remembers, per page, the vector the cleaner last wrote back
	// (guided paging); the reclaimer turns it into an Action PTE.
	cleanVec map[pagetable.VPN][]Chunk
	// vectors is the action-PTE payload log.
	vectors  []vecEntry
	freeVecs []uint64

	Cleaned     stats.Counter // pages written back by the cleaner
	Evicted     stats.Counter // pages evicted by the reclaimer
	SyncWrites  stats.Counter // emergency synchronous write-backs
	AllocWaits  stats.Counter // allocations that had to wait for a free frame
	VectorSaves stats.Counter // bytes saved by guided paging write-backs
	WriteFails  stats.Counter // write-backs left dirty because a replica write failed
}

type vecEntry struct {
	chunks []Chunk
	used   bool
}

// New creates a page manager over the pool and table.
func New(pool *dram.Pool, tbl *pagetable.Table, cfg Config) *Manager {
	return &Manager{
		Pool:        pool,
		Table:       tbl,
		Cfg:         cfg,
		cleanVec:    map[pagetable.VPN][]Chunk{},
		Cleaned:     stats.Counter{Name: "pagemgr.cleaned"},
		Evicted:     stats.Counter{Name: "pagemgr.evicted"},
		SyncWrites:  stats.Counter{Name: "pagemgr.sync_writes"},
		AllocWaits:  stats.Counter{Name: "pagemgr.alloc_waits"},
		VectorSaves: stats.Counter{Name: "pagemgr.vector_saved_bytes"},
		WriteFails:  stats.Counter{Name: "pagemgr.write_fails"},
	}
}

// RegisterStats folds the manager's counters into its owner's registry.
func (m *Manager) RegisterStats(r *stats.Registry) {
	r.RegisterCounter(&m.Cleaned)
	r.RegisterCounter(&m.Evicted)
	r.RegisterCounter(&m.SyncWrites)
	r.RegisterCounter(&m.AllocWaits)
	r.RegisterCounter(&m.VectorSaves)
	r.RegisterCounter(&m.WriteFails)
}

// Start launches the cleaner and reclaimer daemons.
func (m *Manager) Start(eng *sim.Engine) {
	if m.RemoteOf == nil {
		panic("pagemgr: Start before wiring RemoteOf")
	}
	eng.GoDaemon("pagemgr.cleaner", m.cleanerLoop)
	eng.GoDaemon("pagemgr.reclaimer", m.reclaimerLoop)
}

// AllocFrame returns a free frame for the fault handler, waking the
// reclaimer at the low watermark and blocking only when the pool is
// completely empty (which eager eviction makes rare — that is the design's
// whole point).
func (m *Manager) AllocFrame(p *sim.Proc) dram.FrameID {
	for {
		if m.Pool.FreeCount() <= m.Cfg.LowWater {
			m.needReclaim.Wake(p.Now())
		}
		if id, ok := m.Pool.Alloc(); ok {
			return id
		}
		m.AllocWaits.Inc()
		m.freed.Wait(p)
	}
}

// TryAllocFrame is the prefetcher's non-blocking allocation: it declines
// when the pool is at the low watermark so prefetching never causes
// reclamation pressure on the demand path.
func (m *Manager) TryAllocFrame(p *sim.Proc) (dram.FrameID, bool) {
	if m.Pool.FreeCount() <= m.Cfg.LowWater {
		m.needReclaim.Wake(p.Now())
		return dram.NoFrame, false
	}
	return m.Pool.Alloc()
}

// InsertLRU registers a freshly mapped frame with the LRU list.
func (m *Manager) InsertLRU(id dram.FrameID, vpn pagetable.VPN) {
	meta := m.Pool.Meta(id)
	meta.VPN = vpn
	m.Pool.LRUPushBack(id)
}

// DropVector removes any logged clean-vector for a page (called when the
// page's content is re-fetched or the page is freed).
func (m *Manager) DropVector(vpn pagetable.VPN) { delete(m.cleanVec, vpn) }

// Vector returns the chunks stored under an action payload and releases
// the log slot. The fault handler calls this to build the vectored fetch.
func (m *Manager) Vector(idx uint64) []Chunk {
	e := &m.vectors[idx]
	if !e.used {
		panic(fmt.Sprintf("pagemgr: vector slot %d already released", idx))
	}
	e.used = false
	m.freeVecs = append(m.freeVecs, idx)
	return e.chunks
}

func (m *Manager) storeVector(chunks []Chunk) uint64 {
	if k := len(m.freeVecs); k > 0 {
		idx := m.freeVecs[k-1]
		m.freeVecs = m.freeVecs[:k-1]
		m.vectors[idx] = vecEntry{chunks: chunks, used: true}
		return idx
	}
	m.vectors = append(m.vectors, vecEntry{chunks: chunks, used: true})
	return uint64(len(m.vectors) - 1)
}

// cleanerLoop periodically writes dirty pages back to the memory node and
// clears their dirty bits, so the reclaimer always finds clean victims.
func (m *Manager) cleanerLoop(p *sim.Proc) {
	for {
		p.Sleep(m.Cfg.CleanerPeriod)
		m.cleanPass(p)
	}
}

// cleanPass performs one cleaner scan; exposed for tests.
func (m *Manager) cleanPass(p *sim.Proc) {
	var lastOp *fabric.Op
	batch := 0
	m.Pool.Walk(func(id dram.FrameID, f *dram.Frame) bool {
		p.Advance(m.Cfg.ScanCost)
		if batch >= m.Cfg.CleanerBatch {
			return false
		}
		if f.Pinned || f.VPN == dram.NoVPN {
			return true
		}
		pte := m.Table.Lookup(f.VPN)
		if pte.Tag() != pagetable.TagLocal || !pte.Dirty() {
			return true
		}
		op, ok := m.writeBack(p, id, f.VPN, false)
		if !ok {
			// A replica write failed at issue (fabric errors are known at
			// issue time) or the page has no reachable write target: leave
			// the dirty bit set so the next pass retries, and never let the
			// reclaimer treat the page as clean.
			m.WriteFails.Inc()
			return true
		}
		lastOp = op
		m.Table.Set(f.VPN, pte&^pagetable.BitDirty)
		m.Cleaned.Inc()
		batch++
		return true
	})
	if batch > 0 {
		m.Table.BumpGen() // one shootdown per pass covers all cleared bits
	}
	if lastOp != nil {
		lastOp.Wait(p) // pace the cleaner to the link, off the demand path
	}
}

// writeBack writes a page's content to its remote slot — the whole page,
// or just the live chunks when a guide provides them (logging the vector
// for the reclaimer). reclaimPath selects the reclaimer's queue pair
// instead of the cleaner's. ok=false means at least one replica write did
// not land (failed at issue, or the page currently has no reachable write
// target): the caller must keep the page dirty so the write-back is
// retried — clearing the dirty bit after a failed write would let the
// reclaimer evict the only good copy.
func (m *Manager) writeBack(p *sim.Proc, id dram.FrameID, vpn pagetable.VPN, reclaimPath bool) (*fabric.Op, bool) {
	tgt, ok := m.RemoteOf(vpn)
	if !ok {
		return nil, false
	}
	data := m.Pool.Bytes(id)
	targets := append([]Target{tgt}, tgt.Replicas...)
	var chunks []Chunk
	guided := false
	if m.Guide != nil {
		if c, ok := m.Guide.LiveChunks(vpn); ok && usable(c) {
			chunks, guided = c, true
		}
	}
	// Issue the write to every replica slot; return the op that completes
	// last so callers pacing on it cover the whole replica set. Failure is
	// known at issue time (see the fabric's data-movement contract), so a
	// failed replica write is visible here synchronously.
	var last *fabric.Op
	ok = true
	for _, t := range targets {
		qp := t.CleanQP
		if reclaimPath {
			qp = t.ReclaimQP
		}
		var op *fabric.Op
		if guided {
			segs := make([]fabric.Seg, len(chunks))
			live := 0
			for i, c := range chunks {
				segs[i] = fabric.Seg{Off: t.Off + uint64(c.Off), Buf: data[c.Off : c.Off+c.Len]}
				live += int(c.Len)
			}
			m.VectorSaves.Add(int64(pagetable.PageSize - live))
			op = qp.WriteV(p.Now(), segs)
		} else {
			op = qp.Write(p.Now(), t.Off, data)
		}
		if op.Err != nil {
			ok = false
			continue
		}
		if last == nil || op.CompleteAt > last.CompleteAt {
			last = op
		}
	}
	if !ok {
		return last, false
	}
	if guided {
		m.cleanVec[vpn] = chunks
	} else {
		delete(m.cleanVec, vpn)
	}
	return last, true
}

// usable reports whether a chunk vector is worth a vectored request: within
// the segment cap and actually smaller than the page.
func usable(chunks []Chunk) bool {
	if len(chunks) == 0 || len(chunks) > MaxVectorSegs {
		return false
	}
	total := 0
	for _, c := range chunks {
		if uint64(c.Off)+uint64(c.Len) > pagetable.PageSize || c.Len == 0 {
			return false
		}
		total += int(c.Len)
	}
	return total < pagetable.PageSize
}

// reclaimerLoop keeps the free list above the high watermark by evicting
// the least-frequently-used clean pages with the clock algorithm.
func (m *Manager) reclaimerLoop(p *sim.Proc) {
	for {
		if m.Pool.FreeCount() >= m.Cfg.HighWater {
			m.needReclaim.Wait(p)
			continue
		}
		if !m.reclaimStep(p) {
			// Nothing evictable this instant (all pinned/accessed just
			// cleared); yield briefly and retry.
			p.Sleep(5 * sim.Microsecond)
		}
	}
}

// reclaimStep runs the clock hand until one page is evicted or the list is
// exhausted. Returns whether it evicted a page.
func (m *Manager) reclaimStep(p *sim.Proc) bool {
	n := m.Pool.LRULen()
	var firstDirty dram.FrameID = dram.NoFrame
	for i := 0; i < n; i++ {
		id := m.Pool.LRUFront()
		if id == dram.NoFrame {
			return false
		}
		f := m.Pool.Meta(id)
		p.Advance(m.Cfg.ScanCost)
		if f.Pinned {
			m.Pool.LRURotate(id)
			continue
		}
		pte := m.Table.Lookup(f.VPN)
		if pte.Tag() != pagetable.TagLocal {
			panic(fmt.Sprintf("pagemgr: LRU frame %d (vpn %d) not mapped: %v", id, f.VPN, pte))
		}
		if pte.Accessed() {
			// Second chance: clear the bit and rotate. The generation bump
			// below makes future accesses re-walk and re-set it.
			m.Table.Set(f.VPN, pte&^pagetable.BitAccessed)
			m.Table.BumpGen()
			m.Pool.LRURotate(id)
			continue
		}
		if pte.Dirty() {
			if firstDirty == dram.NoFrame {
				firstDirty = id
			}
			m.Pool.LRURotate(id)
			continue
		}
		if m.evict(p, id, f.VPN) {
			return true
		}
		m.Pool.LRURotate(id) // no reachable remote slot right now; skip
		continue
	}
	// No clean victim in a full sweep: the cleaner is behind. Clean a batch
	// of cold dirty pages ourselves on the reclaim QP (asynchronously,
	// waiting once at the end — still entirely off the fault handler, which
	// is the design's invariant), then evict the first of them.
	if firstDirty != dram.NoFrame {
		var lastOp *fabric.Op
		cleaned := 0
		var victim dram.FrameID = dram.NoFrame
		var victimVPN pagetable.VPN
		m.Pool.Walk(func(id dram.FrameID, f *dram.Frame) bool {
			if cleaned >= 32 {
				return false
			}
			if f.Pinned || f.VPN == dram.NoVPN {
				return true
			}
			pte := m.Table.Lookup(f.VPN)
			if pte.Tag() != pagetable.TagLocal || !pte.Dirty() {
				return true
			}
			p.Advance(m.Cfg.ScanCost)
			op, ok := m.writeBack(p, id, f.VPN, true)
			if !ok {
				m.WriteFails.Inc()
				return true
			}
			lastOp = op
			m.Table.Set(f.VPN, pte&^pagetable.BitDirty)
			cleaned++
			if victim == dram.NoFrame && !pte.Accessed() {
				victim, victimVPN = id, f.VPN
			}
			return true
		})
		if cleaned > 0 {
			m.Table.BumpGen()
		}
		if lastOp != nil {
			lastOp.Wait(p)
			m.SyncWrites.Inc()
		}
		if victim != dram.NoFrame {
			// The wait above yielded: the victim may have been touched,
			// re-dirtied, or pinned since we chose it. Re-validate before
			// evicting, or its newest writes would be lost.
			f := m.Pool.Meta(victim)
			pte := m.Table.Lookup(victimVPN)
			if !f.Pinned && f.VPN == victimVPN && pte.Tag() == pagetable.TagLocal &&
				!pte.Dirty() && !pte.Accessed() && m.evict(p, victim, victimVPN) {
				return true
			}
		}
		return cleaned > 0
	}
	return false
}

// evict unmaps a clean page and frees its frame. With a logged clean vector
// the page leaves as an Action PTE (guided paging); otherwise as Remote.
// Returns false — leaving the page resident — when the page currently has
// no reachable remote slot (every replica's node is down): evicting it then
// would discard the only copy.
func (m *Manager) evict(p *sim.Proc, id dram.FrameID, vpn pagetable.VPN) bool {
	tgt, ok := m.RemoteOf(vpn)
	if !ok {
		return false
	}
	p.Advance(m.Cfg.UnmapCost)
	if chunks, ok := m.cleanVec[vpn]; ok {
		delete(m.cleanVec, vpn)
		m.Table.Set(vpn, pagetable.Action(m.storeVector(chunks)))
	} else {
		m.Table.Set(vpn, pagetable.Remote(tgt.Off/pagetable.PageSize))
	}
	m.Table.BumpGen()
	m.Pool.LRURemove(id)
	m.Pool.Free(id)
	m.Evicted.Inc()
	m.freed.Wake(p.Now())
	return true
}
