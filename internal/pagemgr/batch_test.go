package pagemgr

import (
	"bytes"
	"testing"

	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// The batched cleaner must be behavior-identical to the per-op cleaner —
// same pages cleaned, same bytes landed — while coalescing contiguous
// remote offsets and ringing one doorbell per queue pair.
func TestCleanPassBatchedCoalescesAndCleans(t *testing.T) {
	const n = 8
	f := newFixture(t, 16, 16, DefaultConfig(16))
	f.mgr.Batch = true
	for v := pagetable.VPN(0); v < n; v++ {
		f.mapPage(v, true, byte(0xa0+v))
	}
	f.run(func(p *sim.Proc) { f.mgr.cleanPass(p, 0) })
	if f.mgr.Cleaned.N != n {
		t.Fatalf("cleaned = %d, want %d", f.mgr.Cleaned.N, n)
	}
	for v := pagetable.VPN(0); v < n; v++ {
		if f.tbl.Lookup(v).Dirty() {
			t.Fatalf("page %d still dirty", v)
		}
		got := make([]byte, pagetable.PageSize)
		f.node.ReadAt(f.base+uint64(v)*pagetable.PageSize, got)
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(0xa0 + v)}, pagetable.PageSize)) {
			t.Fatalf("page %d content wrong after write-back", v)
		}
	}
	if f.link.Batches.N != 1 {
		t.Fatalf("doorbells = %d, want 1 (one per queue pair)", f.link.Batches.N)
	}
	// The fixture's pages are remote-contiguous, so the 8 writes coalesce
	// into ≤3-segment vectors: ceil(8/3) = 3 ops, 5 merged segments.
	if f.link.BatchedOps.N != 3 || f.link.CoalescedSegs.N != 5 {
		t.Fatalf("ops=%d coalesced=%d, want 3/5", f.link.BatchedOps.N, f.link.CoalescedSegs.N)
	}
	if f.link.TxBytes.N != n*pagetable.PageSize {
		t.Fatalf("tx bytes = %d", f.link.TxBytes.N)
	}
}

// The batched sweep reuses the manager's scratch arenas: re-cleaning the
// same dirty set must not grow allocations. The bound is not zero — each
// vectored write still allocates its fabric.Op and a completion timer —
// but it is a handful per sweep, independent of sweep size.
func TestCleanerSweepAllocs(t *testing.T) {
	const n = 32
	f := newFixture(t, 64, 64, DefaultConfig(64))
	f.mgr.Batch = true
	var ptes [n]pagetable.PTE
	for v := pagetable.VPN(0); v < n; v++ {
		f.mapPage(v, true, byte(v))
		ptes[v] = f.tbl.Lookup(v)
	}
	f.run(func(p *sim.Proc) {
		f.mgr.cleanPass(p, 0) // warm up: size the scratch arenas
		avg := testing.AllocsPerRun(8, func() {
			for v := pagetable.VPN(0); v < n; v++ {
				f.tbl.Set(v, ptes[v]) // re-dirty
			}
			f.mgr.cleanPass(p, 0)
		})
		// ceil(32/3) = 11 vectored ops; each op allocates itself plus its
		// wait timer. Anything per-page would blow well past this.
		if avg > 30 {
			t.Errorf("cleaner sweep allocates %.1f per pass, want ≤ 30", avg)
		}
	})
}

// The guided sweep must be as allocation-disciplined as the plain one: the
// vector log recycles slots through freeVecs, so re-cleaning the same dirty
// set — store vector, release on re-clean, store again — must not grow
// allocations per pass. This is the guard for the map-free VecIdx scheme:
// the old per-page map rebuilt its entries every sweep.
func TestCleanerSweepAllocsGuided(t *testing.T) {
	const n = 32
	f := newFixture(t, 64, 64, DefaultConfig(64))
	f.mgr.Batch = true
	f.mgr.Guide = staticGuide{chunks: []Chunk{{Off: 0, Len: 512}, {Off: 2048, Len: 1024}}}
	var ptes [n]pagetable.PTE
	for v := pagetable.VPN(0); v < n; v++ {
		f.mapPage(v, true, byte(v))
		ptes[v] = f.tbl.Lookup(v)
	}
	f.run(func(p *sim.Proc) {
		f.mgr.cleanPass(p, 0) // warm up: size scratch arenas and the vector log
		avg := testing.AllocsPerRun(8, func() {
			for v := pagetable.VPN(0); v < n; v++ {
				f.tbl.Set(v, ptes[v]) // re-dirty
			}
			f.mgr.cleanPass(p, 0)
		})
		// Guided writes carry 2 segments per page, so pages don't share ops:
		// 32 ops plus wait timers — still O(ops), never O(pages) map churn.
		if avg > 80 {
			t.Errorf("guided cleaner sweep allocates %.1f per pass, want ≤ 80", avg)
		}
	})
	if f.mgr.VectorSaves.N == 0 {
		t.Fatal("guide never engaged — the guard did not cover the guided path")
	}
}
