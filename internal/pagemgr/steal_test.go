package pagemgr

import (
	"testing"

	"dilos/internal/dram"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// newShardedFixture builds a fixture whose pool and manager run n shards.
func newShardedFixture(t testing.TB, shards, frames int, pages uint64) *fixture {
	t.Helper()
	f := newFixture(t, frames, pages, DefaultConfig(frames))
	f.pool.SetShards(shards)
	f.mgr.Shards = shards
	return f
}

// mapPageOn maps vpn into a fresh frame homed to `core`'s shard, clean and
// with the accessed bit already clear — immediately evictable, so clock
// order is observable without second-chance rotations.
func (f *fixture) mapPageOn(core int, vpn pagetable.VPN) dram.FrameID {
	id, ok := f.pool.Alloc()
	if !ok {
		panic("fixture pool exhausted")
	}
	f.tbl.Set(vpn, pagetable.Local(uint64(id), true))
	f.mgr.InsertLRUFor(core, id, vpn)
	return id
}

// TestStealPreservesVictimClockOrder empties shard 0 and fills shard 1
// with evictable pages, then drives shard 0's reclaimer through
// reclaimStepSteal: every eviction must steal shard 1's *coldest* frame —
// stealing borrows the neighbour's clock hand, it does not scramble it.
func TestStealPreservesVictimClockOrder(t *testing.T) {
	const pages = 8
	f := newShardedFixture(t, 2, 16, pages)
	order := make([]pagetable.VPN, 0, pages)
	for v := pagetable.VPN(0); v < pages; v++ {
		f.mapPageOn(1, v) // all homed to shard 1; shard 0 stays empty
		order = append(order, v)
	}
	f.run(func(p *sim.Proc) {
		for i := 0; i < pages; i++ {
			before := f.pool.LRULenOf(1)
			victim, ok := f.mgr.reclaimStepSteal(p, 0)
			if !ok {
				t.Fatalf("steal %d found nothing with %d frames on shard 1", i, before)
			}
			if victim != 1 {
				t.Fatalf("steal %d reported victim shard %d, want 1", i, victim)
			}
			if f.pool.LRULenOf(1) != before-1 {
				t.Fatalf("steal %d did not shrink shard 1 (%d -> %d)",
					i, before, f.pool.LRULenOf(1))
			}
			// Insertion order is clock order here; the stolen victim must be
			// the cold end, so the evicted page is order[i] — now Remote.
			if got := f.tbl.Lookup(order[i]).Tag(); got != pagetable.TagRemote {
				t.Fatalf("steal %d: vpn %d is %v, want remote (stolen out of order)",
					i, order[i], got)
			}
			// The survivors keep their relative order.
			want := order[i+1:]
			k := 0
			f.pool.WalkShard(1, func(id dram.FrameID, fr *dram.Frame) bool {
				if k >= len(want) || fr.VPN != want[k] {
					t.Fatalf("after steal %d: shard 1 position %d holds vpn %d, want %d",
						i, k, fr.VPN, want[k])
				}
				k++
				return true
			})
			if k != len(want) {
				t.Fatalf("after steal %d: shard 1 has %d frames, want %d", i, k, len(want))
			}
		}
	})
	if f.mgr.Evicted.N != pages {
		t.Fatalf("evictions = %d, want %d", f.mgr.Evicted.N, pages)
	}
}

// TestStealPrefersOwnShard gives both shards evictable frames: the daemon
// must drain its own shard before touching the neighbour's.
func TestStealPrefersOwnShard(t *testing.T) {
	f := newShardedFixture(t, 2, 16, 8)
	f.mapPageOn(0, 0)
	f.mapPageOn(1, 1)
	f.run(func(p *sim.Proc) {
		victim, ok := f.mgr.reclaimStepSteal(p, 0)
		if !ok {
			t.Fatal("no eviction")
		}
		if victim != 0 {
			t.Fatalf("victim shard = %d, want own shard 0", victim)
		}
	})
	if f.tbl.Lookup(0).Tag() != pagetable.TagRemote {
		t.Fatal("own-shard victim not evicted")
	}
	if f.tbl.Lookup(1).Tag() != pagetable.TagLocal {
		t.Fatal("neighbour raided while own shard had a victim")
	}
}
