package pagemgr

import (
	"bytes"
	"testing"

	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/memnode"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

type fixture struct {
	eng  *sim.Engine
	node *memnode.Node
	link *fabric.Link
	pool *dram.Pool
	tbl  *pagetable.Table
	mgr  *Manager
	base uint64 // remote base offset for vpn 0
}

func newFixture(t testing.TB, frames int, pages uint64, cfg Config) *fixture {
	t.Helper()
	f := &fixture{
		eng:  sim.New(),
		pool: dram.NewPool(frames),
		tbl:  pagetable.New(),
	}
	f.node = memnode.New(64<<20, 1)
	f.link = fabric.NewLink(f.node, fabric.DefaultParams())
	base, err := f.node.AllocRange(pages)
	if err != nil {
		t.Fatal(err)
	}
	f.base = base
	f.mgr = New(f.pool, f.tbl, cfg)
	cleanQP := f.link.MustQP("clean", 1)
	reclaimQP := f.link.MustQP("reclaim", 1)
	f.mgr.RemoteOf = func(v pagetable.VPN) (Target, bool) {
		if uint64(v) >= pages {
			return Target{}, false
		}
		return Target{
			Off:       base + uint64(v)*pagetable.PageSize,
			CleanQP:   cleanQP,
			ReclaimQP: reclaimQP,
		}, true
	}
	return f
}

// mapPage simulates a fault handler mapping vpn into a fresh frame.
func (f *fixture) mapPage(vpn pagetable.VPN, dirty bool, fill byte) dram.FrameID {
	id, ok := f.pool.Alloc()
	if !ok {
		panic("fixture pool exhausted")
	}
	buf := f.pool.Bytes(id)
	for i := range buf {
		buf[i] = fill
	}
	pte := pagetable.Local(uint64(id), true) | pagetable.BitAccessed
	if dirty {
		pte |= pagetable.BitDirty
	}
	f.tbl.Set(vpn, pte)
	f.mgr.InsertLRU(id, vpn)
	return id
}

func (f *fixture) run(fn func(p *sim.Proc)) {
	f.eng.Go("test", fn)
	f.eng.Run()
}

func TestCleanerWritesBackAndClearsDirty(t *testing.T) {
	f := newFixture(t, 8, 8, DefaultConfig(8))
	f.mapPage(3, true, 0xcd)
	f.run(func(p *sim.Proc) {
		f.mgr.cleanPass(p, 0)
	})
	if f.mgr.Cleaned.N != 1 {
		t.Fatalf("cleaned = %d", f.mgr.Cleaned.N)
	}
	if f.tbl.Lookup(3).Dirty() {
		t.Fatal("dirty bit not cleared")
	}
	got := make([]byte, pagetable.PageSize)
	f.node.ReadAt(f.base+3*pagetable.PageSize, got)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xcd}, pagetable.PageSize)) {
		t.Fatal("write-back content wrong")
	}
	if f.link.TxBytes.N != pagetable.PageSize {
		t.Fatalf("tx bytes = %d", f.link.TxBytes.N)
	}
}

func TestCleanerSkipsCleanAndPinned(t *testing.T) {
	f := newFixture(t, 8, 8, DefaultConfig(8))
	f.mapPage(0, false, 1)
	id := f.mapPage(1, true, 2)
	f.pool.Meta(id).Pinned = true
	f.run(func(p *sim.Proc) { f.mgr.cleanPass(p, 0) })
	if f.mgr.Cleaned.N != 0 {
		t.Fatalf("cleaned = %d, want 0", f.mgr.Cleaned.N)
	}
}

func TestCleanerBumpsGeneration(t *testing.T) {
	f := newFixture(t, 8, 8, DefaultConfig(8))
	f.mapPage(0, true, 1)
	g := f.tbl.Gen()
	f.run(func(p *sim.Proc) { f.mgr.cleanPass(p, 0) })
	if f.tbl.Gen() == g {
		t.Fatal("no TLB shootdown after clearing dirty bits")
	}
}

func TestReclaimerEvictsColdCleanPage(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.LowWater, cfg.HighWater = 2, 4
	f := newFixture(t, 8, 8, cfg)
	// Fill the pool: 8 clean pages, accessed bits set.
	for v := pagetable.VPN(0); v < 8; v++ {
		f.mapPage(v, false, byte(v))
	}
	f.run(func(p *sim.Proc) {
		// The first pass may only strip accessed bits (second chance);
		// subsequent passes evict.
		for i := 0; f.pool.FreeCount() < cfg.HighWater && i < 100; i++ {
			f.mgr.reclaimStep(p, 0)
		}
	})
	if f.pool.FreeCount() != cfg.HighWater {
		t.Fatalf("free = %d", f.pool.FreeCount())
	}
	// Evicted pages must be Remote now.
	evicted := 0
	for v := pagetable.VPN(0); v < 8; v++ {
		if f.tbl.Lookup(v).Tag() == pagetable.TagRemote {
			evicted++
		}
	}
	if evicted != cfg.HighWater {
		t.Fatalf("evicted = %d", evicted)
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	cfg := DefaultConfig(8)
	f := newFixture(t, 8, 8, cfg)
	f.mapPage(0, false, 1) // accessed (mapPage sets BitAccessed)
	f.mapPage(1, false, 2)
	// Clear page 1's accessed bit so it is the eviction candidate even
	// though it is younger.
	f.tbl.Set(1, f.tbl.Lookup(1)&^pagetable.BitAccessed)
	f.run(func(p *sim.Proc) {
		if !f.mgr.reclaimStep(p, 0) {
			t.Error("no eviction")
		}
	})
	if f.tbl.Lookup(1).Tag() != pagetable.TagRemote {
		t.Fatal("clock did not evict the unaccessed page")
	}
	if f.tbl.Lookup(0).Tag() != pagetable.TagLocal {
		t.Fatal("accessed page evicted without second chance")
	}
	if f.tbl.Lookup(0).Accessed() {
		t.Fatal("second chance must clear the accessed bit")
	}
}

func TestReclaimerSyncWritebackWhenAllDirty(t *testing.T) {
	cfg := DefaultConfig(4)
	f := newFixture(t, 4, 8, cfg)
	for v := pagetable.VPN(0); v < 4; v++ {
		f.mapPage(v, true, byte(0x40+v))
		f.tbl.Set(v, f.tbl.Lookup(v)&^pagetable.BitAccessed)
	}
	f.run(func(p *sim.Proc) {
		if !f.mgr.reclaimStep(p, 0) {
			t.Error("reclaimer failed with all-dirty pool")
		}
	})
	if f.mgr.SyncWrites.N != 1 {
		t.Fatalf("sync writes = %d", f.mgr.SyncWrites.N)
	}
	// Victim content must have reached the memory node before eviction.
	got := make([]byte, 1)
	f.node.ReadAt(f.base+0*pagetable.PageSize, got)
	if got[0] != 0x40 {
		t.Fatalf("evicted dirty data lost: %x", got[0])
	}
}

func TestEvictionPreservesData(t *testing.T) {
	cfg := DefaultConfig(4)
	f := newFixture(t, 4, 8, cfg)
	id := f.mapPage(2, true, 0x77)
	_ = id
	f.run(func(p *sim.Proc) {
		f.mgr.cleanPass(p, 0) // write back
		f.tbl.Set(2, f.tbl.Lookup(2)&^pagetable.BitAccessed)
		if !f.mgr.reclaimStep(p, 0) {
			t.Error("no eviction")
		}
	})
	got := make([]byte, pagetable.PageSize)
	f.node.ReadAt(f.base+2*pagetable.PageSize, got)
	for _, b := range got {
		if b != 0x77 {
			t.Fatal("page content lost across clean+evict")
		}
	}
	if f.pool.FreeCount() != 4 {
		t.Fatal("frame not freed")
	}
}

// staticGuide reports fixed live chunks for every page.
type staticGuide struct{ chunks []Chunk }

func (g staticGuide) LiveChunks(pagetable.VPN) ([]Chunk, bool) { return g.chunks, true }

func TestGuidedCleaningWritesOnlyLiveChunks(t *testing.T) {
	cfg := DefaultConfig(4)
	f := newFixture(t, 4, 8, cfg)
	f.mgr.Guide = staticGuide{chunks: []Chunk{{Off: 0, Len: 128}, {Off: 1024, Len: 256}}}
	f.mapPage(0, true, 0xee)
	f.run(func(p *sim.Proc) { f.mgr.cleanPass(p, 0) })
	if f.link.TxBytes.N != 128+256 {
		t.Fatalf("tx bytes = %d, want 384 (live chunks only)", f.link.TxBytes.N)
	}
	if f.mgr.VectorSaves.N != pagetable.PageSize-384 {
		t.Fatalf("vector saves = %d", f.mgr.VectorSaves.N)
	}
}

func TestGuidedEvictionProducesActionPTE(t *testing.T) {
	cfg := DefaultConfig(4)
	f := newFixture(t, 4, 8, cfg)
	f.mgr.Guide = staticGuide{chunks: []Chunk{{Off: 64, Len: 64}}}
	f.mapPage(5, true, 0xaa)
	f.run(func(p *sim.Proc) {
		f.mgr.cleanPass(p, 0)
		f.tbl.Set(5, f.tbl.Lookup(5)&^pagetable.BitAccessed)
		if !f.mgr.reclaimStep(p, 0) {
			t.Error("no eviction")
		}
	})
	pte := f.tbl.Lookup(5)
	if pte.Tag() != pagetable.TagAction {
		t.Fatalf("PTE = %v, want action", pte)
	}
	chunks := f.mgr.Vector(pte.Payload())
	if len(chunks) != 1 || chunks[0].Off != 64 || chunks[0].Len != 64 {
		t.Fatalf("chunks = %v", chunks)
	}
}

func TestVectorSlotRecycling(t *testing.T) {
	m := New(dram.NewPool(1), pagetable.New(), DefaultConfig(1))
	a := m.storeVector([]Chunk{{0, 1}})
	b := m.storeVector([]Chunk{{1, 1}})
	m.Vector(a)
	c := m.storeVector([]Chunk{{2, 2}})
	if c != a {
		t.Fatalf("slot not recycled: %d vs %d", c, a)
	}
	if got := m.Vector(c); got[0].Off != 2 {
		t.Fatal("recycled slot has stale chunks")
	}
	_ = b
}

func TestVectorDoubleTakePanics(t *testing.T) {
	m := New(dram.NewPool(1), pagetable.New(), DefaultConfig(1))
	idx := m.storeVector([]Chunk{{0, 8}})
	m.Vector(idx)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Vector(idx)
}

func TestUsableVectorRules(t *testing.T) {
	cases := []struct {
		chunks []Chunk
		want   bool
	}{
		{nil, false},
		{[]Chunk{{0, 64}}, true},
		{[]Chunk{{0, 64}, {128, 64}, {512, 64}}, true},
		{[]Chunk{{0, 64}, {128, 64}, {512, 64}, {1024, 64}}, false}, // >3 segs
		{[]Chunk{{0, 4096}}, false},                                 // whole page
		{[]Chunk{{4000, 200}}, false},                               // overflows page
		{[]Chunk{{0, 0}}, false},                                    // empty chunk
	}
	for i, c := range cases {
		if got := usable(c.chunks); got != c.want {
			t.Errorf("case %d: usable = %t, want %t", i, got, c.want)
		}
	}
}

func TestAllocFrameWakesReclaimerAndWaits(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.LowWater, cfg.HighWater = 1, 2
	f := newFixture(t, 4, 16, cfg)
	f.mgr.Start(f.eng)
	var got []dram.FrameID
	f.run(func(p *sim.Proc) {
		// Map 4 pages (exhausts the pool), then allocate more: the
		// reclaimer must evict to satisfy us.
		for v := pagetable.VPN(0); v < 4; v++ {
			f.mapPage(v, false, 0)
			f.tbl.Set(v, f.tbl.Lookup(v)&^pagetable.BitAccessed)
		}
		for i := 0; i < 2; i++ {
			id := f.mgr.AllocFrame(p)
			got = append(got, id)
		}
	})
	if len(got) != 2 {
		t.Fatal("AllocFrame did not complete")
	}
	if f.mgr.Evicted.N == 0 {
		t.Fatal("reclaimer never ran")
	}
}
