// Package tenant holds the pure-policy pieces of multi-tenant sharing:
// quota planning (splitting a frame pool by weight over hard floors), the
// fabric-bandwidth token bucket, and the pressure-driven quota rebalancer.
// Everything here is deterministic arithmetic with no simulator or I/O
// dependencies, so policy can be unit-tested exhaustively; the wiring that
// applies these decisions lives in internal/core.
package tenant

import (
	"fmt"

	"dilos/internal/sim"
)

// Quota describes one tenant's resource entitlement.
type Quota struct {
	// Weight is the tenant's share of the partitionable frame pool
	// relative to the other tenants' weights.
	Weight int
	// FloorFrames is the hard minimum reservation: rebalancing and
	// planning never push the tenant's quota below it.
	FloorFrames int
	// FabricBytesPerSec caps the tenant's fabric bandwidth (token-bucket
	// rate). 0 = unlimited.
	FabricBytesPerSec int64
	// FabricBurstBytes is the token bucket's burst allowance: how many
	// bytes ahead of the fluid-rate schedule the tenant may run after an
	// idle period. 0 = strictly paced at the rate.
	FabricBurstBytes int64
}

// Validate rejects quotas the planner cannot honour.
func (q Quota) Validate() error {
	if q.Weight <= 0 {
		return fmt.Errorf("tenant: weight %d must be positive", q.Weight)
	}
	if q.FloorFrames < 0 {
		return fmt.Errorf("tenant: floor %d must be non-negative", q.FloorFrames)
	}
	if q.FabricBytesPerSec < 0 {
		return fmt.Errorf("tenant: fabric rate %d must be non-negative", q.FabricBytesPerSec)
	}
	if q.FabricBurstBytes < 0 {
		return fmt.Errorf("tenant: fabric burst %d must be non-negative", q.FabricBurstBytes)
	}
	return nil
}

// Plan splits `frames` partitionable frames across quotas: every tenant
// gets its floor, the remainder is divided proportionally to weight, and
// leftover frames from integer division go to the lowest indices (stable,
// deterministic). Errors if the floors alone exceed the pool.
func Plan(frames int, quotas []Quota) ([]int, error) {
	if len(quotas) == 0 {
		return nil, fmt.Errorf("tenant: no quotas to plan")
	}
	floors, weights := 0, 0
	for i, q := range quotas {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("tenant: quota %d: %w", i, err)
		}
		floors += q.FloorFrames
		weights += q.Weight
	}
	if floors > frames {
		return nil, fmt.Errorf("tenant: floors total %d frames but only %d partitionable", floors, frames)
	}
	spare := frames - floors
	out := make([]int, len(quotas))
	given := 0
	for i, q := range quotas {
		share := spare * q.Weight / weights
		out[i] = q.FloorFrames + share
		given += share
	}
	for i := 0; given < spare; i++ {
		out[i%len(out)]++
		given++
	}
	return out, nil
}

// Bucket is a GCRA-style token bucket in virtual time: Gate returns the
// earliest virtual instant an op of `bytes` may start so that long-run
// throughput never exceeds Rate, with up to Burst bytes of credit for
// idle periods. All arithmetic is integral — same seed, same schedule.
type Bucket struct {
	Rate  int64 // bytes per (virtual) second; must be > 0
	Burst int64 // bytes of burst credit
	tat   sim.Time
}

// NewBucket creates a bucket enforcing rate bytes/s with burst credit.
func NewBucket(rate, burst int64) *Bucket {
	if rate <= 0 {
		panic("tenant: bucket rate must be positive")
	}
	if burst < 0 {
		panic("tenant: bucket burst must be non-negative")
	}
	return &Bucket{Rate: rate, Burst: burst}
}

// Gate charges `bytes` to the bucket and returns the earliest time the op
// may start. It never returns less than now.
func (b *Bucket) Gate(now sim.Time, bytes int) sim.Time {
	if bytes <= 0 {
		return now
	}
	burstNs := sim.Time(b.Burst * int64(sim.Second) / b.Rate)
	start := b.tat - burstNs
	if start < now {
		start = now
	}
	base := b.tat
	if base < start {
		base = start
	}
	b.tat = base + sim.Time(int64(bytes)*int64(sim.Second)/b.Rate)
	return start
}

// Backlogged reports whether the bucket has exhausted its burst credit at
// `now` — a new op would be deferred into the future. Shared services
// (cleaner/reclaimer) poll this before doing fabric work on a tenant's
// behalf, so one throttled tenant's backlog never head-of-line blocks the
// daemons for everyone else; the throttled tenant simply waits for its own
// bandwidth share.
func (b *Bucket) Backlogged(now sim.Time) bool {
	burstNs := sim.Time(b.Burst * int64(sim.Second) / b.Rate)
	return b.tat-burstNs > now
}

// Signal is one tenant's pressure reading for the rebalancer: its current
// quota position plus the memory pressure it accumulated since the last
// rebalance tick — allocation waits (the fault path blocked on a free
// frame) and reclaimer evictions (the tenant is cycling its quota). Both
// are deltas; an idle or fitting tenant reads 0.
type Signal struct {
	Reserved int
	Floor    int
	Used     int
	Pressure int64 // alloc waits + evictions since last tick
}

// Rebalance computes new reservations from pressure signals: tenants with
// Pressure gain up to `step` frames each, funded by pressure-free tenants
// with headroom (reserved above both floor and current use). The result
// conserves the total (Σ out == Σ reserved in), moves at most `step`
// frames into any one tenant per call, and is deterministic: both donors
// and takers are visited in index order.
func Rebalance(sig []Signal, step int) []int {
	out := make([]int, len(sig))
	for i, s := range sig {
		out[i] = s.Reserved
	}
	if step <= 0 {
		return out
	}
	// Donor capacity: frames a pressure-free tenant can give up without
	// dropping below its floor or its current footprint.
	spare := func(i int) int {
		s := sig[i]
		if s.Pressure > 0 {
			return 0
		}
		min := s.Floor
		if s.Used > min {
			min = s.Used
		}
		if d := out[i] - min; d > 0 {
			return d
		}
		return 0
	}
	for i, s := range sig {
		if s.Pressure == 0 {
			continue
		}
		need := step
		for j := range sig {
			if need == 0 {
				break
			}
			if j == i {
				continue
			}
			give := spare(j)
			if give > need {
				give = need
			}
			out[j] -= give
			out[i] += give
			need -= give
		}
	}
	return out
}
