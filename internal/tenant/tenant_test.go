package tenant

import (
	"testing"

	"dilos/internal/sim"
)

func TestQuotaValidate(t *testing.T) {
	cases := []struct {
		name string
		q    Quota
		ok   bool
	}{
		{"valid", Quota{Weight: 1}, true},
		{"valid full", Quota{Weight: 3, FloorFrames: 10, FabricBytesPerSec: 1 << 30, FabricBurstBytes: 1 << 20}, true},
		{"zero weight", Quota{Weight: 0}, false},
		{"negative weight", Quota{Weight: -1}, false},
		{"negative floor", Quota{Weight: 1, FloorFrames: -1}, false},
		{"negative rate", Quota{Weight: 1, FabricBytesPerSec: -1}, false},
		{"negative burst", Quota{Weight: 1, FabricBurstBytes: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.q.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestPlanWeightsAndFloors(t *testing.T) {
	got, err := Plan(100, []Quota{
		{Weight: 3, FloorFrames: 10},
		{Weight: 1, FloorFrames: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 80 spare: 60/20 by weight, on top of the 10-frame floors.
	if got[0] != 70 || got[1] != 30 {
		t.Fatalf("Plan = %v, want [70 30]", got)
	}
}

func TestPlanRemainderDeterministic(t *testing.T) {
	// 10 spare over 3 equal weights: 3 each, remainder 1 goes to index 0.
	got, err := Plan(10, []Quota{{Weight: 1}, {Weight: 1}, {Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("Plan = %v, want [4 3 3]", got)
	}
	sum := got[0] + got[1] + got[2]
	if sum != 10 {
		t.Fatalf("Plan not conserving: sum %d", sum)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(10, nil); err == nil {
		t.Fatal("Plan with no quotas should error")
	}
	if _, err := Plan(10, []Quota{{Weight: 1, FloorFrames: 6}, {Weight: 1, FloorFrames: 6}}); err == nil {
		t.Fatal("Plan with floors over capacity should error")
	}
	if _, err := Plan(10, []Quota{{Weight: 0}}); err == nil {
		t.Fatal("Plan with invalid quota should error")
	}
}

func TestBucketRate(t *testing.T) {
	// 1000 bytes/s, no burst: each 100-byte op is spaced 100ms apart.
	b := NewBucket(1000, 0)
	if got := b.Gate(0, 100); got != 0 {
		t.Fatalf("first op start = %v, want 0", got)
	}
	if got := b.Gate(0, 100); got != 100*sim.Millisecond {
		t.Fatalf("second op start = %v, want 100ms", got)
	}
	if got := b.Gate(0, 100); got != 200*sim.Millisecond {
		t.Fatalf("third op start = %v, want 200ms", got)
	}
}

func TestBucketBurst(t *testing.T) {
	// 1000 bytes/s with 200 bytes burst: an op may start while it is up to
	// 200 bytes ahead of the fluid-rate schedule, so ops 2 and 3 (100 and
	// 200 bytes ahead) go immediately and op 4 waits.
	b := NewBucket(1000, 200)
	if got := b.Gate(0, 100); got != 0 {
		t.Fatalf("op1 start = %v, want 0", got)
	}
	if got := b.Gate(0, 100); got != 0 {
		t.Fatalf("op2 start = %v, want 0 (burst)", got)
	}
	if got := b.Gate(0, 100); got != 0 {
		t.Fatalf("op3 start = %v, want 0 (burst)", got)
	}
	if got := b.Gate(0, 100); got != 100*sim.Millisecond {
		t.Fatalf("op4 start = %v, want 100ms", got)
	}
}

func TestBucketIdleRefill(t *testing.T) {
	b := NewBucket(1000, 0)
	b.Gate(0, 100)
	// After a long idle period the bucket never owes the past: the next op
	// starts at now.
	if got := b.Gate(sim.Second, 100); got != sim.Second {
		t.Fatalf("post-idle start = %v, want 1s", got)
	}
}

func TestBucketZeroBytes(t *testing.T) {
	b := NewBucket(1000, 0)
	if got := b.Gate(5, 0); got != 5 {
		t.Fatalf("zero-byte op start = %v, want now", got)
	}
}

func TestBucketBacklogged(t *testing.T) {
	// 1000 bytes/s, 200 bytes burst. Fresh bucket: not backlogged.
	b := NewBucket(1000, 200)
	if b.Backlogged(0) {
		t.Fatal("fresh bucket reports a backlog")
	}
	// Charging exactly the burst keeps the next op admissible at now.
	b.Gate(0, 200)
	if b.Backlogged(0) {
		t.Fatal("burst-level charge reports a backlog")
	}
	// One more byte over the burst defers the next op: backlogged until the
	// schedule catches up (1 byte = 1ms at 1000 B/s).
	b.Gate(0, 1)
	if !b.Backlogged(0) {
		t.Fatal("over-burst bucket not backlogged")
	}
	if b.Backlogged(sim.Millisecond) {
		t.Fatal("backlog did not drain with time")
	}
}

func TestRebalanceMovesPressureward(t *testing.T) {
	sig := []Signal{
		{Reserved: 100, Floor: 50, Used: 60, Pressure: 0},  // donor: 40 spare over use
		{Reserved: 100, Floor: 50, Used: 100, Pressure: 7}, // starved
	}
	got := Rebalance(sig, 16)
	if got[0] != 84 || got[1] != 116 {
		t.Fatalf("Rebalance = %v, want [84 116]", got)
	}
}

func TestRebalanceRespectsFloorAndUse(t *testing.T) {
	sig := []Signal{
		{Reserved: 60, Floor: 50, Used: 55, Pressure: 0}, // only 5 above use
		{Reserved: 60, Floor: 60, Used: 10, Pressure: 0}, // at floor: gives nothing
		{Reserved: 60, Floor: 10, Used: 60, Pressure: 3},
	}
	got := Rebalance(sig, 16)
	if got[0] != 55 || got[1] != 60 || got[2] != 65 {
		t.Fatalf("Rebalance = %v, want [55 60 65]", got)
	}
	if got[0]+got[1]+got[2] != 180 {
		t.Fatalf("Rebalance not conserving: %v", got)
	}
}

func TestRebalanceNoPressureNoMove(t *testing.T) {
	sig := []Signal{
		{Reserved: 100, Floor: 10, Used: 20},
		{Reserved: 100, Floor: 10, Used: 90},
	}
	got := Rebalance(sig, 16)
	if got[0] != 100 || got[1] != 100 {
		t.Fatalf("Rebalance moved frames without pressure: %v", got)
	}
}

// TestBucketGateDoesNotAllocate: Gate sits on QP.Submit — the per-op hot
// path — and must stay allocation-free.
func TestBucketGateDoesNotAllocate(t *testing.T) {
	b := NewBucket(1<<30, 1<<20)
	now := sim.Time(0)
	if n := testing.AllocsPerRun(200, func() {
		now = b.Gate(now, 4096)
	}); n != 0 {
		t.Fatalf("Gate allocates %v times per op", n)
	}
}
