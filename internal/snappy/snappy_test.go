package snappy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/sim"
	"dilos/internal/space"
)

func TestRoundTripSimple(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello hello hello hello"),
		bytes.Repeat([]byte("abcd"), 10000),
		bytes.Repeat([]byte{0}, 200000),
	}
	for i, src := range cases {
		comp := CompressBytes(src)
		got := DecompressBytes(comp, len(src))
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip failed", i)
		}
	}
}

func TestCompressionRatioOnRedundantData(t *testing.T) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 5000)
	comp := CompressBytes(src)
	if len(comp)*3 > len(src) {
		t.Fatalf("ratio too poor on redundant text: %d -> %d", len(src), len(comp))
	}
}

func TestIncompressibleDataExpandsBoundedly(t *testing.T) {
	src := make([]byte, 100000)
	rand.New(rand.NewSource(1)).Read(src)
	comp := CompressBytes(src)
	if len(comp) > len(src)+len(src)/64+16 {
		t.Fatalf("expansion too large: %d -> %d", len(src), len(comp))
	}
	if !bytes.Equal(DecompressBytes(comp, len(src)), src) {
		t.Fatal("round trip failed")
	}
}

// Property (DESIGN.md §6): decompress(compress(x)) == x for arbitrary x.
func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := CompressBytes(src)
		return bytes.Equal(DecompressBytes(comp, len(src)), src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: structured (compressible) random data also round-trips.
func TestQuickRoundTripCompressible(t *testing.T) {
	f := func(seed int64, words uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dict := make([][]byte, int(words%16)+2)
		for i := range dict {
			w := make([]byte, rng.Intn(20)+3)
			rng.Read(w)
			dict[i] = w
		}
		var src []byte
		for len(src) < 150000 {
			src = append(src, dict[rng.Intn(len(dict))]...)
		}
		comp := CompressBytes(src)
		return bytes.Equal(DecompressBytes(comp, len(src)), src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiBlockStreams(t *testing.T) {
	src := make([]byte, 3*BlockSize+1234) // forces 4 blocks
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < len(src); i += 8 {
		// Semi-compressible: runs of repeated words.
		v := byte(rng.Intn(4))
		for j := i; j < i+8 && j < len(src); j++ {
			src[j] = v
		}
	}
	comp := CompressBytes(src)
	if !bytes.Equal(DecompressBytes(comp, len(src)), src) {
		t.Fatal("multi-block round trip failed")
	}
}

func TestCompressChargesCPU(t *testing.T) {
	sp := space.NewLocal(4 << 20)
	eng := sim.New()
	var elapsed sim.Time
	eng.Go("cpu", func(p *sim.Proc) {
		sp.P = p
		src := sp.Malloc(1 << 20)
		dst := sp.Malloc(2 << 20)
		t0 := p.Now()
		Compress(sp, src, 1<<20, dst)
		elapsed = p.Now() - t0
	})
	eng.Run()
	if elapsed < sim.Time(1<<20)*CompressCostPerByte {
		t.Fatalf("compression too cheap: %v", elapsed)
	}
}

func TestSnappyOnDiLOS(t *testing.T) {
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 128, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		const n = 1 << 20 // 256 pages vs 128-frame cache
		src := sp.Malloc(n)
		dst := sp.Malloc(2 * n)
		back := sp.Malloc(n)
		// Compressible pattern written through the space.
		pattern := bytes.Repeat([]byte("0123456789abcdef"), 256)
		for off := uint64(0); off < n; off += uint64(len(pattern)) {
			sp.Store(src+off, pattern)
		}
		cn := Compress(sp, src, n, dst)
		dn := Decompress(sp, dst, cn, back)
		if dn != n {
			t.Errorf("decompressed %d bytes, want %d", dn, n)
			return
		}
		buf := make([]byte, len(pattern))
		sp.Load(back+4096, buf)
		if !bytes.Equal(buf, pattern) {
			t.Error("payload corrupted through paging")
		}
	})
	eng.Run()
	if sys.Mgr.Evicted.N == 0 {
		t.Fatal("no paging pressure during compression")
	}
}
