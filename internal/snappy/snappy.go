// Package snappy is a from-scratch LZ77-family block compressor in the
// spirit of Google Snappy, used by the paper's compression/decompression
// workloads (Figure 7(c)/(d)). The codec streams its input and output
// through page-sized windows of the simulated address space, so the paging
// system underneath sees snappy's real access pattern: a strictly
// sequential read of the source and a strictly sequential write of the
// destination, at memory speed. CPU cost is charged per byte at
// snappy-like rates.
//
// Format (little-endian, per 64 KiB block):
//
//	varint(uncompressed block length)
//	tags: 0b0xxxxxxx literal of length x+1 followed by the bytes
//	      0b1xxxxxxx copy; x+4 is the length, next 2 bytes the offset
package snappy

import (
	"encoding/binary"
	"fmt"

	"dilos/internal/sim"
	"dilos/internal/space"
)

// BlockSize is the compression window (Snappy uses 64 KiB blocks).
const BlockSize = 64 << 10

// CPU cost model: Snappy's published speeds on testbed-class cores are
// ≈250 MB/s compression and ≈500 MB/s decompression per core — 4 ns/B and
// 2 ns/B respectively.
const (
	CompressCostPerByte   = 4 * sim.Nanosecond
	DecompressCostPerByte = 2 * sim.Nanosecond
)

const (
	minCopyLen = 4
	maxCopyLen = 131 // 0x7f + 4
	maxLiteral = 128
	hashBits   = 14
	hashShift  = 32 - hashBits
	maxOffset  = 1 << 16
)

// Compress reads srcLen bytes at src (through sp), writes the compressed
// stream at dst, and returns the compressed length.
func Compress(sp space.Space, src uint64, srcLen uint64, dst uint64) uint64 {
	var out uint64
	block := make([]byte, BlockSize)
	for off := uint64(0); off < srcLen; off += BlockSize {
		n := srcLen - off
		if n > BlockSize {
			n = BlockSize
		}
		sp.Load(src+off, block[:n])
		comp := compressBlock(block[:n])
		sp.Compute(sim.Time(n) * CompressCostPerByte)
		sp.Store(dst+out, comp)
		out += uint64(len(comp))
	}
	return out
}

// Decompress reads the compressed stream (originally srcLen uncompressed
// bytes) at src and writes the original data at dst. Returns the number of
// bytes written.
func Decompress(sp space.Space, src uint64, compLen uint64, dst uint64) uint64 {
	var in, out uint64
	window := make([]byte, 0, BlockSize)
	hdr := make([]byte, binary.MaxVarintLen32)
	for in < compLen {
		// Read the block header (peek up to 5 bytes).
		peek := compLen - in
		if peek > uint64(len(hdr)) {
			peek = uint64(len(hdr))
		}
		sp.Load(src+in, hdr[:peek])
		blockLen, k := binary.Uvarint(hdr[:peek])
		if k <= 0 {
			panic("snappy: corrupt block header")
		}
		in += uint64(k)
		// Scan the body once to find its compressed length, then bulk-read.
		// (Streaming decoders read forward anyway; we fetch in page-sized
		// Loads via sp.Load's chunking.)
		body, consumed := decompressBody(sp, src+in, compLen-in, blockLen, window[:0])
		in += consumed
		sp.Compute(sim.Time(blockLen) * DecompressCostPerByte)
		sp.Store(dst+out, body)
		out += uint64(len(body))
	}
	return out
}

// compressBlock encodes one block with a greedy hash-table matcher.
func compressBlock(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	out = append(out, hdr[:n]...)

	var table [1 << hashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	emitLiterals := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLiteral {
				n = maxLiteral
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	for i+minCopyLen <= len(src) {
		h := hash4(src[i:])
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) < maxOffset && match4(src, int(cand), i) {
			emitLiterals(i)
			length := minCopyLen
			for i+length < len(src) && length < maxCopyLen &&
				src[int(cand)+length] == src[i+length] {
				length++
			}
			offset := i - int(cand)
			out = append(out, 0x80|byte(length-minCopyLen),
				byte(offset), byte(offset>>8))
			i += length
			litStart = i
			continue
		}
		i++
	}
	emitLiterals(len(src))
	return out
}

func hash4(b []byte) uint32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return (v * 0x1e35a7bd) >> hashShift
}

func match4(src []byte, a, b int) bool {
	return src[a] == src[b] && src[a+1] == src[b+1] &&
		src[a+2] == src[b+2] && src[a+3] == src[b+3]
}

// decompressBody decodes one block of blockLen uncompressed bytes starting
// at addr (at most maxIn compressed bytes), returning the bytes and the
// compressed length consumed.
func decompressBody(sp space.Space, addr uint64, maxIn uint64, blockLen uint64, dst []byte) ([]byte, uint64) {
	var in uint64
	// Buffered forward reader over the space, clamped to the stream end so
	// it never touches unmapped pages past the compressed data.
	var buf [4096]byte
	bufStart, bufEnd := uint64(0), uint64(0)
	readByte := func() byte {
		if in >= bufEnd || in < bufStart {
			if in >= maxIn {
				panic("snappy: truncated stream")
			}
			bufStart = in
			n := maxIn - in
			if n > uint64(len(buf)) {
				n = uint64(len(buf))
			}
			sp.Load(addr+in, buf[:n])
			bufEnd = in + n
		}
		b := buf[in-bufStart]
		in++
		return b
	}
	for uint64(len(dst)) < blockLen {
		tag := readByte()
		if tag&0x80 == 0 {
			n := int(tag) + 1
			for k := 0; k < n; k++ {
				dst = append(dst, readByte())
			}
		} else {
			length := int(tag&0x7f) + minCopyLen
			lo := readByte()
			hi := readByte()
			offset := int(lo) | int(hi)<<8
			start := len(dst) - offset
			if start < 0 {
				panic(fmt.Sprintf("snappy: copy before block start (offset %d at %d)", offset, len(dst)))
			}
			for k := 0; k < length; k++ {
				dst = append(dst, dst[start+k])
			}
		}
	}
	if uint64(len(dst)) != blockLen {
		panic("snappy: block overrun")
	}
	return dst, in
}

// CompressBytes / DecompressBytes are host-side convenience wrappers (used
// by property tests and by data-set preparation).
func CompressBytes(src []byte) []byte {
	sp := space.NewLocal(uint64(len(src))*2 + 1<<20)
	a := sp.Malloc(uint64(len(src)) + 8)
	b := sp.Malloc(uint64(len(src))*2 + 64)
	sp.Store(a, src)
	n := Compress(sp, a, uint64(len(src)), b)
	out := make([]byte, n)
	sp.Load(b, out)
	return out
}

// DecompressBytes reverses CompressBytes.
func DecompressBytes(comp []byte, origLen int) []byte {
	sp := space.NewLocal(uint64(len(comp)+origLen) + 1<<20)
	a := sp.Malloc(uint64(len(comp)) + 8)
	b := sp.Malloc(uint64(origLen) + 64)
	sp.Store(a, comp)
	n := Decompress(sp, a, uint64(len(comp)), b)
	out := make([]byte, n)
	sp.Load(b, out)
	return out
}
