package snappy

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives the codec with arbitrary inputs (run with
// `go test -fuzz=FuzzRoundTrip ./internal/snappy`; the seeds below run as
// regular unit cases).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add(bytes.Repeat([]byte("dilos"), 4000))
	f.Add(bytes.Repeat([]byte{0xff, 0x00}, 70000)) // spans two blocks
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<20 {
			t.Skip()
		}
		comp := CompressBytes(src)
		got := DecompressBytes(comp, len(src))
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip failed for %d bytes", len(src))
		}
	})
}
