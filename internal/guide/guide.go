// Package guide implements DiLOS' app-aware guides (§4.3, Figure 5):
// pluggable modules, loaded beside an unmodified application, that feed
// application semantics to the paging subsystem. The canonical example
// here is the pointer-chasing ListGuide: during a linked-list traversal a
// general-purpose prefetcher is useless (the next page is data-dependent),
// but the guide can issue a *subpage* read for just the node header on its
// own queue — the 64 B arrive well before the 4 KiB page — extract the
// next pointer, and prefetch the next node's page ahead of the
// application.
//
// Redis-specific guides (quicklist LRANGE, SDS GET) build on the same
// machinery and live in internal/redis, compiled "with the application"
// as the paper does.
package guide

import (
	"encoding/binary"

	"dilos/internal/core"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// ListGuide prefetches along a pointer chain. The application (through the
// loader's hooking interface) reports the node it is visiting with
// OnVisit; the guide's chaser daemon runs ahead by Depth nodes, reading
// each node header with a subpage fetch and prefetching the page the next
// node lives on.
type ListGuide struct {
	// NextOff is the byte offset of the 8-byte next pointer in a node.
	NextOff uint64
	// HeaderBytes is how much of the node the subpage read fetches.
	HeaderBytes int
	// Depth is how many nodes ahead of the application to chase.
	Depth int

	sys    *core.System
	coreID int

	cursor   uint64 // node the application is visiting
	chase    uint64 // node the chaser will inspect next
	behindBy int
	active   bool
	work     sim.Waiter

	SubpageReads int64
	Prefetched   int64
}

// NewListGuide creates a guide for nodes whose next pointer lives at
// nextOff. Depth ≤ 0 selects the default of 8.
func NewListGuide(nextOff uint64, depth int) *ListGuide {
	if depth <= 0 {
		depth = 8
	}
	hdr := 64
	if int(nextOff)+8 > hdr {
		hdr = int(nextOff) + 8
	}
	return &ListGuide{NextOff: nextOff, HeaderBytes: hdr, Depth: depth}
}

// Name implements core.Guide.
func (g *ListGuide) Name() string { return "list-guide" }

// Start implements core.Guide: it spawns the chaser daemon.
func (g *ListGuide) Start(sys *core.System) {
	g.sys = sys
	sys.Eng.GoDaemon("guide.list-chaser", g.chaser)
}

// OnFault implements core.Guide. The list guide drives purely off OnVisit
// hooks, so faults need no special handling here.
func (g *ListGuide) OnFault(coreID int, vpn pagetable.VPN) {}

// OnVisit is the hooking-interface entry point: the (loader-injected)
// trampoline in the traversal code reports each node the application
// reaches. p is the application's process.
func (g *ListGuide) OnVisit(p *sim.Proc, nodeAddr uint64) {
	g.cursor = nodeAddr
	if !g.active {
		g.active = true
		g.chase = nodeAddr
		g.behindBy = 0
	} else if g.behindBy > 0 {
		g.behindBy-- // the application consumed one node of runway
	}
	g.work.Wake(p.Now())
}

// EndTraversal tells the guide the application left the list.
func (g *ListGuide) EndTraversal(p *sim.Proc) {
	g.active = false
	g.work.Wake(p.Now())
}

// chaser runs in its own (sim) thread: it keeps Depth nodes of runway
// between the application's cursor and the furthest prefetched node.
func (g *ListGuide) chaser(p *sim.Proc) {
	buf := make([]byte, g.HeaderBytes)
	for {
		if !g.active || g.chase == 0 || g.behindBy >= g.Depth {
			g.work.Wait(p)
			continue
		}
		node := g.chase
		var next uint64
		if int(node&(core.PageSize-1))+g.HeaderBytes > core.PageSize {
			// Header straddles a page: read just the 8-byte next pointer.
			var ptr [8]byte
			if err := g.sys.ReadRemote(p, g.coreID, node+g.NextOff, ptr[:]); err != nil {
				g.active = false
				continue
			}
			next = binary.LittleEndian.Uint64(ptr[:])
		} else {
			if err := g.sys.ReadRemote(p, g.coreID, node, buf); err != nil {
				g.active = false
				continue
			}
			next = binary.LittleEndian.Uint64(buf[g.NextOff : g.NextOff+8])
		}
		g.SubpageReads++
		g.advance(p, next)
	}
}

// advance prefetches the page holding `next` and moves the chase cursor.
func (g *ListGuide) advance(p *sim.Proc, next uint64) {
	if next == 0 {
		g.chase = 0
		return
	}
	g.sys.SchedulePrefetch(p, g.coreID, []pagetable.VPN{pagetable.VPNOf(next)})
	g.Prefetched++
	g.chase = next
	g.behindBy++
}
