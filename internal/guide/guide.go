// Package guide defines DiLOS' app-aware guide surface (§4.3, Figure 5)
// and implements the canonical pointer-chasing ListGuide. Guides are
// pluggable modules, loaded beside an unmodified application, that feed
// application semantics to the paging subsystem: during a linked-list
// traversal a general-purpose prefetcher is useless (the next page is
// data-dependent), but the guide can issue a *subpage* read for just the
// node header on its own queue — the 64 B arrive well before the 4 KiB
// page — extract the next pointer, and prefetch the next node's page ahead
// of the application.
//
// The package owns the two interfaces of the guide contract and depends on
// nothing above the page table, so guide implementations (this package's
// ListGuide, internal/redis's AppGuide, internal/kvcache's Guide) never
// import the kernel:
//
//   - Guide is what an app-aware module implements. It registers with
//     core.System.AttachGuide before Start; the system calls Start once at
//     boot and OnFault from inside the fault handler's fetch window.
//   - Host is what the system provides back: daemon spawning, subpage
//     reads on the guide queue, and typed prefetch requests. core.System
//     implements it.
//
// Redis-specific guides (quicklist LRANGE, SDS GET) build on the same
// machinery and live in internal/redis, compiled "with the application"
// as the paper does; the KV-cache layerwise guide lives in
// internal/kvcache.
package guide

import (
	"encoding/binary"

	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// Guide is an app-aware pluggable module (§4.1): compiled alongside the
// application, it refines fault handling and prefetching without touching
// the application's main code. OnFault runs inside the fault handler's
// fetch window and must not block; long-running guide work (subpage reads,
// pointer chasing) belongs in a daemon the guide spawns in Start.
type Guide interface {
	Name() string
	Start(h Host)
	OnFault(coreID int, vpn pagetable.VPN)
}

// Request is a typed prefetch request. Exactly one of the two forms is
// used: an explicit page list (Pages non-empty), or a byte range
// [Addr, Addr+Bytes) that the host expands to the pages it covers. A
// zero-byte range is a no-op.
type Request struct {
	Pages []pagetable.VPN
	Addr  uint64
	Bytes uint64
}

// VPNs expands the request into its page list. The byte-range form
// appends into dst (callers on hot paths reuse it as scratch).
func (r Request) VPNs(dst []pagetable.VPN) []pagetable.VPN {
	if len(r.Pages) > 0 {
		return append(dst, r.Pages...)
	}
	if r.Bytes == 0 {
		return dst
	}
	first := pagetable.VPNOf(r.Addr)
	last := pagetable.VPNOf(r.Addr + r.Bytes - 1)
	for v := first; v <= last; v++ {
		dst = append(dst, v)
	}
	return dst
}

// Host is the system surface a guide programs against, implemented by
// core.System. ReadRemote is the §4.5 subpage read on the guide's own
// queue pair; Prefetch wraps the prefetcher's issue path (the same one
// runPrefetch feeds), filtering pages that are already local or in flight.
type Host interface {
	// GoDaemon spawns a guide daemon on the simulation engine.
	GoDaemon(name string, fn func(p *sim.Proc))
	// ReadRemote reads addr..addr+len(buf) (within one page) coherently:
	// from the local frame when resident, via a subpage fetch otherwise.
	ReadRemote(p *sim.Proc, coreID int, addr uint64, buf []byte) error
	// Prefetch issues asynchronous page fetches for the request's pages
	// that are still remote; the per-core prefetch mapper installs them as
	// they complete.
	Prefetch(p *sim.Proc, coreID int, req Request)
}

// ListGuide prefetches along a pointer chain. The application (through the
// loader's hooking interface) reports the node it is visiting with
// OnVisit; the guide's chaser daemon runs ahead by Depth nodes, reading
// each node header with a subpage fetch and prefetching the page the next
// node lives on.
type ListGuide struct {
	// NextOff is the byte offset of the 8-byte next pointer in a node.
	NextOff uint64
	// HeaderBytes is how much of the node the subpage read fetches.
	HeaderBytes int
	// Depth is how many nodes ahead of the application to chase.
	Depth int

	host   Host
	coreID int

	cursor   uint64 // node the application is visiting
	chase    uint64 // node the chaser will inspect next
	behindBy int
	active   bool
	work     sim.Waiter

	SubpageReads int64
	Prefetched   int64
}

// NewListGuide creates a guide for nodes whose next pointer lives at
// nextOff. Depth ≤ 0 selects the default of 8.
func NewListGuide(nextOff uint64, depth int) *ListGuide {
	if depth <= 0 {
		depth = 8
	}
	hdr := 64
	if int(nextOff)+8 > hdr {
		hdr = int(nextOff) + 8
	}
	return &ListGuide{NextOff: nextOff, HeaderBytes: hdr, Depth: depth}
}

// Name implements Guide.
func (g *ListGuide) Name() string { return "list-guide" }

// Start implements Guide: it spawns the chaser daemon.
func (g *ListGuide) Start(h Host) {
	g.host = h
	h.GoDaemon("guide.list-chaser", g.chaser)
}

// OnFault implements Guide. The list guide drives purely off OnVisit
// hooks, so faults need no special handling here.
func (g *ListGuide) OnFault(coreID int, vpn pagetable.VPN) {}

// OnVisit is the hooking-interface entry point: the (loader-injected)
// trampoline in the traversal code reports each node the application
// reaches. p is the application's process.
func (g *ListGuide) OnVisit(p *sim.Proc, nodeAddr uint64) {
	g.cursor = nodeAddr
	if !g.active {
		g.active = true
		g.chase = nodeAddr
		g.behindBy = 0
	} else if g.behindBy > 0 {
		g.behindBy-- // the application consumed one node of runway
	}
	g.work.Wake(p.Now())
}

// EndTraversal tells the guide the application left the list.
func (g *ListGuide) EndTraversal(p *sim.Proc) {
	g.active = false
	g.work.Wake(p.Now())
}

// chaser runs in its own (sim) thread: it keeps Depth nodes of runway
// between the application's cursor and the furthest prefetched node.
func (g *ListGuide) chaser(p *sim.Proc) {
	buf := make([]byte, g.HeaderBytes)
	for {
		if !g.active || g.chase == 0 || g.behindBy >= g.Depth {
			g.work.Wait(p)
			continue
		}
		node := g.chase
		var next uint64
		if int(node&(pagetable.PageSize-1))+g.HeaderBytes > pagetable.PageSize {
			// Header straddles a page: read just the 8-byte next pointer.
			var ptr [8]byte
			if err := g.host.ReadRemote(p, g.coreID, node+g.NextOff, ptr[:]); err != nil {
				g.active = false
				continue
			}
			next = binary.LittleEndian.Uint64(ptr[:])
		} else {
			if err := g.host.ReadRemote(p, g.coreID, node, buf); err != nil {
				g.active = false
				continue
			}
			next = binary.LittleEndian.Uint64(buf[g.NextOff : g.NextOff+8])
		}
		g.SubpageReads++
		g.advance(p, next)
	}
}

// advance prefetches the page holding `next` and moves the chase cursor.
func (g *ListGuide) advance(p *sim.Proc, next uint64) {
	if next == 0 {
		g.chase = 0
		return
	}
	g.host.Prefetch(p, g.coreID, Request{Pages: []pagetable.VPN{pagetable.VPNOf(next)}})
	g.Prefetched++
	g.chase = next
	g.behindBy++
}
