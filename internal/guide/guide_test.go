package guide_test

import (
	"math/rand"
	"testing"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/guide"
	"dilos/internal/sim"
)

// buildList lays a linked list across `n` pages of DDC memory, one node
// per page, in shuffled page order (so readahead/trend prefetchers are
// useless — the Figure 5 scenario). Node layout: [0..8) next pointer,
// [8..16) value. Returns the head address.
func buildList(sys *core.System, sp *core.DDCProc, n int, seed int64) uint64 {
	base, err := sys.MmapDDC(uint64(n))
	if err != nil {
		panic(err)
	}
	order := rand.New(rand.NewSource(seed)).Perm(n)
	addrs := make([]uint64, n)
	for i, pg := range order {
		addrs[i] = base + uint64(pg)*core.PageSize
	}
	for i := 0; i < n; i++ {
		next := uint64(0)
		if i+1 < n {
			next = addrs[i+1]
		}
		sp.StoreU64(addrs[i], next)
		sp.StoreU64(addrs[i]+8, uint64(i))
	}
	return addrs[0]
}

// traverse walks the list summing values, reporting each visit to the
// guide (the loader-injected hook).
func traverse(sp *core.DDCProc, g *guide.ListGuide, head uint64) uint64 {
	var sum uint64
	for node := head; node != 0; {
		if g != nil {
			g.OnVisit(sp.Proc(), node)
		}
		sum += sp.LoadU64(node + 8)
		node = sp.LoadU64(node)
	}
	if g != nil {
		g.EndTraversal(sp.Proc())
	}
	return sum
}

func runTraversal(t *testing.T, n int, g *guide.ListGuide) (elapsed sim.Time, majors int64, sum uint64) {
	t.Helper()
	eng := sim.New()
	cfg := core.Config{
		CacheFrames: n / 4, // 25% local: every node page is remote when revisited
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
	}
	sys := core.New(eng, cfg)
	if g != nil {
		sys.AttachGuide(g)
	}
	sys.Start()
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		head := buildList(sys, sp, n, 42)
		// Flush the cache by building; the list no longer fits, so the
		// traversal sees remote nodes.
		m0 := sys.MajorFaults.N
		t0 := sp.Now()
		sum = traverse(sp, g, head)
		elapsed = sp.Now() - t0
		majors = sys.MajorFaults.N - m0
	})
	eng.Run()
	return elapsed, majors, sum
}

func TestListGuideCorrectTraversal(t *testing.T) {
	const n = 512
	want := uint64(n) * uint64(n-1) / 2
	_, _, sum := runTraversal(t, n, guide.NewListGuide(0, 8))
	if sum != want {
		t.Fatalf("sum = %d, want %d (guide corrupted the traversal)", sum, want)
	}
}

func TestListGuideBeatsNoPrefetch(t *testing.T) {
	const n = 512
	base, baseMajors, _ := runTraversal(t, n, nil)
	guided, guidedMajors, _ := runTraversal(t, n, guide.NewListGuide(0, 8))
	if guidedMajors >= baseMajors {
		t.Fatalf("guide did not reduce majors: %d vs %d", guidedMajors, baseMajors)
	}
	// The paper's app-aware prefetcher wins ~60% on pointer-chasing; ask
	// for at least a 25% completion-time cut here.
	if guided*4 > base*3 {
		t.Fatalf("guide too weak: guided=%v base=%v", guided, base)
	}
}

func TestListGuideSubpageTraffic(t *testing.T) {
	g := guide.NewListGuide(0, 8)
	runTraversal(t, 256, g)
	if g.SubpageReads == 0 || g.Prefetched == 0 {
		t.Fatalf("guide idle: subpage=%d prefetched=%d", g.SubpageReads, g.Prefetched)
	}
}

func TestListGuideHeaderClamp(t *testing.T) {
	g := guide.NewListGuide(120, 4)
	if g.HeaderBytes < 128 {
		t.Fatalf("header bytes %d too small for next pointer at 120", g.HeaderBytes)
	}
}
