// Package prefetch implements DiLOS' page prefetcher (§4.3): a pluggable
// Prefetcher interface with the two general-purpose policies the paper
// ships — Linux-style readahead and Leap's majority-trend prefetcher — plus
// the PTE hit tracker. Because DiLOS maps prefetched pages directly into
// the unified page table (no swap cache), prefetch-hit statistics cannot
// come from minor faults; the hit tracker instead scans the accessed bits
// of previously prefetched PTEs. Prefetch selection and hit tracking run
// inside the fault handler while it waits for the 4 KiB fetch, so their
// cost hides in the RDMA window.
package prefetch

import (
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// Context is the information DiLOS supplies to a prefetcher on each fault
// (fault address, hit ratio, and access history — §4.3).
type Context struct {
	VPN      pagetable.VPN
	Major    bool    // major fault (remote) vs minor (in-flight)
	HitRatio float64 // EWMA prefetch hit ratio from the PTE hit tracker
	History  []int64 // recent inter-fault VPN deltas, oldest first
}

// Prefetcher proposes pages to fetch ahead of demand. The system filters
// out pages that are not currently Remote, so proposals are cheap to make.
type Prefetcher interface {
	Name() string
	OnFault(ctx Context) []pagetable.VPN
}

// Windowed is implemented by prefetchers whose current issue window is
// observable — the telemetry sampler exports it as the prefetch-window
// gauge. Trend and Leap adapt their windows and implement it; Readahead's
// fixed window is the exported Window field (which makes a method of the
// same name impossible), so samplers special-case it.
type Windowed interface {
	Window() int
}

var (
	_ Windowed = (*Trend)(nil)
	_ Windowed = (*Leap)(nil)
)

// History is a bounded ring of inter-fault VPN deltas.
type History struct {
	deltas []int64
	size   int
	last   pagetable.VPN
	primed bool
}

// NewHistory creates a history holding up to size deltas.
func NewHistory(size int) *History { return &History{size: size} }

// Note records a fault VPN; the delta from the previous fault enters the
// ring.
func (h *History) Note(v pagetable.VPN) {
	if h.primed {
		d := int64(v) - int64(h.last)
		h.deltas = append(h.deltas, d)
		if len(h.deltas) > h.size {
			copy(h.deltas, h.deltas[1:])
			h.deltas = h.deltas[:h.size]
		}
	}
	h.last = v
	h.primed = true
}

// Deltas returns the recorded deltas, oldest first (shared; do not mutate).
func (h *History) Deltas() []int64 { return h.deltas }

// Readahead is the Linux swap readahead policy [28]: on a major fault it
// reads the rest of the 8-page cluster around the faulted page, following
// the current stream direction. With the default cluster of 8 (window = 7
// prefetched pages per major), a sequential scan majors on exactly every
// 8th page — the 12.5 % major share of Tables 1 and 3.
type Readahead struct {
	Window int // pages prefetched per major fault (cluster − 1)
	dir    int64
	last   pagetable.VPN
	primed bool
}

// NewReadahead creates a readahead prefetcher with the given window
// (0 means the default cluster of 8, i.e. window 7).
func NewReadahead(window int) *Readahead {
	if window <= 0 {
		window = 7
	}
	return &Readahead{Window: window, dir: 1}
}

// Name implements Prefetcher.
func (r *Readahead) Name() string { return "readahead" }

// OnFault implements Prefetcher. Like Linux's swap readahead it acts only
// on major faults; minor faults (in-flight pages) are the cluster filling
// in. The window backs off when the PTE hit tracker reports the stream is
// not actually sequential (random workloads like betweenness centrality or
// Redis GET would otherwise evict hot pages with speculative garbage) and
// recovers when hits return — the DiLOS replacement for the swap cache's
// readahead statistics (§4.3).
func (r *Readahead) OnFault(ctx Context) []pagetable.VPN {
	if !ctx.Major {
		return nil
	}
	if r.primed {
		switch {
		case ctx.VPN > r.last:
			r.dir = 1
		case ctx.VPN < r.last:
			r.dir = -1
		}
	}
	r.last = ctx.VPN
	r.primed = true
	window := r.Window
	switch {
	case ctx.HitRatio > 0 && ctx.HitRatio < 0.05:
		window = 1
	case ctx.HitRatio > 0 && ctx.HitRatio < 0.15:
		window = max(2, r.Window/4)
	}
	out := make([]pagetable.VPN, 0, window)
	for k := int64(1); k <= int64(window); k++ {
		next := int64(ctx.VPN) + r.dir*k
		if next < 0 {
			break
		}
		out = append(out, pagetable.VPN(next))
	}
	return out
}

// Trend is Leap's majority-trend prefetcher [49]: it finds the majority
// stride in the recent access history (Boyer–Moore majority vote) and
// prefetches along it with a window that adapts to the measured hit ratio.
type Trend struct {
	MinWindow int
	MaxWindow int
	window    int
}

// NewTrend creates a trend prefetcher with Leap's defaults.
func NewTrend() *Trend {
	return &Trend{MinWindow: 4, MaxWindow: 32, window: 8}
}

// Name implements Prefetcher.
func (t *Trend) Name() string { return "trend-based" }

// Window exposes the current adaptive window (for tests).
func (t *Trend) Window() int { return t.window }

// OnFault implements Prefetcher.
func (t *Trend) OnFault(ctx Context) []pagetable.VPN {
	// Adapt the window to the hit ratio (grow aggressively on success,
	// back off when prefetches go unused — Leap §4.2's spirit).
	switch {
	case ctx.HitRatio >= 0.5 && ctx.Major:
		t.window = min(t.window*2, t.MaxWindow)
	case ctx.HitRatio < 0.2 && ctx.HitRatio > 0 && ctx.Major:
		t.window = max(t.window/2, t.MinWindow)
	}
	stride, ok := majority(ctx.History)
	if !ok || stride == 0 {
		// No trend: fall back to the last observed delta, like Leap's
		// degenerate sequential mode.
		if n := len(ctx.History); n > 0 && ctx.History[n-1] != 0 {
			stride = ctx.History[n-1]
		} else {
			stride = 1
		}
	}
	out := make([]pagetable.VPN, 0, t.window)
	for k := int64(1); k <= int64(t.window); k++ {
		next := int64(ctx.VPN) + stride*k
		if next < 0 {
			break
		}
		out = append(out, pagetable.VPN(next))
	}
	return out
}

// majority returns the Boyer–Moore majority element of xs if it truly
// occupies more than half the window.
func majority(xs []int64) (int64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	cand, count := xs[0], 0
	for _, x := range xs {
		if count == 0 {
			cand = x
		}
		if x == cand {
			count++
		} else {
			count--
		}
	}
	n := 0
	for _, x := range xs {
		if x == cand {
			n++
		}
	}
	if n*2 > len(xs) {
		return cand, true
	}
	return 0, false
}

// None is the no-prefetch policy.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "no-prefetch" }

// OnFault implements Prefetcher.
func (None) OnFault(Context) []pagetable.VPN { return nil }

// HitTracker replaces the swap cache's minor-fault statistics: it remembers
// which pages were prefetched and, on the next scan (run inside the fault
// handler's fetch window), inspects their PTE accessed bits to estimate the
// prefetch hit ratio.
type HitTracker struct {
	// PerPTECost is the CPU cost of inspecting one PTE during a scan.
	PerPTECost sim.Time
	// ScanBatch bounds how many pending pages one scan inspects.
	ScanBatch int

	pending []pendingPage
	ratio   float64
	scanned int64
	hits    int64
}

// pendingPage is one prefetched page awaiting a verdict. age counts the
// scans that found it arrived but untouched.
type pendingPage struct {
	vpn pagetable.VPN
	age uint8
}

// untouchedGrace is how many scans a prefetched page may sit local but
// untouched before it is settled as a miss. One scan of grace is not
// enough: batched submission completes the window early, so its tail is
// routinely local-untouched on the first scan while the stream is still
// marching toward it. Several scans of grace keeps sequential ratios
// honest in both submission modes while random access — whose speculative
// pages never get touched — still converges to a miss verdict within a
// few faults, before useless prefetching can evict much of the hot set.
const untouchedGrace = 3

// NewHitTracker creates a tracker with testbed-calibrated scan costs.
func NewHitTracker() *HitTracker {
	return &HitTracker{PerPTECost: 4 * sim.Nanosecond, ScanBatch: 64}
}

// Note records pages just handed to the prefetch engine.
func (t *HitTracker) Note(vpns []pagetable.VPN) {
	for _, v := range vpns {
		if len(t.pending) >= 1024 {
			break // bound memory; oldest entries will be scanned first
		}
		t.pending = append(t.pending, pendingPage{vpn: v})
	}
}

// Ratio returns the EWMA prefetch hit ratio.
func (t *HitTracker) Ratio() float64 { return t.ratio }

// Stats returns lifetime (scanned, hit) counts.
func (t *HitTracker) Stats() (scanned, hits int64) { return t.scanned, t.hits }

// Scan inspects up to ScanBatch pending prefetched PTEs and settles the
// ones whose fate is decided: local+accessed is a hit (the prefetch was
// consumed); evicted or reverted before any access (Remote/Action) is a
// miss (the fetch was wasted); a page that sits local but untouched for
// untouchedGrace scans is a miss too (the stream never came). Pages still
// in flight stay pending without aging — batched submission completes
// window tails early, and counting time spent merely *arrived-early* as
// evidence of a miss would punish prefetches for completing sooner and
// collapse adaptive windows exactly when they are working. Returns the
// CPU cost, which the fault handler charges inside the fetch window.
func (t *HitTracker) Scan(tbl *pagetable.Table) sim.Time {
	n := len(t.pending)
	if n > t.ScanBatch {
		n = t.ScanBatch
	}
	if n == 0 {
		return 0
	}
	var hits, total int
	keep := t.pending[:0]
	for i, pp := range t.pending {
		if i >= n {
			keep = append(keep, pp)
			continue
		}
		pte := tbl.Lookup(pp.vpn)
		switch pte.Tag() {
		case pagetable.TagLocal:
			if pte.Accessed() {
				total++
				hits++
			} else if pp.age++; pp.age >= untouchedGrace {
				total++ // arrived long ago, never touched: miss
			} else {
				keep = append(keep, pp) // arrived, not yet reached
			}
		case pagetable.TagFetching:
			keep = append(keep, pp) // still in flight
		default:
			// Evicted (Remote/Action) before use, or unmapped: miss.
			total++
		}
	}
	t.pending = keep
	if total > 0 {
		batch := float64(hits) / float64(total)
		t.ratio = 0.8*t.ratio + 0.2*batch
		t.scanned += int64(total)
		t.hits += int64(hits)
	}
	return sim.Time(n) * t.PerPTECost
}

// Leap is a faithful implementation of Leap's majority-trend prefetcher
// (Maruf & Chowdhury, ATC '20) — the Trend type above is the simplified
// variant DiLOS' harness uses by default; this one follows the published
// algorithm:
//
//   - trend detection over a *shrinking-then-growing* split of the access
//     history: start from the most recent H/2 deltas and expand toward the
//     full window until a majority stride emerges (recent behaviour is
//     favoured, old noise cannot drown a new stream);
//   - the prefetch window is sized from recent prefetch *consumption*:
//     PWS_t = min(MaxWindow, 2^ceil(log2(used_t−1 + 1))), never below
//     what the current trend run already justified, and decayed by halves
//     when prefetched pages go unused.
type Leap struct {
	HistorySize int
	MaxWindow   int

	window   int
	lastUsed int
}

// NewLeap creates a Leap prefetcher with the paper's defaults (history 32,
// max window 32).
func NewLeap() *Leap {
	return &Leap{HistorySize: 32, MaxWindow: 32, window: 1}
}

// Name implements Prefetcher.
func (l *Leap) Name() string { return "leap" }

// Window exposes the current window (for tests).
func (l *Leap) Window() int { return l.window }

// OnFault implements Prefetcher.
func (l *Leap) OnFault(ctx Context) []pagetable.VPN {
	if !ctx.Major {
		return nil
	}
	// Consumption-based window sizing: HitRatio approximates the share of
	// the previous window that was consumed.
	used := int(float64(l.window)*ctx.HitRatio + 0.5)
	switch {
	case used > l.lastUsed:
		l.window = nextPow2(used + 1)
	case used < l.lastUsed/2:
		l.window /= 2
	}
	if l.window < 1 {
		l.window = 1
	}
	if l.window > l.MaxWindow {
		l.window = l.MaxWindow
	}
	l.lastUsed = used

	stride, ok := l.trend(ctx.History)
	if !ok {
		// No trend at any split: Leap falls back to reading just the
		// faulted page (window collapses to nothing speculative).
		return nil
	}
	out := make([]pagetable.VPN, 0, l.window)
	for k := int64(1); k <= int64(l.window); k++ {
		next := int64(ctx.VPN) + stride*k
		if next < 0 {
			break
		}
		out = append(out, pagetable.VPN(next))
	}
	return out
}

// trend searches for a majority stride, preferring recent history: it
// tests the most recent half of the deltas first and doubles the span
// until a majority appears or the full history is exhausted.
func (l *Leap) trend(history []int64) (int64, bool) {
	n := len(history)
	if n == 0 {
		return 0, false
	}
	for span := (n + 1) / 2; ; span *= 2 {
		if span > n {
			span = n
		}
		if d, ok := majority(history[n-span:]); ok && d != 0 {
			return d, true
		}
		if span == n {
			return 0, false
		}
	}
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}
