package prefetch

import (
	"testing"
	"testing/quick"

	"dilos/internal/pagetable"
)

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	for _, v := range []pagetable.VPN{10, 11, 12, 14, 10} {
		h.Note(v)
	}
	d := h.Deltas()
	want := []int64{1, 2, -4}
	if len(d) != 3 {
		t.Fatalf("deltas = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", d, want)
		}
	}
}

func TestReadaheadForward(t *testing.T) {
	r := NewReadahead(8)
	out := r.OnFault(Context{VPN: 100, Major: true})
	if len(out) != 8 || out[0] != 101 || out[7] != 108 {
		t.Fatalf("out = %v", out)
	}
}

func TestReadaheadDirectionFlip(t *testing.T) {
	r := NewReadahead(4)
	r.OnFault(Context{VPN: 100, Major: true})
	out := r.OnFault(Context{VPN: 90, Major: true}) // moving backwards
	if out[0] != 89 || out[3] != 86 {
		t.Fatalf("out = %v", out)
	}
	out = r.OnFault(Context{VPN: 95, Major: true}) // forwards again
	if out[0] != 96 {
		t.Fatalf("out = %v", out)
	}
}

func TestReadaheadClampsAtZero(t *testing.T) {
	r := NewReadahead(8)
	r.OnFault(Context{VPN: 100, Major: true})
	out := r.OnFault(Context{VPN: 3, Major: true}) // backwards near zero
	for _, v := range out {
		if int64(v) < 0 {
			t.Fatalf("negative VPN proposed: %v", out)
		}
	}
	if len(out) != 3 {
		t.Fatalf("out = %v, want [2 1 0]", out)
	}
}

func TestTrendDetectsStride(t *testing.T) {
	tr := NewTrend()
	hist := []int64{16, 16, 16, 16, 16, 1, 16, 16}
	out := tr.OnFault(Context{VPN: 1000, Major: true, History: hist})
	if len(out) == 0 || out[0] != 1016 || out[1] != 1032 {
		t.Fatalf("out = %v", out)
	}
}

func TestTrendFallsBackToLastDelta(t *testing.T) {
	tr := NewTrend()
	hist := []int64{3, -5, 7, 2, -1, 4, 9, -2} // no majority
	out := tr.OnFault(Context{VPN: 1000, Major: true, History: hist})
	if len(out) == 0 || out[0] != pagetable.VPN(1000-2) {
		t.Fatalf("out = %v", out)
	}
}

func TestTrendWindowAdapts(t *testing.T) {
	tr := NewTrend()
	w0 := tr.Window()
	tr.OnFault(Context{VPN: 1, Major: true, HitRatio: 0.9, History: []int64{1, 1, 1}})
	if tr.Window() <= w0 {
		t.Fatalf("window did not grow: %d", tr.Window())
	}
	for i := 0; i < 10; i++ {
		tr.OnFault(Context{VPN: 1, Major: true, HitRatio: 0.05, History: []int64{1, 1, 1}})
	}
	if tr.Window() != tr.MinWindow {
		t.Fatalf("window did not shrink to floor: %d", tr.Window())
	}
}

func TestNonePrefetcher(t *testing.T) {
	if out := (None{}).OnFault(Context{VPN: 5}); out != nil {
		t.Fatalf("None proposed %v", out)
	}
}

// Property: majority() agrees with a brute-force count.
func TestQuickMajority(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]int64, len(raw))
		counts := map[int64]int{}
		for i, r := range raw {
			xs[i] = int64(r % 3) // small domain to make majorities common
			counts[xs[i]]++
		}
		got, ok := majority(xs)
		var want int64
		var wantOK bool
		for v, n := range counts {
			if n*2 > len(xs) {
				want, wantOK = v, true
			}
		}
		if ok != wantOK {
			return false
		}
		return !ok || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHitTrackerCountsAccessedBits(t *testing.T) {
	tbl := pagetable.New()
	ht := NewHitTracker()
	// Three prefetched pages: one consumed, one arrived-but-unreached
	// (stays pending — no verdict yet), one evicted before use (miss).
	tbl.Set(1, pagetable.Local(11, true)|pagetable.BitAccessed)
	tbl.Set(2, pagetable.Local(12, true))
	tbl.Set(3, pagetable.Remote(33))
	ht.Note([]pagetable.VPN{1, 2, 3})
	cost := ht.Scan(tbl)
	if cost != 3*ht.PerPTECost {
		t.Fatalf("cost = %v", cost)
	}
	scanned, hits := ht.Stats()
	if scanned != 2 || hits != 1 {
		t.Fatalf("scanned=%d hits=%d", scanned, hits)
	}
	if r := ht.Ratio(); r < 0.09 || r > 0.11 { // 0.2 * 1/2
		t.Fatalf("ratio = %v", r)
	}
	// The untouched page is settled as a hit once the stream reaches it.
	tbl.Set(2, pagetable.Local(12, true)|pagetable.BitAccessed)
	ht.Scan(tbl)
	if s, h := ht.Stats(); s != 3 || h != 2 {
		t.Fatalf("after touch: scanned=%d hits=%d", s, h)
	}
}

func TestHitTrackerDefersInFlight(t *testing.T) {
	tbl := pagetable.New()
	ht := NewHitTracker()
	tbl.Set(5, pagetable.Fetching(0))
	ht.Note([]pagetable.VPN{5})
	ht.Scan(tbl)
	ht.Scan(tbl) // in flight: pending forever, never a verdict
	if s, _ := ht.Stats(); s != 0 {
		t.Fatalf("scanned = %d, want 0 (in flight)", s)
	}
	// Reverted before completion (eviction raced the fetch): miss.
	tbl.Set(5, pagetable.Remote(55))
	ht.Scan(tbl)
	s, h := ht.Stats()
	if s != 1 || h != 0 {
		t.Fatalf("scanned=%d hits=%d", s, h)
	}
}

func TestHitTrackerAgesUntouchedPages(t *testing.T) {
	tbl := pagetable.New()
	ht := NewHitTracker()
	// A speculative fetch on a random-access pattern: the page arrives and
	// sits local but is never touched. It must converge to a miss within
	// untouchedGrace scans — before useless prefetching can evict much —
	// rather than stay pending until eviction.
	tbl.Set(9, pagetable.Local(19, true))
	ht.Note([]pagetable.VPN{9})
	for i := 0; i < untouchedGrace-1; i++ {
		ht.Scan(tbl)
		if s, _ := ht.Stats(); s != 0 {
			t.Fatalf("scan %d: settled too early (scanned=%d)", i, s)
		}
	}
	ht.Scan(tbl)
	if s, h := ht.Stats(); s != 1 || h != 0 {
		t.Fatalf("scanned=%d hits=%d, want miss after grace", s, h)
	}
}

func TestHitTrackerBatchBound(t *testing.T) {
	tbl := pagetable.New()
	ht := NewHitTracker()
	ht.ScanBatch = 4
	var vpns []pagetable.VPN
	for v := pagetable.VPN(0); v < 10; v++ {
		tbl.Set(v, pagetable.Local(uint64(v), true)|pagetable.BitAccessed)
		vpns = append(vpns, v)
	}
	ht.Note(vpns)
	ht.Scan(tbl)
	if s, _ := ht.Stats(); s != 4 {
		t.Fatalf("scanned = %d, want 4", s)
	}
	ht.Scan(tbl)
	if s, _ := ht.Stats(); s != 8 {
		t.Fatalf("scanned = %d, want 8", s)
	}
}

func TestReadaheadBacksOffOnMisses(t *testing.T) {
	r := NewReadahead(0)
	full := r.OnFault(Context{VPN: 100, Major: true, HitRatio: 0.5})
	if len(full) != 7 {
		t.Fatalf("full window = %d", len(full))
	}
	tiny := r.OnFault(Context{VPN: 200, Major: true, HitRatio: 0.01})
	if len(tiny) != 1 {
		t.Fatalf("random-pattern window = %d, want 1", len(tiny))
	}
	mid := r.OnFault(Context{VPN: 300, Major: true, HitRatio: 0.10})
	if len(mid) < 2 || len(mid) >= 7 {
		t.Fatalf("mid window = %d", len(mid))
	}
	back := r.OnFault(Context{VPN: 400, Major: true, HitRatio: 0.6})
	if len(back) != 7 {
		t.Fatalf("window did not recover: %d", len(back))
	}
}

func TestLeapRecentTrendWins(t *testing.T) {
	l := NewLeap()
	// Old history says stride 1, recent history says stride 16: the
	// recent half must win even though stride 1 has more total votes.
	hist := []int64{1, 1, 1, 1, 1, 1, 1, 1, 16, 16, 16, 16, 16, 16}
	out := l.OnFault(Context{VPN: 1000, Major: true, History: hist, HitRatio: 0.9})
	if len(out) == 0 || out[0] != 1016 {
		t.Fatalf("out = %v", out)
	}
}

func TestLeapNoTrendMeansNoSpeculation(t *testing.T) {
	l := NewLeap()
	hist := []int64{5, -3, 11, 2, -9, 7, 1, -4, 13, -2, 8, -6}
	if out := l.OnFault(Context{VPN: 1000, Major: true, History: hist}); out != nil {
		t.Fatalf("no-trend fault prefetched %v", out)
	}
}

func TestLeapWindowGrowsWithConsumption(t *testing.T) {
	l := NewLeap()
	hist := []int64{1, 1, 1, 1, 1, 1}
	w0 := l.Window()
	for i := 0; i < 5; i++ {
		l.OnFault(Context{VPN: pagetable.VPN(100 + i), Major: true, History: hist, HitRatio: 1.0})
	}
	if l.Window() <= w0 {
		t.Fatalf("window did not grow: %d", l.Window())
	}
	grown := l.Window()
	for i := 0; i < 6; i++ {
		l.OnFault(Context{VPN: pagetable.VPN(500 + i), Major: true, History: hist, HitRatio: 0.0})
	}
	if l.Window() >= grown {
		t.Fatalf("window did not decay: %d", l.Window())
	}
}

func TestLeapCapsAtMaxWindow(t *testing.T) {
	l := NewLeap()
	hist := []int64{1, 1, 1, 1}
	for i := 0; i < 20; i++ {
		l.OnFault(Context{VPN: pagetable.VPN(i), Major: true, History: hist, HitRatio: 1.0})
	}
	if l.Window() > l.MaxWindow {
		t.Fatalf("window %d exceeds cap %d", l.Window(), l.MaxWindow)
	}
}
