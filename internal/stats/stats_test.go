package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dilos/internal/sim"
)

func TestCounter(t *testing.T) {
	c := Counter{Name: "faults"}
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Fatalf("N = %d, want 5", c.N)
	}
	if c.String() != "faults=5" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.P50() != 50 {
		t.Fatalf("p50 = %v", h.P50())
	}
	if h.P99() != 99 {
		t.Fatalf("p99 = %v", h.P99())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Mean() != 0 || h.P99() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	h := NewHistogram("lat")
	h.Record(10)
	_ = h.P50()
	h.Record(1) // must re-sort
	if h.P50() != 1 {
		t.Fatalf("p50 = %v, want 1", h.P50())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram("lat")
	h.Record(10)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: percentile matches a reference nearest-rank implementation.
func TestQuickPercentile(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := 1 + float64(pRaw%100)
		h := NewHistogram("q")
		ref := make([]sim.Time, len(raw))
		for i, r := range raw {
			h.Record(sim.Time(r))
			ref[i] = sim.Time(r)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		rank := int(float64(len(ref)) * p / 100)
		if float64(rank) < float64(len(ref))*p/100 {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > len(ref) {
			rank = len(ref)
		}
		return h.Percentile(p) == ref[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram("q")
	for i := 0; i < 1000; i++ {
		h.Record(sim.Time(rng.Intn(1 << 20)))
	}
	prev := sim.Time(0)
	for p := 1.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestBandwidthBuckets(t *testing.T) {
	b := NewBandwidth("net", 1000)
	b.Add(0, 100)
	b.Add(999, 50)
	b.Add(1000, 25)
	b.Add(5500, 10)
	bk := b.Buckets()
	if len(bk) != 6 {
		t.Fatalf("len(buckets) = %d, want 6", len(bk))
	}
	if bk[0] != 150 || bk[1] != 25 || bk[5] != 10 {
		t.Fatalf("buckets = %v", bk)
	}
	if b.Total() != 185 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestBandwidthSeries(t *testing.T) {
	b := NewBandwidth("net", sim.Second)
	b.Add(0, 2e9)
	pts := b.Series()
	if len(pts) != 1 || GBps(pts[0].BytesPerSec) != 2.0 {
		t.Fatalf("series = %v", pts)
	}
}

// Property: total equals the sum of buckets for arbitrary adds.
func TestQuickBandwidthConservation(t *testing.T) {
	f := func(samples []struct {
		At    uint16
		Bytes uint16
	}) bool {
		b := NewBandwidth("q", 64)
		for _, s := range samples {
			b.Add(sim.Time(s.At), int64(s.Bytes))
		}
		var sum int64
		for _, v := range b.Buckets() {
			sum += v
		}
		return sum == b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
