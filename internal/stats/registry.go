package stats

import (
	"fmt"
	"sort"
)

// Registry is the single observability surface of a System: every
// counter, histogram, and bandwidth series registers here at
// construction under its stable name (e.g. "dilos.major_faults"), and
// Snapshot() serialises all of them at once — so new experiments never
// hand-plumb stats again. Names must be unique; Register* panics on a
// duplicate, which catches wiring mistakes at boot rather than as
// silently shadowed metrics.
type Registry struct {
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	bandwidths []*Bandwidth
	names      map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) claim(kind, name string) {
	if name == "" {
		panic(fmt.Sprintf("stats: registering unnamed %s", kind))
	}
	if r.names[name] {
		panic(fmt.Sprintf("stats: duplicate metric name %q", name))
	}
	r.names[name] = true
}

// RegisterCounter adds a counter to the registry and returns it.
func (r *Registry) RegisterCounter(c *Counter) *Counter {
	r.claim("counter", c.Name)
	r.counters = append(r.counters, c)
	return c
}

// RegisterGauge adds a gauge to the registry and returns it.
func (r *Registry) RegisterGauge(g *Gauge) *Gauge {
	r.claim("gauge", g.Name)
	r.gauges = append(r.gauges, g)
	return g
}

// RegisterHistogram adds a histogram to the registry and returns it.
func (r *Registry) RegisterHistogram(h *Histogram) *Histogram {
	r.claim("histogram", h.Name)
	r.histograms = append(r.histograms, h)
	return h
}

// RegisterBandwidth adds a bandwidth series to the registry and returns it.
func (r *Registry) RegisterBandwidth(b *Bandwidth) *Bandwidth {
	r.claim("bandwidth", b.Name)
	r.bandwidths = append(r.bandwidths, b)
	return b
}

// Merge registers every metric of other into r. Use it to fold a
// subsystem's registry into its owner's.
func (r *Registry) Merge(other *Registry) {
	for _, c := range other.counters {
		r.RegisterCounter(c)
	}
	for _, g := range other.gauges {
		r.RegisterGauge(g)
	}
	for _, h := range other.histograms {
		r.RegisterHistogram(h)
	}
	for _, b := range other.bandwidths {
		r.RegisterBandwidth(b)
	}
}

// Snapshot captures the current value of every registered metric, sorted
// by name within each kind. The result is JSON-serialisable and
// detached from the live metrics.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.Name, N: c.N})
	}
	s.Gauges = r.GaugeSnaps()
	for _, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:   h.Name,
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			P50Ns:  int64(h.P50()),
			P99Ns:  int64(h.P99()),
			P999Ns: int64(h.P999()),
			MaxNs:  int64(h.Max()),
		})
	}
	for _, b := range r.bandwidths {
		bs := BandwidthSnap{Name: b.Name, Total: b.Total(), BucketNs: int64(b.Bucket)}
		for _, p := range b.Series() {
			bs.Series = append(bs.Series, BandwidthPointSnap{AtNs: int64(p.At), BytesPerSec: p.BytesPerSec})
		}
		s.Bandwidths = append(s.Bandwidths, bs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Bandwidths, func(i, j int) bool { return s.Bandwidths[i].Name < s.Bandwidths[j].Name })
	return s
}

// GaugeSnaps captures just the gauges, sorted by name. The telemetry
// sampler calls this once per tick: unlike a full Snapshot it never
// touches histograms, whose percentile computation sorts samples and is
// far too costly to run at sampling frequency.
func (r *Registry) GaugeSnaps() []GaugeSnap {
	if len(r.gauges) == 0 {
		return nil
	}
	gs := make([]GaugeSnap, len(r.gauges))
	for i, g := range r.gauges {
		gs[i] = GaugeSnap{Name: g.Name, Last: g.Last(), Min: g.Min(), Max: g.Max()}
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
	return gs
}

// Snapshot is a point-in-time copy of every metric in a Registry,
// shaped for JSON output (all durations in virtual nanoseconds).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	Bandwidths []BandwidthSnap `json:"bandwidths,omitempty"`
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name string `json:"name"`
	Last int64  `json:"last"`
	Min  int64  `json:"min"`
	Max  int64  `json:"max"`
}

// HistogramSnap is one histogram's snapshot.
type HistogramSnap struct {
	Name   string `json:"name"`
	Count  int    `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// BandwidthSnap is one bandwidth series' snapshot.
type BandwidthSnap struct {
	Name     string               `json:"name"`
	Total    int64                `json:"total_bytes"`
	BucketNs int64                `json:"bucket_ns"`
	Series   []BandwidthPointSnap `json:"series,omitempty"`
}

// BandwidthPointSnap is one point of a bandwidth series snapshot.
type BandwidthPointSnap struct {
	AtNs        int64   `json:"at_ns"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// Counter looks up a snapshotted counter by name (0, false if absent).
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.N, true
		}
	}
	return 0, false
}

// Gauge looks up a snapshotted gauge by name.
func (s Snapshot) Gauge(name string) (GaugeSnap, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

// Histogram looks up a snapshotted histogram by name.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}
