package stats

import (
	"encoding/json"
	"testing"

	"dilos/internal/sim"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.RegisterCounter(&Counter{Name: "sys.events"})
	h := r.RegisterHistogram(NewHistogram("sys.latency"))
	b := r.RegisterBandwidth(NewBandwidth("sys.rx", sim.Second))

	c.Add(7)
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	b.Add(0, 1000)
	b.Add(sim.Second+1, 500)

	s := r.Snapshot()
	if n, ok := s.Counter("sys.events"); !ok || n != 7 {
		t.Fatalf("counter snapshot = %d,%v want 7,true", n, ok)
	}
	hs, ok := s.Histogram("sys.latency")
	if !ok || hs.Count != 100 {
		t.Fatalf("histogram snapshot count = %d,%v want 100,true", hs.Count, ok)
	}
	if hs.P99Ns != int64(99*sim.Microsecond) || hs.MaxNs != int64(100*sim.Microsecond) {
		t.Fatalf("histogram percentiles wrong: p99=%d max=%d", hs.P99Ns, hs.MaxNs)
	}
	if len(s.Bandwidths) != 1 || s.Bandwidths[0].Total != 1500 || len(s.Bandwidths[0].Series) != 2 {
		t.Fatalf("bandwidth snapshot wrong: %+v", s.Bandwidths)
	}

	// Snapshots are detached: later mutation must not bleed in.
	c.Add(100)
	if n, _ := s.Counter("sys.events"); n != 7 {
		t.Fatalf("snapshot mutated after the fact: %d", n)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter(&Counter{Name: "z.last"})
	r.RegisterCounter(&Counter{Name: "a.first"})
	r.RegisterCounter(&Counter{Name: "m.mid"})
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name > s.Counters[i].Name {
			t.Fatalf("counters not sorted: %q > %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter(&Counter{Name: "dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r.RegisterHistogram(NewHistogram("dup"))
}

func TestRegistryUnnamedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unnamed counter did not panic")
		}
	}()
	NewRegistry().RegisterCounter(&Counter{})
}

func TestRegistryMerge(t *testing.T) {
	sub := NewRegistry()
	sub.RegisterCounter(&Counter{Name: "sub.n", N: 3})
	sub.RegisterHistogram(NewHistogram("sub.lat"))
	owner := NewRegistry()
	owner.RegisterCounter(&Counter{Name: "own.n"})
	owner.Merge(sub)
	s := owner.Snapshot()
	if n, ok := s.Counter("sub.n"); !ok || n != 3 {
		t.Fatalf("merged counter missing: %d,%v", n, ok)
	}
	if _, ok := s.Histogram("sub.lat"); !ok {
		t.Fatal("merged histogram missing")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter(&Counter{Name: "c", N: 42})
	h := r.RegisterHistogram(NewHistogram("h"))
	h.Record(5 * sim.Microsecond)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if n, ok := back.Counter("c"); !ok || n != 42 {
		t.Fatalf("round-trip counter = %d,%v", n, ok)
	}
	hs, ok := back.Histogram("h")
	if !ok || hs.Count != 1 || hs.MaxNs != int64(5*sim.Microsecond) {
		t.Fatalf("round-trip histogram = %+v,%v", hs, ok)
	}
}
