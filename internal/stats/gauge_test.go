package stats

import (
	"testing"

	"dilos/internal/sim"
)

func TestGaugeSetAddEnvelope(t *testing.T) {
	g := &Gauge{Name: "g"}
	if g.Last() != 0 || g.Min() != 0 || g.Max() != 0 || g.Samples() != 0 {
		t.Fatalf("fresh gauge not zero: %v", g)
	}
	g.Set(5)
	if g.Last() != 5 || g.Min() != 5 || g.Max() != 5 {
		t.Fatalf("after Set(5): %v", g)
	}
	g.Set(3)
	g.Add(10) // 13
	g.Add(-14)
	if g.Last() != -1 || g.Min() != -1 || g.Max() != 13 {
		t.Fatalf("envelope wrong: %v", g)
	}
	if g.Samples() != 4 {
		t.Fatalf("samples = %d, want 4", g.Samples())
	}
}

// The first Set must seed the envelope: a gauge that only ever holds
// positive values must not report min=0 from the zero value.
func TestGaugeMinSeededByFirstSet(t *testing.T) {
	g := &Gauge{Name: "g"}
	g.Set(100)
	g.Set(200)
	if g.Min() != 100 {
		t.Fatalf("min = %d, want 100", g.Min())
	}
}

func TestRegistryGaugeSnapshotOrdering(t *testing.T) {
	r := NewRegistry()
	b := r.RegisterGauge(&Gauge{Name: "b.gauge"})
	a := r.RegisterGauge(&Gauge{Name: "a.gauge"})
	a.Set(1)
	b.Set(2)
	s := r.Snapshot()
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "a.gauge" || s.Gauges[1].Name != "b.gauge" {
		t.Fatalf("gauges not name-sorted: %+v", s.Gauges)
	}
	got, ok := s.Gauge("b.gauge")
	if !ok || got.Last != 2 {
		t.Fatalf("lookup b.gauge = %+v, %v", got, ok)
	}
	// The snapshot is detached from the live gauge.
	b.Set(99)
	if got, _ := s.Gauge("b.gauge"); got.Last != 2 {
		t.Fatalf("snapshot mutated by later Set: %+v", got)
	}
}

func TestRegistryGaugeDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate gauge name did not panic")
		}
	}()
	r := NewRegistry()
	r.RegisterGauge(&Gauge{Name: "dup"})
	r.RegisterGauge(&Gauge{Name: "dup"})
}

func TestRegistryMergeCarriesGauges(t *testing.T) {
	sub := NewRegistry()
	g := sub.RegisterGauge(&Gauge{Name: "sub.gauge"})
	g.Set(7)
	top := NewRegistry()
	top.Merge(sub)
	if got, ok := top.Snapshot().Gauge("sub.gauge"); !ok || got.Last != 7 {
		t.Fatalf("merged gauge = %+v, %v", got, ok)
	}
}

// Regression: the final bucket of a Bandwidth series is partial — a run
// that moved 1 MB in its first 100 µs must report ≈10 GB/s, not the
// 1 GB/s that averaging over the full 1 ms bucket width reported.
func TestBandwidthFinalPartialBucket(t *testing.T) {
	b := NewBandwidth("bw", sim.Millisecond)
	const bytes = 1 << 20
	b.Add(100*sim.Microsecond, bytes)
	pts := b.Series()
	if len(pts) != 1 {
		t.Fatalf("series length = %d, want 1", len(pts))
	}
	want := float64(bytes) / (100 * sim.Microsecond).Seconds()
	got := pts[0].BytesPerSec
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("partial bucket rate = %.3g B/s, want ≈%.3g B/s", got, want)
	}
}

// Only the final bucket is elapsed-scaled: interior buckets keep the full
// width, and a sample landing exactly on the last tick of a bucket keeps
// the rate finite.
func TestBandwidthInteriorBucketsFullWidth(t *testing.T) {
	b := NewBandwidth("bw", sim.Millisecond)
	b.Add(0, 1000)
	b.Add(sim.Millisecond+sim.Millisecond/2, 500) // mid second bucket
	pts := b.Series()
	if len(pts) != 2 {
		t.Fatalf("series length = %d, want 2", len(pts))
	}
	wantFirst := 1000 / sim.Millisecond.Seconds()
	if pts[0].BytesPerSec != wantFirst {
		t.Fatalf("interior bucket rate = %v, want %v", pts[0].BytesPerSec, wantFirst)
	}
	wantLast := 500 / (sim.Millisecond / 2).Seconds()
	if got := pts[1].BytesPerSec; got < wantLast*0.99 || got > wantLast*1.01 {
		t.Fatalf("final bucket rate = %v, want ≈%v", got, wantLast)
	}
}
