// Package stats provides the measurement primitives the evaluation harness
// is built on: counters, latency histograms with tail percentiles, and
// time-bucketed bandwidth series (for the Figure 12 style plots).
package stats

import (
	"fmt"
	"math"
	"sort"

	"dilos/internal/sim"
)

// Counter is a simple named event counter.
type Counter struct {
	Name string
	N    int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.N += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.N++ }

func (c *Counter) String() string { return fmt.Sprintf("%s=%d", c.Name, c.N) }

// Gauge tracks an instantaneous level (cache occupancy, queue depth,
// free-list size). Unlike a Counter it can move both ways; the snapshot
// keeps the last value plus the min/max envelope seen across the run, so
// watermark breathing survives into aggregate output even without the
// telemetry sampler attached.
type Gauge struct {
	Name     string
	last     int64
	min, max int64
	n        int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.last = v
	if g.n == 0 || v < g.min {
		g.min = v
	}
	if g.n == 0 || v > g.max {
		g.max = v
	}
	g.n++
}

// Add shifts the current level by d.
func (g *Gauge) Add(d int64) { g.Set(g.last + d) }

// Last returns the most recently set value.
func (g *Gauge) Last() int64 { return g.last }

// Min returns the smallest value ever set (0 before the first Set).
func (g *Gauge) Min() int64 { return g.min }

// Max returns the largest value ever set (0 before the first Set).
func (g *Gauge) Max() int64 { return g.max }

// Samples returns how many times the gauge has been set.
func (g *Gauge) Samples() int64 { return g.n }

func (g *Gauge) String() string {
	return fmt.Sprintf("%s=%d [%d..%d]", g.Name, g.last, g.min, g.max)
}

// Histogram records latency samples and reports percentiles. Samples are
// stored exactly (the simulations here record at most a few million), so
// percentiles are exact rather than bucket-approximated.
type Histogram struct {
	Name    string
	samples []sim.Time
	sorted  bool
	sum     sim.Time
	max     sim.Time
}

// NewHistogram creates an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name}
}

// Record adds one sample.
func (h *Histogram) Record(v sim.Time) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / sim.Time(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no samples.
func (h *Histogram) Percentile(p float64) sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	// Multiply before dividing: p/100 is inexact in binary floating
	// point, and ceil amplifies the dust into an off-by-one rank
	// (e.g. ceil(0.28*25) = 8, but ceil(28*25/100) = 7).
	rank := int(math.Ceil(float64(len(h.samples)) * p / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// P50, P99, P999 are shorthands for the usual tail percentiles.
func (h *Histogram) P50() sim.Time  { return h.Percentile(50) }
func (h *Histogram) P99() sim.Time  { return h.Percentile(99) }
func (h *Histogram) P999() sim.Time { return h.Percentile(99.9) }

// Reset drops all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
	h.sum = 0
	h.max = 0
}

func (h *Histogram) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.Name, h.Count(), h.Mean(), h.P50(), h.P99(), h.P999(), h.Max())
}

// Bandwidth accumulates transferred bytes into fixed-width virtual-time
// buckets, producing the bandwidth-over-time series of Figure 12.
type Bandwidth struct {
	Name    string
	Bucket  sim.Time // bucket width
	buckets []int64  // bytes per bucket
	total   int64
	lastAt  sim.Time // latest sample time, bounds the final partial bucket
}

// NewBandwidth creates a bandwidth series with the given bucket width.
func NewBandwidth(name string, bucket sim.Time) *Bandwidth {
	if bucket <= 0 {
		panic("stats: bandwidth bucket must be positive")
	}
	return &Bandwidth{Name: name, Bucket: bucket}
}

// Add records `bytes` transferred at virtual time `at`.
func (b *Bandwidth) Add(at sim.Time, bytes int64) {
	if bytes < 0 {
		panic("stats: negative bandwidth sample")
	}
	idx := int(at / b.Bucket)
	for len(b.buckets) <= idx {
		b.buckets = append(b.buckets, 0)
	}
	b.buckets[idx] += bytes
	b.total += bytes
	if at > b.lastAt {
		b.lastAt = at
	}
}

// Total returns the total bytes recorded.
func (b *Bandwidth) Total() int64 { return b.total }

// Buckets returns the per-bucket byte counts (shared slice; do not mutate).
func (b *Bandwidth) Buckets() []int64 { return b.buckets }

// Series returns (bucket start time, bytes/sec) pairs for plotting.
// The final bucket is almost always partial — the run ended at the last
// sample, not at the bucket's right edge — so its rate is computed over
// the elapsed portion only. Averaging it over the full width dilutes
// short runs toward zero (a 100 µs run in a 1 ms bucket reported a tenth
// of its real bandwidth). When every sample landed at a single instant
// there is no elapsed span to rate over, so the full width stands.
func (b *Bandwidth) Series() []BandwidthPoint {
	pts := make([]BandwidthPoint, len(b.buckets))
	for i, v := range b.buckets {
		width := b.Bucket
		if i == len(b.buckets)-1 {
			if elapsed := b.lastAt - sim.Time(i)*b.Bucket; elapsed > 0 && elapsed < width {
				width = elapsed
			}
		}
		pts[i] = BandwidthPoint{
			At:          sim.Time(i) * b.Bucket,
			BytesPerSec: float64(v) / width.Seconds(),
		}
	}
	return pts
}

// BandwidthPoint is one point of a bandwidth series.
type BandwidthPoint struct {
	At          sim.Time
	BytesPerSec float64
}

// GBps formats a bytes/sec value as GB/s (decimal GB, as the paper does).
func GBps(bytesPerSec float64) float64 { return bytesPerSec / 1e9 }
