// Package dataframe is a column-store analytics library in the mould of
// the C++ DataFrame the paper evaluates (Figure 8), with a synthetic
// generator shaped like the New York City taxi-trip data-set the AIFM
// repository ships. The query set mirrors the NYC taxi analysis notebook:
// group-bys over passenger count, range filters over trip distance,
// duration statistics, and a top-k scan — mostly-sequential columnar
// passes with enough irregularity (group-by cells, heap updates) to be
// interesting to a prefetcher.
//
// Columns are accessed through the Col interface, so the same queries run
// over paging systems (SpaceCol — DiLOS/Fastswap, unmodified) and over
// AIFM's remoteable arrays (AIFMCol — the "port" the paper had to write).
package dataframe

import (
	"math/rand"

	"dilos/internal/aifm"
	"dilos/internal/sim"
	"dilos/internal/space"
)

// Col is one u64 column.
type Col interface {
	Get(i uint64) uint64
	Set(i uint64, v uint64)
	Len() uint64
}

// SpaceCol stores the column at base in a Space.
type SpaceCol struct {
	SP   space.Space
	Base uint64
	N    uint64
}

// Get implements Col.
func (c *SpaceCol) Get(i uint64) uint64 { return c.SP.LoadU64(c.Base + i*8) }

// Set implements Col.
func (c *SpaceCol) Set(i uint64, v uint64) { c.SP.StoreU64(c.Base+i*8, v) }

// Len implements Col.
func (c *SpaceCol) Len() uint64 { return c.N }

// AIFMCol stores the column in an AIFM remoteable array.
type AIFMCol struct {
	Arr *aifm.Array
	T   *aifm.Thread
}

// Get implements Col.
func (c *AIFMCol) Get(i uint64) uint64 { return c.Arr.ReadU64(c.T, i) }

// Set implements Col.
func (c *AIFMCol) Set(i uint64, v uint64) { c.Arr.WriteU64(c.T, i, v) }

// Len implements Col.
func (c *AIFMCol) Len() uint64 { return c.Arr.Len() }

// Frame is the taxi-trip table.
type Frame struct {
	N          uint64
	PickupTS   Col // seconds
	DropoffTS  Col // seconds
	Passengers Col // 1..6
	DistanceM  Col // metres
	FareCents  Col
	PickupLoc  Col // zone id 0..262
	DropoffLoc Col
}

// Cols returns the frame's columns in schema order.
func (f *Frame) Cols() []Col {
	return []Col{f.PickupTS, f.DropoffTS, f.Passengers, f.DistanceM, f.FareCents, f.PickupLoc, f.DropoffLoc}
}

// NewSpaceFrame allocates all columns of an n-row frame in a Space.
func NewSpaceFrame(sp space.Space, n uint64) *Frame {
	col := func() Col { return &SpaceCol{SP: sp, Base: sp.Malloc(n * 8), N: n} }
	return &Frame{
		N: n, PickupTS: col(), DropoffTS: col(), Passengers: col(),
		DistanceM: col(), FareCents: col(), PickupLoc: col(), DropoffLoc: col(),
	}
}

// NewAIFMFrame allocates all columns as AIFM remoteable arrays.
func NewAIFMFrame(sys *aifm.System, t *aifm.Thread, n uint64) (*Frame, error) {
	col := func() (Col, error) {
		arr, err := sys.NewArray(8, n)
		if err != nil {
			return nil, err
		}
		return &AIFMCol{Arr: arr, T: t}, nil
	}
	f := &Frame{N: n}
	var err error
	for _, dst := range []*Col{&f.PickupTS, &f.DropoffTS, &f.Passengers, &f.DistanceM, &f.FareCents, &f.PickupLoc, &f.DropoffLoc} {
		if *dst, err = col(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Generate fills the frame with synthetic taxi trips: exponential-ish trip
// distances, fares correlated with distance, timestamps over a month.
func Generate(f *Frame, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const monthSecs = 30 * 24 * 3600
	for i := uint64(0); i < f.N; i++ {
		pickup := uint64(rng.Intn(monthSecs))
		distance := uint64(rng.ExpFloat64() * 3000) // mean 3 km
		if distance > 80_000 {
			distance = 80_000
		}
		speed := 6 + uint64(rng.Intn(10)) // m/s
		duration := distance/speed + uint64(rng.Intn(300))
		fare := 250 + distance/10 + duration/3 // cents
		f.PickupTS.Set(i, pickup)
		f.DropoffTS.Set(i, pickup+duration)
		f.Passengers.Set(i, uint64(1+rng.Intn(6)))
		f.DistanceM.Set(i, distance)
		f.FareCents.Set(i, fare)
		f.PickupLoc.Set(i, uint64(rng.Intn(263)))
		f.DropoffLoc.Set(i, uint64(rng.Intn(263)))
	}
}

// Result carries a query set's outputs (and a checksum the comparisons
// across systems are validated with).
type Result struct {
	TripsPerPassengers [7]uint64
	MeanDistancePerPax [7]uint64
	AvgFareMidRange    uint64 // cents, trips 2–10 km
	MeanDurationSecs   uint64
	DurationVariance   uint64
	Top10Distance      [10]uint64
	Checksum           uint64
	Elapsed            sim.Time
}

// RunTaxiAnalysis executes the five queries over the frame.
func RunTaxiAnalysis(sp interface{ Now() sim.Time }, f *Frame) Result {
	t0 := sp.Now()
	var r Result

	// Q1 + Q2: trips and mean distance grouped by passenger count.
	var distSum [7]uint64
	for i := uint64(0); i < f.N; i++ {
		p := f.Passengers.Get(i)
		if p > 6 {
			p = 6
		}
		r.TripsPerPassengers[p]++
		distSum[p] += f.DistanceM.Get(i)
	}
	for p := range r.MeanDistancePerPax {
		if r.TripsPerPassengers[p] > 0 {
			r.MeanDistancePerPax[p] = distSum[p] / r.TripsPerPassengers[p]
		}
	}

	// Q3: average fare for mid-range trips (2–10 km).
	var fareSum, fareCount uint64
	for i := uint64(0); i < f.N; i++ {
		d := f.DistanceM.Get(i)
		if d >= 2000 && d <= 10000 {
			fareSum += f.FareCents.Get(i)
			fareCount++
		}
	}
	if fareCount > 0 {
		r.AvgFareMidRange = fareSum / fareCount
	}

	// Q4: duration mean and variance (two-pass, like the notebook).
	var durSum uint64
	for i := uint64(0); i < f.N; i++ {
		durSum += f.DropoffTS.Get(i) - f.PickupTS.Get(i)
	}
	r.MeanDurationSecs = durSum / f.N
	var varSum uint64
	for i := uint64(0); i < f.N; i++ {
		d := f.DropoffTS.Get(i) - f.PickupTS.Get(i)
		diff := int64(d) - int64(r.MeanDurationSecs)
		varSum += uint64(diff * diff)
	}
	r.DurationVariance = varSum / f.N

	// Q5: top-10 longest trips (min-heap scan).
	for i := uint64(0); i < f.N; i++ {
		d := f.DistanceM.Get(i)
		if d > r.Top10Distance[0] {
			r.Top10Distance[0] = d
			// Sift the smallest back to position 0.
			for k := 0; k < 9; k++ {
				if r.Top10Distance[k] > r.Top10Distance[k+1] {
					r.Top10Distance[k], r.Top10Distance[k+1] = r.Top10Distance[k+1], r.Top10Distance[k]
				}
			}
		}
	}

	r.Checksum = r.AvgFareMidRange ^ r.MeanDurationSecs ^ r.DurationVariance
	for p := range r.TripsPerPassengers {
		r.Checksum ^= r.TripsPerPassengers[p]*31 + r.MeanDistancePerPax[p]
	}
	for _, d := range r.Top10Distance {
		r.Checksum = r.Checksum*31 + d
	}
	r.Elapsed = sp.Now() - t0
	return r
}
