package dataframe

import (
	"testing"

	"dilos/internal/aifm"
	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/sim"
	"dilos/internal/space"
)

func TestTaxiAnalysisLocal(t *testing.T) {
	sp := space.NewLocal(64 << 20)
	f := NewSpaceFrame(sp, 20000)
	Generate(f, 11)
	r := RunTaxiAnalysis(sp, f)
	var total uint64
	for _, n := range r.TripsPerPassengers {
		total += n
	}
	if total != f.N {
		t.Fatalf("group-by counts sum to %d, want %d", total, f.N)
	}
	if r.TripsPerPassengers[0] != 0 {
		t.Fatal("no trips should have 0 passengers")
	}
	if r.AvgFareMidRange == 0 || r.MeanDurationSecs == 0 {
		t.Fatal("aggregates empty")
	}
	for k := 0; k < 9; k++ {
		if r.Top10Distance[k] > r.Top10Distance[k+1] {
			t.Fatal("top-10 not ordered")
		}
	}
}

func TestSameResultAcrossBackends(t *testing.T) {
	// Local reference.
	spLocal := space.NewLocal(64 << 20)
	fLocal := NewSpaceFrame(spLocal, 8000)
	Generate(fLocal, 5)
	want := RunTaxiAnalysis(spLocal, fLocal)

	// DiLOS under memory pressure.
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 64, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	var gotD Result
	sys.Launch("df", 0, func(sp *core.DDCProc) {
		f := NewSpaceFrame(sp, 8000)
		Generate(f, 5)
		gotD = RunTaxiAnalysis(sp, f)
	})
	eng.Run()
	if gotD.Checksum != want.Checksum {
		t.Fatalf("DiLOS checksum %d != local %d", gotD.Checksum, want.Checksum)
	}

	// AIFM port.
	eng2 := sim.New()
	asys := aifm.New(eng2, aifm.Config{
		LocalBytes: 128 << 10, RemoteBytes: 64 << 20, Fabric: fabric.TCPParams(),
	})
	asys.Start()
	var gotA Result
	asys.Launch("df", func(th *aifm.Thread) {
		f, err := NewAIFMFrame(asys, th, 8000)
		if err != nil {
			t.Error(err)
			return
		}
		Generate(f, 5)
		gotA = RunTaxiAnalysis(th, f)
	})
	eng2.Run()
	if gotA.Checksum != want.Checksum {
		t.Fatalf("AIFM checksum %d != local %d", gotA.Checksum, want.Checksum)
	}
}

func TestAIFMSlowerWhenAllLocal(t *testing.T) {
	// At 100% local memory the paging system's fault path is idle while
	// AIFM still pays the deref-check tax (Figure 8's right-hand cluster).
	const rows = 16000

	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 8192, Cores: 1, RemoteBytes: 128 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	var dilosTime sim.Time
	sys.Launch("df", 0, func(sp *core.DDCProc) {
		f := NewSpaceFrame(sp, rows)
		Generate(f, 6)
		RunTaxiAnalysis(sp, f) // warm
		dilosTime = RunTaxiAnalysis(sp, f).Elapsed
	})
	eng.Run()

	eng2 := sim.New()
	asys := aifm.New(eng2, aifm.Config{
		LocalBytes: 64 << 20, RemoteBytes: 128 << 20, Fabric: fabric.TCPParams(),
	})
	asys.Start()
	var aifmTime sim.Time
	asys.Launch("df", func(th *aifm.Thread) {
		f, _ := NewAIFMFrame(asys, th, rows)
		Generate(f, 6)
		RunTaxiAnalysis(th, f)
		aifmTime = RunTaxiAnalysis(th, f).Elapsed
	})
	eng2.Run()

	if aifmTime <= dilosTime {
		t.Fatalf("AIFM (%v) should be slower than DiLOS (%v) at 100%% local", aifmTime, dilosTime)
	}
}
