package fastswap

import (
	"dilos/internal/mmu"
	"dilos/internal/sim"
)

// FSProc is a workload thread on a Fastswap node; it implements
// space.Space, so the same unmodified workloads run on both systems — the
// compatibility both paging designs share.
type FSProc struct {
	sys    *System
	coreID int
	core   *mmu.Core
}

// Launch runs fn as a workload thread on the given core.
func (s *System) Launch(name string, coreID int, fn func(sp *FSProc)) {
	if coreID < 0 || coreID >= len(s.qps) {
		panic("fastswap: bad core id")
	}
	s.Eng.Go(name, func(p *sim.Proc) {
		fn(s.BindCore(p, coreID))
	})
}

// BindCore attaches an existing sim process to a core.
func (s *System) BindCore(p *sim.Proc, coreID int) *FSProc {
	h := &coreHandler{sys: s, coreID: coreID}
	c := mmu.NewCore(p, s.Table, s.Pool, h)
	c.Costs = s.MMUC
	return &FSProc{sys: s, coreID: coreID, core: c}
}

// System returns the owning Fastswap system.
func (f *FSProc) System() *System { return f.sys }

// MMU returns the underlying core.
func (f *FSProc) MMU() *mmu.Core { return f.core }

// Proc returns the sim process.
func (f *FSProc) Proc() *sim.Proc { return f.core.Proc }

// Load implements space.Space.
func (f *FSProc) Load(addr uint64, p []byte) { f.core.Load(addr, p) }

// Store implements space.Space.
func (f *FSProc) Store(addr uint64, p []byte) { f.core.Store(addr, p) }

// LoadU64 implements space.Space.
func (f *FSProc) LoadU64(addr uint64) uint64 { return f.core.LoadU64(addr) }

// StoreU64 implements space.Space.
func (f *FSProc) StoreU64(addr uint64, v uint64) { f.core.StoreU64(addr, v) }

// LoadU32 implements space.Space.
func (f *FSProc) LoadU32(addr uint64) uint32 { return f.core.LoadU32(addr) }

// StoreU32 implements space.Space.
func (f *FSProc) StoreU32(addr uint64, v uint32) { f.core.StoreU32(addr, v) }

// LoadU8 implements space.Space.
func (f *FSProc) LoadU8(addr uint64) byte { return f.core.LoadU8(addr) }

// StoreU8 implements space.Space.
func (f *FSProc) StoreU8(addr uint64, v byte) { f.core.StoreU8(addr, v) }

// Malloc implements space.Space.
func (f *FSProc) Malloc(n uint64) uint64 {
	addr, err := f.sys.Malloc(n)
	if err != nil {
		panic(err)
	}
	return addr
}

// Free implements space.Space.
func (f *FSProc) Free(addr, n uint64) { f.sys.Free(addr, n) }

// Compute implements space.Space.
func (f *FSProc) Compute(t sim.Time) { f.core.Proc.Advance(t) }

// Now implements space.Space.
func (f *FSProc) Now() sim.Time { return f.core.Proc.Now() }
