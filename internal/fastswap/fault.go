package fastswap

import (
	"fmt"

	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/mmu"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
)

type coreHandler struct {
	sys    *System
	coreID int
}

// HandleFault implements mmu.FaultHandler — the Linux/Fastswap swap fault
// path. A fault first consults the swap cache: a hit is a minor fault
// (map the cached page); a miss is a major fault (swap-entry bookkeeping,
// cluster readahead into the swap cache, synchronous wait for the faulted
// page, and possibly direct reclamation).
func (h *coreHandler) HandleFault(c *mmu.Core, vpn pagetable.VPN, write bool) {
	s := h.sys
	p := c.Proc
	t0 := p.Now()
	p.Advance(c.Costs.Exception)
	p.Advance(s.Costs.KernelEntry)

	if e, ok := s.cache[vpn]; ok {
		// Minor fault: page is in the swap cache (readahead put it there
		// without mapping it — the structural cost of the swap-cache
		// design that DiLOS' unified page table removes).
		s.MinorFaults.Inc()
		e.fresh = false
		p.Advance(s.Costs.MinorService)
		tWait := p.Now()
		if e.op != nil {
			op := e.op
			op.Wait(p)
			if s.cache[vpn] != e {
				// Reclaimed (or replaced) while we slept on the IO; the
				// retried translation will fault again and take the major
				// path. (No span: the refault records the real service.)
				s.MinorFaultLat.Record(p.Now() - t0)
				return
			}
			e.op = nil
		}
		s.mapEntry(vpn, e)
		s.MinorFaultLat.Record(p.Now() - t0)
		if s.Tel != nil {
			var span telemetry.Span
			span.Kind = telemetry.KindMinorFault
			span.Start, span.End = t0, p.Now()
			span.Arg = uint64(vpn)
			span.Stages[telemetry.StageException] = c.Costs.Exception
			span.Stages[telemetry.StageLookup] = s.Costs.KernelEntry + s.Costs.MinorService
			span.Stages[telemetry.StageWait] = p.Now() - tWait
			s.Tel.Emit(s.telCore[h.coreID], span)
		}
		return
	}

	// Major fault.
	s.MajorFaults.Inc()
	s.BD.N++
	s.BD.Exception += c.Costs.Exception
	mgmtStart := p.Now()
	p.Advance(s.Costs.SwapMgmt)

	reclaim0 := s.BD.Reclaim
	frame := s.allocFrame(p, true)
	if e, ok := s.cache[vpn]; ok {
		// allocFrame can yield inside direct reclamation; another core
		// installed this page meanwhile. Free our frame and serve the
		// fault from the winner's entry (Linux resolves the same race
		// under the page lock).
		s.Pool.Free(frame)
		if e.op != nil {
			op := e.op
			op.Wait(p)
			if s.cache[vpn] != e {
				return // and the winner got reclaimed too: refault
			}
			e.op = nil
		}
		s.mapEntry(vpn, e)
		return
	}
	e := &scEntry{frame: frame}
	s.cache[vpn] = e
	remote, ok := s.remoteOf(vpn)
	if !ok {
		panic(fmt.Sprintf("fastswap: segfault at vpn %d", vpn))
	}
	// The swap-management segment is everything since entry except the
	// direct-reclaim time (accounted separately, as Figure 1 does).
	reclaimDur := s.BD.Reclaim - reclaim0
	mgmtDur := (p.Now() - mgmtStart) - reclaimDur + s.Costs.KernelEntry
	s.BD.SwapMgmt += mgmtDur
	op := s.qps[h.coreID].Read(p.Now(), remote, s.Pool.Bytes(frame))
	e.op = op

	// Cluster readahead into the swap cache (unmapped!).
	tIssue := p.Now()
	s.readahead(p, h.coreID, vpn)
	issueDur := p.Now() - tIssue

	tFetch := p.Now()
	op.Wait(p)
	e.op = nil
	s.BD.Fetch += p.Now() - tFetch

	tMap := p.Now()
	p.Advance(s.Costs.Map)
	s.mapEntry(vpn, e)
	s.BD.Map += p.Now() - tMap
	s.FaultLat.Record(p.Now() - t0)
	s.lastFault = vpn
	if s.Tel != nil {
		var span telemetry.Span
		span.Kind = telemetry.KindMajorFault
		span.Start, span.End = t0, p.Now()
		span.Arg = uint64(vpn)
		span.Stages[telemetry.StageException] = c.Costs.Exception
		span.Stages[telemetry.StageLookup] = mgmtDur
		span.Stages[telemetry.StageReclaim] = reclaimDur
		span.Stages[telemetry.StageIssue] = issueDur
		span.Stages[telemetry.StageWait] = tMap - tFetch
		span.Stages[telemetry.StageMap] = p.Now() - tMap
		s.Tel.Emit(s.telCore[h.coreID], span)
	}
}

// mapEntry installs the PTE for a swap-cache entry (the page stays in the
// swap cache — Linux keeps the duplicate until reclaim).
func (s *System) mapEntry(vpn pagetable.VPN, e *scEntry) {
	e.mapped = true
	s.Table.Set(vpn, pagetable.Local(uint64(e.frame), true))
	meta := s.Pool.Meta(e.frame)
	meta.VPN = vpn
	if !e.onLRU {
		s.Pool.LRUPushBack(e.frame)
		e.onLRU = true
	}
}

// readahead issues the rest of the swap cluster around a major fault —
// into the swap cache only, which is precisely why the next 7 sequential
// accesses will minor-fault.
func (s *System) readahead(p *sim.Proc, coreID int, vpn pagetable.VPN) {
	switch {
	case vpn > s.lastFault:
		s.dir = 1
	case vpn < s.lastFault:
		s.dir = -1
	}
	for k := int64(1); k < int64(s.cluster); k++ {
		next := int64(vpn) + s.dir*k
		if next < 0 {
			break
		}
		nv := pagetable.VPN(next)
		if _, ok := s.cache[nv]; ok {
			continue
		}
		if s.Table.Lookup(nv).Tag() != pagetable.TagRemote {
			continue
		}
		remote, ok := s.remoteOf(nv)
		if !ok {
			continue
		}
		frame := s.allocFrame(p, false)
		if frame == dram.NoFrame {
			break
		}
		e := &scEntry{frame: frame, onLRU: true, fresh: true}
		op := s.qps[coreID].Read(p.Now(), remote, s.Pool.Bytes(frame))
		e.op = op
		s.cache[nv] = e
		s.Pool.Meta(frame).VPN = nv
		s.Pool.LRUPushBack(frame)
		p.Advance(s.Costs.ReadaheadIssue)
	}
}

// allocFrame takes a free frame, entering direct reclamation on the fault
// path when the free list is too low and kswapd has fallen behind — the
// Figure 1 "reclamation (direct)" segment.
func (s *System) allocFrame(p *sim.Proc, demand bool) dram.FrameID {
	if s.Pool.FreeCount() <= s.lowWater {
		s.needKswapd.Wake(p.Now())
	}
	if !demand {
		// Readahead never direct-reclaims. It is curtailed in two cases:
		// under dirty pressure near the watermark (write-back throttling
		// keeps the free list pinned low, so speculative IO must not
		// steal the last frames from demand paging — the Table 2 write
		// collapse), and at a hard floor regardless.
		free := s.Pool.FreeCount()
		if s.dirtyPressure && free <= s.lowWater+s.cluster {
			return dram.NoFrame
		}
		if free <= s.lowWater/2 {
			return dram.NoFrame
		}
		id, ok := s.Pool.Alloc()
		if !ok {
			return dram.NoFrame
		}
		return id
	}
	if s.Pool.FreeCount() <= s.directWater {
		t0 := p.Now()
		s.directReclaim(p)
		s.BD.Reclaim += p.Now() - t0
	}
	for {
		if id, ok := s.Pool.Alloc(); ok {
			return id
		}
		t0 := p.Now()
		s.directReclaim(p)
		s.BD.Reclaim += p.Now() - t0
	}
}

// directReclaim evicts a couple of pages inline, synchronously writing
// back dirty victims — the cost Table 2's sequential write exposes.
func (s *System) directReclaim(p *sim.Proc) {
	p.Advance(s.Costs.DirectFixed)
	s.DirectRecl.Inc()
	s.reclaimPages(p, 4, true)
}

// kswapdLoop is Fastswap's dedicated reclaim thread: it keeps the free
// list near the high watermark, but (as the paper observes) it cannot
// absorb all reclamation under sustained fault pressure.
func (s *System) kswapdLoop(p *sim.Proc) {
	for {
		if s.Pool.FreeCount() >= s.highWater {
			s.needKswapd.Wait(p)
			continue
		}
		n := s.highWater - s.Pool.FreeCount()
		t0 := p.Now()
		got := s.reclaimPages(p, n, false)
		if got == 0 {
			p.Sleep(5 * sim.Microsecond)
		} else if s.Tel != nil {
			s.Tel.Emit(s.kswapdTrack, telemetry.Span{
				Kind: telemetry.KindReclaim, Start: t0, End: p.Now(), Arg: uint64(got),
			})
		}
		s.KswapdRecl.Inc()
		p.Sleep(s.offloadTick)
	}
}

// reclaimPages evicts up to n cold pages. sync selects the caller's
// write-back behaviour for dirty victims: the direct path waits for the
// RDMA write inline; kswapd overlaps writes and waits once per batch.
func (s *System) reclaimPages(p *sim.Proc, n int, sync bool) int {
	evicted := 0
	sawDirty := false
	scans := s.Pool.LRULen()
	for i := 0; i < scans && evicted < n; i++ {
		id := s.Pool.LRUFront()
		if id == dram.NoFrame {
			break
		}
		p.Advance(s.Costs.ReclaimScan)
		meta := s.Pool.Meta(id)
		vpn := meta.VPN
		e := s.cache[vpn]
		if e != nil && e.op != nil && e.op.Done(p.Now()) {
			e.op = nil // readahead IO finished but the page was never touched
		}
		if e == nil || e.op != nil {
			s.Pool.LRURotate(id) // in-flight IO: skip
			continue
		}
		if e.fresh {
			// A readahead page the stream has not reached yet: give it one
			// pass of protection (Linux keeps these referenced on the
			// inactive list), or the clock would evict the very pages the
			// cluster just paid to fetch.
			e.fresh = false
			s.Pool.LRURotate(id)
			continue
		}
		pte := s.Table.Lookup(vpn)
		if e.mapped && pte.Tag() == pagetable.TagLocal && pte.Accessed() {
			s.Table.Set(vpn, pte&^pagetable.BitAccessed)
			s.Table.BumpGen()
			s.Pool.LRURotate(id)
			continue
		}
		// Victim: issue the dirty write-back (content is snapshotted at
		// issue), then unmap and free — all before any yield, so a
		// concurrent reclaimer cannot race us on this frame.
		remote, ok := s.remoteOf(vpn)
		if !ok {
			panic("fastswap: cached page outside regions")
		}
		var wb *fabric.Op
		if e.mapped && pte.Tag() == pagetable.TagLocal && pte.Dirty() {
			// Swap-out of a dirty page: add_to_swap, rmap walk, pageout.
			sawDirty = true
			p.Advance(s.Costs.PageoutCPU)
			wb = s.wbQP.Write(p.Now(), remote, s.Pool.Bytes(id))
		}
		p.Advance(s.Costs.ReclaimUnmap)
		s.Table.Set(vpn, pagetable.Remote(remote/PageSize))
		s.Table.BumpGen()
		delete(s.cache, vpn)
		s.Pool.LRURemove(id)
		s.Pool.Free(id)
		evicted++
		if wb != nil {
			// Both paths throttle on the write-back (Linux's pageout
			// waits for congested backing stores): the direct path stalls
			// the faulting core, kswapd merely limits its own reclaim
			// rate — which is exactly what starves cluster readahead of
			// frames under sustained write pressure and collapses
			// Fastswap's sequential-write throughput (Table 2).
			wb.Wait(p)
			if sync {
				s.SyncWrites.Inc()
			}
		}
	}
	if evicted > 0 {
		s.dirtyPressure = sawDirty
	}
	return evicted
}
