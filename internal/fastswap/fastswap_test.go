package fastswap

import (
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/sim"
)

func newSys(t testing.TB, frames int) (*System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
	})
	sys.Start()
	return sys, eng
}

func TestSequentialReadFaultMix(t *testing.T) {
	sys, eng := newSys(t, 2048)
	const pages = 1024
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	// Table 1 shape: exactly 1/cluster of pages major, all the rest minor
	// (readahead fills the swap cache but never the page table).
	if sys.MajorFaults.N != pages/8 {
		t.Fatalf("major = %d, want %d", sys.MajorFaults.N, pages/8)
	}
	if sys.MinorFaults.N != pages-pages/8 {
		t.Fatalf("minor = %d, want %d (every non-major page minor-faults)",
			sys.MinorFaults.N, pages-pages/8)
	}
}

func TestDataIntegrityUnderPressure(t *testing.T) {
	sys, eng := newSys(t, 64)
	const pages = 256
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i*0x9e3779b9)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i*0x9e3779b9 {
				t.Errorf("page %d: got %#x", i, got)
				return
			}
		}
	})
	eng.Run()
	if sys.DirectRecl.N == 0 && sys.KswapdRecl.N == 0 {
		t.Fatal("no reclamation despite 4x pressure")
	}
}

func TestDirectReclaimShowsInBreakdown(t *testing.T) {
	sys, eng := newSys(t, 64)
	const pages = 512
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU8(base+i*PageSize, byte(i)) // dirty pages stress reclaim
		}
	})
	eng.Run()
	if sys.BD.Reclaim == 0 {
		t.Fatal("direct reclamation never hit the fault path — not Fastswap-like")
	}
	_, _, _, _, r := sys.BD.Mean()
	if r == 0 {
		t.Fatal("mean reclaim segment is zero")
	}
}

func TestFaultLatencySlowerThanDiLOS(t *testing.T) {
	sys, eng := newSys(t, 64)
	const pages = 400
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	total := sys.BD.Total()
	// Figure 1: the average Fastswap major fault is ≈6.3 µs.
	if total < 5*sim.Microsecond || total > 8*sim.Microsecond {
		t.Fatalf("mean major fault = %v, want ≈6.3us", total)
	}
	e, m, f, _, _ := sys.BD.Mean()
	if e != 570*sim.Nanosecond {
		t.Fatalf("exception = %v", e)
	}
	if f < 2*sim.Microsecond {
		t.Fatalf("fetch = %v", f)
	}
	if m < 800*sim.Nanosecond {
		t.Fatalf("swap mgmt segment = %v, want >= 0.8us (the cost DiLOS removes)", m)
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	sys, eng := newSys(t, 64)
	const pages = 256
	var bad bool
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		// Write everything, then re-read: dirty evictions must persist.
		for i := uint64(0); i < pages; i++ {
			sp.Store(base+i*PageSize+128, []byte{byte(i), byte(i >> 8)})
		}
		for i := uint64(0); i < pages; i++ {
			b := make([]byte, 2)
			sp.Load(base+i*PageSize+128, b)
			if b[0] != byte(i) || b[1] != byte(i>>8) {
				bad = true
				return
			}
		}
	})
	eng.Run()
	if bad {
		t.Fatal("dirty data lost across eviction")
	}
	if sys.Link.TxBytes.N == 0 {
		t.Fatal("no write-back traffic")
	}
}

func TestReadaheadRespectsRegionBounds(t *testing.T) {
	sys, eng := newSys(t, 64)
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(4)
		// Fault on the last page: readahead must not run off the region.
		sp.LoadU8(base + 3*PageSize)
	})
	eng.Run()
	if sys.MajorFaults.N != 1 {
		t.Fatalf("major = %d", sys.MajorFaults.N)
	}
}

func TestMallocCompat(t *testing.T) {
	sys, eng := newSys(t, 64)
	sys.Launch("app", 0, func(sp *FSProc) {
		a := sp.Malloc(64)
		sp.StoreU64(a, 7)
		if sp.LoadU64(a) != 7 {
			t.Error("malloc'd memory broken")
		}
	})
	eng.Run()
}

func TestDirtyPressureGatesReadahead(t *testing.T) {
	// Read-only pressure: dirtyPressure stays off, cluster readahead keeps
	// majors at ~1/cluster. Write pressure: dirtyPressure turns on and
	// majors balloon (the Table 2 write collapse).
	readRun, readEng := newSys(t, 256)
	var writeRun *System
	{
		sys := readRun
		eng := readEng
		const pages = 2048
		sys.Launch("r", 0, func(sp *FSProc) {
			base, _ := sys.MmapDDC(pages)
			for i := uint64(0); i < pages; i++ {
				sp.LoadU8(base + i*PageSize)
			}
		})
		eng.Run()
		if sys.dirtyPressure {
			t.Fatal("read-only run left dirtyPressure set")
		}
		if sys.MajorFaults.N > pages/4 {
			t.Fatalf("read majors = %d — readahead was curtailed without dirty pressure", sys.MajorFaults.N)
		}
	}
	{
		sys, eng := newSys(t, 256)
		writeRun = sys
		const pages = 2048
		sys.Launch("w", 0, func(sp *FSProc) {
			base, _ := sys.MmapDDC(pages)
			for i := uint64(0); i < pages; i++ {
				sp.StoreU64(base+i*PageSize, i)
			}
		})
		eng.Run()
		if !sys.dirtyPressure {
			t.Fatal("write run never signalled dirty pressure")
		}
	}
	if writeRun.MajorFaults.N <= readRun.MajorFaults.N {
		t.Fatalf("write majors (%d) should exceed read majors (%d) via readahead starvation",
			writeRun.MajorFaults.N, readRun.MajorFaults.N)
	}
}

func TestFreshReadaheadPageGetsSecondChance(t *testing.T) {
	sys, eng := newSys(t, 96)
	// Sequential read under heavy pressure: if fresh cluster pages were
	// evicted before their first touch, majors would run far above 1/8.
	const pages = 1024
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	if sys.MajorFaults.N > pages/4 {
		t.Fatalf("major = %d of %d — fresh readahead pages being evicted before use",
			sys.MajorFaults.N, pages)
	}
}

func TestMinorFaultLatencyRecorded(t *testing.T) {
	// Regression: only major faults used to land in a histogram; the
	// swap-cache-hit (minor) path — the dominant path on sequential reads
	// per Table 1 — went unmeasured.
	sys, eng := newSys(t, 2048)
	const pages = 512
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	if sys.MinorFaults.N == 0 {
		t.Fatal("no minor faults on a sequential read")
	}
	if got := int64(sys.MinorFaultLat.Count()); got != sys.MinorFaults.N {
		t.Fatalf("MinorFaultLat has %d samples for %d minor faults", got, sys.MinorFaults.N)
	}
	if sys.MinorFaultLat.Max() <= 0 {
		t.Fatal("minor-fault latency samples are empty")
	}
}

func TestRegistrySnapshotCoversSystem(t *testing.T) {
	sys, eng := newSys(t, 256)
	sys.Launch("app", 0, func(sp *FSProc) {
		base, _ := sys.MmapDDC(128)
		for i := uint64(0); i < 128; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
	})
	eng.Run()
	snap := sys.Registry().Snapshot()
	if n, ok := snap.Counter("fastswap.major_faults"); !ok || n != sys.MajorFaults.N {
		t.Fatalf("snapshot major_faults = %d,%v want %d", n, ok, sys.MajorFaults.N)
	}
	if n, ok := snap.Counter("link.node0.rx.bytes"); !ok || n == 0 {
		t.Fatalf("snapshot link counter = %d,%v", n, ok)
	}
	if _, ok := snap.Histogram("fastswap.minor_fault_latency"); !ok {
		t.Fatal("snapshot missing minor_fault_latency")
	}
}
