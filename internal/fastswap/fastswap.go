// Package fastswap reimplements the paper's kernel paging-based baseline
// (Fastswap, EuroSys '20) over the same fabric, memory node, and software
// MMU as DiLOS, so the two systems differ only in the ways the paper says
// they differ:
//
//   - the kernel's swap subsystem sits on the fault path: a swap cache in
//     front of the page table, swap-entry bookkeeping, and radix-tree
//     insertion (the "page alloc + swap cache mgmt" segments of Figure 1);
//   - cluster readahead reads into the swap cache WITHOUT mapping pages,
//     so every prefetched page costs a later minor fault (Table 1: 87.5 %
//     of faults on a sequential read are minor);
//   - reclamation is only partially offloaded to the dedicated background
//     thread: when the faulting core finds the free list below the direct
//     watermark it reclaims inline — including synchronous write-back of
//     dirty victims, which is what halves Fastswap's sequential-write
//     throughput in Table 2;
//   - kernel-user mode switching costs on every fault.
package fastswap

import (
	"fmt"

	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/memnode"
	"dilos/internal/mmu"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// PageSize re-exports the paging granularity.
const PageSize = pagetable.PageSize

// Costs models the Linux swap path, calibrated against Figure 1's
// breakdown of a ≈6.3 µs average Fastswap fault (fetch 46 %, exception 9 %,
// reclamation 29 %, swap-cache management and page allocation 16 %).
type Costs struct {
	KernelEntry    sim.Time // mode switch + fault-path entry beyond the hw exception
	SwapMgmt       sim.Time // swap cache alloc, swap-entry + radix bookkeeping (major)
	MinorService   sim.Time // swap cache lookup, rmap, locking, map (minor fault)
	Map            sim.Time // set_pte + flushes on the major path
	ReadaheadIssue sim.Time // per cluster page issued
	ReclaimScan    sim.Time // per frame examined during reclaim
	ReclaimUnmap   sim.Time // unmap + shootdown per evicted page
	DirectFixed    sim.Time // fixed direct-reclaim entry cost (shrink_node etc.)
	PageoutCPU     sim.Time // add_to_swap + rmap walk + pageout per dirty victim
}

// DefaultCosts returns the calibration.
func DefaultCosts() Costs {
	return Costs{
		KernelEntry:    300 * sim.Nanosecond,
		SwapMgmt:       1000 * sim.Nanosecond,
		MinorService:   2450 * sim.Nanosecond,
		Map:            250 * sim.Nanosecond,
		ReadaheadIssue: 80 * sim.Nanosecond,
		ReclaimScan:    60 * sim.Nanosecond,
		ReclaimUnmap:   350 * sim.Nanosecond,
		DirectFixed:    600 * sim.Nanosecond,
		PageoutCPU:     2200 * sim.Nanosecond,
	}
}

// Config assembles a Fastswap computing node.
type Config struct {
	CacheFrames int
	Cores       int
	RemoteBytes uint64
	Fabric      fabric.Params
	// Cluster is the swap readahead cluster size (default 8, Linux's
	// /proc/sys/vm/page-cluster default of 3 → 2³).
	Cluster int
	// OffloadPeriod is how often the dedicated reclaim thread runs.
	OffloadPeriod sim.Time
	// Tel, when set, records flight-recorder spans for every fault,
	// reclaim pass, and fabric op. nil compiles the hot-path hooks out.
	Tel *telemetry.Recorder
	// SampleEvery is the gauge sampling interval; 0 disables the sampler.
	SampleEvery sim.Time
}

// Breakdown mirrors core.Breakdown for Figure 1/6.
type Breakdown struct {
	Exception sim.Time
	SwapMgmt  sim.Time // kernel entry + swap cache + page alloc
	Fetch     sim.Time
	Map       sim.Time
	Reclaim   sim.Time // direct reclamation on the fault path
	N         int64
}

// Mean returns per-fault averages.
func (b Breakdown) Mean() (exception, swapMgmt, fetch, mapping, reclaim sim.Time) {
	if b.N == 0 {
		return
	}
	n := sim.Time(b.N)
	return b.Exception / n, b.SwapMgmt / n, b.Fetch / n, b.Map / n, b.Reclaim / n
}

// Total returns the mean total fault latency.
func (b Breakdown) Total() sim.Time {
	e, s, f, m, r := b.Mean()
	return e + s + f + m + r
}

type scEntry struct {
	frame  dram.FrameID
	op     *fabric.Op
	mapped bool
	onLRU  bool
	fresh  bool // readahead page not yet consumed: one clock second chance
}

// System is a Fastswap computing node plus memory node.
type System struct {
	Eng   *sim.Engine
	Node  *memnode.Node
	Link  *fabric.Link
	Table *pagetable.Table
	Pool  *dram.Pool
	Costs Costs
	MMUC  mmu.Costs

	qps     []*fabric.QP // per core (kernel swap path shares one QP per CPU)
	wbQP    *fabric.QP   // kswapd write-back traffic
	cluster int

	cache map[pagetable.VPN]*scEntry

	space    *placement.AddressSpace
	registry *stats.Registry
	heap     struct {
		base, size, used uint64
	}

	lowWater    int
	highWater   int
	directWater int
	offloadTick sim.Time
	needKswapd  sim.Waiter

	lastFault     pagetable.VPN
	dir           int64
	dirtyPressure bool

	MajorFaults   stats.Counter
	MinorFaults   stats.Counter
	DirectRecl    stats.Counter
	KswapdRecl    stats.Counter
	SyncWrites    stats.Counter
	FaultLat      *stats.Histogram // major-fault end-to-end latency
	MinorFaultLat *stats.Histogram // minor-fault (swap-cache hit) latency
	BD            Breakdown

	// Flight recorder (nil when Config.Tel was unset) and its sampler.
	Tel         *telemetry.Recorder
	Sam         *telemetry.Sampler
	telCore     []int
	kswapdTrack int
	sampleEvery sim.Time

	FreeG      stats.Gauge // free list vs the watermarks
	CacheUsedG stats.Gauge // frames holding page content
	SwapCacheG stats.Gauge // swap-cache entries (mapped or not)
	LowWaterG  stats.Gauge
	HighWaterG stats.Gauge

	started bool
}

// New assembles a Fastswap node.
func New(eng *sim.Engine, cfg Config) *System {
	if cfg.CacheFrames <= 0 || cfg.Cores <= 0 || cfg.RemoteBytes == 0 {
		panic("fastswap: CacheFrames, Cores and RemoteBytes are required")
	}
	if cfg.Cluster <= 0 {
		cfg.Cluster = 8
	}
	if cfg.OffloadPeriod <= 0 {
		cfg.OffloadPeriod = 400 * sim.Microsecond
	}
	node := memnode.New(cfg.RemoteBytes, 0xf457)
	link := fabric.NewLink(node, cfg.Fabric)
	s := &System{
		Eng:         eng,
		Node:        node,
		Link:        link,
		Table:       pagetable.New(),
		Pool:        dram.NewPool(cfg.CacheFrames),
		Costs:       DefaultCosts(),
		MMUC:        mmu.DefaultCosts(),
		cluster:     cfg.Cluster,
		cache:       map[pagetable.VPN]*scEntry{},
		space:       placement.New(placement.Config{Nodes: 1}),
		dir:         1,
		offloadTick: cfg.OffloadPeriod,
		MajorFaults: stats.Counter{Name: "fastswap.major_faults"},
		MinorFaults: stats.Counter{Name: "fastswap.minor_faults"},
		DirectRecl:  stats.Counter{Name: "fastswap.direct_reclaims"},
		KswapdRecl:  stats.Counter{Name: "fastswap.kswapd_reclaims"},
		SyncWrites:  stats.Counter{Name: "fastswap.sync_writes"},
		FaultLat:    stats.NewHistogram("fastswap.fault_latency"),
		MinorFaultLat: stats.NewHistogram(
			"fastswap.minor_fault_latency"),
		Tel:         cfg.Tel,
		sampleEvery: cfg.SampleEvery,
		FreeG:       stats.Gauge{Name: "fastswap.free_frames"},
		CacheUsedG:  stats.Gauge{Name: "fastswap.cache_used_frames"},
		SwapCacheG:  stats.Gauge{Name: "fastswap.swap_cache_pages"},
		LowWaterG:   stats.Gauge{Name: "fastswap.low_water"},
		HighWaterG:  stats.Gauge{Name: "fastswap.high_water"},
	}
	for c := 0; c < cfg.Cores; c++ {
		s.qps = append(s.qps, link.MustQP(fmt.Sprintf("cpu%d.swap", c), node.ProtKey))
	}
	s.wbQP = link.MustQP("kswapd.wb", node.ProtKey)
	s.lowWater = cfg.CacheFrames / 16
	if s.lowWater < 16 {
		s.lowWater = 16
	}
	s.highWater = s.lowWater * 2
	// Direct reclamation triggers below the high watermark: kswapd (the
	// dedicated reclaim core) shares the work but, as the paper observes,
	// cannot absorb all of it under sustained fault pressure, so the
	// faulting core reclaims inline on most majors — the 29 %
	// "reclamation" segment of Figure 1's average case.
	s.directWater = s.highWater
	s.LowWaterG.Set(int64(s.lowWater))
	s.HighWaterG.Set(int64(s.highWater))
	if s.Tel != nil {
		for c := 0; c < cfg.Cores; c++ {
			s.telCore = append(s.telCore, s.Tel.Track(fmt.Sprintf("core%d", c)))
		}
		s.kswapdTrack = s.Tel.Track("kswapd")
		link.Tel = s.Tel
		link.TelTrack = s.Tel.Track("fabric.node0")
	}
	s.registry = s.buildRegistry()
	return s
}

// buildRegistry registers every metric the system owns at construction.
func (s *System) buildRegistry() *stats.Registry {
	r := stats.NewRegistry()
	r.RegisterCounter(&s.MajorFaults)
	r.RegisterCounter(&s.MinorFaults)
	r.RegisterCounter(&s.DirectRecl)
	r.RegisterCounter(&s.KswapdRecl)
	r.RegisterCounter(&s.SyncWrites)
	r.RegisterHistogram(s.FaultLat)
	r.RegisterHistogram(s.MinorFaultLat)
	s.Link.RxBytes.Name = "link.node0.rx.bytes"
	s.Link.TxBytes.Name = "link.node0.tx.bytes"
	s.Link.RxOps.Name = "link.node0.rx.ops"
	s.Link.TxOps.Name = "link.node0.tx.ops"
	r.RegisterCounter(&s.Link.RxBytes)
	r.RegisterCounter(&s.Link.TxBytes)
	r.RegisterCounter(&s.Link.RxOps)
	r.RegisterCounter(&s.Link.TxOps)
	s.Node.ReadsSrv.Name = "memnode.node0.reads"
	s.Node.WritesSv.Name = "memnode.node0.writes"
	r.RegisterCounter(&s.Node.ReadsSrv)
	r.RegisterCounter(&s.Node.WritesSv)
	r.RegisterGauge(&s.FreeG)
	r.RegisterGauge(&s.CacheUsedG)
	r.RegisterGauge(&s.SwapCacheG)
	r.RegisterGauge(&s.LowWaterG)
	r.RegisterGauge(&s.HighWaterG)
	s.Link.RxBacklog.Name = "link.node0.rx.backlog_ns"
	s.Link.TxBacklog.Name = "link.node0.tx.backlog_ns"
	r.RegisterGauge(&s.Link.RxBacklog)
	r.RegisterGauge(&s.Link.TxBacklog)
	return r
}

// SampleGauges refreshes every gauge from live state. The telemetry
// sampler calls it each tick; it only reads, so enabling sampling cannot
// perturb workload timing.
func (s *System) SampleGauges(now sim.Time) {
	s.FreeG.Set(int64(s.Pool.FreeCount()))
	s.CacheUsedG.Set(int64(s.Pool.Used()))
	s.SwapCacheG.Set(int64(len(s.cache)))
	s.Link.SampleBacklog(now)
}

// Telemetry exposes the recorder and sampler for trace export (both nil
// when telemetry was not configured).
func (s *System) Telemetry() (*telemetry.Recorder, *telemetry.Sampler) {
	return s.Tel, s.Sam
}

// Registry exposes every metric the system registered at construction.
func (s *System) Registry() *stats.Registry { return s.registry }

// Start launches the dedicated reclaim thread (Fastswap's offloaded
// reclamation).
func (s *System) Start() {
	if s.started {
		panic("fastswap: Start called twice")
	}
	s.started = true
	s.Eng.GoDaemon("fastswap.kswapd", s.kswapdLoop)
	// The sampler daemon spawns last so enabling it never reorders the
	// pre-existing daemons' scheduling.
	if s.Tel != nil && s.sampleEvery > 0 {
		s.Sam = &telemetry.Sampler{Interval: s.sampleEvery, Registry: s.registry, Collect: s.SampleGauges}
		s.Sam.Start(s.Eng)
	}
}

// MmapDDC reserves a swap-backed region of `pages` pages. Layout lives in
// the shared placement substrate (single node, striped → contiguous).
func (s *System) MmapDDC(pages uint64) (uint64, error) {
	reg, err := s.space.Map(pages, func(_ int, slots uint64) (uint64, error) {
		return s.Node.AllocRange(slots)
	})
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < pages; i++ {
		vpn := reg.BaseVPN + pagetable.VPN(i)
		sl, ok := s.space.Primary(vpn)
		if !ok {
			panic("fastswap: freshly mapped vpn did not resolve")
		}
		s.Table.Set(vpn, pagetable.Remote(sl.Off/PageSize))
	}
	return reg.Base, nil
}

func (s *System) remoteOf(v pagetable.VPN) (uint64, bool) {
	sl, ok := s.space.First(v)
	if !ok {
		return 0, false
	}
	return sl.Off, true
}

// Malloc is the same region-allocator compat layer as DiLOS'.
func (s *System) Malloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	align := uint64(16)
	if n >= PageSize {
		align = PageSize
	}
	n = (n + 15) &^ 15
	used := (s.heap.used + align - 1) &^ (align - 1)
	if s.heap.size == 0 || used+n > s.heap.size {
		pages := uint64(4096)
		if need := (n + PageSize - 1) / PageSize; need > pages {
			pages = need
		}
		base, err := s.MmapDDC(pages)
		if err != nil {
			return 0, err
		}
		s.heap.base, s.heap.size, s.heap.used = base, pages*PageSize, 0
		used = 0
	}
	s.heap.used = used + n
	return s.heap.base + used, nil
}

// Free is a no-op (region allocator).
func (s *System) Free(addr, n uint64) {}
