package sim

// Lock is a virtual-time mutex for procs.
//
// Plain Go mutexes are meaningless inside the simulation: the engine runs
// exactly one proc at a time, so data races cannot happen — but *virtual
// time* overlap can. A proc that calls Advance while "holding" a naive
// held-flag lock never yields, so a second proc resumed later could enter
// the critical section at an earlier virtual instant than the first proc
// left it. Lock closes that hole by remembering the virtual time the
// section was last vacated (freeAt) and fast-forwarding each new owner's
// clock to it, serializing the critical sections on the virtual timeline
// exactly like a contended spinlock serializes wall-clock time.
//
// This is how the "wide lock" baseline in the sharding experiments models
// the cost of a single coarse page-manager lock: every fault handler pays
// the full residency of the cleaner's sweep.
type Lock struct {
	held   bool
	freeAt Time
	w      Waiter
}

// Acquire blocks p until the lock is free, then takes it. The caller's
// clock is advanced to the instant the previous owner released, so
// critical sections never overlap in virtual time.
func (l *Lock) Acquire(p *Proc) {
	for l.held {
		l.w.Wait(p)
	}
	l.held = true
	if d := l.freeAt - p.Now(); d > 0 {
		p.Advance(d)
	}
}

// TryAcquire takes the lock iff it is free right now, without blocking.
// On success the caller's clock is advanced past the previous owner's
// release like Acquire.
func (l *Lock) TryAcquire(p *Proc) bool {
	if l.held {
		return false
	}
	l.held = true
	if d := l.freeAt - p.Now(); d > 0 {
		p.Advance(d)
	}
	return true
}

// Release frees the lock and wakes one waiter (FIFO). Must be called by
// the current owner.
func (l *Lock) Release(p *Proc) {
	if !l.held {
		panic("sim: Release of unheld Lock")
	}
	l.held = false
	if p.Now() > l.freeAt {
		l.freeAt = p.Now()
	}
	l.w.WakeOne(p.Now())
}

// Held reports whether the lock is currently taken.
func (l *Lock) Held() bool { return l.held }
