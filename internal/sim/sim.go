// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. Every active component of the reproduction — CPU cores,
// the DiLOS cleaner and reclaimer daemons, prefetch engines, AIFM background
// threads — runs as a Proc with its own virtual clock. The engine resumes
// exactly one Proc at a time, always the one with the smallest wake-up time
// (ties broken by creation order), so a whole run is a pure function of its
// inputs: no wall-clock time, no host scheduling, no data races.
//
// A Proc advances its local clock freely for pure computation (Advance) and
// yields to the scheduler only at interaction points: Sleep, WaitUntil, or
// blocking on a Waiter. Shared state mutated between yields is therefore
// observed atomically by other Procs, which is the standard process-style
// DES contract.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// Seconds returns t in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Engine owns the virtual clock and the run queue of Procs.
type Engine struct {
	queue   procHeap
	procs   []*Proc       // every spawned proc (for shutdown)
	parked  chan struct{} // signalled by a Proc when it yields or finishes
	live    int           // non-daemon procs not yet finished
	nextID  int
	running bool
	now     Time // time of the most recently resumed proc (monotone)
}

// New creates an empty engine.
func New() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now reports the virtual time of the most recently scheduled Proc. It is
// only meaningful while Run is in progress or after it returns.
func (e *Engine) Now() Time { return e.now }

// Proc is a simulated thread of control with a private virtual clock.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	daemon bool

	now    Time
	wakeAt Time // valid while queued
	index  int  // heap index, -1 when not queued

	resume   chan struct{}
	started  bool
	finished bool
	aborted  bool
	fn       func(*Proc)
}

// Go registers a new process. If the engine is already running, the process
// starts at the spawning caller's discretion (start time = startAt). Procs
// created before Run starts begin at time 0 unless startAt says otherwise.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false, 0)
}

// GoAt registers a process whose first instruction executes at startAt.
func (e *Engine) GoAt(name string, startAt Time, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false, startAt)
}

// GoDaemon registers a background process. Daemons do not keep the engine
// alive: Run returns once every non-daemon process has finished, even if
// daemons are still sleeping.
func (e *Engine) GoDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true, 0)
}

func (e *Engine) spawn(name string, fn func(*Proc), daemon bool, startAt Time) *Proc {
	p := &Proc{
		eng:    e,
		id:     e.nextID,
		name:   name,
		daemon: daemon,
		now:    startAt,
		resume: make(chan struct{}),
		fn:     fn,
		index:  -1,
	}
	e.nextID++
	e.procs = append(e.procs, p)
	if !daemon {
		e.live++
	}
	p.wakeAt = startAt
	heap.Push(&e.queue, p)
	return p
}

// Run executes the simulation until every non-daemon Proc has finished.
// It panics on deadlock (live procs remain but nothing is runnable), which
// in this codebase always indicates a bug in a Waiter protocol.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.live > 0 {
		if e.queue.Len() == 0 {
			panic("sim: deadlock — live procs exist but none runnable")
		}
		p := heap.Pop(&e.queue).(*Proc)
		p.index = -1
		if p.wakeAt > e.now {
			e.now = p.wakeAt
		}
		if p.now < p.wakeAt {
			p.now = p.wakeAt
		}
		e.resumeProc(p)
	}
	// Tear down whatever is still parked (daemons sleeping or waiting):
	// their goroutines would otherwise outlive Run and pin the engine —
	// and everything it references — for the life of the process.
	for _, p := range e.procs {
		if p.started && !p.finished {
			p.aborted = true
			e.resumeProc(p)
		}
	}
}

func (e *Engine) resumeProc(p *Proc) {
	if !p.started {
		p.started = true
		go func() {
			defer func() {
				p.finished = true
				if !p.daemon {
					e.live--
				}
				e.parked <- struct{}{}
			}()
			<-p.resume
			if p.aborted {
				return
			}
			p.fn(p)
		}()
	}
	p.resume <- struct{}{}
	<-e.parked
}

// yield parks the calling Proc until the scheduler resumes it. The caller
// must already have arranged to be woken (queued in the heap or on a
// Waiter). A proc resumed only to be shut down exits here; the goroutine
// wrapper's deferred hand-off keeps the scheduler in sync.
func (p *Proc) yield() {
	p.eng.parked <- struct{}{}
	<-p.resume
	if p.aborted {
		runtime.Goexit()
	}
}

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// ID returns the engine-unique process id.
func (p *Proc) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the process-local virtual time.
func (p *Proc) Now() Time { return p.now }

// Advance models local computation: the clock moves, no rescheduling
// happens. This is the fast path used for per-access CPU cost accounting.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	p.now += d
}

// Sleep advances the clock by d and yields so other processes with earlier
// wake-up times can run.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative Sleep")
	}
	p.WaitUntil(p.now + d)
}

// Yield re-queues the process at its current time and lets anything with an
// earlier (or equal, lower-id) wake time run first.
func (p *Proc) Yield() { p.WaitUntil(p.now) }

// WaitUntil blocks the process until virtual time t (no-op if t is in the
// process's past — but it still yields, keeping scheduling fair).
func (p *Proc) WaitUntil(t Time) {
	if t > p.now {
		p.now = t
	}
	p.wakeAt = p.now
	heap.Push(&p.eng.queue, p)
	p.yield()
}

// procHeap orders by wakeAt, ties by id, so scheduling is deterministic.
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].wakeAt != h[j].wakeAt {
		return h[i].wakeAt < h[j].wakeAt
	}
	return h[i].id < h[j].id
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *procHeap) Push(x any) {
	p := x.(*Proc)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
