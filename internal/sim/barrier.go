package sim

// Barrier synchronizes N processes in virtual time: everyone leaves at the
// time the last process arrived (the multi-threaded GAPBS phases use it).
type Barrier struct {
	n       int
	arrived int
	w       Waiter
}

// NewBarrier creates a barrier for n processes.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs at least one process")
	}
	return &Barrier{n: n}
}

// Wait blocks p until all n processes have arrived. The last arriver
// releases everyone at its own (latest) time and does not block.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.w.Wake(p.Now())
		return
	}
	b.w.Wait(p)
}
