package sim

import "container/heap"

// Waiter is a broadcast condition variable in virtual time. Processes park
// on it with Wait; another process releases all of them with Wake, which
// moves each sleeper's clock forward to the waker's time (a process can
// never observe an event before it happened).
//
// The zero Waiter is ready to use.
type Waiter struct {
	waiting []*Proc
}

// Wait parks p until another process calls Wake (or WakeOne reaches it).
func (w *Waiter) Wait(p *Proc) {
	w.waiting = append(w.waiting, p)
	p.yield()
}

// Empty reports whether no process is parked on w.
func (w *Waiter) Empty() bool { return len(w.waiting) == 0 }

// Len reports how many processes are parked on w.
func (w *Waiter) Len() int { return len(w.waiting) }

// Wake releases every parked process at time `at` (typically the waker's
// Now). Sleepers whose clocks are already past `at` keep their own time.
func (w *Waiter) Wake(at Time) {
	for _, q := range w.waiting {
		release(q, at)
	}
	w.waiting = w.waiting[:0]
}

// WakeOne releases the longest-parked process, if any, and reports whether
// one was released.
func (w *Waiter) WakeOne(at Time) bool {
	if len(w.waiting) == 0 {
		return false
	}
	q := w.waiting[0]
	copy(w.waiting, w.waiting[1:])
	w.waiting = w.waiting[:len(w.waiting)-1]
	release(q, at)
	return true
}

func release(q *Proc, at Time) {
	if at > q.now {
		q.now = at
	}
	q.wakeAt = q.now
	heap.Push(&q.eng.queue, q)
}

// Event is a one-shot level-triggered flag in virtual time: once fired it
// stays fired, and waiting on a fired event returns immediately (advancing
// the waiter's clock to the fire time). It is the natural shape for "this
// RDMA op completed".
type Event struct {
	fired  bool
	at     Time
	waiter Waiter
}

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time of the Fire call (zero if not fired).
func (ev *Event) FiredAt() Time { return ev.at }

// Fire marks the event complete as of time `at` and wakes all waiters.
// Firing twice is a bug.
func (ev *Event) Fire(at Time) {
	if ev.fired {
		panic("sim: Event fired twice")
	}
	ev.fired = true
	ev.at = at
	ev.waiter.Wake(at)
}

// Wait blocks p until the event fires. If it already fired, p's clock is
// advanced to the fire time (if that is in p's future) without yielding.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		if ev.at > p.now {
			p.now = ev.at
		}
		return
	}
	ev.waiter.Wait(p)
}
