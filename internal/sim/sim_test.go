package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	e := New()
	var end Time
	e.Go("solo", func(p *Proc) {
		p.Advance(5 * Microsecond)
		p.Advance(7 * Microsecond)
		end = p.Now()
	})
	e.Run()
	if end != 12*Microsecond {
		t.Fatalf("end = %v, want 12us", end)
	}
}

func TestSleepOrdersProcs(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		p.Sleep(30)
		order = append(order, "a")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "b")
	})
	e.Go("c", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "c")
	})
	e.Run()
	want := []string{"b", "c", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBrokenByCreationOrder(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		e.Go(name, func(p *Proc) {
			p.Sleep(100)
			order = append(order, name)
		})
	}
	e.Run()
	if fmt.Sprint(order) != "[p0 p1 p2]" {
		t.Fatalf("order = %v", order)
	}
}

func TestWaiterWakeMovesClockForward(t *testing.T) {
	e := New()
	var w Waiter
	var wokenAt Time
	e.Go("sleeper", func(p *Proc) {
		w.Wait(p)
		wokenAt = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(500)
		w.Wake(p.Now())
	})
	e.Run()
	if wokenAt != 500 {
		t.Fatalf("wokenAt = %v, want 500", wokenAt)
	}
}

func TestWaiterDoesNotRewindClock(t *testing.T) {
	e := New()
	var w Waiter
	var wokenAt Time
	e.Go("late-sleeper", func(p *Proc) {
		p.Advance(1000) // already past the waker's time
		w.Wait(p)
		wokenAt = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(500)
		for w.Empty() {
			p.Sleep(100)
		}
		w.Wake(p.Now())
	})
	e.Run()
	if wokenAt != 1000 {
		t.Fatalf("wokenAt = %v, want 1000 (clock must not rewind)", wokenAt)
	}
}

func TestWakeOneIsFIFO(t *testing.T) {
	e := New()
	var w Waiter
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // park in order 0,1,2
			w.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(100)
		for i := 0; i < 3; i++ {
			w.WakeOne(p.Now())
			p.Sleep(10)
		}
	})
	e.Run()
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Fatalf("order = %v", order)
	}
}

func TestEventBeforeAndAfterFire(t *testing.T) {
	e := New()
	ev := &Event{}
	var earlyAt, lateAt Time
	e.Go("early", func(p *Proc) {
		ev.Wait(p) // waits for fire at t=100
		earlyAt = p.Now()
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(100)
		ev.Fire(p.Now())
	})
	e.Go("late", func(p *Proc) {
		p.Sleep(300)
		ev.Wait(p) // already fired; no wait, no rewind
		lateAt = p.Now()
	})
	e.Run()
	if earlyAt != 100 {
		t.Fatalf("earlyAt = %v, want 100", earlyAt)
	}
	if lateAt != 300 {
		t.Fatalf("lateAt = %v, want 300", lateAt)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double fire")
		}
	}()
	ev := &Event{}
	ev.Fire(1)
	ev.Fire(2)
}

func TestDaemonDoesNotBlockExit(t *testing.T) {
	e := New()
	ticks := 0
	e.GoDaemon("daemon", func(p *Proc) {
		for {
			p.Sleep(10)
			ticks++
			if ticks > 1000 {
				return // safety: should never get here
			}
		}
	})
	e.Go("worker", func(p *Proc) { p.Sleep(55) })
	e.Run()
	if ticks > 6 {
		t.Fatalf("daemon ran %d ticks after workers finished", ticks)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := New()
	var w Waiter
	e.Go("stuck", func(p *Proc) { w.Wait(p) })
	e.Run()
}

func TestSpawnDuringRun(t *testing.T) {
	e := New()
	var childEnd Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(100)
		e.GoAt("child", p.Now(), func(c *Proc) {
			c.Sleep(50)
			childEnd = c.Now()
		})
		p.Sleep(1)
	})
	e.Run()
	if childEnd != 150 {
		t.Fatalf("childEnd = %v, want 150", childEnd)
	}
}

func TestEngineNowIsMonotone(t *testing.T) {
	e := New()
	var observed []Time
	for i := 0; i < 5; i++ {
		d := Time((5 - i) * 10)
		e.Go("p", func(p *Proc) {
			p.Sleep(d)
			observed = append(observed, e.Now())
		})
	}
	e.Run()
	if !sort.SliceIsSorted(observed, func(i, j int) bool { return observed[i] <= observed[j] }) {
		t.Fatalf("engine Now went backwards: %v", observed)
	}
}

// Property: for any set of sleep durations, procs complete in sorted order
// of duration (ties by creation order), and the engine's final Now equals
// the maximum duration.
func TestQuickSleepOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		e := New()
		type done struct {
			idx int
			d   Time
		}
		var finished []done
		for i, r := range raw {
			i, d := i, Time(r)
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, done{i, d})
			})
		}
		e.Run()
		if len(finished) != len(raw) {
			return false
		}
		for k := 1; k < len(finished); k++ {
			a, b := finished[k-1], finished[k]
			if a.d > b.d || (a.d == b.d && a.idx > b.idx) {
				return false
			}
		}
		max := Time(0)
		for _, r := range raw {
			if Time(r) > max {
				max = Time(r)
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a run is deterministic — same program, same interleaving.
func TestQuickDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var w Waiter
		var trace []int
		for i := 0; i < 10; i++ {
			i := i
			d := Time(rng.Intn(100))
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				trace = append(trace, i)
				if i%3 == 0 {
					w.Wake(p.Now())
				} else if i%3 == 1 && i < 7 {
					w.Wait(p)
					trace = append(trace, 100+i)
				}
			})
		}
		e.GoDaemon("sweeper", func(p *Proc) {
			for {
				p.Sleep(1000)
				w.Wake(p.Now())
			}
		})
		e.Run()
		return trace
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func BenchmarkAdvance(b *testing.B) {
	e := New()
	e.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	e.Run()
}

func BenchmarkSleepSwitch(b *testing.B) {
	e := New()
	for k := 0; k < 2; k++ {
		e.Go("bench", func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				p.Sleep(1)
			}
		})
	}
	e.Run()
}

func TestBarrierReleasesAtLatestTime(t *testing.T) {
	e := New()
	b := NewBarrier(3)
	var outs []Time
	for i := 0; i < 3; i++ {
		d := Time((i + 1) * 100)
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			outs = append(outs, p.Now())
		})
	}
	e.Run()
	if len(outs) != 3 {
		t.Fatal("not everyone released")
	}
	for _, o := range outs {
		if o != 300 {
			t.Fatalf("released at %v, want 300", o)
		}
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	e := New()
	b := NewBarrier(2)
	var trace []int
	for w := 0; w < 2; w++ {
		w := w
		e.Go("w", func(p *Proc) {
			for phase := 0; phase < 3; phase++ {
				p.Sleep(Time(10 * (w + 1)))
				b.Wait(p)
				if w == 0 {
					trace = append(trace, phase)
				}
			}
		})
	}
	e.Run()
	if fmt.Sprint(trace) != "[0 1 2]" {
		t.Fatalf("phases = %v", trace)
	}
}

func TestBarrierSingleProcNeverBlocks(t *testing.T) {
	e := New()
	b := NewBarrier(1)
	done := false
	e.Go("solo", func(p *Proc) {
		for i := 0; i < 5; i++ {
			b.Wait(p)
		}
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("single-proc barrier blocked")
	}
}

func TestBarrierZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestRunShutsDownParkedDaemons(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 10; k++ {
		e := New()
		var w Waiter
		e.GoDaemon("sleeper", func(p *Proc) {
			for {
				p.Sleep(1000)
			}
		})
		e.GoDaemon("waiter", func(p *Proc) { w.Wait(p) })
		e.Go("worker", func(p *Proc) { p.Sleep(10); w.Wake(p.Now()) })
		e.Run()
	}
	// Give exiting goroutines a beat, then verify no accumulation.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked across runs: %d -> %d", before, g)
	}
}
