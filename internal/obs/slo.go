package obs

import (
	"sort"
	"strconv"

	"dilos/internal/sim"
	"dilos/internal/stats"
)

// BurnRule is one multi-window burn-rate alerting rule (the Google SRE
// shape): the alert for an objective fires when the error-budget burn
// rate exceeds MaxBurn over BOTH the long and the short window — the long
// window proves the burn is sustained, the short window makes the alert
// reset quickly once the burn stops.
type BurnRule struct {
	Long, Short sim.Time
	// MaxBurn is the burn-rate threshold: 1.0 means "spending exactly the
	// error budget", 14.4 means "the whole 30-day budget in 2 days".
	MaxBurn float64
}

// DefaultRules are the canonical fast + slow pages: 14.4x over 1h/5m and
// 6x over 6h/30m. The windows are interpreted against whatever clock the
// caller feeds Observe/Evaluate — virtual time in the simulator, wall
// time in memnoded.
func DefaultRules() []BurnRule {
	const minute = 60 * sim.Second
	return []BurnRule{
		{Long: 60 * minute, Short: 5 * minute, MaxBurn: 14.4},
		{Long: 360 * minute, Short: 30 * minute, MaxBurn: 6},
	}
}

// Objective is one latency SLO: at least Target of observations must
// complete within Budget.
type Objective struct {
	Name string
	// Budget is the per-event latency budget; an observation slower than
	// Budget consumes error budget. Zero selects 10µs.
	Budget sim.Time
	// Target is the good fraction the objective promises (e.g. 0.999).
	// Zero selects 0.999.
	Target float64
	// Rules are the burn-rate alert rules; nil selects DefaultRules.
	Rules []BurnRule
}

// sloBuckets is the ring resolution: every objective keeps one ring of
// good/bad counts whose width is maxWindow/sloBuckets, and every window
// sum is computed over the trailing ceil(window/width) buckets. One ring
// serves all four windows, so Observe touches exactly one bucket — the
// whole fault-path cost of the SLO engine is an index computation and an
// increment.
const sloBuckets = 256

// objState is one objective's live accounting.
type objState struct {
	obj    Objective
	width  sim.Time // bucket width
	good   []int64
	bad    []int64
	cur    int64 // absolute index (now/width) of the newest bucket
	goodN  int64 // cumulative
	badN   int64
	firing []bool // per rule
}

// Alert is one alert-state transition, first-class and inspectable.
type Alert struct {
	At        sim.Time
	Objective string
	Rule      int
	Firing    bool
	BurnLong  float64
	BurnShort float64
}

// Monitor evaluates latency objectives with multi-window burn-rate rules.
// It is unsynchronised (see the package comment); Observe is fault-path
// cheap and allocation-free, Evaluate is meant for a periodic daemon.
type Monitor struct {
	objs    []*objState
	journal *Journal
	alerts  []Alert

	Raised  stats.Counter // slo.alerts_raised
	Cleared stats.Counter // slo.alerts_cleared
	Bad     stats.Counter // slo.bad_events
	Firing  stats.Gauge   // slo.firing (objective-rules currently firing)
}

// NewMonitor creates a monitor. Alert transitions are appended to j as
// slo_alert events when j is non-nil.
func NewMonitor(j *Journal) *Monitor {
	return &Monitor{
		journal: j,
		Raised:  stats.Counter{Name: "slo.alerts_raised"},
		Cleared: stats.Counter{Name: "slo.alerts_cleared"},
		Bad:     stats.Counter{Name: "slo.bad_events"},
		Firing:  stats.Gauge{Name: "slo.firing"},
	}
}

// RegisterStats folds the monitor's metrics into a registry.
func (m *Monitor) RegisterStats(r *stats.Registry) {
	r.RegisterCounter(&m.Raised)
	r.RegisterCounter(&m.Cleared)
	r.RegisterCounter(&m.Bad)
	r.RegisterGauge(&m.Firing)
}

// Register adds an objective (filling zero fields with defaults) and
// returns its id for Observe.
func (m *Monitor) Register(o Objective) int {
	if o.Budget <= 0 {
		o.Budget = 10 * sim.Microsecond
	}
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = 0.999
	}
	if len(o.Rules) == 0 {
		o.Rules = DefaultRules()
	}
	var maxWin sim.Time
	for _, r := range o.Rules {
		if r.Long > maxWin {
			maxWin = r.Long
		}
		if r.Short > maxWin {
			maxWin = r.Short
		}
	}
	width := (maxWin + sloBuckets - 1) / sloBuckets
	if width <= 0 {
		width = 1
	}
	st := &objState{
		obj:    o,
		width:  width,
		good:   make([]int64, sloBuckets),
		bad:    make([]int64, sloBuckets),
		firing: make([]bool, len(o.Rules)),
	}
	m.objs = append(m.objs, st)
	return len(m.objs) - 1
}

// advance rotates the ring to the bucket containing now, zeroing buckets
// the clock skipped over.
func (st *objState) advance(now sim.Time) {
	idx := int64(now) / int64(st.width)
	if idx <= st.cur {
		return
	}
	if idx-st.cur >= sloBuckets {
		for i := range st.good {
			st.good[i], st.bad[i] = 0, 0
		}
		st.cur = idx
		return
	}
	for st.cur < idx {
		st.cur++
		slot := st.cur % sloBuckets
		st.good[slot], st.bad[slot] = 0, 0
	}
}

// Observe records one event latency against objective id. Zero
// allocation, one bucket touched.
func (m *Monitor) Observe(id int, now, lat sim.Time) {
	st := m.objs[id]
	st.advance(now)
	slot := st.cur % sloBuckets
	if lat > st.obj.Budget {
		st.bad[slot]++
		st.badN++
		m.Bad.Inc()
	} else {
		st.good[slot]++
		st.goodN++
	}
}

// burn computes the burn rate over the trailing window: the bad fraction
// divided by the error budget (1 - target). An empty window burns 0.
func (st *objState) burn(window sim.Time) float64 {
	k := int64((window + st.width - 1) / st.width)
	if k < 1 {
		k = 1
	}
	if k > sloBuckets {
		k = sloBuckets
	}
	var good, bad int64
	for i := int64(0); i < k; i++ {
		slot := (st.cur - i + sloBuckets) % sloBuckets
		good += st.good[slot]
		bad += st.bad[slot]
	}
	if good+bad == 0 {
		return 0
	}
	frac := float64(bad) / float64(good+bad)
	return frac / (1 - st.obj.Target)
}

// Evaluate re-checks every rule of every objective at time now and
// records alert transitions (journal, counters, the alert log). Call it
// periodically; detection latency is bounded by the evaluation period
// plus the short window's bucket resolution.
func (m *Monitor) Evaluate(now sim.Time) {
	firing := int64(0)
	for _, st := range m.objs {
		st.advance(now)
		for ri, rule := range st.obj.Rules {
			bl, bs := st.burn(rule.Long), st.burn(rule.Short)
			f := bl > rule.MaxBurn && bs > rule.MaxBurn
			if f {
				firing++
			}
			if f == st.firing[ri] {
				continue
			}
			st.firing[ri] = f
			if f {
				m.Raised.Inc()
			} else {
				m.Cleared.Inc()
			}
			if len(m.alerts) < 1<<14 {
				m.alerts = append(m.alerts, Alert{
					At: now, Objective: st.obj.Name, Rule: ri, Firing: f,
					BurnLong: bl, BurnShort: bs,
				})
			}
			if m.journal != nil {
				edge := "clear"
				if f {
					edge = "raise"
				}
				m.journal.Emit(now, "slo_alert",
					S("objective", st.obj.Name), S("edge", edge), I("rule", int64(ri)),
					I("burn_long_x1000", int64(bl*1000)), I("burn_short_x1000", int64(bs*1000)))
			}
		}
	}
	m.Firing.Set(firing)
}

// Alerts returns a copy of the recorded alert transitions.
func (m *Monitor) Alerts() []Alert {
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// FirstRaise returns the time of the first raised alert for the named
// objective (any rule), or false if it never fired.
func (m *Monitor) FirstRaise(objective string) (sim.Time, bool) {
	for _, a := range m.alerts {
		if a.Firing && (objective == "" || a.Objective == objective) {
			return a.At, true
		}
	}
	return 0, false
}

// AppendStatus renders the SLO block of /statusz: one line per
// objective-rule with its windows, burn rates, and alert state, in
// objective order.
func (m *Monitor) AppendStatus(dst []byte, now sim.Time) []byte {
	names := make([]int, len(m.objs))
	for i := range names {
		names[i] = i
	}
	sort.Slice(names, func(i, j int) bool { return m.objs[names[i]].obj.Name < m.objs[names[j]].obj.Name })
	for _, i := range names {
		st := m.objs[i]
		st.advance(now)
		dst = append(dst, "slo "...)
		dst = append(dst, st.obj.Name...)
		dst = append(dst, " budget="...)
		dst = append(dst, st.obj.Budget.String()...)
		dst = append(dst, " good="...)
		dst = strconv.AppendInt(dst, st.goodN, 10)
		dst = append(dst, " bad="...)
		dst = strconv.AppendInt(dst, st.badN, 10)
		dst = append(dst, '\n')
		for ri, rule := range st.obj.Rules {
			dst = append(dst, "  rule "...)
			dst = strconv.AppendInt(dst, int64(ri), 10)
			dst = append(dst, " long="...)
			dst = append(dst, rule.Long.String()...)
			dst = append(dst, " short="...)
			dst = append(dst, rule.Short.String()...)
			dst = append(dst, " burn_long="...)
			dst = strconv.AppendFloat(dst, st.burn(rule.Long), 'f', 2, 64)
			dst = append(dst, " burn_short="...)
			dst = strconv.AppendFloat(dst, st.burn(rule.Short), 'f', 2, 64)
			if st.firing[ri] {
				dst = append(dst, " FIRING"...)
			} else {
				dst = append(dst, " ok"...)
			}
			dst = append(dst, '\n')
		}
	}
	return dst
}
