package obs

import (
	"net"
	"net/http"
	"sync"

	"dilos/internal/sim"
)

// Server is the HTTP face of the plane. Publishers (the simulator's
// publisher daemon, memnoded's wall-clock collector) render pages and
// swap them in under a lock; handlers serve the stored bytes, so a
// scrape never touches live simulator state and never races it.
//
// Endpoints: /metrics (Prometheus text exposition), /healthz (200 ok /
// 503 detail), /statusz (membership, shards, tenants, breakers, SLOs),
// /journalz (the control-plane event journal as JSON lines).
type Server struct {
	mu      sync.RWMutex
	metrics []byte
	status  []byte
	journal []byte
	healthy bool
	detail  string

	ln net.Listener
}

// NewServer creates a page server that reports healthy until told
// otherwise.
func NewServer() *Server {
	return &Server{healthy: true, detail: "ok"}
}

// PublishMetrics stores a rendered /metrics page (copied).
func (s *Server) PublishMetrics(b []byte) {
	s.mu.Lock()
	s.metrics = append(s.metrics[:0], b...)
	s.mu.Unlock()
}

// PublishStatus stores a rendered /statusz page (copied).
func (s *Server) PublishStatus(b []byte) {
	s.mu.Lock()
	s.status = append(s.status[:0], b...)
	s.mu.Unlock()
}

// PublishJournal stores a rendered /journalz page (copied).
func (s *Server) PublishJournal(b []byte) {
	s.mu.Lock()
	s.journal = append(s.journal[:0], b...)
	s.mu.Unlock()
}

// SetHealth sets the /healthz verdict.
func (s *Server) SetHealth(ok bool, detail string) {
	s.mu.Lock()
	s.healthy, s.detail = ok, detail
	s.mu.Unlock()
}

// Handler returns the endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.serve(w, "text/plain; version=0.0.4; charset=utf-8", func() []byte { return s.metrics })
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		s.serve(w, "text/plain; charset=utf-8", func() []byte { return s.status })
	})
	mux.HandleFunc("/journalz", func(w http.ResponseWriter, r *http.Request) {
		s.serve(w, "application/jsonl", func() []byte { return s.journal })
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		ok, detail := s.healthy, s.detail
		s.mu.RUnlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(detail + "\n"))
	})
	return mux
}

func (s *Server) serve(w http.ResponseWriter, ctype string, page func() []byte) {
	s.mu.RLock()
	body := append([]byte(nil), page()...)
	s.mu.RUnlock()
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

// ListenAndServe binds addr and serves the endpoints in a background
// goroutine, returning the bound address (so ":0" works in tests).
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go http.Serve(ln, s.Handler())
	return ln.Addr().String(), nil
}

// Close stops the listener (idempotent; nil-safe before ListenAndServe).
func (s *Server) Close() error {
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Plane bundles the pieces a System wires through its stack. Any field
// may be nil: a System with a Plane evaluates what it has and skips the
// rest, and a nil Plane is the plane-off configuration.
type Plane struct {
	// Monitor receives per-system fault-latency observations; the System
	// registers one objective per tenant (plus the pool itself).
	Monitor *Monitor
	// Journal receives control-plane events (membership transitions,
	// breaker trips, rebalances, steals, SLO alert edges).
	Journal *Journal
	// Sink, when non-nil, receives rendered /metrics, /statusz, and
	// /journalz pages every PublishEvery.
	Sink *Server
	// Objective is the template for registered objectives (Name is
	// overridden per system); zero fields take the Monitor defaults.
	Objective Objective
	// EvalEvery is the SLO evaluation period (default 250µs virtual).
	// Detection latency is bounded below by it.
	EvalEvery sim.Time
	// PublishEvery is the page render period when Sink is set (default
	// 1ms virtual). Rendering takes a full registry snapshot — histogram
	// percentiles included — so it runs at a coarser cadence than
	// evaluation.
	PublishEvery sim.Time
}

// NewPlane builds the standard full plane: monitor + journal, no sink.
func NewPlane() *Plane {
	j := NewJournal(0)
	return &Plane{Monitor: NewMonitor(j), Journal: j}
}
