package obs

import (
	"strconv"
	"strings"

	"dilos/internal/sim"
)

// Attr is one key/value attribute of a journal event. Values are either
// integers or strings; the distinction is preserved in the JSON output.
type Attr struct {
	Key   string
	Val   int64
	Str   string
	isStr bool
}

// I makes an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// S makes a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Str: v, isStr: true} }

// Event is one control-plane event: a timestamp, a type, and ordered
// attributes. Serialisation preserves emission order of the attributes,
// so the JSONL output is byte-deterministic — no map iteration anywhere.
type Event struct {
	At    sim.Time
	Type  string
	Attrs []Attr
}

// DefaultJournalCap bounds the in-memory event ring. Control-plane events
// are rare (drains, failovers, breaker trips, rebalances, steals, alert
// edges); 64k of them is hours of simulated trouble.
const DefaultJournalCap = 1 << 16

// Journal is a bounded drop-oldest ring of control-plane events. Like
// the rest of the plane it is unsynchronised; every writer runs inside
// the single-threaded simulation (memnoded serialises around it).
type Journal struct {
	events  []Event
	start   int
	cap     int
	dropped int64
}

// NewJournal creates a journal holding up to capacity events
// (DefaultJournalCap if capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{cap: capacity}
}

// Emit appends one event, overwriting the oldest when full.
func (j *Journal) Emit(at sim.Time, typ string, attrs ...Attr) {
	e := Event{At: at, Type: typ, Attrs: attrs}
	if len(j.events) < j.cap {
		j.events = append(j.events, e)
		return
	}
	j.events[j.start] = e
	j.start++
	if j.start == len(j.events) {
		j.start = 0
	}
	j.dropped++
}

// Len returns the number of buffered events.
func (j *Journal) Len() int { return len(j.events) }

// Dropped returns how many events were overwritten.
func (j *Journal) Dropped() int64 { return j.dropped }

// Events returns the buffered events oldest-first.
func (j *Journal) Events() []Event {
	out := make([]Event, 0, len(j.events))
	out = append(out, j.events[j.start:]...)
	out = append(out, j.events[:j.start]...)
	return out
}

// appendJSONString appends a quoted, escaped JSON string.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, `\u00`...)
			const hex = "0123456789abcdef"
			dst = append(dst, hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// AppendJSON renders the event as one JSON object (no trailing newline):
// {"at_ns":N,"type":"T",...attrs in order...}.
func (e Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"at_ns":`...)
	dst = strconv.AppendInt(dst, int64(e.At), 10)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, e.Type)
	for _, a := range e.Attrs {
		dst = append(dst, ',')
		dst = appendJSONString(dst, a.Key)
		dst = append(dst, ':')
		if a.isStr {
			dst = appendJSONString(dst, a.Str)
		} else {
			dst = strconv.AppendInt(dst, a.Val, 10)
		}
	}
	return append(dst, '}')
}

// AppendJSONL renders the whole journal as JSON lines, oldest first.
func (j *Journal) AppendJSONL(dst []byte) []byte {
	n := len(j.events)
	for k := 0; k < n; k++ {
		e := j.events[(j.start+k)%n]
		dst = e.AppendJSON(dst)
		dst = append(dst, '\n')
	}
	return dst
}

// Attr returns the named attribute's value rendered as a string (integer
// attrs in decimal), or "" when absent — a convenience for tools.
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			if a.isStr {
				return a.Str
			}
			return strconv.FormatInt(a.Val, 10)
		}
	}
	return ""
}

// String renders the event human-readably: "12.3us type k=v k=v".
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.At.String())
	b.WriteByte(' ')
	b.WriteString(e.Type)
	for _, a := range e.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.isStr {
			b.WriteString(a.Str)
		} else {
			b.WriteString(strconv.FormatInt(a.Val, 10))
		}
	}
	return b.String()
}
