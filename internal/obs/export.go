// Package obs is the live observability plane: a Prometheus-text-format
// exporter over stats.Registry snapshots, a multi-window burn-rate SLO
// monitor, a structured control-plane event journal, and a small HTTP
// page server (/metrics, /healthz, /statusz, /journalz) that memnoded,
// ddcrun, and dilosbench mount.
//
// Everything here follows the repo's determinism contract: rendering a
// snapshot, evaluating an objective, or serialising the journal is a pure
// function of virtual time and observed values, so same-seed runs produce
// byte-identical exposition pages and journal files. Like stats and
// telemetry, the Monitor and Journal are unsynchronised — in the
// simulator every caller runs inside the single-threaded engine; the
// wall-clock daemons (memnoded) serialise access themselves.
package obs

import (
	"sort"
	"strconv"
	"strings"

	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// row is one exposition sample: a family, an optional label set (already
// rendered, sorted), and an integer value. All registry metrics are
// integral (counts, frames, virtual nanoseconds), which keeps the page
// byte-deterministic without any float-formatting policy.
type row struct {
	family string
	labels string // rendered `key="value",...` without braces, "" for none
	seq    int    // intra-family ordering (quantile lines before _sum/_count)
	value  int64
}

// famBlock groups the rows of one family under a TYPE line.
type famBlock struct {
	family string
	typ    string // counter | gauge | summary
	rows   []row
}

// sanitize maps a registry metric name onto a Prometheus family name:
// every character outside [a-zA-Z0-9_:] becomes '_'.
func sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitName lifts structured name segments into labels:
//
//	tenant.<t>.<rest>    -> <rest>      {tenant="<t>"}
//	link.node<K>.<rest>  -> link_<rest> {node="K"}
//	memnode.node<K>.<..> -> memnode_<..>{node="K"}
//	<..>.shard<K>.<rest> -> <..>_<rest> {shard="K"}
//
// so per-tenant, per-node, and per-shard registry families aggregate the
// way a Prometheus user expects, while the rest of the name maps 1:1.
func splitName(name string) (family, labels string) {
	var parts []string
	if rest, ok := strings.CutPrefix(name, "tenant."); ok {
		if i := strings.IndexByte(rest, '.'); i > 0 {
			parts = append(parts, `tenant="`+escapeLabel(rest[:i])+`"`)
			name = rest[i+1:]
		}
	}
	for _, pfx := range []string{"link.node", "memnode.node"} {
		if rest, ok := strings.CutPrefix(name, pfx); ok {
			if i := strings.IndexByte(rest, '.'); i > 0 {
				if _, err := strconv.Atoi(rest[:i]); err == nil {
					parts = append(parts, `node="`+rest[:i]+`"`)
					name = pfx[:strings.IndexByte(pfx, '.')] + "." + rest[i+1:]
				}
			}
		}
	}
	// A ".shard<K>." or trailing ".shard<K>" segment becomes a label.
	if i := strings.Index(name, ".shard"); i >= 0 {
		rest := name[i+len(".shard"):]
		j := strings.IndexByte(rest, '.')
		num := rest
		if j >= 0 {
			num = rest[:j]
		}
		if _, err := strconv.Atoi(num); err == nil && num != "" {
			parts = append(parts, `shard="`+num+`"`)
			if j >= 0 {
				name = name[:i] + "." + rest[j+1:]
			} else {
				name = name[:i]
			}
		}
	}
	sort.Strings(parts)
	return sanitize(name), strings.Join(parts, ",")
}

// appendRow renders one sample line.
func appendRow(dst []byte, r row) []byte {
	dst = append(dst, r.family...)
	if r.labels != "" {
		dst = append(dst, '{')
		dst = append(dst, r.labels...)
		dst = append(dst, '}')
	}
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, r.value, 10)
	return append(dst, '\n')
}

// appendBlocks sorts rows into family blocks and renders them with one
// TYPE line per family. Ordering is total: family, then labels, then seq.
func appendBlocks(dst []byte, typ string, rows []row) []byte {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].family != rows[j].family {
			return rows[i].family < rows[j].family
		}
		if rows[i].labels != rows[j].labels {
			return rows[i].labels < rows[j].labels
		}
		return rows[i].seq < rows[j].seq
	})
	last := ""
	for _, r := range rows {
		if r.family != last {
			dst = append(dst, "# TYPE "...)
			dst = append(dst, r.family...)
			dst = append(dst, ' ')
			dst = append(dst, typ...)
			dst = append(dst, '\n')
			last = r.family
		}
		dst = appendRow(dst, r)
	}
	return dst
}

// quantileRows are the summary quantiles rendered per histogram, in
// emission order.
var quantileRows = []struct {
	q   string
	get func(stats.HistogramSnap) int64
}{
	{"0.5", func(h stats.HistogramSnap) int64 { return h.P50Ns }},
	{"0.99", func(h stats.HistogramSnap) int64 { return h.P99Ns }},
	{"0.999", func(h stats.HistogramSnap) int64 { return h.P999Ns }},
}

// histEntry is one histogram resolved to its family and label set.
type histEntry struct {
	family string
	labels string
	snap   stats.HistogramSnap
}

// AppendMetrics renders snap (and, when rec is non-nil, the flight
// recorder's per-track occupancy) as a Prometheus text exposition page
// appended to dst. The output is a pure function of its inputs: families
// and label sets are emitted in sorted order and every value is integral,
// so same-seed runs produce byte-identical pages.
//
// Counters map to `<family>_total`, gauges to `<family>` (last value),
// histograms to `<family>_ns` summaries (p50/p99/p999 quantiles plus
// _sum/_count), and bandwidth series to `<family>_bytes_total`.
func AppendMetrics(dst []byte, snap stats.Snapshot, rec *telemetry.Recorder) []byte {
	var counters, gauges []row
	var hists []histEntry
	for _, c := range snap.Counters {
		fam, lb := splitName(c.Name)
		counters = append(counters, row{family: fam + "_total", labels: lb, value: c.N})
	}
	for _, b := range snap.Bandwidths {
		fam, lb := splitName(b.Name)
		counters = append(counters, row{family: fam + "_bytes_total", labels: lb, value: b.Total})
	}
	for _, g := range snap.Gauges {
		fam, lb := splitName(g.Name)
		gauges = append(gauges, row{family: fam, labels: lb, value: g.Last})
	}
	for _, h := range snap.Histograms {
		fam, lb := splitName(h.Name)
		hists = append(hists, histEntry{family: fam + "_ns", labels: lb, snap: h})
	}
	if rec != nil {
		for id, name := range rec.Tracks() {
			lb := `track="` + escapeLabel(name) + `"`
			gauges = append(gauges, row{family: "dilos_telemetry_track_spans", labels: lb,
				value: int64(len(rec.Spans(id)))})
			counters = append(counters,
				row{family: "dilos_telemetry_track_dropped_total", labels: lb, value: rec.Dropped(id)},
				row{family: "dilos_telemetry_track_sampled_out_total", labels: lb, value: rec.SampledOut(id)})
		}
	}
	dst = appendBlocks(dst, "counter", counters)
	dst = appendBlocks(dst, "gauge", gauges)
	// A summary's _sum and _count lines belong to the summary family
	// (they get no TYPE lines of their own), so histograms render as
	// whole blocks rather than through appendBlocks.
	sort.Slice(hists, func(i, j int) bool {
		if hists[i].family != hists[j].family {
			return hists[i].family < hists[j].family
		}
		return hists[i].labels < hists[j].labels
	})
	last := ""
	for _, h := range hists {
		if h.family != last {
			dst = append(dst, "# TYPE "...)
			dst = append(dst, h.family...)
			dst = append(dst, " summary\n"...)
			last = h.family
		}
		for _, q := range quantileRows {
			ql := `quantile="` + q.q + `"`
			if h.labels != "" {
				ql = h.labels + "," + ql
			}
			dst = appendRow(dst, row{family: h.family, labels: ql, value: q.get(h.snap)})
		}
		dst = appendRow(dst, row{family: h.family + "_sum", labels: h.labels,
			value: h.snap.MeanNs * int64(h.snap.Count)})
		dst = appendRow(dst, row{family: h.family + "_count", labels: h.labels,
			value: int64(h.snap.Count)})
	}
	return dst
}
