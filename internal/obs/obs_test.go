package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

func TestSplitName(t *testing.T) {
	cases := []struct {
		in, family, labels string
	}{
		{"dilos.major_faults", "dilos_major_faults", ""},
		{"tenant.a.pagemgr.cleaned", "pagemgr_cleaned", `tenant="a"`},
		{"link.node3.rx.bytes", "link_rx_bytes", `node="3"`},
		{"memnode.node0.reads", "memnode_reads", `node="0"`},
		{"pool.shard1.evictions", "pool_evictions", `shard="1"`},
		{"pool.shard7", "pool", `shard="7"`},
		{"tenant.b.link.node2.rx.ops", "link_rx_ops", `node="2",tenant="b"`},
		{"slo.firing", "slo_firing", ""},
	}
	for _, c := range cases {
		fam, lb := splitName(c.in)
		if fam != c.family || lb != c.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", c.in, fam, lb, c.family, c.labels)
		}
	}
}

// buildSnapshot assembles a small registry exercising every metric kind
// and every label-lifting path.
func buildSnapshot() stats.Snapshot {
	r := stats.NewRegistry()
	c1 := &stats.Counter{Name: "dilos.major_faults"}
	c2 := &stats.Counter{Name: "tenant.a.pagemgr.cleaned"}
	c3 := &stats.Counter{Name: "tenant.b.pagemgr.cleaned"}
	c4 := &stats.Counter{Name: "link.node0.rx.ops"}
	g := &stats.Gauge{Name: "pagemgr.free_frames"}
	h := stats.NewHistogram("dilos.fault_latency")
	r.RegisterCounter(c1)
	r.RegisterCounter(c2)
	r.RegisterCounter(c3)
	r.RegisterCounter(c4)
	r.RegisterGauge(g)
	r.RegisterHistogram(h)
	for i := 0; i < 3; i++ {
		c1.Inc()
	}
	c2.Add(7)
	c3.Add(9)
	c4.Add(41)
	g.Set(128)
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	return r.Snapshot()
}

func TestAppendMetricsDeterministic(t *testing.T) {
	a := AppendMetrics(nil, buildSnapshot(), nil)
	b := AppendMetrics(nil, buildSnapshot(), nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical snapshots rendered differently:\n%s\n---\n%s", a, b)
	}
	page := string(a)
	for _, want := range []string{
		"# TYPE dilos_major_faults_total counter\n",
		"dilos_major_faults_total 3\n",
		"# TYPE pagemgr_cleaned_total counter\n",
		"pagemgr_cleaned_total{tenant=\"a\"} 7\n",
		"pagemgr_cleaned_total{tenant=\"b\"} 9\n",
		"link_rx_ops_total{node=\"0\"} 41\n",
		"# TYPE pagemgr_free_frames gauge\n",
		"pagemgr_free_frames 128\n",
		"# TYPE dilos_fault_latency_ns summary\n",
		"dilos_fault_latency_ns{quantile=\"0.5\"}",
		"dilos_fault_latency_ns_count 100\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
	// One TYPE line per family, even with several label sets.
	if n := strings.Count(page, "# TYPE pagemgr_cleaned_total"); n != 1 {
		t.Errorf("pagemgr_cleaned_total has %d TYPE lines, want 1", n)
	}
	// The tenant label sets render in sorted order.
	if strings.Index(page, `tenant="a"`) > strings.Index(page, `tenant="b"`) {
		t.Error("tenant label sets not sorted")
	}
}

func TestAppendMetricsTelemetry(t *testing.T) {
	rec := telemetry.NewRecorder(4)
	tr := rec.Track("fault/core0")
	rec.SetPolicy(telemetry.SamplePolicy{Threshold: 10 * sim.Microsecond, KeepEvery: 4})
	for i := 0; i < 8; i++ {
		rec.Emit(tr, telemetry.Span{Start: sim.Time(i) * 100, End: sim.Time(i)*100 + 50})
	}
	rec.Emit(tr, telemetry.Span{Start: 0, End: 20 * sim.Microsecond}) // over threshold
	page := string(AppendMetrics(nil, stats.Snapshot{}, rec))
	for _, want := range []string{
		`dilos_telemetry_track_spans{track="fault/core0"} 3`,
		`dilos_telemetry_track_sampled_out_total{track="fault/core0"} 6`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
}

func TestJournalJSONL(t *testing.T) {
	j := NewJournal(0)
	j.Emit(1500, "breaker_trip", I("node", 2), I("consecutive_fails", 3))
	j.Emit(2500, "slo_alert", S("objective", "tenant.a"), S("edge", "raise"))
	j.Emit(3000, "note", S("msg", "line\nbreak \"quoted\""))
	got := string(j.AppendJSONL(nil))
	want := `{"at_ns":1500,"type":"breaker_trip","node":2,"consecutive_fails":3}
{"at_ns":2500,"type":"slo_alert","objective":"tenant.a","edge":"raise"}
{"at_ns":3000,"type":"note","msg":"line\nbreak \"quoted\""}
`
	if got != want {
		t.Fatalf("journal JSONL:\n%s\nwant:\n%s", got, want)
	}
	// Same emissions → identical bytes.
	j2 := NewJournal(0)
	j2.Emit(1500, "breaker_trip", I("node", 2), I("consecutive_fails", 3))
	j2.Emit(2500, "slo_alert", S("objective", "tenant.a"), S("edge", "raise"))
	j2.Emit(3000, "note", S("msg", "line\nbreak \"quoted\""))
	if !bytes.Equal(j.AppendJSONL(nil), j2.AppendJSONL(nil)) {
		t.Fatal("same-emission journals rendered differently")
	}
}

func TestJournalDropOldest(t *testing.T) {
	j := NewJournal(2)
	j.Emit(1, "a")
	j.Emit(2, "b")
	j.Emit(3, "c")
	ev := j.Events()
	if len(ev) != 2 || ev[0].Type != "b" || ev[1].Type != "c" {
		t.Fatalf("events = %v, want [b c]", ev)
	}
	if j.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", j.Dropped())
	}
}

func TestSLOBurnAlertLifecycle(t *testing.T) {
	rule := BurnRule{Long: 100 * sim.Microsecond, Short: 20 * sim.Microsecond, MaxBurn: 10}
	j := NewJournal(0)
	m := NewMonitor(j)
	id := m.Register(Objective{
		Name:   "pool",
		Budget: 10 * sim.Microsecond,
		Target: 0.999,
		Rules:  []BurnRule{rule},
	})

	// Healthy phase: everything within budget. No alert may fire.
	now := sim.Time(0)
	for ; now < 200*sim.Microsecond; now += sim.Microsecond {
		m.Observe(id, now, 2*sim.Microsecond)
		m.Evaluate(now)
	}
	if _, fired := m.FirstRaise("pool"); fired {
		t.Fatal("alert fired on a clean run")
	}

	// Storm: every event blows the budget. Burn = 1/(1-0.999) = 1000x.
	stormAt := now
	for ; now < 400*sim.Microsecond; now += sim.Microsecond {
		m.Observe(id, now, 50*sim.Microsecond)
		m.Evaluate(now)
	}
	raisedAt, fired := m.FirstRaise("pool")
	if !fired {
		t.Fatal("alert never fired during the storm")
	}
	if raisedAt < stormAt {
		t.Fatalf("alert at %v predates the storm at %v", raisedAt, stormAt)
	}
	// Detection latency is bounded by the long window: the long-window burn
	// must clear MaxBurn too, which takes MaxBurn/1000 of the 100µs window.
	if lat := raisedAt - stormAt; lat > rule.Long {
		t.Fatalf("detection latency %v exceeds the long window %v", lat, rule.Long)
	}

	// Recovery: good events long enough to flush both windows.
	for ; now < 700*sim.Microsecond; now += sim.Microsecond {
		m.Observe(id, now, 2*sim.Microsecond)
		m.Evaluate(now)
	}
	alerts := m.Alerts()
	last := alerts[len(alerts)-1]
	if last.Firing {
		t.Fatalf("alert still firing after recovery: %+v", last)
	}
	if m.Raised.N < 1 || m.Cleared.N < 1 {
		t.Fatalf("raised=%d cleared=%d, want >=1 each", m.Raised.N, m.Cleared.N)
	}
	// Alert edges landed in the journal.
	found := 0
	for _, e := range j.Events() {
		if e.Type == "slo_alert" {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("journal has %d slo_alert events, want >=2 (raise + clear)", found)
	}
}

func TestSLOObserveZeroAlloc(t *testing.T) {
	m := NewMonitor(nil)
	id := m.Register(Objective{Name: "pool"})
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 100
		m.Observe(id, now, 2*sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", allocs)
	}
}

func TestServerEndpoints(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.PublishMetrics([]byte("dilos_major_faults_total 3\n"))
	s.PublishStatus([]byte("node 0 state=live\n"))
	s.PublishJournal([]byte(`{"at_ns":1,"type":"a"}` + "\n"))

	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ctype := get("/metrics"); code != 200 ||
		body != "dilos_major_faults_total 3\n" || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics = %d %q %q", code, body, ctype)
	}
	if code, body, _ := get("/statusz"); code != 200 || body != "node 0 state=live\n" {
		t.Fatalf("/statusz = %d %q", code, body)
	}
	if code, body, _ := get("/journalz"); code != 200 || !strings.Contains(body, `"type":"a"`) {
		t.Fatalf("/journalz = %d %q", code, body)
	}
	if code, body, _ := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	s.SetHealth(false, "node 1 failed")
	if code, body, _ := get("/healthz"); code != 503 || body != "node 1 failed\n" {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}
}
