// Package fabric models the RDMA network between the computing node and the
// memory node: one-sided READ/WRITE verbs, vectored (scatter/gather)
// variants, per-queue-pair FIFO ordering, and full-duplex link bandwidth
// serialization. Latency constants are calibrated against the paper's
// Figure 2 (a 4 KiB read costs ≈ 0.6 µs more than a 128 B read; a stream of
// pipelined 4 KiB reads sustains ≈ 3.8 GB/s) — see params.go.
//
// The model is intentionally simple but captures the three properties the
// evaluation depends on:
//
//   - base latency vs size: complete = start + OpOverhead +
//     bytes·latency-per-byte + BaseLatency (+ vector overheads);
//   - bandwidth serialization: the link's two directions each have a
//     busy-until horizon; an op occupies its direction for OpOverhead +
//     bytes·occupancy-per-byte, which is smaller than its latency because
//     the NIC pipelines transfer stages (READ payloads arrive on RX, WRITE
//     payloads leave on TX, so cleaner write-back does not steal fetch
//     bandwidth — full duplex);
//   - FIFO per queue pair: a QP never completes ops out of order, which is
//     why DiLOS gives every module on every core its own QP (§4.5).
//
// Data movement happens at issue time (the simulation resumes exactly one
// process at a time, and every remote page slot has a single owner, so
// issue-time snapshots are indistinguishable from completion-time copies).
// A corollary the failure model leans on: a failed op's outcome is also
// known at issue time (Op.Err is set before the op "completes"), so
// daemons that must not act on unconfirmed writes can check it without
// waiting.
//
// Failure is a first-class outcome: a Link may carry a chaos.Injector
// (reliable.go wraps queue pairs with retry/backoff on top), ops complete
// with Op.Err set instead of data, and Store accesses can themselves fail
// (a real TCP backing losing its daemon, a malformed offset).
package fabric

import (
	"fmt"

	"dilos/internal/chaos"
	"dilos/internal/memnode"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// Store is the remote-memory service a link transfers against. The
// in-process memnode.Node satisfies it; internal/transport provides an
// adapter that satisfies it over a real TCP connection to cmd/memnoded, so
// the entire LibOS stack can keep its data on another machine while the
// simulation supplies the timing. Both paths can fail: bounds errors
// in-process, I/O errors over the wire.
type Store interface {
	ReadAt(off uint64, p []byte) error
	WriteAt(off uint64, p []byte) error
}

// Seg is one segment of a vectored RDMA request.
type Seg struct {
	Off uint64 // memory-node region offset
	Buf []byte // local buffer (destination for reads, source for writes)
}

// OpKind distinguishes read from write ops (direction of payload flow).
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
)

// Op is an asynchronous one-sided operation. It is complete at CompleteAt;
// a process observes completion by Wait (blocking) or Done (polling).
// A failed op carries Err: no data moved, and the completion time models
// the failure-detection (timeout) latency. Because the simulation moves
// data at issue time, Err is populated at issue time too — Wait only
// supplies the timing.
type Op struct {
	Kind       OpKind
	IssuedAt   sim.Time
	CompleteAt sim.Time
	Bytes      int
	Segs       int
	Err        error
}

// Wait blocks p until the op completes.
func (o *Op) Wait(p *sim.Proc) { p.WaitUntil(o.CompleteAt) }

// Done reports whether the op has completed as of `now`.
func (o *Op) Done(now sim.Time) bool { return now >= o.CompleteAt }

// Link is the full-duplex connection between a computing node's RNIC and a
// memory node. rx carries READ payloads toward the computing node; tx
// carries WRITE payloads away from it.
type Link struct {
	P     Params
	store Store
	key   uint32

	// NodeID names the memory node this link reaches (for the chaos
	// injector's per-node crash schedule).
	NodeID int
	// Chaos, when set, is consulted once per op and may fail, delay, or
	// stall it. With Chaos nil a Store error is a programming bug and
	// panics, preserving the pre-chaos contract for systems that never
	// opted into failure handling.
	Chaos *chaos.Injector

	rxBusy sim.Time
	txBusy sim.Time

	RxBytes   stats.Counter
	TxBytes   stats.Counter
	RxOps     stats.Counter
	TxOps     stats.Counter
	FailedOps stats.Counter

	// Doorbell-batching instrumentation (QP.Submit / QP.Coalesce).
	Batches       stats.Counter    // doorbells rung (one per Submit call)
	BatchedOps    stats.Counter    // work-queue entries posted through Submit
	CoalescedSegs stats.Counter    // segments merged into a preceding vectored op
	BatchSize     *stats.Histogram // ops per doorbell

	// Optional bandwidth series (nil disables); Figure 12 uses these.
	RxBW *stats.Bandwidth
	TxBW *stats.Bandwidth

	// Tel, when set, records one flight-recorder span per op (issue →
	// completion, Arg = bytes) and per retry backoff on TelTrack.
	Tel      *telemetry.Recorder
	TelTrack int

	// RxBacklog/TxBacklog gauge how far each direction's busy horizon
	// runs ahead of now, in ns — queueing visible to the sampler.
	RxBacklog stats.Gauge
	TxBacklog stats.Gauge
}

// NewLink connects to an in-process memory node with the given parameters.
func NewLink(node *memnode.Node, p Params) *Link {
	return NewLinkOver(node, node.ProtKey, p)
}

// NewLinkOver connects to any Store (e.g. a TCP-backed remote daemon via
// internal/transport) guarded by the given protection key.
func NewLinkOver(store Store, protKey uint32, p Params) *Link {
	return &Link{
		P:             p,
		store:         store,
		key:           protKey,
		RxBytes:       stats.Counter{Name: "link.rx.bytes"},
		TxBytes:       stats.Counter{Name: "link.tx.bytes"},
		RxOps:         stats.Counter{Name: "link.rx.ops"},
		TxOps:         stats.Counter{Name: "link.tx.ops"},
		FailedOps:     stats.Counter{Name: "link.failed.ops"},
		Batches:       stats.Counter{Name: "fabric.batch.doorbells"},
		BatchedOps:    stats.Counter{Name: "fabric.batch.ops"},
		CoalescedSegs: stats.Counter{Name: "fabric.batch.coalesced_segs"},
		BatchSize:     stats.NewHistogram("fabric.batch.size"),
		RxBacklog:     stats.Gauge{Name: "link.rx.backlog_ns"},
		TxBacklog:     stats.Gauge{Name: "link.tx.backlog_ns"},
	}
}

// SampleBacklog refreshes the backlog gauges: how much occupancy each
// direction still has queued past `now`. The telemetry sampler calls
// this every tick.
func (l *Link) SampleBacklog(now sim.Time) {
	rx, tx := l.rxBusy-now, l.txBusy-now
	if rx < 0 {
		rx = 0
	}
	if tx < 0 {
		tx = 0
	}
	l.RxBacklog.Set(int64(rx))
	l.TxBacklog.Set(int64(tx))
}

// Store returns the remote-memory service this link reaches.
func (l *Link) Store() Store { return l.store }

// Limiter rate-limits a QP's submissions: Gate charges `bytes` of work at
// `now` and returns the earliest virtual instant the op may start on the
// link. Multi-tenant systems hang one token bucket per tenant across all of
// that tenant's QPs to enforce fabric-bandwidth shares; a nil limiter is
// the pre-tenant behaviour (ops start at max(now, link busy)).
type Limiter interface {
	Gate(now sim.Time, bytes int) sim.Time
}

// QP is a queue pair. DiLOS assigns one per (core, module) so that a page
// fault's fetch is never queued behind prefetcher or cleaner traffic on the
// same software queue (§4.5). FIFO completion order is enforced per QP.
type QP struct {
	link *Link
	Name string
	key  uint32
	last sim.Time // completion horizon for FIFO ordering
	Ops  stats.Counter

	// Lim, when set, meters every op issued on this QP (including each
	// entry of a Submit batch) against a tenant's fabric-bandwidth share.
	Lim Limiter
}

// NewQP creates a queue pair bound to the link's memory node. The protection
// key must match the node's registered key — the paper's isolation mechanism
// for LibOSes sharing an RNIC.
func (l *Link) NewQP(name string, protKey uint32) (*QP, error) {
	if protKey != l.key {
		return nil, fmt.Errorf("fabric: protection key mismatch for QP %q", name)
	}
	return &QP{link: l, Name: name, key: protKey, Ops: stats.Counter{Name: "qp." + name}}, nil
}

// MustQP is NewQP for setup code where a key mismatch is a programming bug.
func (l *Link) MustQP(name string, protKey uint32) *QP {
	qp, err := l.NewQP(name, protKey)
	if err != nil {
		panic(err)
	}
	return qp
}

// Read issues a one-sided READ of len(dst) bytes from region offset off.
func (q *QP) Read(now sim.Time, off uint64, dst []byte) *Op {
	return q.readV(now, []Seg{{off, dst}})
}

// Write issues a one-sided WRITE of src to region offset off.
func (q *QP) Write(now sim.Time, off uint64, src []byte) *Op {
	return q.writeV(now, []Seg{{off, src}})
}

// ReadV issues a vectored READ. Per the paper's measurement (§6.3),
// vectored requests slow down sharply past MaxFastSegs segments; the cost
// model reflects that, and guides are expected to cap their vectors.
func (q *QP) ReadV(now sim.Time, segs []Seg) *Op { return q.readV(now, segs) }

// WriteV issues a vectored WRITE.
func (q *QP) WriteV(now sim.Time, segs []Seg) *Op { return q.writeV(now, segs) }

func (q *QP) readV(now sim.Time, segs []Seg) *Op {
	return q.issue(now, OpRead, segs, q.link.P.OpOverhead, false)
}

func (q *QP) writeV(now sim.Time, segs []Seg) *Op {
	return q.issue(now, OpWrite, segs, q.link.P.OpOverhead, false)
}

// Req is one work-queue entry of a batched submission (QP.Submit): a read
// or write over one or more segments.
type Req struct {
	Kind OpKind
	Segs []Seg
}

// Submit posts a batch of requests through a single doorbell. The first
// work-queue entry pays the full OpOverhead (MMIO doorbell + DMA setup);
// every subsequent entry arrives in the same WQE chain and pays only the
// cheaper per-WQE cost (Params.BatchWQE) — the amortization that lets Leap
// issue a whole prefetch window at once. Everything else matches per-op
// submission: chaos decisions are drawn once per op in batch order, data
// moves (and Op.Err is known) at issue time, completions keep the QP's
// FIFO order, and each direction's busy horizon advances by every op's
// occupancy. Resulting ops are appended to dst, which callers on the hot
// path reuse as scratch.
func (q *QP) Submit(now sim.Time, reqs []Req, dst []*Op) []*Op {
	if len(reqs) == 0 {
		return dst
	}
	for i, r := range reqs {
		overhead := q.link.P.OpOverhead
		if i > 0 {
			overhead = q.link.P.BatchWQE
		}
		dst = append(dst, q.issue(now, r.Kind, r.Segs, overhead, true))
	}
	q.link.Batches.Inc()
	q.link.BatchedOps.Add(int64(len(reqs)))
	if q.link.BatchSize != nil {
		q.link.BatchSize.Record(sim.Time(len(reqs)))
	}
	return dst
}

// Coalesce builds a batch from a flat list of same-kind segments, merging
// runs of adjacent entries whose remote ranges are contiguous into single
// vectored requests of at most MaxFastSegs segments (the §6.3 cap). Input
// order is preserved and the returned requests tile segs exactly — the
// i-th request covers the next len(Segs) input entries — so callers can
// map results back to their pages by walking both in order. Requests are
// appended to dst; merged segments are counted on the link.
func (q *QP) Coalesce(kind OpKind, segs []Seg, dst []Req) []Req {
	maxSegs := q.link.P.MaxFastSegs
	if maxSegs < 1 {
		maxSegs = 1
	}
	for i := 0; i < len(segs); {
		j := i + 1
		for j < len(segs) && j-i < maxSegs &&
			segs[j].Off == segs[j-1].Off+uint64(len(segs[j-1].Buf)) {
			j++
		}
		dst = append(dst, Req{Kind: kind, Segs: segs[i:j]})
		q.link.CoalescedSegs.Add(int64(j - i - 1))
		i = j
	}
	return dst
}

// issue runs one op through the full submission path: chaos verdict,
// issue-time data movement, scheduling, and link accounting. overhead is
// the op's share of the doorbell cost (the full OpOverhead for solo ops,
// BatchWQE for non-first batch entries); batched selects the cheaper
// pipelined segment occupancy of a chained WQE.
func (q *QP) issue(now sim.Time, kind OpKind, segs []Seg, overhead sim.Time, batched bool) *Op {
	bytes := 0
	for _, s := range segs {
		bytes += len(s.Buf)
	}
	dec := q.decide(now, kind == OpWrite, bytes, len(segs), overhead, batched)
	var storeErr error
	if !dec.Fail {
		// The chaos verdict precedes the data movement: a failed READ
		// delivers nothing, a failed WRITE reaches no memory.
		for _, s := range segs {
			var err error
			if kind == OpRead {
				err = q.link.store.ReadAt(s.Off, s.Buf)
			} else {
				err = q.link.store.WriteAt(s.Off, s.Buf)
			}
			if err != nil {
				storeErr = err
				break
			}
		}
	}
	busy := &q.link.rxBusy
	if kind == OpWrite {
		busy = &q.link.txBusy
	}
	earliest := now
	if q.Lim != nil && !dec.Fail {
		// Failed ops move no bytes, so they are not charged to the
		// tenant's bandwidth share.
		if g := q.Lim.Gate(now, bytes); g > earliest {
			earliest = g
		}
	}
	op := q.schedule(now, earliest, bytes, len(segs), overhead, batched, busy, dec, storeErr)
	op.Kind = kind
	if q.link.Tel != nil {
		spanKind := telemetry.KindRead
		if kind == OpWrite {
			spanKind = telemetry.KindWrite
		}
		q.link.Tel.Emit(q.link.TelTrack, telemetry.Span{
			Kind: spanKind, Start: now, End: op.CompleteAt, Arg: uint64(bytes),
		})
	}
	if kind == OpRead {
		q.link.RxOps.Inc()
	} else {
		q.link.TxOps.Inc()
	}
	if op.Err != nil {
		q.link.FailedOps.Inc()
		return op
	}
	if kind == OpRead {
		q.link.RxBytes.Add(int64(bytes))
		if q.link.RxBW != nil {
			q.link.RxBW.Add(op.CompleteAt, int64(bytes))
		}
	} else {
		q.link.TxBytes.Add(int64(bytes))
		if q.link.TxBW != nil {
			q.link.TxBW.Add(op.CompleteAt, int64(bytes))
		}
	}
	return op
}

// latSpec computes the occupancy and latency of an op (shared by the
// normal schedule and the chaos decision, which amplifies latency
// proportionally). overhead is the op's doorbell share; batched ops charge
// extra fast segments at the pipelined SegOverheadBW occupancy while their
// latency keeps the full store-and-forward SegOverhead.
func (q *QP) latSpec(bytes, segs int, overhead sim.Time, batched bool) (occ, lat sim.Time) {
	var segOcc, segLat sim.Time
	for s := 1; s < segs; s++ {
		if s < q.link.P.MaxFastSegs {
			segLat += q.link.P.SegOverhead
			if batched {
				segOcc += q.link.P.SegOverheadBW
			} else {
				segOcc += q.link.P.SegOverhead
			}
		} else {
			segLat += q.link.P.SegOverheadSlow
			segOcc += q.link.P.SegOverheadSlow
		}
	}
	occ = overhead + sim.Time(int64(bytes)*q.link.P.PicosPerByteBW/1000) + segOcc
	lat = overhead + sim.Time(int64(bytes)*q.link.P.PicosPerByte/1000) + segLat
	return occ, lat
}

// decide consults the link's chaos injector, if any.
func (q *QP) decide(now sim.Time, write bool, bytes, segs int, overhead sim.Time, batched bool) chaos.Decision {
	if q.link.Chaos == nil {
		return chaos.Decision{}
	}
	_, lat := q.latSpec(bytes, segs, overhead, batched)
	return q.link.Chaos.Decide(now, q.link.NodeID, write, bytes, lat+q.link.P.BaseLatency)
}

// schedule computes the op's completion time: it occupies the direction's
// link from max(earliest, busy horizon) for OpOverhead + transfer time
// (+ vector segment overheads), then completes after the base latency
// (+ the TCP emulation delay, if configured). earliest ≥ now carries any
// tenant-limiter delay. An injected stall pushes the QP's FIFO horizon
// first; a failed op skips the link occupancy (nothing was transferred)
// and completes with its error after the detection latency.
func (q *QP) schedule(now, earliest sim.Time, bytes, segs int, overhead sim.Time, batched bool, busy *sim.Time, dec chaos.Decision, storeErr error) *Op {
	if segs < 1 {
		panic("fabric: empty vector")
	}
	if storeErr != nil && q.link.Chaos == nil {
		// A system that never opted into failure handling must not limp
		// on silently with a poisoned op.
		panic(fmt.Sprintf("fabric: store access failed: %v", storeErr))
	}
	if dec.Stall > 0 {
		stalled := now + dec.Stall
		if stalled > q.last {
			q.last = stalled
		}
	}
	if dec.Fail {
		complete := now + dec.FailAfter
		if complete < q.last {
			complete = q.last // FIFO per QP, failures included
		}
		q.last = complete
		q.Ops.Inc()
		return &Op{IssuedAt: now, CompleteAt: complete, Bytes: bytes, Segs: segs, Err: dec.Err}
	}
	start := earliest
	if *busy > start {
		start = *busy
	}
	occ, lat := q.latSpec(bytes, segs, overhead, batched)
	// A tenant-limiter gap (earliest > now) is pacing, not wire time: the
	// busy horizon advances by the op's occupancy from its issue-order
	// position, never by the idle gap, so other tenants' ops queue only
	// behind bytes actually on the wire — not behind a throttled
	// neighbour's deferred schedule.
	occupyFrom := now
	if *busy > occupyFrom {
		occupyFrom = *busy
	}
	*busy = occupyFrom + occ
	complete := start + lat + q.link.P.BaseLatency + q.link.P.TCPExtra + dec.Extra
	if complete < q.last {
		complete = q.last // FIFO per QP
	}
	q.last = complete
	q.Ops.Inc()
	return &Op{IssuedAt: now, CompleteAt: complete, Bytes: bytes, Segs: segs, Err: storeErr}
}
