package fabric

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dilos/internal/memnode"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

func testLink(t testing.TB) (*Link, *memnode.Node) {
	t.Helper()
	node := memnode.New(64<<20, 0xd170)
	return NewLink(node, DefaultParams()), node
}

func TestReadRoundTripsData(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("test", node.ProtKey)
	off, err := node.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xab}, memnode.PageSize)
	qp.Write(0, off, want)
	got := make([]byte, memnode.PageSize)
	op := qp.Read(0, off, got)
	if !bytes.Equal(got, want) {
		t.Fatal("read data mismatch")
	}
	if op.Bytes != memnode.PageSize {
		t.Fatalf("op.Bytes = %d", op.Bytes)
	}
}

func TestProtectionKeyEnforced(t *testing.T) {
	link, node := testLink(t)
	if _, err := link.NewQP("evil", node.ProtKey+1); err == nil {
		t.Fatal("expected protection key mismatch error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustQP should panic on bad key")
		}
	}()
	link.MustQP("evil", node.ProtKey+1)
}

func TestLatencyModelMatchesFigure2(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("lat", node.ProtKey)
	off, _ := node.AllocPage()

	lat := func(size int) sim.Time {
		// fresh link horizon per measurement: use a far-future issue time
		base := sim.Time(1_000_000_000) + qp.last
		op := qp.Read(base, off, make([]byte, size))
		return op.CompleteAt - base
	}
	small := lat(128)
	big := lat(4096)
	delta := big - small
	// Paper Figure 2: ≈0.6 µs extra for 4 KiB vs 128 B.
	if delta < 500*sim.Nanosecond || delta > 700*sim.Nanosecond {
		t.Fatalf("4KiB−128B latency delta = %v, want ≈0.6us", delta)
	}
	// One-shot 4 KiB fetch should be in the 2–3.5 µs band of Figure 1.
	if big < 2*sim.Microsecond || big > 3500*sim.Nanosecond {
		t.Fatalf("4KiB read latency = %v, want 2–3.5us", big)
	}
}

func TestPipelinedPageThroughput(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("bw", node.ProtKey)
	off, _ := node.AllocPage()
	buf := make([]byte, memnode.PageSize)
	const n = 10000
	var last *Op
	for i := 0; i < n; i++ {
		last = qp.Read(0, off, buf) // all issued at t=0: fully pipelined
	}
	gbps := stats.GBps(float64(n*memnode.PageSize) / last.CompleteAt.Seconds())
	// The wire pipelines a page every ≈0.44 µs (≈9.4 GB/s): well above the
	// ≈3.7 GB/s DiLOS sustains end-to-end (Table 2), because sequential
	// read is CPU-bound on fault handling, not wire-bound.
	if gbps < 8.5 || gbps > 10.5 {
		t.Fatalf("pipelined read bandwidth = %.2f GB/s, want ≈9.4", gbps)
	}
}

func TestFullDuplexDirectionsIndependent(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("dup", node.ProtKey)
	off, _ := node.AllocPage()
	buf := make([]byte, memnode.PageSize)

	// Saturate TX with writes, then issue a read: the read must not queue
	// behind the writes.
	for i := 0; i < 1000; i++ {
		qp.Write(0, off, buf)
	}
	// Use a second QP to avoid the per-QP FIFO coupling.
	qp2 := link.MustQP("dup2", node.ProtKey)
	op := qp2.Read(0, off, buf)
	oneShot := link.P.BaseLatency + link.P.OpOverhead +
		sim.Time(int64(len(buf))*link.P.PicosPerByte/1000)
	if op.CompleteAt != oneShot {
		t.Fatalf("read delayed by TX traffic: complete=%v, want %v", op.CompleteAt, oneShot)
	}
	_ = qp
}

func TestSameDirectionSerializes(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("ser", node.ProtKey)
	off, _ := node.AllocPage()
	buf := make([]byte, memnode.PageSize)
	op1 := qp.Read(0, off, buf)
	op2 := qp.Read(0, off, buf)
	if op2.CompleteAt <= op1.CompleteAt {
		t.Fatal("second read must complete after first")
	}
	occ := link.P.OpOverhead + sim.Time(int64(len(buf))*link.P.PicosPerByteBW/1000)
	if got := op2.CompleteAt - op1.CompleteAt; got != occ {
		t.Fatalf("pipelined spacing = %v, want occupancy %v", got, occ)
	}
}

func TestQPFIFO(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("fifo", node.ProtKey)
	off, _ := node.AllocPage()
	big := qp.Read(0, off, make([]byte, 4096))
	// A tiny read issued immediately after on the same QP must not
	// complete before the big one.
	small := qp.Read(1, off, make([]byte, 8))
	if small.CompleteAt < big.CompleteAt {
		t.Fatalf("QP reordered completions: small=%v big=%v", small.CompleteAt, big.CompleteAt)
	}
}

func TestVectoredSegmentCosts(t *testing.T) {
	link, node := testLink(t)
	qp := link.MustQP("vec", node.ProtKey)
	off, _ := node.AllocPage()
	seg := func(n int) []Seg {
		segs := make([]Seg, n)
		for i := range segs {
			segs[i] = Seg{Off: off + uint64(i*64), Buf: make([]byte, 64)}
		}
		return segs
	}
	lat := func(n int) sim.Time {
		base := sim.Time(1_000_000_000) * sim.Time(n+1)
		op := qp.ReadV(base, seg(n))
		return op.CompleteAt - base
	}
	l1, l3, l4 := lat(1), lat(3), lat(4)
	fastStep := (l3 - l1) / 2
	slowStep := l4 - l3
	if slowStep <= fastStep*2 {
		t.Fatalf("vector slowdown past 3 segments not steep: fast=%v slow=%v", fastStep, slowStep)
	}
}

func TestTCPEmulationDelay(t *testing.T) {
	node := memnode.New(4<<20, 1)
	rdma := NewLink(node, DefaultParams())
	tcp := NewLink(node, TCPParams())
	off, _ := node.AllocPage()
	buf := make([]byte, 4096)
	r := rdma.MustQP("r", 1).Read(0, off, buf)
	tc := tcp.MustQP("t", 1).Read(0, off, buf)
	extra := tc.CompleteAt - r.CompleteAt
	want := CyclesToTime(TCPCycles)
	if extra != want {
		t.Fatalf("TCP extra = %v, want %v (14k cycles @ 2.3GHz)", extra, want)
	}
	if want < 6*sim.Microsecond || want > 6200*sim.Nanosecond {
		t.Fatalf("TCP delay calibration off: %v", want)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	link, node := testLink(t)
	link.RxBW = stats.NewBandwidth("rx", sim.Millisecond)
	qp := link.MustQP("bw", node.ProtKey)
	off, _ := node.AllocPage()
	qp.Read(0, off, make([]byte, 4096))
	qp.Write(0, off, make([]byte, 128))
	if link.RxBytes.N != 4096 || link.TxBytes.N != 128 {
		t.Fatalf("byte counters rx=%d tx=%d", link.RxBytes.N, link.TxBytes.N)
	}
	if link.RxBW.Total() != 4096 {
		t.Fatalf("rx bandwidth total = %d", link.RxBW.Total())
	}
}

// Property: completion is never earlier than issue + base latency + own
// occupancy, and link byte counters conserve the sum of op sizes.
func TestQuickCompletionBounds(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 || len(sizes) > 200 {
			return true
		}
		node := memnode.New(32<<20, 9)
		link := NewLink(node, DefaultParams())
		qp := link.MustQP("q", 9)
		off, _ := node.AllocPage()
		rng := rand.New(rand.NewSource(seed))
		now := sim.Time(0)
		var sum int64
		for _, s := range sizes {
			size := int(s)%4096 + 1
			now += sim.Time(rng.Intn(2000))
			var op *Op
			if rng.Intn(2) == 0 {
				op = qp.Read(now, off, make([]byte, size))
			} else {
				op = qp.Write(now, off, make([]byte, size))
				sum += 0
			}
			minOcc := link.P.OpOverhead + sim.Time(int64(size)*link.P.PicosPerByte/1000)
			if op.CompleteAt < now+link.P.BaseLatency+minOcc {
				return false
			}
			sum += int64(size)
		}
		return link.RxBytes.N+link.TxBytes.N == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-QP completions are monotone non-decreasing regardless of
// op sizes and issue gaps.
func TestQuickQPFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 500 {
			return true
		}
		node := memnode.New(32<<20, 3)
		link := NewLink(node, DefaultParams())
		qp := link.MustQP("q", 3)
		off, _ := node.AllocPage()
		now := sim.Time(0)
		prev := sim.Time(0)
		for i, s := range sizes {
			size := int(s)%4096 + 1
			now += sim.Time(i % 7)
			op := qp.Read(now, off, make([]byte, size))
			if op.CompleteAt < prev {
				return false
			}
			prev = op.CompleteAt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemnodeAllocFree(t *testing.T) {
	node := memnode.New(1<<20, 0)
	var offs []uint64
	for {
		off, err := node.AllocPage()
		if err != nil {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) != (2<<20)/memnode.PageSize { // rounded up to one huge page
		t.Fatalf("allocated %d pages", len(offs))
	}
	seen := map[uint64]bool{}
	for _, o := range offs {
		if seen[o] {
			t.Fatalf("duplicate page offset %d", o)
		}
		seen[o] = true
	}
	node.WriteAt(offs[0], []byte{1, 2, 3})
	node.FreePage(offs[0])
	off, err := node.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	node.ReadAt(off, buf)
	if buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
		t.Fatal("recycled page not scrubbed")
	}
}

func TestMemnodeHugePages(t *testing.T) {
	node := memnode.New(3<<20, 0)
	if node.HugePages() != 2 {
		t.Fatalf("huge pages = %d, want 2 (3MiB rounds to 4MiB)", node.HugePages())
	}
}

func TestSubmitAmortizesDoorbell(t *testing.T) {
	const n = 8
	mkReqs := func(node *memnode.Node) []Req {
		reqs := make([]Req, n)
		for i := range reqs {
			off, _ := node.AllocPage()
			reqs[i] = Req{Kind: OpRead, Segs: []Seg{{Off: off, Buf: make([]byte, 4096)}}}
		}
		return reqs
	}
	perLink, perNode := testLink(t)
	perReqs := mkReqs(perNode)
	var perLast sim.Time
	for _, r := range perReqs {
		op := perLink.MustQP("q", perNode.ProtKey).readV(0, r.Segs)
		perLast = op.CompleteAt
	}
	batchLink, batchNode := testLink(t)
	ops := batchLink.MustQP("q", batchNode.ProtKey).Submit(0, mkReqs(batchNode), nil)
	batchLast := ops[n-1].CompleteAt
	want := sim.Time(n-1) * (perLink.P.OpOverhead - perLink.P.BatchWQE)
	if perLast-batchLast != want {
		t.Fatalf("batch saved %v, want %v (n-1 doorbells)", perLast-batchLast, want)
	}
	if batchLink.Batches.N != 1 || batchLink.BatchedOps.N != n {
		t.Fatalf("counters: doorbells=%d ops=%d", batchLink.Batches.N, batchLink.BatchedOps.N)
	}
}

// Property: Submit preserves per-QP FIFO (completions monotone in
// submission order, across batches and interleaved solo ops) and the
// link's byte counters conserve the sum of all submitted segment sizes.
func TestQuickSubmitFIFOConservation(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		if len(sizes) == 0 || len(sizes) > 300 {
			return true
		}
		node := memnode.New(64<<20, 7)
		link := NewLink(node, DefaultParams())
		qp := link.MustQP("q", 7)
		off, _ := node.AllocRange(256)
		rng := rand.New(rand.NewSource(seed))
		now, prev := sim.Time(0), sim.Time(0)
		var sum int64
		i := 0
		for i < len(sizes) {
			now += sim.Time(rng.Intn(3000))
			batch := rng.Intn(7) + 1
			if batch > len(sizes)-i {
				batch = len(sizes) - i
			}
			var reqs []Req
			for _, s := range sizes[i : i+batch] {
				size := int(s)%4096 + 1
				kind := OpRead
				if rng.Intn(2) == 0 {
					kind = OpWrite
				}
				reqs = append(reqs, Req{Kind: kind, Segs: []Seg{{Off: off, Buf: make([]byte, size)}}})
				sum += int64(size)
			}
			i += batch
			var ops []*Op
			if rng.Intn(4) == 0 && len(reqs) == 1 {
				ops = []*Op{qp.readV(now, reqs[0].Segs)} // interleave a solo op
			} else {
				ops = qp.Submit(now, reqs, nil)
			}
			for _, op := range ops {
				if op.CompleteAt < prev {
					return false
				}
				prev = op.CompleteAt
			}
		}
		return link.RxBytes.N+link.TxBytes.N == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Coalesce tiles its input exactly — requests cover the input
// segments in order, no vector exceeds the fast-path cap, only truly
// contiguous neighbours merge, and the merged-segment counter matches.
func TestQuickCoalesceTiles(t *testing.T) {
	f := func(gaps []bool) bool {
		if len(gaps) == 0 || len(gaps) > 200 {
			return true
		}
		node := memnode.New(16<<20, 5)
		link := NewLink(node, DefaultParams())
		qp := link.MustQP("q", 5)
		segs := make([]Seg, len(gaps))
		off := uint64(0)
		for i, gap := range gaps {
			if gap {
				off += 8192 // break contiguity
			}
			segs[i] = Seg{Off: off, Buf: make([]byte, 4096)}
			off += 4096
		}
		reqs := qp.Coalesce(OpRead, segs, nil)
		k := 0
		for _, r := range reqs {
			if len(r.Segs) < 1 || len(r.Segs) > link.P.MaxFastSegs {
				return false
			}
			for j, s := range r.Segs {
				if s.Off != segs[k].Off {
					return false
				}
				if j > 0 && s.Off != r.Segs[j-1].Off+uint64(len(r.Segs[j-1].Buf)) {
					return false
				}
				k++
			}
		}
		if k != len(segs) {
			return false
		}
		return link.CoalescedSegs.N == int64(len(segs)-len(reqs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSubmit measures the host-side cost of posting an 8-op doorbell
// batch with scratch reuse — the prefetcher's steady-state pattern. The
// only allocations should be the ops themselves.
func BenchmarkSubmit(b *testing.B) {
	node := memnode.New(64<<20, 2)
	link := NewLink(node, DefaultParams())
	qp := link.MustQP("q", 2)
	off, _ := node.AllocRange(8)
	reqs := make([]Req, 8)
	bufs := make([][]byte, 8)
	for i := range reqs {
		bufs[i] = make([]byte, 4096)
		reqs[i] = Req{Kind: OpRead, Segs: []Seg{{Off: off + uint64(i)*4096, Buf: bufs[i]}}}
	}
	ops := make([]*Op, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = qp.Submit(sim.Time(i)*sim.Millisecond, reqs, ops[:0])
	}
	_ = ops
}

// BenchmarkCoalesce measures vector-building over a 32-page contiguous
// dirty run — the cleaner's sweep shape. Zero allocations after warmup.
func BenchmarkCoalesce(b *testing.B) {
	node := memnode.New(64<<20, 2)
	link := NewLink(node, DefaultParams())
	qp := link.MustQP("q", 2)
	off, _ := node.AllocRange(32)
	segs := make([]Seg, 32)
	for i := range segs {
		segs[i] = Seg{Off: off + uint64(i)*4096, Buf: make([]byte, 4096)}
	}
	reqs := make([]Req, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs = qp.Coalesce(OpWrite, segs, reqs[:0])
	}
	_ = reqs
}

// gateAt is a fixed-schedule Limiter for tests.
type gateAt struct{ at sim.Time }

func (g gateAt) Gate(now sim.Time, bytes int) sim.Time {
	if g.at > now {
		return g.at
	}
	return now
}

func TestLimiterPacingDoesNotReserveWire(t *testing.T) {
	link, node := testLink(t)
	off, _ := node.AllocPage()
	buf := make([]byte, memnode.PageSize)

	// A throttled QP issues an op at t=0 that its limiter defers far into
	// the future. The op itself must honour the gate...
	slow := link.MustQP("slow", node.ProtKey)
	slow.Lim = gateAt{at: 500 * sim.Microsecond}
	deferred := slow.Read(0, off, buf)
	if deferred.CompleteAt < 500*sim.Microsecond {
		t.Fatalf("gated op completed at %v, before its pacing slot", deferred.CompleteAt)
	}

	// ...but the idle gap is not wire time: an unthrottled tenant's op
	// issued a moment later sees only the deferred op's real occupancy,
	// not a horizon parked at the pacing slot.
	fast := link.MustQP("fast", node.ProtKey)
	op := fast.Read(sim.Microsecond, off, buf)
	occ := link.P.OpOverhead + sim.Time(int64(len(buf))*link.P.PicosPerByteBW/1000)
	oneShot := link.P.BaseLatency + link.P.OpOverhead +
		sim.Time(int64(len(buf))*link.P.PicosPerByte/1000)
	worst := sim.Microsecond + occ + oneShot
	if op.CompleteAt > worst {
		t.Fatalf("op behind a paced neighbour completed at %v, want <= %v", op.CompleteAt, worst)
	}
}
