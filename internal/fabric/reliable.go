package fabric

import (
	"dilos/internal/chaos"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// RetryPolicy bounds a ReliableQP's persistence: up to Attempts issues of
// the op, sleeping an exponentially growing backoff (Base doubling up to
// Cap, with jitter) between them, but never re-issuing once Budget virtual
// time has elapsed since the first attempt.
type RetryPolicy struct {
	Attempts int
	Base     sim.Time
	Cap      sim.Time
	Budget   sim.Time
}

// DefaultRetryPolicy absorbs transient loss (a few failed attempts cost
// tens of microseconds) while giving up quickly enough that the caller's
// replica failover — not the retry loop — handles a dead node.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Attempts: 4,
		Base:     5 * sim.Microsecond,
		Cap:      80 * sim.Microsecond,
		Budget:   500 * sim.Microsecond,
	}
}

// RetryStats counts the retry loop's outcomes. One struct may be shared by
// many ReliableQPs (e.g. all fault-handler QPs) so the registry shows the
// stack-wide totals.
type RetryStats struct {
	Retries  stats.Counter // re-issues after a failed attempt
	Timeouts stats.Counter // ops abandoned because the budget expired
	GaveUp   stats.Counter // ops abandoned after exhausting attempts
}

// NewRetryStats names the counters under a prefix (e.g. "fetch" yields
// "retry.fetch.retries").
func NewRetryStats(prefix string) *RetryStats {
	return &RetryStats{
		Retries:  stats.Counter{Name: "retry." + prefix + ".retries"},
		Timeouts: stats.Counter{Name: "retry." + prefix + ".timeouts"},
		GaveUp:   stats.Counter{Name: "retry." + prefix + ".gaveup"},
	}
}

// RegisterStats folds the counters into a registry.
func (st *RetryStats) RegisterStats(r *stats.Registry) {
	r.RegisterCounter(&st.Retries)
	r.RegisterCounter(&st.Timeouts)
	r.RegisterCounter(&st.GaveUp)
}

// ReliableQP wraps a queue pair with blocking retry semantics: each call
// issues the op, waits for completion, and on failure backs off and
// re-issues under the policy. The jitter source is a seeded chaos.Rand so
// retry timing is as reproducible as the faults that provoke it.
//
// Unlike the raw QP's async API, these calls block the invoking process —
// retry is inherently sequential. Callers that overlap a reliable op with
// other work should structure the overlap around the call.
type ReliableQP struct {
	QP  *QP
	Pol RetryPolicy
	St  *RetryStats
	Rng *chaos.Rand
}

// NewReliableQP wraps qp with the default policy.
func NewReliableQP(qp *QP, st *RetryStats, rng *chaos.Rand) *ReliableQP {
	return &ReliableQP{QP: qp, Pol: DefaultRetryPolicy(), St: st, Rng: rng}
}

// Read performs a reliable READ, blocking p until success or the policy is
// exhausted.
func (r *ReliableQP) Read(p *sim.Proc, off uint64, dst []byte) error {
	return r.do(p, func(now sim.Time) *Op { return r.QP.Read(now, off, dst) })
}

// Write performs a reliable WRITE.
func (r *ReliableQP) Write(p *sim.Proc, off uint64, src []byte) error {
	return r.do(p, func(now sim.Time) *Op { return r.QP.Write(now, off, src) })
}

// ReadV performs a reliable vectored READ.
func (r *ReliableQP) ReadV(p *sim.Proc, segs []Seg) error {
	return r.do(p, func(now sim.Time) *Op { return r.QP.ReadV(now, segs) })
}

// WriteV performs a reliable vectored WRITE.
func (r *ReliableQP) WriteV(p *sim.Proc, segs []Seg) error {
	return r.do(p, func(now sim.Time) *Op { return r.QP.WriteV(now, segs) })
}

// Do runs an arbitrary issue function under the retry policy — for callers
// whose op shape varies per attempt (e.g. a vectored fetch rebuilt against
// a different replica's base offset) or who must publish each attempt's Op
// for other processes to observe.
func (r *ReliableQP) Do(p *sim.Proc, issue func(now sim.Time) *Op) error {
	return r.do(p, issue)
}

func (r *ReliableQP) do(p *sim.Proc, issue func(now sim.Time) *Op) error {
	pol := r.Pol
	if pol.Attempts < 1 {
		pol.Attempts = 1
	}
	deadline := p.Now() + pol.Budget
	backoff := pol.Base
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		op := issue(p.Now())
		op.Wait(p)
		if op.Err == nil {
			return nil
		}
		lastErr = op.Err
		if attempt == pol.Attempts-1 {
			break
		}
		// Half fixed, half jittered: spreads synchronized retriers without
		// ever collapsing the wait to zero.
		sleep := backoff/2 + jitter(r.Rng, backoff/2)
		if pol.Budget > 0 && p.Now()+sleep >= deadline {
			if r.St != nil {
				r.St.Timeouts.Inc()
			}
			return lastErr
		}
		if r.St != nil {
			r.St.Retries.Inc()
		}
		if l := r.QP.link; l.Tel != nil {
			l.Tel.Emit(l.TelTrack, telemetry.Span{
				Kind: telemetry.KindRetry, Start: p.Now(), End: p.Now() + sleep,
				Arg: uint64(attempt + 1),
			})
		}
		p.Sleep(sleep)
		backoff *= 2
		if pol.Cap > 0 && backoff > pol.Cap {
			backoff = pol.Cap
		}
	}
	if r.St != nil {
		r.St.GaveUp.Inc()
	}
	return lastErr
}

func jitter(rng *chaos.Rand, max sim.Time) sim.Time {
	if rng == nil {
		return 0
	}
	return rng.Jitter(max)
}
