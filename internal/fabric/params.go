package fabric

import "dilos/internal/sim"

// Params are the fabric cost-model constants. The defaults are calibrated
// against the paper's measurements on ConnectX-5 100 GbE RoCE:
//
//   - Figure 2: fetching a 4 KiB page costs only ≈ 0.6 µs more than a 128 B
//     object. With PicosPerByte = 150 (0.15 ns/B), the transfer-time delta
//     between 4096 B and 128 B is (4096−128)·0.15 ns ≈ 0.595 µs. ✓
//   - Figure 1: the "4 KiB fetch" segment of a Fastswap fault is ≈ 2.8 µs
//     (46 % of ≈ 6.2 µs). One-shot 4 KiB read here: 1.6 µs base + 0.45 µs
//     op overhead + 0.61 µs transfer ≈ 2.66 µs. ✓
//   - Table 2: DiLOS with prefetching sustains 3.74 GB/s sequential read —
//     i.e. ≈ 1.07 µs per page, which on a 100 GbE link is CPU-bound, not
//     wire-bound. The link itself pipelines a 4 KiB page every
//     OpOverhead + transfer ≈ 0.1 + 0.61 ≈ 0.71 µs, leaving the
//     fault-handling software costs as the sequential-read bottleneck,
//     exactly as in the paper's testbed. Latency-per-byte and
//     occupancy-per-byte are separate constants because RNICs pipeline
//     transfer stages: a 4 KiB read takes ≈ 2.7 µs end to end, yet the
//     link sustains a page every OpOverhead + 4096·82 ps ≈ 0.44 µs
//     (≈ 9.4 GB/s of payload, under 100 GbE's 12.5 GB/s raw). ✓
//   - §6.2 footnote 2: AIFM's TCP path is 14,000 cycles slower than RDMA
//     per 4 KiB read; at the testbed's 2.3 GHz that is ≈ 6.09 µs.
//   - §6.3: "vectorized RDMA has a significant slowdown when its vector is
//     longer than three", hence the two-tier segment overhead.
type Params struct {
	BaseLatency     sim.Time // propagation + NIC processing, per op
	OpOverhead      sim.Time // per-op cost (doorbell, WQE, DMA setup) — both latency and occupancy
	PicosPerByte    int64    // per-byte *latency* (store-and-forward through DMA/PCIe/wire)
	PicosPerByteBW  int64    // per-byte *link occupancy* (pipelined throughput limit)
	SegOverhead     sim.Time // per extra segment, segments 2..MaxFastSegs
	SegOverheadSlow sim.Time // per extra segment beyond MaxFastSegs
	MaxFastSegs     int      // vector length at which slowdown becomes steep
	TCPExtra        sim.Time // additional completion delay (TCP emulation)

	// BatchWQE is the per-work-queue-entry cost of every op after the first
	// in a doorbell-batched submission (QP.Submit). The first op of a batch
	// pays the full OpOverhead (MMIO doorbell + DMA setup); subsequent
	// entries arrive in the same WQE chain and only pay the NIC's per-WQE
	// processing — the amortization Leap and Clio build their wins on.
	BatchWQE sim.Time
	// SegOverheadBW is the link-occupancy cost per extra fast segment of a
	// batched vectored op: the NIC streams chained SGEs back to back, so
	// occupancy grows by only the gather-DMA setup, while end-to-end latency
	// still pays the full SegOverhead store-and-forward per segment.
	SegOverheadBW sim.Time
}

// DefaultParams returns the RDMA (RoCE 100 GbE) calibration.
func DefaultParams() Params {
	return Params{
		BaseLatency:     2000 * sim.Nanosecond,
		OpOverhead:      100 * sim.Nanosecond,
		PicosPerByte:    150,
		PicosPerByteBW:  82, // ≈12.2 GB/s of payload per direction (100 GbE)
		SegOverhead:     200 * sim.Nanosecond,
		SegOverheadSlow: 1000 * sim.Nanosecond,
		MaxFastSegs:     3,
		TCPExtra:        0,
		BatchWQE:        40 * sim.Nanosecond,
		SegOverheadBW:   20 * sim.Nanosecond,
	}
}

// TCPCycles is the extra cost of AIFM's TCP data path per completion,
// measured by the paper as 14,000 cycles on the 2.3 GHz testbed CPU.
const TCPCycles = 14000

// TestbedGHz is the evaluation testbed's CPU frequency (Xeon E5-2670 v3).
const TestbedGHz = 2.3

// TCPParams returns the calibration with the paper's TCP emulation delay
// (+14,000 cycles ≈ 6.09 µs per completion) applied.
func TCPParams() Params {
	p := DefaultParams()
	p.TCPExtra = CyclesToTime(TCPCycles)
	return p
}

// CyclesToTime converts testbed CPU cycles to virtual time.
func CyclesToTime(cycles int64) sim.Time {
	return sim.Time(float64(cycles) / TestbedGHz)
}
