// Package memnode models the memory node of a disaggregated pair: a large,
// mostly-passive pool of DRAM registered with the RNIC and served entirely
// by one-sided RDMA (the paper's §5 "Memory node"). The node itself runs no
// per-request software — requests are satisfied by the (simulated) NIC — so
// the only active code here is region allocation, performed once on the
// control path at setup time.
//
// The region is carved into 4 KiB pages handed out by AllocPage/FreePage.
// Like the paper's memory node we account the region in 2 MiB huge pages,
// which is what lets the RNIC cache the whole mapping table.
package memnode

import (
	"fmt"
	"sync/atomic"

	"dilos/internal/stats"
)

// PageSize is the transfer granularity of the paging systems.
const PageSize = 4096

// HugePageSize is the backing granularity of the registered region.
const HugePageSize = 2 << 20

// Node is a memory node with one registered RDMA region.
type Node struct {
	mem      []byte
	free     []uint64 // free page offsets, LIFO
	next     uint64   // bump pointer for never-allocated pages
	allocs   int64
	inUse    atomic.Int64 // atomic: the transport server reads it while serving
	ProtKey  uint32       // RDMA protection key for the region (checked by the fabric)
	ReadsSrv stats.Counter
	WritesSv stats.Counter
}

// New creates a node with `size` bytes of registered memory (rounded up to
// whole huge pages) guarded by the given protection key.
func New(size uint64, protKey uint32) *Node {
	if size == 0 {
		panic("memnode: zero-size region")
	}
	hp := (size + HugePageSize - 1) / HugePageSize
	return &Node{
		mem:      make([]byte, hp*HugePageSize),
		ProtKey:  protKey,
		ReadsSrv: stats.Counter{Name: "memnode.reads"},
		WritesSv: stats.Counter{Name: "memnode.writes"},
	}
}

// Size returns the registered region size in bytes.
func (n *Node) Size() uint64 { return uint64(len(n.mem)) }

// Key returns the region's protection key (satisfies core.Backing).
func (n *Node) Key() uint32 { return n.ProtKey }

// HugePages returns the number of 2 MiB pages backing the region.
func (n *Node) HugePages() int { return len(n.mem) / HugePageSize }

// PagesInUse returns the number of currently allocated 4 KiB pages.
func (n *Node) PagesInUse() int64 { return n.inUse.Load() }

// AllocPage reserves one 4 KiB page and returns its region offset.
// Pages come back zeroed (freshly registered memory is zero; recycled
// pages are scrubbed on free).
func (n *Node) AllocPage() (uint64, error) {
	n.allocs++
	n.inUse.Add(1)
	if k := len(n.free); k > 0 {
		off := n.free[k-1]
		n.free = n.free[:k-1]
		return off, nil
	}
	if n.next+PageSize > uint64(len(n.mem)) {
		n.allocs--
		n.inUse.Add(-1)
		return 0, fmt.Errorf("memnode: out of memory (%d bytes registered)", len(n.mem))
	}
	off := n.next
	n.next += PageSize
	return off, nil
}

// AllocRange reserves n contiguous pages (for a disaggregated region whose
// remote slots are addressed as base + pageIndex·PageSize) and returns the
// base offset. Ranges come only from the bump pointer, never the free list.
func (n *Node) AllocRange(pages uint64) (uint64, error) {
	size := pages * PageSize
	if n.next+size > uint64(len(n.mem)) {
		return 0, fmt.Errorf("memnode: out of memory for %d-page range (%d bytes registered, %d used)",
			pages, len(n.mem), n.next)
	}
	off := n.next
	n.next += size
	n.allocs += int64(pages)
	n.inUse.Add(int64(pages))
	return off, nil
}

// FreePage returns a page to the free list and scrubs it.
func (n *Node) FreePage(off uint64) {
	n.check(off, PageSize)
	if off%PageSize != 0 {
		panic("memnode: FreePage of unaligned offset")
	}
	clear(n.mem[off : off+PageSize])
	n.free = append(n.free, off)
	n.inUse.Add(-1)
}

// ReadAt copies region bytes [off, off+len(p)) into p. This is the
// one-sided READ service path used by the fabric. Out-of-range access
// returns an error rather than panicking: on the served (transport) path a
// malformed request must not crash the daemon.
func (n *Node) ReadAt(off uint64, p []byte) error {
	if err := n.CheckRange(off, uint64(len(p))); err != nil {
		return err
	}
	copy(p, n.mem[off:])
	n.ReadsSrv.Inc()
	return nil
}

// WriteAt copies p into the region at off — the one-sided WRITE path.
func (n *Node) WriteAt(off uint64, p []byte) error {
	if err := n.CheckRange(off, uint64(len(p))); err != nil {
		return err
	}
	copy(n.mem[off:], p)
	n.WritesSv.Inc()
	return nil
}

// CopyOut copies region bytes [off, off+len(p)) into p without touching
// the served-op counters. This is the concurrent data path: the transport
// server calls it from many connections at once under its own region
// sharding and counts served ops with its own atomics; the stats.Counter
// fields above stay single-writer (the simulator's).
func (n *Node) CopyOut(off uint64, p []byte) error {
	if err := n.CheckRange(off, uint64(len(p))); err != nil {
		return err
	}
	copy(p, n.mem[off:])
	return nil
}

// CopyIn copies p into the region at off — CopyOut's write twin.
func (n *Node) CopyIn(off uint64, p []byte) error {
	if err := n.CheckRange(off, uint64(len(p))); err != nil {
		return err
	}
	copy(n.mem[off:], p)
	return nil
}

// CheckRange validates that [off, off+length) lies inside the registered
// region, guarding against uint64 overflow in the sum.
func (n *Node) CheckRange(off, length uint64) error {
	size := uint64(len(n.mem))
	if length > size || off > size-length {
		return fmt.Errorf("memnode: access [%d,+%d) outside region of %d bytes",
			off, length, size)
	}
	return nil
}

// check is the in-process guard for control-path programming errors
// (FreePage of a bogus offset): those still panic.
func (n *Node) check(off, length uint64) {
	if err := n.CheckRange(off, length); err != nil {
		panic(err.Error())
	}
}
