package memnode

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocPageRecyclesScrubbed(t *testing.T) {
	n := New(1<<20, 0xa)
	a, err := n.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	n.WriteAt(a, []byte{1, 2, 3})
	n.FreePage(a)
	b, _ := n.AllocPage()
	if b != a {
		t.Fatalf("free list not LIFO: %d vs %d", b, a)
	}
	got := make([]byte, 3)
	n.ReadAt(b, got)
	if !bytes.Equal(got, []byte{0, 0, 0}) {
		t.Fatal("recycled page not scrubbed")
	}
}

func TestAllocRangeContiguousAndDisjoint(t *testing.T) {
	n := New(1<<20, 0xa)
	a, err := n.AllocRange(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AllocRange(4)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+4*PageSize {
		t.Fatalf("ranges overlap or gap: %d %d", a, b)
	}
	if n.PagesInUse() != 8 {
		t.Fatalf("in use = %d", n.PagesInUse())
	}
	if _, err := n.AllocRange(1 << 20); err == nil {
		t.Fatal("oversized range accepted")
	}
}

func TestHugePageRounding(t *testing.T) {
	n := New(1, 0xa) // 1 byte rounds to one 2 MiB huge page
	if n.HugePages() != 1 || n.Size() != HugePageSize {
		t.Fatalf("huge pages = %d size = %d", n.HugePages(), n.Size())
	}
}

func TestKeyAccessor(t *testing.T) {
	if New(1<<20, 0xbeef).Key() != 0xbeef {
		t.Fatal("Key() mismatch")
	}
}

func TestOutOfBoundsReturnsError(t *testing.T) {
	n := New(1<<20, 0xa)
	if err := n.ReadAt(n.Size()-1, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := n.WriteAt(n.Size(), []byte{1}); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	// Offsets that would overflow off+len must be rejected, not wrap.
	if err := n.ReadAt(^uint64(0)-2, make([]byte, 8)); err == nil {
		t.Fatal("overflowing read accepted")
	}
	if err := n.CheckRange(0, n.Size()); err != nil {
		t.Fatalf("full-region access rejected: %v", err)
	}
}

func TestUnalignedFreePanics(t *testing.T) {
	n := New(1<<20, 0xa)
	n.AllocPage()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.FreePage(17)
}

// Property: the region behaves like a flat byte array under random
// write/read pairs.
func TestQuickRegionSemantics(t *testing.T) {
	n := New(1<<20, 0xa)
	ref := make([]byte, n.Size())
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := uint64(off) % (n.Size() - uint64(len(data)))
		n.WriteAt(o, data)
		copy(ref[o:], data)
		got := make([]byte, len(data))
		n.ReadAt(o, got)
		return bytes.Equal(got, ref[o:int(o)+len(data)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
