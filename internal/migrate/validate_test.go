package migrate

import (
	"strings"
	"testing"

	"dilos/internal/sim"
)

func TestTuningValidate(t *testing.T) {
	cases := []struct {
		name string
		tun  Tuning
		want string // error substring, "" = valid
	}{
		{"zero value", Tuning{}, ""},
		{"watermark disabled", Tuning{Watermark: 0}, ""},
		{"watermark at one", Tuning{Watermark: 1}, ""},
		{"watermark typical", Tuning{Watermark: 0.1}, ""},
		{"watermark negative", Tuning{Watermark: -0.5}, "Watermark"},
		{"watermark above one", Tuning{Watermark: 1.01}, "Watermark"},
		{"negative batch", Tuning{BatchPages: -1}, "BatchPages"},
		{"negative interval", Tuning{Interval: -sim.Millisecond}, "Interval"},
		{"negative rounds", Tuning{MaxRounds: -1}, "MaxRounds"},
	}
	for _, tc := range cases {
		err := tc.tun.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
