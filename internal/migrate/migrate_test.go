package migrate

import (
	"encoding/binary"
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/memnode"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/sim"
)

// harness wires an engine over raw memnodes — no core system, so the
// engine's protocol is exercised in isolation.
type harness struct {
	eng   *sim.Engine
	space *placement.AddressSpace
	nodes []*memnode.Node
	links []*fabric.Link
	qps   []*fabric.QP
	e     *Engine
}

func newHarness(t *testing.T, nodeCount, replicas int, tun Tuning) *harness {
	t.Helper()
	h := &harness{eng: sim.New()}
	h.space = placement.New(placement.Config{Nodes: nodeCount, Replicas: replicas})
	for i := 0; i < nodeCount; i++ {
		h.addBacking()
	}
	h.e = New(h.eng, Config{
		Space:      h.space,
		QP:         func(n int) *fabric.QP { return h.qps[n] },
		AllocSlots: func(n int, slots uint64) (uint64, error) { return h.nodes[n].AllocRange(slots) },
		Tuning:     tun,
	})
	h.e.Start()
	return h
}

func (h *harness) addBacking() {
	n := memnode.New(64<<20, 0xd170)
	l := fabric.NewLinkOver(n, n.Key(), fabric.DefaultParams())
	l.NodeID = len(h.nodes)
	h.nodes = append(h.nodes, n)
	h.links = append(h.links, l)
	h.qps = append(h.qps, l.MustQP("migrate", n.Key()))
}

// mapAndFill maps pages and stamps every replica slot with its VPN so
// content can be verified after moves.
func (h *harness) mapAndFill(t *testing.T, pages uint64) placement.Region {
	t.Helper()
	reg, err := h.space.Map(pages, func(node int, slots uint64) (uint64, error) {
		return h.nodes[node].AllocRange(slots)
	})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	var buf [PageSize]byte
	for i := uint64(0); i < pages; i++ {
		v := reg.BaseVPN + pagetable.VPN(i)
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		slots, _ := h.space.AllSlots(v)
		for _, sl := range slots {
			if err := h.nodes[sl.Node].WriteAt(sl.Off, buf[:]); err != nil {
				t.Fatalf("fill: %v", err)
			}
		}
	}
	return reg
}

// verify checks every page resolves off `bannedNode` (-1 to skip) and
// that each replica slot holds the page's stamp.
func (h *harness) verify(t *testing.T, reg placement.Region, bannedNode int) {
	t.Helper()
	var buf [PageSize]byte
	for i := uint64(0); i < reg.Pages; i++ {
		v := reg.BaseVPN + pagetable.VPN(i)
		slots, ok := h.space.AllSlots(v)
		if !ok || len(slots) == 0 {
			t.Fatalf("page %d lost its slots", i)
		}
		for _, sl := range slots {
			if sl.Node == bannedNode {
				t.Fatalf("page %d still resolves to node %d", i, bannedNode)
			}
			if err := h.nodes[sl.Node].ReadAt(sl.Off, buf[:]); err != nil {
				t.Fatalf("read back page %d: %v", i, err)
			}
			if got := binary.LittleEndian.Uint64(buf[:]); got != uint64(v) {
				t.Fatalf("page %d on node %d: stamp %#x, want %#x", i, sl.Node, got, uint64(v))
			}
		}
	}
}

// run drives the simulation until cond holds or the virtual deadline
// passes.
func (h *harness) run(t *testing.T, deadline sim.Time, cond func() bool) {
	t.Helper()
	ok := false
	h.eng.Go("driver", func(p *sim.Proc) {
		for p.Now() < deadline {
			if cond() {
				ok = true
				return
			}
			p.Sleep(50 * sim.Microsecond)
		}
	})
	h.eng.Run()
	if !ok {
		t.Fatalf("condition not reached by %v", deadline)
	}
}

func TestDrainEvacuatesNode(t *testing.T) {
	h := newHarness(t, 3, 1, Tuning{})
	reg := h.mapAndFill(t, 256)
	occBefore := h.space.Occupancy(2)
	if occBefore == 0 {
		t.Fatal("node 2 hosts nothing before the drain")
	}
	if err := h.e.Drain(2); err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.run(t, 100*sim.Millisecond, func() bool { return h.space.State(2) == placement.Removed })
	if occ := h.space.Occupancy(2); occ != 0 {
		t.Fatalf("drained node still hosts %d slots", occ)
	}
	if h.e.PagesMoved.N != occBefore {
		t.Fatalf("moved %d pages, want %d", h.e.PagesMoved.N, occBefore)
	}
	h.verify(t, reg, 2)
	// The evacuated slots spread across the survivors.
	if h.space.Occupancy(0) == 0 || h.space.Occupancy(1) == 0 {
		t.Fatalf("lopsided evacuation: occ0=%d occ1=%d", h.space.Occupancy(0), h.space.Occupancy(1))
	}
}

func TestDrainReplicatedKeepsDistinctNodes(t *testing.T) {
	h := newHarness(t, 3, 2, Tuning{})
	reg := h.mapAndFill(t, 128)
	if err := h.e.Drain(1); err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.run(t, 100*sim.Millisecond, func() bool { return h.space.State(1) == placement.Removed })
	h.verify(t, reg, 1)
	for i := uint64(0); i < reg.Pages; i++ {
		slots, _ := h.space.AllSlots(reg.BaseVPN + pagetable.VPN(i))
		if len(slots) != 2 || slots[0].Node == slots[1].Node {
			t.Fatalf("page %d replicas collapsed onto one node: %v", i, slots)
		}
	}
}

func TestNodeJoinRebalances(t *testing.T) {
	h := newHarness(t, 2, 1, Tuning{})
	reg := h.mapAndFill(t, 256)
	h.addBacking()
	if id := h.space.AddNode(); id != 2 {
		t.Fatalf("new node id %d, want 2", id)
	}
	// The join flagged a rebalance; wait for it to settle.
	h.run(t, 200*sim.Millisecond, func() bool {
		return h.e.Idle() && h.space.Occupancy(2) > 0
	})
	h.verify(t, reg, -1)
	// Within the default watermark of the live average.
	total := h.space.Occupancy(0) + h.space.Occupancy(1) + h.space.Occupancy(2)
	avg := float64(total) / 3
	for n := 0; n < 3; n++ {
		if f := float64(h.space.Occupancy(n)); f > avg*(1+DefaultWatermark)+1 {
			t.Fatalf("node %d occupancy %v exceeds watermark around %v", n, f, avg)
		}
	}
	if h.e.Rebalances.N == 0 {
		t.Fatal("no rebalance batches recorded")
	}
}

func TestDrainRejectsRemovedAndUnknown(t *testing.T) {
	h := newHarness(t, 3, 1, Tuning{})
	h.mapAndFill(t, 16)
	if err := h.e.Drain(7); err == nil {
		t.Fatal("drain of unknown node succeeded")
	}
	if err := h.e.Drain(2); err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.run(t, 100*sim.Millisecond, func() bool { return h.space.State(2) == placement.Removed })
	if err := h.e.Drain(2); err == nil {
		t.Fatal("drain of removed node succeeded")
	}
}
