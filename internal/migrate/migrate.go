// Package migrate is the elastic-pool migration engine: a background
// daemon that moves live remote pages between memory nodes over the
// batched fabric path (fabric.QP.Submit/Coalesce), driven by three
// operations on a mutable placement.AddressSpace — Drain (evacuate a
// node so it can be removed), node join (rebalance toward an empty
// node), and watermark-triggered Rebalance (even out per-node
// occupancy).
//
// # Copy-then-flip
//
// Migration coexists with the live fault path, the cleaner, and
// re-replication without locks, leaning on two simulator invariants:
// fabric ops move data (and learn their error) at issue time, and code
// between yields runs atomically. Each page move runs rounds of:
//
//  1. reset the page's written-during-copy flag (placement tracks it:
//     any WriteSlots resolution during the copy sets it);
//  2. read the page from its first readable replica (yields);
//  3. in one no-yield window: if the page is resident in a local frame,
//     take the frame's bytes (always freshest); otherwise, if the flag
//     is set, a write-back raced the copy — restart the round; else the
//     read bytes are current. Issue the write to the reserved
//     destination slot (error known at issue time) and, if it
//     succeeded, flip the page's replica set atomically
//     (placement.CompleteMigrate installs the forwarding entry).
//
// Reads keep resolving to the old slot until the flip, write-backs keep
// landing there too, and the flip happens only after bytes at least as
// fresh as every acknowledged write have been pushed to the new slot —
// so no dirty data is ever lost, and chaos killing either endpoint
// mid-copy just fails the round: the engine retries from another
// replica, or aborts the move cleanly and re-collects the page later.
package migrate

import (
	"fmt"

	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
)

// PageSize re-exports the paging granularity.
const PageSize = placement.PageSize

// DefaultWatermark is the occupancy-imbalance fraction used for
// node-join rebalances when Tuning.Watermark is unset: the engine moves
// pages until no live node exceeds the live-node average by more than
// this fraction.
const DefaultWatermark = 0.10

// Tuning is the engine's knob set — the part of its configuration that
// belongs in core.Config (wiring lives in Config).
type Tuning struct {
	// BatchPages is the number of page moves issued per engine batch
	// (one doorbell per source node, one per destination node). 0 → 32.
	BatchPages int
	// Interval is the idle poll period between batches — it paces the
	// engine so migration traffic never saturates the fabric. 0 → 20 µs.
	Interval sim.Time
	// Watermark, when positive, turns on continuous auto-rebalancing:
	// whenever the most-loaded live node exceeds the live average by
	// more than this fraction, pages flow to the least-loaded node.
	// Zero leaves only explicit drains and node-join rebalances.
	Watermark float64
	// MaxRounds bounds copy retries per page per batch (write-back
	// races, chaos-failed ops). Exhausted moves abort cleanly and the
	// page is re-collected later. 0 → 8.
	MaxRounds int
}

func (t Tuning) withDefaults() Tuning {
	if t.BatchPages <= 0 {
		t.BatchPages = 32
	}
	if t.Interval <= 0 {
		t.Interval = 20 * sim.Microsecond
	}
	if t.MaxRounds <= 0 {
		t.MaxRounds = 8
	}
	return t
}

// Validate rejects out-of-range knobs.
func (t Tuning) Validate() error {
	if t.BatchPages < 0 {
		return fmt.Errorf("migrate: BatchPages must be >= 0, got %d", t.BatchPages)
	}
	if t.Interval < 0 {
		return fmt.Errorf("migrate: Interval must be >= 0, got %d", t.Interval)
	}
	if t.Watermark != 0 && (t.Watermark <= 0 || t.Watermark > 1) {
		return fmt.Errorf("migrate: Watermark must be 0 (disabled) or in (0,1], got %g", t.Watermark)
	}
	if t.MaxRounds < 0 {
		return fmt.Errorf("migrate: MaxRounds must be >= 0, got %d", t.MaxRounds)
	}
	return nil
}

// Config wires an Engine to its host system.
type Config struct {
	// Space is the placement substrate the engine mutates.
	Space *placement.AddressSpace
	// QP returns the migration queue pair for a memory node (its own
	// comm module, so copies never head-of-line-block fault fetches).
	QP func(node int) *fabric.QP
	// LocalContent copies page v's resident frame into buf and reports
	// true, or reports false when the page is not Local. It must not
	// yield — the engine calls it inside the no-yield flip window.
	LocalContent func(v pagetable.VPN, buf []byte) bool
	// AllocSlots reserves `slots` fresh page slots on a node's backing
	// and returns the base offset — destination capacity for moves.
	AllocSlots func(node int, slots uint64) (uint64, error)
	// Tel, when set, records one KindMigrate span per batch on TelTrack.
	Tel      *telemetry.Recorder
	TelTrack int
	// Tuning holds the knobs (zero values → defaults).
	Tuning Tuning
}

// job is one pending replica move. ref indexes the engine's attached
// address spaces: every page belongs to exactly one space (the host's, or
// one tenant's), and all its placement operations go through that space.
type job struct {
	ref  int
	vpn  pagetable.VPN
	k    int
	src  placement.Slot
	dst  placement.Slot
	buf  []byte
	op   *fabric.Op
	done bool
	dead bool
}

// spaceRef is one address space the engine migrates pages for, with its
// owner's resident-frame probe.
type spaceRef struct {
	sp    *placement.AddressSpace
	local func(v pagetable.VPN, buf []byte) bool
}

// Engine is the migration daemon. All its methods run on the simulation
// thread; Drain and RequestRebalance only enqueue work — the daemon
// performs it.
type Engine struct {
	eng   *sim.Engine
	space *placement.AddressSpace // primary space: drives the node state machine
	refs  []spaceRef              // all spaces (primary first, tenants after)
	cfg   Config
	t     Tuning

	draining    []int  // drain queue, FIFO
	wantDrained []bool // per node: drain requested (re-asserted after recovery)
	rebalance   bool   // explicit rebalance pass requested (node join)

	free [][]uint64 // per-node recycled destination slots
	pend []int64    // per-node moves planned this collect pass

	bufs    [][]byte
	jobs    []job
	segs    []fabric.Seg
	segJobs []int
	reqs    []fabric.Req
	ops     []*fabric.Op
	waits   []*fabric.Op

	reg *stats.Registry // set by RegisterStats; late nodes add gauges here

	// Counters: pages/bytes flipped, copy rounds restarted by racing
	// write-backs, failed ops, moves aborted after MaxRounds, drains
	// started/completed, rebalance batches.
	PagesMoved   stats.Counter
	BytesMoved   stats.Counter
	CopyRestarts stats.Counter
	MoveFails    stats.Counter
	Stranded     stats.Counter
	Drains       stats.Counter
	DrainsDone   stats.Counter
	Rebalances   stats.Counter
	// MoveLat records per-batch wall time (issue to last completion).
	MoveLat *stats.Histogram
	// InFlightG gauges pages mid-copy; occG gauges per-node occupancy.
	InFlightG stats.Gauge
	occG      []stats.Gauge
}

// New builds an engine over the space. Call RegisterStats and Start to
// wire it in.
func New(eng *sim.Engine, cfg Config) *Engine {
	if cfg.Space == nil || cfg.QP == nil || cfg.AllocSlots == nil {
		panic("migrate: Config.Space, QP and AllocSlots are required")
	}
	t := cfg.Tuning.withDefaults()
	e := &Engine{
		eng:          eng,
		space:        cfg.Space,
		cfg:          cfg,
		t:            t,
		PagesMoved:   stats.Counter{Name: "migrate.pages_moved"},
		BytesMoved:   stats.Counter{Name: "migrate.bytes_moved"},
		CopyRestarts: stats.Counter{Name: "migrate.copy_restarts"},
		MoveFails:    stats.Counter{Name: "migrate.move_fails"},
		Stranded:     stats.Counter{Name: "migrate.stranded"},
		Drains:       stats.Counter{Name: "migrate.drains"},
		DrainsDone:   stats.Counter{Name: "migrate.drains_done"},
		Rebalances:   stats.Counter{Name: "migrate.rebalances"},
		MoveLat:      stats.NewHistogram("migrate.batch_latency"),
		InFlightG:    stats.Gauge{Name: "migrate.inflight"},
	}
	e.refs = []spaceRef{{sp: cfg.Space, local: cfg.LocalContent}}
	e.bufs = make([][]byte, t.BatchPages)
	for i := range e.bufs {
		e.bufs[i] = make([]byte, PageSize)
	}
	e.ensureNodes()
	cfg.Space.OnStateChange(e.onState)
	return e
}

// AttachSpace adds a tenant's address space to the engine: drains and
// rebalances then also move that space's pages, keeping its placement in
// step with the shared pool's membership. The space must span the same
// memory nodes as the primary space, and its resident-frame probe (may be
// nil) must not yield. The host mirrors node states into tenant spaces, so
// the engine only drives the primary space's state machine.
func (e *Engine) AttachSpace(sp *placement.AddressSpace, local func(v pagetable.VPN, buf []byte) bool) {
	if sp.Nodes() != e.space.Nodes() {
		panic(fmt.Sprintf("migrate: attached space spans %d nodes, engine has %d", sp.Nodes(), e.space.Nodes()))
	}
	e.refs = append(e.refs, spaceRef{sp: sp, local: local})
}

// occupancy sums node n's replica slots across every attached space.
func (e *Engine) occupancy(n int) int64 {
	var o int64
	for _, r := range e.refs {
		o += r.sp.Occupancy(n)
	}
	return o
}

// RegisterStats folds the engine's metrics into a registry, including a
// per-node occupancy gauge (`migrate.node<i>.occupancy`); nodes added
// later register theirs on join.
func (e *Engine) RegisterStats(r *stats.Registry) {
	e.reg = r
	r.RegisterCounter(&e.PagesMoved)
	r.RegisterCounter(&e.BytesMoved)
	r.RegisterCounter(&e.CopyRestarts)
	r.RegisterCounter(&e.MoveFails)
	r.RegisterCounter(&e.Stranded)
	r.RegisterCounter(&e.Drains)
	r.RegisterCounter(&e.DrainsDone)
	r.RegisterCounter(&e.Rebalances)
	r.RegisterHistogram(e.MoveLat)
	r.RegisterGauge(&e.InFlightG)
	for i := range e.occG {
		r.RegisterGauge(&e.occG[i])
	}
}

// Start launches the engine daemon.
func (e *Engine) Start() {
	e.eng.GoDaemon("migrate.engine", e.loop)
}

// Drain queues node for evacuation: the node goes Draining (it keeps
// serving reads and writes but joins no new regions), the engine moves
// every replica slot it hosts to other live nodes, and once empty the
// node is Removed. Draining an already Failed node is legal — pages are
// then copied from their surviving replicas. A drain interrupted by a
// crash is re-asserted when the node recovers.
func (e *Engine) Drain(node int) error {
	if node < 0 || node >= e.space.Nodes() {
		return fmt.Errorf("migrate: no such node %d", node)
	}
	switch st := e.space.State(node); st {
	case placement.Removed:
		return fmt.Errorf("migrate: node %d is already removed", node)
	case placement.Live:
		if err := e.space.SetState(node, placement.Draining); err != nil {
			return err
		}
		for _, r := range e.refs[1:] {
			_ = r.sp.SetState(node, placement.Draining)
		}
	case placement.Draining, placement.Failed, placement.Syncing:
		// Draining: re-queue is a no-op below. Failed/Syncing: evacuate
		// from surviving replicas; the state flips to Removed at the end.
	}
	e.ensureNodes()
	if !e.wantDrained[node] {
		e.wantDrained[node] = true
		e.draining = append(e.draining, node)
		e.Drains.Inc()
	}
	return nil
}

// RequestRebalance asks the daemon to run rebalance batches until
// per-node occupancy is within the watermark (Tuning.Watermark, or
// DefaultWatermark when unset). Node joins trigger this automatically.
func (e *Engine) RequestRebalance() { e.rebalance = true }

// Idle reports that the engine has no queued or in-flight work.
func (e *Engine) Idle() bool {
	if len(e.draining) != 0 || e.rebalance {
		return false
	}
	for _, r := range e.refs {
		if r.sp.MigrationsInFlight() != 0 {
			return false
		}
	}
	return true
}

// SampleGauges refreshes the sampler-visible gauges from live state.
func (e *Engine) SampleGauges() {
	inflight := 0
	for _, r := range e.refs {
		inflight += r.sp.MigrationsInFlight()
	}
	e.InFlightG.Set(int64(inflight))
	for i := range e.occG {
		e.occG[i].Set(e.occupancy(i))
	}
}

// onState tracks membership changes: node joins extend the per-node
// slices and pull pages toward the empty node; an external drain cancel
// (Draining→Live not initiated by the engine) drops the queued drain.
func (e *Engine) onState(node int, from, to placement.State) {
	e.ensureNodes()
	if from == placement.Draining && to == placement.Live {
		e.wantDrained[node] = false
	}
	if from == placement.Removed && to == placement.Live {
		e.rebalance = true
	}
}

// ensureNodes grows the per-node slices to the space's node count.
func (e *Engine) ensureNodes() {
	for n := len(e.wantDrained); n < e.space.Nodes(); n++ {
		e.wantDrained = append(e.wantDrained, false)
		e.free = append(e.free, nil)
		e.pend = append(e.pend, 0)
		e.occG = append(e.occG, stats.Gauge{Name: fmt.Sprintf("migrate.node%d.occupancy", n)})
		if e.reg != nil {
			e.reg.RegisterGauge(&e.occG[n])
		}
	}
}

func (e *Engine) loop(p *sim.Proc) {
	for {
		e.step(p)
		// Sleep after busy steps too: the gap between batches is what
		// keeps migration traffic from saturating the fabric against the
		// fault path (ext7 measures the drain-window p99 this buys).
		p.Sleep(e.t.Interval)
	}
}

// step performs one unit of work; false means idle (the loop sleeps).
func (e *Engine) step(p *sim.Proc) bool {
	// Re-assert drains interrupted by a crash/recovery cycle, and prune
	// externally cancelled ones.
	for node, want := range e.wantDrained {
		if want && e.space.State(node) == placement.Live {
			_ = e.space.SetState(node, placement.Draining)
			for _, r := range e.refs[1:] {
				_ = r.sp.SetState(node, placement.Draining)
			}
		}
	}
	keep := e.draining[:0]
	for _, n := range e.draining {
		if e.wantDrained[n] {
			keep = append(keep, n)
		}
	}
	e.draining = keep

	if len(e.draining) > 0 {
		node := e.draining[0]
		if jobs := e.collectDrain(node, e.t.BatchPages); len(jobs) > 0 {
			e.runBatch(p, jobs)
			return true
		}
		if e.occupancy(node) == 0 {
			// Draining→Removed, or Failed→Removed for a node that died
			// mid-drain and was evacuated from its replicas. A node caught
			// mid-recovery (Syncing) cannot be removed yet — keep the drain
			// queued; step re-asserts Draining once it lands back on Live.
			if err := e.space.SetState(node, placement.Removed); err == nil {
				for _, r := range e.refs[1:] {
					if err := r.sp.SetState(node, placement.Removed); err != nil {
						// The occupancy sum above covered every space, so a
						// tenant refusing removal means its state diverged
						// from the primary's — a wiring bug, not a race.
						panic(fmt.Sprintf("migrate: tenant space stuck on node %d: %v", node, err))
					}
				}
				e.DrainsDone.Inc()
				e.wantDrained[node] = false
				e.draining = e.draining[1:]
				return true
			}
			return false
		}
		// Pages remain but none can move right now (no readable source
		// or no eligible destination); wait for chaos/health to settle.
		return false
	}
	if e.rebalance || e.t.Watermark > 0 {
		if jobs := e.collectRebalance(e.t.BatchPages); len(jobs) > 0 {
			e.Rebalances.Inc()
			e.runBatch(p, jobs)
			return true
		}
		e.rebalance = false
	}
	return false
}

// chooseDest picks the least-loaded Live node hosting no replica of the
// page (ties to the lowest id), counting moves already planned this
// pass so a batch spreads across destinations. -1 when none qualifies.
func (e *Engine) chooseDest(slots []placement.Slot) int {
	best, bestLoad := -1, int64(0)
	for n := 0; n < e.space.Nodes(); n++ {
		if e.space.State(n) != placement.Live {
			continue
		}
		hosts := false
		for _, s := range slots {
			if s.Node == n {
				hosts = true
				break
			}
		}
		if hosts {
			continue
		}
		load := e.occupancy(n) + e.pend[n]
		if best == -1 || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// collectDrain gathers up to max replica slots hosted on node, each with
// an eligible destination, sweeping every attached space in attach order.
func (e *Engine) collectDrain(node, max int) []job {
	e.ensureNodes()
	for i := range e.pend {
		e.pend[i] = 0
	}
	jobs := e.jobs[:0]
	for ri := range e.refs {
		sp := e.refs[ri].sp
		for _, reg := range sp.Regions() {
			for i := uint64(0); i < reg.Pages && len(jobs) < max; i++ {
				v := reg.BaseVPN + pagetable.VPN(i)
				slots, ok := sp.AllSlots(v)
				if !ok {
					continue
				}
				k := -1
				for ki, s := range slots {
					if s.Node == node {
						k = ki
						break
					}
				}
				if k < 0 {
					continue
				}
				dst := e.chooseDest(slots)
				if dst < 0 {
					continue
				}
				e.pend[dst]++
				jobs = append(jobs, job{ref: ri, vpn: v, k: k, dst: placement.Slot{Node: dst}})
			}
			if len(jobs) >= max {
				break
			}
		}
		if len(jobs) >= max {
			break
		}
	}
	e.jobs = jobs
	return jobs
}

// collectRebalance plans moves from the most- to the least-loaded live
// node when the imbalance exceeds the watermark.
func (e *Engine) collectRebalance(max int) []job {
	w := e.t.Watermark
	if w <= 0 {
		w = DefaultWatermark
	}
	var total, srcO, dstO int64
	liveN, src, dst := 0, -1, -1
	for n := 0; n < e.space.Nodes(); n++ {
		if e.space.State(n) != placement.Live {
			continue
		}
		o := e.occupancy(n)
		total += o
		liveN++
		if src < 0 || o > srcO {
			src, srcO = n, o
		}
		if dst < 0 || o < dstO {
			dst, dstO = n, o
		}
	}
	if liveN < 2 || src == dst {
		return nil
	}
	gap := srcO - dstO
	avg := float64(total) / float64(liveN)
	if gap < 2 || float64(srcO) <= avg*(1+w) {
		return nil
	}
	budget := int(gap / 2)
	if budget > max {
		budget = max
	}
	jobs := e.jobs[:0]
	for ri := range e.refs {
		sp := e.refs[ri].sp
		for _, reg := range sp.Regions() {
			for i := uint64(0); i < reg.Pages && len(jobs) < budget; i++ {
				v := reg.BaseVPN + pagetable.VPN(i)
				slots, ok := sp.AllSlots(v)
				if !ok {
					continue
				}
				k, onDst := -1, false
				for ki, s := range slots {
					if s.Node == src {
						k = ki
					}
					if s.Node == dst {
						onDst = true
					}
				}
				if k < 0 || onDst {
					continue
				}
				jobs = append(jobs, job{ref: ri, vpn: v, k: k, dst: placement.Slot{Node: dst}})
			}
			if len(jobs) >= budget {
				break
			}
		}
		if len(jobs) >= budget {
			break
		}
	}
	e.jobs = jobs
	return jobs
}

// allocSlot reserves one destination page slot on node: recycled slots
// first, then a fresh chunk from the node's backing.
func (e *Engine) allocSlot(node int) (uint64, error) {
	if fl := e.free[node]; len(fl) > 0 {
		off := fl[len(fl)-1]
		e.free[node] = fl[:len(fl)-1]
		return off, nil
	}
	chunk := uint64(e.t.BatchPages)
	base, err := e.cfg.AllocSlots(node, chunk)
	if err != nil {
		return 0, err
	}
	for i := chunk - 1; i >= 1; i-- {
		e.free[node] = append(e.free[node], base+i*PageSize)
	}
	return base, nil
}

func (e *Engine) pushFree(s placement.Slot) {
	e.free[s.Node] = append(e.free[s.Node], s.Off)
}

// runBatch executes one batch of moves: reserve destinations, then copy
// rounds (batched reads per source node, validate + batched writes +
// atomic flips in one no-yield window, then wait out the writes for
// pacing). Moves that exhaust MaxRounds abort cleanly.
func (e *Engine) runBatch(p *sim.Proc, jobs []job) int {
	start := p.Now()
	alive := 0
	for i := range jobs {
		j := &jobs[i]
		off, err := e.allocSlot(j.dst.Node)
		if err != nil {
			j.dead = true
			e.MoveFails.Inc()
			continue
		}
		j.dst.Off = off
		if err := e.refs[j.ref].sp.BeginMigrate(j.vpn, j.k, j.dst); err != nil {
			e.pushFree(j.dst)
			j.dead = true
			e.MoveFails.Inc()
			continue
		}
		j.buf = e.bufs[i]
		alive++
	}
	moved := 0
	nodes := e.space.Nodes()
	for round := 0; round < e.t.MaxRounds && alive > 0; round++ {
		// Resolve a source for every pending move and issue the reads,
		// one doorbell batch per source node with contiguous runs
		// coalesced. Everything up to the waits happens at one instant.
		for i := range jobs {
			j := &jobs[i]
			if j.done || j.dead {
				continue
			}
			sp := e.refs[j.ref].sp
			sp.ResetMigrationWrote(j.vpn)
			j.op = nil
			j.src.Node = -1
			if slots, _, ok := sp.Resolve(j.vpn); ok && len(slots) > 0 {
				j.src = slots[0]
			}
		}
		e.waits = e.waits[:0]
		for n := 0; n < nodes; n++ {
			e.segs, e.segJobs = e.segs[:0], e.segJobs[:0]
			for i := range jobs {
				j := &jobs[i]
				if j.done || j.dead || j.src.Node != n {
					continue
				}
				e.segs = append(e.segs, fabric.Seg{Off: j.src.Off, Buf: j.buf})
				e.segJobs = append(e.segJobs, i)
			}
			if len(e.segs) == 0 {
				continue
			}
			qp := e.cfg.QP(n)
			e.reqs = qp.Coalesce(fabric.OpRead, e.segs, e.reqs[:0])
			e.ops = qp.Submit(p.Now(), e.reqs, e.ops[:0])
			si := 0
			for ri, op := range e.ops {
				for range e.reqs[ri].Segs {
					jobs[e.segJobs[si]].op = op
					si++
				}
			}
			e.waits = append(e.waits, e.ops[len(e.ops)-1])
		}
		for _, op := range e.waits {
			op.Wait(p)
		}
		// Validate + write + flip. No yields from here until every write
		// of the round has been issued and its page flipped: the fabric
		// moves data at issue time, so the flip is atomic against the
		// fault path and the cleaner.
		e.waits = e.waits[:0]
		for n := 0; n < nodes; n++ {
			e.segs, e.segJobs = e.segs[:0], e.segJobs[:0]
			for i := range jobs {
				j := &jobs[i]
				if j.done || j.dead || j.dst.Node != n {
					continue
				}
				if local := e.refs[j.ref].local; local != nil && local(j.vpn, j.buf) {
					// Resident frame is authoritative — fresher than any
					// remote copy, racing write-backs included.
				} else if j.src.Node < 0 || j.op == nil || j.op.Err != nil {
					continue // no readable source this round; retry
				} else if e.refs[j.ref].sp.MigrationWrote(j.vpn) {
					e.CopyRestarts.Inc()
					continue // a write-back raced the copy; re-read
				}
				e.segs = append(e.segs, fabric.Seg{Off: j.dst.Off, Buf: j.buf})
				e.segJobs = append(e.segJobs, i)
			}
			if len(e.segs) == 0 {
				continue
			}
			qp := e.cfg.QP(n)
			e.reqs = qp.Coalesce(fabric.OpWrite, e.segs, e.reqs[:0])
			e.ops = qp.Submit(p.Now(), e.reqs, e.ops[:0])
			si := 0
			for ri, op := range e.ops {
				for range e.reqs[ri].Segs {
					j := &jobs[e.segJobs[si]]
					si++
					if op.Err != nil {
						e.MoveFails.Inc()
						continue // destination unreachable; retry round
					}
					old, err := e.refs[j.ref].sp.CompleteMigrate(j.vpn)
					if err != nil {
						j.dead = true
						alive--
						continue
					}
					e.pushFree(old)
					j.done = true
					alive--
					moved++
					e.PagesMoved.Inc()
					e.BytesMoved.Add(PageSize)
				}
			}
			e.waits = append(e.waits, e.ops[len(e.ops)-1])
		}
		for _, op := range e.waits {
			op.Wait(p) // pacing: never run ahead of the fabric
		}
	}
	for i := range jobs {
		j := &jobs[i]
		if j.done || j.dead {
			continue
		}
		if dst, ok := e.refs[j.ref].sp.AbortMigrate(j.vpn); ok {
			e.pushFree(dst)
		}
		e.Stranded.Inc()
	}
	e.MoveLat.Record(p.Now() - start)
	if e.cfg.Tel != nil {
		e.cfg.Tel.Emit(e.cfg.TelTrack, telemetry.Span{
			Kind: telemetry.KindMigrate, Start: start, End: p.Now(), Arg: uint64(moved),
		})
	}
	return moved
}
