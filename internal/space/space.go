// Package space defines the memory abstraction workloads program against.
// A Space is a flat virtual address space with typed accessors plus a CPU
// cost hook — the only interface quicksort, k-means, the snappy codec, the
// dataframe, GAPBS, and Redis see. DiLOS and Fastswap both provide Space
// implementations (paging systems are transparent, which is the paper's
// whole point); the Local implementation backs unit tests and the
// 100 %-local reference runs.
package space

import "dilos/internal/sim"

// Space is a byte-addressable virtual memory with allocation.
type Space interface {
	// Load copies len(p) bytes at addr into p.
	Load(addr uint64, p []byte)
	// Store copies p to addr.
	Store(addr uint64, p []byte)
	// LoadU64/StoreU64 and friends access little-endian words that must
	// not cross page boundaries.
	LoadU64(addr uint64) uint64
	StoreU64(addr uint64, v uint64)
	LoadU32(addr uint64) uint32
	StoreU32(addr uint64, v uint32)
	LoadU8(addr uint64) byte
	StoreU8(addr uint64, v byte)
	// Malloc reserves n bytes of zeroed memory and returns its address.
	Malloc(n uint64) uint64
	// Free releases a Malloc'd range.
	Free(addr uint64, n uint64)
	// Compute charges d of CPU time to the calling context.
	Compute(d sim.Time)
	// Now returns the current virtual time.
	Now() sim.Time
}

// Local is a host-memory Space with no paging: the reference
// implementation for tests and all-local baselines. The zero cost model
// charges nothing; attach a Proc to account CPU time.
type Local struct {
	Mem  []byte
	P    *sim.Proc // optional
	next uint64
}

// NewLocal creates a Local space of the given size.
func NewLocal(size uint64) *Local { return &Local{Mem: make([]byte, size)} }

// Load implements Space.
func (l *Local) Load(addr uint64, p []byte) { copy(p, l.Mem[addr:]) }

// Store implements Space.
func (l *Local) Store(addr uint64, p []byte) { copy(l.Mem[addr:], p) }

// LoadU64 implements Space.
func (l *Local) LoadU64(addr uint64) uint64 {
	b := l.Mem[addr : addr+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// StoreU64 implements Space.
func (l *Local) StoreU64(addr uint64, v uint64) {
	b := l.Mem[addr : addr+8]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

// LoadU32 implements Space.
func (l *Local) LoadU32(addr uint64) uint32 {
	b := l.Mem[addr : addr+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// StoreU32 implements Space.
func (l *Local) StoreU32(addr uint64, v uint32) {
	b := l.Mem[addr : addr+4]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// LoadU8 implements Space.
func (l *Local) LoadU8(addr uint64) byte { return l.Mem[addr] }

// StoreU8 implements Space.
func (l *Local) StoreU8(addr uint64, v byte) { l.Mem[addr] = v }

// Malloc implements Space with a bump allocator (addresses start at 4096
// so that 0 can serve as a nil pointer).
func (l *Local) Malloc(n uint64) uint64 {
	if l.next == 0 {
		l.next = 4096
	}
	addr := l.next
	n = (n + 15) &^ 15
	if addr+n > uint64(len(l.Mem)) {
		panic("space: Local out of memory")
	}
	l.next += n
	return addr
}

// Free implements Space (bump allocator: no-op).
func (l *Local) Free(addr, n uint64) {}

// Compute implements Space.
func (l *Local) Compute(d sim.Time) {
	if l.P != nil {
		l.P.Advance(d)
	}
}

// Now implements Space.
func (l *Local) Now() sim.Time {
	if l.P != nil {
		return l.P.Now()
	}
	return 0
}

// Proc returns the attached sim process (nil if none) — lets barrier-based
// multi-worker code treat Local like the paging-backed spaces.
func (l *Local) Proc() *sim.Proc { return l.P }
