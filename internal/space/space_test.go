package space

import (
	"bytes"
	"testing"
	"testing/quick"

	"dilos/internal/sim"
)

func TestLocalRoundTrip(t *testing.T) {
	l := NewLocal(1 << 20)
	a := l.Malloc(64)
	b := l.Malloc(64)
	if a == 0 || a == b {
		t.Fatalf("bad addresses %d %d", a, b)
	}
	l.StoreU64(a, 0x1122334455667788)
	if l.LoadU64(a) != 0x1122334455667788 {
		t.Fatal("u64 round trip")
	}
	l.StoreU32(b, 0xdeadbeef)
	if l.LoadU32(b) != 0xdeadbeef {
		t.Fatal("u32 round trip")
	}
	l.StoreU8(b+4, 0x7e)
	if l.LoadU8(b+4) != 0x7e {
		t.Fatal("u8 round trip")
	}
	buf := []byte("space test")
	l.Store(a, buf)
	got := make([]byte, len(buf))
	l.Load(a, got)
	if !bytes.Equal(got, buf) {
		t.Fatal("bulk round trip")
	}
}

func TestLocalEndianness(t *testing.T) {
	l := NewLocal(4096 * 4)
	a := l.Malloc(8)
	l.StoreU64(a, 0x0102030405060708)
	var b [8]byte
	l.Load(a, b[:])
	if b[0] != 0x08 || b[7] != 0x01 {
		t.Fatalf("not little-endian: %x", b)
	}
}

func TestLocalComputeWithAndWithoutProc(t *testing.T) {
	l := NewLocal(4096)
	l.Compute(100) // no proc attached: must not panic
	if l.Now() != 0 {
		t.Fatal("Now without proc should be 0")
	}
	eng := sim.New()
	eng.Go("p", func(p *sim.Proc) {
		l.P = p
		l.Compute(250)
		if l.Now() != 250 {
			t.Error("Compute did not advance the proc")
		}
	})
	eng.Run()
	if l.Proc() == nil {
		t.Fatal("Proc accessor lost the process")
	}
}

func TestLocalMallocAlignmentAndNil(t *testing.T) {
	l := NewLocal(1 << 16)
	first := l.Malloc(1)
	if first == 0 {
		t.Fatal("address 0 must stay reserved as nil")
	}
	for i := 0; i < 10; i++ {
		if a := l.Malloc(uint64(i + 1)); a%16 != 0 {
			t.Fatalf("unaligned alloc %#x", a)
		}
	}
}

func TestLocalOOMPanics(t *testing.T) {
	l := NewLocal(8192)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Malloc(1 << 20)
}

// Property: Local behaves like a flat byte array.
func TestQuickLocalSemantics(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		l := NewLocal(1 << 17)
		ref := make([]byte, 1<<17)
		for _, w := range writes {
			if len(w.Data) == 0 {
				continue
			}
			off := uint64(w.Off)
			if off+uint64(len(w.Data)) > uint64(len(ref)) {
				continue
			}
			l.Store(off, w.Data)
			copy(ref[off:], w.Data)
		}
		got := make([]byte, len(ref))
		l.Load(0, got)
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
