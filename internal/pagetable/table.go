package pagetable

import "fmt"

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// Addr returns the first virtual address of the page.
func (v VPN) Addr() uint64 { return uint64(v) << PageShift }

// VPNOf returns the page number containing a virtual address.
func VPNOf(addr uint64) VPN { return VPN(addr >> PageShift) }

// Table is a 4-level radix page table. The leaf level stores PTEs; interior
// levels store child pointers. Gen is the TLB generation: any change that
// could make a cached translation stale (unmap, eviction, permission or
// dirty-bit downgrade) must bump it, which models a TLB shootdown.
type Table struct {
	root *inode
	gen  uint64
	// Walks counts translation walks (for cost accounting diagnostics).
	Walks int64
}

type inode struct {
	children [FanOut]*inode
	leaves   [FanOut]*leaf // only used at level Levels-2
}

type leaf struct {
	ptes [FanOut]PTE
}

// New creates an empty table.
func New() *Table { return &Table{root: &inode{}, gen: 1} }

// Gen returns the current TLB generation.
func (t *Table) Gen() uint64 { return t.gen }

// BumpGen invalidates all TLBs (models an all-core shootdown).
func (t *Table) BumpGen() { t.gen++ }

func index(v VPN, level int) int {
	// level 0 is the root; level Levels-1 indexes into the leaf.
	shift := uint((Levels - 1 - level) * IndexBits)
	return int((uint64(v) >> shift) & (FanOut - 1))
}

func checkVPN(v VPN) {
	if uint64(v) >= 1<<(Levels*IndexBits) {
		panic(fmt.Sprintf("pagetable: VPN %d outside %d-bit space", v, VABits))
	}
}

// Lookup returns the PTE for a page (zero value = invalid) without
// allocating intermediate levels.
func (t *Table) Lookup(v VPN) PTE {
	checkVPN(v)
	t.Walks++
	n := t.root
	for level := 0; level < Levels-2; level++ {
		n = n.children[index(v, level)]
		if n == nil {
			return 0
		}
	}
	lf := n.leaves[index(v, Levels-2)]
	if lf == nil {
		return 0
	}
	return lf.ptes[index(v, Levels-1)]
}

// Entry returns a pointer to the PTE slot for a page, allocating the path.
// The fault handler uses this to transition tags in place.
func (t *Table) Entry(v VPN) *PTE {
	checkVPN(v)
	n := t.root
	for level := 0; level < Levels-2; level++ {
		idx := index(v, level)
		if n.children[idx] == nil {
			n.children[idx] = &inode{}
		}
		n = n.children[idx]
	}
	idx := index(v, Levels-2)
	if n.leaves[idx] == nil {
		n.leaves[idx] = &leaf{}
	}
	return &n.leaves[idx].ptes[index(v, Levels-1)]
}

// Set stores a PTE for a page, allocating the path.
func (t *Table) Set(v VPN, e PTE) { *t.Entry(v) = e }

// Clear resets a page's PTE to invalid. It does not bump the generation;
// callers that removed a live translation must BumpGen themselves.
func (t *Table) Clear(v VPN) {
	if p := t.peek(v); p != nil {
		*p = 0
	}
}

func (t *Table) peek(v VPN) *PTE {
	checkVPN(v)
	n := t.root
	for level := 0; level < Levels-2; level++ {
		n = n.children[index(v, level)]
		if n == nil {
			return nil
		}
	}
	lf := n.leaves[index(v, Levels-2)]
	if lf == nil {
		return nil
	}
	return &lf.ptes[index(v, Levels-1)]
}

// Range calls fn with a pointer to each mapped (non-invalid) PTE in
// [start, end). Used by the cleaner and the PTE hit tracker. Iteration
// order is ascending VPN. fn may mutate the PTE in place; returning false
// stops the scan.
func (t *Table) Range(start, end VPN, fn func(v VPN, e *PTE) bool) {
	for v := start; v < end; {
		p := t.peek(v)
		if p == nil {
			// Skip to the next leaf boundary to avoid walking empty space
			// one page at a time.
			v = (v + FanOut) &^ (FanOut - 1)
			continue
		}
		if p2 := *p; p2 != 0 {
			if !fn(v, p) {
				return
			}
		}
		v++
	}
}
