package pagetable

import "testing"

// pteFor builds a representative PTE of each tag with a distinguishable
// payload, so full-value CAS mismatches are detectable.
func pteFor(tag Tag, payload uint64) PTE {
	switch tag {
	case TagLocal:
		return Local(payload, true)
	case TagRemote:
		return Remote(payload)
	case TagFetching:
		return Fetching(payload)
	case TagAction:
		return Action(payload)
	}
	return 0
}

// TestTransitionTable drives TryTransition over every (from, to) tag pair:
// the seven lifecycle edges must swap (and fail cleanly on a full-value
// mismatch); every other edge must panic — an illegal edge is a logic bug,
// never a race to absorb.
func TestTransitionTable(t *testing.T) {
	tags := []Tag{TagInvalid, TagLocal, TagRemote, TagFetching, TagAction}
	legal := map[[2]Tag]bool{
		{TagRemote, TagFetching}: true,
		{TagAction, TagFetching}: true,
		{TagFetching, TagLocal}:  true,
		{TagFetching, TagRemote}: true,
		{TagLocal, TagLocal}:     true,
		{TagLocal, TagRemote}:    true,
		{TagLocal, TagAction}:    true,
	}
	for _, from := range tags {
		for _, to := range tags {
			edge := [2]Tag{from, to}
			if LegalTransition(from, to) != legal[edge] {
				t.Errorf("LegalTransition(%v, %v) = %v, want %v",
					from, to, !legal[edge], legal[edge])
			}
			fromPTE := pteFor(from, 7)
			toPTE := pteFor(to, 9)
			if !legal[edge] {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("TryTransition(%v -> %v) did not panic", from, to)
						}
					}()
					New().TryTransition(1, fromPTE, toPTE)
				}()
				continue
			}
			// Matching entry: the swap must land.
			tbl := New()
			tbl.Set(1, fromPTE)
			if !tbl.TryTransition(1, fromPTE, toPTE) {
				t.Errorf("TryTransition(%v -> %v) failed on matching entry", from, to)
			}
			if got := tbl.Lookup(1); got != toPTE {
				t.Errorf("after %v -> %v: entry = %v, want %v", from, to, got, toPTE)
			}
			// Same tag, different payload: full-value compare must refuse —
			// a migration that re-homed the page invalidates the snapshot.
			moved := pteFor(from, 21)
			tbl2 := New()
			tbl2.Set(1, moved)
			if tbl2.TryTransition(1, fromPTE, toPTE) {
				t.Errorf("TryTransition(%v -> %v) swapped despite payload mismatch", from, to)
			}
			if got := tbl2.Lookup(1); got != moved {
				t.Errorf("failed CAS mutated entry: %v", got)
			}
		}
	}
}
