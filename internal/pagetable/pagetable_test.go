package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTagEncoding(t *testing.T) {
	cases := []struct {
		e   PTE
		tag Tag
	}{
		{0, TagInvalid},
		{Local(7, true), TagLocal},
		{Local(0, false), TagLocal},
		{Remote(42), TagRemote},
		{Fetching(3), TagFetching},
		{Action(0xdead), TagAction},
	}
	for _, c := range cases {
		if c.e.Tag() != c.tag {
			t.Errorf("%v: tag = %v, want %v", uint64(c.e), c.e.Tag(), c.tag)
		}
	}
}

func TestLocalPTEFields(t *testing.T) {
	e := Local(123, true)
	if !e.Writable() || e.Frame() != 123 {
		t.Fatalf("e = %v", e)
	}
	if e.Accessed() || e.Dirty() {
		t.Fatal("fresh mapping must not be accessed/dirty")
	}
	e |= BitAccessed | BitDirty
	if !e.Accessed() || !e.Dirty() || e.Frame() != 123 {
		t.Fatal("accessed/dirty bits must not disturb the frame")
	}
	ro := Local(5, false)
	if ro.Writable() {
		t.Fatal("read-only mapping reports writable")
	}
}

func TestOnlyLocalIsPresent(t *testing.T) {
	for _, e := range []PTE{Remote(9), Fetching(9), Action(9)} {
		if e&BitPresent != 0 {
			t.Fatalf("%v has present bit set", e)
		}
	}
	if Local(9, true)&BitPresent == 0 {
		t.Fatal("local PTE must have present bit")
	}
}

// Property (DESIGN.md §6): tag+payload encode/decode round-trips for every
// software tag and any 61-bit payload; Local round-trips frame+writable.
func TestQuickPTECodec(t *testing.T) {
	f := func(payload uint64, kind uint8, writable bool) bool {
		payload &= MaxPayload
		switch kind % 4 {
		case 0:
			e := Remote(payload)
			return e.Tag() == TagRemote && e.Payload() == payload
		case 1:
			e := Fetching(payload)
			return e.Tag() == TagFetching && e.Payload() == payload
		case 2:
			e := Action(payload)
			return e.Tag() == TagAction && e.Payload() == payload
		default:
			frame := payload & (1<<50 - 1)
			e := Local(frame, writable)
			return e.Tag() == TagLocal && e.Frame() == frame && e.Writable() == writable
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Remote(MaxPayload + 1)
}

func TestPayloadOfPresentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Local(1, true).Payload()
}

func TestFrameOfRemotePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Remote(1).Frame()
}

func TestTableSetLookup(t *testing.T) {
	tbl := New()
	if tbl.Lookup(100) != 0 {
		t.Fatal("empty table must return invalid")
	}
	tbl.Set(100, Remote(7))
	if got := tbl.Lookup(100); got.Tag() != TagRemote || got.Payload() != 7 {
		t.Fatalf("lookup = %v", got)
	}
	// Neighbours unaffected.
	if tbl.Lookup(99) != 0 || tbl.Lookup(101) != 0 {
		t.Fatal("neighbour PTEs disturbed")
	}
}

func TestTableEntryInPlaceTransition(t *testing.T) {
	tbl := New()
	p := tbl.Entry(4096)
	*p = Remote(11)
	// The fault handler pattern: re-read via Entry, flip remote→fetching.
	q := tbl.Entry(4096)
	if q.Tag() != TagRemote {
		t.Fatalf("tag = %v", q.Tag())
	}
	*q = Fetching(5)
	if tbl.Lookup(4096).Tag() != TagFetching {
		t.Fatal("in-place transition not visible")
	}
}

func TestTableClear(t *testing.T) {
	tbl := New()
	tbl.Set(1, Local(2, true))
	tbl.Clear(1)
	if tbl.Lookup(1) != 0 {
		t.Fatal("clear failed")
	}
	tbl.Clear(999999) // clearing unmapped space is a no-op
}

func TestTableSparseSpread(t *testing.T) {
	tbl := New()
	// Spread VPNs across all levels of the radix.
	vpns := []VPN{0, 1, 511, 512, FanOut*FanOut - 1, FanOut * FanOut, 1 << 27, 1<<36 - 1}
	for i, v := range vpns {
		tbl.Set(v, Remote(uint64(i)))
	}
	for i, v := range vpns {
		if got := tbl.Lookup(v); got.Payload() != uint64(i) {
			t.Fatalf("vpn %d: payload = %d, want %d", v, got.Payload(), i)
		}
	}
}

func TestVPNBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Lookup(VPN(1) << 36)
}

func TestRange(t *testing.T) {
	tbl := New()
	for _, v := range []VPN{10, 11, 600, 5000} {
		tbl.Set(v, Remote(uint64(v)))
	}
	var seen []VPN
	tbl.Range(0, 10000, func(v VPN, e *PTE) bool {
		seen = append(seen, v)
		return true
	})
	want := []VPN{10, 11, 600, 5000}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
}

func TestRangeMutateAndStop(t *testing.T) {
	tbl := New()
	for v := VPN(0); v < 20; v++ {
		tbl.Set(v, Local(uint64(v), true)|BitDirty)
	}
	n := 0
	tbl.Range(0, 20, func(v VPN, e *PTE) bool {
		*e &^= BitDirty
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
	if tbl.Lookup(0).Dirty() || !tbl.Lookup(10).Dirty() {
		t.Fatal("mutation/stop semantics wrong")
	}
}

func TestGeneration(t *testing.T) {
	tbl := New()
	g := tbl.Gen()
	tbl.BumpGen()
	if tbl.Gen() != g+1 {
		t.Fatal("generation did not advance")
	}
}

func TestVPNAddrRoundTrip(t *testing.T) {
	if VPNOf(0x12345678).Addr() != 0x12345000 {
		t.Fatal("VPN/Addr round trip broken")
	}
}

// Property: the table behaves like a map[VPN]PTE under random set/clear/
// lookup sequences.
func TestQuickTableVsMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New()
		ref := map[VPN]PTE{}
		for i := 0; i < 500; i++ {
			v := VPN(rng.Intn(1 << 20))
			switch rng.Intn(3) {
			case 0:
				e := Remote(uint64(rng.Intn(1 << 30)))
				tbl.Set(v, e)
				ref[v] = e
			case 1:
				tbl.Clear(v)
				delete(ref, v)
			case 2:
				if tbl.Lookup(v) != ref[v] {
					return false
				}
			}
		}
		for v, e := range ref {
			if tbl.Lookup(v) != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := New()
	for v := VPN(0); v < 1<<16; v++ {
		tbl.Set(v, Local(uint64(v), true))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(VPN(i) & (1<<16 - 1))
	}
}

func BenchmarkEntry(b *testing.B) {
	tbl := New()
	for i := 0; i < b.N; i++ {
		*tbl.Entry(VPN(i) & (1<<20 - 1)) = Remote(uint64(i))
	}
}
