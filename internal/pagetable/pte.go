// Package pagetable implements DiLOS' unified page table (§4.1, Figure 4):
// a hardware-format 4-level radix page table whose entries encode, in the
// three least-significant bits, not just presence but the full
// disaggregation state of a page — Local, Remote, Fetching, or Action.
// This single structure replaces the Linux swap cache and all swap-entry
// bookkeeping: the fault handler consults exactly one data structure before
// issuing an RDMA request.
//
// PTE encoding (mirrors the paper's use of the user/write/present bits):
//
//	bit 0 (present) = 1 → LOCAL. The entry is a normal hardware PTE:
//	    bit 1 = writable, bit 5 = accessed, bit 6 = dirty,
//	    bits 12..: frame number.
//	bit 0 = 0 → software tag in bits 1..2:
//	    00 → INVALID (unmapped)
//	    01 → REMOTE  (payload = remote page id)
//	    10 → FETCHING(payload = in-flight slot id)
//	    11 → ACTION  (payload = guide action data, e.g. a live-chunk
//	                  vector log index for guided paging §4.4)
//	    payload occupies bits 3..63 (61 bits).
package pagetable

import "fmt"

// Geometry of the virtual address space (x86-64-style 4-level paging).
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	Levels    = 4
	IndexBits = 9
	FanOut    = 1 << IndexBits // 512 entries per level
	VABits    = PageShift + Levels*IndexBits
)

// PTE is one page table entry.
type PTE uint64

// Hardware bits, valid only when the entry is Local (present).
const (
	BitPresent  PTE = 1 << 0
	BitWritable PTE = 1 << 1
	BitUser     PTE = 1 << 2
	BitAccessed PTE = 1 << 5
	BitDirty    PTE = 1 << 6
)

// Tag is the DiLOS state of a page.
type Tag uint8

const (
	TagInvalid Tag = iota
	TagLocal
	TagRemote
	TagFetching
	TagAction
)

func (t Tag) String() string {
	switch t {
	case TagInvalid:
		return "invalid"
	case TagLocal:
		return "local"
	case TagRemote:
		return "remote"
	case TagFetching:
		return "fetching"
	case TagAction:
		return "action"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

const (
	softTagShift     = 1
	softTagMask  PTE = 0b11 << softTagShift
	softRemote   PTE = 0b01 << softTagShift
	softFetching PTE = 0b10 << softTagShift
	softAction   PTE = 0b11 << softTagShift
	payloadShift     = 3
	// MaxPayload is the largest software payload a PTE can carry.
	MaxPayload uint64 = 1<<61 - 1
)

// frameShift positions the frame number in a local PTE.
const frameShift = PageShift

// Tag decodes the DiLOS tag of a PTE.
func (e PTE) Tag() Tag {
	if e&BitPresent != 0 {
		return TagLocal
	}
	switch e & softTagMask {
	case softRemote:
		return TagRemote
	case softFetching:
		return TagFetching
	case softAction:
		return TagAction
	}
	return TagInvalid
}

// Local builds a present PTE mapping the given frame.
func Local(frame uint64, writable bool) PTE {
	e := PTE(frame<<frameShift) | BitPresent | BitUser
	if writable {
		e |= BitWritable
	}
	return e
}

// Remote builds a non-present PTE whose page lives at the given remote
// page id on the memory node.
func Remote(remotePage uint64) PTE { return soft(softRemote, remotePage) }

// Fetching builds a PTE marking an in-flight fetch; payload identifies the
// in-flight slot so a second faulter can find the pending op and wait
// instead of issuing a duplicate fetch (§4.2).
func Fetching(slot uint64) PTE { return soft(softFetching, slot) }

// Action builds a guide-handled PTE; payload is guide-defined (§4.4 uses it
// to index the vector log of live-chunk segments).
func Action(data uint64) PTE { return soft(softAction, data) }

func soft(tag PTE, payload uint64) PTE {
	if payload > MaxPayload {
		panic("pagetable: payload overflows 61 bits")
	}
	return tag | PTE(payload<<payloadShift)
}

// Payload extracts the software payload of a non-present PTE.
func (e PTE) Payload() uint64 {
	if e&BitPresent != 0 {
		panic("pagetable: Payload of a present PTE")
	}
	return uint64(e) >> payloadShift
}

// Frame extracts the frame number of a Local PTE.
func (e PTE) Frame() uint64 {
	if e&BitPresent == 0 {
		panic("pagetable: Frame of a non-present PTE")
	}
	return uint64(e) >> frameShift
}

// Writable reports the writable bit (Local entries only).
func (e PTE) Writable() bool { return e&BitWritable != 0 }

// Accessed reports the accessed bit (Local entries only).
func (e PTE) Accessed() bool { return e&BitAccessed != 0 }

// Dirty reports the dirty bit (Local entries only).
func (e PTE) Dirty() bool { return e&BitDirty != 0 }

func (e PTE) String() string {
	switch e.Tag() {
	case TagLocal:
		return fmt.Sprintf("local(frame=%d w=%t a=%t d=%t)", e.Frame(), e.Writable(), e.Accessed(), e.Dirty())
	case TagInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("%s(%d)", e.Tag(), e.Payload())
	}
}
