package pagetable

// Tag-transition helpers for the sharded fault path.
//
// Under the DES contract (state mutated between yields is atomic) a
// compare-and-swap on a PTE is exactly one comparison plus one store —
// there is no interleaving to defend against *within* a call. What CAS
// buys the fault handler, prefetch mapper, cleaner, and reclaimer is
// safety *across* their own yields: snapshot the entry, sleep on a frame
// allocation or a fabric op, then publish the new state only if nobody
// else moved the page meanwhile. That replaces the wide
// read-modify-write critical sections the shared-manager baseline models
// with one narrow transition per page (`Costs.TagCAS` in core).

// LegalTransition reports whether a page may move from tag `from` to tag
// `to` in one step. The edges are the page lifecycle:
//
//	Remote   → Fetching   demand fault or prefetch wins the page
//	Action   → Fetching   guided fault consumes the vector and fetches
//	Fetching → Local      fetch completed, page mapped
//	Fetching → Remote     fetch failed / prefetch reverted
//	Local    → Local      bit maintenance (dirty/accessed clears)
//	Local    → Remote     clean eviction
//	Local    → Action     eviction that left a write-back vector behind
func LegalTransition(from, to Tag) bool {
	switch from {
	case TagRemote:
		return to == TagFetching
	case TagAction:
		return to == TagFetching
	case TagFetching:
		return to == TagLocal || to == TagRemote
	case TagLocal:
		return to == TagLocal || to == TagRemote || to == TagAction
	}
	return false
}

// TryTransition installs `to` at v iff the entry still holds exactly
// `from` (full-value compare, not just the tag — a concurrent migration
// that re-homed a Remote page changes the payload and must fail the
// swap). Returns false without side effects if the entry moved. Panics if
// the requested edge is not in the lifecycle table: that is a logic bug
// in the caller, not a race.
func (t *Table) TryTransition(v VPN, from, to PTE) bool {
	if !LegalTransition(from.Tag(), to.Tag()) {
		panic("pagetable: illegal transition " + from.Tag().String() + " -> " + to.Tag().String())
	}
	pte := t.Entry(v)
	if *pte != from {
		return false
	}
	*pte = to
	return true
}
