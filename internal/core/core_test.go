package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/trace"
)

// aliases keep the Fastswap stress test readable inside this package.
type fastswapProcAlias = fastswap.FSProc

func fastswapSysForStress(eng *sim.Engine) *fastswap.System {
	sys := fastswap.New(eng, fastswap.Config{
		CacheFrames: 48, Cores: 4, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	return sys
}

func newSys(t testing.TB, frames int, pf prefetch.Prefetcher) (*System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  pf,
	})
	sys.Start()
	return sys, eng
}

func TestColdReadFetchesZeros(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(4)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		sp.Load(base, buf)
		for _, b := range buf {
			if b != 0 {
				t.Error("fresh DDC memory not zero")
				return
			}
		}
	})
	eng.Run()
	if sys.MajorFaults.N != 1 {
		t.Fatalf("major faults = %d, want 1", sys.MajorFaults.N)
	}
}

func TestWriteSurvivesEviction(t *testing.T) {
	// Working set 4× the cache: every page gets evicted and refetched.
	const frames = 32
	sys, eng := newSys(t, frames, nil)
	var failed bool
	sys.Launch("app", 0, func(sp *DDCProc) {
		pages := uint64(frames * 4)
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i*2654435761)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i*2654435761 {
				t.Errorf("page %d: got %d", i, got)
				failed = true
				return
			}
		}
	})
	eng.Run()
	if failed {
		return
	}
	if sys.Mgr.Evicted.N == 0 {
		t.Fatal("no evictions despite 4x memory pressure")
	}
	if sys.Mgr.Cleaned.N == 0 {
		t.Fatal("cleaner never wrote back dirty pages")
	}
	if sys.MajorFaults.N < int64(frames*4) {
		t.Fatalf("major faults = %d, want >= %d (refetch after eviction)", sys.MajorFaults.N, frames*4)
	}
}

func TestNoPrefetchMajorFaultPerPage(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	const pages = 256
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	if sys.MajorFaults.N != pages {
		t.Fatalf("major = %d, want %d", sys.MajorFaults.N, pages)
	}
	if sys.MinorFaults.N != 0 {
		t.Fatalf("minor = %d, want 0 without prefetch", sys.MinorFaults.N)
	}
}

func TestReadaheadReducesMajorFaults(t *testing.T) {
	sys, eng := newSys(t, 256, prefetch.NewReadahead(8))
	const pages = 1024
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	// Table 3 shape: majors collapse to ~1/window of pages; the rest are
	// minor faults (in-flight) or clean hits.
	if sys.MajorFaults.N > pages/4 {
		t.Fatalf("major = %d, want <= %d with readahead", sys.MajorFaults.N, pages/4)
	}
	if sys.MinorFaults.N == 0 {
		t.Fatal("expected some minor faults on in-flight prefetches")
	}
	if sys.MajorFaults.N+sys.MinorFaults.N >= pages {
		t.Fatalf("no full prefetch hits: major+minor = %d of %d pages",
			sys.MajorFaults.N+sys.MinorFaults.N, pages)
	}
}

func TestPrefetchedDataIsCorrect(t *testing.T) {
	sys, eng := newSys(t, 512, prefetch.NewReadahead(8))
	const pages = 512
	var failed bool
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize+8, i^0xabcdef)
		}
		// Force everything remote by thrashing through a second region.
		spill, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU8(spill+i*PageSize, 1)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize + 8); got != i^0xabcdef {
				t.Errorf("page %d corrupted: %d", i, got)
				failed = true
				return
			}
		}
	})
	eng.Run()
	_ = failed
}

func TestFetchingStateServesConcurrentFaulters(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	base, err := sys.MmapDDC(1)
	if err != nil {
		t.Fatal(err)
	}
	var done int
	for c := 0; c < 2; c++ {
		c := c
		sys.Launch("app", c, func(sp *DDCProc) {
			sp.LoadU8(base)
			done++
		})
	}
	eng.Run()
	if done != 2 {
		t.Fatal("threads did not finish")
	}
	// One major (the fetch), one minor (waited on the same op): no
	// duplicate fetch.
	if sys.MajorFaults.N != 1 || sys.MinorFaults.N != 1 {
		t.Fatalf("major=%d minor=%d, want 1/1", sys.MajorFaults.N, sys.MinorFaults.N)
	}
	if sys.Link.RxOps.N != 1 {
		t.Fatalf("rx ops = %d, want 1 (no duplicated fetch)", sys.Link.RxOps.N)
	}
}

func TestFaultLatencyShape(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	const pages = 200
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	mean := sys.FaultLat.Mean()
	// Figure 6: DiLOS total fault latency ≈ 3–4 µs (exception 0.57 +
	// handler ~0.15 + fetch ~2.7 + map ~0.1), about half of Fastswap's.
	if mean < 3*sim.Microsecond || mean > 4500*sim.Nanosecond {
		t.Fatalf("mean fault latency = %v, want ≈3.5us", mean)
	}
	e, h, f, m, r := sys.BD.Mean()
	if r != 0 {
		t.Fatalf("DiLOS must have zero reclaim in the fault path, got %v", r)
	}
	if f < 2*sim.Microsecond {
		t.Fatalf("fetch segment = %v, want ≈2.7us", f)
	}
	if e != 570*sim.Nanosecond {
		t.Fatalf("exception segment = %v", e)
	}
	if h > 500*sim.Nanosecond || m > 500*sim.Nanosecond {
		t.Fatalf("software segments too large: handler=%v map=%v", h, m)
	}
}

func TestReclaimStaysOffFaultPath(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	const pages = 512
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize) // clean pages: reclaim is pure unmap
		}
	})
	eng.Run()
	if sys.BD.Reclaim != 0 {
		t.Fatalf("reclaim leaked into the fault path: %v", sys.BD.Reclaim)
	}
	if sys.Mgr.AllocWaits.N > int64(pages)/20 {
		t.Fatalf("allocator waited %d times — eager eviction not keeping up", sys.Mgr.AllocWaits.N)
	}
}

func TestMallocCompat(t *testing.T) {
	sys, eng := newSys(t, 128, nil)
	sys.Launch("app", 0, func(sp *DDCProc) {
		a := sp.Malloc(100)
		b := sp.Malloc(100)
		if a == 0 || b == 0 || a == b {
			t.Error("bad addresses")
			return
		}
		sp.StoreU64(a, 1)
		sp.StoreU64(b, 2)
		if sp.LoadU64(a) != 1 || sp.LoadU64(b) != 2 {
			t.Error("allocations alias")
		}
		big := sp.Malloc(1 << 20) // page-aligned
		if big%PageSize != 0 {
			t.Errorf("large alloc not page aligned: %#x", big)
		}
	})
	eng.Run()
}

func TestLoaderPatchesMalloc(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	ld := NewLoader(sys)
	if m, ok := ld.Lookup("malloc"); !ok {
		t.Fatal("malloc missing from symbol table")
	} else if _, err := m.(func(uint64) (uint64, error))(8); err == nil {
		t.Fatal("unpatched malloc should fail in a DDC image")
	}
	ld.Patch()
	m, _ := ld.Lookup("malloc")
	sys.Launch("app", 0, func(sp *DDCProc) {
		addr, err := m.(func(uint64) (uint64, error))(64)
		if err != nil || addr == 0 {
			t.Errorf("patched malloc: %v", err)
			return
		}
		sp.StoreU64(addr, 42)
		if sp.LoadU64(addr) != 42 {
			t.Error("DDC memory from patched malloc broken")
		}
	})
	eng.Run()

	called := 0
	ld.Hook("lrange", func(args ...uint64) { called++ })
	ld.Call("lrange", 7)
	if called != 1 {
		t.Fatal("hook not invoked")
	}
}

func TestRandomizedIntegrityUnderPressure(t *testing.T) {
	sys, eng := newSys(t, 48, prefetch.NewTrend())
	rng := rand.New(rand.NewSource(42))
	const pages = 192
	ref := make([]byte, pages*PageSize)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := 0; i < 3000; i++ {
			off := rng.Intn(len(ref) - 128)
			n := rng.Intn(128) + 1
			if rng.Intn(2) == 0 {
				b := make([]byte, n)
				rng.Read(b)
				sp.Store(base+uint64(off), b)
				copy(ref[off:], b)
			} else {
				got := make([]byte, n)
				sp.Load(base+uint64(off), got)
				if !bytes.Equal(got, ref[off:off+n]) {
					t.Errorf("iteration %d: data corruption at %d", i, off)
					return
				}
			}
		}
	})
	eng.Run()
	if sys.Mgr.Evicted.N == 0 {
		t.Fatal("test exerted no eviction pressure")
	}
}

func TestRemoteOfOutsideRegions(t *testing.T) {
	sys, _ := newSys(t, 16, nil)
	if _, _, ok := sys.RemoteOf(pagetable.VPNOf(1 << 40)); ok {
		t.Fatal("RemoteOf accepted an unmapped vpn")
	}
}

func TestSegfaultPanics(t *testing.T) {
	sys, eng := newSys(t, 16, nil)
	sys.Launch("app", 0, func(sp *DDCProc) {
		defer func() {
			if recover() == nil {
				t.Error("expected segfault panic")
			}
		}()
		sp.LoadU8(0xdead000)
	})
	eng.Run()
}

func TestMultiMemoryNodeSharding(t *testing.T) {
	// The §5.1 extension: pages stripe across memory nodes; data must
	// survive eviction to, and refetch from, the right shard.
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 64,
		Cores:       2,
		RemoteBytes: 64 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(0),
		MemNodes:    3,
	})
	sys.Start()
	const pages = 384
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i^0xfeed)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i^0xfeed {
				t.Errorf("page %d corrupted across shards: %#x", i, got)
				return
			}
		}
	})
	eng.Run()
	// Traffic must hit every shard.
	for i, link := range sys.Links {
		if link.RxBytes.N == 0 || link.TxBytes.N == 0 {
			t.Fatalf("node %d saw no traffic (rx=%d tx=%d)", i, link.RxBytes.N, link.TxBytes.N)
		}
	}
	// Striping is page-round-robin: consecutive pages hit different nodes.
	base := sys.Space().Regions()[0].BaseVPN
	n0, _, _ := sys.RemoteOf(base)
	n1, _, _ := sys.RemoteOf(base + 1)
	n3, _, _ := sys.RemoteOf(base + 3)
	if n0 == n1 || n0 != n3 {
		t.Fatalf("striping wrong: nodes %d %d %d", n0, n1, n3)
	}
}

func TestMultiNodeAggregatesBandwidth(t *testing.T) {
	// Sequential read with prefetch: two shards should cut the wire-bound
	// portion of the run (each link carries half the fetch traffic).
	run := func(nodes int) sim.Time {
		eng := sim.New()
		sys := New(eng, Config{
			CacheFrames: 2048, Cores: 1, RemoteBytes: 128 << 20,
			Fabric:     fabric.DefaultParams(),
			Prefetcher: prefetch.NewReadahead(0),
			MemNodes:   nodes,
		})
		sys.Start()
		var d sim.Time
		sys.Launch("seq", 0, func(sp *DDCProc) {
			base, _ := sys.MmapDDC(8192)
			t0 := sp.Now()
			for i := uint64(0); i < 8192; i++ {
				sp.LoadU8(base + i*PageSize)
			}
			d = sp.Now() - t0
		})
		eng.Run()
		return d
	}
	one, two := run(1), run(2)
	if two >= one {
		t.Fatalf("2 memory nodes not faster than 1: %v vs %v", two, one)
	}
}

func TestFaultTraceRecording(t *testing.T) {
	rec := trace.NewRecorder(0)
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 256, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(), Prefetcher: prefetch.NewReadahead(0),
		Trace: rec,
	})
	sys.Start()
	const pages = 256
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	st := rec.Analyze()
	if st.Counts[trace.Major] != sys.MajorFaults.N {
		t.Fatalf("trace majors %d != counter %d", st.Counts[trace.Major], sys.MajorFaults.N)
	}
	if st.Counts[trace.Minor] != sys.MinorFaults.N {
		t.Fatalf("trace minors %d != counter %d", st.Counts[trace.Minor], sys.MinorFaults.N)
	}
	// Sequential read: the fault trace interleaves stride-1 minors with
	// stride-8 cluster boundaries, so "mostly small forward strides" is
	// the right expectation.
	if st.SeqFraction < 0.3 {
		t.Fatalf("seq fraction = %v", st.SeqFraction)
	}
	if st.TopStride < 1 || st.TopStride > 8 {
		t.Fatalf("top stride = %d", st.TopStride)
	}
	// Replay the captured trace onto a fresh system: it must fault again
	// with the same page span.
	events := rec.Events()
	eng2 := sim.New()
	sys2 := New(eng2, Config{
		CacheFrames: 96, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys2.Start()
	sys2.Launch("replay", 0, func(sp *DDCProc) {
		base, _ := sys2.MmapDDC(trace.Span(events) + 1)
		trace.Replay(sp, base, events)
	})
	eng2.Run()
	if sys2.MajorFaults.N == 0 {
		t.Fatal("replay produced no faults")
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	// §5.1's fault-tolerance direction: 2 replicas over 3 nodes; kill a
	// node mid-run; every page must still read back correctly from the
	// surviving replicas.
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 64,
		Cores:       2,
		RemoteBytes: 64 << 20,
		Fabric:      fabric.DefaultParams(),
		MemNodes:    3,
		Replicas:    2,
	})
	sys.Start()
	const pages = 384
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i*0xdeadbeef)
		}
		// Flush everything to the replicas (cycle the cache with reads).
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
		// A node dies. Reads keep working off the other replicas.
		if err := sys.Space().SetState(1, placement.Failed); err != nil {
			t.Errorf("failing node 1: %v", err)
			return
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i*0xdeadbeef {
				t.Errorf("page %d lost after node failure: %#x", i, got)
				return
			}
		}
		// Writes continue (they just skip the dead node).
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i+7)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i+7 {
				t.Errorf("post-failure write lost on page %d", i)
				return
			}
		}
	})
	eng.Run()
	if sys.ReplicaFetches.N == 0 {
		t.Fatal("no slot resolution ever failed over")
	}
	if sys.Links[1].RxBytes.N == 0 {
		t.Fatal("node 1 never served traffic before failing")
	}
}

func TestReplicasExceedNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.New(), Config{
		CacheFrames: 16, Cores: 1, RemoteBytes: 8 << 20,
		Fabric: fabric.DefaultParams(), MemNodes: 1, Replicas: 2,
	})
}

func TestFailLastNodeRejected(t *testing.T) {
	sys, _ := newSys(t, 16, nil)
	if err := sys.Space().SetState(0, placement.Failed); err == nil {
		t.Fatal("failed the last serving node")
	}
}

func TestReplicatedWriteBackReachesAllNodes(t *testing.T) {
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 32, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(), MemNodes: 2, Replicas: 2,
	})
	sys.Start()
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(128)
		for i := uint64(0); i < 128; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
		for i := uint64(0); i < 128; i++ { // force write-back + eviction
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	// With full replication, both nodes carry comparable write-back bytes.
	a, b := sys.Links[0].TxBytes.N, sys.Links[1].TxBytes.N
	if a == 0 || b == 0 {
		t.Fatalf("write-back not replicated: %d / %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("replica write volumes too skewed: %d vs %d", a, b)
	}
}

func TestMmapExhaustionPropagates(t *testing.T) {
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 16, Cores: 1, RemoteBytes: 4 << 20, // tiny memory node
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	if _, err := sys.MmapDDC(1 << 20); err == nil {
		t.Fatal("huge mmap on a tiny memory node succeeded")
	}
	// A reasonable mmap still works afterwards.
	if _, err := sys.MmapDDC(16); err != nil {
		t.Fatalf("small mmap failed: %v", err)
	}
	sys.Launch("noop", 0, func(sp *DDCProc) {})
	eng.Run()
}

func TestMultiCoreOverlappingFaultStress(t *testing.T) {
	// Regression test for the concurrent-major race: four threads hammer
	// the same small region with a tiny cache (AllocFrame yields under
	// pressure, opening the window where two cores could fetch one page).
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 48, Cores: 4, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(), Prefetcher: prefetch.NewTrend(),
	})
	sys.Start()
	const pages = 192
	base, _ := sys.MmapDDC(pages)
	// Thread w owns words at offset w*8 within each page; everyone walks
	// all pages in different orders.
	for w := 0; w < 4; w++ {
		w := w
		sys.Launch("stress", w, func(sp *DDCProc) {
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for round := 0; round < 4; round++ {
				perm := rng.Perm(pages)
				for _, pg := range perm {
					addr := base + uint64(pg)*PageSize + uint64(w)*8
					sp.StoreU64(addr, uint64(w)<<32|uint64(pg))
				}
				for _, pg := range perm {
					addr := base + uint64(pg)*PageSize + uint64(w)*8
					if got := sp.LoadU64(addr); got != uint64(w)<<32|uint64(pg) {
						t.Errorf("worker %d round %d page %d: got %#x", w, round, pg, got)
						return
					}
				}
			}
		})
	}
	eng.Run()
	// Frame conservation: nothing leaked to the pool across the chaos.
	if sys.Pool.FreeCount()+sys.Pool.Used() != 48 {
		t.Fatal("frame conservation violated")
	}
}

func TestFastswapMultiCoreOverlappingFaultStress(t *testing.T) {
	eng := sim.New()
	fsys := fastswapSysForStress(eng)
	const pages = 192
	base, _ := fsys.MmapDDC(pages)
	for w := 0; w < 4; w++ {
		w := w
		fsys.Launch("stress", w, func(sp *fastswapProcAlias) {
			rng := rand.New(rand.NewSource(int64(w + 7)))
			for round := 0; round < 3; round++ {
				perm := rng.Perm(pages)
				for _, pg := range perm {
					addr := base + uint64(pg)*PageSize + uint64(w)*8
					sp.StoreU64(addr, uint64(w)<<32|uint64(pg))
				}
				for _, pg := range perm {
					addr := base + uint64(pg)*PageSize + uint64(w)*8
					if got := sp.LoadU64(addr); got != uint64(w)<<32|uint64(pg) {
						t.Errorf("worker %d round %d page %d: got %#x", w, round, pg, got)
						return
					}
				}
			}
		})
	}
	eng.Run()
}

func TestReplicaFetchesCountedAtFetchSiteOnly(t *testing.T) {
	// Regression: replicaSlots used to bump ReplicaFetches on *every*
	// failover-aware resolution — cleaner/reclaimer write-back targets,
	// prefetch filtering, subpage reads — not just faults actually served
	// by a replica. Resolution must be free; only fetches count.
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 128, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(), MemNodes: 2, Replicas: 2,
	})
	sys.Start()
	const pages = 64
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		if err := sys.Space().SetState(1, placement.Failed); err != nil {
			t.Errorf("failing node 1: %v", err)
			return
		}

		// Exercise every non-fetch resolution path the way the daemons do.
		baseVPN := pagetable.VPNOf(base)
		for i := uint64(0); i < pages; i++ {
			if _, ok := sys.Mgr.RemoteOf(baseVPN + pagetable.VPN(i)); !ok {
				t.Errorf("page %d did not resolve", i)
				return
			}
			if _, _, ok := sys.RemoteOf(baseVPN + pagetable.VPN(i)); !ok {
				t.Errorf("page %d did not resolve via RemoteOf", i)
				return
			}
		}
		if sys.ReplicaFetches.N != 0 {
			t.Errorf("resolution alone counted %d replica fetches", sys.ReplicaFetches.N)
			return
		}

		// Now actually fault every page in: exactly the pages whose
		// primary is the failed node (odd indices under 2-way striping)
		// count.
		for i := uint64(0); i < pages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	if want := int64(pages / 2); sys.ReplicaFetches.N != want {
		t.Fatalf("ReplicaFetches = %d, want %d (one per failed-primary fault)",
			sys.ReplicaFetches.N, want)
	}
}

func TestMinorFaultLatencyRecorded(t *testing.T) {
	// Regression: only major faults used to land in a histogram, so tail
	// latency reports ignored the wait-on-inflight (minor) path entirely.
	sys, eng := newSys(t, 2048, prefetch.NewReadahead(0))
	sys.Launch("seq", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(512)
		for i := uint64(0); i < 512; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	if sys.MinorFaults.N == 0 {
		t.Fatal("sequential scan with readahead produced no minor faults")
	}
	if got := int64(sys.MinorFaultLat.Count()); got != sys.MinorFaults.N {
		t.Fatalf("MinorFaultLat has %d samples for %d minor faults", got, sys.MinorFaults.N)
	}
	if sys.MinorFaultLat.Max() <= 0 {
		t.Fatal("minor-fault latency samples are empty")
	}
	// Major-fault samples stay separate.
	if int64(sys.FaultLat.Count()) != sys.MajorFaults.N {
		t.Fatalf("FaultLat has %d samples for %d major faults",
			sys.FaultLat.Count(), sys.MajorFaults.N)
	}
}

func TestRegistrySnapshotCoversSystem(t *testing.T) {
	sys, eng := newSys(t, 64, nil)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(128)
		for i := uint64(0); i < 128; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
	})
	eng.Run()
	snap := sys.Registry().Snapshot()
	if n, ok := snap.Counter("dilos.major_faults"); !ok || n != sys.MajorFaults.N {
		t.Fatalf("snapshot major_faults = %d,%v want %d", n, ok, sys.MajorFaults.N)
	}
	if n, ok := snap.Counter("link.node0.rx.bytes"); !ok || n == 0 {
		t.Fatalf("snapshot link counter = %d,%v", n, ok)
	}
	if n, ok := snap.Counter("pagemgr.cleaned"); !ok || n != sys.Mgr.Cleaned.N {
		t.Fatalf("snapshot pagemgr.cleaned = %d,%v want %d", n, ok, sys.Mgr.Cleaned.N)
	}
	if h, ok := snap.Histogram("dilos.fault_latency"); !ok || h.Count == 0 {
		t.Fatalf("snapshot fault_latency = %+v,%v", h, ok)
	}
	if _, ok := snap.Histogram("dilos.minor_fault_latency"); !ok {
		t.Fatal("snapshot missing minor_fault_latency")
	}
}

func TestPlacementPolicySelectable(t *testing.T) {
	// The layout policy is part of Config: blocked placement keeps runs
	// whole per node, and data still round-trips through eviction.
	for _, name := range []string{"striped", "blocked", "hashed"} {
		pol, err := placement.ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New()
		sys := New(eng, Config{
			CacheFrames: 64, Cores: 1, RemoteBytes: 64 << 20,
			Fabric: fabric.DefaultParams(), MemNodes: 3, Placement: pol,
		})
		sys.Start()
		const pages = 192
		sys.Launch("app", 0, func(sp *DDCProc) {
			base, _ := sys.MmapDDC(pages)
			for i := uint64(0); i < pages; i++ {
				sp.StoreU64(base+i*PageSize, i^0xabc)
			}
			for i := uint64(0); i < pages; i++ {
				if got := sp.LoadU64(base + i*PageSize); got != i^0xabc {
					t.Errorf("%s: page %d corrupted: %#x", name, i, got)
					return
				}
			}
		})
		eng.Run()
		if sys.Space().Policy().Name() != name {
			t.Fatalf("policy %s not installed", name)
		}
		// Every node must hold data under every policy (the workload spans
		// the whole region).
		for i, link := range sys.Links {
			if link.RxBytes.N == 0 && link.TxBytes.N == 0 {
				t.Fatalf("%s: node %d saw no traffic", name, i)
			}
		}
	}
}
