package core

import (
	"fmt"

	"dilos/internal/comm"
	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/obs"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// HealthConfig tunes the memory-node health monitor: a per-node daemon that
// probes the node on a dedicated queue pair and drives the placement
// substrate's fail/recover transitions through a circuit breaker.
type HealthConfig struct {
	// Interval is the closed-state probe period.
	Interval sim.Time
	// FailAfter is the number of consecutive probe failures before the
	// breaker opens and the node is declared failed.
	FailAfter int
	// Cooldown is how long an open breaker waits before probing again
	// (half-open).
	Cooldown sim.Time
	// SuccessAfter is the number of consecutive half-open probe successes
	// before the node is recovered (re-replicated, then returned to
	// service).
	SuccessAfter int
}

// DefaultHealthConfig balances detection latency against false positives:
// with the default chaos detection latency of 15 µs per failed op, three
// consecutive failed probes 100 µs apart declare a dead node in ~300 µs —
// fast against a multi-millisecond crash window, slow enough that one
// injected flaky-op failure never trips the breaker.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Interval:     100 * sim.Microsecond,
		FailAfter:    3,
		Cooldown:     500 * sim.Microsecond,
		SuccessAfter: 2,
	}
}

// HealthMonitor watches every memory node with heartbeat probes and a
// closed/open/half-open circuit breaker per node:
//
//	closed    → probe every Interval; FailAfter consecutive failures open
//	            the breaker and fail the node over (SetState→Failed),
//	            provided it is not the last serving node.
//	open      → wait Cooldown, then go half-open.
//	half-open → probe; a failure re-opens, SuccessAfter consecutive
//	            successes recover the node: SetState→Syncing (write-backs
//	            resume), re-replicate every page that lost its copy,
//	            SetState→Live (reads resume).
//
// A node the migration engine drains out of the pool (SetState→Removed)
// retires its watcher; nodes attached mid-run (AddMemNode) get one via
// Watch.
type HealthMonitor struct {
	sys *System
	cfg HealthConfig

	// watched[i] guards against double-spawning node i's daemon when a
	// node attached before Start is watched again by Start.
	watched []bool

	Probes         stats.Counter // heartbeat probes issued
	ProbeFails     stats.Counter // probes that completed with an error
	NodeFails      stats.Counter // breaker trips (SetState(Failed) transitions)
	NodeRecoveries stats.Counter // completed recoveries (SetState(Live) after resync)

	// LastFailAt and LastRecoverAt record, per node, the virtual time of
	// the most recent breaker trip and completed recovery — the ext4
	// experiment derives detection and recovery latency from them.
	LastFailAt    []sim.Time
	LastRecoverAt []sim.Time
}

// NewHealthMonitor builds a monitor over the system's memory nodes.
func NewHealthMonitor(s *System, cfg HealthConfig) *HealthMonitor {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHealthConfig().Interval
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultHealthConfig().FailAfter
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultHealthConfig().Cooldown
	}
	if cfg.SuccessAfter <= 0 {
		cfg.SuccessAfter = DefaultHealthConfig().SuccessAfter
	}
	return &HealthMonitor{
		sys:            s,
		cfg:            cfg,
		Probes:         stats.Counter{Name: "health.probes"},
		ProbeFails:     stats.Counter{Name: "health.probe_fails"},
		NodeFails:      stats.Counter{Name: "health.node_fails"},
		NodeRecoveries: stats.Counter{Name: "health.node_recoveries"},
		LastFailAt:     make([]sim.Time, len(s.Links)),
		LastRecoverAt:  make([]sim.Time, len(s.Links)),
	}
}

// RegisterStats folds the monitor's counters into a registry.
func (h *HealthMonitor) RegisterStats(r *stats.Registry) {
	r.RegisterCounter(&h.Probes)
	r.RegisterCounter(&h.ProbeFails)
	r.RegisterCounter(&h.NodeFails)
	r.RegisterCounter(&h.NodeRecoveries)
}

// Config returns the monitor's (defaulted) configuration.
func (h *HealthMonitor) Config() HealthConfig { return h.cfg }

// Start launches one watch daemon per memory node.
func (h *HealthMonitor) Start() {
	for i := range h.sys.Links {
		h.Watch(i)
	}
}

// Watch launches the watch daemon for one node — the join path for nodes
// attached after construction (AddMemNode/AttachBacking). Idempotent.
func (h *HealthMonitor) Watch(node int) {
	for len(h.watched) <= node {
		h.watched = append(h.watched, false)
	}
	for len(h.LastFailAt) <= node {
		h.LastFailAt = append(h.LastFailAt, 0)
		h.LastRecoverAt = append(h.LastRecoverAt, 0)
	}
	if h.watched[node] {
		return
	}
	h.watched[node] = true
	h.sys.Eng.GoDaemon(fmt.Sprintf("dilos.health%d", node), func(p *sim.Proc) {
		h.watch(p, node)
	})
}

// probe issues one 64-byte heartbeat read against the node's health queue
// pair and reports whether it succeeded. The probe is a plain QP op (no
// retry wrapper): the breaker's consecutive-failure threshold is the retry
// policy here.
func (h *HealthMonitor) probe(p *sim.Proc, node int) bool {
	var beat [64]byte
	h.Probes.Inc()
	op := h.sys.Hubs[node].QP(0, comm.ModHealth).Read(p.Now(), 0, beat[:])
	op.Wait(p)
	if op.Err != nil {
		h.ProbeFails.Inc()
		return false
	}
	return true
}

func (h *HealthMonitor) watch(p *sim.Proc, node int) {
	s := h.sys
	// Stagger the probes so N monitors never hit the fabric in lockstep
	// (deterministically — no PRNG draw, so monitors do not perturb the
	// chaos sequence relative to a monitor-free run... they do consume
	// injector decisions per probe, which is fine: the injector is only
	// active when chaos is configured, and then the monitor always runs).
	p.Sleep(h.cfg.Interval * sim.Time(node+1) / sim.Time(len(s.Links)+1))
	fails := 0
	for {
		// A drained node left the pool; its watcher retires with it.
		if s.space.State(node) == placement.Removed {
			return
		}
		// Closed: probe at the configured interval.
		if h.probe(p, node) {
			fails = 0
			p.Sleep(h.cfg.Interval)
			continue
		}
		fails++
		if fails < h.cfg.FailAfter {
			p.Sleep(h.cfg.Interval)
			continue
		}
		// Breaker trips. Fail the node over — a draining node can crash
		// too — unless it is the last serving node left, where all we can
		// do is keep probing and wait for it to return.
		if st := s.space.State(node); st == placement.Live || st == placement.Draining {
			if err := s.setNodeState(node, placement.Failed); err == nil {
				h.NodeFails.Inc()
				h.LastFailAt[node] = p.Now()
				s.emitEvent(p.Now(), "breaker_trip",
					obs.I("node", int64(node)), obs.I("consecutive_fails", int64(fails)))
			}
		}
		// Open → half-open → (recover | re-open).
		okRun := 0
		for okRun < h.cfg.SuccessAfter {
			if s.space.State(node) == placement.Removed {
				return // evacuated off its replicas while down
			}
			p.Sleep(h.cfg.Cooldown)
			if h.probe(p, node) {
				okRun++
			} else {
				okRun = 0
			}
		}
		if s.space.State(node) == placement.Failed {
			// SetState→Syncing: write-backs reach the node again while
			// re-replication restores the copies it lost; SetState→Live
			// resumes reads. If the migration engine wants this node
			// drained, it re-asserts Draining right after.
			if err := s.setNodeState(node, placement.Syncing); err == nil {
				s.reReplicate(p, node)
				for _, t := range s.tenants {
					t.Sys.reReplicate(p, node)
				}
				if err := s.setNodeState(node, placement.Live); err != nil {
					panic(fmt.Sprintf("core: health recovery of node %d: %v", node, err))
				}
				h.NodeRecoveries.Inc()
				h.LastRecoverAt[node] = p.Now()
				s.emitEvent(p.Now(), "breaker_recover",
					obs.I("node", int64(node)),
					obs.I("downtime_ns", int64(p.Now()-h.LastFailAt[node])))
			}
		}
		fails = 0
		p.Sleep(h.cfg.Interval)
	}
}

// reReplicate restores the recovering node's copy of every page that keeps
// a replica slot there, reading each page's current content from the local
// frame (if resident) or the first live replica, and writing it to the
// node's slot over the health queue pair. The node must be in the syncing
// state: write-backs already reach it (so pages cleaned mid-walk stay
// fresh), but no fetch reads from it until it flips back to Live.
func (s *System) reReplicate(p *sim.Proc, node int) {
	var buf [PageSize]byte
	dst := fabric.NewReliableQP(s.Hubs[node].QP(0, comm.ModHealth), s.FetchRetries, &s.retryRng)
	for _, reg := range s.space.Regions() {
		for i := uint64(0); i < reg.Pages; i++ {
			vpn := reg.BaseVPN + pagetable.VPN(i)
			slots, ok := s.space.AllSlots(vpn)
			if !ok {
				continue
			}
			dstOff, has := uint64(0), false
			for _, sl := range slots {
				if sl.Node == node {
					dstOff, has = sl.Off, true
					break
				}
			}
			if !has {
				continue // page keeps no replica on this node
			}
			if !s.pageContent(p, vpn, buf[:]) {
				continue // every live replica unreachable right now; skip
			}
			// pageContent may have yielded (remote read); if the page became
			// resident dirty meanwhile, the frame is fresher than what we
			// read. Re-copy without yielding before issuing the write — the
			// fabric moves data at issue time, so the write carries exactly
			// these bytes.
			if pte := s.Table.Lookup(vpn); pte.Tag() == pagetable.TagLocal {
				copy(buf[:], s.Pool.Bytes(dram.FrameID(pte.Frame())))
			}
			if err := dst.Write(p, dstOff, buf[:]); err != nil {
				continue // node flapped again; its watcher will retry recovery
			}
			s.ReReplicated.Inc()
		}
	}
}

// pageContent copies the page's current bytes into buf: from the resident
// frame when Local, otherwise from the first live replica over the health
// queue pair. Returns false if the content is unreachable (no live replica
// served).
func (s *System) pageContent(p *sim.Proc, vpn pagetable.VPN, buf []byte) bool {
	if pte := s.Table.Lookup(vpn); pte.Tag() == pagetable.TagLocal {
		copy(buf, s.Pool.Bytes(dram.FrameID(pte.Frame())))
		return true
	}
	sl, ok := s.space.First(vpn)
	if !ok {
		return false
	}
	src := fabric.NewReliableQP(s.Hubs[sl.Node].QP(0, comm.ModHealth), s.FetchRetries, &s.retryRng)
	return src.Read(p, sl.Off, buf) == nil
}
