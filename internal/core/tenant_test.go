package core

import (
	"encoding/json"
	"strings"
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/tenant"
)

func newTenantHost(t *testing.T, frames int, tc TenancyConfig) (*System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys, err := NewSystem(eng,
		WithCacheFrames(frames),
		WithCores(2),
		WithRemoteBytes(64<<20),
		WithFabric(fabric.DefaultParams()),
		WithTenancy(tc),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys, eng
}

// TestTenantIsolatedWorkloads runs two tenants over one pool: each gets its
// own address space (no cross-tenant aliasing), both workloads complete,
// and the host registry carries each tenant's prefixed fault counters.
func TestTenantIsolatedWorkloads(t *testing.T) {
	sys, eng := newTenantHost(t, 160, TenancyConfig{SlackFrames: 16})
	ta, err := sys.NewTenant(TenantSpec{Name: "a", Quota: tenant.Quota{Weight: 1, FloorFrames: 32}})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sys.NewTenant(TenantSpec{Name: "b", Quota: tenant.Quota{Weight: 1, FloorFrames: 32}})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	const pages = 128
	run := func(tn *Tenant, salt uint64, core int) {
		tn.Launch("app-"+tn.Name, core, func(sp *DDCProc) {
			base, err := tn.MmapDDC(pages)
			if err != nil {
				t.Error(err)
				return
			}
			for i := uint64(0); i < pages; i++ {
				sp.StoreU64(base+i*PageSize, i*salt)
			}
			for i := uint64(0); i < pages; i++ {
				if got := sp.LoadU64(base + i*PageSize); got != i*salt {
					t.Errorf("tenant %s page %d: got %#x want %#x", tn.Name, i, got, i*salt)
					return
				}
			}
		})
	}
	run(ta, 0x9e37, 0)
	run(tb, 0x51ed, 1)
	eng.Run()
	if ta.Sys.MajorFaults.N == 0 || tb.Sys.MajorFaults.N == 0 {
		t.Fatalf("tenants drove no faults: a=%d b=%d", ta.Sys.MajorFaults.N, tb.Sys.MajorFaults.N)
	}
	snap := sys.Registry().Snapshot()
	for _, name := range []string{"tenant.a.dilos.major_faults", "tenant.b.dilos.major_faults",
		"tenant.a.pagemgr.evicted", "tenant.b.pagemgr.evicted"} {
		if _, ok := snap.Counter(name); !ok {
			t.Errorf("host registry is missing %q", name)
		}
	}
	// The working sets exceed the quotas, so both reclaimers must have run —
	// each only over its own view.
	if ta.View().Used() > ta.View().Reserved()+sys.slack.Total() {
		t.Fatalf("tenant a used %d frames beyond quota+slack", ta.View().Used())
	}
}

// TestTenantQuotaPlanWeights checks admission re-planning: floors are
// honoured and the spare pool splits by weight across admissions.
func TestTenantQuotaPlanWeights(t *testing.T) {
	sys, _ := newTenantHost(t, 160, TenancyConfig{SlackFrames: 10})
	ta, err := sys.NewTenant(TenantSpec{Name: "a", Quota: tenant.Quota{Weight: 3, FloorFrames: 30}})
	if err != nil {
		t.Fatal(err)
	}
	// Alone, a holds the whole partitionable pool.
	if got := ta.View().Reserved(); got != 150 {
		t.Fatalf("solo reservation %d, want 150", got)
	}
	tb, err := sys.NewTenant(TenantSpec{Name: "b", Quota: tenant.Quota{Weight: 1, FloorFrames: 30}})
	if err != nil {
		t.Fatal(err)
	}
	// 150 partitionable − 60 floors = 90 spare: 3:1 → a=30+67=97... exact:
	// 90*3/4=67 (int), 90*1/4=22, leftover 1 → index 0.
	if a, b := ta.View().Reserved(), tb.View().Reserved(); a != 98 || b != 52 {
		t.Fatalf("reservations a=%d b=%d, want 98/52", a, b)
	}
	if ta.View().Reserved()+tb.View().Reserved()+sys.slack.Total() != 160 {
		t.Fatal("plan does not conserve the pool")
	}
}

// TestNewTenantAdmissionRules drives every rejection path.
func TestNewTenantAdmissionRules(t *testing.T) {
	okQuota := tenant.Quota{Weight: 1}
	t.Run("without tenancy", func(t *testing.T) {
		eng := sim.New()
		sys, err := NewSystem(eng, WithCacheFrames(64), WithCores(1),
			WithRemoteBytes(8<<20), WithFabric(fabric.DefaultParams()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.NewTenant(TenantSpec{Name: "a", Quota: okQuota}); err == nil ||
			!strings.Contains(err.Error(), "Tenancy") {
			t.Fatalf("admitted without tenancy: %v", err)
		}
	})
	sys, _ := newTenantHost(t, 128, TenancyConfig{SlackFrames: 8})
	if _, err := sys.NewTenant(TenantSpec{Quota: okQuota}); err == nil {
		t.Fatal("admitted a nameless tenant")
	}
	if _, err := sys.NewTenant(TenantSpec{Name: "a", Quota: tenant.Quota{Weight: 0}}); err == nil {
		t.Fatal("admitted a zero-weight quota")
	}
	if _, err := sys.NewTenant(TenantSpec{Name: "a", Quota: tenant.Quota{Weight: 1, FloorFrames: 1000}}); err == nil {
		t.Fatal("admitted floors beyond the pool")
	}
	ta, err := sys.NewTenant(TenantSpec{Name: "a", Quota: okQuota})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewTenant(TenantSpec{Name: "a", Quota: okQuota}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("admitted a duplicate name: %v", err)
	}
	if _, err := ta.Sys.NewTenant(TenantSpec{Name: "b", Quota: okQuota}); err == nil ||
		!strings.Contains(err.Error(), "host") {
		t.Fatalf("tenant admitted a sub-tenant: %v", err)
	}
	sys.Start()
	if _, err := sys.NewTenant(TenantSpec{Name: "b", Quota: okQuota}); err == nil ||
		!strings.Contains(err.Error(), "Start") {
		t.Fatalf("admitted after Start: %v", err)
	}
}

// snapshotJSON runs a fixed two-tenant workload and returns the host
// registry snapshot serialised to JSON. Admission order is parameterised
// to prove the observable surface does not depend on it.
func snapshotJSON(t *testing.T, names [2]string, cores [2]int) []byte {
	t.Helper()
	sys, eng := newTenantHost(t, 160, TenancyConfig{SlackFrames: 16})
	tens := map[string]*Tenant{}
	for _, n := range names {
		tn, err := sys.NewTenant(TenantSpec{Name: n, Quota: tenant.Quota{Weight: 1, FloorFrames: 32}})
		if err != nil {
			t.Fatal(err)
		}
		tens[n] = tn
	}
	sys.Start()
	for i, n := range []string{"a", "b"} {
		tn, salt := tens[n], uint64(0x1234+i)
		tn.Launch("app-"+n, cores[i], func(sp *DDCProc) {
			base, _ := tn.MmapDDC(96)
			for p := uint64(0); p < 96; p++ {
				sp.StoreU64(base+p*PageSize, p*salt)
			}
			for p := uint64(0); p < 96; p++ {
				sp.LoadU64(base + p*PageSize)
			}
		})
	}
	eng.Run()
	b, err := json.Marshal(sys.Registry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTenantSnapshotDeterministic: the same seedless two-tenant run is
// byte-identical across repeats (the ISSUE's determinism gate at unit
// scale), and snapshot ordering is stable.
func TestTenantSnapshotDeterministic(t *testing.T) {
	a := snapshotJSON(t, [2]string{"a", "b"}, [2]int{0, 1})
	b := snapshotJSON(t, [2]string{"a", "b"}, [2]int{0, 1})
	if string(a) != string(b) {
		t.Fatal("same-seed multi-tenant runs diverged")
	}
}

// TestTenantRegistryOrderIndependent: tenants admitted in either order
// produce snapshots with the same metric-name sequence (Snapshot sorts by
// name within kind, so concurrent registration order can never leak into
// serialised output).
func TestTenantRegistryOrderIndependent(t *testing.T) {
	names := func(s stats.Snapshot) []string {
		var out []string
		for _, c := range s.Counters {
			out = append(out, c.Name)
		}
		for _, g := range s.Gauges {
			out = append(out, g.Name)
		}
		for _, h := range s.Histograms {
			out = append(out, h.Name)
		}
		return out
	}
	build := func(order [2]string) []string {
		sys, _ := newTenantHost(t, 160, TenancyConfig{SlackFrames: 16})
		for _, n := range order {
			if _, err := sys.NewTenant(TenantSpec{Name: n, Quota: tenant.Quota{Weight: 1}}); err != nil {
				t.Fatal(err)
			}
		}
		return names(sys.Registry().Snapshot())
	}
	ab, ba := build([2]string{"a", "b"}), build([2]string{"b", "a"})
	if len(ab) == 0 || len(ab) != len(ba) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(ab), len(ba))
	}
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("position %d: %q vs %q — ordering depends on admission order", i, ab[i], ba[i])
		}
	}
}

// TestTenantRebalanceShiftsQuota: a thrashing tenant under allocation
// pressure gains reservation from an idle neighbour's headroom.
func TestTenantRebalanceShiftsQuota(t *testing.T) {
	sys, eng := newTenantHost(t, 256, TenancyConfig{
		SlackFrames:    0,
		RebalanceEvery: 50 * sim.Microsecond,
		RebalanceStep:  8,
	})
	hot, err := sys.NewTenant(TenantSpec{Name: "hot", Quota: tenant.Quota{Weight: 1, FloorFrames: 64}})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := sys.NewTenant(TenantSpec{Name: "idle", Quota: tenant.Quota{Weight: 1, FloorFrames: 64}})
	if err != nil {
		t.Fatal(err)
	}
	before := hot.View().Reserved()
	sys.Start()
	hot.Launch("churn", 0, func(sp *DDCProc) {
		base, _ := hot.MmapDDC(1024)
		for round := 0; round < 4; round++ {
			for i := uint64(0); i < 1024; i++ {
				sp.StoreU64(base+i*PageSize, i)
			}
		}
	})
	// The idle tenant touches a handful of pages and stops.
	idle.Launch("quiet", 1, func(sp *DDCProc) {
		base, _ := idle.MmapDDC(16)
		for i := uint64(0); i < 16; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
	})
	eng.Run()
	after := hot.View().Reserved()
	if after <= before {
		t.Fatalf("pressured tenant never gained quota: %d → %d", before, after)
	}
	if idle.View().Reserved() < idle.Quota.FloorFrames {
		t.Fatalf("donor pushed below its floor: %d", idle.View().Reserved())
	}
	if hot.View().Reserved()+idle.View().Reserved() != 256 {
		t.Fatalf("rebalance leaked frames: %d+%d != 256",
			hot.View().Reserved(), idle.View().Reserved())
	}
}
