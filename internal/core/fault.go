package core

import (
	"fmt"

	"dilos/internal/comm"
	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/mmu"
	"dilos/internal/pagetable"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/trace"
)

// coreHandler adapts one core's faults onto the system.
type coreHandler struct {
	sys    *System
	coreID int
}

// HandleFault implements mmu.FaultHandler — the DiLOS page fault handler
// (§4.2). The paths are:
//
//	Remote   → flip to Fetching, allocate a frame, issue the RDMA read on
//	           this core's fault QP, and — while the read is in flight —
//	           run the PTE hit tracker, the prefetcher, and the app-aware
//	           guide hook; then map the page. (Major fault.)
//	Fetching → another core or the prefetcher already has the page in
//	           flight: wait on its op instead of fetching twice, and map it
//	           if the owner has not. (Minor fault.)
//	Action   → guided paging: decode the live-chunk vector logged at
//	           eviction and fetch only those chunks with a vectored read.
//	Local    → benign race (resolved while we trapped): return and retry.
func (h *coreHandler) HandleFault(c *mmu.Core, vpn pagetable.VPN, write bool) {
	s := h.sys
	p := c.Proc
	pte := s.Table.Entry(vpn)

	switch pte.Tag() {
	case pagetable.TagLocal:
		return // resolved concurrently
	case pagetable.TagRemote:
		p.Advance(c.Costs.Exception)
		s.BD.Exception += c.Costs.Exception
		s.MajorFaults.Inc()
		if s.Trace != nil {
			s.Trace.Record(p.Now(), vpn, trace.Major)
		}
		// The fetch offset comes from the (failover-aware) slot mapping,
		// not the PTE payload, so a page whose primary node died reads
		// from its next live replica. This is the one place (besides the
		// Action path) that counts ReplicaFetches: a fault actually served
		// by a non-primary copy.
		slots, failover, ok := s.space.Resolve(vpn)
		if !ok {
			panic(fmt.Sprintf("core: remote PTE for unmapped vpn %d", vpn))
		}
		if failover {
			s.ReplicaFetches.Inc()
		}
		node, remote := slots[0].Node, slots[0].Off
		s.majorFetch(p, h.coreID, node, vpn, pte, func(qp *fabric.QP, now sim.Time, buf []byte) *fabric.Op {
			return qp.Read(now, remote, buf)
		}, false)
	case pagetable.TagAction:
		p.Advance(c.Costs.Exception)
		s.BD.Exception += c.Costs.Exception
		s.MajorFaults.Inc()
		s.GuidedFetches.Inc()
		payload := pte.Payload()
		slots, failover, ok := s.space.Resolve(vpn)
		if !ok {
			panic(fmt.Sprintf("core: action PTE for unmapped vpn %d", vpn))
		}
		if failover {
			s.ReplicaFetches.Inc()
		}
		node, remoteBase := slots[0].Node, slots[0].Off
		// The vector-log slot is consumed inside the issue callback, which
		// majorFetch only invokes after winning the PTE transition — a
		// racing faulter must not release the same slot twice.
		s.majorFetch(p, h.coreID, node, vpn, pte, func(qp *fabric.QP, now sim.Time, buf []byte) *fabric.Op {
			chunks := s.Mgr.Vector(payload)
			segs := make([]fabric.Seg, len(chunks))
			for i, ch := range chunks {
				segs[i] = fabric.Seg{Off: remoteBase + uint64(ch.Off), Buf: buf[ch.Off : ch.Off+ch.Len]}
			}
			return qp.ReadV(now, segs)
		}, true)
	case pagetable.TagFetching:
		slot := pte.Payload()
		sl := &s.slots[slot]
		gen := sl.gen
		op := sl.op
		if op == nil {
			// Issue and publish happen without an intervening yield, so a
			// visible Fetching PTE always has its op installed.
			panic("core: fetching PTE with no op")
		}
		if op.CompleteAt+s.Costs.Map <= p.Now() {
			// The data already arrived; on real hardware the (parallel)
			// prefetch mapper would have installed the PTE by now and no
			// fault would have trapped. The serialized simulation just
			// hadn't run the mapper yet — map without counting a fault.
			s.LateMapHits.Inc()
			if s.Trace != nil {
				s.Trace.Record(p.Now(), vpn, trace.Hit)
			}
			s.finishFetch(p, slot, gen)
			return
		}
		t0 := p.Now()
		p.Advance(c.Costs.Exception)
		s.MinorFaults.Inc()
		if s.Trace != nil {
			s.Trace.Record(p.Now(), vpn, trace.Minor)
		}
		// §4.3: the prefetcher and hit tracker run in the fault handler —
		// minor faults included — overlapping whatever wait remains.
		p.Advance(s.Costs.HandlerCheck)
		s.runPrefetch(p, h.coreID, vpn, false)
		op.Wait(p)
		s.finishFetch(p, slot, gen)
		s.MinorFaultLat.Record(p.Now() - t0)
	default:
		panic(fmt.Sprintf("core: segfault at vpn %d (invalid PTE)", vpn))
	}
}

// majorFetch is the §4.2 fast path: one PTE transition, one frame, one
// asynchronous RDMA request, with prefetch + hit tracking + the guide hook
// hidden in the fetch window, then the mapping.
func (s *System) majorFetch(p *sim.Proc, coreID, node int, vpn pagetable.VPN, pte *pagetable.PTE,
	issue func(qp *fabric.QP, now sim.Time, buf []byte) *fabric.Op, zeroFill bool) {
	t0 := p.Now()
	p.Advance(s.Costs.HandlerCheck)

	expected := pte.Tag()
	frame := s.Mgr.AllocFrame(p)
	if pte.Tag() != expected {
		// AllocFrame can yield (pool empty → wait for the reclaimer), and
		// another core may have started fetching — or finished mapping —
		// this page meanwhile. Back off; the retried translation takes
		// the minor/local path against the winner's PTE.
		s.Pool.Free(frame)
		return
	}
	s.Pool.Meta(frame).Pinned = true
	p.Advance(s.Costs.FrameAlloc)
	buf := s.Pool.Bytes(frame)
	if zeroFill {
		clear(buf)
		p.Advance(s.Costs.ZeroFill)
	}
	slot := s.newSlot(vpn, frame)
	*pte = pagetable.Fetching(slot)
	s.BD.Handler += p.Now() - t0

	op := issue(s.Hubs[node].QP(coreID, comm.ModFault), p.Now(), buf)
	s.slots[slot].op = op
	tIssue := p.Now()

	// Work hidden in the fetch window (§4.3): hit tracker scan, prefetch
	// issuance, guide hook.
	gen := s.slots[slot].gen
	s.runPrefetch(p, coreID, vpn, true)
	if s.AppGuide != nil {
		s.AppGuide.OnFault(coreID, vpn)
	}

	op.Wait(p)
	s.BD.Fetch += p.Now() - tIssue
	tMap := p.Now()
	s.finishFetch(p, slot, gen)
	s.BD.Map += p.Now() - tMap
	s.BD.N++
	s.FaultLat.Record(p.Now() - t0 + s.MMUC.Exception)
}

// finishFetch maps a completed fetch if nobody else has: exactly one of the
// original faulter, a minor faulter, or the prefetch mapper performs the
// mapping.
func (s *System) finishFetch(p *sim.Proc, slot uint64, gen uint64) {
	sl := &s.slots[slot]
	if sl.gen != gen || !sl.active {
		return // already mapped (or slot recycled after mapping)
	}
	sl.active = false
	p.Advance(s.Costs.Map)
	s.Table.Set(sl.vpn, pagetable.Local(uint64(sl.frame), true))
	s.Pool.Meta(sl.frame).Pinned = false
	s.Mgr.InsertLRU(sl.frame, sl.vpn)
	s.releaseSlot(slot)
}

// runPrefetch consults the hit tracker and the prefetch policy, then issues
// asynchronous reads for every proposed page that is still Remote. The
// per-core prefetch mapper daemon maps them into the unified page table as
// they complete — "immediately", with no swap-cache stopover.
func (s *System) runPrefetch(p *sim.Proc, coreID int, vpn pagetable.VPN, major bool) {
	if _, isNone := s.Pf.(prefetch.None); isNone {
		return
	}
	p.Advance(s.Track.Scan(s.Table))
	s.Hist.Note(vpn)
	ctx := prefetch.Context{
		VPN:      vpn,
		Major:    major,
		HitRatio: s.Track.Ratio(),
		History:  s.Hist.Deltas(),
	}
	targets := s.Pf.OnFault(ctx)
	s.SchedulePrefetch(p, coreID, targets)
}

// SchedulePrefetch issues page prefetches for every target that is
// currently Remote (others are skipped — already local or in flight). It
// is also the entry point app-aware guides use to request pages (§4.3).
func (s *System) SchedulePrefetch(p *sim.Proc, coreID int, targets []pagetable.VPN) {
	if len(targets) == 0 {
		return
	}
	var noted []pagetable.VPN
	for _, t := range targets {
		p.Advance(s.Costs.PrefetchFilter)
		if s.Table.Lookup(t).Tag() != pagetable.TagRemote {
			continue
		}
		node, remote, ok := s.remoteOf(t)
		if !ok {
			continue
		}
		qp := s.Hubs[node].QP(coreID, comm.ModPrefetch)
		frame, ok := s.Mgr.TryAllocFrame(p)
		if !ok {
			break // no headroom: prefetching must not force reclamation
		}
		s.Pool.Meta(frame).Pinned = true
		slot := s.newSlot(t, frame)
		s.Table.Set(t, pagetable.Fetching(slot))
		op := qp.Read(p.Now(), remote, s.Pool.Bytes(frame))
		s.slots[slot].op = op
		s.pfQueue[coreID] = append(s.pfQueue[coreID], pfItem{slot: slot, gen: s.slots[slot].gen})
		s.Prefetches.Inc()
		noted = append(noted, t)
		p.Advance(s.Costs.PrefetchIssue)
	}
	if len(noted) > 0 {
		s.Track.Note(noted)
		s.pfWaiter[coreID].Wake(p.Now())
	}
}

// pfMapLoop is the per-core prefetch mapper: it waits for each in-flight
// prefetch and maps it into the unified page table the moment it completes
// (unless a minor faulter got there first).
func (s *System) pfMapLoop(p *sim.Proc, coreID int) {
	for {
		if len(s.pfQueue[coreID]) == 0 {
			s.pfWaiter[coreID].Wait(p)
			continue
		}
		item := s.pfQueue[coreID][0]
		s.pfQueue[coreID] = s.pfQueue[coreID][1:]
		sl := &s.slots[item.slot]
		if sl.gen != item.gen {
			continue // already mapped by a minor faulter and recycled
		}
		op := sl.op
		op.Wait(p)
		s.finishFetch(p, item.slot, item.gen)
	}
}

// ReadRemote lets a guide peek at memory-node content (a subpage read on
// the guide's own QP, §4.5) without touching page state. addr..addr+len(buf)
// must lie within one page. For Local pages it reads the frame directly —
// the guide's hook sees a coherent view either way.
func (s *System) ReadRemote(p *sim.Proc, coreID int, addr uint64, buf []byte) error {
	vpn := pagetable.VPNOf(addr)
	off := addr & (PageSize - 1)
	if int(off)+len(buf) > PageSize {
		return fmt.Errorf("core: subpage read at %#x crosses a page", addr)
	}
	pte := s.Table.Lookup(vpn)
	switch pte.Tag() {
	case pagetable.TagLocal:
		copy(buf, s.Pool.Bytes(dram.FrameID(pte.Frame()))[off:])
		p.Advance(sim.Time(len(buf)/64+1) * s.MMUC.CacheLine)
		return nil
	case pagetable.TagRemote, pagetable.TagFetching:
		node, remote, ok := s.remoteOf(vpn)
		if !ok {
			return fmt.Errorf("core: subpage read outside DDC regions: %#x", addr)
		}
		op := s.Hubs[node].QP(coreID, comm.ModGuide).Read(p.Now(), remote+off, buf)
		op.Wait(p)
		return nil
	default:
		return fmt.Errorf("core: subpage read of %v page at %#x", pte.Tag(), addr)
	}
}
