package core

import (
	"fmt"

	"dilos/internal/comm"
	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/mmu"
	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
	"dilos/internal/trace"
)

// coreHandler adapts one core's faults onto the system.
type coreHandler struct {
	sys    *System
	coreID int
}

// HandleFault implements mmu.FaultHandler — the DiLOS page fault handler
// (§4.2). The paths are:
//
//	Remote   → flip to Fetching, allocate a frame, issue the RDMA read on
//	           this core's fault QP, and — while the read is in flight —
//	           run the PTE hit tracker, the prefetcher, and the app-aware
//	           guide hook; then map the page. (Major fault.)
//	Fetching → another core or the prefetcher already has the page in
//	           flight: wait on its op instead of fetching twice, and map it
//	           if the owner has not. (Minor fault.)
//	Action   → guided paging: decode the live-chunk vector logged at
//	           eviction and fetch only those chunks with a vectored read.
//	Local    → benign race (resolved while we trapped): return and retry.
func (h *coreHandler) HandleFault(c *mmu.Core, vpn pagetable.VPN, write bool) {
	s := h.sys
	p := c.Proc
	s.catchUpMapper(p, h.coreID)
	pte := s.Table.Entry(vpn)

	switch pte.Tag() {
	case pagetable.TagLocal:
		return // resolved concurrently
	case pagetable.TagRemote:
		p.Advance(c.Costs.Exception)
		s.BD.Exception += c.Costs.Exception
		s.MajorFaults.Inc()
		if s.Trace != nil {
			s.Trace.RecordOn(p.Now(), vpn, trace.Major, h.coreID)
		}
		if s.hugeFault(p, h.coreID, vpn) {
			return
		}
		// The fetch offset comes from the (failover-aware) slot mapping,
		// not the PTE payload, so a page whose primary node died reads
		// from its next live replica. majorFetch resolves the slot and
		// counts ReplicaFetches when the fetch is actually served by a
		// non-primary copy.
		s.majorFetch(p, h.coreID, vpn, pte, func(qp *fabric.QP, now sim.Time, base uint64, buf []byte) *fabric.Op {
			return qp.Read(now, base, buf)
		}, false)
	case pagetable.TagAction:
		p.Advance(c.Costs.Exception)
		s.BD.Exception += c.Costs.Exception
		s.MajorFaults.Inc()
		s.GuidedFetches.Inc()
		payload := pte.Payload()
		// The vector-log slot is consumed inside the issue callback, which
		// majorFetch only invokes after winning the PTE transition — a
		// racing faulter must not release the same slot twice. The chunks
		// are cached across retries: the log slot is released exactly once
		// even when the fetch fails over to another replica.
		var chunks []pagemgr.Chunk
		s.majorFetch(p, h.coreID, vpn, pte, func(qp *fabric.QP, now sim.Time, base uint64, buf []byte) *fabric.Op {
			if chunks == nil {
				chunks = s.Mgr.Vector(payload)
			}
			segs := make([]fabric.Seg, len(chunks))
			for i, ch := range chunks {
				segs[i] = fabric.Seg{Off: base + uint64(ch.Off), Buf: buf[ch.Off : ch.Off+ch.Len]}
			}
			return qp.ReadV(now, segs)
		}, true)
	case pagetable.TagFetching:
		slot := pte.Payload()
		sl := &s.slots[slot]
		gen := sl.gen
		op := sl.op
		if op == nil && !sl.demand {
			// Prefetch issue and publish happen without an intervening
			// yield, so a visible prefetch Fetching PTE always has its op
			// installed. (A demand slot may briefly have none while its
			// owner waits out an all-replicas-down window.)
			panic("core: fetching PTE with no op")
		}
		if op != nil && op.Err == nil && op.CompleteAt+s.Costs.Map <= p.Now() {
			// The data already arrived; on real hardware the (parallel)
			// prefetch mapper would have installed the PTE by now — paying
			// the map on its own core — and no fault would have trapped.
			// The serialized simulation just hadn't run the mapper yet:
			// install the mapping without charging the app anything.
			s.LateMapHits.Inc()
			if s.Trace != nil {
				s.Trace.RecordOn(p.Now(), vpn, trace.Hit, h.coreID)
			}
			s.mapFetched(p, h.coreID, slot, gen, false)
			// Keep the readahead window moving: like Linux's PG_readahead
			// marker, a hit on a freshly prefetched page still triggers the
			// next async window (at its normal CPU cost) — otherwise the
			// window only advances on faults and stalls exactly when
			// prefetching is winning.
			s.runPrefetch(p, h.coreID, vpn, false)
			return
		}
		t0 := p.Now()
		p.Advance(c.Costs.Exception)
		s.MinorFaults.Inc()
		if s.Trace != nil {
			s.Trace.RecordOn(p.Now(), vpn, trace.Minor, h.coreID)
		}
		// §4.3: the prefetcher and hit tracker run in the fault handler —
		// minor faults included — overlapping whatever wait remains.
		p.Advance(s.Costs.HandlerCheck)
		guideDur, issueDur := s.runPrefetch(p, h.coreID, vpn, false)
		tWait := p.Now()
		wake, mapped := s.awaitInflight(p, h.coreID, slot, gen)
		s.MinorFaultLat.Record(p.Now() - t0)
		if s.Tel != nil {
			var span telemetry.Span
			span.Kind = telemetry.KindMinorFault
			span.Start, span.End = t0, p.Now()
			span.Arg = uint64(vpn)
			span.Stages[telemetry.StageException] = c.Costs.Exception
			span.Stages[telemetry.StageLookup] = s.Costs.HandlerCheck
			span.Stages[telemetry.StageGuide] = guideDur
			span.Stages[telemetry.StageIssue] = issueDur
			if w := p.Now() - tWait - wake - mapped; w > 0 {
				span.Stages[telemetry.StageWait] = w
			}
			span.Stages[telemetry.StageWake] = wake
			span.Stages[telemetry.StageMap] = mapped
			s.Tel.Emit(s.telCore[h.coreID], span)
		}
	default:
		panic(fmt.Sprintf("core: segfault at vpn %d (invalid PTE)", vpn))
	}
}

// awaitInflight is the minor faulter's wait: block on the in-flight op and
// map the page when it lands. Failure handling depends on who owns the
// slot. A demand owner is already running its own recovery (re-issuing and
// republishing sl.op), so the minor faulter just re-checks until the owner
// succeeds or maps. A failed *prefetch* has no recovering owner — whoever
// notices first (this faulter or the prefetch mapper) reverts the PTE to
// Remote so the access retries as a major fault.
//
// The returned durations feed the caller's telemetry span: how long after
// the op's completion this process resumed (wake) and how long the map
// took (mapped) — both zero when someone else mapped the page first.
func (s *System) awaitInflight(p *sim.Proc, coreID int, slot uint64, gen uint64) (wake, mapped sim.Time) {
	for {
		sl := &s.slots[slot]
		if sl.gen != gen || !sl.active {
			return // mapped (and possibly recycled) by someone else
		}
		op := sl.op
		if op == nil {
			p.Sleep(recoverPollInterval) // owner waiting out a dead replica set
			continue
		}
		op.Wait(p)
		if sl.gen != gen || !sl.active {
			return
		}
		if sl.op != op {
			continue // owner re-issued while we waited; track the new op
		}
		if op.Err != nil {
			if sl.demand {
				p.Sleep(recoverPollInterval)
				continue
			}
			s.revertPrefetch(p, slot, gen)
			return
		}
		if w := p.Now() - op.CompleteAt; w > 0 {
			wake = w
		}
		tMap := p.Now()
		s.finishFetch(p, coreID, slot, gen)
		mapped = p.Now() - tMap
		return
	}
}

// recoverPollInterval paces processes waiting on someone else's recovery
// (minor faulters behind a failed demand fetch, fetches stuck with every
// replica down waiting for the health monitor to act).
const recoverPollInterval = 20 * sim.Microsecond

// maxRecoverRounds bounds the fetch recovery loop. Each round walks every
// readable replica with full retry/backoff and then sleeps; thousands of
// fruitless rounds mean the configuration is unrecoverable (e.g. a
// permanent crash of the only replica's node), and a loud panic beats a
// simulation that silently never finishes.
const maxRecoverRounds = 4096

// majorFetch is the §4.2 fast path: one PTE transition, one frame, one
// asynchronous RDMA request, with prefetch + hit tracking + the guide hook
// hidden in the fetch window, then the mapping. The issue callback builds
// the op against a replica base offset so the same shape (whole-page or
// vectored) can be re-issued against another replica on failure.
func (s *System) majorFetch(p *sim.Proc, coreID int, vpn pagetable.VPN, pte *pagetable.PTE,
	issue func(qp *fabric.QP, now sim.Time, base uint64, buf []byte) *fabric.Op, zeroFill bool) {
	t0 := p.Now()
	rec := s.Tel != nil
	var span telemetry.Span
	if rec {
		// The span starts at the hardware exception, which HandleFault
		// already charged before calling in — so the rendered bar covers
		// the same interval FaultLat samples.
		span.Kind = telemetry.KindMajorFault
		span.Start = t0 - s.MMUC.Exception
		span.Arg = uint64(vpn)
		span.Stages[telemetry.StageException] = s.MMUC.Exception
	}
	p.Advance(s.Costs.HandlerCheck)

	expected := pte.Tag()
	var old pagetable.PTE
	if s.shards > 0 {
		// Sharded mode snapshots the full entry: the publish below is a
		// full-value CAS (pagetable.TryTransition), so a migration that
		// re-homed the page — same tag, new payload — fails the swap too.
		old = *pte
	}
	frame := s.Mgr.AllocFrame(p)
	if s.wideLocks {
		// The shared-structure baseline serializes every transition behind
		// the manager-wide lock. Acquired only after AllocFrame: the frame
		// wait can block on the reclaimer, which sweeps holding this lock.
		s.Mgr.Wide.Acquire(p)
	}
	stale := pte.Tag() != expected
	if s.shards > 0 {
		stale = *pte != old
	}
	if stale {
		// AllocFrame (and the wide-lock wait) can yield, and another core
		// may have started fetching — or finished mapping — this page
		// meanwhile. Back off; the retried translation takes the
		// minor/local path against the winner's PTE.
		if s.wideLocks {
			s.Mgr.Wide.Release(p)
		}
		s.Pool.Free(frame)
		return
	}
	s.Pool.Meta(frame).Pinned = true
	p.Advance(s.Costs.FrameAlloc)
	buf := s.Pool.Bytes(frame)
	if zeroFill {
		clear(buf)
		p.Advance(s.Costs.ZeroFill)
	}
	slot := s.newSlot(vpn, frame)
	s.slots[slot].demand = true
	if s.shards > 0 {
		p.Advance(s.Costs.TagCAS)
		if !s.Table.TryTransition(vpn, old, pagetable.Fetching(slot)) {
			// Nothing yields between the staleness check and here.
			panic("core: Fetching publish lost a race without a yield")
		}
	} else {
		*pte = pagetable.Fetching(slot)
	}
	if s.wideLocks {
		s.Mgr.Wide.Release(p)
	}
	s.BD.Handler += p.Now() - t0
	if rec {
		span.Stages[telemetry.StageLookup] = p.Now() - t0
	}

	slots, failover, ok := s.space.Resolve(vpn)
	if !ok {
		panic(fmt.Sprintf("core: remote PTE for unmapped vpn %d", vpn))
	}
	tIssue := p.Now()
	var op *fabric.Op
	counted := false
	if len(slots) > 0 {
		if failover {
			s.ReplicaFetches.Inc()
			counted = true
		}
		op = issue(s.Hubs[slots[0].Node].QP(coreID, comm.ModFault), p.Now(), slots[0].Off, buf)
		s.slots[slot].op = op
	}

	// Work hidden in the fetch window (§4.3): hit tracker scan, prefetch
	// issuance, guide hook.
	gen := s.slots[slot].gen
	guideDur, issueDur := s.runPrefetch(p, coreID, vpn, true)
	if len(s.guides) > 0 {
		tGuide := p.Now()
		for _, g := range s.guides {
			g.OnFault(coreID, vpn)
		}
		guideDur += p.Now() - tGuide
	}

	tWait := p.Now()
	if op != nil {
		op.Wait(p)
	}
	if op == nil || op.Err != nil {
		s.recoverFetch(p, coreID, vpn, slot, gen, counted, buf, issue)
	}
	s.BD.Fetch += p.Now() - tIssue
	tMap := p.Now()
	if rec {
		span.Stages[telemetry.StageIssue] = issueDur
		span.Stages[telemetry.StageGuide] = guideDur
		span.Stages[telemetry.StageWait] = tMap - tWait
	}
	s.finishFetch(p, coreID, slot, gen)
	s.BD.Map += p.Now() - tMap
	s.BD.N++
	lat := p.Now() - t0 + s.MMUC.Exception
	s.FaultLat.Record(lat)
	if s.sloMon != nil {
		// One ring-bucket increment — the plane's entire fault-path cost.
		s.sloMon.Observe(s.sloID, p.Now(), lat)
	}
	if rec {
		span.Stages[telemetry.StageMap] = p.Now() - tMap
		span.End = p.Now()
		s.Tel.Emit(s.telCore[coreID], span)
	}
}

// recoverFetch is the fault handler's failover loop: re-resolve the page
// (the health monitor may have failed its node over since the last
// attempt), walk every readable replica with retry/backoff, and — when no
// replica serves — wait a beat for the monitor and try again. Every
// re-issued op is republished into the inflight slot so minor faulters
// track the live attempt.
func (s *System) recoverFetch(p *sim.Proc, coreID int, vpn pagetable.VPN, slot uint64, gen uint64,
	counted bool, buf []byte, issue func(qp *fabric.QP, now sim.Time, base uint64, buf []byte) *fabric.Op) {
	for round := 0; round < maxRecoverRounds; round++ {
		slots, failover, ok := s.space.Resolve(vpn)
		if !ok {
			panic(fmt.Sprintf("core: recovering fetch for unmapped vpn %d", vpn))
		}
		for i, rsl := range slots {
			rqp := &fabric.ReliableQP{
				QP:  s.Hubs[rsl.Node].QP(coreID, comm.ModFault),
				Pol: fabric.DefaultRetryPolicy(),
				St:  s.FetchRetries,
				Rng: &s.retryRng,
			}
			base := rsl.Off
			err := rqp.Do(p, func(now sim.Time) *fabric.Op {
				op := issue(rqp.QP, now, base, buf)
				if sp := &s.slots[slot]; sp.gen == gen && sp.active {
					sp.op = op
				}
				return op
			})
			if err == nil {
				if (failover || i > 0) && !counted {
					s.ReplicaFetches.Inc()
				}
				return
			}
		}
		// No replica reachable this round; give the health monitor time to
		// declare the node dead (failing it over) or bring one back.
		p.Sleep(recoverPollInterval)
		if sp := &s.slots[slot]; sp.gen != gen || !sp.active {
			return // mapped concurrently off one of our successful attempts
		}
	}
	panic(fmt.Sprintf("core: vpn %d unreachable after %d recovery rounds", vpn, maxRecoverRounds))
}

// finishFetch maps a completed fetch if nobody else has: exactly one of the
// original faulter, a minor faulter, or the prefetch mapper performs the
// mapping. A slot whose op failed is never mapped — its owner (or the
// prefetch revert) is responsible for it.
func (s *System) finishFetch(p *sim.Proc, coreID int, slot uint64, gen uint64) {
	s.mapFetched(p, coreID, slot, gen, true)
}

// mapFetched installs a completed fetch. charge=false is the late-map-hit
// path, where the map cost belongs to the (parallel) mapper core, not the
// process that happened to notice the completed op. coreID homes the frame:
// in sharded mode the page enters the mapping core's LRU shard.
func (s *System) mapFetched(p *sim.Proc, coreID int, slot uint64, gen uint64, charge bool) {
	sl := &s.slots[slot]
	if sl.gen != gen || !sl.active {
		return // already mapped (or slot recycled after mapping)
	}
	if sl.op != nil && sl.op.Err != nil {
		return
	}
	if s.wideLocks {
		// The shared baseline serializes the Local publish behind the
		// manager-wide lock like every other transition. The wait can
		// yield, so the claim below must come after it — and the slot must
		// be re-validated on the other side: someone else may have mapped
		// (or the owner re-issued) while this process queued.
		s.Mgr.Wide.Acquire(p)
		if sl.gen != gen || !sl.active || (sl.op != nil && sl.op.Err != nil) {
			s.Mgr.Wide.Release(p)
			return
		}
	}
	sl.active = false
	if charge {
		p.Advance(s.Costs.Map)
		if s.shards > 0 {
			p.Advance(s.Costs.TagCAS)
		}
	}
	s.Table.Set(sl.vpn, pagetable.Local(uint64(sl.frame), true))
	if s.wideLocks {
		s.Mgr.Wide.Release(p)
	}
	s.Pool.Meta(sl.frame).Pinned = false
	s.Mgr.InsertLRUFor(coreID, sl.frame, sl.vpn)
	s.releaseSlot(slot)
}

// revertPrefetch undoes a failed prefetch: the PTE returns to Remote (its
// stable primary identity), the frame is freed, and the slot is recycled —
// all without a yield, so exactly one of the prefetch mapper and a minor
// faulter performs it. The next access takes a fresh major fault through
// the (failover-aware) fetch path.
func (s *System) revertPrefetch(p *sim.Proc, slot uint64, gen uint64) {
	sl := &s.slots[slot]
	if sl.gen != gen || !sl.active {
		return
	}
	sl.active = false
	prim, ok := s.space.Primary(sl.vpn)
	if !ok {
		panic(fmt.Sprintf("core: reverting prefetch of unmapped vpn %d", sl.vpn))
	}
	s.Table.Set(sl.vpn, pagetable.Remote(prim.Off/PageSize))
	s.Pool.Meta(sl.frame).Pinned = false
	s.Pool.Free(sl.frame)
	s.PrefetchFails.Inc()
	s.releaseSlot(slot)
}

// runPrefetch consults the hit tracker and the prefetch policy, then issues
// asynchronous reads for every proposed page that is still Remote. The
// per-core prefetch mapper daemon maps them into the unified page table as
// they complete — "immediately", with no swap-cache stopover.
//
// The two returned durations split the CPU spent for telemetry: guide is
// the hit-tracker scan plus policy decision, issue is the time posting the
// proposed window onto the fabric.
func (s *System) runPrefetch(p *sim.Proc, coreID int, vpn pagetable.VPN, major bool) (guide, issue sim.Time) {
	if _, isNone := s.Pf.(prefetch.None); isNone {
		return 0, 0
	}
	t0 := p.Now()
	p.Advance(s.Track.Scan(s.Table))
	s.Hist.Note(vpn)
	ctx := prefetch.Context{
		VPN:      vpn,
		Major:    major,
		HitRatio: s.Track.Ratio(),
		History:  s.Hist.Deltas(),
	}
	targets := s.Pf.OnFault(ctx)
	t1 := p.Now()
	s.SchedulePrefetch(p, coreID, targets)
	return t1 - t0, p.Now() - t1
}

// SchedulePrefetch issues page prefetches for every target that is
// currently Remote (others are skipped — already local or in flight). It
// is also the entry point app-aware guides use to request pages (§4.3).
// With Config.Batch the whole window is posted per node through one
// doorbell (fabric.QP.Submit), contiguous remote offsets coalesced into
// vectored reads; otherwise each page is a solo qp.Read.
func (s *System) SchedulePrefetch(p *sim.Proc, coreID int, targets []pagetable.VPN) {
	if len(targets) == 0 {
		return
	}
	if s.Batch {
		s.schedulePrefetchBatched(p, coreID, targets)
		return
	}
	var noted []pagetable.VPN
	for _, t := range targets {
		p.Advance(s.Costs.PrefetchFilter)
		if s.Table.Lookup(t).Tag() != pagetable.TagRemote {
			continue
		}
		node, remote, ok := s.remoteOf(t)
		if !ok {
			continue
		}
		qp := s.Hubs[node].QP(coreID, comm.ModPrefetch)
		frame, ok := s.Mgr.TryAllocFrame(p)
		if !ok {
			break // no headroom: prefetching must not force reclamation
		}
		s.Pool.Meta(frame).Pinned = true
		slot := s.newSlot(t, frame)
		s.Table.Set(t, pagetable.Fetching(slot))
		op := qp.Read(p.Now(), remote, s.Pool.Bytes(frame))
		s.slots[slot].op = op
		s.pfQueue[coreID] = append(s.pfQueue[coreID], pfItem{slot: slot, gen: s.slots[slot].gen})
		s.Prefetches.Inc()
		noted = append(noted, t)
		p.Advance(s.Costs.PrefetchIssue)
	}
	if len(noted) > 0 {
		s.Track.Note(noted)
		s.pfWaiter[coreID].Wake(p.Now())
	}
}

// batchChunk bounds how many WQEs ride behind one doorbell. Real senders
// (mlx5-style drivers, Leap's window issue) ring the doorbell every few
// WQEs rather than once at the end of a deep window: an unbounded batch
// delays the *first* page of the window by the entire window's CPU build
// time, and the head of a prefetch window is exactly what the next minor
// fault waits on. Eight WQEs keeps the head delay near a single issue
// while still amortizing the doorbell across the tail.
const batchChunk = 8

// schedulePrefetchBatched is the doorbell-batched prefetch issue. The
// window is processed in chunks of batchChunk targets; each chunk runs in
// two phases with no yield anywhere (Advance and Wake never yield), which
// is what keeps the Fetching-PTE invariant: every published prefetch slot
// has its op installed before any other process can run.
//
//	Phase 1: filter the chunk's targets, allocate + pin frames, publish
//	         Fetching PTEs, record the (node, offset, buffer, slot) tuples.
//	Phase 2: per node, post the chunk through one doorbell and install
//	         each resulting op into the slot its page came from.
//
// Each page keeps its own work-queue entry (and so its own completion
// time) on purpose: coalescing prefetch reads into vectored ops would make
// the first page of every vector complete as late as the last, delaying
// its mapping and stretching exactly the minor-fault waits prefetching
// exists to hide. Offset coalescing pays off on the cleaner's write-backs,
// where only the final completion is ever waited on.
//
// All intermediate state lives in the core's scratch arena — a fault in
// steady state allocates nothing beyond the ops themselves.
func (s *System) schedulePrefetchBatched(p *sim.Proc, coreID int, targets []pagetable.VPN) {
	sc := &s.pfScratch[coreID]
	sc.noted = sc.noted[:0]
	if cap(sc.segs) < batchChunk {
		// Reserve the seg arena so per-node appends never reallocate under
		// the Req subslices pointing into it.
		sc.segs = make([]fabric.Seg, 0, batchChunk)
	}
	for len(targets) > 0 {
		chunk := targets
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		targets = targets[len(chunk):]
		sc.items = sc.items[:0]
		for _, t := range chunk {
			p.Advance(s.Costs.PrefetchFilter)
			if s.Table.Lookup(t).Tag() != pagetable.TagRemote {
				continue
			}
			node, remote, ok := s.remoteOf(t)
			if !ok {
				continue
			}
			frame, ok := s.Mgr.TryAllocFrame(p)
			if !ok {
				targets = nil // no headroom: prefetching must not force reclamation
				break
			}
			s.Pool.Meta(frame).Pinned = true
			slot := s.newSlot(t, frame)
			s.Table.Set(t, pagetable.Fetching(slot))
			sc.items = append(sc.items, pfIssue{node: node, off: remote, buf: s.Pool.Bytes(frame), slot: slot, gen: s.slots[slot].gen})
			s.Prefetches.Inc()
			sc.noted = append(sc.noted, t)
		}
		if len(sc.items) == 0 {
			continue
		}
		done := 0
		for done < len(sc.items) {
			// Next unsubmitted node, preserving first-appearance order so
			// runs stay deterministic (O(items·nodes), tiny factors).
			node := -1
			for _, it := range sc.items {
				if it.node >= 0 && (node == -1 || it.node == node) {
					node = it.node
					break
				}
			}
			sc.segs = sc.segs[:0]
			sc.reqs = sc.reqs[:0]
			sc.ops = sc.ops[:0]
			qp := s.Hubs[node].QP(coreID, comm.ModPrefetch)
			for i := range sc.items {
				if it := &sc.items[i]; it.node == node {
					sc.segs = append(sc.segs, fabric.Seg{Off: it.off, Buf: it.buf})
					sc.reqs = append(sc.reqs, fabric.Req{Kind: fabric.OpRead, Segs: sc.segs[len(sc.segs)-1:]})
				}
			}
			for r := range sc.reqs {
				if r == 0 {
					p.Advance(s.Costs.PrefetchIssue)
				} else {
					p.Advance(s.Costs.PrefetchWQE)
				}
			}
			sc.ops = qp.Submit(p.Now(), sc.reqs, sc.ops)
			// Requests carry this node's pages in order; hand each op to
			// the slot its page came from.
			r := 0
			for i := range sc.items {
				if it := &sc.items[i]; it.node == node {
					s.slots[it.slot].op = sc.ops[r]
					it.node = -1 // submitted
					done++
					r++
				}
			}
		}
		// The mapper queue gets the chunk in *target* order, not node-
		// grouped submission order: the app walks pages in target order,
		// and a queue grouped by node would leave the head blocked on one
		// link while pages from another node sit completed but unmapped —
		// every such access would pay the map cost on the app core.
		for i := range sc.items {
			it := &sc.items[i]
			s.pfQueue[coreID] = append(s.pfQueue[coreID], pfItem{slot: it.slot, gen: it.gen})
		}
	}
	if len(sc.noted) > 0 {
		s.Track.Note(sc.noted)
		s.pfWaiter[coreID].Wake(p.Now())
	}
}

// catchUpMapper brings this core's prefetch mapper up to date with the
// present: every queued prefetch whose data has already arrived (op
// complete, map delay elapsed) gets its PTE installed now, charge-free. On
// real hardware the mapper runs on its own core in parallel and would have
// done exactly this by the current instant; the serialized simulation only
// schedules the mapper daemon when some process yields, so without the
// catch-up the app observes stale Fetching PTEs — it pays map costs for
// pages that were ready (late-map hits), and the PTE hit tracker scans
// those pages as in-flight misses, collapsing adaptive prefetch windows
// that were in fact hitting. The whole queue is walked — completions from
// different nodes' links interleave, so ripe ops can sit behind unripe
// ones; unripe (and failed) entries stay queued for the daemon backstop.
func (s *System) catchUpMapper(p *sim.Proc, coreID int) {
	// The daemon holds the queue head while blocked on its completion; that
	// entry is the commonest ripe page, so check it first.
	if held := &s.pfHeld[coreID]; held.valid {
		if sl := &s.slots[held.item.slot]; sl.gen == held.item.gen && sl.active {
			if op := sl.op; op != nil && op.Err == nil && op.CompleteAt+s.Costs.Map <= p.Now() {
				s.mapFetched(p, coreID, held.item.slot, held.item.gen, false)
			}
		}
	}
	q := s.pfQueue[coreID]
	keep := q[:0]
	for _, it := range q {
		sl := &s.slots[it.slot]
		if sl.gen != it.gen || !sl.active {
			continue // already mapped and recycled; drop from the queue
		}
		op := sl.op
		if op != nil && op.Err == nil && op.CompleteAt+s.Costs.Map <= p.Now() {
			s.mapFetched(p, coreID, it.slot, it.gen, false)
			continue
		}
		keep = append(keep, it)
	}
	s.pfQueue[coreID] = keep
}

// pfMapLoop is the per-core prefetch mapper: it waits for each in-flight
// prefetch and maps it into the unified page table the moment it completes
// (unless a minor faulter got there first).
func (s *System) pfMapLoop(p *sim.Proc, coreID int) {
	for {
		if len(s.pfQueue[coreID]) == 0 {
			s.pfWaiter[coreID].Wait(p)
			continue
		}
		item := s.pfQueue[coreID][0]
		s.pfQueue[coreID] = s.pfQueue[coreID][1:]
		sl := &s.slots[item.slot]
		if sl.gen != item.gen {
			continue // already mapped by a minor faulter and recycled
		}
		op := sl.op
		// Publish the held entry so catchUpMapper can install it if its
		// completion ripens while this daemon is waiting to be scheduled.
		s.pfHeld[coreID] = pfHeldItem{item: item, valid: true}
		t0 := p.Now()
		op.Wait(p)
		s.pfHeld[coreID].valid = false
		if sl.gen != item.gen || !sl.active {
			continue
		}
		if op.Err != nil {
			// A failed prefetch is disposable: revert the page to Remote
			// (unless a minor faulter already did) and move on.
			s.revertPrefetch(p, item.slot, item.gen)
			continue
		}
		vpn := sl.vpn // captured before finishFetch recycles the slot
		tMap := p.Now()
		s.finishFetch(p, coreID, item.slot, item.gen)
		if s.Tel != nil {
			var span telemetry.Span
			span.Kind = telemetry.KindPrefetchMap
			span.Start, span.End = t0, p.Now()
			span.Arg = uint64(vpn)
			if w := op.CompleteAt - t0; w > 0 {
				span.Stages[telemetry.StageWait] = w
			}
			wakeFrom := t0
			if op.CompleteAt > wakeFrom {
				wakeFrom = op.CompleteAt
			}
			if w := tMap - wakeFrom; w > 0 {
				span.Stages[telemetry.StageWake] = w
			}
			span.Stages[telemetry.StageMap] = p.Now() - tMap
			s.Tel.Emit(s.telPf[coreID], span)
		}
	}
}

// ReadRemote lets a guide peek at memory-node content (a subpage read on
// the guide's own QP, §4.5) without touching page state. addr..addr+len(buf)
// must lie within one page. For Local pages it reads the frame directly —
// the guide's hook sees a coherent view either way.
func (s *System) ReadRemote(p *sim.Proc, coreID int, addr uint64, buf []byte) error {
	vpn := pagetable.VPNOf(addr)
	off := addr & (PageSize - 1)
	if int(off)+len(buf) > PageSize {
		return fmt.Errorf("core: subpage read at %#x crosses a page", addr)
	}
	pte := s.Table.Lookup(vpn)
	switch pte.Tag() {
	case pagetable.TagLocal:
		copy(buf, s.Pool.Bytes(dram.FrameID(pte.Frame()))[off:])
		p.Advance(sim.Time(len(buf)/64+1) * s.MMUC.CacheLine)
		return nil
	case pagetable.TagRemote, pagetable.TagFetching:
		node, remote, ok := s.remoteOf(vpn)
		if !ok {
			return fmt.Errorf("core: subpage read outside DDC regions: %#x", addr)
		}
		op := s.Hubs[node].QP(coreID, comm.ModGuide).Read(p.Now(), remote+off, buf)
		op.Wait(p)
		return op.Err
	default:
		return fmt.Errorf("core: subpage read of %v page at %#x", pte.Tag(), addr)
	}
}
