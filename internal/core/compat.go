package core

import "fmt"

// This file is the compatibility layer (§5 "Compatibility layer"): DDC
// memory APIs (ddc_malloc / ddc_free over mmap(MAP_DDC)) and the
// loader-style symbol rebinding that gives existing binaries disaggregated
// memory without modification. In the real DiLOS a custom ELF loader
// patches malloc/free in the application's symbol table; Go has no PLT to
// patch, so the Loader below performs the same interposition over an
// explicit symbol table — the mechanism (rebind at load time, application
// code untouched) is the same.

// mallocRegionPages is the granularity at which the DDC heap grows.
const mallocRegionPages = 4096 // 16 MiB per region

type heapArena struct {
	base uint64
	size uint64
	used uint64
}

// Malloc is ddc_malloc: it returns disaggregated memory, growing the DDC
// heap with MmapDDC as needed. Allocations are 16-byte aligned; requests
// of a page or more are page-aligned (so per-page guide bitmaps line up).
func (s *System) Malloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	align := uint64(16)
	if n >= PageSize {
		align = PageSize
	}
	n = (n + 15) &^ 15
	if s.heap == nil || alignUp(s.heap.used, align)+n > s.heap.size {
		pages := uint64(mallocRegionPages)
		if need := (n + PageSize - 1) / PageSize; need > pages {
			pages = need
		}
		base, err := s.MmapDDC(pages)
		if err != nil {
			return 0, fmt.Errorf("ddc_malloc: %w", err)
		}
		s.heap = &heapArena{base: base, size: pages * PageSize}
	}
	s.heap.used = alignUp(s.heap.used, align)
	addr := s.heap.base + s.heap.used
	s.heap.used += n
	return addr, nil
}

// Free is ddc_free. The compat heap is a region allocator (like OSv's
// malloc for large objects); fine-grained reuse with live-object tracking
// is the job of the guided allocator in internal/dalloc.
func (s *System) Free(addr, n uint64) {}

func alignUp(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// Loader models DiLOS' custom ELF loader: it exposes the symbol table of a
// "binary" and rebinds allocation symbols to the DDC implementations at
// load time, plus the hooking interface guides use to observe application
// functions (§5).
type Loader struct {
	sys     *System
	symbols map[string]any
	hooks   map[string][]func(args ...uint64)
}

// NewLoader creates a loader for the system.
func NewLoader(sys *System) *Loader {
	l := &Loader{sys: sys, symbols: map[string]any{}, hooks: map[string][]func(...uint64){}}
	// Default libc-ish symbols before patching.
	l.symbols["malloc"] = func(n uint64) (uint64, error) {
		return 0, fmt.Errorf("loader: local malloc not available in a DDC LibOS image")
	}
	return l
}

// Patch rebinds the allocation symbols to the DDC APIs — what DiLOS' ELF
// loader does to every loaded application binary.
func (l *Loader) Patch() {
	l.symbols["malloc"] = func(n uint64) (uint64, error) { return l.sys.Malloc(n) }
	l.symbols["free"] = func(addr, n uint64) { l.sys.Free(addr, n) }
}

// Lookup resolves a symbol, as application code would through the PLT.
func (l *Loader) Lookup(name string) (any, bool) {
	v, ok := l.symbols[name]
	return v, ok
}

// Hook registers a guide callback on an application symbol (the "hooking
// interfaces of an application binary" guides use to learn, e.g., the
// position of the node a list traversal is visiting).
func (l *Loader) Hook(symbol string, fn func(args ...uint64)) {
	l.hooks[symbol] = append(l.hooks[symbol], fn)
}

// Call invokes the hooks for a symbol (applications call this at the
// instrumented points; the binary itself is unmodified — the loader
// injected the trampoline).
func (l *Loader) Call(symbol string, args ...uint64) {
	for _, fn := range l.hooks[symbol] {
		fn(args...)
	}
}
