package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dilos/internal/dalloc"
	"dilos/internal/fabric"
	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// forwardGuide lets the eviction guide be wired after the allocator exists.
type forwardGuide struct{ g pagemgr.EvictionGuide }

func (f *forwardGuide) LiveChunks(v pagetable.VPN) ([]pagemgr.Chunk, bool) {
	if f.g == nil {
		return nil, false
	}
	return f.g.LiveChunks(v)
}

// TestGuidedPagingEndToEndIntegrity is the §4.4 data-integrity gauntlet:
// a guided allocator with random alloc/free churn under heavy eviction
// pressure, so pages constantly leave as Action PTEs (vectored write-back
// of live chunks) and come back through vectored fetches. Every live
// object must read back exactly; dead bytes may be anything.
func TestGuidedPagingEndToEndIntegrity(t *testing.T) {
	fw := &forwardGuide{}
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames:   64,
		Cores:         2,
		RemoteBytes:   128 << 20,
		Fabric:        fabric.DefaultParams(),
		EvictionGuide: fw,
	})
	sys.Start()

	type obj struct {
		addr uint64
		data []byte
	}
	rng := rand.New(rand.NewSource(77))
	sys.Launch("churn", 0, func(sp *DDCProc) {
		alloc := dalloc.New(sp)
		fw.g = alloc
		var live []obj
		check := func(o obj) bool {
			got := make([]byte, len(o.data))
			sp.Load(o.addr, got)
			return bytes.Equal(got, o.data)
		}
		for i := 0; i < 4000; i++ {
			switch {
			case len(live) < 50 || rng.Intn(3) > 0:
				size := []int{24, 64, 200, 512, 1500}[rng.Intn(5)]
				data := make([]byte, size)
				rng.Read(data)
				addr := alloc.Alloc(uint64(size))
				sp.Store(addr, data)
				live = append(live, obj{addr, data})
			case rng.Intn(2) == 0:
				k := rng.Intn(len(live))
				if !check(live[k]) {
					t.Errorf("iter %d: object at %#x corrupted", i, live[k].addr)
					return
				}
			default:
				k := rng.Intn(len(live))
				alloc.Free(live[k].addr)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		// Final full audit.
		for _, o := range live {
			if !check(o) {
				t.Errorf("final audit: object at %#x corrupted", o.addr)
				return
			}
		}
	})
	eng.Run()

	if sys.GuidedFetches.N == 0 {
		t.Fatal("no Action-PTE fetches — guided paging never engaged")
	}
	if sys.Mgr.VectorSaves.N == 0 {
		t.Fatal("guided paging saved no bytes")
	}
}

// TestGuidedPagingSavesBandwidth compares link bytes with and without the
// guide on the same fragmented-heap workload.
func TestGuidedPagingSavesBandwidth(t *testing.T) {
	run := func(guided bool) (rx, tx int64) {
		fw := &forwardGuide{}
		eng := sim.New()
		cfg := Config{
			CacheFrames: 64, Cores: 1, RemoteBytes: 128 << 20,
			Fabric: fabric.DefaultParams(),
		}
		if guided {
			cfg.EvictionGuide = fw
		}
		sys := New(eng, cfg)
		sys.Start()
		rng := rand.New(rand.NewSource(3))
		sys.Launch("frag", 0, func(sp *DDCProc) {
			alloc := dalloc.New(sp)
			fw.g = alloc
			// Allocate many small objects, free 70%, then sweep-read the
			// survivors repeatedly under pressure.
			var addrs []uint64
			for i := 0; i < 6000; i++ {
				a := alloc.Alloc(128)
				sp.StoreU64(a, uint64(i))
				addrs = append(addrs, a)
			}
			var survivors []uint64
			for i, a := range addrs {
				if rng.Float64() < 0.7 {
					alloc.Free(a)
				} else {
					survivors = append(survivors, a)
					_ = i
				}
			}
			for pass := 0; pass < 4; pass++ {
				for _, a := range survivors {
					sp.LoadU8(a)
				}
			}
		})
		eng.Run()
		return sys.Link.RxBytes.N, sys.Link.TxBytes.N
	}
	rx0, tx0 := run(false)
	rx1, tx1 := run(true)
	if rx1 >= rx0 {
		t.Fatalf("guided rx %d not below default %d", rx1, rx0)
	}
	if tx1 >= tx0 {
		t.Fatalf("guided tx %d not below default %d", tx1, tx0)
	}
}
