package core

import (
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// newHugeSys boots a sharded system with enough frames that a huge fault
// always has its 512-frame headroom.
func newHugeSys(t testing.TB, frames, shards int) (*System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: frames,
		Cores:       2,
		Shards:      shards,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
		Batch:       true,
	})
	sys.Start()
	return sys, eng
}

// TestHugeFaultMapsWholeRegion: one touch anywhere in a 2 MB huge region
// must fault exactly once and leave all 512 pages Local — the streaming
// read that follows finds every page already mapped.
func TestHugeFaultMapsWholeRegion(t *testing.T) {
	sys, eng := newHugeSys(t, 2*HugePages, 2)
	var base uint64
	sys.Launch("app", 0, func(sp *DDCProc) {
		var err error
		base, err = sys.MmapDDCHuge(1)
		if err != nil {
			t.Error(err)
			return
		}
		// Touch the middle of the region, not page 0: the whole region must
		// map regardless of which page trapped.
		sp.LoadU8(base + 300*PageSize)
		for i := uint64(0); i < HugePages; i++ {
			sp.LoadU8(base + i*PageSize)
		}
	})
	eng.Run()
	if sys.MajorFaults.N != 1 {
		t.Fatalf("major faults = %d, want 1 for a full 2 MB region", sys.MajorFaults.N)
	}
	if sys.MinorFaults.N != 0 {
		t.Fatalf("minor faults = %d, want 0", sys.MinorFaults.N)
	}
	start := pagetable.VPNOf(base)
	for i := pagetable.VPN(0); i < HugePages; i++ {
		if tag := sys.Table.Lookup(start + i).Tag(); tag != pagetable.TagLocal {
			t.Fatalf("page %d of the region is %v, want local", i, tag)
		}
	}
}

// TestHugeWriteSurvivesEviction drives a huge-backed working set through
// eviction pressure and checks data integrity: the cleaner's sub-span
// write-back and the reclaimer must not lose dirty huge-region bytes.
func TestHugeWriteSurvivesEviction(t *testing.T) {
	// Two regions but room for ~1.5: the second huge fault lacks headroom,
	// falls back to single-page faults, and forces eviction of region one.
	sys, eng := newHugeSys(t, HugePages+HugePages/2, 2)
	var failed bool
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDCHuge(2)
		if err != nil {
			t.Error(err)
			return
		}
		pages := uint64(2 * HugePages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i*2654435761+1)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i*2654435761+1 {
				t.Errorf("page %d: got %d", i, got)
				failed = true
				return
			}
		}
	})
	eng.Run()
	if failed {
		return
	}
	if sys.Mgr.Evicted.N == 0 {
		t.Fatal("no evictions despite pressure")
	}
}

// TestHugeCleanerSubSpanGranularity dirties a single page of a resident
// huge region and lets the cleaner run: the write-back must cover that
// page's 32 KiB sub-span — not just the page, and never the whole 2 MB
// region.
func TestHugeCleanerSubSpanGranularity(t *testing.T) {
	sys, eng := newHugeSys(t, 2*HugePages, 2)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDCHuge(1)
		if err != nil {
			t.Error(err)
			return
		}
		sp.LoadU8(base) // fault the region in
		// Dirty exactly one page, inside the third granule.
		sp.StoreU64(base+17*PageSize, 0xabcdef)
		// Idle long enough for several cleaner periods — Sleep yields to the
		// daemons (Compute would just advance the local clock).
		sp.Proc().Sleep(sim.Millisecond)
	})
	eng.Run()
	cleaned := sys.Mgr.Cleaned.N
	if cleaned < HugeSubPages {
		t.Fatalf("cleaned %d pages, want at least the %d-page sub-span", cleaned, HugeSubPages)
	}
	if cleaned >= HugePages {
		t.Fatalf("cleaned %d pages — whole-region write-back instead of the %d-page sub-span",
			cleaned, HugeSubPages)
	}
}
