// Multi-tenant sharing: several tenant address spaces over one physical
// frame pool and one fabric, with QoS isolation.
//
// The host System owns the shared substrate — the DRAM arena, the fabric
// links and memory nodes, the chaos injector, the health monitor, and the
// migration engine. NewTenant carves a per-tenant System out of it: its own
// page table, placement address space, prefetcher state, fault-path
// instrumentation, and a pagemgr.Manager over a dram.View (the tenant's
// hard frame reservation plus a borrowable slack pool). The cleaner and
// reclaimer daemons are shared — one pagemgr.Service sweeps every tenant's
// own LRU/dirty state in admission order — and every tenant issues fabric
// ops through its own comm.Hubs so a token bucket (tenant.Bucket) can gate
// all of its traffic at QP.Submit.
//
// Once tenants are admitted, run workloads through them (Tenant.Launch),
// not through the host System: the host's manager is deliberately left off
// the shared service, and a host workload would allocate frames the
// planner promised to tenants.
package core

import (
	"fmt"

	"dilos/internal/chaos"
	"dilos/internal/comm"
	"dilos/internal/dram"
	"dilos/internal/obs"
	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/tenant"
)

// TenancyConfig enables multi-tenant mode on a host System.
type TenancyConfig struct {
	// SlackFrames is the borrowable remainder of the cache: frames no
	// tenant reserves, allocatable by any tenant beyond its quota on a
	// first-come basis. Must be < CacheFrames; the rest is partitioned by
	// tenant.Plan over the admitted quotas.
	SlackFrames int
	// RebalanceEvery, when positive, runs the pressure-driven quota
	// rebalancer at this period: tenants whose fault path waited for a
	// free frame gain reservation from pressure-free tenants' headroom.
	RebalanceEvery sim.Time
	// RebalanceStep caps how many frames move into one tenant per tick.
	RebalanceStep int
	// NoIsolation is the ablation control: tenants still get their own
	// page tables and managers, but every view spans the whole pool
	// (greedy contention), no slack accounting, and no fabric token
	// buckets — the unpartitioned behaviour ext8 measures against.
	NoIsolation bool
}

// TenantSpec describes one tenant at admission.
type TenantSpec struct {
	// Name must be unique and non-empty; it prefixes the tenant's metric
	// names ("tenant.<name>.") and daemon names.
	Name string
	// Quota is the tenant's frame and fabric entitlement.
	Quota tenant.Quota
	// Prefetcher is the tenant's own prefetch policy (nil → prefetch.None).
	Prefetcher prefetch.Prefetcher
}

// Tenant is one admitted tenant: a full per-tenant System sharing the
// host's substrate. Run workloads with Launch/MmapDDC (or directly on Sys);
// per-tenant metrics live in the host registry under "tenant.<name>.".
type Tenant struct {
	Name  string
	Quota tenant.Quota
	// Sys is the tenant's own System view: private page table, placement
	// space, prefetcher, and page manager over the tenant's dram.View.
	Sys *System

	view   *dram.View
	bucket *tenant.Bucket
	// lastPressure is the cumulative pressure level (alloc waits +
	// evictions) at the previous rebalance tick.
	lastPressure int64
}

// Launch runs fn as one of the tenant's workload threads on the given core.
func (t *Tenant) Launch(name string, coreID int, fn func(sp *DDCProc)) {
	t.Sys.Launch(name, coreID, fn)
}

// MmapDDC maps a disaggregated region in the tenant's own address space.
func (t *Tenant) MmapDDC(pages uint64) (uint64, error) { return t.Sys.MmapDDC(pages) }

// View exposes the tenant's frame partition (tests and the rebalancer).
func (t *Tenant) View() *dram.View { return t.view }

// NewTenant admits a tenant before Start: it re-plans every admitted
// tenant's reservation over the partitionable frames (capacity minus
// slack), assembles the tenant's System over the shared substrate, attaches
// its manager to the shared cleaner/reclaimer service, and registers its
// "tenant.<name>."-prefixed metrics in the host registry. Admission is
// deliberately pre-Start only: quotas re-plan cleanly while every view is
// empty, and the tenant's daemons spawn in a deterministic order.
func (s *System) NewTenant(spec TenantSpec) (*Tenant, error) {
	if s.host != nil {
		return nil, fmt.Errorf("core: NewTenant on a tenant system; admit through the host")
	}
	if s.tenancy == nil {
		return nil, fmt.Errorf("core: NewTenant requires Config.Tenancy (WithTenancy)")
	}
	if s.started {
		return nil, fmt.Errorf("core: NewTenant after Start; admit tenants first")
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("core: tenant needs a name")
	}
	for _, t := range s.tenants {
		if t.Name == spec.Name {
			return nil, fmt.Errorf("core: duplicate tenant %q", spec.Name)
		}
	}
	if err := spec.Quota.Validate(); err != nil {
		return nil, err
	}
	for i := range s.Links {
		if st := s.space.State(i); st != placement.Live {
			return nil, fmt.Errorf("core: node %d is %s; admit tenants with every node live", i, st)
		}
	}

	var view *dram.View
	if s.tenancy.NoIsolation {
		// Control mode: every tenant sees the whole pool and contends
		// greedily — first touch wins, no floors, no borrowing ledger.
		view = dram.NewView(s.arena, s.arena.Capacity(), 0, nil)
	} else {
		quotas := make([]tenant.Quota, 0, len(s.tenants)+1)
		for _, t := range s.tenants {
			quotas = append(quotas, t.Quota)
		}
		quotas = append(quotas, spec.Quota)
		partitionable := s.arena.Capacity() - s.slack.Total()
		plan, err := tenant.Plan(partitionable, quotas)
		if err != nil {
			return nil, err
		}
		// Apply the new plan to the sitting tenants first (all views are
		// empty pre-Start, so SetReserved applies exactly), then carve the
		// newcomer's view.
		for i, t := range s.tenants {
			applied := t.view.SetReserved(plan[i])
			mc := pagemgr.DefaultConfig(applied)
			t.Sys.Mgr.SetWatermarks(mc.LowWater, mc.HighWater)
		}
		view = dram.NewView(s.arena, plan[len(plan)-1], spec.Quota.FloorFrames, s.slack)
	}

	pfx := "tenant." + spec.Name + "."
	tbl := pagetable.New()
	mgr := pagemgr.New(view, tbl, pagemgr.DefaultConfig(view.Capacity()))
	mgr.Batch = s.Batch
	mgr.PrefixStats(pfx)

	var bucket *tenant.Bucket
	if !s.tenancy.NoIsolation && spec.Quota.FabricBytesPerSec > 0 {
		bucket = tenant.NewBucket(spec.Quota.FabricBytesPerSec, spec.Quota.FabricBurstBytes)
		// The shared cleaner/reclaimer skip this tenant while its bucket is
		// backlogged, so a capped tenant's write-back queue never head-of-
		// line blocks the daemons for its neighbours.
		mgr.Throttled = bucket.Backlogged
	}
	hubs := make([]*comm.Hub, len(s.Links))
	for i, l := range s.Links {
		if s.sharedQP {
			hubs[i] = comm.NewSharedHub(l, s.cores, s.backings[i].Key())
		} else {
			hubs[i] = comm.NewHub(l, s.cores, s.backings[i].Key())
		}
		if bucket != nil {
			hubs[i].SetLimiter(bucket)
		}
	}

	pf := spec.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	ts := &System{
		Eng:      s.Eng,
		Node:     s.Node,
		Link:     s.Link,
		Nodes:    s.Nodes,
		backings: s.backings,
		Links:    s.Links,
		Hubs:     hubs,
		Table:    tbl,
		Pool:     view,
		arena:    s.arena,
		Mgr:      mgr,
		Hub:      hubs[0],
		Costs:    s.Costs,
		MMUC:     s.MMUC,
		Pf:       pf,
		Track:    prefetch.NewHitTracker(),
		Hist:     prefetch.NewHistory(32),
		space: placement.New(placement.Config{
			Nodes:    len(s.Links),
			Replicas: s.replicas,
			Policy:   s.policy,
		}),
		Chaos:       s.Chaos,
		Batch:       s.Batch,
		remoteBytes: s.remoteBytes,
		fabricP:     s.fabricP,
		cores:       s.cores,
		sharedQP:    s.sharedQP,
		host:        s,
		pfQueue:     make([][]pfItem, s.cores),
		pfHeld:      make([]pfHeldItem, s.cores),
		pfWaiter:    make([]sim.Waiter, s.cores),
		pfScratch:   make([]pfScratch, s.cores),
		started:     true, // never Start()ed itself; the host drives it
	}
	initMetrics(ts, pfx)
	ts.sloID = -1
	if s.Obs != nil {
		// The tenant aliases the host's plane (events land in one journal)
		// and registers its own fault-latency objective, so burn rates and
		// alerts attribute per tenant.
		ts.Obs = s.Obs
		if s.Obs.Monitor != nil {
			o := s.Obs.Objective
			o.Name = "tenant." + spec.Name
			ts.sloMon = s.Obs.Monitor
			ts.sloID = s.Obs.Monitor.Register(o)
		}
	}
	if s.Tel != nil {
		ts.Tel = s.Tel
		ts.telCore = make([]int, s.cores)
		ts.telPf = make([]int, s.cores)
		for c := 0; c < s.cores; c++ {
			ts.telCore[c] = s.Tel.Track(fmt.Sprintf("%sfault/core%d", pfx, c))
		}
		for c := 0; c < s.cores; c++ {
			ts.telPf[c] = s.Tel.Track(fmt.Sprintf("%spfmap%d", pfx, c))
		}
		mgr.Tel = s.Tel
		mgr.CleanTrack = s.Tel.Track(pfx + "cleaner")
		mgr.ReclaimTrack = s.Tel.Track(pfx + "reclaimer")
	}
	// Per-tenant retry jitter stream: derived from the host's seed material
	// plus the admission index so tenants never share a sequence.
	retrySeed := uint64(0xd1705) ^ uint64(len(s.tenants)+1)*0x9e3779b97f4a7c15
	if s.Chaos != nil {
		retrySeed ^= s.Chaos.Config().Seed
	}
	ts.retryRng = chaos.NewRand(retrySeed)
	mgr.RemoteOf = func(v pagetable.VPN) (pagemgr.Target, bool) {
		slots, ok := ts.space.WriteSlots(v)
		if !ok || len(slots) == 0 {
			return pagemgr.Target{}, false
		}
		tgt := pagemgr.Target{
			Off:       slots[0].Off,
			CleanQP:   ts.Hubs[slots[0].Node].QP(0, comm.ModCleaner),
			ReclaimQP: ts.Hubs[slots[0].Node].QP(0, comm.ModReclaim),
		}
		for _, sl := range slots[1:] {
			tgt.Replicas = append(tgt.Replicas, pagemgr.Target{
				Off:       sl.Off,
				CleanQP:   ts.Hubs[sl.Node].QP(0, comm.ModCleaner),
				ReclaimQP: ts.Hubs[sl.Node].QP(0, comm.ModReclaim),
			})
		}
		return tgt, true
	}
	ts.registry = ts.buildRegistry()
	s.registry.Merge(ts.registry)

	if s.svc == nil {
		s.svc = pagemgr.NewService()
	}
	s.svc.Attach(mgr)
	if s.Mig != nil {
		s.Mig.AttachSpace(ts.space, ts.localContent)
	}
	for c := 0; c < s.cores; c++ {
		c := c
		s.Eng.GoDaemon(fmt.Sprintf("%spfmap%d", pfx, c), func(p *sim.Proc) { ts.pfMapLoop(p, c) })
	}

	t := &Tenant{Name: spec.Name, Quota: spec.Quota, Sys: ts, view: view, bucket: bucket}
	s.tenants = append(s.tenants, t)
	return t, nil
}

// Tenants returns the admitted tenants in admission order.
func (s *System) Tenants() []*Tenant { return s.tenants }

// setNodeState drives the host placement state machine and mirrors the
// transition onto every tenant address space — tenants track node
// membership and health in lockstep with the host (migration-driven
// Draining/Removed transitions are mirrored by the migration engine's
// attached spaces instead).
func (s *System) setNodeState(node int, st placement.State) error {
	if err := s.space.SetState(node, st); err != nil {
		return err
	}
	s.emitEvent(s.Eng.Now(), "node_state",
		obs.I("node", int64(node)), obs.S("state", st.String()))
	for _, t := range s.tenants {
		if err := t.Sys.space.SetState(node, st); err != nil {
			panic(fmt.Sprintf("core: tenant %s space desynced on node %d → %s: %v", t.Name, node, st, err))
		}
	}
	return nil
}

// rebalanceLoop is the admission/rebalance daemon: every RebalanceEvery it
// reads each tenant's pressure — allocation waits plus reclaimer evictions
// since the last tick (eager eviction means a thrashing tenant almost
// never blocks, so eviction churn is the leading signal) — and shifts up
// to RebalanceStep frames of reservation from pressure-free tenants'
// headroom toward each pressured tenant, retuning the shrunk and grown
// managers' watermarks so their reclaimers converge on the new quotas.
func (s *System) rebalanceLoop(p *sim.Proc) {
	sig := make([]tenant.Signal, len(s.tenants))
	for {
		p.Sleep(s.tenancy.RebalanceEvery)
		for i, t := range s.tenants {
			level := t.Sys.Mgr.AllocWaits.N + t.Sys.Mgr.Evicted.N
			sig[i] = tenant.Signal{
				Reserved: t.view.Reserved(),
				Floor:    t.Quota.FloorFrames,
				Used:     t.view.Used(),
				Pressure: level - t.lastPressure,
			}
			t.lastPressure = level
		}
		next := tenant.Rebalance(sig, s.tenancy.RebalanceStep)
		for i, t := range s.tenants {
			if next[i] == sig[i].Reserved {
				continue
			}
			applied := t.view.SetReserved(next[i])
			mc := pagemgr.DefaultConfig(applied)
			t.Sys.Mgr.SetWatermarks(mc.LowWater, mc.HighWater)
			s.emitEvent(p.Now(), "tenant_rebalance",
				obs.S("tenant", t.Name),
				obs.I("from_frames", int64(sig[i].Reserved)),
				obs.I("to_frames", int64(applied)),
				obs.I("pressure", sig[i].Pressure))
		}
	}
}
