// Live observability plane wiring (internal/obs): the publisher daemon
// that evaluates SLO burn rates and renders the /metrics, /statusz, and
// /journalz pages, plus the control-plane journal emission helpers the
// rest of core calls. Everything here is off the fault path — the only
// hot-path observability cost is Monitor.Observe (one ring-bucket
// increment) at the fault-latency record site in fault.go.
package core

import (
	"strconv"

	"dilos/internal/obs"
	"dilos/internal/placement"
	"dilos/internal/sim"
)

// emitEvent appends one control-plane event to the plane's journal, if
// the system has one (tenant systems share the host's).
func (s *System) emitEvent(at sim.Time, typ string, attrs ...obs.Attr) {
	if s.Obs == nil || s.Obs.Journal == nil {
		return
	}
	s.Obs.Journal.Emit(at, typ, attrs...)
}

// obsDefaultEval and obsDefaultPublish pace the publisher daemon when the
// plane leaves them zero. Evaluation touches only the SLO rings (cheap);
// publishing takes a full registry snapshot — histogram percentile sorts
// included — so it runs at a coarser cadence.
const (
	obsDefaultEval    = 250 * sim.Microsecond
	obsDefaultPublish = sim.Millisecond
)

// obsLoop is the plane's publisher daemon: evaluate the SLO monitor every
// EvalEvery, and — when an HTTP sink is attached — render and publish the
// /metrics, /statusz, and /journalz pages every PublishEvery. The render
// buffers are reused across ticks, so steady-state publishing allocates
// only inside the registry snapshot.
func (s *System) obsLoop(p *sim.Proc) {
	pl := s.Obs
	evalEvery := pl.EvalEvery
	if evalEvery <= 0 {
		evalEvery = obsDefaultEval
	}
	pubEvery := pl.PublishEvery
	if pubEvery <= 0 {
		pubEvery = obsDefaultPublish
	}
	var metrics, status, journal []byte
	var nextPub sim.Time
	for {
		p.Sleep(evalEvery)
		now := p.Now()
		if pl.Monitor != nil {
			pl.Monitor.Evaluate(now)
		}
		if pl.Sink == nil || now < nextPub {
			continue
		}
		nextPub = now + pubEvery
		metrics = obs.AppendMetrics(metrics[:0], s.registry.Snapshot(), s.Tel)
		pl.Sink.PublishMetrics(metrics)
		status = s.AppendStatus(status[:0], now)
		pl.Sink.PublishStatus(status)
		if pl.Journal != nil {
			journal = pl.Journal.AppendJSONL(journal[:0])
			pl.Sink.PublishJournal(journal)
		}
		pl.Sink.SetHealth(s.healthVerdict())
	}
}

// healthVerdict decides /healthz: unhealthy while any memory node sits in
// the Failed state (fetches are failing over; capacity is degraded).
func (s *System) healthVerdict() (bool, string) {
	for i := range s.Links {
		if s.space.State(i) == placement.Failed {
			return false, "node " + strconv.Itoa(i) + " failed"
		}
	}
	return true, "ok"
}

// AppendStatus renders /statusz: membership states, per-shard cache
// occupancy, tenant reservations, health-breaker counters, and the SLO
// table. Deterministic — fixed iteration orders, integer rendering — so
// same-seed runs publish byte-identical pages.
func (s *System) AppendStatus(dst []byte, now sim.Time) []byte {
	dst = append(dst, "dilos status at "...)
	dst = append(dst, now.String()...)
	dst = append(dst, '\n')
	for i := range s.Links {
		dst = append(dst, "node "...)
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, " state="...)
		dst = append(dst, s.space.State(i).String()...)
		dst = append(dst, '\n')
	}
	shards := s.shards
	if shards <= 1 {
		shards = 1
	}
	for sh := 0; sh < shards; sh++ {
		dst = append(dst, "shard "...)
		dst = strconv.AppendInt(dst, int64(sh), 10)
		dst = append(dst, " lru_frames="...)
		dst = strconv.AppendInt(dst, int64(s.Pool.LRULenOf(sh)), 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, "cache used="...)
	dst = strconv.AppendInt(dst, int64(s.Pool.Used()), 10)
	dst = append(dst, " free="...)
	dst = strconv.AppendInt(dst, int64(s.Pool.FreeCount()), 10)
	dst = append(dst, '\n')
	for _, t := range s.tenants {
		dst = append(dst, "tenant "...)
		dst = append(dst, t.Name...)
		dst = append(dst, " reserved="...)
		dst = strconv.AppendInt(dst, int64(t.view.Reserved()), 10)
		dst = append(dst, " used="...)
		dst = strconv.AppendInt(dst, int64(t.view.Used()), 10)
		dst = append(dst, " floor="...)
		dst = strconv.AppendInt(dst, int64(t.Quota.FloorFrames), 10)
		dst = append(dst, '\n')
	}
	if s.Health != nil {
		dst = append(dst, "health probes="...)
		dst = strconv.AppendInt(dst, s.Health.Probes.N, 10)
		dst = append(dst, " probe_fails="...)
		dst = strconv.AppendInt(dst, s.Health.ProbeFails.N, 10)
		dst = append(dst, " breaker_trips="...)
		dst = strconv.AppendInt(dst, s.Health.NodeFails.N, 10)
		dst = append(dst, " recoveries="...)
		dst = strconv.AppendInt(dst, s.Health.NodeRecoveries.N, 10)
		dst = append(dst, '\n')
	}
	if s.Obs != nil && s.Obs.Monitor != nil {
		dst = s.Obs.Monitor.AppendStatus(dst, now)
	}
	for _, fn := range s.statusSections {
		dst = fn(dst, now)
	}
	return dst
}
