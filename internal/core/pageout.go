// Application-directed page-out: PageOutRange lets a workload (the
// KV-cache tier, a guide, an allocator) push a cold virtual range back to
// the memory nodes ahead of the reclaimer. It is the eviction mirror of
// SchedulePrefetch — same phase discipline as the batched cleaner: snapshot
// and pin with no intervening yield, flush dirty content per queue pair
// through single doorbells, wait once on the overall last completion, then
// evict whatever stayed clean through the wait.
package core

import (
	"dilos/internal/comm"
	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// poItem is one resident page of the range moving through a PageOutRange
// call.
type poItem struct {
	vpn    pagetable.VPN
	frame  dram.FrameID
	dirty  bool
	failed bool // a replica write failed at issue; stays resident and dirty
}

// PageOutRange writes back and evicts every resident, unpinned page in
// [addr, addr+bytes), returning how many pages actually left DRAM. Pages
// that are already remote, in flight, pinned, or re-dirtied during the
// write-back wait are skipped — the call is best-effort by design, since
// the application is only advising that the range is cold. Dirty content
// is written to every replica before the PTE transitions, so the call
// never loses writes; a page whose write-back fails at issue keeps its
// dirty bit and stays resident for the cleaner to retry.
func (s *System) PageOutRange(p *sim.Proc, coreID int, addr uint64, bytes uint64) int {
	if bytes == 0 {
		return 0
	}
	first := pagetable.VPNOf(addr)
	last := pagetable.VPNOf(addr + bytes - 1)

	// Phase 1 — snapshot and pin. No yield from here through issue, so the
	// PTE and frame states observed now hold until the post-issue wait, and
	// pinning keeps the cleaner and reclaimer off the frames meanwhile.
	var items []poItem
	for v := first; v <= last; v++ {
		pte := s.Table.Lookup(v)
		if pte.Tag() != pagetable.TagLocal {
			continue
		}
		id := dram.FrameID(pte.Frame())
		f := s.Pool.Meta(id)
		if f.Pinned || f.VPN != v {
			continue
		}
		f.Pinned = true
		items = append(items, poItem{vpn: v, frame: id, dirty: pte.Dirty()})
	}
	if len(items) == 0 {
		return 0
	}

	// Phase 2 — flush: post every dirty page to every replica slot, one
	// doorbell per distinct queue pair, contiguous offsets coalesced into
	// vectored writes (the write-back path's wire shape). Failure is known
	// at issue time, so failed requests mark their pages immediately.
	var (
		qps    []*fabric.QP
		segs   []fabric.Seg
		own    []int
		reqs   []fabric.Req
		ops    []*fabric.Op
		lastOp *fabric.Op
	)
	slotsOf := make([][]int, len(items)) // parallel: QP index per replica
	offsOf := make([][]uint64, len(items))
	for i := range items {
		it := &items[i]
		if !it.dirty {
			continue
		}
		slots, ok := s.space.WriteSlots(it.vpn)
		if !ok || len(slots) == 0 {
			it.failed = true
			continue
		}
		for _, sl := range slots {
			qp := s.Hubs[sl.Node].QP(coreID, comm.ModCleaner)
			qi := -1
			for k, q := range qps {
				if q == qp {
					qi = k
					break
				}
			}
			if qi < 0 {
				qi = len(qps)
				qps = append(qps, qp)
			}
			slotsOf[i] = append(slotsOf[i], qi)
			offsOf[i] = append(offsOf[i], sl.Off)
		}
	}
	for qi, qp := range qps {
		segs, own = segs[:0], own[:0]
		for i := range items {
			it := &items[i]
			if !it.dirty || it.failed {
				continue
			}
			for k, q := range slotsOf[i] {
				if q != qi {
					continue
				}
				segs = append(segs, fabric.Seg{Off: offsOf[i][k], Buf: s.Pool.Bytes(it.frame)})
				own = append(own, i)
			}
		}
		if len(segs) == 0 {
			continue
		}
		reqs = qp.Coalesce(fabric.OpWrite, segs, reqs[:0])
		for r := range reqs {
			if r == 0 {
				p.Advance(s.Costs.PrefetchIssue)
			} else {
				p.Advance(s.Costs.PrefetchWQE)
			}
		}
		ops = qp.Submit(p.Now(), reqs, ops[:0])
		idx := 0
		for r, req := range reqs {
			op := ops[r]
			if op.Err != nil {
				for k := 0; k < len(req.Segs); k++ {
					items[own[idx+k]].failed = true
				}
			} else if lastOp == nil || op.CompleteAt > lastOp.CompleteAt {
				lastOp = op
			}
			idx += len(req.Segs)
		}
	}

	// Still pre-yield: clear the dirty bits of pages whose every replica
	// write was issued cleanly. The fabric snapshots data at issue time, so
	// a write that lands on the page after this point re-sets the bit and
	// phase 3 leaves the page resident — no write is ever dropped.
	cleared := 0
	for i := range items {
		it := &items[i]
		if !it.dirty || it.failed {
			continue
		}
		pte := s.Table.Lookup(it.vpn)
		p.Advance(s.Mgr.Cfg.TagCAS)
		s.Table.Set(it.vpn, pte&^pagetable.BitDirty)
		cleared++
	}
	if cleared > 0 {
		s.Table.BumpGen()
	}
	if lastOp != nil {
		lastOp.Wait(p)
	}

	// Phase 3 — evict (no further yields): unpin everything, then page out
	// each page that is still Local, still on its frame, and still clean.
	evicted := 0
	for i := range items {
		it := &items[i]
		f := s.Pool.Meta(it.frame)
		f.Pinned = false
		if it.failed {
			continue
		}
		pte := s.Table.Lookup(it.vpn)
		if pte.Tag() != pagetable.TagLocal || dram.FrameID(pte.Frame()) != it.frame ||
			pte.Dirty() || f.VPN != it.vpn {
			continue
		}
		if s.Mgr.PageOut(p, it.frame, it.vpn) {
			evicted++
		}
	}
	return evicted
}

// DiscardRange evicts every resident, unpinned page in [addr, addr+bytes)
// WITHOUT writing dirty content back — the MADV_FREE of the simulated
// LibOS. The caller declares the range dead: after the call the pool copy
// is whatever was last written back, and a later fault on the range reads
// that stale content. Callers must therefore rewrite before they read
// (the KV-cache's region recycling does exactly that). Returns the number
// of frames returned to the pool. The whole call runs without a yield.
func (s *System) DiscardRange(p *sim.Proc, addr uint64, bytes uint64) int {
	if bytes == 0 {
		return 0
	}
	first := pagetable.VPNOf(addr)
	last := pagetable.VPNOf(addr + bytes - 1)
	n := 0
	for v := first; v <= last; v++ {
		pte := s.Table.Lookup(v)
		if pte.Tag() != pagetable.TagLocal {
			continue
		}
		id := dram.FrameID(pte.Frame())
		f := s.Pool.Meta(id)
		if f.Pinned || f.VPN != v {
			continue
		}
		if pte.Dirty() {
			p.Advance(s.Mgr.Cfg.TagCAS)
			s.Table.Set(v, pte&^pagetable.BitDirty)
		}
		if s.Mgr.PageOut(p, id, v) {
			n++
		}
	}
	return n
}
