package core

import (
	"fmt"

	"dilos/internal/chaos"
	"dilos/internal/fabric"
	"dilos/internal/migrate"
	"dilos/internal/pagemgr"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
	"dilos/internal/trace"
)

// Validate reports whether the config assembles a working system. It
// surfaces the precedence rules New historically resolved silently:
//
//   - CacheFrames and Cores are always required.
//   - With Backings, the backings size the pool: RemoteBytes must be 0
//     and MemNodes must be 0 or exactly len(Backings).
//   - Without Backings, RemoteBytes is required (MemNodes defaults to 1).
//   - Replicas (default 1) must not exceed the memory node count.
//   - Health tuning without Chaos is rejected — ops cannot fail, so the
//     monitor would only burn probe bandwidth.
//   - SampleEvery without Tel is rejected — there is nowhere to sample to.
//   - Migrate tuning must pass migrate.Tuning.Validate.
func (c Config) Validate() error {
	_, err := c.normalized()
	return err
}

// normalized applies defaults and enforces the Validate rules, returning
// the resolved config build consumes.
func (c Config) normalized() (Config, error) {
	if c.CacheFrames <= 0 {
		return c, fmt.Errorf("core: CacheFrames is required (got %d)", c.CacheFrames)
	}
	if c.Cores <= 0 {
		return c, fmt.Errorf("core: Cores is required (got %d)", c.Cores)
	}
	if len(c.Backings) > 0 {
		if c.RemoteBytes != 0 {
			return c, fmt.Errorf("core: RemoteBytes (%d) is meaningless with Backings — the backings size themselves; set it to 0", c.RemoteBytes)
		}
		if c.MemNodes != 0 && c.MemNodes != len(c.Backings) {
			return c, fmt.Errorf("core: MemNodes (%d) contradicts len(Backings) (%d); leave MemNodes 0 to derive it", c.MemNodes, len(c.Backings))
		}
		c.MemNodes = len(c.Backings)
	} else {
		if c.RemoteBytes == 0 {
			return c, fmt.Errorf("core: RemoteBytes is required without Backings")
		}
		if c.MemNodes <= 0 {
			c.MemNodes = 1
		}
	}
	if c.Replicas < 0 {
		return c, fmt.Errorf("core: Replicas (%d) is negative; use 0 for the single-copy default", c.Replicas)
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas > c.MemNodes {
		return c, fmt.Errorf("core: Replicas (%d) exceeds the memory node count (%d)", c.Replicas, c.MemNodes)
	}
	if c.Health != nil && c.Chaos == nil {
		return c, fmt.Errorf("core: Health tuning without Chaos is inert — ops cannot fail; set Chaos or drop Health")
	}
	if c.SampleEvery > 0 && c.Tel == nil {
		return c, fmt.Errorf("core: SampleEvery (%v) without Tel has nowhere to sample to; set Tel or drop SampleEvery", c.SampleEvery)
	}
	if c.Migrate != nil {
		if err := c.Migrate.Validate(); err != nil {
			return c, fmt.Errorf("core: %w", err)
		}
	}
	if c.Tenancy != nil {
		t := c.Tenancy
		if t.SlackFrames < 0 || t.SlackFrames >= c.CacheFrames {
			return c, fmt.Errorf("core: Tenancy.SlackFrames (%d) must be in [0,CacheFrames)", t.SlackFrames)
		}
		if t.RebalanceEvery < 0 {
			return c, fmt.Errorf("core: Tenancy.RebalanceEvery (%v) is negative", t.RebalanceEvery)
		}
		if t.RebalanceEvery > 0 && t.RebalanceStep <= 0 {
			return c, fmt.Errorf("core: Tenancy.RebalanceEvery without a positive RebalanceStep moves nothing")
		}
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("core: Shards (%d) is negative; use 0 for the legacy unsharded path", c.Shards)
	}
	if c.Shards > 0 && c.Tenancy != nil {
		return c, fmt.Errorf("core: Shards and Tenancy partition frames along different axes and do not compose; drop one")
	}
	if c.WideLocks && c.Shards < 1 {
		return c, fmt.Errorf("core: WideLocks is the shared-structure ablation of the sharded path; it requires Shards >= 1")
	}
	return c, nil
}

// Option mutates the Config NewSystem assembles.
type Option func(*Config)

// NewSystem assembles a DiLOS node from functional options, returning
// the validation error New would panic with. New(eng, cfg) and
// NewSystem(eng, opts...) converge on the same normalized config.
func NewSystem(eng *sim.Engine, opts ...Option) (*System, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	n, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	return build(eng, n), nil
}

// WithConfig seeds the option chain from a full Config literal; later
// options override its fields.
func WithConfig(c Config) Option { return func(dst *Config) { *dst = c } }

// WithCacheFrames sets the local DRAM cache size in 4 KiB frames.
func WithCacheFrames(frames int) Option { return func(c *Config) { c.CacheFrames = frames } }

// WithCores sets the CPU core count.
func WithCores(n int) Option { return func(c *Config) { c.Cores = n } }

// WithRemoteBytes sizes each in-process memory node's registered region.
func WithRemoteBytes(b uint64) Option { return func(c *Config) { c.RemoteBytes = b } }

// WithFabric selects the network calibration.
func WithFabric(p fabric.Params) Option { return func(c *Config) { c.Fabric = p } }

// WithPrefetcher installs the prefetch policy.
func WithPrefetcher(pf prefetch.Prefetcher) Option { return func(c *Config) { c.Prefetcher = pf } }

// WithEvictionGuide enables guided paging on the page manager.
func WithEvictionGuide(g pagemgr.EvictionGuide) Option {
	return func(c *Config) { c.EvictionGuide = g }
}

// WithManager overrides the page-manager tuning.
func WithManager(m pagemgr.Config) Option { return func(c *Config) { c.Mgr = &m } }

// WithSharedQP collapses per-module queues into one shared queue (the
// head-of-line ablation).
func WithSharedQP() Option { return func(c *Config) { c.SharedQP = true } }

// WithMemNodes shards the remote backing across n memory nodes.
func WithMemNodes(n int) Option { return func(c *Config) { c.MemNodes = n } }

// WithPlacement selects the page→node layout policy.
func WithPlacement(p placement.Policy) Option { return func(c *Config) { c.Placement = p } }

// WithBackings supplies externally owned memory-node backings (one shard
// per entry); RemoteBytes and MemNodes must then stay unset.
func WithBackings(bs ...Backing) Option { return func(c *Config) { c.Backings = bs } }

// WithReplicas keeps n copies of every page across distinct nodes.
func WithReplicas(n int) Option { return func(c *Config) { c.Replicas = n } }

// WithTrace records every fault into the ring for offline analysis.
func WithTrace(r *trace.Recorder) Option { return func(c *Config) { c.Trace = r } }

// WithTelemetry attaches the flight recorder; a positive sampleEvery
// also starts the periodic gauge sampler.
func WithTelemetry(r *telemetry.Recorder, sampleEvery sim.Time) Option {
	return func(c *Config) { c.Tel, c.SampleEvery = r, sampleEvery }
}

// WithChaos injects deterministic faults into every link and enables the
// failure-handling stack.
func WithChaos(inj *chaos.Injector) Option { return func(c *Config) { c.Chaos = inj } }

// WithHealth overrides the health monitor tuning (requires WithChaos).
func WithHealth(hc HealthConfig) Option { return func(c *Config) { c.Health = &hc } }

// WithBatch enables doorbell-batched submission on the hot I/O paths.
func WithBatch() Option { return func(c *Config) { c.Batch = true } }

// WithMigration starts the elastic-pool migration engine with the given
// tuning (zero values → defaults), enabling Drain, AddMemNode
// rebalancing, and watermark auto-rebalance.
func WithMigration(t migrate.Tuning) Option { return func(c *Config) { c.Migrate = &t } }

// WithTenancy enables multi-tenant mode: admit tenants with
// System.NewTenant before Start.
func WithTenancy(t TenancyConfig) Option { return func(c *Config) { c.Tenancy = &t } }

// WithShards shards the paging hot path into n per-core shards
// (shared-nothing LRU lists, per-shard cleaner/reclaimer pairs, CAS page
// transitions). Typically n = Cores.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithWideLocks enables the coarse shared-lock baseline over the sharded
// machinery (requires WithShards) — ext10's ablation arm.
func WithWideLocks() Option { return func(c *Config) { c.WideLocks = true } }
