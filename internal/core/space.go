package core

import (
	"dilos/internal/mmu"
	"dilos/internal/sim"
)

// DDCProc is a workload thread bound to one core of a DiLOS node. It
// implements space.Space: plain loads and stores against disaggregated
// memory, with paging handled transparently underneath — the compatibility
// the paper refuses to trade away.
type DDCProc struct {
	sys    *System
	coreID int
	core   *mmu.Core
}

// System returns the owning DiLOS system.
func (d *DDCProc) System() *System { return d.sys }

// CoreID returns the core this thread runs on.
func (d *DDCProc) CoreID() int { return d.coreID }

// MMU returns the underlying core (counters, TLB control).
func (d *DDCProc) MMU() *mmu.Core { return d.core }

// Proc returns the sim process.
func (d *DDCProc) Proc() *sim.Proc { return d.core.Proc }

// Load implements space.Space.
func (d *DDCProc) Load(addr uint64, p []byte) { d.core.Load(addr, p) }

// Store implements space.Space.
func (d *DDCProc) Store(addr uint64, p []byte) { d.core.Store(addr, p) }

// LoadU64 implements space.Space.
func (d *DDCProc) LoadU64(addr uint64) uint64 { return d.core.LoadU64(addr) }

// StoreU64 implements space.Space.
func (d *DDCProc) StoreU64(addr uint64, v uint64) { d.core.StoreU64(addr, v) }

// LoadU32 implements space.Space.
func (d *DDCProc) LoadU32(addr uint64) uint32 { return d.core.LoadU32(addr) }

// StoreU32 implements space.Space.
func (d *DDCProc) StoreU32(addr uint64, v uint32) { d.core.StoreU32(addr, v) }

// LoadU8 implements space.Space.
func (d *DDCProc) LoadU8(addr uint64) byte { return d.core.LoadU8(addr) }

// StoreU8 implements space.Space.
func (d *DDCProc) StoreU8(addr uint64, v byte) { d.core.StoreU8(addr, v) }

// Malloc implements space.Space via the DDC allocator (compat.go).
func (d *DDCProc) Malloc(n uint64) uint64 {
	addr, err := d.sys.Malloc(n)
	if err != nil {
		panic(err)
	}
	return addr
}

// Free implements space.Space.
func (d *DDCProc) Free(addr, n uint64) { d.sys.Free(addr, n) }

// Compute implements space.Space.
func (d *DDCProc) Compute(t sim.Time) { d.core.Proc.Advance(t) }

// Now implements space.Space.
func (d *DDCProc) Now() sim.Time { return d.core.Proc.Now() }
