package core

import (
	"encoding/json"
	"testing"

	"dilos/internal/chaos"
	"dilos/internal/fabric"
	"dilos/internal/migrate"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/sim"
)

// elasticSys builds a 3-node system with the migration engine armed.
func elasticSys(t *testing.T, replicas int, tun migrate.Tuning, inj *chaos.Injector) (*System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 32,
		Cores:       2,
		RemoteBytes: 32 << 20,
		Fabric:      fabric.DefaultParams(),
		MemNodes:    3,
		Replicas:    replicas,
		Chaos:       inj,
		Migrate:     &tun,
	})
	sys.Start()
	return sys, eng
}

// cyclingApp stamps pages with pass-dependent values and cycles the
// working set (8× the cache) until `until`, verifying every load — any
// page whose bytes a migration, crash, or write-back race corrupted
// fails the test.
func cyclingApp(t *testing.T, sys *System, pages uint64, until sim.Time) *uint64 {
	base := new(uint64)
	sys.Launch("app", 0, func(sp *DDCProc) {
		b, err := sys.MmapDDC(pages)
		if err != nil {
			t.Error(err)
			return
		}
		*base = b
		val := func(i, pass uint64) uint64 { return i*2654435761 + pass*7919 }
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(b+i*PageSize, val(i, 0))
		}
		pass := uint64(0)
		for sp.Proc().Now() < until {
			for i := uint64(0); i < pages; i++ {
				if got := sp.LoadU64(b + i*PageSize); got != val(i, pass) {
					t.Errorf("pass %d page %d: got %#x want %#x", pass, i, got, val(i, pass))
					return
				}
				sp.StoreU64(b+i*PageSize, val(i, pass+1))
			}
			pass++
		}
		if pass == 0 {
			t.Error("workload never completed a pass")
		}
	})
	return base
}

// assertEvacuated checks no page keeps a replica on the removed node and
// that replica sets stayed distinct.
func assertEvacuated(t *testing.T, sys *System, base uint64, pages uint64, node, replicas int) {
	t.Helper()
	for i := uint64(0); i < pages; i++ {
		v := pagetable.VPNOf(base + i*PageSize)
		slots, ok := sys.Space().AllSlots(v)
		if !ok || len(slots) != replicas {
			t.Fatalf("page %d: %d replica slots, want %d", i, len(slots), replicas)
		}
		seen := map[int]bool{}
		for _, sl := range slots {
			if sl.Node == node {
				t.Fatalf("page %d still resolves to drained node %d", i, node)
			}
			if seen[sl.Node] {
				t.Fatalf("page %d replicas collapsed onto node %d", i, sl.Node)
			}
			seen[sl.Node] = true
		}
	}
}

func TestDrainUnderLoadEvacuatesNode(t *testing.T) {
	// The acceptance scenario: a 3-node system drains node 2 while the
	// workload keeps faulting, evicting, and cleaning through it. The
	// drain completes mid-run, the node leaves the pool, and every page
	// survives with its latest stores.
	sys, eng := elasticSys(t, 1, migrate.Tuning{}, nil)
	const pages = 256
	base := cyclingApp(t, sys, pages, 8*sim.Millisecond)
	drained := false
	eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(500 * sim.Microsecond)
		if err := sys.Drain(2); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		for p.Now() < 7*sim.Millisecond {
			if sys.Space().State(2) == placement.Removed {
				drained = true
				return
			}
			p.Sleep(100 * sim.Microsecond)
		}
	})
	eng.Run()
	if !drained {
		t.Fatal("drain did not complete within the run")
	}
	if occ := sys.Space().Occupancy(2); occ != 0 {
		t.Fatalf("removed node still hosts %d slots", occ)
	}
	if sys.Mig.PagesMoved.N == 0 || sys.Mig.DrainsDone.N != 1 {
		t.Fatalf("moved=%d drains_done=%d", sys.Mig.PagesMoved.N, sys.Mig.DrainsDone.N)
	}
	assertEvacuated(t, sys, *base, pages, 2, 1)
}

func TestDrainSurvivesDrainingNodeCrash(t *testing.T) {
	// Chaos kills the draining node mid-evacuation. With 2 replicas the
	// engine rolls forward by copying from the survivors, the health
	// monitor's breaker marks the corpse Failed, and the drain still ends
	// in Removed with every page on two distinct live nodes — zero loss.
	inj := chaos.NewInjector(chaos.Config{
		Seed: 99,
		Crashes: []chaos.CrashWindow{
			{Node: 2, At: 400 * sim.Microsecond, Until: 2500 * sim.Microsecond},
		},
	})
	sys, eng := elasticSys(t, 2, migrate.Tuning{BatchPages: 8}, inj)
	const pages = 256
	base := cyclingApp(t, sys, pages, 10*sim.Millisecond)
	drained := false
	eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(300 * sim.Microsecond)
		if err := sys.Drain(2); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		for p.Now() < 9*sim.Millisecond {
			if sys.Space().State(2) == placement.Removed {
				drained = true
				return
			}
			p.Sleep(100 * sim.Microsecond)
		}
	})
	eng.Run()
	if !drained {
		t.Fatal("drain never completed despite the crash window ending")
	}
	if sys.Chaos.Crashed.N == 0 {
		t.Fatal("crash window injected nothing — the test exercised no failure")
	}
	assertEvacuated(t, sys, *base, pages, 2, 2)
	if sys.Mig.PagesMoved.N == 0 {
		t.Fatal("no pages migrated")
	}
}

func TestMigrationSameSeedDeterminism(t *testing.T) {
	// Two identical runs with migration racing the fault path, the
	// cleaner, flaky chaos, and a mid-run drain must finish with
	// byte-identical metric snapshots.
	run := func() []byte {
		inj := chaos.NewInjector(chaos.Config{
			Seed:       4242,
			FailProb:   0.01,
			TailProb:   0.03,
			TailFactor: 6,
		})
		sys, eng := elasticSys(t, 2, migrate.Tuning{Watermark: 0.05}, inj)
		const pages = 128
		cyclingApp(t, sys, pages, 6*sim.Millisecond)
		eng.Go("driver", func(p *sim.Proc) {
			p.Sleep(800 * sim.Microsecond)
			if err := sys.Drain(2); err != nil {
				t.Errorf("drain: %v", err)
			}
		})
		eng.Run()
		b, err := json.Marshal(sys.Registry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestAddMemNodeRebalancesOntoJoiner(t *testing.T) {
	// A node added mid-run joins empty; the join-triggered rebalance
	// pulls pages onto it without disturbing the workload's data.
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 32,
		Cores:       2,
		RemoteBytes: 32 << 20,
		Fabric:      fabric.DefaultParams(),
		MemNodes:    2,
		Migrate:     &migrate.Tuning{},
	})
	sys.Start()
	const pages = 192
	base := cyclingApp(t, sys, pages, 6*sim.Millisecond)
	joined := -1
	eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(500 * sim.Microsecond)
		id, err := sys.AddMemNode()
		if err != nil {
			t.Errorf("add: %v", err)
			return
		}
		joined = id
		for p.Now() < 5*sim.Millisecond {
			if sys.Space().Occupancy(id) > 0 && sys.Mig.Idle() {
				return
			}
			p.Sleep(100 * sim.Microsecond)
		}
	})
	eng.Run()
	if joined != 2 {
		t.Fatalf("joined node id %d, want 2", joined)
	}
	if occ := sys.Space().Occupancy(2); occ == 0 {
		t.Fatal("rebalance moved nothing onto the joiner")
	}
	if sys.Mig.Rebalances.N == 0 {
		t.Fatal("no rebalance batches recorded")
	}
	assertEvacuated(t, sys, *base, pages, -1, 1)
}
