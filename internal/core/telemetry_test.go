package core

import (
	"bytes"
	"testing"

	"dilos/internal/chaos"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
)

// telSys builds the memory-constrained readahead system the telemetry
// tests share, with an optional recorder/sampler and chaos injector.
func telSys(frames int, rec *telemetry.Recorder, sampleEvery sim.Time, inj *chaos.Injector) (*System, *sim.Engine) {
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 64 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(31),
		Chaos:       inj,
		Tel:         rec,
		SampleEvery: sampleEvery,
	})
	sys.Start()
	return sys, eng
}

// The recorder's core guarantee: turning it on (with or without the
// sampler) observes the simulation without perturbing it. The virtual
// elapsed time must be *identical*, not merely close — emission never
// advances a clock, and the sampler only reads.
func TestTelemetryOverheadZeroVirtualTime(t *testing.T) {
	const pages = 2048
	run := func(rec *telemetry.Recorder, sampleEvery sim.Time) sim.Time {
		sys, eng := telSys(pages/8, rec, sampleEvery, nil)
		var d sim.Time
		seqReadApp(sys, pages, &d)
		eng.Run()
		return d
	}
	off := run(nil, 0)
	recOnly := run(telemetry.NewRecorder(0), 0)
	sampled := run(telemetry.NewRecorder(0), 50*sim.Microsecond)
	if recOnly != off {
		t.Errorf("recorder-only run took %v, disabled took %v", recOnly, off)
	}
	if sampled != off {
		t.Errorf("sampled run took %v, disabled took %v", sampled, off)
	}
}

// Every fault must be attributed: one KindMajorFault span per major fault
// and one KindMinorFault span per minor fault, each with stage sub-timings
// that sum exactly to the span — so per-stage means are an attribution of
// the total, not an approximation.
func TestTelemetrySpansCoverFaults(t *testing.T) {
	const pages = 2048
	rec := telemetry.NewRecorder(0)
	sys, eng := telSys(pages/8, rec, 0, nil)
	var d sim.Time
	seqReadApp(sys, pages, &d)
	eng.Run()

	var majors, minors int64
	for id := range rec.Tracks() {
		if rec.Dropped(id) > 0 {
			t.Fatalf("track %s dropped %d spans; size the ring up", rec.TrackName(id), rec.Dropped(id))
		}
		for _, sp := range rec.Spans(id) {
			var sum sim.Time
			for _, st := range sp.Stages {
				sum += st
			}
			switch sp.Kind {
			case telemetry.KindMajorFault:
				majors++
				if sum != sp.Dur() {
					t.Fatalf("major span stages sum to %v, span is %v", sum, sp.Dur())
				}
			case telemetry.KindMinorFault:
				minors++
				if sum != sp.Dur() {
					t.Fatalf("minor span stages sum to %v, span is %v", sum, sp.Dur())
				}
			}
		}
	}
	if majors != sys.MajorFaults.N {
		t.Errorf("recorded %d major-fault spans, counter says %d", majors, sys.MajorFaults.N)
	}
	if minors != sys.MinorFaults.N {
		t.Errorf("recorded %d minor-fault spans, counter says %d", minors, sys.MinorFaults.N)
	}
	a := telemetry.FaultAnatomy(rec)
	if int64(a.Faults) != majors {
		t.Errorf("anatomy saw %d faults, recorder holds %d", a.Faults, majors)
	}
	if a.Mean() == 0 {
		t.Error("anatomy mean is zero")
	}
}

// Determinism, extended to the exported artifact: two chaos-seeded runs
// under the same seed must produce byte-identical Perfetto trace files —
// spans, stage slices, counter samples, formatting and all.
func TestTelemetryChaosTraceDeterminism(t *testing.T) {
	run := func() []byte {
		inj := chaos.NewInjector(chaos.Config{
			Seed:       99,
			FailProb:   0.002,
			TailProb:   0.05,
			TailFactor: 4,
			StallProb:  0.002,
			StallTime:  20 * sim.Microsecond,
		})
		rec := telemetry.NewRecorder(0)
		sys, eng := telSys(64, rec, 50*sim.Microsecond, inj)
		var d sim.Time
		seqReadApp(sys, 512, &d)
		eng.Run()
		var buf bytes.Buffer
		_, sam := sys.Telemetry()
		if err := telemetry.WritePerfetto(&buf, rec, sam); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	if _, err := telemetry.Validate(bytes.NewReader(a)); err != nil {
		t.Fatalf("deterministic trace does not validate: %v", err)
	}
}

// The instrumented fault path must stay allocation-flat: spans are values
// emitted into preallocated rings, so recording adds zero allocations on
// top of the batched path's own budget.
func TestTelemetryFaultPathAllocs(t *testing.T) {
	const pages = 8192
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: 256,
		Cores:       2,
		RemoteBytes: 64 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(31),
		Batch:       true,
		Tel:         telemetry.NewRecorder(1 << 16),
	})
	sys.Start()
	sys.Launch("alloc", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
		// Warm up: size the scratch arenas, slot table, and span rings.
		for i := uint64(0); i < 1024; i++ {
			sp.LoadU64(base + i*PageSize)
		}
		cursor := uint64(1024)
		avg := testing.AllocsPerRun(4, func() {
			for end := cursor + 1024; cursor < end; cursor++ {
				sp.LoadU64(base + cursor*PageSize)
			}
		})
		// Same bound as TestBatchedFaultPathAllocs with recording off:
		// telemetry must not add a single allocation per page.
		if perPage := avg / 1024; perPage > 3.5 {
			t.Errorf("instrumented fault path allocates %.2f/page, want ≤ 3.5", perPage)
		}
	})
	eng.Run()
}
