// Package core is DiLOS itself: the LibOS computing-node kernel specialized
// for paging-based memory disaggregation. It wires the unified page table
// (internal/pagetable), the page fault handler (fault.go), the prefetcher
// framework and PTE hit tracker (internal/prefetch), the page manager with
// its background cleaner/reclaimer (internal/pagemgr), and the
// shared-nothing communication module (internal/comm) into one system, and
// exposes the POSIX-style compatibility layer (compat.go) that workloads
// program against.
//
// The structure mirrors the paper's Figure 3: an application and the LibOS
// share a single address space; four key components — fault handler,
// prefetcher, page manager, communication module — cooperate on the
// computing node; guides plug in beside the application without modifying
// it. Page→(node, slot) layout lives in internal/placement; every metric
// registers in a stats.Registry at construction.
package core

import (
	"fmt"

	"dilos/internal/chaos"
	"dilos/internal/comm"
	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/guide"
	"dilos/internal/memnode"
	"dilos/internal/migrate"
	"dilos/internal/mmu"
	"dilos/internal/obs"
	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/stats"
	"dilos/internal/telemetry"
	"dilos/internal/trace"
)

// PageSize re-exports the paging granularity.
const PageSize = pagetable.PageSize

// Costs is the DiLOS software cost model for the fault path — deliberately
// tiny, because the handler checks exactly one data structure (the unified
// page table) before issuing the RDMA request (§4.2).
type Costs struct {
	HandlerCheck   sim.Time // decode tag, flip remote→fetching
	FrameAlloc     sim.Time // pop a frame from the free list
	Map            sim.Time // install the local PTE
	PrefetchIssue  sim.Time // per prefetch request issued (doorbell + post)
	PrefetchFilter sim.Time // per prefetch candidate examined (PTE lookup)
	ZeroFill       sim.Time // scrub a frame before a vectored (partial) fetch
	// PrefetchWQE is the CPU cost of building one additional work-queue
	// entry when the prefetch window is submitted as a doorbell batch
	// (Config.Batch): the first request of a batch pays the full
	// PrefetchIssue (doorbell write included), the rest only this.
	PrefetchWQE sim.Time
	// TagCAS is the cost of one narrow PTE tag transition
	// (pagetable.TryTransition) — the compare-and-swap the sharded fault
	// path performs instead of a read-modify-write under a wide critical
	// section. Charged only when Config.Shards > 0; legacy runs are
	// untouched.
	TagCAS sim.Time
}

// DefaultCosts returns the calibrated DiLOS handler costs (the entire
// software path outside fetch is ≈0.2–0.3 µs, per Figure 6).
func DefaultCosts() Costs {
	return Costs{
		HandlerCheck:   80 * sim.Nanosecond,
		FrameAlloc:     50 * sim.Nanosecond,
		Map:            120 * sim.Nanosecond,
		PrefetchIssue:  120 * sim.Nanosecond,
		PrefetchFilter: 40 * sim.Nanosecond,
		ZeroFill:       200 * sim.Nanosecond,
		PrefetchWQE:    40 * sim.Nanosecond,
		TagCAS:         20 * sim.Nanosecond,
	}
}

// Backing is where a memory node's pages live: the in-process
// memnode.Node for simulated runs, or transport.Backing for a real remote
// daemon reached over TCP (the data path then leaves the process while the
// simulation still supplies the timing).
type Backing interface {
	fabric.Store
	AllocRange(pages uint64) (uint64, error)
	Key() uint32
}

// Breakdown accumulates the Figure 6 fault-latency segments.
type Breakdown struct {
	Exception sim.Time // hardware exception + handler entry
	Handler   sim.Time // PTE check + frame allocation
	Fetch     sim.Time // waiting for the 4 KiB RDMA read
	Map       sim.Time // installing the PTE
	Reclaim   sim.Time // direct reclamation in the fault path (0 by design)
	N         int64    // major faults sampled
}

// Mean returns the per-fault averages.
func (b Breakdown) Mean() (exception, handler, fetch, mapping, reclaim sim.Time) {
	if b.N == 0 {
		return
	}
	n := sim.Time(b.N)
	return b.Exception / n, b.Handler / n, b.Fetch / n, b.Map / n, b.Reclaim / n
}

// Total returns the mean total fault latency.
func (b Breakdown) Total() sim.Time {
	e, h, f, m, r := b.Mean()
	return e + h + f + m + r
}

// Config assembles a DiLOS computing node.
type Config struct {
	// CacheFrames is the local DRAM cache size in 4 KiB frames.
	CacheFrames int
	// Cores is the number of CPU cores (each gets its own QP set).
	Cores int
	// RemoteBytes sizes the memory node's registered region.
	RemoteBytes uint64
	// Fabric selects the network calibration (DefaultParams or TCPParams).
	Fabric fabric.Params
	// Prefetcher is the page prefetch policy (nil → prefetch.None).
	Prefetcher prefetch.Prefetcher
	// EvictionGuide optionally enables guided paging on the page manager.
	EvictionGuide pagemgr.EvictionGuide
	// Mgr overrides the page-manager tuning (nil → defaults for the pool).
	Mgr *pagemgr.Config
	// SharedQP collapses each core's per-module queues into one shared
	// queue — the head-of-line-prone design §4.5 rejects. Ablation only.
	SharedQP bool
	// MemNodes shards the remote backing across this many memory nodes —
	// the multi-node extension the paper leaves as future work (§5.1).
	// Default 1. Each node gets its own link, RemoteBytes of registered
	// memory, and per-core queue pairs.
	MemNodes int
	// Placement selects the page→node layout policy (nil → striped, the
	// original page-round-robin behavior).
	Placement placement.Policy
	// Backings overrides the in-process memory nodes entirely (one shard
	// per entry) — e.g. transport.Backing instances pointing at real
	// memnoded daemons. When set, MemNodes and RemoteBytes are ignored
	// and Nodes/Node are nil.
	Backings []Backing
	// Replicas keeps this many copies of every page across distinct
	// memory nodes (the §5.1 fault-tolerance direction): write-backs reach
	// every replica, fetches use the first live one, and failing a node
	// (Space().SetState) switches reads over. Requires MemNodes (or
	// Backings) ≥ Replicas. Default 1.
	Replicas int
	// Trace, when set, records every fault (major/minor) into the ring for
	// offline analysis and replay (internal/trace).
	Trace *trace.Recorder
	// Tel, when set, attaches the flight recorder: the fault handler,
	// prefetch mappers, cleaner, reclaimer, and fabric links emit spans
	// into it (internal/telemetry). Nil compiles the instrumentation out:
	// every emission site is guarded, so a disabled run is untouched.
	Tel *telemetry.Recorder
	// SampleEvery, with Tel set, starts the periodic gauge sampler at
	// this interval (0 disables sampling; spans are still recorded).
	SampleEvery sim.Time
	// Obs, when set, attaches the live observability plane (internal/obs):
	// the publisher daemon evaluates per-tenant SLO burn rates every
	// EvalEvery, control-plane events (breaker trips, drains, rebalances,
	// steals, alert edges) land in the plane's journal, and — when a Sink
	// is attached — rendered /metrics, /statusz, and /journalz pages are
	// published every PublishEvery. Nil is the plane-off configuration;
	// every emission site is guarded, so a disabled run is untouched.
	Obs *obs.Plane
	// Chaos, when set, injects deterministic faults into every link (see
	// internal/chaos) and enables the failure-handling stack: the health
	// monitor daemons, fetch retry/failover, and re-replication. Without it
	// the system behaves exactly as before — ops never fail.
	Chaos *chaos.Injector
	// Health overrides the health monitor tuning (nil → DefaultHealthConfig
	// when Chaos is set; ignored otherwise unless explicitly provided).
	Health *HealthConfig
	// Batch enables doorbell-batched submission on the hot I/O paths: the
	// prefetcher posts its whole window per node through one doorbell
	// (fabric.QP.Submit) with contiguous remote offsets coalesced into
	// vectored reads, and the page manager's cleaner/reclaimer batch their
	// write-backs (replicas included) the same way. Off by default so the
	// per-op calibration numbers are unchanged; ext5 measures the win.
	Batch bool
	// Migrate, when set, starts the elastic-pool migration engine
	// (internal/migrate): System.Drain evacuates a node for removal,
	// AddMemNode grows the pool and rebalances toward the new node, and a
	// positive Tuning.Watermark keeps per-node occupancy levelled
	// continuously. Nil leaves the pool membership static after Start.
	Migrate *migrate.Tuning
	// Tenancy, when set, enables multi-tenant mode: NewTenant carves
	// per-tenant Systems (own page table, placement space, prefetcher, and
	// frame quota) out of this host, sharing the pool, fabric, and
	// background services. See tenant.go.
	Tenancy *TenancyConfig
	// Shards shards the paging hot path per core: the frame pool keeps
	// one LRU/clock list per shard (frames home to the faulting core), the
	// page manager runs one cleaner/reclaimer pair per shard over
	// per-shard scratch, and PTE transitions become narrow full-value
	// CASes charged at Costs.TagCAS. 0 (default) keeps the legacy
	// single-list layout byte-identical; typically set to Cores.
	// Incompatible with Tenancy (the two partition frames along
	// different axes).
	Shards int
	// WideLocks, with Shards ≥ 1, models the coarse shared-structure
	// baseline the sharding replaces: one virtual-time lock held by the
	// cleaner/reclaimer across entire sweeps (pacing waits included) and
	// acquired by every fault handler around its PTE transitions. Ablation
	// only — ext10's "shared" arm.
	WideLocks bool
}

// System is a DiLOS computing node plus its memory node(s). Node, Link,
// and Hub always refer to node 0; with MemNodes > 1 the full sets live in
// Nodes, Links, and Hubs, and the placement policy spreads pages across
// them (striped round-robin by default).
type System struct {
	Eng   *sim.Engine
	Node  *memnode.Node
	Link  *fabric.Link
	Nodes []*memnode.Node
	Links []*fabric.Link
	Hubs  []*comm.Hub
	Table *pagetable.Table
	Pool  dram.Frames
	Mgr   *pagemgr.Manager
	Hub   *comm.Hub
	Costs Costs
	MMUC  mmu.Costs
	Pf    prefetch.Prefetcher
	Track *prefetch.HitTracker
	Hist  *prefetch.History
	Trace *trace.Recorder

	// guides are the attached app-aware modules (guide.Guide), registered
	// via AttachGuide before Start; the fault handler calls every guide's
	// OnFault inside the fetch window, in attachment order. guideVPNs is
	// the reusable expansion scratch for Prefetch's byte-range requests
	// (safe to share: Prefetch never yields while using it).
	guides    []guide.Guide
	guideVPNs []pagetable.VPN

	// statusSections are extra /statusz renderers (AddStatusSection):
	// workload layers such as internal/kvcache publish their state into
	// AppendStatus through them, in registration order.
	statusSections []func(dst []byte, now sim.Time) []byte

	// Tel is the flight recorder (nil when disabled); Sam is the gauge
	// sampler, started with the system when SampleEvery is set.
	Tel *telemetry.Recorder
	Sam *telemetry.Sampler
	// telCore[c]/telPf[c] are core c's fault and prefetch-mapper tracks.
	telCore     []int
	telPf       []int
	sampleEvery sim.Time

	// Sampler-refreshed gauges (see SampleGauges).
	CacheUsedG stats.Gauge
	PfQueueG   stats.Gauge
	PfWindowG  stats.Gauge

	backings []Backing
	space    *placement.AddressSpace
	registry *stats.Registry
	heap     *heapArena

	// Multi-tenant state (see tenant.go). arena is the physical frame pool
	// tenant views carve up; svc is the shared cleaner/reclaimer service.
	// host is nil on the host system and points back to it on the per-tenant
	// systems NewTenant assembles.
	arena    *dram.Pool
	svc      *pagemgr.Service
	tenancy  *TenancyConfig
	tenants  []*Tenant
	slack    *dram.Slack
	policy   placement.Policy
	replicas int
	host     *System

	// Construction parameters kept for AddMemNode/AttachBacking: a node
	// joining mid-run gets the same link calibration and hub shape.
	remoteBytes uint64
	fabricP     fabric.Params
	cores       int
	sharedQP    bool

	// Sharded fault path (Config.Shards / Config.WideLocks). huge holds the
	// 2 MB regions MmapDDCHuge registered, sorted by base VPN.
	shards    int
	wideLocks bool
	huge      []hugeSpan

	// Obs is the live observability plane (nil when disabled). Tenant
	// systems alias the host's plane; only the host runs the publisher
	// daemon. sloMon/sloID are this system's objective registration — the
	// fault path observes into them directly so the nil check stays cheap.
	Obs    *obs.Plane
	sloMon *obs.Monitor
	sloID  int

	// Chaos is the fault injector shared by every link (nil without chaos).
	Chaos *chaos.Injector
	// Health is the memory-node health monitor (nil without chaos/health).
	Health *HealthMonitor
	// Mig is the elastic-pool migration engine (nil without Config.Migrate).
	Mig *migrate.Engine
	// retryRng seeds retry jitter; deterministic per chaos seed.
	retryRng chaos.Rand

	// ReplicaFetches counts fetches served by a non-primary replica
	// because the primary's node failed — incremented at the fetch site
	// only, never by write-back or prefetch target resolution.
	ReplicaFetches stats.Counter
	// ReReplicated counts pages copied back onto a recovered node.
	ReReplicated stats.Counter
	// PrefetchFails counts prefetches reverted because their op failed.
	PrefetchFails stats.Counter
	// FetchRetries aggregates the fault path's retry/timeout/gave-up
	// counters across every core's reliable fetch attempts.
	FetchRetries *fabric.RetryStats

	slots     []inflight
	freeSlots []uint64

	// Batch mirrors Config.Batch (doorbell-batched submission).
	Batch bool

	pfQueue  [][]pfItem
	pfWaiter []sim.Waiter
	// pfHeld[c] is the queue entry core c's mapper daemon popped and is
	// currently blocked on — published so catchUpMapper can install it the
	// moment its completion ripens, instead of waiting for the daemon to be
	// scheduled.
	pfHeld []pfHeldItem
	// pfScratch is the per-core scratch arena for batched prefetch issue —
	// reused across faults so the hot path does not allocate. Safe to share
	// per core because SchedulePrefetch never yields while using it.
	pfScratch []pfScratch

	// Counters and instrumentation.
	MajorFaults   stats.Counter
	MinorFaults   stats.Counter
	LateMapHits   stats.Counter
	GuidedFetches stats.Counter
	Prefetches    stats.Counter
	FaultLat      *stats.Histogram // major-fault end-to-end latency
	MinorFaultLat *stats.Histogram // minor-fault (wait-on-inflight) latency
	BD            Breakdown

	started bool
}

type inflight struct {
	op     *fabric.Op
	frame  dram.FrameID
	vpn    pagetable.VPN
	gen    uint64
	active bool
	// demand marks a fault-handler-owned fetch: its owner runs recovery on
	// failure (re-issuing and republishing op), so waiters poll rather
	// than revert. Prefetch slots (demand=false) are reverted on failure.
	demand bool
}

type pfItem struct {
	slot uint64
	gen  uint64
}

type pfHeldItem struct {
	item  pfItem
	valid bool
}

// pfScratch holds one core's reusable buffers for batched prefetch issue.
// items records every accepted target in issue order; per node the segs
// are coalesced into reqs, submitted, and the resulting ops installed back
// into the items' slots.
type pfScratch struct {
	items []pfIssue
	segs  []fabric.Seg
	reqs  []fabric.Req
	ops   []*fabric.Op
	noted []pagetable.VPN
}

type pfIssue struct {
	node int // remote node, or -1 once its op has been submitted
	off  uint64
	buf  []byte
	slot uint64
	gen  uint64
}

// New assembles a DiLOS node from the config, panicking on an invalid
// one. NewSystem is the error-returning, functional-options variant;
// both converge on the same normalized config (Config.Validate
// documents the rules).
func New(eng *sim.Engine, cfg Config) *System {
	n, err := cfg.normalized()
	if err != nil {
		panic(err.Error())
	}
	return build(eng, n)
}

// build assembles the system from an already-normalized config:
// MemNodes and Replicas are resolved, and every cross-field rule in
// Config.Validate has passed.
func build(eng *sim.Engine, cfg Config) *System {
	var nodes []*memnode.Node
	backings := cfg.Backings
	if len(backings) == 0 {
		nodes = make([]*memnode.Node, cfg.MemNodes)
		backings = make([]Backing, cfg.MemNodes)
		for i := range nodes {
			nodes[i] = memnode.New(cfg.RemoteBytes, 0xd170)
			backings[i] = nodes[i]
		}
	}
	links := make([]*fabric.Link, cfg.MemNodes)
	for i := range links {
		links[i] = fabric.NewLinkOver(backings[i], backings[i].Key(), cfg.Fabric)
		links[i].NodeID = i
		links[i].Chaos = cfg.Chaos
	}
	var node *memnode.Node
	if nodes != nil {
		node = nodes[0]
	}
	link := links[0]
	tbl := pagetable.New()
	pool := dram.NewPool(cfg.CacheFrames)
	if cfg.Shards > 1 {
		pool.SetShards(cfg.Shards)
	}
	mcfg := pagemgr.DefaultConfig(cfg.CacheFrames)
	if cfg.Mgr != nil {
		mcfg = *cfg.Mgr
	}
	if cfg.Shards > 0 && mcfg.TagCAS == 0 {
		mcfg.TagCAS = DefaultCosts().TagCAS
	}
	mgr := pagemgr.New(pool, tbl, mcfg)
	mgr.Guide = cfg.EvictionGuide
	mgr.Batch = cfg.Batch
	mgr.Shards = cfg.Shards
	if cfg.WideLocks {
		mgr.Wide = &sim.Lock{}
	}
	hubs := make([]*comm.Hub, cfg.MemNodes)
	for i := range hubs {
		if cfg.SharedQP {
			hubs[i] = comm.NewSharedHub(links[i], cfg.Cores, backings[i].Key())
		} else {
			hubs[i] = comm.NewHub(links[i], cfg.Cores, backings[i].Key())
		}
	}
	hub := hubs[0]
	pf := cfg.Prefetcher
	if pf == nil {
		pf = prefetch.None{}
	}
	s := &System{
		Eng:      eng,
		Node:     node,
		Link:     link,
		Nodes:    nodes,
		backings: backings,
		Links:    links,
		Hubs:     hubs,
		Table:    tbl,
		Pool:     pool,
		arena:    pool,
		Mgr:      mgr,
		Hub:      hub,
		Costs:    DefaultCosts(),
		MMUC:     mmu.DefaultCosts(),
		Pf:       pf,
		Track:    prefetch.NewHitTracker(),
		Hist:     prefetch.NewHistory(32),
		Trace:    cfg.Trace,
		space: placement.New(placement.Config{
			Nodes:    cfg.MemNodes,
			Replicas: cfg.Replicas,
			Policy:   cfg.Placement,
		}),
		Chaos:       cfg.Chaos,
		Batch:       cfg.Batch,
		remoteBytes: cfg.RemoteBytes,
		fabricP:     cfg.Fabric,
		cores:       cfg.Cores,
		sharedQP:    cfg.SharedQP,
		shards:      cfg.Shards,
		wideLocks:   cfg.WideLocks,
		tenancy:     cfg.Tenancy,
		policy:      cfg.Placement,
		replicas:    cfg.Replicas,
		pfQueue:     make([][]pfItem, cfg.Cores),
		pfHeld:      make([]pfHeldItem, cfg.Cores),
		pfWaiter:    make([]sim.Waiter, cfg.Cores),
		pfScratch:   make([]pfScratch, cfg.Cores),
	}
	initMetrics(s, "")
	s.sloID = -1
	if cfg.Obs != nil {
		s.Obs = cfg.Obs
		if cfg.Obs.Monitor != nil {
			o := cfg.Obs.Objective
			o.Name = "pool"
			s.sloMon = cfg.Obs.Monitor
			s.sloID = cfg.Obs.Monitor.Register(o)
		}
		if j := cfg.Obs.Journal; j != nil {
			mgr.OnSteal = func(now sim.Time, thief, victim int) {
				j.Emit(now, "shard_steal",
					obs.I("thief_shard", int64(thief)), obs.I("victim_shard", int64(victim)))
			}
		}
	}
	if cfg.Tenancy != nil && !cfg.Tenancy.NoIsolation {
		s.slack = dram.NewSlack(cfg.Tenancy.SlackFrames)
	}
	if cfg.Tel != nil {
		s.Tel = cfg.Tel
		s.sampleEvery = cfg.SampleEvery
		s.telCore = make([]int, cfg.Cores)
		s.telPf = make([]int, cfg.Cores)
		// Track registration order fixes timeline row order: cores first,
		// then the prefetch mappers, daemons, and fabric links.
		for c := 0; c < cfg.Cores; c++ {
			s.telCore[c] = cfg.Tel.Track(fmt.Sprintf("fault/core%d", c))
		}
		for c := 0; c < cfg.Cores; c++ {
			s.telPf[c] = cfg.Tel.Track(fmt.Sprintf("pfmap%d", c))
		}
		mgr.Tel = cfg.Tel
		if cfg.Shards > 1 {
			mgr.CleanTracks = make([]int, cfg.Shards)
			mgr.ReclaimTracks = make([]int, cfg.Shards)
			for sh := 0; sh < cfg.Shards; sh++ {
				mgr.CleanTracks[sh] = cfg.Tel.Track(fmt.Sprintf("clean/shard%d", sh))
				mgr.ReclaimTracks[sh] = cfg.Tel.Track(fmt.Sprintf("reclaim/shard%d", sh))
			}
		} else {
			mgr.CleanTrack = cfg.Tel.Track("cleaner")
			mgr.ReclaimTrack = cfg.Tel.Track("reclaimer")
		}
		for i, l := range links {
			l.Tel = cfg.Tel
			l.TelTrack = cfg.Tel.Track(fmt.Sprintf("fabric.node%d", i))
		}
	}
	// Retry jitter derives from the chaos seed so the full failure-handling
	// stack replays under one number; without chaos the fixed seed keeps
	// behavior deterministic anyway (jitter only fires after a failed op,
	// which cannot happen without an injector).
	retrySeed := uint64(0xd1705)
	if cfg.Chaos != nil {
		retrySeed ^= cfg.Chaos.Config().Seed
	}
	s.retryRng = chaos.NewRand(retrySeed)
	mgr.RemoteOf = func(v pagetable.VPN) (pagemgr.Target, bool) {
		slots, ok := s.space.WriteSlots(v)
		if !ok || len(slots) == 0 {
			return pagemgr.Target{}, false
		}
		tgt := pagemgr.Target{
			Off:       slots[0].Off,
			CleanQP:   s.Hubs[slots[0].Node].QP(0, comm.ModCleaner),
			ReclaimQP: s.Hubs[slots[0].Node].QP(0, comm.ModReclaim),
		}
		for _, sl := range slots[1:] {
			tgt.Replicas = append(tgt.Replicas, pagemgr.Target{
				Off:       sl.Off,
				CleanQP:   s.Hubs[sl.Node].QP(0, comm.ModCleaner),
				ReclaimQP: s.Hubs[sl.Node].QP(0, comm.ModReclaim),
			})
		}
		return tgt, true
	}
	if cfg.Chaos != nil || cfg.Health != nil {
		hc := cfg.Health
		if hc == nil {
			d := DefaultHealthConfig()
			hc = &d
		}
		s.Health = NewHealthMonitor(s, *hc)
	}
	if cfg.Migrate != nil {
		mc := migrate.Config{
			Space:        s.space,
			QP:           func(node int) *fabric.QP { return s.Hubs[node].QP(0, comm.ModMigrate) },
			LocalContent: s.localContent,
			AllocSlots: func(node int, slots uint64) (uint64, error) {
				return s.backings[node].AllocRange(slots)
			},
			Tuning: *cfg.Migrate,
		}
		if cfg.Tel != nil {
			mc.Tel = cfg.Tel
			mc.TelTrack = cfg.Tel.Track("migrate")
		}
		s.Mig = migrate.New(eng, mc)
	}
	s.registry = s.buildRegistry()
	return s
}

// initMetrics names the system's own metrics under pfx ("" for the host,
// "tenant.<name>." for the per-tenant systems NewTenant assembles) and
// allocates the histograms. Kept out of the construction literal so both
// builders share one naming site.
func initMetrics(s *System, pfx string) {
	s.ReplicaFetches = stats.Counter{Name: pfx + "dilos.replica_fetches"}
	s.ReReplicated = stats.Counter{Name: pfx + "dilos.rereplicated"}
	s.PrefetchFails = stats.Counter{Name: pfx + "dilos.prefetch_fails"}
	s.FetchRetries = fabric.NewRetryStats(pfx + "fetch")
	s.MajorFaults = stats.Counter{Name: pfx + "dilos.major_faults"}
	s.MinorFaults = stats.Counter{Name: pfx + "dilos.minor_faults"}
	s.LateMapHits = stats.Counter{Name: pfx + "dilos.late_map_hits"}
	s.GuidedFetches = stats.Counter{Name: pfx + "dilos.guided_fetches"}
	s.Prefetches = stats.Counter{Name: pfx + "dilos.prefetches"}
	s.FaultLat = stats.NewHistogram(pfx + "dilos.fault_latency")
	s.MinorFaultLat = stats.NewHistogram(pfx + "dilos.minor_fault_latency")
	s.CacheUsedG = stats.Gauge{Name: pfx + "dilos.cache_used_frames"}
	s.PfQueueG = stats.Gauge{Name: pfx + "dilos.prefetch_queue_depth"}
	s.PfWindowG = stats.Gauge{Name: pfx + "dilos.prefetch_window"}
}

// localContent copies page v's resident frame into buf, reporting false
// when the page is not Local. Never yields — the migration engine calls
// it inside its no-yield flip window, where the frame is authoritative.
func (s *System) localContent(v pagetable.VPN, buf []byte) bool {
	pte := s.Table.Lookup(v)
	if pte.Tag() != pagetable.TagLocal {
		return false
	}
	copy(buf, s.Pool.Bytes(dram.FrameID(pte.Frame())))
	return true
}

// buildRegistry registers every metric the system owns at construction —
// the single observability surface Snapshot() serialises.
func (s *System) buildRegistry() *stats.Registry {
	r := stats.NewRegistry()
	r.RegisterCounter(&s.MajorFaults)
	r.RegisterCounter(&s.MinorFaults)
	r.RegisterCounter(&s.LateMapHits)
	r.RegisterCounter(&s.GuidedFetches)
	r.RegisterCounter(&s.Prefetches)
	r.RegisterCounter(&s.ReplicaFetches)
	r.RegisterCounter(&s.ReReplicated)
	r.RegisterCounter(&s.PrefetchFails)
	r.RegisterHistogram(s.FaultLat)
	r.RegisterHistogram(s.MinorFaultLat)
	r.RegisterGauge(&s.CacheUsedG)
	r.RegisterGauge(&s.PfQueueG)
	r.RegisterGauge(&s.PfWindowG)
	s.Mgr.RegisterStats(r)
	s.FetchRetries.RegisterStats(r)
	// Shared infrastructure (links, memory nodes, chaos, health, migration)
	// belongs to the host; per-tenant systems only register their own view
	// of the fault path so Merge into the host registry never collides.
	if s.host == nil {
		if s.Obs != nil && s.Obs.Monitor != nil {
			s.Obs.Monitor.RegisterStats(r)
		}
		if s.Chaos != nil {
			s.Chaos.RegisterStats(r)
		}
		if s.Health != nil {
			s.Health.RegisterStats(r)
		}
		if s.Mig != nil {
			s.Mig.RegisterStats(r)
		}
		for i, l := range s.Links {
			s.registerLink(r, i, l)
		}
		for i, n := range s.Nodes {
			s.registerMemNode(r, i, n)
		}
	}
	return r
}

// registerLink qualifies a link's generic metric names per node (the
// registry's uniqueness invariant) and registers them. Also used when a
// node joins mid-run (AddMemNode/AttachBacking).
func (s *System) registerLink(r *stats.Registry, i int, l *fabric.Link) {
	prefix := fmt.Sprintf("link.node%d.", i)
	l.RxBytes.Name = prefix + "rx.bytes"
	l.TxBytes.Name = prefix + "tx.bytes"
	l.RxOps.Name = prefix + "rx.ops"
	l.TxOps.Name = prefix + "tx.ops"
	l.FailedOps.Name = prefix + "failed.ops"
	l.Batches.Name = prefix + "batch.doorbells"
	l.BatchedOps.Name = prefix + "batch.ops"
	l.CoalescedSegs.Name = prefix + "batch.coalesced_segs"
	l.BatchSize.Name = prefix + "batch.size"
	l.RxBacklog.Name = prefix + "rx.backlog_ns"
	l.TxBacklog.Name = prefix + "tx.backlog_ns"
	r.RegisterGauge(&l.RxBacklog)
	r.RegisterGauge(&l.TxBacklog)
	r.RegisterCounter(&l.RxBytes)
	r.RegisterCounter(&l.TxBytes)
	r.RegisterCounter(&l.RxOps)
	r.RegisterCounter(&l.TxOps)
	r.RegisterCounter(&l.FailedOps)
	r.RegisterCounter(&l.Batches)
	r.RegisterCounter(&l.BatchedOps)
	r.RegisterCounter(&l.CoalescedSegs)
	r.RegisterHistogram(l.BatchSize)
}

// registerMemNode qualifies and registers an in-process memory node's
// served-op counters.
func (s *System) registerMemNode(r *stats.Registry, i int, n *memnode.Node) {
	prefix := fmt.Sprintf("memnode.node%d.", i)
	n.ReadsSrv.Name = prefix + "reads"
	n.WritesSv.Name = prefix + "writes"
	r.RegisterCounter(&n.ReadsSrv)
	r.RegisterCounter(&n.WritesSv)
}

// Registry exposes every metric the system registered at construction.
func (s *System) Registry() *stats.Registry { return s.registry }

// Space exposes the placement substrate (tests and guides inspect layout
// through it; all fetch paths already resolve through it internally).
func (s *System) Space() *placement.AddressSpace { return s.space }

// Drain asks the migration engine to evacuate a memory node: it stops
// joining new regions, every replica slot it hosts migrates to the other
// live nodes, and once empty it leaves the pool (placement.Removed).
// Requires Config.Migrate.
func (s *System) Drain(node int) error {
	if s.Mig == nil {
		return fmt.Errorf("core: Drain requires the migration engine (set Config.Migrate)")
	}
	s.emitEvent(s.Eng.Now(), "drain_requested", obs.I("node", int64(node)))
	return s.Mig.Drain(node)
}

// AddMemNode grows the pool with a fresh in-process memory node sized
// like the originals (RemoteBytes) and returns its id. The node joins
// Live and empty; with the migration engine running, a rebalance pulls
// pages toward it. Existing pages never remap implicitly — only
// migration moves them. Errors in Backings mode, where the caller owns
// node construction (use AttachBacking).
func (s *System) AddMemNode() (int, error) {
	if s.remoteBytes == 0 {
		return 0, fmt.Errorf("core: AddMemNode needs in-process nodes; with external Backings use AttachBacking")
	}
	n := memnode.New(s.remoteBytes, 0xd170)
	return s.attachNode(n, n), nil
}

// AttachBacking grows the pool with an externally supplied backing (a
// transport.Backing for a real daemon, or any Backing implementation)
// and returns its node id. Errors when the pool was built from
// in-process nodes — mixing the two would desynchronise Nodes from the
// node id space.
func (s *System) AttachBacking(b Backing) (int, error) {
	if s.Nodes != nil {
		return 0, fmt.Errorf("core: AttachBacking mixes external backings into an in-process pool; use AddMemNode")
	}
	return s.attachNode(b, nil), nil
}

// attachNode wires a new memory node into every layer: link (same
// calibration, chaos injector, and telemetry shape as the originals),
// comm hub, registry metrics, placement membership, health watching, and
// a migration rebalance toward the empty node.
func (s *System) attachNode(b Backing, n *memnode.Node) int {
	id := len(s.backings)
	l := fabric.NewLinkOver(b, b.Key(), s.fabricP)
	l.NodeID = id
	l.Chaos = s.Chaos
	if s.Tel != nil {
		l.Tel = s.Tel
		l.TelTrack = s.Tel.Track(fmt.Sprintf("fabric.node%d", id))
	}
	var h *comm.Hub
	if s.sharedQP {
		h = comm.NewSharedHub(l, s.cores, b.Key())
	} else {
		h = comm.NewHub(l, s.cores, b.Key())
	}
	s.backings = append(s.backings, b)
	s.Links = append(s.Links, l)
	s.Hubs = append(s.Hubs, h)
	if n != nil {
		s.Nodes = append(s.Nodes, n)
	}
	s.registerLink(s.registry, id, l)
	if n != nil {
		s.registerMemNode(s.registry, id, n)
	}
	if got := s.space.AddNode(); got != id {
		panic("core: placement node id out of sync with the fabric")
	}
	// Every tenant shares the new link but issues through its own hub (so
	// its token bucket keeps gating all of its traffic), and its private
	// address space grows in lockstep with the host's.
	for _, t := range s.tenants {
		ts := t.Sys
		var th *comm.Hub
		if s.sharedQP {
			th = comm.NewSharedHub(l, s.cores, b.Key())
		} else {
			th = comm.NewHub(l, s.cores, b.Key())
		}
		if t.bucket != nil {
			th.SetLimiter(t.bucket)
		}
		ts.backings = append(ts.backings, b)
		ts.Links = append(ts.Links, l)
		ts.Hubs = append(ts.Hubs, th)
		if n != nil {
			ts.Nodes = append(ts.Nodes, n)
		}
		if got := ts.space.AddNode(); got != id {
			panic("core: tenant placement node id out of sync with the fabric")
		}
	}
	if s.Health != nil {
		s.Health.Watch(id)
	}
	if s.Mig != nil {
		s.Mig.RequestRebalance()
	}
	return id
}

// Start launches the background daemons (page manager, per-core prefetch
// mappers, the app-aware guide). Call once before running workloads.
func (s *System) Start() {
	if s.started {
		panic("core: Start called twice")
	}
	s.started = true
	// With tenants admitted, the shared pagemgr service already exists and
	// holds only the tenant managers — the host manager has no frames of its
	// own to clean (tenant views carve up the whole arena), so attaching it
	// would spin the reclaimer. Without tenants the service degenerates to
	// the classic single-manager daemons.
	if s.svc == nil {
		s.svc = pagemgr.NewService()
		s.svc.Attach(s.Mgr)
	}
	s.svc.Shards = s.shards
	s.svc.Start(s.Eng)
	for c := 0; c < s.Hub.Cores(); c++ {
		c := c
		s.Eng.GoDaemon(fmt.Sprintf("dilos.pfmap%d", c), func(p *sim.Proc) { s.pfMapLoop(p, c) })
	}
	for _, g := range s.guides {
		g.Start(s)
	}
	if s.Health != nil {
		s.Health.Start()
	}
	if s.Mig != nil {
		s.Mig.Start()
	}
	if s.tenancy != nil && !s.tenancy.NoIsolation && s.tenancy.RebalanceEvery > 0 && len(s.tenants) > 0 {
		s.Eng.GoDaemon("dilos.rebalance", s.rebalanceLoop)
	}
	// The sampler daemon spawns last so the relative scheduling order of
	// every pre-existing daemon is unchanged by enabling it.
	if s.Tel != nil && s.sampleEvery > 0 {
		s.Sam = &telemetry.Sampler{
			Interval: s.sampleEvery,
			Registry: s.registry,
			Collect:  s.SampleGauges,
		}
		s.Sam.Start(s.Eng)
	}
	// The observability publisher likewise spawns after every pre-existing
	// daemon: enabling the plane never reorders the rest of the system.
	if s.Obs != nil && (s.Obs.Monitor != nil || s.Obs.Sink != nil) {
		s.Eng.GoDaemon("dilos.obs", s.obsLoop)
	}
}

// SampleGauges refreshes every sampler-visible level from live state: the
// telemetry sampler calls it once per tick. It reads but never mutates
// workload-visible state, so sampling cannot change a run's timing.
func (s *System) SampleGauges(now sim.Time) {
	s.CacheUsedG.Set(int64(s.Pool.Used()))
	depth := 0
	for _, q := range s.pfQueue {
		depth += len(q)
	}
	s.PfQueueG.Set(int64(depth))
	switch pf := s.Pf.(type) {
	case *prefetch.Readahead:
		s.PfWindowG.Set(int64(pf.Window))
	case prefetch.Windowed:
		s.PfWindowG.Set(int64(pf.Window()))
	}
	s.Mgr.SampleGauges()
	if s.Mig != nil {
		s.Mig.SampleGauges()
	}
	// Links are host-owned; tenant systems alias them and must not sample
	// twice per tick.
	if s.host == nil {
		for _, l := range s.Links {
			l.SampleBacklog(now)
		}
	}
	for _, t := range s.tenants {
		t.Sys.SampleGauges(now)
	}
}

// Telemetry returns the flight recorder and sampler (nil when disabled) —
// the hook the experiment harness uses to export timelines.
func (s *System) Telemetry() (*telemetry.Recorder, *telemetry.Sampler) { return s.Tel, s.Sam }

// AttachGuide registers an app-aware guide (guide.Guide). Guides attach
// after construction and before Start — Start calls each guide's Start
// with the system as its Host, and the fault handler invokes every
// guide's OnFault inside the fetch window, in attachment order.
func (s *System) AttachGuide(g guide.Guide) {
	if s.started {
		panic("core: AttachGuide after Start")
	}
	if g == nil {
		panic("core: AttachGuide(nil)")
	}
	s.guides = append(s.guides, g)
}

// Guides returns the attached guides in attachment order.
func (s *System) Guides() []guide.Guide { return s.guides }

// GoDaemon implements guide.Host: it spawns a guide daemon on the engine.
func (s *System) GoDaemon(name string, fn func(p *sim.Proc)) { s.Eng.GoDaemon(name, fn) }

// Prefetch implements guide.Host: the typed prefetch-request entry point
// wrapping the prefetcher's issue path. The request's pages (explicit or
// expanded from its byte range) go through SchedulePrefetch, which filters
// pages already local or in flight and — with Config.Batch — posts the
// window through per-node doorbells.
func (s *System) Prefetch(p *sim.Proc, coreID int, req guide.Request) {
	s.guideVPNs = req.VPNs(s.guideVPNs[:0])
	s.SchedulePrefetch(p, coreID, s.guideVPNs)
}

// AddStatusSection appends a custom /statusz section renderer: workload
// layers publish their state into AppendStatus through it. Sections render
// in registration order; each must be deterministic (fixed iteration
// order, integer formatting) to keep same-seed pages byte-identical.
func (s *System) AddStatusSection(fn func(dst []byte, now sim.Time) []byte) {
	s.statusSections = append(s.statusSections, fn)
}

// MmapDDC maps a disaggregated region of `pages` pages (the compat layer's
// mmap with MAP_DDC, §5): every page starts Remote, backed by zeroed slot
// ranges laid out by the placement policy (page-round-robin striping by
// default). With R replicas each node provisions R segments; replica k of
// a page lives on node (primary+k) mod N in segment k.
func (s *System) MmapDDC(pages uint64) (uint64, error) {
	reg, err := s.space.Map(pages, func(node int, slots uint64) (uint64, error) {
		return s.backings[node].AllocRange(slots)
	})
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < pages; i++ {
		vpn := reg.BaseVPN + pagetable.VPN(i)
		sl, ok := s.space.Primary(vpn)
		if !ok {
			panic("core: freshly mapped vpn did not resolve")
		}
		s.Table.Set(vpn, pagetable.Remote(sl.Off/PageSize))
	}
	return reg.Base, nil
}

// remoteOf maps a virtual page to its first live (node, slot offset).
func (s *System) remoteOf(v pagetable.VPN) (int, uint64, bool) {
	sl, ok := s.space.First(v)
	if !ok {
		return 0, 0, false
	}
	return sl.Node, sl.Off, true
}

// RemoteOf exposes the page→(node, remote slot) mapping (guides use it for
// subpage reads).
func (s *System) RemoteOf(v pagetable.VPN) (int, uint64, bool) { return s.remoteOf(v) }

func (s *System) newSlot(vpn pagetable.VPN, frame dram.FrameID) uint64 {
	if k := len(s.freeSlots); k > 0 {
		idx := s.freeSlots[k-1]
		s.freeSlots = s.freeSlots[:k-1]
		sl := &s.slots[idx]
		sl.vpn, sl.frame, sl.op, sl.active, sl.demand = vpn, frame, nil, true, false
		return idx
	}
	s.slots = append(s.slots, inflight{vpn: vpn, frame: frame, active: true})
	return uint64(len(s.slots) - 1)
}

func (s *System) releaseSlot(idx uint64) {
	sl := &s.slots[idx]
	sl.gen++
	sl.op = nil
	sl.demand = false
	s.freeSlots = append(s.freeSlots, idx)
}

// Launch runs fn as a workload thread on the given core. The returned
// DDCProc implements space.Space over this system.
func (s *System) Launch(name string, coreID int, fn func(sp *DDCProc)) {
	if coreID < 0 || coreID >= s.Hub.Cores() {
		panic("core: bad core id")
	}
	s.Eng.Go(name, func(p *sim.Proc) {
		sp := s.BindCore(p, coreID)
		fn(sp)
	})
}

// BindCore attaches an existing sim process to a core, returning its Space.
func (s *System) BindCore(p *sim.Proc, coreID int) *DDCProc {
	h := &coreHandler{sys: s, coreID: coreID}
	c := mmu.NewCore(p, s.Table, s.Pool, h)
	c.Costs = s.MMUC
	return &DDCProc{sys: s, coreID: coreID, core: c}
}
