package core

import (
	"encoding/json"
	"testing"

	"dilos/internal/chaos"
	"dilos/internal/fabric"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
)

// batchSys builds a memory-constrained system with readahead prefetching
// in the requested submission mode.
func batchSys(batched bool, frames int, inj *chaos.Injector) (*System, *sim.Engine) {
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 64 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  prefetch.NewReadahead(31),
		Chaos:       inj,
		Batch:       batched,
	})
	sys.Start()
	return sys, eng
}

func seqReadApp(sys *System, pages uint64, elapsed *sim.Time) {
	sys.Launch("seq", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i*3+1)
		}
		start := sp.Proc().Now()
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i*3+1 {
				panic("corrupted page")
			}
		}
		*elapsed = sp.Proc().Now() - start
	})
}

// The tentpole claim, guarded in-tree: at a 12.5 % local cache a batched
// sequential read strictly beats per-op submission, and the doorbell
// counters show where the win came from.
func TestBatchedSeqReadBeatsPerOp(t *testing.T) {
	const pages = 4096
	run := func(batched bool) (sim.Time, *System) {
		sys, eng := batchSys(batched, pages/8, nil)
		var d sim.Time
		seqReadApp(sys, pages, &d)
		eng.Run()
		return d, sys
	}
	perOp, _ := run(false)
	batched, sys := run(true)
	if batched >= perOp {
		t.Fatalf("batched %v not faster than per-op %v", batched, perOp)
	}
	var doorbells, ops int64
	for _, l := range sys.Links {
		doorbells += l.Batches.N
		ops += l.BatchedOps.N
		if int64(l.BatchSize.Count()) != l.Batches.N {
			t.Fatalf("histogram samples %d != doorbells %d", l.BatchSize.Count(), l.Batches.N)
		}
	}
	if doorbells == 0 || ops <= doorbells {
		t.Fatalf("no amortization recorded: doorbells=%d ops=%d", doorbells, ops)
	}
}

// Determinism: a chaos-seeded run with batching enabled is replayable —
// two simulations under the same seed end with byte-identical metric
// snapshots, fault injections and all.
func TestBatchedChaosSameSeedDeterminism(t *testing.T) {
	run := func() []byte {
		inj := chaos.NewInjector(chaos.Config{
			Seed:       99,
			FailProb:   0.002,
			TailProb:   0.05,
			TailFactor: 4,
			StallProb:  0.002,
			StallTime:  20 * sim.Microsecond,
		})
		sys, eng := batchSys(true, 64, inj)
		var d sim.Time
		seqReadApp(sys, 512, &d)
		eng.Run()
		b, err := json.Marshal(sys.Registry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	if !json.Valid(a) {
		t.Fatal("snapshot not valid JSON")
	}
}

// The batched fault path reuses per-core scratch: steady-state sequential
// faulting must not grow allocations per page. The bound is not zero —
// every RDMA op is itself allocated (fabric.Op) and prefetch slots grow
// the slot table on first use — but it must stay small and flat.
func TestBatchedFaultPathAllocs(t *testing.T) {
	const pages = 8192
	sys, eng := batchSys(true, 256, nil)
	sys.Launch("alloc", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
		// Warm up: size the scratch arenas and slot table.
		for i := uint64(0); i < 1024; i++ {
			sp.LoadU64(base + i*PageSize)
		}
		cursor := uint64(1024)
		avg := testing.AllocsPerRun(4, func() {
			for end := cursor + 1024; cursor < end; cursor++ {
				sp.LoadU64(base + cursor*PageSize)
			}
		})
		// Measured ≈3.2: the fabric.Op, its completion timer, and page-
		// table/LRU churn from the evictions a 12.5 % cache forces. One
		// extra allocation per page would trip the bound.
		if perPage := avg / 1024; perPage > 3.5 {
			t.Errorf("fault path allocates %.2f/page, want ≤ 3.5", perPage)
		}
	})
	eng.Run()
}
