package core

import (
	"bytes"
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/migrate"
	"dilos/internal/obs"
	"dilos/internal/sim"
)

// obsSys builds a small system with the full plane attached.
func obsSys(t *testing.T, tun *migrate.Tuning) (*System, *sim.Engine, *obs.Plane) {
	t.Helper()
	eng := sim.New()
	pl := obs.NewPlane()
	pl.Objective = obs.Objective{
		Budget: 25 * sim.Microsecond,
		Target: 0.99,
		Rules:  []obs.BurnRule{{Long: 500 * sim.Microsecond, Short: 100 * sim.Microsecond, MaxBurn: 8}},
	}
	cfg := Config{
		CacheFrames: 32,
		Cores:       2,
		RemoteBytes: 32 << 20,
		Fabric:      fabric.DefaultParams(),
		Obs:         pl,
	}
	if tun != nil {
		cfg.MemNodes = 3
		cfg.Migrate = tun
	}
	sys := New(eng, cfg)
	sys.Start()
	return sys, eng, pl
}

// seqApp cycles a working set 8x the cache so every pass majors.
func seqApp(sys *System, pages uint64, until sim.Time) {
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			panic(err)
		}
		i := uint64(0)
		for sp.Proc().Now() < until {
			sp.LoadU64(base + i*PageSize)
			i = (i + 1) % pages
		}
	})
}

// TestObsStatuszDeterministic pins the /statusz contract: the rendered
// page is byte-identical across same-seed runs and carries the
// membership, shard, cache, and SLO sections.
func TestObsStatuszDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		sys, eng, pl := obsSys(t, nil)
		seqApp(sys, 256, 2*sim.Millisecond)
		eng.Run()
		status := sys.AppendStatus(nil, eng.Now())
		return status, pl.Journal.AppendJSONL(nil)
	}
	statusA, journalA := run()
	statusB, journalB := run()
	if !bytes.Equal(statusA, statusB) {
		t.Errorf("statusz differs across same-seed runs:\n--- A\n%s\n--- B\n%s", statusA, statusB)
	}
	if !bytes.Equal(journalA, journalB) {
		t.Errorf("journal differs across same-seed runs:\n--- A\n%s\n--- B\n%s", journalA, journalB)
	}
	for _, want := range []string{"dilos status at ", "node 0 state=", "shard 0 lru_frames=", "cache used=", "slo "} {
		if !bytes.Contains(statusA, []byte(want)) {
			t.Errorf("statusz missing %q:\n%s", want, statusA)
		}
	}
}

// TestObsJournalDrainEvent pins the control-plane journal wiring: a
// Drain call lands in the journal as a drain_requested event carrying
// the node id, timestamped when the drain was asked for.
func TestObsJournalDrainEvent(t *testing.T) {
	sys, eng, pl := obsSys(t, &migrate.Tuning{})
	seqApp(sys, 256, 4*sim.Millisecond)
	const drainAt = 500 * sim.Microsecond
	eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(drainAt)
		if err := sys.Drain(2); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	eng.Run()
	found := false
	for _, e := range pl.Journal.Events() {
		if e.Type != "drain_requested" {
			continue
		}
		found = true
		if e.At != drainAt {
			t.Errorf("drain_requested at %v, want %v", e.At, drainAt)
		}
	}
	if !found {
		t.Fatalf("no drain_requested event in journal (%d events)", pl.Journal.Len())
	}
}
