package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/sim"
)

// TestShardedSameSeedByteIdentical runs the sharded configuration twice —
// four cores random-writing disjoint partitions under eviction pressure,
// per-shard daemons and work stealing live — and demands byte-identical
// metric snapshots: sharding must not introduce schedule nondeterminism.
func TestShardedSameSeedByteIdentical(t *testing.T) {
	run := func() []byte {
		const cores, partPages = 4, 96
		eng := sim.New()
		sys := New(eng, Config{
			CacheFrames: cores * partPages / 4, // 4x pressure
			Cores:       cores,
			Shards:      cores,
			RemoteBytes: 64 << 20,
			Fabric:      fabric.DefaultParams(),
			Batch:       true,
		})
		sys.Start()
		base, err := sys.MmapDDC(uint64(cores * partPages))
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < cores; c++ {
			c := c
			sys.Launch(fmt.Sprintf("app%d", c), c, func(sp *DDCProc) {
				lcg := uint64(c)*0x9e3779b97f4a7c15 + 1
				pbase := base + uint64(c)*partPages*PageSize
				for i := 0; i < 2*partPages; i++ {
					lcg = lcg*6364136223846793005 + 1442695040888963407
					sp.StoreU64(pbase+((lcg>>33)%partPages)*PageSize, lcg)
				}
			})
		}
		eng.Run()
		b, err := json.Marshal(sys.Registry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed sharded runs diverged:\n%s\nvs\n%s", a, b)
	}
}
