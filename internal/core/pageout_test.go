package core

import (
	"errors"
	"testing"

	"dilos/internal/dram"
	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// poSystem boots a small batched node for the page-out tests.
func poSystem(frames int) (*sim.Engine, *System) {
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 64 << 20,
		Fabric:      fabric.DefaultParams(),
		Batch:       true,
	})
	sys.Start()
	return eng, sys
}

// TestPageOutRangeRoundTrip is the write-loss gauntlet: dirty pages pushed
// out by PageOutRange must leave DRAM entirely and still read back exactly
// after the refault.
func TestPageOutRangeRoundTrip(t *testing.T) {
	const pages = 32
	eng, sys := poSystem(256)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, 0xbeef<<16|i)
		}
		n := sys.PageOutRange(sp.Proc(), sp.CoreID(), base, pages*PageSize)
		if n != pages {
			t.Fatalf("PageOutRange evicted %d of %d dirty resident pages", n, pages)
		}
		for i := uint64(0); i < pages; i++ {
			v := pagetable.VPNOf(base + i*PageSize)
			if tag := sys.Table.Lookup(v).Tag(); tag == pagetable.TagLocal {
				t.Fatalf("page %d still Local after PageOutRange", i)
			}
		}
		before := sys.MajorFaults.N
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != 0xbeef<<16|i {
				t.Fatalf("page %d read back %#x after page-out round trip", i, got)
			}
		}
		if sys.MajorFaults.N-before != pages {
			t.Fatalf("refault took %d major faults, want %d", sys.MajorFaults.N-before, pages)
		}

		// The refault left the range resident and clean; a second call
		// evicts it again with no write-back, and a third finds nothing.
		if n := sys.PageOutRange(sp.Proc(), sp.CoreID(), base, pages*PageSize); n != pages {
			t.Fatalf("second PageOutRange evicted %d clean pages, want %d", n, pages)
		}
		if n := sys.PageOutRange(sp.Proc(), sp.CoreID(), base, pages*PageSize); n != 0 {
			t.Fatalf("PageOutRange evicted %d pages from an all-remote range", n)
		}
	})
	eng.Run()
}

// TestPageOutRangeSkipsPinned: a pinned frame must survive the call,
// still mapped with its content intact. (No dirty-bit assertion — the
// background cleaner may legitimately clean the page at any point.)
func TestPageOutRangeSkipsPinned(t *testing.T) {
	const pages = 8
	eng, sys := poSystem(128)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
		v0 := pagetable.VPNOf(base)
		f0 := dram.FrameID(sys.Table.Lookup(v0).Frame())
		sys.Pool.Meta(f0).Pinned = true
		n := sys.PageOutRange(sp.Proc(), sp.CoreID(), base, pages*PageSize)
		sys.Pool.Meta(f0).Pinned = false
		if n != pages-1 {
			t.Fatalf("evicted %d pages, want %d (pinned page skipped)", n, pages-1)
		}
		if pte := sys.Table.Lookup(v0); pte.Tag() != pagetable.TagLocal {
			t.Fatalf("pinned page lost residency: %v", pte)
		}
		if got := sp.LoadU64(base); got != 0 {
			t.Fatalf("pinned page content %#x, want 0", got)
		}
	})
	eng.Run()
}

// TestDiscardRange: discarded frames return to the pool without
// write-back, and a rewrite-then-read over the recycled range sees the
// new bytes — the MADV_FREE contract the KV cache's recycling relies on.
func TestDiscardRange(t *testing.T) {
	const pages = 16
	eng, sys := poSystem(128)
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, 0xdead)
		}
		freeBefore := sys.Pool.FreeCount()
		if n := sys.DiscardRange(sp.Proc(), base, pages*PageSize); n != pages {
			t.Fatalf("DiscardRange freed %d of %d resident pages", n, pages)
		}
		if got := sys.Pool.FreeCount(); got != freeBefore+pages {
			t.Fatalf("pool has %d free frames, want %d", got, freeBefore+pages)
		}
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, 0xf00d+i)
		}
		for i := uint64(0); i < pages; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != 0xf00d+i {
				t.Fatalf("page %d read %#x after rewrite of discarded range", i, got)
			}
		}
	})
	eng.Run()
}

// TestMmapDDCHugeGuidedErr pins the typed error: huge regions and an
// eviction guide cannot coexist, and the caller hears that instead of
// silently losing the huge mapping.
func TestMmapDDCHugeGuidedErr(t *testing.T) {
	fw := &forwardGuide{}
	eng := sim.New()
	sys := New(eng, Config{
		CacheFrames:   1024,
		Cores:         2,
		RemoteBytes:   64 << 20,
		Fabric:        fabric.DefaultParams(),
		EvictionGuide: fw,
	})
	sys.Start()
	sys.Launch("app", 0, func(sp *DDCProc) {
		if _, err := sys.MmapDDCHuge(1); !errors.Is(err, ErrHugeGuided) {
			t.Fatalf("MmapDDCHuge on a guided system returned %v, want ErrHugeGuided", err)
		}
	})
	eng.Run()
}
