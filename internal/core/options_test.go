package core

import (
	"strings"
	"testing"

	"dilos/internal/chaos"
	"dilos/internal/fabric"
	"dilos/internal/memnode"
	"dilos/internal/migrate"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
)

func TestConfigValidateRules(t *testing.T) {
	valid := Config{CacheFrames: 32, Cores: 1, RemoteBytes: 1 << 20}
	cases := []struct {
		name string
		mut  func(*Config)
		want string // error substring, "" = valid
	}{
		{"baseline", func(c *Config) {}, ""},
		{"no cache", func(c *Config) { c.CacheFrames = 0 }, "CacheFrames"},
		{"no cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"no remote", func(c *Config) { c.RemoteBytes = 0 }, "RemoteBytes"},
		{"backings drop remote bytes", func(c *Config) {
			c.Backings = []Backing{memnode.New(1<<20, 1)}
			c.RemoteBytes = 0
		}, ""},
		{"backings with remote bytes", func(c *Config) {
			c.Backings = []Backing{memnode.New(1<<20, 1)}
		}, "meaningless with Backings"},
		{"backings with wrong memnodes", func(c *Config) {
			c.Backings = []Backing{memnode.New(1<<20, 1)}
			c.RemoteBytes = 0
			c.MemNodes = 3
		}, "contradicts"},
		{"backings with matching memnodes", func(c *Config) {
			c.Backings = []Backing{memnode.New(1<<20, 1), memnode.New(1<<20, 2)}
			c.RemoteBytes = 0
			c.MemNodes = 2
		}, ""},
		{"too many replicas", func(c *Config) { c.MemNodes, c.Replicas = 2, 3 }, "Replicas"},
		{"health without chaos", func(c *Config) {
			hc := DefaultHealthConfig()
			c.Health = &hc
		}, "inert"},
		{"health with chaos", func(c *Config) {
			hc := DefaultHealthConfig()
			c.Health = &hc
			c.Chaos = chaos.NewInjector(chaos.Config{Seed: 1})
		}, ""},
		{"sampling without recorder", func(c *Config) { c.SampleEvery = sim.Millisecond }, "SampleEvery"},
		{"sampling with recorder", func(c *Config) {
			c.Tel = telemetry.NewRecorder(64)
			c.SampleEvery = sim.Millisecond
		}, ""},
		{"bad migrate tuning", func(c *Config) {
			c.Migrate = &migrate.Tuning{Watermark: -1}
		}, "Watermark"},
		{"watermark above one", func(c *Config) {
			c.Migrate = &migrate.Tuning{Watermark: 1.5}
		}, "Watermark"},
		{"negative replicas", func(c *Config) { c.Replicas = -1 }, "negative"},
		{"zero replicas defaults to one", func(c *Config) { c.Replicas = 0 }, ""},
		{"tenancy slack too large", func(c *Config) {
			c.Tenancy = &TenancyConfig{SlackFrames: 32}
		}, "SlackFrames"},
		{"tenancy negative slack", func(c *Config) {
			c.Tenancy = &TenancyConfig{SlackFrames: -1}
		}, "SlackFrames"},
		{"tenancy rebalance without step", func(c *Config) {
			c.Tenancy = &TenancyConfig{RebalanceEvery: sim.Millisecond}
		}, "RebalanceStep"},
		{"tenancy negative rebalance period", func(c *Config) {
			c.Tenancy = &TenancyConfig{RebalanceEvery: -sim.Millisecond}
		}, "RebalanceEvery"},
		{"tenancy valid", func(c *Config) {
			c.Tenancy = &TenancyConfig{SlackFrames: 8, RebalanceEvery: sim.Millisecond, RebalanceStep: 4}
		}, ""},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestNewPanicsWithValidateError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted an invalid config")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "RemoteBytes") {
			t.Fatalf("panic %v does not carry the validation error", r)
		}
	}()
	New(sim.New(), Config{CacheFrames: 32, Cores: 1})
}

func TestNewSystemOptions(t *testing.T) {
	// The functional-options constructor converges on the same normalized
	// config as New: a tiny system assembles, runs a workload, and carries
	// the migration engine the option installed.
	eng := sim.New()
	sys, err := NewSystem(eng,
		WithCacheFrames(32),
		WithCores(2),
		WithRemoteBytes(8<<20),
		WithFabric(fabric.DefaultParams()),
		WithMemNodes(2),
		WithReplicas(2),
		WithMigration(migrate.Tuning{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mig == nil {
		t.Fatal("WithMigration did not arm the engine")
	}
	sys.Start()
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(64)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < 64; i++ {
			sp.StoreU64(base+i*PageSize, i)
		}
		for i := uint64(0); i < 64; i++ {
			if got := sp.LoadU64(base + i*PageSize); got != i {
				t.Errorf("page %d: %d", i, got)
				return
			}
		}
	})
	eng.Run()
	if sys.MajorFaults.N == 0 {
		t.Fatal("workload drove no faults")
	}
}

func TestNewSystemReturnsValidationError(t *testing.T) {
	_, err := NewSystem(sim.New(), WithCacheFrames(32))
	if err == nil || !strings.Contains(err.Error(), "Cores") {
		t.Fatalf("error %v, want Cores requirement", err)
	}
}
