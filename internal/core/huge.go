package core

import (
	"errors"
	"fmt"
	"sort"

	"dilos/internal/comm"
	"dilos/internal/fabric"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/telemetry"
)

// 2 MB huge-page regions. A region mapped with MmapDDCHuge still pages at
// the 4 KiB granularity in the table, but the fault path and the cleaner
// treat it coarser:
//
//   - one demand fault fetches and maps the whole 2 MB region (512 fetches
//     behind per-node doorbells, one map charge), so a workload streaming
//     through a huge region pays one fault per 2 MB instead of 512;
//   - the batched cleaner writes dirty content back a 32 KiB sub-page at a
//     time (HugeSubPages contiguous 4 KiB pages whose offsets coalesce into
//     one vectored write) — the region behaves like 64 sub-page dirty bits,
//     so a few dirtied cache lines never force a 2 MB write-back.
const (
	// HugePages is the region size in 4 KiB pages (512 × 4 KiB = 2 MB).
	HugePages = 512
	// HugeSubPages is the write-back granule in 4 KiB pages (8 × 4 KiB =
	// 32 KiB), giving 64 granules per region.
	HugeSubPages = 8
)

// hugeSpan is one MmapDDCHuge allocation: `regions` back-to-back 2 MB
// regions starting at a region-aligned VPN (alignment within the span, not
// globally — base arithmetic is relative to start).
type hugeSpan struct {
	start   pagetable.VPN
	regions int
}

// ErrHugeGuided is returned by MmapDDCHuge on a system built with an
// eviction guide. Guided paging and huge regions are mutually exclusive:
// the cleaner resolves a page's write-back granule by checking Huge
// membership *before* consulting the guide, so pages in a huge region
// would silently bypass guided eviction — a confusing half-configuration.
// Callers that want both must place them in separate Systems.
var ErrHugeGuided = errors.New("core: MmapDDCHuge on a guided system — huge regions bypass the eviction guide; use MmapDDC or drop WithEvictionGuide")

// MmapDDCHuge maps `regions` 2 MB huge regions of disaggregated memory and
// returns the base address. The pages start Remote exactly like MmapDDC;
// what changes is the policy above. The first call wires the page manager's
// sub-span resolver.
//
// Fails with ErrHugeGuided when an eviction guide is installed (see the
// error's doc for why the combination is rejected rather than resolved).
func (s *System) MmapDDCHuge(regions int) (uint64, error) {
	if regions <= 0 {
		return 0, fmt.Errorf("core: MmapDDCHuge needs at least one region (got %d)", regions)
	}
	if s.Mgr.Guide != nil {
		return 0, ErrHugeGuided
	}
	base, err := s.MmapDDC(uint64(regions) * HugePages)
	if err != nil {
		return 0, err
	}
	start := pagetable.VPNOf(base)
	i := sort.Search(len(s.huge), func(i int) bool { return s.huge[i].start > start })
	s.huge = append(s.huge, hugeSpan{})
	copy(s.huge[i+1:], s.huge[i:])
	s.huge[i] = hugeSpan{start: start, regions: regions}
	if s.Mgr.Huge == nil {
		s.Mgr.Huge = s
	}
	return base, nil
}

// hugeSpanOf finds the span containing v, or ok=false.
func (s *System) hugeSpanOf(v pagetable.VPN) (hugeSpan, bool) {
	i := sort.Search(len(s.huge), func(i int) bool { return s.huge[i].start > v })
	if i == 0 {
		return hugeSpan{}, false
	}
	sp := s.huge[i-1]
	if v-sp.start < pagetable.VPN(sp.regions)*HugePages {
		return sp, true
	}
	return hugeSpan{}, false
}

// hugeBase returns the base VPN of the 2 MB region containing v.
func (s *System) hugeBase(v pagetable.VPN) (pagetable.VPN, bool) {
	sp, ok := s.hugeSpanOf(v)
	if !ok {
		return 0, false
	}
	off := v - sp.start
	return sp.start + (off/HugePages)*HugePages, true
}

// SubSpan implements pagemgr.HugeRegions: the 32 KiB write-back granule
// containing v, for pages inside a huge region.
func (s *System) SubSpan(v pagetable.VPN) (pagetable.VPN, int, bool) {
	sp, ok := s.hugeSpanOf(v)
	if !ok {
		return 0, 0, false
	}
	off := v - sp.start
	return sp.start + (off/HugeSubPages)*HugeSubPages, HugeSubPages, true
}

// hugePend tracks one page of an in-progress huge fault through the map
// phase.
type hugePend struct {
	slot uint64
	gen  uint64
}

// hugeFault tries to satisfy a major fault on a huge-region page by
// fetching and mapping the entire 2 MB region in one shot. Returns false —
// and touches nothing — when the fault should take the ordinary
// single-page path instead: the page is not in a huge region, the pool
// lacks 512 frames of headroom over the low watermark (a huge fault must
// never block on the reclaimer mid-region), chaos is active (per-page
// recovery would need per-page ownership), or the wide-lock ablation is on.
//
// Phase structure mirrors the batched prefetch issue: allocate frames and
// publish Fetching PTEs with no intervening yield, post each node's pages
// through one doorbell (one request per page, so every slot owns exactly
// one op and minor faulters can wait on it), then wait for the last
// completion and map everything under a single Map charge — the TLB-level
// benefit of the huge mapping.
func (s *System) hugeFault(p *sim.Proc, coreID int, vpn pagetable.VPN) bool {
	if len(s.huge) == 0 || s.Chaos != nil || s.wideLocks {
		return false
	}
	base, ok := s.hugeBase(vpn)
	if !ok {
		return false
	}
	if s.Pool.FreeCount() < HugePages+s.Mgr.Cfg.LowWater {
		return false
	}
	t0 := p.Now()
	rec := s.Tel != nil
	var span telemetry.Span
	if rec {
		span.Kind = telemetry.KindMajorFault
		span.Start = t0 - s.MMUC.Exception
		span.Arg = uint64(base)
		span.Stages[telemetry.StageException] = s.MMUC.Exception
	}
	p.Advance(s.Costs.HandlerCheck)

	// Phase 1 — claim: allocate a frame and publish a Fetching PTE for
	// every page of the region still Remote. Nothing here yields (the
	// headroom check above guarantees AllocFrame pops without waiting), so
	// the Fetching-PTE invariant — a published slot gets its op installed
	// before anyone else runs — holds across the whole region.
	type claim struct {
		node int
		off  uint64
		buf  []byte
		slot uint64
	}
	var claims []claim
	for i := 0; i < HugePages; i++ {
		v := base + pagetable.VPN(i)
		pte := s.Table.Entry(v)
		if pte.Tag() != pagetable.TagRemote {
			continue // already resident or in flight; leave it to its owner
		}
		old := *pte
		node, off, ok := s.remoteOf(v)
		if !ok {
			continue
		}
		frame := s.Mgr.AllocFrame(p)
		s.Pool.Meta(frame).Pinned = true
		p.Advance(s.Costs.FrameAlloc)
		slot := s.newSlot(v, frame)
		s.slots[slot].demand = true
		if s.shards > 0 {
			p.Advance(s.Costs.TagCAS)
			if !s.Table.TryTransition(v, old, pagetable.Fetching(slot)) {
				panic("core: huge Fetching publish lost a race without a yield")
			}
		} else {
			*pte = pagetable.Fetching(slot)
		}
		claims = append(claims, claim{node: node, off: off, buf: s.Pool.Bytes(frame), slot: slot})
	}
	if len(claims) == 0 {
		// The whole region is resident or in flight — the triggering page
		// included, so the retried translation resolves minor/local.
		return true
	}
	s.BD.Handler += p.Now() - t0
	if rec {
		span.Stages[telemetry.StageLookup] = p.Now() - t0
	}

	// Phase 2 — issue: per node in first-appearance order, one doorbell
	// carrying one read request per page.
	tIssue := p.Now()
	var (
		reqs []fabric.Req
		ops  []*fabric.Op
		last *fabric.Op
	)
	pends := make([]hugePend, 0, len(claims))
	done := 0
	for done < len(claims) {
		node := -1
		for _, c := range claims {
			if c.node >= 0 {
				node = c.node
				break
			}
		}
		qp := s.Hubs[node].QP(coreID, comm.ModFault)
		reqs = reqs[:0]
		for i := range claims {
			if c := &claims[i]; c.node == node {
				reqs = append(reqs, fabric.Req{Kind: fabric.OpRead, Segs: []fabric.Seg{{Off: c.off, Buf: c.buf}}})
			}
		}
		for r := range reqs {
			if r == 0 {
				p.Advance(s.Costs.PrefetchIssue)
			} else {
				p.Advance(s.Costs.PrefetchWQE)
			}
		}
		ops = qp.Submit(p.Now(), reqs, ops[:0])
		r := 0
		for i := range claims {
			if c := &claims[i]; c.node == node {
				s.slots[c.slot].op = ops[r]
				if op := ops[r]; op.Err == nil && (last == nil || op.CompleteAt > last.CompleteAt) {
					last = op
				}
				pends = append(pends, hugePend{slot: c.slot, gen: s.slots[c.slot].gen})
				c.node = -1
				done++
				r++
			}
		}
	}

	// Phase 3 — wait and map: one wait on the last completion, one Map
	// charge for the whole region, then install every page charge-free
	// (minor faulters that got there first are skipped by the gen check).
	if last != nil {
		last.Wait(p)
	}
	s.BD.Fetch += p.Now() - tIssue
	tMap := p.Now()
	if rec {
		span.Stages[telemetry.StageWait] = tMap - tIssue
	}
	p.Advance(s.Costs.Map)
	for _, pe := range pends {
		s.mapFetched(p, coreID, pe.slot, pe.gen, false)
	}
	s.BD.Map += p.Now() - tMap
	s.BD.N++
	s.FaultLat.Record(p.Now() - t0 + s.MMUC.Exception)
	if rec {
		span.Stages[telemetry.StageMap] = p.Now() - tMap
		span.End = p.Now()
		s.Tel.Emit(s.telCore[coreID], span)
	}
	return true
}
