package core

import (
	"encoding/json"
	"testing"

	"dilos/internal/chaos"
	"dilos/internal/fabric"
	"dilos/internal/sim"
)

// chaosCrashSys builds a 2-node fully-replicated system whose node 1
// crashes at 300 µs and returns at 1.2 ms, with the health monitor armed.
func chaosCrashSys(seed uint64) (*System, *sim.Engine) {
	eng := sim.New()
	inj := chaos.NewInjector(chaos.Config{
		Seed: seed,
		Crashes: []chaos.CrashWindow{
			{Node: 1, At: 300 * sim.Microsecond, Until: 1200 * sim.Microsecond},
		},
	})
	sys := New(eng, Config{
		CacheFrames: 32,
		Cores:       2,
		RemoteBytes: 32 << 20,
		Fabric:      fabric.DefaultParams(),
		MemNodes:    2,
		Replicas:    2,
		Chaos:       inj,
	})
	sys.Start()
	return sys, eng
}

func TestChaosCrashFailoverAndRecovery(t *testing.T) {
	// The acceptance scenario: a replicated system rides through a whole-node
	// crash window. Fetches fail over to the survivor, the health monitor
	// trips the breaker and later re-replicates onto the returned node, and
	// no write is ever lost.
	sys, eng := chaosCrashSys(42)
	const pages = 96
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, err := sys.MmapDDC(pages)
		if err != nil {
			t.Error(err)
			return
		}
		val := func(i, pass uint64) uint64 { return i*2654435761 + pass*7919 }
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, val(i, 0))
		}
		// Cycle the working set (3× the cache, so every pass evicts and
		// refetches) until well past the crash window and the recovery.
		pass := uint64(0)
		for sp.Proc().Now() < 12*sim.Millisecond {
			for i := uint64(0); i < pages; i++ {
				if got := sp.LoadU64(base + i*PageSize); got != val(i, pass) {
					t.Errorf("pass %d page %d: got %#x want %#x", pass, i, got, val(i, pass))
					return
				}
				sp.StoreU64(base+i*PageSize, val(i, pass+1))
			}
			pass++
		}
		if pass < 3 {
			t.Errorf("only %d passes completed in 12ms of virtual time", pass)
		}
	})
	eng.Run()

	if sys.Health.NodeFails.N < 1 {
		t.Fatalf("health monitor never tripped: node_fails = %d", sys.Health.NodeFails.N)
	}
	if sys.Health.NodeRecoveries.N < 1 {
		t.Fatalf("node 1 never recovered: node_recoveries = %d", sys.Health.NodeRecoveries.N)
	}
	if sys.ReReplicated.N == 0 {
		t.Fatal("recovery re-replicated no pages")
	}
	if sys.ReplicaFetches.N == 0 {
		t.Fatal("no fetch ever failed over to the surviving replica")
	}
	if sys.Chaos.Crashed.N == 0 {
		t.Fatal("the crash window injected no failures (mis-timed?)")
	}
	if sys.Health.LastRecoverAt[1] <= sys.Health.LastFailAt[1] {
		t.Fatalf("recovery (%v) not after failure (%v)",
			sys.Health.LastRecoverAt[1], sys.Health.LastFailAt[1])
	}
}

func TestChaosFlakyIntegrity(t *testing.T) {
	// Probabilistic op failures, tail amplification, and QP stalls on a
	// single node: the retry/backoff layer absorbs everything and the data
	// survives heavy eviction pressure.
	eng := sim.New()
	inj := chaos.NewInjector(chaos.Config{
		Seed:       7,
		FailProb:   0.02,
		TailProb:   0.05,
		TailFactor: 8,
		StallProb:  0.005,
		StallTime:  50 * sim.Microsecond,
	})
	sys := New(eng, Config{
		CacheFrames: 32,
		Cores:       2,
		RemoteBytes: 32 << 20,
		Fabric:      fabric.DefaultParams(),
		Chaos:       inj,
	})
	sys.Start()
	const pages = 128
	sys.Launch("app", 0, func(sp *DDCProc) {
		base, _ := sys.MmapDDC(pages)
		for i := uint64(0); i < pages; i++ {
			sp.StoreU64(base+i*PageSize, i^0xabcdef)
		}
		for round := 0; round < 4; round++ {
			for i := uint64(0); i < pages; i++ {
				if got := sp.LoadU64(base + i*PageSize); got != i^0xabcdef {
					t.Errorf("round %d page %d corrupted: %#x", round, i, got)
					return
				}
			}
		}
	})
	eng.Run()
	if sys.Chaos.Fails.N == 0 {
		t.Fatal("flaky profile injected no failures — test exercises nothing")
	}
	if sys.FetchRetries.Retries.N == 0 && sys.Mgr.WriteFails.N == 0 {
		t.Fatal("no failure was ever absorbed by a retry or write-back redo")
	}
}

func TestChaosSameSeedIdenticalSystemRun(t *testing.T) {
	// End-to-end determinism: two full simulations under the same seed —
	// injector, retries, health monitor, recovery and all — finish with
	// byte-identical metric snapshots.
	run := func() []byte {
		sys, eng := chaosCrashSys(1234)
		const pages = 64
		sys.Launch("app", 0, func(sp *DDCProc) {
			base, _ := sys.MmapDDC(pages)
			for i := uint64(0); i < pages; i++ {
				sp.StoreU64(base+i*PageSize, i)
			}
			for sp.Proc().Now() < 6*sim.Millisecond {
				for i := uint64(0); i < pages; i++ {
					sp.LoadU64(base + i*PageSize)
				}
			}
		})
		eng.Run()
		b, err := json.Marshal(sys.Registry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}
