package workloads

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/sim"
	"dilos/internal/space"
)

func TestQuicksortLocal(t *testing.T) {
	sp := space.NewLocal(16 << 20)
	const n = 50000
	base := sp.Malloc(n * 8)
	FillRandomU64(sp, base, n, 1)
	Quicksort(sp, base, n)
	if !IsSorted(sp, base, n) {
		t.Fatal("not sorted")
	}
}

// Property: quicksort through a Space agrees with sort.Slice.
func TestQuickQuicksortVsSort(t *testing.T) {
	f := func(raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		sp := space.NewLocal(1 << 20)
		base := sp.Malloc(uint64(len(raw)) * 8)
		ref := make([]uint64, len(raw))
		copy(ref, raw)
		for i, v := range raw {
			sp.StoreU64(base+uint64(i)*8, v)
		}
		Quicksort(sp, base, uint64(len(raw)))
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i, v := range ref {
			if sp.LoadU64(base+uint64(i)*8) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuicksortDuplicatesAndEdge(t *testing.T) {
	sp := space.NewLocal(1 << 20)
	cases := [][]uint64{
		{},
		{1},
		{2, 1},
		{5, 5, 5, 5, 5},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
	}
	for _, c := range cases {
		base := sp.Malloc(uint64(len(c)+1) * 8)
		for i, v := range c {
			sp.StoreU64(base+uint64(i)*8, v)
		}
		Quicksort(sp, base, uint64(len(c)))
		if !IsSorted(sp, base, uint64(len(c))) {
			t.Fatalf("case %v not sorted", c)
		}
	}
}

func TestKMeansConverges(t *testing.T) {
	sp := space.NewLocal(64 << 20)
	cfg := DefaultKMeans(20000)
	pb, ab, db := KMeansLayout(cfg)
	pBase := sp.Malloc(pb)
	aBase := sp.Malloc(ab)
	dBase := sp.Malloc(db)
	KMeansInit(sp, pBase, cfg)

	cfg1 := cfg
	cfg1.Iterations = 1
	_, inertia1 := KMeans(sp, pBase, aBase, dBase, cfg1)
	_, inertia8 := KMeans(sp, pBase, aBase, dBase, cfg)
	if inertia8 > inertia1 {
		t.Fatalf("inertia rose: %d → %d", inertia1, inertia8)
	}
	// Assignments must be valid cluster ids.
	for i := uint64(0); i < 100; i++ {
		if a := sp.LoadU64(aBase + i*8); a >= uint64(cfg.K) {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestSeqReadWriteOnDiLOS(t *testing.T) {
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 256, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		base, _ := sys.MmapDDC(1024)
		r := SeqRead(sp, base, 1024)
		w := SeqWrite(sp, base, 1024)
		if r <= 0 || w <= 0 {
			t.Error("no time elapsed")
		}
	})
	eng.Run()
	if sys.MajorFaults.N == 0 {
		t.Fatal("sequential pass did not fault")
	}
}

func TestQuicksortOnDiLOSUnderPressure(t *testing.T) {
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: 128, Cores: 1, RemoteBytes: 64 << 20,
		Fabric: fabric.DefaultParams(),
	})
	sys.Start()
	const n = 128 * 1024 // 1 MiB of u64 = 256 pages vs 128-frame cache
	sys.Launch("app", 0, func(sp *core.DDCProc) {
		base := sp.Malloc(n * 8)
		FillRandomU64(sp, base, n, 2)
		Quicksort(sp, base, n)
		if !IsSorted(sp, base, n) {
			t.Error("not sorted under paging")
		}
	})
	eng.Run()
	if sys.Mgr.Evicted.N == 0 {
		t.Fatal("no eviction pressure")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := space.NewLocal(1 << 20)
	b := space.NewLocal(1 << 20)
	ba, bb := a.Malloc(8000), b.Malloc(8000)
	FillRandomU64(a, ba, 1000, 7)
	FillRandomU64(b, bb, 1000, 7)
	for i := uint64(0); i < 1000; i++ {
		if a.LoadU64(ba+i*8) != b.LoadU64(bb+i*8) {
			t.Fatal("fill not deterministic")
		}
	}
	_ = rand.Int
}
