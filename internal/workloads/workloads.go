// Package workloads implements the paper's simple benchmarks (§6.1–§6.2)
// against the space.Space abstraction, so the identical, unmodified code
// runs on DiLOS, Fastswap, or plain local memory:
//
//   - sequential read/write with 4 KiB strides (Table 2, Figures 1/6,
//     Tables 1/3);
//   - in-place quicksort of random 64-bit integers (Figure 7(a) —
//     std::sort in the paper);
//   - Lloyd's k-means over multi-dimensional points (Figure 7(b) —
//     scikit-learn in the paper), whose repeated full-data passes that
//     dirty the assignment and accumulate across pages are what stresses
//     reclamation.
package workloads

import (
	"math/rand"

	"dilos/internal/sim"
	"dilos/internal/space"
)

// PageSize is the stride of the sequential workloads.
const PageSize = 4096

// SeqRead touches one byte per page over `pages` pages.
func SeqRead(sp space.Space, base uint64, pages uint64) sim.Time {
	t0 := sp.Now()
	for i := uint64(0); i < pages; i++ {
		sp.LoadU8(base + i*PageSize)
	}
	return sp.Now() - t0
}

// SeqWrite stores one word per page over `pages` pages.
func SeqWrite(sp space.Space, base uint64, pages uint64) sim.Time {
	t0 := sp.Now()
	for i := uint64(0); i < pages; i++ {
		sp.StoreU64(base+i*PageSize, i)
	}
	return sp.Now() - t0
}

// FillRandomU64 populates n u64 elements at base with a deterministic
// pseudo-random sequence.
func FillRandomU64(sp space.Space, base uint64, n uint64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, PageSize)
	for off := uint64(0); off < n*8; {
		chunk := n*8 - off
		if chunk > PageSize {
			chunk = PageSize
		}
		for i := uint64(0); i+8 <= chunk; i += 8 {
			v := rng.Uint64()
			buf[i] = byte(v)
			buf[i+1] = byte(v >> 8)
			buf[i+2] = byte(v >> 16)
			buf[i+3] = byte(v >> 24)
			buf[i+4] = byte(v >> 32)
			buf[i+5] = byte(v >> 40)
			buf[i+6] = byte(v >> 48)
			buf[i+7] = byte(v >> 56)
		}
		sp.Store(base+off, buf[:chunk])
		off += chunk
	}
}

// Quicksort sorts n u64 elements at base in place — the paper's
// std::sort workload. Iterative with an explicit stack and median-of-three
// pivots, falling back to insertion sort on small ranges like std::sort's
// introsort does.
func Quicksort(sp space.Space, base uint64, n uint64) sim.Time {
	t0 := sp.Now()
	if n > 1 {
		quicksort(sp, base, 0, int64(n)-1)
	}
	return sp.Now() - t0
}

const insertionCutoff = 16

func quicksort(sp space.Space, base uint64, lo, hi int64) {
	type rng struct{ lo, hi int64 }
	stack := []rng{{lo, hi}}
	get := func(i int64) uint64 { return sp.LoadU64(base + uint64(i)*8) }
	put := func(i int64, v uint64) { sp.StoreU64(base+uint64(i)*8, v) }
	swap := func(i, j int64) {
		a, b := get(i), get(j)
		put(i, b)
		put(j, a)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := r.lo, r.hi
		for hi-lo >= insertionCutoff {
			// Median of three.
			mid := lo + (hi-lo)/2
			if get(mid) < get(lo) {
				swap(mid, lo)
			}
			if get(hi) < get(lo) {
				swap(hi, lo)
			}
			if get(hi) < get(mid) {
				swap(hi, mid)
			}
			pivot := get(mid)
			i, j := lo, hi
			for i <= j {
				for get(i) < pivot {
					i++
				}
				for get(j) > pivot {
					j--
				}
				if i <= j {
					swap(i, j)
					i++
					j--
				}
			}
			// Recurse on the smaller half; loop on the bigger.
			if j-lo < hi-i {
				if lo < j {
					stack = append(stack, rng{lo, j})
				}
				lo = i
			} else {
				if i < hi {
					stack = append(stack, rng{i, hi})
				}
				hi = j
			}
		}
		insertion(sp, base, lo, hi)
	}
}

func insertion(sp space.Space, base uint64, lo, hi int64) {
	for i := lo + 1; i <= hi; i++ {
		v := sp.LoadU64(base + uint64(i)*8)
		j := i - 1
		for j >= lo {
			u := sp.LoadU64(base + uint64(j)*8)
			if u <= v {
				break
			}
			sp.StoreU64(base+uint64(j+1)*8, u)
			j--
		}
		sp.StoreU64(base+uint64(j+1)*8, v)
	}
}

// IsSorted verifies ascending order (for tests/benchmark validation).
func IsSorted(sp space.Space, base uint64, n uint64) bool {
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		v := sp.LoadU64(base + i*8)
		if i > 0 && v < prev {
			return false
		}
		prev = v
	}
	return true
}

// KMeansConfig sizes a k-means run.
type KMeansConfig struct {
	Points     uint64
	Dims       int
	K          int
	Iterations int
	Seed       int64
	// MulCost is the CPU cost per multiply-accumulate in the distance
	// computation (scikit-learn's BLAS path, amortized).
	MulCost sim.Time
}

// DefaultKMeans mirrors the paper's shape: 15 M scalars → here scaled by
// the caller; k = 10 clusters.
func DefaultKMeans(points uint64) KMeansConfig {
	return KMeansConfig{
		Points:     points,
		Dims:       4,
		K:          10,
		Iterations: 8,
		Seed:       99,
		MulCost:    1 * sim.Nanosecond,
	}
}

// KMeansLayout returns the byte sizes of the three arrays at base:
// points, then assignments, then the N×k distance matrix scikit-learn's
// vectorized implementation materializes every iteration (the write churn
// that stresses reclamation, per the paper's Figure 7(b) discussion).
func KMeansLayout(cfg KMeansConfig) (pointsBytes, assignBytes, distBytes uint64) {
	return cfg.Points * uint64(cfg.Dims) * 8, cfg.Points * 8, cfg.Points * uint64(cfg.K) * 8
}

// KMeansInit fills the point array with clustered synthetic data.
func KMeansInit(sp space.Space, base uint64, cfg KMeansConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([][]int64, cfg.K)
	for c := range centers {
		centers[c] = make([]int64, cfg.Dims)
		for d := range centers[c] {
			centers[c][d] = int64(rng.Intn(1_000_000))
		}
	}
	for i := uint64(0); i < cfg.Points; i++ {
		c := centers[rng.Intn(cfg.K)]
		for d := 0; d < cfg.Dims; d++ {
			v := c[d] + int64(rng.Intn(20001)) - 10000
			sp.StoreU64(base+(i*uint64(cfg.Dims)+uint64(d))*8, uint64(v))
		}
	}
}

// KMeans runs Lloyd iterations the way scikit-learn's vectorized
// implementation does: each iteration first materializes the full N×k
// distance matrix at distBase (a large streaming write), then scans it for
// per-point argmins (dirtying the assignment array), then recomputes
// centroids. Returns elapsed time and the final inertia.
func KMeans(sp space.Space, pointsBase, assignBase, distBase uint64, cfg KMeansConfig) (sim.Time, uint64) {
	t0 := sp.Now()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cent := make([][]int64, cfg.K)
	for c := range cent {
		cent[c] = make([]int64, cfg.Dims)
		i := uint64(rng.Int63n(int64(cfg.Points)))
		for d := 0; d < cfg.Dims; d++ {
			cent[c][d] = int64(sp.LoadU64(pointsBase + (i*uint64(cfg.Dims)+uint64(d))*8))
		}
	}
	var inertia uint64
	sums := make([][]int64, cfg.K)
	counts := make([]int64, cfg.K)
	for c := range sums {
		sums[c] = make([]int64, cfg.Dims)
	}
	pt := make([]int64, cfg.Dims)
	for it := 0; it < cfg.Iterations; it++ {
		for c := range sums {
			for d := range sums[c] {
				sums[c][d] = 0
			}
			counts[c] = 0
		}
		// Pass 1: materialize the distance matrix (N×k streaming write).
		for i := uint64(0); i < cfg.Points; i++ {
			for d := 0; d < cfg.Dims; d++ {
				pt[d] = int64(sp.LoadU64(pointsBase + (i*uint64(cfg.Dims)+uint64(d))*8))
			}
			for c := 0; c < cfg.K; c++ {
				var dist int64
				for d := 0; d < cfg.Dims; d++ {
					diff := pt[d] - cent[c][d]
					dist += diff * diff / 1024 // scaled to avoid overflow
				}
				sp.StoreU64(distBase+(i*uint64(cfg.K)+uint64(c))*8, uint64(dist))
			}
			sp.Compute(sim.Time(cfg.K*cfg.Dims) * cfg.MulCost)
		}
		// Pass 2: argmin over the matrix, update assignments + sums.
		inertia = 0
		for i := uint64(0); i < cfg.Points; i++ {
			best, bestDist := 0, uint64(1)<<62
			for c := 0; c < cfg.K; c++ {
				if dist := sp.LoadU64(distBase + (i*uint64(cfg.K)+uint64(c))*8); dist < bestDist {
					best, bestDist = c, dist
				}
			}
			sp.StoreU64(assignBase+i*8, uint64(best))
			inertia += bestDist
			counts[best]++
			for d := 0; d < cfg.Dims; d++ {
				sums[best][d] += int64(sp.LoadU64(pointsBase + (i*uint64(cfg.Dims)+uint64(d))*8))
			}
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < cfg.Dims; d++ {
				cent[c][d] = sums[c][d] / counts[c]
			}
		}
	}
	return sp.Now() - t0, inertia
}
