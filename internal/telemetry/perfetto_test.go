package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"dilos/internal/sim"
	"dilos/internal/stats"
)

func sampleRecording() (*Recorder, *Sampler) {
	rec := NewRecorder(32)
	core := rec.Track("core0")
	cleaner := rec.Track("cleaner")
	sp := Span{Kind: KindMajorFault, Start: 1000, End: 6000, Arg: 42}
	sp.Stages[StageException] = 570
	sp.Stages[StageLookup] = 430
	sp.Stages[StageWait] = 3800
	sp.Stages[StageMap] = 200
	rec.Emit(core, sp)
	rec.Emit(core, Span{Kind: KindMinorFault, Start: 7000, End: 7500, Arg: 43})
	rec.Emit(cleaner, Span{Kind: KindClean, Start: 2000, End: 9000, Arg: 16})

	reg := stats.NewRegistry()
	g := reg.RegisterGauge(&stats.Gauge{Name: "pagemgr.free_frames"})
	sam := &Sampler{Interval: 50 * sim.Microsecond, Registry: reg}
	g.Set(128)
	sam.points = append(sam.points, Point{At: 5000, Gauges: reg.GaugeSnaps()})
	g.Set(96)
	sam.points = append(sam.points, Point{At: 10000, Gauges: reg.GaugeSnaps()})
	return rec, sam
}

func TestPerfettoWriteValidates(t *testing.T) {
	rec, sam := sampleRecording()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rec, sam); err != nil {
		t.Fatal(err)
	}
	sum, err := Validate(&buf)
	if err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	if sum.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2", sum.Tracks)
	}
	// 3 spans + 4 stage slices of the major fault.
	if sum.Spans != 7 {
		t.Fatalf("spans = %d, want 7", sum.Spans)
	}
	if sum.Counters != 2 {
		t.Fatalf("counters = %d, want 2", sum.Counters)
	}
	if sum.MaxTsNs != 9000 {
		t.Fatalf("max ts = %d ns, want 9000", sum.MaxTsNs)
	}
}

func TestPerfettoDeterministicBytes(t *testing.T) {
	write := func() string {
		rec, sam := sampleRecording()
		var buf bytes.Buffer
		if err := WritePerfetto(&buf, rec, sam); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := write(), write()
	if a != b {
		t.Fatal("identical recordings serialised to different bytes")
	}
	// Fixed-point microsecond formatting, not floating point.
	if !strings.Contains(a, `"ts":1.000`) {
		t.Fatalf("expected deterministic fixed-point timestamps, got:\n%s", a)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"no array":      `{}`,
		"bad phase":     `{"traceEvents":[{"ph":"B","name":"x","ts":1,"tid":1}]}`,
		"missing dur":   `{"traceEvents":[{"ph":"X","name":"x","ts":1,"tid":1}]}`,
		"unnamed event": `{"traceEvents":[{"ph":"X","ts":1,"dur":1,"tid":1}]}`,
		"counter w/o value": `{"traceEvents":[` +
			`{"ph":"C","name":"g","ts":1,"args":{}}]}`,
	}
	for label, doc := range cases {
		if _, err := Validate(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", label)
		}
	}
}
