package telemetry

import (
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// Sampler periodically snapshots a registry's gauges into a time series,
// turning instantaneous levels (free-list depth, dirty set, QP backlog,
// prefetch window) into the counter tracks of the exported timeline.
//
// The sampler runs as a daemon: it never blocks the workload and the
// engine does not wait for it. Each tick calls Collect first — the
// owning system's hook that refreshes gauges from live state — then
// copies the gauge values. It mutates nothing the workload can observe,
// so enabling it cannot change a run's timing.
type Sampler struct {
	// Interval is the sampling period (default 50 µs if non-positive).
	Interval sim.Time
	// Registry supplies the gauges to record each tick.
	Registry *stats.Registry
	// Collect, if set, refreshes gauges from live system state before
	// each tick is recorded.
	Collect func(now sim.Time)

	points []Point
}

// Point is one sampling tick.
type Point struct {
	At     sim.Time
	Gauges []stats.GaugeSnap
}

// Start spawns the sampling daemon on the engine.
func (s *Sampler) Start(eng *sim.Engine) {
	if s.Interval <= 0 {
		s.Interval = 50 * sim.Microsecond
	}
	eng.GoDaemon("telemetry.sampler", func(p *sim.Proc) {
		for {
			p.Sleep(s.Interval)
			if s.Collect != nil {
				s.Collect(p.Now())
			}
			s.points = append(s.points, Point{At: p.Now(), Gauges: s.Registry.GaugeSnaps()})
		}
	})
}

// Points returns the recorded time series.
func (s *Sampler) Points() []Point { return s.points }
