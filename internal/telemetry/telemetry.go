// Package telemetry is the simulation's flight recorder: a low-overhead,
// sim-time span recorder plus a periodic gauge sampler, exported as a
// Chrome-trace/Perfetto timeline. It answers the attribution questions
// aggregate counters cannot — which fault-path stage shrank when batching
// landed, what the cleaner was doing while the free list breathed past
// the watermark — without perturbing the run: emitting a span advances no
// virtual time, performs no yields, and allocates nothing on the hot path.
//
// The recorder is optional everywhere. Instrumented code guards every
// emission behind `if tel != nil`, so a disabled run executes the exact
// instruction stream it did before this package existed.
package telemetry

import (
	"dilos/internal/sim"
)

// Kind classifies a span.
type Kind uint8

const (
	// KindMajorFault is one demand fault that fetched a page from the
	// memory node (or zero-filled it). Carries stage sub-timings.
	KindMajorFault Kind = iota
	// KindMinorFault is a fault resolved locally: a DiLOS fault on an
	// in-flight prefetch, or a Fastswap swap-cache hit.
	KindMinorFault
	// KindPrefetchMap is one prefetched page completing on a per-core
	// mapper daemon: wait for the RDMA op, wake, install the PTE.
	KindPrefetchMap
	// KindClean is one cleaner pass that wrote dirty pages back.
	KindClean
	// KindReclaim is one reclaimer eviction step.
	KindReclaim
	// KindRead is one fabric read op, from issue to completion.
	KindRead
	// KindWrite is one fabric write op, from issue to completion.
	KindWrite
	// KindRetry is one reliable-QP backoff sleep before a retransmit.
	KindRetry
	// KindMigrate is one migration-engine batch: copy a set of replica
	// slots to their new nodes and flip them. Arg carries pages moved.
	KindMigrate
	// KindSteal marks a reclaimer stealing work from another shard: the
	// span sits on the thief's track and Arg carries the victim shard.
	KindSteal

	numKinds
)

var kindNames = [numKinds]string{
	"major_fault", "minor_fault", "prefetch_map", "clean", "reclaim",
	"read", "write", "retry", "migrate", "steal",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Stage is one segment of a fault span's latency attribution. Stages are
// laid out in causal order; a span's stage durations are cumulative
// offsets from its start when rendered.
type Stage uint8

const (
	// StageException: hardware exception delivery plus kernel entry.
	StageException Stage = iota
	// StageLookup: PTE walk / swap-cache lookup, bookkeeping, and frame
	// allocation — DiLOS's handler check or Fastswap's swap management.
	StageLookup
	// StageReclaim: direct reclamation performed inside the handler
	// (Fastswap only; DiLOS never reclaims on the fault path).
	StageReclaim
	// StageIssue: CPU spent posting speculative IO — DiLOS's prefetch
	// WQE builds, Fastswap's readahead cluster.
	StageIssue
	// StageGuide: the hidden-window work — hit-tracker PTE scan,
	// prefetcher policy, and the application guide hook.
	StageGuide
	// StageWait: time blocked on the fabric for the demand page.
	StageWait
	// StageWake: completion-to-resume scheduling delay (mapper daemons).
	StageWake
	// StageMap: PTE install and publish.
	StageMap

	NumStages
)

// StageNames are the canonical short names, in causal order.
var StageNames = [NumStages]string{
	"exception", "lookup", "reclaim", "issue", "guide", "wait", "wake", "map",
}

// Span is one recorded interval. It is a plain value — emitting one
// copies it into a preallocated ring, so instrumented hot paths build
// spans on the stack and never allocate.
type Span struct {
	Kind       Kind
	Start, End sim.Time
	// Arg is kind-specific: page number for faults and prefetch maps,
	// bytes for fabric ops, pages for cleaner/reclaimer passes.
	Arg uint64
	// Stages hold per-stage durations (zero = stage absent). Only fault
	// and prefetch-map spans populate them.
	Stages [NumStages]sim.Time
}

// Dur returns the span's total duration.
func (s Span) Dur() sim.Time { return s.End - s.Start }

// track is one bounded ring of spans. The backing slice is allocated to
// full capacity at registration; while the ring is filling, Emit appends
// within capacity, and once full it overwrites the oldest entry — either
// way, no allocation.
type track struct {
	name    string
	spans   []Span
	start   int   // index of the oldest span once the ring has wrapped
	dropped int64 // spans overwritten
	below   int64 // below-threshold spans seen (tail-sampling round robin)
	sampled int64 // spans rejected by the sampling policy
}

// SamplePolicy is tail-based sampling for always-on production mode:
// every span at least Threshold long is retained (the tail is the
// signal), and 1 in KeepEvery of the rest survives as a representative
// baseline. The decision is a counter per track — no PRNG — so sampling
// is as deterministic as everything else. The zero value keeps every
// span (the exact-attribution mode the trace experiments rely on).
type SamplePolicy struct {
	Threshold sim.Time
	// KeepEvery <= 1 keeps every below-threshold span.
	KeepEvery int
}

// Active reports whether the policy rejects anything.
func (p SamplePolicy) Active() bool { return p.KeepEvery > 1 && p.Threshold > 0 }

// Recorder is the flight recorder: a set of named tracks (one per core,
// one per daemon, one per fabric link), each a bounded drop-oldest ring.
// The simulation is single-threaded by construction (procs hand off via
// the engine), so the recorder is unsynchronised, like the stats package.
type Recorder struct {
	perTrack int
	tracks   []track
	byName   map[string]int
	policy   SamplePolicy
}

// DefaultTrackCap is the per-track ring capacity when NewRecorder is
// given a non-positive one: enough for the tail of any run at ~112 bytes
// a span, small enough to preallocate for every track.
const DefaultTrackCap = 1 << 14

// NewRecorder creates a recorder whose tracks each hold perTrackCap
// spans (DefaultTrackCap if perTrackCap <= 0).
func NewRecorder(perTrackCap int) *Recorder {
	if perTrackCap <= 0 {
		perTrackCap = DefaultTrackCap
	}
	return &Recorder{perTrack: perTrackCap, byName: make(map[string]int)}
}

// Track registers (or finds) a track by name and returns its id. Call at
// construction time: registration allocates the ring, so that Emit never
// does. Track order is registration order and defines timeline order in
// the export.
func (r *Recorder) Track(name string) int {
	if id, ok := r.byName[name]; ok {
		return id
	}
	r.tracks = append(r.tracks, track{name: name, spans: make([]Span, 0, r.perTrack)})
	id := len(r.tracks) - 1
	r.byName[name] = id
	return id
}

// SetPolicy installs a tail-based sampling policy. Call before the run;
// switching policies mid-recording only affects subsequent emissions.
func (r *Recorder) SetPolicy(p SamplePolicy) { r.policy = p }

// Policy returns the active sampling policy.
func (r *Recorder) Policy() SamplePolicy { return r.policy }

// Emit records a span on the given track, overwriting the oldest span if
// the ring is full. Zero allocation, zero virtual time. Under an active
// SamplePolicy, below-threshold spans are counted and mostly rejected
// before touching the ring — the fast path of always-on mode.
func (r *Recorder) Emit(tr int, s Span) {
	t := &r.tracks[tr]
	if r.policy.KeepEvery > 1 && s.End-s.Start < r.policy.Threshold {
		t.below++
		if t.below%int64(r.policy.KeepEvery) != 0 {
			t.sampled++
			return
		}
	}
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.start] = s
	t.start++
	if t.start == len(t.spans) {
		t.start = 0
	}
	t.dropped++
}

// Tracks returns the track names in registration order (track id is the
// index into this slice).
func (r *Recorder) Tracks() []string {
	names := make([]string, len(r.tracks))
	for i := range r.tracks {
		names[i] = r.tracks[i].name
	}
	return names
}

// TrackName returns the name of a track id.
func (r *Recorder) TrackName(id int) string { return r.tracks[id].name }

// Spans returns a copy of the track's spans in arrival order (oldest
// surviving span first).
func (r *Recorder) Spans(id int) []Span {
	t := &r.tracks[id]
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.start:]...)
	out = append(out, t.spans[:t.start]...)
	return out
}

// Dropped returns how many spans the track overwrote.
func (r *Recorder) Dropped(id int) int64 { return r.tracks[id].dropped }

// DroppedTotal sums drops across all tracks.
func (r *Recorder) DroppedTotal() int64 {
	var n int64
	for i := range r.tracks {
		n += r.tracks[i].dropped
	}
	return n
}

// SampledOut returns how many spans the sampling policy rejected on a
// track.
func (r *Recorder) SampledOut(id int) int64 { return r.tracks[id].sampled }

// SampledOutTotal sums policy rejections across all tracks.
func (r *Recorder) SampledOutTotal() int64 {
	var n int64
	for i := range r.tracks {
		n += r.tracks[i].sampled
	}
	return n
}

// Len returns the total number of spans currently held.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.tracks {
		n += len(r.tracks[i].spans)
	}
	return n
}
