package telemetry

import (
	"testing"

	"dilos/internal/sim"
)

func TestRingWraparound(t *testing.T) {
	rec := NewRecorder(8)
	tr := rec.Track("core0")
	for i := 0; i < 20; i++ {
		rec.Emit(tr, Span{Kind: KindMajorFault, Start: sim.Time(i), End: sim.Time(i) + 1, Arg: uint64(i)})
	}
	spans := rec.Spans(tr)
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	if got := rec.Dropped(tr); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	// Drop-oldest: the survivors are 12..19, in arrival order.
	for i, sp := range spans {
		if want := uint64(12 + i); sp.Arg != want {
			t.Fatalf("span %d arg = %d, want %d (order broken after wrap)", i, sp.Arg, want)
		}
	}
}

func TestTrackRegistrationIdempotent(t *testing.T) {
	rec := NewRecorder(4)
	a := rec.Track("core0")
	b := rec.Track("core1")
	if a == b {
		t.Fatal("distinct names share a track id")
	}
	if rec.Track("core0") != a {
		t.Fatal("re-registering a name returned a new id")
	}
	if names := rec.Tracks(); len(names) != 2 || names[0] != "core0" || names[1] != "core1" {
		t.Fatalf("tracks = %v", names)
	}
}

// The hot-path guarantee: once a track exists, Emit allocates nothing —
// neither while the ring fills (append within capacity) nor after it
// wraps (overwrite in place).
func TestEmitNoAlloc(t *testing.T) {
	rec := NewRecorder(64)
	tr := rec.Track("core0")
	var i sim.Time
	filling := testing.AllocsPerRun(32, func() {
		rec.Emit(tr, Span{Kind: KindRead, Start: i, End: i + 10})
		i += 10
	})
	if filling != 0 {
		t.Fatalf("Emit allocates %.1f while filling, want 0", filling)
	}
	for j := 0; j < 200; j++ { // force wrap
		rec.Emit(tr, Span{Kind: KindRead, Start: i, End: i + 10})
		i += 10
	}
	wrapped := testing.AllocsPerRun(32, func() {
		rec.Emit(tr, Span{Kind: KindRead, Start: i, End: i + 10})
		i += 10
	})
	if wrapped != 0 {
		t.Fatalf("Emit allocates %.1f after wrap, want 0", wrapped)
	}
}

// Tail-based sampling: every over-threshold span survives, 1 in KeepEvery
// of the rest, decided by a per-track counter — deterministic and cheap.
func TestTailSamplingPolicy(t *testing.T) {
	rec := NewRecorder(256)
	tr := rec.Track("core0")
	rec.SetPolicy(SamplePolicy{Threshold: 10 * sim.Microsecond, KeepEvery: 10})
	var start sim.Time
	for i := 0; i < 100; i++ { // below threshold: 1µs spans
		rec.Emit(tr, Span{Kind: KindMajorFault, Start: start, End: start + sim.Microsecond, Arg: uint64(i)})
		start += 2 * sim.Microsecond
	}
	for i := 0; i < 5; i++ { // the tail: always retained
		rec.Emit(tr, Span{Kind: KindMajorFault, Start: start, End: start + 50*sim.Microsecond, Arg: 1000 + uint64(i)})
		start += 100 * sim.Microsecond
	}
	if got := len(rec.Spans(tr)); got != 15 {
		t.Fatalf("retained %d spans, want 15 (100/10 + 5 tail)", got)
	}
	if got := rec.SampledOut(tr); got != 90 {
		t.Fatalf("sampled out %d, want 90", got)
	}
	if got := rec.SampledOutTotal(); got != 90 {
		t.Fatalf("SampledOutTotal = %d, want 90", got)
	}
	// Every tail span survived.
	tail := 0
	for _, sp := range rec.Spans(tr) {
		if sp.Arg >= 1000 {
			tail++
		}
	}
	if tail != 5 {
		t.Fatalf("tail spans retained = %d, want 5", tail)
	}
	// The zero policy keeps everything.
	if (SamplePolicy{}).Active() {
		t.Fatal("zero policy reports active")
	}
	if !(SamplePolicy{Threshold: 1, KeepEvery: 2}).Active() {
		t.Fatal("real policy reports inactive")
	}
}

// The sampled-out reject path must be as allocation-free as the ring
// append — it IS the fault-path cost of always-on mode.
func TestSampledEmitNoAlloc(t *testing.T) {
	rec := NewRecorder(64)
	tr := rec.Track("core0")
	rec.SetPolicy(SamplePolicy{Threshold: 10 * sim.Microsecond, KeepEvery: 1 << 30})
	var i sim.Time
	allocs := testing.AllocsPerRun(100, func() {
		rec.Emit(tr, Span{Kind: KindMajorFault, Start: i, End: i + 10})
		i += 20
	})
	if allocs != 0 {
		t.Fatalf("sampled Emit allocates %.1f per call, want 0", allocs)
	}
}

func TestFaultAnatomy(t *testing.T) {
	rec := NewRecorder(16)
	tr := rec.Track("core0")
	// Two faults: 1000 ns and 3000 ns, stages split lookup/wait.
	mk := func(start, lookup, wait sim.Time) Span {
		sp := Span{Kind: KindMajorFault, Start: start, End: start + lookup + wait}
		sp.Stages[StageLookup] = lookup
		sp.Stages[StageWait] = wait
		return sp
	}
	rec.Emit(tr, mk(0, 400, 600))
	rec.Emit(tr, mk(5000, 1000, 2000))
	rec.Emit(tr, Span{Kind: KindMinorFault, Start: 100, End: 200}) // ignored
	a := FaultAnatomy(rec)
	if a.Faults != 2 {
		t.Fatalf("faults = %d, want 2", a.Faults)
	}
	if a.MeanNs != 2000 {
		t.Fatalf("total mean = %d, want 2000", a.MeanNs)
	}
	if got := a.Stage("lookup").MeanNs; got != 700 {
		t.Fatalf("lookup mean = %d, want 700", got)
	}
	if got := a.Stage("wait").P99Ns; got != 2000 {
		t.Fatalf("wait p99 = %d, want 2000", got)
	}
	// Stage means sum to the total mean (zero stages contribute zero).
	var sum int64
	for _, st := range a.Stages {
		sum += st.MeanNs
	}
	if sum != a.MeanNs {
		t.Fatalf("stage means sum to %d, total mean %d", sum, a.MeanNs)
	}
}
