package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dilos/internal/sim"
)

// This file serialises a recording as Chrome trace-event JSON — the
// format Perfetto (ui.perfetto.dev) and chrome://tracing both load.
// Each recorder track becomes one thread row ("M"/thread_name metadata +
// "X" complete events); fault spans additionally emit one child slice
// per stage, laid out cumulatively, so a major fault renders as a bar
// with its exception/lookup/issue/guide/wait/map segments nested under
// it. Sampler points become "C" counter events, one series per gauge.
//
// All numbers are formatted from integer nanoseconds with a fixed
// %d.%03d microsecond layout: the output is a pure function of the
// recording, so same-seed runs serialise to byte-identical files — a
// property the determinism tests assert.

// usStr renders virtual nanoseconds as trace-event microseconds with a
// deterministic fixed-point layout.
func usStr(ns sim.Time) string {
	if ns < 0 {
		ns = 0
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// argName maps a span kind to the name of its Arg in the export.
func argName(k Kind) string {
	switch k {
	case KindRead, KindWrite:
		return "bytes"
	case KindClean, KindReclaim:
		return "pages"
	default:
		return "page"
	}
}

// WritePerfetto serialises the recording (and, when non-nil, the
// sampler's gauge series) as Chrome trace-event JSON.
func WritePerfetto(w io.Writer, rec *Recorder, sam *Sampler) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	emit(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"dilos-sim"}}`)
	names := rec.Tracks()
	for id, name := range names {
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			id+1, name))
	}
	for id := range names {
		for _, sp := range rec.Spans(id) {
			if sp.Kind == KindSteal {
				// Steals render as instant markers on the thief's track
				// with the victim shard in args — the "who raided whom"
				// annotation the shard timeline was missing.
				emit(fmt.Sprintf(`{"ph":"i","pid":0,"tid":%d,"ts":%s,"s":"t","name":"steal","args":{"victim_shard":%d}}`,
					id+1, usStr(sp.Start), sp.Arg))
				continue
			}
			emit(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{%q:%d}}`,
				id+1, usStr(sp.Start), usStr(sp.Dur()), sp.Kind.String(), argName(sp.Kind), sp.Arg))
			cursor := sp.Start
			for st := Stage(0); st < NumStages; st++ {
				d := sp.Stages[st]
				if d <= 0 {
					continue
				}
				emit(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{}}`,
					id+1, usStr(cursor), usStr(d), StageNames[st]))
				cursor += d
			}
		}
	}
	if sam != nil {
		for _, pt := range sam.Points() {
			for _, g := range pt.Gauges {
				emit(fmt.Sprintf(`{"ph":"C","pid":0,"tid":0,"ts":%s,"name":%q,"args":{"value":%d}}`,
					usStr(pt.At), g.Name, g.Last))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// Summary describes a validated trace file.
type Summary struct {
	Events   int `json:"events"`
	Meta     int `json:"meta"`
	Spans    int `json:"spans"`
	Counters int `json:"counters"`
	Instants int `json:"instants"`
	Tracks   int `json:"tracks"`
	// MaxTsNs is the latest event end, i.e. the timeline's extent.
	MaxTsNs int64 `json:"max_ts_ns"`
}

// Validate parses trace-event JSON and checks it against the schema
// Perfetto requires: a traceEvents array whose entries carry a phase in
// {M, X, C}, a name, and the phase's mandatory fields ("X" needs
// ts/dur/tid with dur >= 0, "C" needs ts and a numeric args value, "M"
// needs an args name). Returns counts for reporting. CI runs this over
// the ext6 export.
func Validate(r io.Reader) (Summary, error) {
	var doc struct {
		TraceEvents []struct {
			Ph   string                     `json:"ph"`
			Pid  *int                       `json:"pid"`
			Tid  *int                       `json:"tid"`
			Ts   *float64                   `json:"ts"`
			Dur  *float64                   `json:"dur"`
			Name string                     `json:"name"`
			Args map[string]json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return Summary{}, fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return Summary{}, fmt.Errorf("telemetry: trace has no traceEvents array")
	}
	var s Summary
	tracks := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		s.Events++
		if ev.Name == "" {
			return s, fmt.Errorf("telemetry: event %d has no name", i)
		}
		switch ev.Ph {
		case "M":
			s.Meta++
			if _, ok := ev.Args["name"]; !ok {
				return s, fmt.Errorf("telemetry: metadata event %d (%s) missing args.name", i, ev.Name)
			}
			if ev.Name == "thread_name" {
				if ev.Tid == nil {
					return s, fmt.Errorf("telemetry: thread_name event %d missing tid", i)
				}
				tracks[*ev.Tid] = true
			}
		case "X":
			s.Spans++
			if ev.Ts == nil || ev.Dur == nil || ev.Tid == nil {
				return s, fmt.Errorf("telemetry: complete event %d (%s) missing ts/dur/tid", i, ev.Name)
			}
			if *ev.Dur < 0 || *ev.Ts < 0 {
				return s, fmt.Errorf("telemetry: complete event %d (%s) has negative ts/dur", i, ev.Name)
			}
			if end := int64((*ev.Ts + *ev.Dur) * 1000); end > s.MaxTsNs {
				s.MaxTsNs = end
			}
		case "C":
			s.Counters++
			if ev.Ts == nil {
				return s, fmt.Errorf("telemetry: counter event %d (%s) missing ts", i, ev.Name)
			}
			var v float64
			raw, ok := ev.Args["value"]
			if !ok || json.Unmarshal(raw, &v) != nil {
				return s, fmt.Errorf("telemetry: counter event %d (%s) has no numeric args.value", i, ev.Name)
			}
		case "i":
			// Instant markers: shard steals, merged journal events.
			s.Instants++
			if ev.Ts == nil || ev.Tid == nil {
				return s, fmt.Errorf("telemetry: instant event %d (%s) missing ts/tid", i, ev.Name)
			}
			if end := int64(*ev.Ts * 1000); end > s.MaxTsNs {
				s.MaxTsNs = end
			}
		default:
			return s, fmt.Errorf("telemetry: event %d has unsupported phase %q", i, ev.Ph)
		}
	}
	s.Tracks = len(tracks)
	return s, nil
}
