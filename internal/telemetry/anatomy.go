package telemetry

import (
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// FaultAnatomy aggregates every major-fault span in a recording into a
// per-stage latency table — the live-run counterpart of the paper's
// Figure 6 breakdown, with tails. Stage means are taken over all faults
// (a stage that did not occur contributes zero), so the stage means sum
// to the total mean and the table reads as an attribution.

// StageStat is one stage row of the anatomy.
type StageStat struct {
	Stage  string `json:"stage"`
	MeanNs int64  `json:"mean_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

// Anatomy is the per-stage decomposition of a recording's major faults.
type Anatomy struct {
	Faults  int         `json:"faults"`
	Dropped int64       `json:"dropped,omitempty"` // faults lost to ring wrap
	MeanNs  int64       `json:"mean_ns"`
	P99Ns   int64       `json:"p99_ns"`
	Stages  []StageStat `json:"stages"` // one per Stage, canonical order
}

// FaultAnatomy computes the anatomy over all KindMajorFault spans.
func FaultAnatomy(rec *Recorder) Anatomy {
	total := stats.NewHistogram("total")
	var stage [NumStages]*stats.Histogram
	for st := Stage(0); st < NumStages; st++ {
		stage[st] = stats.NewHistogram(StageNames[st])
	}
	var dropped int64
	for id := range rec.Tracks() {
		sawFault := false
		for _, sp := range rec.Spans(id) {
			if sp.Kind != KindMajorFault {
				continue
			}
			sawFault = true
			total.Record(sp.Dur())
			for st := Stage(0); st < NumStages; st++ {
				stage[st].Record(sp.Stages[st])
			}
		}
		if sawFault {
			dropped += rec.Dropped(id)
		}
	}
	a := Anatomy{
		Faults:  total.Count(),
		Dropped: dropped,
		MeanNs:  int64(total.Mean()),
		P99Ns:   int64(total.P99()),
	}
	for st := Stage(0); st < NumStages; st++ {
		a.Stages = append(a.Stages, StageStat{
			Stage:  StageNames[st],
			MeanNs: int64(stage[st].Mean()),
			P99Ns:  int64(stage[st].P99()),
		})
	}
	return a
}

// Stage looks up a stage row by name (zero row if absent).
func (a Anatomy) Stage(name string) StageStat {
	for _, s := range a.Stages {
		if s.Stage == name {
			return s
		}
	}
	return StageStat{}
}

// Mean returns the total mean as sim.Time for formatting.
func (a Anatomy) Mean() sim.Time { return sim.Time(a.MeanNs) }
