package placement

import (
	"testing"

	"dilos/internal/pagetable"
)

// bump is a trivial per-node slot allocator for tests.
type bump struct{ next []uint64 }

func newBump(nodes int) *bump { return &bump{next: make([]uint64, nodes)} }

func (b *bump) alloc(node int, slots uint64) (uint64, error) {
	off := b.next[node]
	b.next[node] += slots * PageSize
	return off, nil
}

// TestPolicyBijective checks the core Policy contract for every shipped
// policy: across a region no two pages share a (node, slot) pair and
// every slot stays below SlotsPerNode.
func TestPolicyBijective(t *testing.T) {
	for _, p := range Policies() {
		for _, nodes := range []int{1, 2, 3, 5, 8} {
			for _, pages := range []uint64{1, 2, 7, 64, 1000} {
				per := p.SlotsPerNode(pages, nodes)
				seen := make(map[[2]uint64]uint64)
				for i := uint64(0); i < pages; i++ {
					node, slot := p.Place(i, pages, nodes)
					if node < 0 || node >= nodes {
						t.Fatalf("%s: page %d of %d/%d nodes → node %d out of range", p.Name(), i, pages, nodes, node)
					}
					if slot >= per {
						t.Fatalf("%s: page %d slot %d >= SlotsPerNode %d", p.Name(), i, slot, per)
					}
					key := [2]uint64{uint64(node), slot}
					if prev, dup := seen[key]; dup {
						t.Fatalf("%s: pages %d and %d collide on node %d slot %d (pages=%d nodes=%d)",
							p.Name(), prev, i, node, slot, pages, nodes)
					}
					seen[key] = i
				}
			}
		}
	}
}

// TestPolicyDeterministic checks Place is a pure function of its inputs.
func TestPolicyDeterministic(t *testing.T) {
	for _, p := range Policies() {
		for i := uint64(0); i < 100; i++ {
			n1, s1 := p.Place(i, 100, 3)
			n2, s2 := p.Place(i, 100, 3)
			if n1 != n2 || s1 != s2 {
				t.Fatalf("%s: Place(%d) not deterministic", p.Name(), i)
			}
		}
	}
}

// TestStripedMatchesLegacyLayout pins Striped to the exact layout the
// multi-node extension shipped with: page i → node i%N, slot i/N.
func TestStripedMatchesLegacyLayout(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 4} {
		for i := uint64(0); i < 50; i++ {
			node, slot := (Striped{}).Place(i, 50, nodes)
			if node != int(i%uint64(nodes)) || slot != i/uint64(nodes) {
				t.Fatalf("striped page %d over %d nodes: got (%d,%d), want (%d,%d)",
					i, nodes, node, slot, i%uint64(nodes), i/uint64(nodes))
			}
		}
	}
}

// TestBlockedContiguous checks Blocked keeps runs whole: page indices on
// each node form one contiguous ascending range.
func TestBlockedContiguous(t *testing.T) {
	const pages, nodes = 100, 3
	prevNode := 0
	for i := uint64(0); i < pages; i++ {
		node, _ := (Blocked{}).Place(i, pages, nodes)
		if node < prevNode {
			t.Fatalf("blocked: node went backwards at page %d (%d → %d)", i, prevNode, node)
		}
		prevNode = node
	}
	if prevNode != nodes-1 {
		t.Fatalf("blocked: last page on node %d, want %d", prevNode, nodes-1)
	}
}

// TestHashedSeedVariation checks distinct seeds yield distinct layouts
// (and each is still a bijection, covered by TestPolicyBijective for the
// zero seed).
func TestHashedSeedVariation(t *testing.T) {
	const pages = 256
	same := 0
	for i := uint64(0); i < pages; i++ {
		a := Hashed{Seed: 1}.permute(i, pages)
		b := Hashed{Seed: 2}.permute(i, pages)
		if a == b {
			same++
		}
	}
	if same == pages {
		t.Fatalf("hashed: seeds 1 and 2 produce identical permutations")
	}
	// Seeded permutations must each be bijections too.
	for _, seed := range []uint64{1, 2, 0xdeadbeef} {
		seen := make(map[uint64]bool, pages)
		for i := uint64(0); i < pages; i++ {
			v := Hashed{Seed: seed}.permute(i, pages)
			if v >= pages {
				t.Fatalf("hashed seed %#x: permute(%d) = %d out of range", seed, i, v)
			}
			if seen[v] {
				t.Fatalf("hashed seed %#x: permute collision at %d", seed, i)
			}
			seen[v] = true
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.Name())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.Name(), err)
		}
		if got.Name() != p.Name() {
			t.Fatalf("ParsePolicy(%q) → %q", p.Name(), got.Name())
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
}

// TestResolveInvariants is the §6 property test: every mapped VPN
// resolves to exactly R slots on pairwise-distinct nodes with the
// primary first, under every policy.
func TestResolveInvariants(t *testing.T) {
	for _, p := range Policies() {
		const nodes, replicas = 3, 2
		a := New(Config{Nodes: nodes, Replicas: replicas, Policy: p})
		b := newBump(nodes)
		reg, err := a.Map(97, b.alloc)
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			node int
			off  uint64
		}
		used := make(map[key]pagetable.VPN)
		for i := uint64(0); i < reg.Pages; i++ {
			v := reg.BaseVPN + pagetable.VPN(i)
			slots, failover, ok := a.Resolve(v)
			if !ok || failover {
				t.Fatalf("%s: Resolve(%d) ok=%v failover=%v", p.Name(), v, ok, failover)
			}
			if len(slots) != replicas {
				t.Fatalf("%s: vpn %d has %d slots, want %d", p.Name(), v, len(slots), replicas)
			}
			prim, ok := a.Primary(v)
			if !ok || slots[0] != prim {
				t.Fatalf("%s: vpn %d head slot %+v is not the primary %+v", p.Name(), v, slots[0], prim)
			}
			nodesSeen := map[int]bool{}
			for _, s := range slots {
				if nodesSeen[s.Node] {
					t.Fatalf("%s: vpn %d has two replicas on node %d", p.Name(), v, s.Node)
				}
				nodesSeen[s.Node] = true
				k := key{s.Node, s.Off}
				if prev, dup := used[k]; dup {
					t.Fatalf("%s: vpn %d and %d share node %d off %d", p.Name(), v, prev, s.Node, s.Off)
				}
				used[k] = v
			}
		}
	}
}

// TestResolveOutsideRegions checks unmapped VPNs report !ok.
func TestResolveOutsideRegions(t *testing.T) {
	a := New(Config{Nodes: 2})
	b := newBump(2)
	reg, err := a.Map(10, b.alloc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.Resolve(reg.BaseVPN - 1); ok {
		t.Fatal("resolved a VPN below the region")
	}
	if _, _, ok := a.Resolve(reg.BaseVPN + pagetable.VPN(reg.Pages)); ok {
		t.Fatal("resolved a VPN past the region")
	}
	if _, ok := a.First(reg.BaseVPN + pagetable.VPN(reg.Pages)); ok {
		t.Fatal("First resolved a VPN past the region")
	}
}

// TestFailover checks the §6 failover invariants: after a node fails,
// Resolve never returns it, pages whose primary died report failover,
// and the last live node cannot be failed.
func TestFailover(t *testing.T) {
	const nodes, replicas = 3, 2
	a := New(Config{Nodes: nodes, Replicas: replicas})
	b := newBump(nodes)
	reg, err := a.Map(60, b.alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(1, Failed); err != nil {
		t.Fatal(err)
	}
	if !a.Failed(1) {
		t.Fatal("Failed(1) = false after SetState(1, Failed)")
	}
	failovers := 0
	for i := uint64(0); i < reg.Pages; i++ {
		v := reg.BaseVPN + pagetable.VPN(i)
		slots, failover, ok := a.Resolve(v)
		if !ok {
			t.Fatalf("Resolve(%d) failed", v)
		}
		for _, s := range slots {
			if s.Node == 1 {
				t.Fatalf("vpn %d resolved to failed node 1", v)
			}
		}
		prim, _ := a.Primary(v)
		if failover != (prim.Node == 1) {
			t.Fatalf("vpn %d: failover=%v but primary node is %d", v, failover, prim.Node)
		}
		if failover {
			failovers++
			// The survivor must be the page's first replica: node (1+1)%3.
			if slots[0].Node != 2 {
				t.Fatalf("vpn %d: failover served by node %d, want 2", v, slots[0].Node)
			}
		}
	}
	if want := int(reg.Pages) / nodes; failovers != want {
		t.Fatalf("failovers = %d, want %d", failovers, want)
	}

	// Failing an already-failed node is a no-op, and the last serving
	// node cannot be failed — SetState reports the guard as an error.
	if err := a.SetState(1, Failed); err != nil {
		t.Fatalf("re-failing node 1: %v", err)
	}
	if err := a.SetState(0, Failed); err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(2, Failed); err == nil {
		t.Fatal("failing the last serving node did not error")
	}
}

// TestMapVAAssignment checks regions get disjoint, ascending VA ranges
// and alloc sees the replica-scaled slot count.
func TestMapVAAssignment(t *testing.T) {
	const nodes, replicas = 2, 2
	a := New(Config{Nodes: nodes, Replicas: replicas})
	var allocs []uint64
	alloc := func(node int, slots uint64) (uint64, error) {
		allocs = append(allocs, slots)
		return 0, nil
	}
	r1, err := a.Map(10, alloc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Map(4, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base != 1<<30 {
		t.Fatalf("first region base %#x, want 1 GiB", r1.Base)
	}
	if r2.Base != r1.Base+r1.Pages*PageSize {
		t.Fatalf("second region base %#x not contiguous after first", r2.Base)
	}
	// 10 pages over 2 nodes → 5 slots per segment × 2 replicas = 10.
	if allocs[0] != 10 || allocs[1] != 10 {
		t.Fatalf("first Map allocs = %v, want [10 10]", allocs[:2])
	}
	if got := len(a.Regions()); got != 2 {
		t.Fatalf("Regions() len = %d, want 2", got)
	}
}

func TestConfigValidation(t *testing.T) {
	a := New(Config{})
	if a.Nodes() != 1 || a.Replicas() != 1 || a.Policy().Name() != "striped" {
		t.Fatalf("zero Config defaults wrong: nodes=%d replicas=%d policy=%s",
			a.Nodes(), a.Replicas(), a.Policy().Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Replicas > Nodes did not panic")
		}
	}()
	New(Config{Nodes: 2, Replicas: 3})
}

// TestAllReplicasDownDegrades is the regression test for the old
// behaviour where Resolve panicked once every replica of a mapped page
// had failed. With 3 nodes and 2 replicas, failing nodes 0 and 1 leaves
// the pages replicated on {0,1} with no readable copy: Resolve must
// report that with ok=true and an empty slot list, and First must return
// false — never a panic.
func TestAllReplicasDownDegrades(t *testing.T) {
	a := New(Config{Nodes: 3, Replicas: 2})
	b := newBump(3)
	reg, err := a.Map(60, b.alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(0, Failed); err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(1, Failed); err != nil {
		t.Fatal(err)
	}
	stranded := 0
	for i := uint64(0); i < reg.Pages; i++ {
		v := reg.BaseVPN + pagetable.VPN(i)
		slots, failover, ok := a.Resolve(v)
		if !ok {
			t.Fatalf("Resolve(%d): mapped page reported unmapped", v)
		}
		if len(slots) == 0 {
			stranded++
			if !failover {
				t.Fatalf("vpn %d: no readable replica but failover=false", v)
			}
			if _, ok := a.First(v); ok {
				t.Fatalf("First(%d) returned a slot with every replica down", v)
			}
			// The layout identity survives: AllSlots still names both copies.
			all, ok := a.AllSlots(v)
			if !ok || len(all) != 2 {
				t.Fatalf("AllSlots(%d) = %v, %v", v, all, ok)
			}
			continue
		}
		for _, s := range slots {
			if s.Node != 2 {
				t.Fatalf("vpn %d resolved to dead node %d", v, s.Node)
			}
		}
	}
	// Striped over 3 nodes with replicas on (p, p+1): pages with primary 0
	// (replica 1) are stranded — a third of the region.
	if want := int(reg.Pages) / 3; stranded != want {
		t.Fatalf("stranded pages = %d, want %d", stranded, want)
	}
}

// TestRecoveryStates walks a node through failed → syncing → live and
// checks what each state serves: a syncing node receives write-backs but
// no reads, and only the transition to Live makes it readable again.
func TestRecoveryStates(t *testing.T) {
	a := New(Config{Nodes: 2, Replicas: 2})
	b := newBump(2)
	reg, err := a.Map(8, b.alloc)
	if err != nil {
		t.Fatal(err)
	}
	v := reg.BaseVPN
	if a.LiveNodes() != 2 {
		t.Fatalf("LiveNodes = %d", a.LiveNodes())
	}

	if err := a.SetState(1, Failed); err != nil {
		t.Fatal(err)
	}
	if a.LiveNodes() != 1 || !a.Failed(1) {
		t.Fatalf("after fail: live=%d failed=%v", a.LiveNodes(), a.Failed(1))
	}
	if ws, _ := a.WriteSlots(v); len(ws) != 1 || ws[0].Node != 0 {
		t.Fatalf("failed node still receives writes: %v", ws)
	}

	if err := a.SetState(1, Syncing); err != nil {
		t.Fatal(err)
	}
	if a.LiveNodes() != 1 {
		t.Fatalf("syncing node counted live")
	}
	slots, _, _ := a.Resolve(v)
	for _, s := range slots {
		if s.Node == 1 {
			t.Fatal("syncing node served a read")
		}
	}
	ws, _ := a.WriteSlots(v)
	if len(ws) != 2 {
		t.Fatalf("syncing node missing from WriteSlots: %v", ws)
	}

	if err := a.SetState(1, Live); err != nil {
		t.Fatal(err)
	}
	if a.LiveNodes() != 2 || a.Failed(1) {
		t.Fatalf("after recover: live=%d failed=%v", a.LiveNodes(), a.Failed(1))
	}
	slots, _, _ = a.Resolve(v)
	if len(slots) != 2 {
		t.Fatalf("recovered node not serving reads: %v", slots)
	}

	// Failed → Live must pass through Syncing: the direct transition is
	// outside the machine and rejected.
	if err := a.SetState(0, Failed); err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(0, Live); err == nil {
		t.Fatal("Failed → Live skipped the syncing state")
	}
	if !a.Failed(0) {
		t.Fatal("rejected transition mutated state")
	}
	if err := a.SetState(0, Syncing); err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(0, Live); err != nil {
		t.Fatal(err)
	}
	if a.Failed(0) || a.LiveNodes() != 2 {
		t.Fatalf("after recover: live=%d failed=%v", a.LiveNodes(), a.Failed(0))
	}
}
