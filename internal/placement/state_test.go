package placement

import (
	"strings"
	"testing"

	"dilos/internal/pagetable"
)

// driveTo walks node i into the wanted state through valid transitions.
func driveTo(t *testing.T, a *AddressSpace, i int, want State) {
	t.Helper()
	var path []State
	switch want {
	case Live:
		path = nil
	case Failed:
		path = []State{Failed}
	case Syncing:
		path = []State{Failed, Syncing}
	case Draining:
		path = []State{Draining}
	case Removed:
		path = []State{Draining, Removed}
	}
	for _, st := range path {
		if err := a.SetState(i, st); err != nil {
			t.Fatalf("driving node %d to %s: %v", i, want, err)
		}
	}
	if got := a.State(i); got != want {
		t.Fatalf("drove node %d to %s, got %s", i, want, got)
	}
}

// TestSetStateTransitionTable checks every (from, to) pair against the
// documented machine: live ⇄ failed ⇄ syncing, live ⇄ draining,
// draining→failed, {draining,failed}→removed, removed terminal.
func TestSetStateTransitionTable(t *testing.T) {
	valid := map[[2]State]bool{
		{Live, Failed}:      true,
		{Live, Draining}:    true,
		{Failed, Syncing}:   true,
		{Failed, Removed}:   true,
		{Syncing, Live}:     true,
		{Syncing, Failed}:   true,
		{Draining, Removed}: true,
		{Draining, Failed}:  true,
		{Draining, Live}:    true,
	}
	states := []State{Live, Failed, Syncing, Draining, Removed}
	for _, from := range states {
		for _, to := range states {
			a := New(Config{Nodes: 3})
			driveTo(t, a, 1, from)
			err := a.SetState(1, to)
			switch {
			case from == to:
				if err != nil {
					t.Errorf("%s → %s: same-state must be a no-op, got %v", from, to, err)
				}
			case valid[[2]State{from, to}]:
				if err != nil {
					t.Errorf("%s → %s: want valid, got %v", from, to, err)
				} else if a.State(1) != to {
					t.Errorf("%s → %s: state is %s", from, to, a.State(1))
				}
			default:
				if err == nil {
					t.Errorf("%s → %s: invalid transition accepted", from, to)
				}
				if a.State(1) != from {
					t.Errorf("%s → %s: rejected transition mutated state to %s", from, to, a.State(1))
				}
			}
		}
	}
}

func TestSetStateLastServingNodeGuard(t *testing.T) {
	a := New(Config{Nodes: 2})
	if err := a.SetState(0, Failed); err != nil {
		t.Fatalf("failing node 0: %v", err)
	}
	if err := a.SetState(1, Failed); err == nil {
		t.Fatal("failed the last serving node")
	}
	if err := a.SetState(1, Draining); err != nil {
		t.Fatalf("draining keeps the node serving, want allowed: %v", err)
	}
	// A draining last-serving node cannot be removed or failed either.
	if err := a.SetState(1, Removed); err == nil {
		t.Fatal("removed the last serving node")
	}
	if err := a.SetState(1, Failed); err == nil {
		t.Fatal("failed the last serving (draining) node")
	}
}

func TestRemoveRequiresEmptyOccupancy(t *testing.T) {
	a := New(Config{Nodes: 2})
	mustMap(t, a, 8)
	if err := a.SetState(1, Draining); err != nil {
		t.Fatalf("drain: %v", err)
	}
	err := a.SetState(1, Removed)
	if err == nil || !strings.Contains(err.Error(), "hosts") {
		t.Fatalf("removed an occupied node (err=%v)", err)
	}
}

func TestStateChangeEvents(t *testing.T) {
	a := New(Config{Nodes: 2})
	type ev struct {
		node     int
		from, to State
	}
	var got []ev
	a.OnStateChange(func(node int, from, to State) { got = append(got, ev{node, from, to}) })
	if err := a.SetState(1, Failed); err != nil {
		t.Fatal(err)
	}
	_ = a.SetState(1, Failed) // no-op must not fire
	if id := a.AddNode(); id != 2 {
		t.Fatalf("AddNode id %d, want 2", id)
	}
	want := []ev{{1, Live, Failed}, {2, Removed, Live}}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFailRecoverCycle(t *testing.T) {
	a := New(Config{Nodes: 2})
	for _, step := range []struct {
		to   State
		want State
	}{
		{Failed, Failed},
		{Syncing, Syncing},
		{Live, Live},
		{Failed, Failed},
		{Syncing, Syncing},
		{Live, Live},
	} {
		if err := a.SetState(1, step.to); err != nil {
			t.Fatalf("SetState(1, %s): %v", step.to, err)
		}
		if a.State(1) != step.want {
			t.Fatalf("State(1) = %s, want %s", a.State(1), step.want)
		}
	}
}

func mustMap(t *testing.T, a *AddressSpace, pages uint64) Region {
	t.Helper()
	var next [16]uint64
	reg, err := a.Map(pages, func(node int, slots uint64) (uint64, error) {
		base := next[node]
		next[node] += slots * PageSize
		return base, nil
	})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	return reg
}

func TestMapSnapshotsLiveMembers(t *testing.T) {
	a := New(Config{Nodes: 3})
	if err := a.SetState(2, Draining); err != nil {
		t.Fatal(err)
	}
	reg := mustMap(t, a, 12)
	for i := uint64(0); i < reg.Pages; i++ {
		sl, ok := a.Primary(reg.BaseVPN + pagetable.VPN(i))
		if !ok {
			t.Fatalf("page %d unmapped", i)
		}
		if sl.Node == 2 {
			t.Fatalf("page %d landed on the draining node", i)
		}
	}
	if a.Occupancy(2) != 0 {
		t.Fatalf("draining node gained occupancy %d", a.Occupancy(2))
	}
	if a.Occupancy(0)+a.Occupancy(1) != 12 {
		t.Fatalf("members host %d+%d slots, want 12", a.Occupancy(0), a.Occupancy(1))
	}
}

func TestMapRejectsTooFewLiveNodes(t *testing.T) {
	a := New(Config{Nodes: 2, Replicas: 2})
	if err := a.SetState(1, Draining); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Map(4, func(int, uint64) (uint64, error) { return 0, nil }); err == nil {
		t.Fatal("mapped 2 replicas over 1 live node")
	}
}

func TestMigrateCopyThenFlip(t *testing.T) {
	a := New(Config{Nodes: 3, Replicas: 2})
	reg := mustMap(t, a, 6)
	v := reg.BaseVPN
	before, _ := a.AllSlots(v)
	// Find the node hosting no replica of v — the only legal destination.
	dstNode := 0
	for n := 0; n < 3; n++ {
		hosts := false
		for _, s := range before {
			if s.Node == n {
				hosts = true
			}
		}
		if !hosts {
			dstNode = n
		}
	}
	dst := Slot{Node: dstNode, Off: 1 << 20}
	// Rejections first.
	if err := a.BeginMigrate(v, 0, Slot{Node: before[1].Node}); err == nil {
		t.Fatal("migrated onto a node already hosting a replica")
	}
	if err := a.BeginMigrate(v, 5, dst); err == nil {
		t.Fatal("replica index out of range accepted")
	}
	if err := a.BeginMigrate(v, 0, dst); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := a.BeginMigrate(v, 1, dst); err == nil {
		t.Fatal("double begin accepted")
	}
	// Mid-copy: reads and write-backs still resolve to the old slots,
	// and a write-back raises the written-during-copy flag.
	if a.MigrationWrote(v) {
		t.Fatal("wrote flag set before any write")
	}
	ws, _ := a.WriteSlots(v)
	if len(ws) != 2 || ws[0] != before[0] {
		t.Fatalf("write slots changed mid-copy: %v", ws)
	}
	if !a.MigrationWrote(v) {
		t.Fatal("WriteSlots did not flag the in-flight copy")
	}
	a.ResetMigrationWrote(v)
	if a.MigrationWrote(v) {
		t.Fatal("flag survived reset")
	}
	occSrc, occDst := a.Occupancy(before[0].Node), a.Occupancy(dstNode)
	old, err := a.CompleteMigrate(v)
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if old != before[0] {
		t.Fatalf("vacated %v, want %v", old, before[0])
	}
	after, _ := a.AllSlots(v)
	if after[0] != dst || after[1] != before[1] {
		t.Fatalf("flip produced %v, want [%v %v]", after, dst, before[1])
	}
	if p, _ := a.Primary(v); p != dst {
		t.Fatalf("Primary %v, want %v", p, dst)
	}
	slots, failover, ok := a.Resolve(v)
	if !ok || failover || len(slots) != 2 || slots[0] != dst {
		t.Fatalf("Resolve after flip: %v failover=%v", slots, failover)
	}
	if a.Occupancy(before[0].Node) != occSrc-1 || a.Occupancy(dstNode) != occDst+1 {
		t.Fatal("occupancy did not follow the flip")
	}
	if a.MigrationsInFlight() != 0 || a.Forwarded() != 1 {
		t.Fatalf("inflight=%d forwarded=%d", a.MigrationsInFlight(), a.Forwarded())
	}
	// Abort path: start another move and cancel it.
	free := Slot{Node: old.Node, Off: 2 << 20}
	if err := a.BeginMigrate(v, 1, free); err != nil {
		t.Fatalf("second begin: %v", err)
	}
	got, ok := a.AbortMigrate(v)
	if !ok || got != free {
		t.Fatalf("abort returned %v/%v", got, ok)
	}
	if cur, _ := a.AllSlots(v); cur[1] != before[1] {
		t.Fatal("abort mutated the replica set")
	}
}

func TestMigrateDstMustBeLive(t *testing.T) {
	a := New(Config{Nodes: 3})
	reg := mustMap(t, a, 3)
	if err := a.SetState(2, Failed); err != nil {
		t.Fatal(err)
	}
	v := reg.BaseVPN
	if err := a.BeginMigrate(v, 0, Slot{Node: 2}); err == nil {
		t.Fatal("migrated onto a failed node")
	}
}
