// Package placement is the shared placement substrate of every paging
// system in this repository: it owns the DDC address-space layout —
// virtual-address assignment, the page→(memory node, remote slot)
// mapping, R-way replication, and node-failure failover — behind a
// pluggable Policy. core (DiLOS), fastswap, and aifm all resolve remote
// offsets through an AddressSpace instead of hand-rolling their own
// region bookkeeping, so new placement schemes and failure-handling
// changes are single-package edits.
//
// Layout invariants (property-tested, see DESIGN.md §6):
//
//   - every mapped VPN resolves to exactly one primary slot plus R−1
//     replica slots on pairwise-distinct nodes;
//   - no two pages of a region share a (node, segment, slot) triple;
//   - Resolve never returns a slot on a failed or syncing node, and
//     failing a node never strands a page (the last live node cannot be
//     failed); when every replica of a page is unreachable Resolve
//     reports it with an empty slot list, never a panic.
//
// Node health is three-state: live (serves reads and writes), failed
// (serves nothing), and syncing (a recovering node that accepts
// write-backs — WriteSlots — but serves no reads until re-replication
// completes and FinishRecover promotes it back to live).
package placement

import (
	"fmt"
	"sort"

	"dilos/internal/pagetable"
)

// PageSize re-exports the paging granularity.
const PageSize = pagetable.PageSize

// Slot locates one replica copy of a page: the memory node index and the
// byte offset inside that node's registered region.
type Slot struct {
	Node int
	Off  uint64
}

// Config assembles an AddressSpace.
type Config struct {
	// Nodes is the memory-node count (default 1).
	Nodes int
	// Replicas keeps this many copies of every page on distinct nodes
	// (default 1, i.e. no replication). Must not exceed Nodes.
	Replicas int
	// Policy picks the page→node layout (default Striped).
	Policy Policy
	// BaseVA is the first DDC virtual address (default 1 GiB).
	BaseVA uint64
}

// nodeState is a memory node's health from the placement substrate's
// point of view.
type nodeState uint8

const (
	nodeLive    nodeState = iota // serves reads and writes
	nodeFailed                   // serves nothing
	nodeSyncing                  // accepts write-backs; serves no reads yet
)

// AddressSpace owns the DDC regions of one computing node.
type AddressSpace struct {
	policy   Policy
	nodes    int
	replicas int
	state    []nodeState
	live     int
	regions  []region
	nextVA   uint64
}

type region struct {
	baseVPN     pagetable.VPN
	pages       uint64
	remoteBases []uint64 // one backing base per memory node
	perNode     uint64   // slot capacity per node per replica segment
}

// Region describes one mapped DDC range.
type Region struct {
	Base    uint64
	BaseVPN pagetable.VPN
	Pages   uint64
}

// New creates an empty address space.
func New(cfg Config) *AddressSpace {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		panic("placement: Replicas must not exceed the memory node count")
	}
	if cfg.Policy == nil {
		cfg.Policy = Striped{}
	}
	if cfg.BaseVA == 0 {
		cfg.BaseVA = 1 << 30 // DDC regions start at 1 GiB
	}
	return &AddressSpace{
		policy:   cfg.Policy,
		nodes:    cfg.Nodes,
		replicas: cfg.Replicas,
		state:    make([]nodeState, cfg.Nodes),
		live:     cfg.Nodes,
		nextVA:   cfg.BaseVA,
	}
}

// Nodes returns the memory-node count.
func (a *AddressSpace) Nodes() int { return a.nodes }

// Replicas returns the replication factor.
func (a *AddressSpace) Replicas() int { return a.replicas }

// Policy returns the placement policy in force.
func (a *AddressSpace) Policy() Policy { return a.policy }

// Regions returns the mapped regions in VPN order.
func (a *AddressSpace) Regions() []Region {
	out := make([]Region, len(a.regions))
	for i, r := range a.regions {
		out[i] = Region{Base: uint64(r.baseVPN) * PageSize, BaseVPN: r.baseVPN, Pages: r.pages}
	}
	return out
}

// Map carves a fresh VA range of `pages` pages and provisions its remote
// backing: alloc is called once per memory node with the slot count that
// node must register (covering all replica segments) and returns the
// node-local base offset of the range it reserved.
func (a *AddressSpace) Map(pages uint64, alloc func(node int, slots uint64) (uint64, error)) (Region, error) {
	if pages == 0 {
		return Region{}, fmt.Errorf("placement: zero-page region")
	}
	perNode := a.policy.SlotsPerNode(pages, a.nodes)
	bases := make([]uint64, a.nodes)
	for i := range bases {
		base, err := alloc(i, perNode*uint64(a.replicas))
		if err != nil {
			return Region{}, err
		}
		bases[i] = base
	}
	base := a.nextVA
	a.nextVA += pages * PageSize
	r := region{baseVPN: pagetable.VPNOf(base), pages: pages, remoteBases: bases, perNode: perNode}
	a.regions = append(a.regions, r)
	sort.Slice(a.regions, func(i, j int) bool { return a.regions[i].baseVPN < a.regions[j].baseVPN })
	return Region{Base: base, BaseVPN: r.baseVPN, Pages: pages}, nil
}

// lookup finds the region containing v.
func (a *AddressSpace) lookup(v pagetable.VPN) (*region, uint64, bool) {
	i := sort.Search(len(a.regions), func(i int) bool { return a.regions[i].baseVPN > v })
	if i == 0 {
		return nil, 0, false
	}
	r := &a.regions[i-1]
	idx := uint64(v - r.baseVPN)
	if idx >= r.pages {
		return nil, 0, false
	}
	return r, idx, true
}

// slotOf computes replica k's slot for page idx of region r: node
// (primary+k) mod N, segment k, at the page's primary slot index.
func (a *AddressSpace) slotOf(r *region, idx uint64, primary int, slot uint64, k int) Slot {
	node := (primary + k) % a.nodes
	return Slot{
		Node: node,
		Off:  r.remoteBases[node] + (uint64(k)*r.perNode+slot)*PageSize,
	}
}

// Primary returns the page's primary slot regardless of node health —
// the stable identity used for initial PTE payloads. Use Resolve for
// anything that touches the wire.
func (a *AddressSpace) Primary(v pagetable.VPN) (Slot, bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return Slot{}, false
	}
	node, slot := a.policy.Place(idx, r.pages, a.nodes)
	return a.slotOf(r, idx, node, slot, 0), true
}

// Resolve returns every readable replica slot of a page, primary first
// and skipping failed and syncing nodes. failover reports that the page's
// primary node is not readable (the head slot, if any, is a non-primary
// replica) — fault handlers use it to count genuine failover fetches.
// ok means "mapped": a mapped page whose every replica is unreachable
// returns ok=true with an EMPTY slot list, so callers must check
// len(slots) and degrade (wait, retry, or surface an error) instead of
// relying on a panic.
func (a *AddressSpace) Resolve(v pagetable.VPN) (slots []Slot, failover, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false, false
	}
	primary, slot := a.policy.Place(idx, r.pages, a.nodes)
	for k := 0; k < a.replicas; k++ {
		s := a.slotOf(r, idx, primary, slot, k)
		if a.state[s.Node] != nodeLive {
			if k == 0 {
				failover = true
			}
			continue
		}
		slots = append(slots, s)
	}
	return slots, failover, true
}

// WriteSlots returns every replica slot of a page that should receive
// write-backs: slots on live nodes plus slots on syncing nodes (a
// recovering node must see new writes while re-replication backfills the
// old ones, or it would come back stale).
func (a *AddressSpace) WriteSlots(v pagetable.VPN) (slots []Slot, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false
	}
	primary, slot := a.policy.Place(idx, r.pages, a.nodes)
	for k := 0; k < a.replicas; k++ {
		s := a.slotOf(r, idx, primary, slot, k)
		if a.state[s.Node] == nodeFailed {
			continue
		}
		slots = append(slots, s)
	}
	return slots, true
}

// AllSlots returns every replica slot of a page regardless of node
// health, primary first — the layout identity re-replication walks when
// backfilling a recovered node.
func (a *AddressSpace) AllSlots(v pagetable.VPN) (slots []Slot, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false
	}
	primary, slot := a.policy.Place(idx, r.pages, a.nodes)
	for k := 0; k < a.replicas; k++ {
		slots = append(slots, a.slotOf(r, idx, primary, slot, k))
	}
	return slots, true
}

// First returns the first readable replica slot of a page — the fetch
// target. ok is false when the page is unmapped or no replica is
// currently readable.
func (a *AddressSpace) First(v pagetable.VPN) (Slot, bool) {
	slots, _, ok := a.Resolve(v)
	if !ok || len(slots) == 0 {
		return Slot{}, false
	}
	return slots[0], true
}

// FailNode marks a memory node as failed: Resolve skips it from then on,
// so fetches fail over to the next live replica and write-backs stop
// reaching it. Panics when i is the last live node — that would strand
// every singly-replicated page.
func (a *AddressSpace) FailNode(i int) {
	a.checkNode(i)
	if a.state[i] == nodeFailed {
		return
	}
	if a.live == 1 && a.state[i] == nodeLive {
		panic("placement: cannot fail the last memory node")
	}
	if a.state[i] == nodeLive {
		a.live--
	}
	a.state[i] = nodeFailed
}

// BeginRecover moves a failed node to the syncing state: write-backs
// start reaching it again (WriteSlots), but reads still avoid it until
// FinishRecover. No-op unless the node is failed.
func (a *AddressSpace) BeginRecover(i int) {
	a.checkNode(i)
	if a.state[i] == nodeFailed {
		a.state[i] = nodeSyncing
	}
}

// FinishRecover promotes a syncing node back to live once its replicas
// have been backfilled. No-op unless the node is syncing.
func (a *AddressSpace) FinishRecover(i int) {
	a.checkNode(i)
	if a.state[i] == nodeSyncing {
		a.state[i] = nodeLive
		a.live++
	}
}

// RecoverNode restores a failed node straight to live — the shortcut for
// callers (tests, manual operation) that have re-replicated out of band
// or accept stale replicas.
func (a *AddressSpace) RecoverNode(i int) {
	a.BeginRecover(i)
	a.FinishRecover(i)
}

// Failed reports whether node i is currently unreadable (failed or still
// syncing).
func (a *AddressSpace) Failed(i int) bool { return a.state[i] != nodeLive }

// LiveNodes returns the number of fully live nodes.
func (a *AddressSpace) LiveNodes() int { return a.live }

func (a *AddressSpace) checkNode(i int) {
	if i < 0 || i >= a.nodes {
		panic(fmt.Sprintf("placement: no such node %d", i))
	}
}
