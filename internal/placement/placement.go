// Package placement is the shared placement substrate of every paging
// system in this repository: it owns the DDC address-space layout —
// virtual-address assignment, the page→(memory node, remote slot)
// mapping, R-way replication, node-failure failover, and live-migration
// forwarding — behind a pluggable Policy. core (DiLOS), fastswap, and
// aifm all resolve remote offsets through an AddressSpace instead of
// hand-rolling their own region bookkeeping, so new placement schemes
// and failure-handling changes are single-package edits.
//
// Layout invariants (property-tested, see DESIGN.md §6):
//
//   - every mapped VPN resolves to exactly one primary slot plus R−1
//     replica slots on pairwise-distinct nodes;
//   - no two pages of a region share a (node, segment, slot) triple;
//   - Resolve never returns a slot on a failed, syncing, or removed
//     node, and failing a node never strands a page (the last serving
//     node cannot be failed); when every replica of a page is
//     unreachable Resolve reports it with an empty slot list, never a
//     panic;
//   - per-node occupancy always equals the number of replica slots the
//     node currently hosts, forwarding entries included.
//
// Node membership is an explicit five-state machine driven through
// SetState (DESIGN.md §10):
//
//	live ──────→ failed ──→ syncing ──→ live
//	  │            ↑  │
//	  └→ draining ─┘  └───→ removed
//	       │  ↑live (cancel)
//	       └──────→ removed
//
// live serves reads and writes; draining still serves both but accepts
// no new regions while the migration engine evacuates it; syncing (a
// recovering node) accepts write-backs but serves no reads until
// re-replication completes; failed serves nothing; removed is terminal.
package placement

import (
	"fmt"
	"sort"

	"dilos/internal/pagetable"
)

// PageSize re-exports the paging granularity.
const PageSize = pagetable.PageSize

// Slot locates one replica copy of a page: the memory node index and the
// byte offset inside that node's registered region.
type Slot struct {
	Node int
	Off  uint64
}

// Config assembles an AddressSpace.
type Config struct {
	// Nodes is the memory-node count (default 1).
	Nodes int
	// Replicas keeps this many copies of every page on distinct nodes
	// (default 1, i.e. no replication). Must not exceed Nodes.
	Replicas int
	// Policy picks the page→node layout (default Striped).
	Policy Policy
	// BaseVA is the first DDC virtual address (default 1 GiB).
	BaseVA uint64
}

// State is a memory node's membership state. The zero value is Live.
type State uint8

const (
	// Live nodes serve reads and writes and join new regions.
	Live State = iota
	// Failed nodes serve nothing (breaker tripped or declared dead).
	Failed
	// Syncing nodes are recovering: they accept write-backs so fresh
	// data reaches them while re-replication backfills the old, but
	// serve no reads until promoted back to Live.
	Syncing
	// Draining nodes still serve reads and writes but join no new
	// regions; the migration engine is evacuating their slots so the
	// node can be Removed.
	Draining
	// Removed nodes have left the pool for good. Terminal.
	Removed

	numStates
)

var stateNames = [numStates]string{"live", "failed", "syncing", "draining", "removed"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// validTransition is the membership state machine. Everything not listed
// is rejected by SetState; same-state is a silent no-op.
var validTransition = [numStates][numStates]bool{
	Live:     {Failed: true, Draining: true},
	Failed:   {Syncing: true, Removed: true},
	Syncing:  {Live: true, Failed: true},
	Draining: {Removed: true, Failed: true, Live: true},
	Removed:  {},
}

// readable reports whether a node in state s serves reads.
func readable(s State) bool { return s == Live || s == Draining }

// writable reports whether a node in state s accepts write-backs.
func writable(s State) bool { return s == Live || s == Draining || s == Syncing }

// migEntry tracks one in-flight replica move: replica k of the page is
// being copied to dst. wrote is set whenever WriteSlots hands the page
// out as a write-back target during the copy — the migration engine must
// then restart the copy (or take the frame's bytes) before flipping, so
// dirty data written mid-copy is never lost.
type migEntry struct {
	k     int
	dst   Slot
	wrote bool
}

// AddressSpace owns the DDC regions of one computing node.
type AddressSpace struct {
	policy   Policy
	nodes    int
	replicas int
	state    []State
	occ      []int64 // replica slots hosted per node (forwarding-aware)
	serving  int     // nodes currently readable (Live or Draining)
	regions  []region
	nextVA   uint64

	// moved is the forwarding table: pages whose replica set no longer
	// matches the policy layout because a migration flipped them. The
	// stored list fully replaces the computed one (same length, primary
	// first).
	moved map[pagetable.VPN][]Slot
	// migrating holds the in-flight moves (copy started, not flipped).
	migrating map[pagetable.VPN]*migEntry

	subs []func(node int, from, to State)
}

// region is one mapped range. members snapshots the node set the region
// was laid out over (policy index → node id), so membership changes
// after Map never remap existing pages — only migration does, through
// the forwarding table.
type region struct {
	baseVPN     pagetable.VPN
	pages       uint64
	members     []int
	remoteBases []uint64 // one backing base per member, parallel to members
	perNode     uint64   // slot capacity per member per replica segment
}

// Region describes one mapped DDC range.
type Region struct {
	Base    uint64
	BaseVPN pagetable.VPN
	Pages   uint64
}

// New creates an empty address space.
func New(cfg Config) *AddressSpace {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		panic("placement: Replicas must not exceed the memory node count")
	}
	if cfg.Policy == nil {
		cfg.Policy = Striped{}
	}
	if cfg.BaseVA == 0 {
		cfg.BaseVA = 1 << 30 // DDC regions start at 1 GiB
	}
	return &AddressSpace{
		policy:   cfg.Policy,
		nodes:    cfg.Nodes,
		replicas: cfg.Replicas,
		state:    make([]State, cfg.Nodes),
		occ:      make([]int64, cfg.Nodes),
		serving:  cfg.Nodes,
		nextVA:   cfg.BaseVA,
	}
}

// Nodes returns the memory-node count, removed nodes included (node ids
// are never reused).
func (a *AddressSpace) Nodes() int { return a.nodes }

// Replicas returns the replication factor.
func (a *AddressSpace) Replicas() int { return a.replicas }

// Policy returns the placement policy in force.
func (a *AddressSpace) Policy() Policy { return a.policy }

// Regions returns the mapped regions in VPN order.
func (a *AddressSpace) Regions() []Region {
	out := make([]Region, len(a.regions))
	for i, r := range a.regions {
		out[i] = Region{Base: uint64(r.baseVPN) * PageSize, BaseVPN: r.baseVPN, Pages: r.pages}
	}
	return out
}

// AddNode grows the pool by one empty Live node and returns its id. The
// node joins regions mapped from now on and becomes a migration
// destination immediately; existing pages move to it only through the
// migration engine (Rebalance). Subscribers observe the join as a
// Removed→Live transition.
func (a *AddressSpace) AddNode() int {
	id := a.nodes
	a.nodes++
	a.state = append(a.state, Live)
	a.occ = append(a.occ, 0)
	a.serving++
	for _, fn := range a.subs {
		fn(id, Removed, Live)
	}
	return id
}

// OnStateChange registers fn to run synchronously on every node state
// transition (AddNode joins appear as Removed→Live). Callbacks fire in
// registration order and must not call back into SetState.
func (a *AddressSpace) OnStateChange(fn func(node int, from, to State)) {
	a.subs = append(a.subs, fn)
}

// State returns node i's membership state.
func (a *AddressSpace) State(i int) State {
	a.checkNode(i)
	return a.state[i]
}

// Occupancy returns the number of replica slots node i currently hosts,
// counting forwarded (migrated-in) pages and discounting migrated-out
// ones. A node is safe to remove exactly when this reaches zero.
func (a *AddressSpace) Occupancy(i int) int64 {
	a.checkNode(i)
	return a.occ[i]
}

// SetState drives node i through the membership state machine,
// validating the transition (see the package diagram) and firing the
// subscriber hooks. Same-state calls are silent no-ops. It rejects:
//
//   - transitions outside the machine (e.g. live→syncing, removed→*);
//   - taking the last serving (readable) node out of service — that
//     would strand every singly-replicated page;
//   - removing a node that still hosts slots (drain it first).
func (a *AddressSpace) SetState(i int, to State) error {
	a.checkNode(i)
	if to >= numStates {
		return fmt.Errorf("placement: no such state %d", int(to))
	}
	from := a.state[i]
	if from == to {
		return nil
	}
	if !validTransition[from][to] {
		return fmt.Errorf("placement: node %d: invalid transition %s → %s", i, from, to)
	}
	if readable(from) && !readable(to) && a.serving == 1 {
		return fmt.Errorf("placement: node %d: cannot go %s: it is the last serving node", i, to)
	}
	if to == Removed && a.occ[i] != 0 {
		return fmt.Errorf("placement: node %d: cannot remove: still hosts %d slots (drain first)", i, a.occ[i])
	}
	if readable(from) && !readable(to) {
		a.serving--
	} else if !readable(from) && readable(to) {
		a.serving++
	}
	a.state[i] = to
	for _, fn := range a.subs {
		fn(i, from, to)
	}
	return nil
}

// Map carves a fresh VA range of `pages` pages and provisions its remote
// backing across the currently Live nodes: alloc is called once per
// member node with the slot count that node must register (covering all
// replica segments) and returns the node-local base offset of the range
// it reserved. The member set is snapshotted into the region, so later
// membership changes never remap existing pages.
func (a *AddressSpace) Map(pages uint64, alloc func(node int, slots uint64) (uint64, error)) (Region, error) {
	if pages == 0 {
		return Region{}, fmt.Errorf("placement: zero-page region")
	}
	var members []int
	for i, st := range a.state {
		if st == Live {
			members = append(members, i)
		}
	}
	if len(members) < a.replicas {
		return Region{}, fmt.Errorf("placement: %d live node(s) cannot host %d replicas", len(members), a.replicas)
	}
	perNode := a.policy.SlotsPerNode(pages, len(members))
	bases := make([]uint64, len(members))
	for mi, node := range members {
		base, err := alloc(node, perNode*uint64(a.replicas))
		if err != nil {
			return Region{}, err
		}
		bases[mi] = base
	}
	base := a.nextVA
	a.nextVA += pages * PageSize
	r := region{baseVPN: pagetable.VPNOf(base), pages: pages, members: members, remoteBases: bases, perNode: perNode}
	a.regions = append(a.regions, r)
	sort.Slice(a.regions, func(i, j int) bool { return a.regions[i].baseVPN < a.regions[j].baseVPN })
	for idx := uint64(0); idx < pages; idx++ {
		primary, _ := a.policy.Place(idx, pages, len(members))
		for k := 0; k < a.replicas; k++ {
			a.occ[members[(primary+k)%len(members)]]++
		}
	}
	return Region{Base: base, BaseVPN: r.baseVPN, Pages: pages}, nil
}

// lookup finds the region containing v.
func (a *AddressSpace) lookup(v pagetable.VPN) (*region, uint64, bool) {
	i := sort.Search(len(a.regions), func(i int) bool { return a.regions[i].baseVPN > v })
	if i == 0 {
		return nil, 0, false
	}
	r := &a.regions[i-1]
	idx := uint64(v - r.baseVPN)
	if idx >= r.pages {
		return nil, 0, false
	}
	return r, idx, true
}

// slotOf computes replica k's slot for page idx of region r: member
// position (primary+k) mod M, segment k, at the page's primary slot
// index.
func (a *AddressSpace) slotOf(r *region, idx uint64, primary int, slot uint64, k int) Slot {
	pos := (primary + k) % len(r.members)
	return Slot{
		Node: r.members[pos],
		Off:  r.remoteBases[pos] + (uint64(k)*r.perNode+slot)*PageSize,
	}
}

// Primary returns the page's primary slot regardless of node health —
// the stable identity used for initial PTE payloads, following the
// forwarding table for migrated pages. Use Resolve for anything that
// touches the wire.
func (a *AddressSpace) Primary(v pagetable.VPN) (Slot, bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return Slot{}, false
	}
	if ov := a.moved[v]; ov != nil {
		return ov[0], true
	}
	primary, slot := a.policy.Place(idx, r.pages, len(r.members))
	return a.slotOf(r, idx, primary, slot, 0), true
}

// Resolve returns every readable replica slot of a page, primary first
// and skipping failed, syncing, and removed nodes; migrated pages
// resolve through the forwarding table. failover reports that the page's
// primary node is not readable (the head slot, if any, is a non-primary
// replica) — fault handlers use it to count genuine failover fetches.
// ok means "mapped": a mapped page whose every replica is unreachable
// returns ok=true with an EMPTY slot list, so callers must check
// len(slots) and degrade (wait, retry, or surface an error) instead of
// relying on a panic.
func (a *AddressSpace) Resolve(v pagetable.VPN) (slots []Slot, failover, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false, false
	}
	ov := a.moved[v]
	var primary int
	var slot uint64
	if ov == nil {
		primary, slot = a.policy.Place(idx, r.pages, len(r.members))
	}
	for k := 0; k < a.replicas; k++ {
		var s Slot
		if ov != nil {
			s = ov[k]
		} else {
			s = a.slotOf(r, idx, primary, slot, k)
		}
		if !readable(a.state[s.Node]) {
			if k == 0 {
				failover = true
			}
			continue
		}
		slots = append(slots, s)
	}
	return slots, failover, true
}

// WriteSlots returns every replica slot of a page that should receive
// write-backs: slots on live and draining nodes plus slots on syncing
// nodes (a recovering node must see new writes while re-replication
// backfills the old ones, or it would come back stale). Migrated pages
// follow the forwarding table. If the page has a copy in flight, the
// call also flags the move as written-during-copy, forcing the migration
// engine to restart from fresh bytes before it flips — write-backs keep
// landing in the old slots and are never lost.
func (a *AddressSpace) WriteSlots(v pagetable.VPN) (slots []Slot, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false
	}
	if e := a.migrating[v]; e != nil {
		e.wrote = true
	}
	ov := a.moved[v]
	var primary int
	var slot uint64
	if ov == nil {
		primary, slot = a.policy.Place(idx, r.pages, len(r.members))
	}
	for k := 0; k < a.replicas; k++ {
		var s Slot
		if ov != nil {
			s = ov[k]
		} else {
			s = a.slotOf(r, idx, primary, slot, k)
		}
		if !writable(a.state[s.Node]) {
			continue
		}
		slots = append(slots, s)
	}
	return slots, true
}

// AllSlots returns every replica slot of a page regardless of node
// health, primary first and forwarding-aware — the layout identity
// re-replication and the migration engine walk.
func (a *AddressSpace) AllSlots(v pagetable.VPN) (slots []Slot, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false
	}
	if ov := a.moved[v]; ov != nil {
		return ov, true
	}
	primary, slot := a.policy.Place(idx, r.pages, len(r.members))
	for k := 0; k < a.replicas; k++ {
		slots = append(slots, a.slotOf(r, idx, primary, slot, k))
	}
	return slots, true
}

// First returns the first readable replica slot of a page — the fetch
// target. ok is false when the page is unmapped or no replica is
// currently readable.
func (a *AddressSpace) First(v pagetable.VPN) (Slot, bool) {
	slots, _, ok := a.Resolve(v)
	if !ok || len(slots) == 0 {
		return Slot{}, false
	}
	return slots[0], true
}

// BeginMigrate starts moving replica k of page v to dst: reads keep
// resolving to the old slot, write-backs keep landing there too (and
// flag the move, see WriteSlots), and CompleteMigrate flips the page
// atomically once the copy is done. The destination must be a Live node
// that hosts no other replica of the page.
func (a *AddressSpace) BeginMigrate(v pagetable.VPN, k int, dst Slot) error {
	a.checkNode(dst.Node)
	if a.state[dst.Node] != Live {
		return fmt.Errorf("placement: migrate dst node %d is %s, want live", dst.Node, a.state[dst.Node])
	}
	if a.migrating[v] != nil {
		return fmt.Errorf("placement: page %#x is already migrating", uint64(v))
	}
	slots, ok := a.AllSlots(v)
	if !ok {
		return fmt.Errorf("placement: page %#x is not mapped", uint64(v))
	}
	if k < 0 || k >= len(slots) {
		return fmt.Errorf("placement: replica %d out of range (R=%d)", k, len(slots))
	}
	for j, s := range slots {
		if s.Node == dst.Node {
			if j == k {
				return fmt.Errorf("placement: page %#x replica %d already lives on node %d", uint64(v), k, dst.Node)
			}
			return fmt.Errorf("placement: node %d already hosts replica %d of page %#x", dst.Node, j, uint64(v))
		}
	}
	if a.migrating == nil {
		a.migrating = make(map[pagetable.VPN]*migEntry)
	}
	a.migrating[v] = &migEntry{k: k, dst: dst}
	return nil
}

// Migrating returns the in-flight destination of page v's pending move.
func (a *AddressSpace) Migrating(v pagetable.VPN) (dst Slot, k int, ok bool) {
	e := a.migrating[v]
	if e == nil {
		return Slot{}, 0, false
	}
	return e.dst, e.k, true
}

// MigrationWrote reports whether a write-back targeted page v since the
// copy round last reset the flag — the copy the engine holds may be
// stale and must be redone.
func (a *AddressSpace) MigrationWrote(v pagetable.VPN) bool {
	e := a.migrating[v]
	return e != nil && e.wrote
}

// ResetMigrationWrote clears the written-during-copy flag; the engine
// calls it right before (re)issuing the copy read.
func (a *AddressSpace) ResetMigrationWrote(v pagetable.VPN) {
	if e := a.migrating[v]; e != nil {
		e.wrote = false
	}
}

// CompleteMigrate flips page v's replica set to the migration
// destination and returns the vacated slot (the engine recycles it).
// The flip installs a forwarding entry, moves the occupancy count, and
// is atomic from the simulation's point of view — the caller must not
// have yielded since it validated the copy.
func (a *AddressSpace) CompleteMigrate(v pagetable.VPN) (Slot, error) {
	e := a.migrating[v]
	if e == nil {
		return Slot{}, fmt.Errorf("placement: page %#x is not migrating", uint64(v))
	}
	slots, ok := a.AllSlots(v)
	if !ok {
		return Slot{}, fmt.Errorf("placement: page %#x is not mapped", uint64(v))
	}
	old := slots[e.k]
	ns := make([]Slot, len(slots))
	copy(ns, slots)
	ns[e.k] = e.dst
	if a.moved == nil {
		a.moved = make(map[pagetable.VPN][]Slot)
	}
	a.moved[v] = ns
	a.occ[old.Node]--
	a.occ[e.dst.Node]++
	delete(a.migrating, v)
	return old, nil
}

// AbortMigrate cancels page v's pending move, returning the reserved
// destination slot so the engine can recycle it. ok is false when no
// move was in flight.
func (a *AddressSpace) AbortMigrate(v pagetable.VPN) (dst Slot, ok bool) {
	e := a.migrating[v]
	if e == nil {
		return Slot{}, false
	}
	delete(a.migrating, v)
	return e.dst, true
}

// MigrationsInFlight returns the number of pages mid-copy.
func (a *AddressSpace) MigrationsInFlight() int { return len(a.migrating) }

// Forwarded returns the number of pages resolving through the
// forwarding table (flipped at least once).
func (a *AddressSpace) Forwarded() int { return len(a.moved) }

// Failed reports whether node i is currently unreadable (failed,
// syncing, or removed). Draining nodes still serve reads and are not
// "failed".
func (a *AddressSpace) Failed(i int) bool { return !readable(a.state[i]) }

// LiveNodes returns the number of serving (readable) nodes: Live plus
// Draining.
func (a *AddressSpace) LiveNodes() int { return a.serving }

func (a *AddressSpace) checkNode(i int) {
	if i < 0 || i >= a.nodes {
		panic(fmt.Sprintf("placement: no such node %d", i))
	}
}
