// Package placement is the shared placement substrate of every paging
// system in this repository: it owns the DDC address-space layout —
// virtual-address assignment, the page→(memory node, remote slot)
// mapping, R-way replication, and node-failure failover — behind a
// pluggable Policy. core (DiLOS), fastswap, and aifm all resolve remote
// offsets through an AddressSpace instead of hand-rolling their own
// region bookkeeping, so new placement schemes and failure-handling
// changes are single-package edits.
//
// Layout invariants (property-tested, see DESIGN.md §6):
//
//   - every mapped VPN resolves to exactly one primary slot plus R−1
//     replica slots on pairwise-distinct nodes;
//   - no two pages of a region share a (node, segment, slot) triple;
//   - Resolve never returns a slot on a failed node, and failing a node
//     never strands a page (the last live replica cannot be failed).
package placement

import (
	"fmt"
	"sort"

	"dilos/internal/pagetable"
)

// PageSize re-exports the paging granularity.
const PageSize = pagetable.PageSize

// Slot locates one replica copy of a page: the memory node index and the
// byte offset inside that node's registered region.
type Slot struct {
	Node int
	Off  uint64
}

// Config assembles an AddressSpace.
type Config struct {
	// Nodes is the memory-node count (default 1).
	Nodes int
	// Replicas keeps this many copies of every page on distinct nodes
	// (default 1, i.e. no replication). Must not exceed Nodes.
	Replicas int
	// Policy picks the page→node layout (default Striped).
	Policy Policy
	// BaseVA is the first DDC virtual address (default 1 GiB).
	BaseVA uint64
}

// AddressSpace owns the DDC regions of one computing node.
type AddressSpace struct {
	policy   Policy
	nodes    int
	replicas int
	failed   []bool
	live     int
	regions  []region
	nextVA   uint64
}

type region struct {
	baseVPN     pagetable.VPN
	pages       uint64
	remoteBases []uint64 // one backing base per memory node
	perNode     uint64   // slot capacity per node per replica segment
}

// Region describes one mapped DDC range.
type Region struct {
	Base    uint64
	BaseVPN pagetable.VPN
	Pages   uint64
}

// New creates an empty address space.
func New(cfg Config) *AddressSpace {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		panic("placement: Replicas must not exceed the memory node count")
	}
	if cfg.Policy == nil {
		cfg.Policy = Striped{}
	}
	if cfg.BaseVA == 0 {
		cfg.BaseVA = 1 << 30 // DDC regions start at 1 GiB
	}
	return &AddressSpace{
		policy:   cfg.Policy,
		nodes:    cfg.Nodes,
		replicas: cfg.Replicas,
		failed:   make([]bool, cfg.Nodes),
		live:     cfg.Nodes,
		nextVA:   cfg.BaseVA,
	}
}

// Nodes returns the memory-node count.
func (a *AddressSpace) Nodes() int { return a.nodes }

// Replicas returns the replication factor.
func (a *AddressSpace) Replicas() int { return a.replicas }

// Policy returns the placement policy in force.
func (a *AddressSpace) Policy() Policy { return a.policy }

// Regions returns the mapped regions in VPN order.
func (a *AddressSpace) Regions() []Region {
	out := make([]Region, len(a.regions))
	for i, r := range a.regions {
		out[i] = Region{Base: uint64(r.baseVPN) * PageSize, BaseVPN: r.baseVPN, Pages: r.pages}
	}
	return out
}

// Map carves a fresh VA range of `pages` pages and provisions its remote
// backing: alloc is called once per memory node with the slot count that
// node must register (covering all replica segments) and returns the
// node-local base offset of the range it reserved.
func (a *AddressSpace) Map(pages uint64, alloc func(node int, slots uint64) (uint64, error)) (Region, error) {
	if pages == 0 {
		return Region{}, fmt.Errorf("placement: zero-page region")
	}
	perNode := a.policy.SlotsPerNode(pages, a.nodes)
	bases := make([]uint64, a.nodes)
	for i := range bases {
		base, err := alloc(i, perNode*uint64(a.replicas))
		if err != nil {
			return Region{}, err
		}
		bases[i] = base
	}
	base := a.nextVA
	a.nextVA += pages * PageSize
	r := region{baseVPN: pagetable.VPNOf(base), pages: pages, remoteBases: bases, perNode: perNode}
	a.regions = append(a.regions, r)
	sort.Slice(a.regions, func(i, j int) bool { return a.regions[i].baseVPN < a.regions[j].baseVPN })
	return Region{Base: base, BaseVPN: r.baseVPN, Pages: pages}, nil
}

// lookup finds the region containing v.
func (a *AddressSpace) lookup(v pagetable.VPN) (*region, uint64, bool) {
	i := sort.Search(len(a.regions), func(i int) bool { return a.regions[i].baseVPN > v })
	if i == 0 {
		return nil, 0, false
	}
	r := &a.regions[i-1]
	idx := uint64(v - r.baseVPN)
	if idx >= r.pages {
		return nil, 0, false
	}
	return r, idx, true
}

// slotOf computes replica k's slot for page idx of region r: node
// (primary+k) mod N, segment k, at the page's primary slot index.
func (a *AddressSpace) slotOf(r *region, idx uint64, primary int, slot uint64, k int) Slot {
	node := (primary + k) % a.nodes
	return Slot{
		Node: node,
		Off:  r.remoteBases[node] + (uint64(k)*r.perNode+slot)*PageSize,
	}
}

// Primary returns the page's primary slot regardless of node health —
// the stable identity used for initial PTE payloads. Use Resolve for
// anything that touches the wire.
func (a *AddressSpace) Primary(v pagetable.VPN) (Slot, bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return Slot{}, false
	}
	node, slot := a.policy.Place(idx, r.pages, a.nodes)
	return a.slotOf(r, idx, node, slot, 0), true
}

// Resolve returns every live replica slot of a page, primary first and
// skipping failed nodes. failover reports that the page's primary node
// is down (the head slot is a non-primary replica) — fault handlers use
// it to count genuine failover fetches. Panics if every replica of a
// mapped page has failed, which FailNode makes unreachable.
func (a *AddressSpace) Resolve(v pagetable.VPN) (slots []Slot, failover, ok bool) {
	r, idx, ok := a.lookup(v)
	if !ok {
		return nil, false, false
	}
	primary, slot := a.policy.Place(idx, r.pages, a.nodes)
	for k := 0; k < a.replicas; k++ {
		s := a.slotOf(r, idx, primary, slot, k)
		if a.failed[s.Node] {
			if k == 0 {
				failover = true
			}
			continue
		}
		slots = append(slots, s)
	}
	if len(slots) == 0 {
		panic(fmt.Sprintf("placement: every replica of vpn %d has failed", v))
	}
	return slots, failover, true
}

// First returns the first live replica slot of a page — the fetch
// target.
func (a *AddressSpace) First(v pagetable.VPN) (Slot, bool) {
	slots, _, ok := a.Resolve(v)
	if !ok {
		return Slot{}, false
	}
	return slots[0], true
}

// FailNode marks a memory node as failed: Resolve skips it from then on,
// so fetches fail over to the next live replica and write-backs stop
// reaching it. Panics when i is the last live node — that would strand
// every singly-replicated page.
func (a *AddressSpace) FailNode(i int) {
	if i < 0 || i >= a.nodes {
		panic(fmt.Sprintf("placement: no such node %d", i))
	}
	if a.failed[i] {
		return
	}
	if a.live == 1 {
		panic("placement: cannot fail the last memory node")
	}
	a.failed[i] = true
	a.live--
}

// Failed reports whether node i has been failed.
func (a *AddressSpace) Failed(i int) bool { return a.failed[i] }
