package placement

import (
	"fmt"
)

// Policy decides where the pages of a DDC region live: it maps a
// region-relative page index onto a primary memory node and a per-node
// slot index. Implementations must be bijective per node — two pages of
// the same region must never share a (node, slot) pair — and every slot
// index must stay below SlotsPerNode(pages, nodes), which is the backing
// capacity the AddressSpace provisions on each node (per replica segment).
//
// Replica placement is derived, not policy-specific: replica k of a page
// lives on node (primary+k) mod nodes in that node's k-th slot segment,
// reusing the page's primary slot index. Because primary slots are unique
// per node, every replica segment inherits collision-freedom.
type Policy interface {
	// Name is the policy's CLI-facing identifier.
	Name() string
	// Place returns the primary node and per-node slot of page idx in a
	// region of `pages` pages spread over `nodes` memory nodes.
	Place(idx, pages uint64, nodes int) (node int, slot uint64)
	// SlotsPerNode is the per-node slot capacity a region of `pages`
	// pages needs under this policy.
	SlotsPerNode(pages uint64, nodes int) uint64
}

// Striped is page-round-robin striping — the layout the multi-node
// extension shipped with (§5.1): page i lives on node i mod N at slot
// i div N. Consecutive pages hit different nodes, so sequential scans
// aggregate the bandwidth of every link.
type Striped struct{}

// Name implements Policy.
func (Striped) Name() string { return "striped" }

// Place implements Policy.
func (Striped) Place(idx, pages uint64, nodes int) (int, uint64) {
	n := uint64(nodes)
	return int(idx % n), idx / n
}

// SlotsPerNode implements Policy.
func (Striped) SlotsPerNode(pages uint64, nodes int) uint64 {
	n := uint64(nodes)
	return (pages + n - 1) / n
}

// Blocked is contiguous-block placement: the region is split into N
// equal runs and each run lives whole on one node. Sequential scans see
// one link at a time, but each page's neighbours share its node — the
// layout object stores and block devices favour for locality.
type Blocked struct{}

// Name implements Policy.
func (Blocked) Name() string { return "blocked" }

// Place implements Policy.
func (Blocked) Place(idx, pages uint64, nodes int) (int, uint64) {
	per := Blocked{}.SlotsPerNode(pages, nodes)
	node := int(idx / per)
	if node >= nodes { // only when pages == 0 edge cases; clamp defensively
		node = nodes - 1
	}
	return node, idx % per
}

// SlotsPerNode implements Policy.
func (Blocked) SlotsPerNode(pages uint64, nodes int) uint64 {
	n := uint64(nodes)
	return (pages + n - 1) / n
}

// Hashed spreads pages pseudo-randomly: a keyed bijective permutation of
// the page index is computed, then striped. Bijectivity (a Feistel
// network with cycle-walking, so the permutation is exact on [0,pages))
// keeps slots collision-free while decorrelating node assignment from
// access patterns — strided scans cannot gang up on one node.
type Hashed struct {
	// Seed keys the permutation. The zero value is a valid key.
	Seed uint64
}

// Name implements Policy.
func (Hashed) Name() string { return "hashed" }

// Place implements Policy.
func (h Hashed) Place(idx, pages uint64, nodes int) (int, uint64) {
	p := h.permute(idx, pages)
	n := uint64(nodes)
	return int(p % n), p / n
}

// SlotsPerNode implements Policy.
func (Hashed) SlotsPerNode(pages uint64, nodes int) uint64 {
	n := uint64(nodes)
	return (pages + n - 1) / n
}

// permute applies a bijective permutation of [0, pages) to idx: a
// four-round Feistel network over the smallest even-bit power-of-two
// domain covering pages, cycle-walked back into range. Cycle-walking
// terminates because the Feistel network is itself a bijection of the
// covering domain.
func (h Hashed) permute(idx, pages uint64) uint64 {
	if pages <= 1 {
		return idx
	}
	half := uint(1)
	for uint64(1)<<(2*half) < pages {
		half++
	}
	mask := uint64(1)<<half - 1
	v := idx
	for {
		l, r := v>>half, v&mask
		for round := uint64(0); round < 4; round++ {
			l, r = r, l^(feistelRound(r, round^h.Seed)&mask)
		}
		v = l<<half | r
		if v < pages {
			return v
		}
	}
}

// feistelRound is the keyed round function (an xorshift-multiply mix —
// only diffusion matters, not cryptographic strength).
func feistelRound(v, key uint64) uint64 {
	v ^= key * 0x9e3779b97f4a7c15
	v ^= v >> 23
	v *= 0x2545f4914f6cdd1d
	v ^= v >> 29
	return v
}

// Policies lists the selectable placement policies in CLI order.
func Policies() []Policy {
	return []Policy{Striped{}, Blocked{}, Hashed{}}
}

// ParsePolicy resolves a CLI policy name.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("placement: unknown policy %q (have striped, blocked, hashed)", name)
}
