// The layerwise KV guide: the §4.3 app-aware module for the inference
// shape. Decode's access pattern is perfectly known one layer ahead —
// while layer L computes, layer L+1's pages are certain to be read next —
// so the guide needs no subpage reads or pointer chasing: the phase
// driver reports each layer transition and the guide turns it into a
// typed prefetch of the next layer's live bytes on its own daemon,
// overlapping the fetch with the layer's compute window.
package kvcache

import (
	"dilos/internal/core"
	"dilos/internal/guide"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// Guide implements guide.Guide for the KV cache. Create it with NewGuide
// before System.Start; the phase driver passes it to Prefill/DecodeStep,
// which report layer transitions through onLayer.
type Guide struct {
	coreID int
	host   guide.Host

	queue []guide.Request
	work  sim.Waiter

	// PrefetchReqs counts layer-transition prefetches issued;
	// PrefetchPages the pages they covered. Registered as kvcache.guide_*.
	PrefetchReqs  stats.Counter
	PrefetchPages stats.Counter
}

// NewGuide builds the layerwise guide, attaches it to the system, and
// registers its kvcache.guide_* counters. Must run before sys.Start.
func NewGuide(sys *core.System) *Guide {
	g := &Guide{
		PrefetchReqs:  stats.Counter{Name: "kvcache.guide_prefetch_reqs"},
		PrefetchPages: stats.Counter{Name: "kvcache.guide_prefetch_pages"},
	}
	sys.Registry().RegisterCounter(&g.PrefetchReqs)
	sys.Registry().RegisterCounter(&g.PrefetchPages)
	sys.AttachGuide(g)
	return g
}

// Name implements guide.Guide.
func (g *Guide) Name() string { return "kv-layerwise" }

// Start implements guide.Guide: it spawns the prefetch daemon.
func (g *Guide) Start(h guide.Host) {
	g.host = h
	h.GoDaemon("guide.kv-layerwise", g.daemon)
}

// OnFault implements guide.Guide. The KV guide is hook-driven — layer
// transitions carry all the information, faults add nothing.
func (g *Guide) OnFault(coreID int, vpn pagetable.VPN) {}

// lookahead is how many layers ahead the guide runs. One layer ahead is
// the sweet spot: a deeper window holds more fetched-but-unread pages
// pinned, and at small cache ratios that extra in-flight inventory
// starves the allocation headroom prefetch itself draws from.
const lookahead = 1

// onLayer is the hook the cache calls as a sequence enters layer `layer`
// touching `tokens` tokens: enqueue prefetches of the UPCOMING layers'
// live bytes for the daemon to issue while this layer computes. Entering
// layer 0 primes the whole lookahead window; after that each layer tops
// the window up by one.
func (g *Guide) onLayer(sp *core.DDCProc, c *Cache, s *Sequence, layer, tokens int) {
	if tokens <= 0 {
		return
	}
	first, last := layer+lookahead, layer+lookahead
	if layer == 0 {
		first = 1
	}
	queued := false
	for next := first; next <= last; next++ {
		if next >= c.P.Layers {
			break
		}
		g.queue = append(g.queue, guide.Request{
			Addr:  c.LayerAddr(s, next),
			Bytes: uint64(tokens) * c.P.BytesPerToken,
		})
		queued = true
	}
	if queued {
		g.work.Wake(sp.Now())
	}
}

// daemon drains the layer-transition queue, issuing one typed prefetch
// per entry on the guide's core.
func (g *Guide) daemon(p *sim.Proc) {
	for {
		if len(g.queue) == 0 {
			g.work.Wait(p)
			continue
		}
		req := g.queue[0]
		g.queue = g.queue[1:]
		first := pagetable.VPNOf(req.Addr)
		last := pagetable.VPNOf(req.Addr + req.Bytes - 1)
		g.PrefetchReqs.Inc()
		g.PrefetchPages.Add(int64(last - first + 1))
		g.host.Prefetch(p, g.coreID, req)
	}
}
