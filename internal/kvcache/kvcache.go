// Package kvcache is a KV-cache tiering workload over the DiLOS pool: the
// inference-serving memory shape (vLLM/FlexGen-style) expressed through
// the unmodified paging stack. Each sequence owns one append-only region
// per transformer layer; prefill writes every layer's KV and pushes the
// completed layer to the pool through the batched write path
// (core.PageOutRange → Coalesce/Submit), decode walks the layers reading
// every past token's KV, and the layerwise guide prefetches the *next*
// layer's pages while the current layer computes — the §4.3 app-aware
// guide applied to a workload whose access pattern is perfectly known one
// layer ahead.
//
// Sequence lifetime drives eviction: Finish returns a sequence's frames
// to the pool en masse (core.DiscardRange — dead KV needs no write-back)
// and recycles its regions through a free list; SpillEarlyLayers pushes a
// long-lived sequence's cold early layers out first, since decode touches
// layer 0 a full model-depth before it is needed again.
package kvcache

import (
	"encoding/binary"
	"fmt"

	"dilos/internal/core"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// Params sizes the cache and its compute model.
type Params struct {
	// Layers is the transformer depth: one region per sequence per layer.
	Layers int
	// BytesPerToken is the KV footprint of one token in one layer.
	BytesPerToken uint64
	// MaxTokens bounds a sequence's length; it sizes the region.
	MaxTokens int
	// PrefillCostPerToken is compute per token per layer during prefill.
	PrefillCostPerToken sim.Time
	// DecodeCostPerLayer is the attention+MLP compute per layer per decode
	// step — the window the guide hides the next layer's fetches behind.
	DecodeCostPerLayer sim.Time
	// FlushPrefill pushes each completed prefill layer to the pool through
	// the batched write-back path (the tiering shape: KV streams out as it
	// is produced, DRAM holds only the layers in flight).
	FlushPrefill bool
}

// DefaultParams returns the committed model: 8 layers, 256 B/token/layer,
// 256-token regions (16 pages each), 15 µs/layer decode compute.
func DefaultParams() Params {
	return Params{
		Layers:              8,
		BytesPerToken:       256,
		MaxTokens:           256,
		PrefillCostPerToken: 150 * sim.Nanosecond,
		DecodeCostPerLayer:  15 * sim.Microsecond,
		FlushPrefill:        true,
	}
}

// RegionBytes is the size of one sequence×layer region.
func (p Params) RegionBytes() uint64 { return p.BytesPerToken * uint64(p.MaxTokens) }

// RegionPages is the region size in pages.
func (p Params) RegionPages() uint64 {
	return (p.RegionBytes() + pagetable.PageSize - 1) / pagetable.PageSize
}

// Sequence is one live request: Layers regions of append-only KV.
type Sequence struct {
	ID      int
	regions []int // region index per layer
	tokens  int
	done    bool
}

// Tokens returns how many tokens the sequence holds.
func (s *Sequence) Tokens() int { return s.tokens }

// Cache manages the region pool and the sequences over it.
type Cache struct {
	P    Params
	sys  *core.System
	base uint64

	free    []int // region free list, LIFO so recycling reuses hot VA
	regions int
	nextID  int
	live    int

	// Stats, registered under kvcache.* in the system registry.
	SeqsStarted  stats.Counter
	SeqsFinished stats.Counter
	Appends      stats.Counter
	DecodeReads  stats.Counter
	BadReads     stats.Counter
	FlushedPages stats.Counter
	SpilledPages stats.Counter
	FreedPages   stats.Counter
	RegionsInUse stats.Gauge
	DecodeStepH  *stats.Histogram
}

// New maps capSeqs×Layers regions of disaggregated memory and registers
// the kvcache.* stat families with the system registry (they ride the
// same /metrics and snapshot plumbing as the kernel's own counters).
// Regions are handed out in a bit-reversed permutation of VA order, the
// deterministic stand-in for allocator reuse: consecutive layers of one
// sequence land far apart, so nothing about the layout is sequential and
// only semantic (guide) knowledge predicts the next layer's pages.
func New(sys *core.System, p Params, capSeqs int) (*Cache, error) {
	if p.Layers <= 0 || p.BytesPerToken == 0 || p.MaxTokens <= 0 {
		return nil, fmt.Errorf("kvcache: Layers, BytesPerToken, MaxTokens must be positive")
	}
	if capSeqs <= 0 {
		return nil, fmt.Errorf("kvcache: need at least one sequence slot")
	}
	regions := capSeqs * p.Layers
	base, err := sys.MmapDDC(uint64(regions) * p.RegionPages())
	if err != nil {
		return nil, err
	}
	c := &Cache{P: p, sys: sys, base: base, regions: regions}
	c.free = bitReversed(regions)
	c.SeqsStarted = stats.Counter{Name: "kvcache.seqs_started"}
	c.SeqsFinished = stats.Counter{Name: "kvcache.seqs_finished"}
	c.Appends = stats.Counter{Name: "kvcache.appends"}
	c.DecodeReads = stats.Counter{Name: "kvcache.decode_reads"}
	c.BadReads = stats.Counter{Name: "kvcache.bad_reads"}
	c.FlushedPages = stats.Counter{Name: "kvcache.flushed_pages"}
	c.SpilledPages = stats.Counter{Name: "kvcache.spilled_pages"}
	c.FreedPages = stats.Counter{Name: "kvcache.freed_pages"}
	c.RegionsInUse = stats.Gauge{Name: "kvcache.regions_in_use"}
	c.DecodeStepH = stats.NewHistogram("kvcache.decode_step")
	r := sys.Registry()
	r.RegisterCounter(&c.SeqsStarted)
	r.RegisterCounter(&c.SeqsFinished)
	r.RegisterCounter(&c.Appends)
	r.RegisterCounter(&c.DecodeReads)
	r.RegisterCounter(&c.BadReads)
	r.RegisterCounter(&c.FlushedPages)
	r.RegisterCounter(&c.SpilledPages)
	r.RegisterCounter(&c.FreedPages)
	r.RegisterGauge(&c.RegionsInUse)
	r.RegisterHistogram(c.DecodeStepH)
	sys.AddStatusSection(c.appendStatus)
	return c, nil
}

// bitReversed returns 0..n-1 in bit-reversed order over the smallest
// covering power of two (skipping values ≥ n): a deterministic maximal
// shuffle with no RNG state to replay.
func bitReversed(n int) []int {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	out := make([]int, 0, n)
	for i := 0; i < 1<<bits; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		if r < n {
			out = append(out, r)
		}
	}
	return out
}

// FreeRegions returns how many regions the free list holds.
func (c *Cache) FreeRegions() int { return len(c.free) }

// Live returns the number of unfinished sequences.
func (c *Cache) Live() int { return c.live }

// regionAddr returns the base address of region idx.
func (c *Cache) regionAddr(idx int) uint64 {
	return c.base + uint64(idx)*c.P.RegionPages()*pagetable.PageSize
}

// LayerAddr returns the base address of a sequence's layer region.
func (c *Cache) LayerAddr(s *Sequence, layer int) uint64 {
	return c.regionAddr(s.regions[layer])
}

// layerLiveBytes is how much of a layer region holds real KV.
func (c *Cache) layerLiveBytes(s *Sequence) uint64 {
	return uint64(s.tokens) * c.P.BytesPerToken
}

// Begin allocates a sequence: one region per layer off the free list.
func (c *Cache) Begin() (*Sequence, error) {
	if len(c.free) < c.P.Layers {
		return nil, fmt.Errorf("kvcache: out of regions (%d free, need %d)", len(c.free), c.P.Layers)
	}
	s := &Sequence{ID: c.nextID, regions: make([]int, c.P.Layers)}
	c.nextID++
	for l := 0; l < c.P.Layers; l++ {
		s.regions[l] = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	}
	c.live++
	c.SeqsStarted.Inc()
	c.RegionsInUse.Set(int64(c.regions - len(c.free)))
	return s, nil
}

// tokenPattern is the deterministic KV content of (seq, layer, token):
// written by appends, checked by decode reads.
func tokenPattern(seqID, layer, token int) uint64 {
	return uint64(seqID)<<40 ^ uint64(layer)<<20 ^ uint64(token) ^ 0x9e3779b97f4a7c15
}

// writeToken writes one token's KV into one layer region.
func (c *Cache) writeToken(sp *core.DDCProc, s *Sequence, layer, token int) {
	addr := c.LayerAddr(s, layer) + uint64(token)*c.P.BytesPerToken
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], tokenPattern(s.ID, layer, token))
	// One store per 64 B line of the token's KV: the first carries the
	// pattern, the rest fill the footprint.
	for off := uint64(0); off < c.P.BytesPerToken; off += 64 {
		sp.Store(addr+off, buf[:])
	}
	c.Appends.Inc()
}

// Prefill runs the prompt phase: layer by layer, write every token's KV,
// pay the layer's compute, and (with FlushPrefill) push the completed
// layer to the pool through the batched write path. The per-layer guide
// notification lets the layerwise guide warm the next layer even during
// prefill re-runs over recycled regions.
func (c *Cache) Prefill(sp *core.DDCProc, s *Sequence, tokens int, g *Guide) error {
	if s.done {
		return fmt.Errorf("kvcache: Prefill on finished sequence %d", s.ID)
	}
	if tokens > c.P.MaxTokens {
		return fmt.Errorf("kvcache: %d tokens exceed the %d-token region", tokens, c.P.MaxTokens)
	}
	for l := 0; l < c.P.Layers; l++ {
		if g != nil {
			g.onLayer(sp, c, s, l, tokens)
		}
		for t := 0; t < tokens; t++ {
			c.writeToken(sp, s, l, t)
		}
		sp.Compute(c.P.PrefillCostPerToken * sim.Time(tokens))
		if c.P.FlushPrefill {
			n := c.sys.PageOutRange(sp.Proc(), sp.CoreID(), c.LayerAddr(s, l), uint64(tokens)*c.P.BytesPerToken)
			c.FlushedPages.Add(int64(n))
		}
	}
	s.tokens = tokens
	return nil
}

// DecodeStep generates one token: per layer, notify the guide (which
// prefetches the NEXT layer's pages while this layer computes), read
// every past token's KV, pay the layer compute, then append the new
// token's KV to every layer. Returns the step's virtual-time latency —
// the per-token decode latency (TPOT) the experiments gate on.
func (c *Cache) DecodeStep(sp *core.DDCProc, s *Sequence, g *Guide) (sim.Time, error) {
	if s.done {
		return 0, fmt.Errorf("kvcache: DecodeStep on finished sequence %d", s.ID)
	}
	if s.tokens >= c.P.MaxTokens {
		return 0, fmt.Errorf("kvcache: sequence %d is full (%d tokens)", s.ID, s.tokens)
	}
	t0 := sp.Now()
	for l := 0; l < c.P.Layers; l++ {
		if g != nil {
			g.onLayer(sp, c, s, l, s.tokens+1)
		}
		base := c.LayerAddr(s, l)
		for t := 0; t < s.tokens; t++ {
			got := sp.LoadU64(base + uint64(t)*c.P.BytesPerToken)
			c.DecodeReads.Inc()
			if got != tokenPattern(s.ID, l, t) {
				c.BadReads.Inc()
			}
		}
		sp.Compute(c.P.DecodeCostPerLayer)
	}
	for l := 0; l < c.P.Layers; l++ {
		c.writeToken(sp, s, l, s.tokens)
	}
	s.tokens++
	d := sp.Now() - t0
	c.DecodeStepH.Record(d)
	return d, nil
}

// Finish ends a sequence: its frames return to the pool en masse with no
// write-back (the KV is dead), and its regions go back on the free list
// for the next Begin to recycle.
func (c *Cache) Finish(sp *core.DDCProc, s *Sequence) int {
	if s.done {
		return 0
	}
	s.done = true
	freed := 0
	for l := 0; l < c.P.Layers; l++ {
		freed += c.sys.DiscardRange(sp.Proc(), c.LayerAddr(s, l), c.P.RegionPages()*pagetable.PageSize)
		c.free = append(c.free, s.regions[l])
	}
	c.live--
	c.SeqsFinished.Inc()
	c.FreedPages.Add(int64(freed))
	c.RegionsInUse.Set(int64(c.regions - len(c.free)))
	return freed
}

// SpillEarlyLayers pushes a long-lived sequence's cold early layers to
// the pool, keeping the last keepLayers resident: decode touches layer 0
// a full model-depth of compute before it needs it again, so early
// layers are always the coldest KV in DRAM. Returns pages spilled.
func (c *Cache) SpillEarlyLayers(sp *core.DDCProc, s *Sequence, keepLayers int) int {
	if s.done {
		return 0
	}
	spill := c.P.Layers - keepLayers
	if spill <= 0 {
		return 0
	}
	n := 0
	for l := 0; l < spill; l++ {
		n += c.sys.PageOutRange(sp.Proc(), sp.CoreID(), c.LayerAddr(s, l), c.layerLiveBytes(s))
	}
	c.SpilledPages.Add(int64(n))
	return n
}

// appendStatus renders the kvcache /statusz section (deterministic:
// integer fields, fixed order).
func (c *Cache) appendStatus(dst []byte, now sim.Time) []byte {
	dst = append(dst, "kvcache live="...)
	dst = appendInt(dst, int64(c.live))
	dst = append(dst, " regions_free="...)
	dst = appendInt(dst, int64(len(c.free)))
	dst = append(dst, " appends="...)
	dst = appendInt(dst, c.Appends.N)
	dst = append(dst, " flushed="...)
	dst = appendInt(dst, c.FlushedPages.N)
	dst = append(dst, " spilled="...)
	dst = appendInt(dst, c.SpilledPages.N)
	dst = append(dst, " freed="...)
	dst = appendInt(dst, c.FreedPages.N)
	dst = append(dst, '\n')
	return dst
}

func appendInt(dst []byte, v int64) []byte {
	return fmt.Appendf(dst, "%d", v)
}
