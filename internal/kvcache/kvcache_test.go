package kvcache

import (
	"bytes"
	"testing"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/obs"
	"dilos/internal/pagemgr"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// kvSystem boots a batched node sized for the tests, with reclaimer
// watermarks wide enough that guide prefetch bursts find headroom.
func kvSystem(frames int) (*sim.Engine, *core.System) {
	eng := sim.New()
	mcfg := pagemgr.DefaultConfig(frames)
	mcfg.LowWater = frames / 4
	mcfg.HighWater = frames / 2
	sys := core.New(eng, core.Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.DefaultParams(),
		Batch:       true,
		Mgr:         &mcfg,
	})
	return eng, sys
}

// TestKVSequenceLifetimeEviction pins the lifecycle invariants: Finish
// returns every region to the free list and its resident frames to the
// pool, regions recycle into fresh sequences, and recycled regions never
// leak the previous sequence's KV into decode reads.
func TestKVSequenceLifetimeEviction(t *testing.T) {
	p := DefaultParams()
	p.FlushPrefill = false // keep everything resident so Finish has frames to free
	eng, sys := kvSystem(2048)
	sys.Start()
	sys.Launch("kv", 0, func(sp *core.DDCProc) {
		c, err := New(sys, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		total := 2 * p.Layers
		if c.FreeRegions() != total {
			t.Fatalf("fresh cache has %d free regions, want %d", c.FreeRegions(), total)
		}

		s1, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if c.FreeRegions() != total-p.Layers || c.Live() != 1 {
			t.Fatalf("after Begin: %d free, %d live", c.FreeRegions(), c.Live())
		}
		seen := map[int]bool{}
		for _, r := range s1.regions {
			if seen[r] {
				t.Fatalf("region %d handed out twice", r)
			}
			seen[r] = true
		}
		if err := c.Prefill(sp, s1, 40, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.DecodeStep(sp, s1, nil); err != nil {
				t.Fatal(err)
			}
		}
		if c.BadReads.N != 0 {
			t.Fatalf("%d bad reads before any recycling", c.BadReads.N)
		}

		freed := c.Finish(sp, s1)
		if freed == 0 {
			t.Fatal("Finish freed no frames despite a fully resident sequence")
		}
		if c.FreeRegions() != total || c.Live() != 0 {
			t.Fatalf("after Finish: %d free regions (want %d), %d live", c.FreeRegions(), total, c.Live())
		}
		if again := c.Finish(sp, s1); again != 0 {
			t.Fatalf("double Finish freed %d frames", again)
		}

		// Recycle: the new sequence reuses s1's regions; prefill rewrites
		// them, so decode must verify every token against the NEW pattern.
		s2, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		recycled := 0
		for _, r := range s2.regions {
			if seen[r] {
				recycled++
			}
		}
		if recycled != p.Layers {
			t.Fatalf("only %d of %d regions recycled from the freed sequence", recycled, p.Layers)
		}
		if err := c.Prefill(sp, s2, 64, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.DecodeStep(sp, s2, nil); err != nil {
				t.Fatal(err)
			}
		}
		if c.BadReads.N != 0 {
			t.Fatalf("%d bad reads after region recycling — stale KV leaked", c.BadReads.N)
		}
	})
	eng.Run()
}

// TestKVBeginExhaustion: the region pool is a hard bound; Finish reopens it.
func TestKVBeginExhaustion(t *testing.T) {
	p := DefaultParams()
	eng, sys := kvSystem(2048)
	sys.Start()
	sys.Launch("kv", 0, func(sp *core.DDCProc) {
		c, err := New(sys, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Begin(); err == nil {
			t.Fatal("Begin succeeded with an empty region pool")
		}
		c.Finish(sp, s)
		if _, err := c.Begin(); err != nil {
			t.Fatalf("Begin after Finish: %v", err)
		}
	})
	eng.Run()
}

// kvDecodeMajors runs prefill + decode on a cold cache and returns the
// decode-phase major faults plus the guide (nil on the unguided arm).
func kvDecodeMajors(t *testing.T, guided bool) (int64, *Guide) {
	p := DefaultParams()
	ws := int(uint64(p.Layers) * p.RegionPages())
	eng, sys := kvSystem(ws * 3 / 4) // smaller than one sequence: decode always refaults
	var g *Guide
	if guided {
		g = NewGuide(sys)
	}
	sys.Start()
	var majors int64
	sys.Launch("kv", 0, func(sp *core.DDCProc) {
		c, err := New(sys, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Prefill(sp, s, p.MaxTokens-8, g); err != nil {
			t.Fatal(err)
		}
		before := sys.MajorFaults.N
		for i := 0; i < 8; i++ {
			if _, err := c.DecodeStep(sp, s, g); err != nil {
				t.Fatal(err)
			}
		}
		majors = sys.MajorFaults.N - before
		if c.BadReads.N != 0 {
			t.Fatalf("%d bad reads", c.BadReads.N)
		}
	})
	eng.Run()
	return majors, g
}

// TestKVLayerwisePrefetchHitRate: the guide's layerwise prefetch must turn
// the bulk of decode's demand faults into hits — majors under the guide
// stay below 60 % of the unguided run, and every avoided fault is
// accounted for by a prefetched page.
func TestKVLayerwisePrefetchHitRate(t *testing.T) {
	none, _ := kvDecodeMajors(t, false)
	guided, g := kvDecodeMajors(t, true)
	if none == 0 {
		t.Fatal("unguided decode took no major faults — working set not cold")
	}
	if g.PrefetchPages.N == 0 {
		t.Fatal("guide issued no prefetches")
	}
	if guided*10 >= none*6 {
		t.Fatalf("guided decode took %d majors vs %d unguided — hit rate below 40%%", guided, none)
	}
	if avoided := none - guided; avoided > g.PrefetchPages.N {
		t.Fatalf("%d faults avoided but only %d pages prefetched", avoided, g.PrefetchPages.N)
	}
}

// TestKVSpillEarlyLayers: spilling keeps the tail layers resident, evicts
// the early ones, and decode reads after the spill still verify.
func TestKVSpillEarlyLayers(t *testing.T) {
	p := DefaultParams()
	p.FlushPrefill = false
	eng, sys := kvSystem(4096)
	sys.Start()
	sys.Launch("kv", 0, func(sp *core.DDCProc) {
		c, err := New(sys, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Prefill(sp, s, 64, nil); err != nil {
			t.Fatal(err)
		}
		const keep = 2
		n := c.SpillEarlyLayers(sp, s, keep)
		if n == 0 {
			t.Fatal("spill evicted nothing from a resident sequence")
		}
		for l := 0; l < p.Layers; l++ {
			v := pagetable.VPNOf(c.LayerAddr(s, l))
			resident := sys.Table.Lookup(v).Tag() == pagetable.TagLocal
			if l < p.Layers-keep && resident {
				t.Fatalf("layer %d still resident after spill", l)
			}
			if l >= p.Layers-keep && !resident {
				t.Fatalf("kept layer %d was evicted by spill", l)
			}
		}
		if again := c.SpillEarlyLayers(sp, s, keep); again != 0 {
			t.Fatalf("second spill evicted %d pages from remote layers", again)
		}
		if _, err := c.DecodeStep(sp, s, nil); err != nil {
			t.Fatal(err)
		}
		if c.BadReads.N != 0 {
			t.Fatalf("%d bad reads after spill — write-back lost KV", c.BadReads.N)
		}
	})
	eng.Run()
}

// kvRender runs a small guided workload and returns the final virtual
// time plus the rendered /metrics + /statusz page.
func kvRender(t *testing.T) (sim.Time, []byte) {
	p := DefaultParams()
	ws := int(uint64(p.Layers) * p.RegionPages())
	eng, sys := kvSystem(ws)
	g := NewGuide(sys)
	sys.Start()
	sys.Launch("kv", 0, func(sp *core.DDCProc) {
		c, err := New(sys, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Prefill(sp, s, 48, g); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := c.DecodeStep(sp, s, g); err != nil {
				t.Fatal(err)
			}
		}
		c.SpillEarlyLayers(sp, s, 2)
		c.Finish(sp, s)
	})
	eng.Run()
	page := obs.AppendMetrics(nil, sys.Registry().Snapshot(), sys.Tel)
	page = sys.AppendStatus(page, sys.Eng.Now())
	return eng.Now(), page
}

// TestKVSameSeedDeterminism: two identical runs end at the same virtual
// time and render byte-identical observability pages, kvcache families
// included.
func TestKVSameSeedDeterminism(t *testing.T) {
	t1, page1 := kvRender(t)
	t2, page2 := kvRender(t)
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
	}
	if !bytes.Equal(page1, page2) {
		t.Fatal("rendered observability pages differ between identical runs")
	}
	if !bytes.Contains(page1, []byte("kvcache_")) {
		t.Fatal("kvcache stat families missing from /metrics")
	}
	if !bytes.Contains(page1, []byte("kvcache live=")) {
		t.Fatal("kvcache section missing from /statusz")
	}
}
