package aifm

import "dilos/internal/sim"

// Array is AIFM's remoteable array container: a fixed-element-size array
// chunked into remoteable objects, with a sequential-streak detector that
// drives the streaming prefetcher. This is the container the paper's
// snappy and DataFrame ports are built on.
type Array struct {
	sys      *System
	elemSize uint32
	n        uint64
	perChunk uint64
	chunks   []int // object ids

	lastChunk uint64
	streak    int
	dir       int64
}

// NewArray allocates a remoteable array of n elements of elemSize bytes.
func (s *System) NewArray(elemSize uint32, n uint64) (*Array, error) {
	if elemSize == 0 || elemSize > ChunkSize {
		panic("aifm: element size must be in (0, ChunkSize]")
	}
	perChunk := uint64(ChunkSize / elemSize)
	a := &Array{sys: s, elemSize: elemSize, n: n, perChunk: perChunk, dir: 1}
	nChunks := (n + perChunk - 1) / perChunk
	for i := uint64(0); i < nChunks; i++ {
		id, err := s.newObject(uint32(perChunk) * elemSize)
		if err != nil {
			return nil, err
		}
		a.chunks = append(a.chunks, id)
	}
	return a, nil
}

// Len returns the number of elements.
func (a *Array) Len() uint64 { return a.n }

// chunkOf returns (chunk index, byte offset within chunk) for element i.
func (a *Array) chunkOf(i uint64) (uint64, uint32) {
	if i >= a.n {
		panic("aifm: array index out of range")
	}
	return i / a.perChunk, uint32(i%a.perChunk) * a.elemSize
}

// access makes element i's chunk resident (charging the deref check) and
// runs the streaming prefetcher.
func (a *Array) access(p *sim.Proc, i uint64) []byte {
	a.sys.DerefChecks.Inc()
	p.Advance(a.sys.Costs.DerefCheck)
	c, off := a.chunkOf(i)
	a.noteAccess(p, c)
	data := a.sys.ensureLocal(p, a.chunks[c])
	p.Advance(a.sys.Costs.ElementCopy)
	return data[off : off+a.elemSize]
}

// noteAccess updates the sequential-streak detector and, on an established
// stream, keeps a deep window of chunks in flight — AIFM's multi-threaded
// streaming prefetcher (the reason it almost perfectly overlaps compute
// and network on snappy, Figure 7(c)/(d)).
func (a *Array) noteAccess(p *sim.Proc, c uint64) {
	switch {
	case c == a.lastChunk:
		return
	case int64(c) == int64(a.lastChunk)+a.dir:
		a.streak++
	case int64(c) == int64(a.lastChunk)-a.dir:
		a.dir = -a.dir
		a.streak = 1
	default:
		a.streak = 0
	}
	a.lastChunk = c
	if a.streak < 2 {
		return
	}
	depth := a.sys.pfDepth
	ids := make([]int, 0, depth)
	for k := int64(1); k <= int64(depth); k++ {
		next := int64(c) + a.dir*k
		if next < 0 || next >= int64(len(a.chunks)) {
			break
		}
		ids = append(ids, a.chunks[next])
	}
	a.sys.prefetch(p, ids)
}

// ReadU64 reads element i as a little-endian uint64 (elemSize must be 8).
func (a *Array) ReadU64(t *Thread, i uint64) uint64 {
	b := a.access(t.p, i)
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// WriteU64 writes element i (elemSize must be 8).
func (a *Array) WriteU64(t *Thread, i uint64, v uint64) {
	b := a.access(t.p, i)
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	a.markDirty(i)
}

// ReadU8 reads a byte element.
func (a *Array) ReadU8(t *Thread, i uint64) byte { return a.access(t.p, i)[0] }

// WriteU8 writes a byte element.
func (a *Array) WriteU8(t *Thread, i uint64, v byte) {
	a.access(t.p, i)[0] = v
	a.markDirty(i)
}

// ReadBytes copies elements [i, i+len(buf)) of a byte array into buf.
func (a *Array) ReadBytes(t *Thread, i uint64, buf []byte) {
	if a.elemSize != 1 {
		panic("aifm: ReadBytes requires a byte array")
	}
	for len(buf) > 0 {
		c, off := a.chunkOf(i)
		n := int(uint64(ChunkSize) - uint64(off))
		if n > len(buf) {
			n = len(buf)
		}
		a.sys.DerefChecks.Inc()
		t.p.Advance(a.sys.Costs.DerefCheck)
		a.noteAccess(t.p, c)
		data := a.sys.ensureLocal(t.p, a.chunks[c])
		copy(buf[:n], data[off:])
		t.p.Advance(sim.Time(n/64+1) * a.sys.Costs.ElementCopy)
		buf = buf[n:]
		i += uint64(n)
	}
}

// WriteBytes copies buf into elements [i, i+len(buf)).
func (a *Array) WriteBytes(t *Thread, i uint64, buf []byte) {
	if a.elemSize != 1 {
		panic("aifm: WriteBytes requires a byte array")
	}
	for len(buf) > 0 {
		c, off := a.chunkOf(i)
		n := int(uint64(ChunkSize) - uint64(off))
		if n > len(buf) {
			n = len(buf)
		}
		a.sys.DerefChecks.Inc()
		t.p.Advance(a.sys.Costs.DerefCheck)
		a.noteAccess(t.p, c)
		data := a.sys.ensureLocal(t.p, a.chunks[c])
		copy(data[off:], buf[:n])
		a.sys.objects[a.chunks[c]].dirty = true
		t.p.Advance(sim.Time(n/64+1) * a.sys.Costs.ElementCopy)
		buf = buf[n:]
		i += uint64(n)
	}
}

func (a *Array) markDirty(i uint64) {
	c, _ := a.chunkOf(i)
	a.sys.objects[a.chunks[c]].dirty = true
}
