package aifm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func TestListPushPopFIFO(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	sys.Launch("app", func(th *Thread) {
		l := sys.NewList(8)
		for i := 0; i < 2000; i++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(i))
			if err := l.PushBack(th, b[:]); err != nil {
				t.Error(err)
				return
			}
		}
		if l.Len() != 2000 {
			t.Errorf("len = %d", l.Len())
			return
		}
		for i := 0; i < 2000; i++ {
			got := l.PopFront(th)
			if binary.LittleEndian.Uint64(got) != uint64(i) {
				t.Errorf("pop %d got %d", i, binary.LittleEndian.Uint64(got))
				return
			}
		}
		if l.PopFront(th) != nil || l.Len() != 0 {
			t.Error("empty list misbehaves")
		}
	})
	eng.Run()
}

func TestListGetRandomAccess(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	sys.Launch("app", func(th *Thread) {
		l := sys.NewList(8)
		for i := 0; i < 1500; i++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(i*i))
			l.PushBack(th, b[:])
		}
		// Pop a few so headOff is nonzero, then index.
		for i := 0; i < 37; i++ {
			l.PopFront(th)
		}
		for _, i := range []uint64{0, 1, 100, 1000, l.Len() - 1} {
			want := uint64(i+37) * uint64(i+37)
			if got := binary.LittleEndian.Uint64(l.Get(th, i)); got != want {
				t.Errorf("get %d = %d, want %d", i, got, want)
				return
			}
		}
	})
	eng.Run()
}

func TestListSurvivesEvacuation(t *testing.T) {
	sys, eng := newSys(t, 32<<10) // tiny budget: chunks round-trip
	sys.Launch("app", func(th *Thread) {
		l := sys.NewList(64)
		elem := make([]byte, 64)
		for i := 0; i < 3000; i++ {
			binary.LittleEndian.PutUint64(elem, uint64(i)|0xabc0000000000000)
			l.PushBack(th, elem)
		}
		for i := 0; i < 3000; i++ {
			got := l.PopFront(th)
			if binary.LittleEndian.Uint64(got) != uint64(i)|0xabc0000000000000 {
				t.Errorf("elem %d corrupted", i)
				return
			}
		}
	})
	eng.Run()
	if sys.Evacuated.N == 0 {
		t.Fatal("no evacuation pressure")
	}
}

func TestHashTableBasics(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	sys.Launch("app", func(th *Thread) {
		h, err := sys.NewHashTable(16, 8, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		key := func(i int) []byte {
			k := make([]byte, 16)
			binary.LittleEndian.PutUint64(k, uint64(i))
			return k
		}
		for i := 0; i < 1000; i++ {
			if !h.PutU64(th, key(i), uint64(i*7)) {
				t.Error("put failed")
				return
			}
		}
		if h.Len() != 1000 {
			t.Errorf("len = %d", h.Len())
			return
		}
		for i := 0; i < 1000; i++ {
			v, ok := h.GetU64(th, key(i))
			if !ok || v != uint64(i*7) {
				t.Errorf("get %d = %d %t", i, v, ok)
				return
			}
		}
		if _, ok := h.GetU64(th, key(5000)); ok {
			t.Error("phantom key")
		}
		// Overwrite.
		h.PutU64(th, key(3), 999)
		if v, _ := h.GetU64(th, key(3)); v != 999 {
			t.Error("overwrite failed")
		}
		if h.Len() != 1000 {
			t.Error("overwrite changed len")
		}
		// Delete + tombstone reuse.
		if !h.Delete(th, key(3)) || h.Delete(th, key(3)) {
			t.Error("delete semantics wrong")
		}
		if _, ok := h.GetU64(th, key(3)); ok {
			t.Error("deleted key readable")
		}
		h.PutU64(th, key(3), 1)
		if v, _ := h.GetU64(th, key(3)); v != 1 {
			t.Error("reinsert after delete failed")
		}
	})
	eng.Run()
}

// Property-style: the table matches a reference map under random ops,
// under memory pressure.
func TestHashTableVsMapUnderPressure(t *testing.T) {
	sys, eng := newSys(t, 64<<10)
	sys.Launch("app", func(th *Thread) {
		h, _ := sys.NewHashTable(16, 8, 8192)
		ref := map[string]uint64{}
		rng := rand.New(rand.NewSource(11))
		key := func(i int) []byte {
			k := fmt.Sprintf("key-%012d", i)
			return []byte(k)[:16]
		}
		for op := 0; op < 5000; op++ {
			i := rng.Intn(600)
			k := key(i)
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				h.PutU64(th, k, v)
				ref[string(k)] = v
			case 1:
				got, ok := h.GetU64(th, k)
				want, wok := ref[string(k)]
				if ok != wok || (ok && got != want) {
					t.Errorf("op %d: get mismatch", op)
					return
				}
			case 2:
				_, wok := ref[string(k)]
				if h.Delete(th, k) != wok {
					t.Errorf("op %d: delete mismatch", op)
					return
				}
				delete(ref, string(k))
			}
		}
		if h.Len() != uint64(len(ref)) {
			t.Errorf("len %d vs %d", h.Len(), len(ref))
		}
	})
	eng.Run()
	if sys.Evacuated.N == 0 {
		t.Fatal("no evacuation pressure during hash ops")
	}
}

func TestHashTableFull(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	sys.Launch("app", func(th *Thread) {
		h, _ := sys.NewHashTable(16, 8, 1) // one chunk of slots
		cap := h.Capacity()
		key := func(i uint64) []byte {
			k := make([]byte, 16)
			binary.LittleEndian.PutUint64(k, i)
			return k
		}
		for i := uint64(0); i < cap; i++ {
			if !h.PutU64(th, key(i), i) {
				t.Errorf("put %d/%d failed early", i, cap)
				return
			}
		}
		if h.PutU64(th, key(cap+1), 1) {
			t.Error("put into full table succeeded")
		}
	})
	eng.Run()
}
