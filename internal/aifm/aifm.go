// Package aifm reimplements the paper's user-level baseline: AIFM
// (Application-Integrated Far Memory, OSDI '20). Where the paging systems
// are transparent, AIFM trades compatibility for performance: applications
// are rewritten against remoteable containers whose smart pointers carry a
// presence check on every dereference. In exchange the runtime gets
// object-granularity IO, a multi-threaded streaming prefetcher that almost
// perfectly overlaps fetch with compute on sequential scans, and
// object-level hot/cold evacuation off the critical path.
//
// Per the paper's methodology (§6.2), AIFM's transport is TCP: fabric
// links configured with TCPParams carry the measured +14,000-cycle
// completion delay.
//
// The behaviours the evaluation depends on, all modelled here:
//
//   - the dereference-check tax: AIFM pays Costs.DerefCheck on every
//     element access even when everything is local — why Figure 8 shows it
//     50–83 % slower than DiLOS at 100 % local memory;
//   - near-perfect sequential overlap: a deep streaming window fetched by
//     background threads — why AIFM wins Figure 7(c)/(d) at 12.5 % local;
//   - object-granularity IO: fetches move whole chunks (the container's
//     natural unit), evacuation writes back only dirty chunks.
package aifm

import (
	"fmt"

	"dilos/internal/fabric"
	"dilos/internal/memnode"
	"dilos/internal/pagetable"
	"dilos/internal/placement"
	"dilos/internal/sim"
	"dilos/internal/stats"
)

// ChunkSize is the remoteable containers' internal chunking unit.
const ChunkSize = 4096

// Costs is the AIFM runtime cost model.
type Costs struct {
	DerefCheck  sim.Time // smart-pointer presence check per element access
	RuntimeMiss sim.Time // yield to the runtime + fetch setup on a miss
	MarkInstall sim.Time // installing a fetched object
	ElementCopy sim.Time // per 64 B moved between app and container
	EvacScan    sim.Time // per object examined by the evacuator
}

// DefaultCosts mirrors AIFM's published microbenchmarks (sub-100 ns local
// deref, ~microseconds to enter the runtime on a miss).
func DefaultCosts() Costs {
	return Costs{
		DerefCheck:  5 * sim.Nanosecond,
		RuntimeMiss: 450 * sim.Nanosecond,
		MarkInstall: 150 * sim.Nanosecond,
		ElementCopy: 2 * sim.Nanosecond,
		EvacScan:    25 * sim.Nanosecond,
	}
}

// Config assembles an AIFM runtime.
type Config struct {
	LocalBytes    uint64 // local heap budget for remoteable objects
	RemoteBytes   uint64 // memory node region size
	Fabric        fabric.Params
	PrefetchDepth int // streaming window, in chunks (default 16)
}

type objState uint8

const (
	objRemote objState = iota
	objFetching
	objLocal
)

type object struct {
	size   uint32
	state  objState
	op     *fabric.Op
	opGen  uint64
	data   []byte
	remote uint64
	dirty  bool
	hot    bool
}

// System is an AIFM runtime instance: computing-node object store plus its
// memory node.
type System struct {
	Eng   *sim.Engine
	Node  *memnode.Node
	Link  *fabric.Link
	Costs Costs

	mainQP *fabric.QP
	pfQP   *fabric.QP
	evacQP *fabric.QP

	localBudget uint64
	localUsed   uint64
	evacHigh    uint64 // kick the evacuator above this
	evacLow     uint64 // evacuator drains down to this
	pfCeiling   uint64 // prefetch headroom limit

	objects []object
	clock   int // evacuator clock hand

	// Remote chunk layout is owned by the shared placement substrate: one
	// region spans the whole memory node; objects claim chunk runs from a
	// bump cursor and resolve their backing offsets through it.
	space     *placement.AddressSpace
	region    placement.Region
	nextChunk uint64
	registry  *stats.Registry

	pfQueue  []pfItem
	pfWaiter sim.Waiter
	evacKick sim.Waiter
	freed    sim.Waiter

	pfDepth int

	DerefChecks stats.Counter
	Misses      stats.Counter
	Prefetches  stats.Counter
	Evacuated   stats.Counter
	started     bool
}

type pfItem struct {
	id  int
	gen uint64
}

// New assembles an AIFM runtime.
func New(eng *sim.Engine, cfg Config) *System {
	if cfg.LocalBytes == 0 || cfg.RemoteBytes == 0 {
		panic("aifm: LocalBytes and RemoteBytes are required")
	}
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 16
	}
	node := memnode.New(cfg.RemoteBytes, 0xa1f3)
	link := fabric.NewLink(node, cfg.Fabric)
	s := &System{
		Eng:         eng,
		Node:        node,
		Link:        link,
		Costs:       DefaultCosts(),
		mainQP:      link.MustQP("aifm.main", node.ProtKey),
		pfQP:        link.MustQP("aifm.prefetch", node.ProtKey),
		evacQP:      link.MustQP("aifm.evac", node.ProtKey),
		localBudget: cfg.LocalBytes,
		evacHigh:    cfg.LocalBytes / 4 * 3,
		evacLow:     cfg.LocalBytes / 2,
		pfCeiling:   cfg.LocalBytes / 8 * 7,
		pfDepth:     cfg.PrefetchDepth,
		DerefChecks: stats.Counter{Name: "aifm.deref_checks"},
		Misses:      stats.Counter{Name: "aifm.misses"},
		Prefetches:  stats.Counter{Name: "aifm.prefetches"},
		Evacuated:   stats.Counter{Name: "aifm.evacuated"},
		space:       placement.New(placement.Config{Nodes: 1}),
	}
	region, err := s.space.Map(cfg.RemoteBytes/ChunkSize, func(_ int, chunks uint64) (uint64, error) {
		return node.AllocRange(chunks)
	})
	if err != nil {
		panic("aifm: mapping the remote region: " + err.Error())
	}
	s.region = region
	s.registry = s.buildRegistry()
	return s
}

// buildRegistry registers every metric the system owns at construction.
func (s *System) buildRegistry() *stats.Registry {
	r := stats.NewRegistry()
	r.RegisterCounter(&s.DerefChecks)
	r.RegisterCounter(&s.Misses)
	r.RegisterCounter(&s.Prefetches)
	r.RegisterCounter(&s.Evacuated)
	s.Link.RxBytes.Name = "link.node0.rx.bytes"
	s.Link.TxBytes.Name = "link.node0.tx.bytes"
	s.Link.RxOps.Name = "link.node0.rx.ops"
	s.Link.TxOps.Name = "link.node0.tx.ops"
	r.RegisterCounter(&s.Link.RxBytes)
	r.RegisterCounter(&s.Link.TxBytes)
	r.RegisterCounter(&s.Link.RxOps)
	r.RegisterCounter(&s.Link.TxOps)
	s.Node.ReadsSrv.Name = "memnode.node0.reads"
	s.Node.WritesSv.Name = "memnode.node0.writes"
	r.RegisterCounter(&s.Node.ReadsSrv)
	r.RegisterCounter(&s.Node.WritesSv)
	return r
}

// Registry exposes every metric the system registered at construction.
func (s *System) Registry() *stats.Registry { return s.registry }

// Start launches the background prefetch-mapper and evacuator threads.
func (s *System) Start() {
	if s.started {
		panic("aifm: Start called twice")
	}
	s.started = true
	s.Eng.GoDaemon("aifm.pfmap", s.pfMapLoop)
	s.Eng.GoDaemon("aifm.evacuator", s.evacLoop)
}

// Thread is an application thread on the AIFM runtime.
type Thread struct {
	sys *System
	p   *sim.Proc
}

// Launch runs fn as an application thread.
func (s *System) Launch(name string, fn func(t *Thread)) {
	s.Eng.Go(name, func(p *sim.Proc) { fn(&Thread{sys: s, p: p}) })
}

// Bind wraps an existing sim process.
func (s *System) Bind(p *sim.Proc) *Thread { return &Thread{sys: s, p: p} }

// Proc returns the underlying sim process.
func (t *Thread) Proc() *sim.Proc { return t.p }

// Compute charges CPU time.
func (t *Thread) Compute(d sim.Time) { t.p.Advance(d) }

// Now returns virtual time.
func (t *Thread) Now() sim.Time { return t.p.Now() }

// newObject registers a chunk-sized object with remote backing: it claims
// a run of chunks from the placement region (contiguous on the single
// node) and resolves the head chunk's offset through the address space.
func (s *System) newObject(size uint32) (int, error) {
	chunks := (uint64(size) + ChunkSize - 1) / ChunkSize
	if s.nextChunk+chunks > s.region.Pages {
		return 0, fmt.Errorf("aifm: out of remote memory (%d chunks used of %d)",
			s.nextChunk, s.region.Pages)
	}
	sl, ok := s.space.First(s.region.BaseVPN + pagetable.VPN(s.nextChunk))
	if !ok {
		panic("aifm: region chunk did not resolve")
	}
	s.nextChunk += chunks
	s.objects = append(s.objects, object{size: size, state: objRemote, remote: sl.Off})
	return len(s.objects) - 1, nil
}

// ensureLocal makes object id resident, fetching it if needed; returns its
// buffer. The deref check is charged by the caller (per element access, not
// per chunk).
func (s *System) ensureLocal(p *sim.Proc, id int) []byte {
	o := &s.objects[id]
	o.hot = true
	switch o.state {
	case objLocal:
		return o.data
	case objFetching:
		op := o.op
		gen := o.opGen
		op.Wait(p)
		if o.opGen == gen && o.state == objFetching {
			s.installFetched(p, id)
		}
		return s.ensureLocal(p, id)
	default:
		s.Misses.Inc()
		p.Advance(s.Costs.RuntimeMiss)
		s.reserve(p, uint64(o.size))
		o.data = make([]byte, o.size)
		op := s.mainQP.Read(p.Now(), o.remote, o.data)
		o.op = op
		o.state = objFetching
		op.Wait(p)
		if o.state == objFetching && o.op == op {
			s.installFetched(p, id)
		}
		return s.ensureLocal(p, id)
	}
}

func (s *System) installFetched(p *sim.Proc, id int) {
	o := &s.objects[id]
	p.Advance(s.Costs.MarkInstall)
	o.state = objLocal
	o.op = nil
	o.opGen++
	o.dirty = false
}

// reserve books local heap space, kicking (and if necessary waiting for)
// the evacuator.
func (s *System) reserve(p *sim.Proc, n uint64) {
	s.localUsed += n
	if s.localUsed >= s.evacHigh {
		s.evacKick.Wake(p.Now())
	}
	for s.localUsed > s.localBudget {
		s.freed.Wait(p)
	}
}

// prefetch issues background fetches for the given objects.
func (s *System) prefetch(p *sim.Proc, ids []int) {
	for _, id := range ids {
		o := &s.objects[id]
		if o.state != objRemote {
			continue
		}
		if s.localUsed+uint64(o.size) >= s.pfCeiling {
			s.evacKick.Wake(p.Now())
			break // no headroom: stop prefetching, demand first
		}
		s.localUsed += uint64(o.size)
		o.data = make([]byte, o.size)
		o.op = s.pfQP.Read(p.Now(), o.remote, o.data)
		o.state = objFetching
		s.pfQueue = append(s.pfQueue, pfItem{id: id, gen: o.opGen})
		s.Prefetches.Inc()
	}
	if len(s.pfQueue) > 0 {
		s.pfWaiter.Wake(p.Now())
	}
}

// pfMapLoop installs prefetched objects as their fetches complete — AIFM's
// background prefetch threads.
func (s *System) pfMapLoop(p *sim.Proc) {
	for {
		if len(s.pfQueue) == 0 {
			s.pfWaiter.Wait(p)
			continue
		}
		item := s.pfQueue[0]
		s.pfQueue = s.pfQueue[1:]
		o := &s.objects[item.id]
		if o.opGen != item.gen || o.state != objFetching {
			continue
		}
		op := o.op
		op.Wait(p)
		if o.opGen == item.gen && o.state == objFetching {
			s.installFetched(p, item.id)
		}
	}
}

// evacLoop is AIFM's evacuator: it keeps the local heap under budget by
// moving cold objects to the memory node (write-back only when dirty).
func (s *System) evacLoop(p *sim.Proc) {
	for {
		if s.localUsed <= s.evacLow {
			s.evacKick.Wait(p)
			continue
		}
		if !s.evacStep(p) {
			p.Sleep(5 * sim.Microsecond)
		}
	}
}

// evacStep evicts one cold local object; returns whether it did.
func (s *System) evacStep(p *sim.Proc) bool {
	n := len(s.objects)
	if n == 0 {
		return false
	}
	for i := 0; i < 2*n; i++ {
		s.clock = (s.clock + 1) % n
		o := &s.objects[s.clock]
		if o.state != objLocal {
			continue
		}
		p.Advance(s.Costs.EvacScan)
		if o.hot {
			o.hot = false
			continue
		}
		var wb *fabric.Op
		if o.dirty {
			wb = s.evacQP.Write(p.Now(), o.remote, o.data)
		}
		o.state = objRemote
		o.data = nil
		o.opGen++
		s.localUsed -= uint64(o.size)
		s.Evacuated.Inc()
		s.freed.Wake(p.Now())
		if wb != nil {
			wb.Wait(p)
		}
		return true
	}
	return false
}

// Stats prints-friendly summary.
func (s *System) Stats() string {
	return fmt.Sprintf("derefs=%d misses=%d prefetches=%d evacuated=%d",
		s.DerefChecks.N, s.Misses.N, s.Prefetches.N, s.Evacuated.N)
}
