package aifm

import (
	"bytes"
	"encoding/binary"
)

// The rest of AIFM's remoteable-container surface: a chunked list and a
// fixed-geometry hash table, both built from remoteable chunk objects like
// Array. Every element access pays the smart-pointer dereference check —
// that is the contract user-level far memory imposes in exchange for
// object-granularity IO.

// List is a remoteable deque of fixed-size elements: a chain of chunk
// objects, each holding up to perChunk elements. Chunk metadata (the
// chain) lives host-side, mirroring AIFM's out-of-band object descriptors;
// element payloads live in remoteable memory.
type List struct {
	sys      *System
	elemSize uint32
	perChunk uint32
	chunks   []int // object ids, front to back
	headOff  uint32
	tailLen  uint32
	n        uint64
}

// NewList creates an empty remoteable list of elemSize-byte elements.
func (s *System) NewList(elemSize uint32) *List {
	if elemSize == 0 || elemSize > ChunkSize {
		panic("aifm: element size must be in (0, ChunkSize]")
	}
	return &List{sys: s, elemSize: elemSize, perChunk: ChunkSize / elemSize}
}

// Len returns the element count.
func (l *List) Len() uint64 { return l.n }

// PushBack appends an element.
func (l *List) PushBack(t *Thread, elem []byte) error {
	if uint32(len(elem)) != l.elemSize {
		panic("aifm: wrong element size")
	}
	t.p.Advance(l.sys.Costs.DerefCheck)
	l.sys.DerefChecks.Inc()
	if len(l.chunks) == 0 || l.tailLen == l.perChunk {
		id, err := l.sys.newObject(uint32(l.perChunk) * l.elemSize)
		if err != nil {
			return err
		}
		l.chunks = append(l.chunks, id)
		l.tailLen = 0
	}
	tail := l.chunks[len(l.chunks)-1]
	data := l.sys.ensureLocal(t.p, tail)
	copy(data[l.tailLen*l.elemSize:], elem)
	l.sys.objects[tail].dirty = true
	l.tailLen++
	l.n++
	return nil
}

// PopFront removes and returns the first element (nil when empty).
func (l *List) PopFront(t *Thread) []byte {
	if l.n == 0 {
		return nil
	}
	t.p.Advance(l.sys.Costs.DerefCheck)
	l.sys.DerefChecks.Inc()
	head := l.chunks[0]
	data := l.sys.ensureLocal(t.p, head)
	out := make([]byte, l.elemSize)
	copy(out, data[l.headOff*l.elemSize:])
	l.headOff++
	l.n--
	headIsTail := len(l.chunks) == 1
	limit := l.perChunk
	if headIsTail {
		limit = l.tailLen
	}
	if l.headOff == limit {
		l.chunks = l.chunks[1:]
		l.headOff = 0
		if headIsTail {
			l.tailLen = 0
		}
	}
	return out
}

// Get returns element i (front = 0) without removing it.
func (l *List) Get(t *Thread, i uint64) []byte {
	if i >= l.n {
		panic("aifm: list index out of range")
	}
	t.p.Advance(l.sys.Costs.DerefCheck)
	l.sys.DerefChecks.Inc()
	pos := i + uint64(l.headOff)
	chunk := l.chunks[pos/uint64(l.perChunk)]
	off := uint32(pos%uint64(l.perChunk)) * l.elemSize
	data := l.sys.ensureLocal(t.p, chunk)
	out := make([]byte, l.elemSize)
	copy(out, data[off:])
	return out
}

// HashTable is a remoteable open-addressing hash table with fixed-size
// keys and values (AIFM's RemHashTable has the same fixed-geometry shape).
// Slots live across chunk objects; linear probing resolves collisions.
// Capacity is fixed at creation (the caller sizes for the expected load).
type HashTable struct {
	sys     *System
	keyLen  uint32
	valLen  uint32
	slotLen uint32 // 1 (state) + keyLen + valLen
	perObj  uint32
	slots   uint64
	chunks  []int
	used    uint64
}

const (
	slotEmpty   = 0
	slotFull    = 1
	slotDeleted = 2
)

// NewHashTable creates a table with at least minSlots slots.
func (s *System) NewHashTable(keyLen, valLen uint32, minSlots uint64) (*HashTable, error) {
	slotLen := 1 + keyLen + valLen
	perObj := uint32(ChunkSize) / slotLen
	nChunks := (minSlots + uint64(perObj) - 1) / uint64(perObj)
	if nChunks == 0 {
		nChunks = 1
	}
	h := &HashTable{
		sys: s, keyLen: keyLen, valLen: valLen, slotLen: slotLen,
		perObj: perObj, slots: nChunks * uint64(perObj),
	}
	for i := uint64(0); i < nChunks; i++ {
		id, err := s.newObject(perObj * slotLen)
		if err != nil {
			return nil, err
		}
		h.chunks = append(h.chunks, id)
	}
	return h, nil
}

// Len returns the number of stored keys.
func (h *HashTable) Len() uint64 { return h.used }

// Capacity returns the slot count.
func (h *HashTable) Capacity() uint64 { return h.slots }

func (h *HashTable) hash(key []byte) uint64 {
	v := uint64(14695981039346656037)
	for _, b := range key {
		v = (v ^ uint64(b)) * 1099511628211
	}
	return v
}

// slot returns the backing bytes of slot i (making its chunk resident).
func (h *HashTable) slot(t *Thread, i uint64) []byte {
	t.p.Advance(h.sys.Costs.DerefCheck)
	h.sys.DerefChecks.Inc()
	chunk := h.chunks[i/uint64(h.perObj)]
	off := uint32(i%uint64(h.perObj)) * h.slotLen
	data := h.sys.ensureLocal(t.p, chunk)
	return data[off : off+h.slotLen]
}

func (h *HashTable) markDirty(i uint64) {
	h.sys.objects[h.chunks[i/uint64(h.perObj)]].dirty = true
}

func (h *HashTable) checkKey(key []byte) {
	if uint32(len(key)) != h.keyLen {
		panic("aifm: wrong key length")
	}
}

// Put stores key → val; returns false when the table is full.
func (h *HashTable) Put(t *Thread, key, val []byte) bool {
	h.checkKey(key)
	if uint32(len(val)) != h.valLen {
		panic("aifm: wrong value length")
	}
	start := h.hash(key) % h.slots
	firstFree := int64(-1)
	for probe := uint64(0); probe < h.slots; probe++ {
		i := (start + probe) % h.slots
		s := h.slot(t, i)
		switch s[0] {
		case slotEmpty:
			if firstFree >= 0 {
				i = uint64(firstFree)
				s = h.slot(t, i)
			}
			s[0] = slotFull
			copy(s[1:], key)
			copy(s[1+h.keyLen:], val)
			h.markDirty(i)
			h.used++
			return true
		case slotDeleted:
			if firstFree < 0 {
				firstFree = int64(i)
			}
		case slotFull:
			if bytes.Equal(s[1:1+h.keyLen], key) {
				copy(s[1+h.keyLen:], val)
				h.markDirty(i)
				return true
			}
		}
	}
	if firstFree >= 0 {
		s := h.slot(t, uint64(firstFree))
		s[0] = slotFull
		copy(s[1:], key)
		copy(s[1+h.keyLen:], val)
		h.markDirty(uint64(firstFree))
		h.used++
		return true
	}
	return false
}

// Get returns the value for key, or nil.
func (h *HashTable) Get(t *Thread, key []byte) []byte {
	h.checkKey(key)
	start := h.hash(key) % h.slots
	for probe := uint64(0); probe < h.slots; probe++ {
		i := (start + probe) % h.slots
		s := h.slot(t, i)
		switch s[0] {
		case slotEmpty:
			return nil
		case slotFull:
			if bytes.Equal(s[1:1+h.keyLen], key) {
				out := make([]byte, h.valLen)
				copy(out, s[1+h.keyLen:])
				return out
			}
		}
	}
	return nil
}

// Delete removes key, reporting whether it was present.
func (h *HashTable) Delete(t *Thread, key []byte) bool {
	h.checkKey(key)
	start := h.hash(key) % h.slots
	for probe := uint64(0); probe < h.slots; probe++ {
		i := (start + probe) % h.slots
		s := h.slot(t, i)
		switch s[0] {
		case slotEmpty:
			return false
		case slotFull:
			if bytes.Equal(s[1:1+h.keyLen], key) {
				s[0] = slotDeleted
				h.markDirty(i)
				h.used--
				return true
			}
		}
	}
	return false
}

// PutU64 / GetU64 are convenience wrappers for 8-byte values.
func (h *HashTable) PutU64(t *Thread, key []byte, v uint64) bool {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return h.Put(t, key, b[:])
}

// GetU64 fetches an 8-byte value.
func (h *HashTable) GetU64(t *Thread, key []byte) (uint64, bool) {
	v := h.Get(t, key)
	if v == nil {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v), true
}
