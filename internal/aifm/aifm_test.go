package aifm

import (
	"bytes"
	"math/rand"
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/sim"
)

func newSys(t testing.TB, localBytes uint64) (*System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys := New(eng, Config{
		LocalBytes:  localBytes,
		RemoteBytes: 256 << 20,
		Fabric:      fabric.TCPParams(),
	})
	sys.Start()
	return sys, eng
}

func TestArrayRoundTrip(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	sys.Launch("app", func(th *Thread) {
		arr, err := sys.NewArray(8, 1000)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < 1000; i++ {
			arr.WriteU64(th, i, i*i)
		}
		for i := uint64(0); i < 1000; i++ {
			if got := arr.ReadU64(th, i); got != i*i {
				t.Errorf("elem %d: got %d", i, got)
				return
			}
		}
	})
	eng.Run()
}

func TestEvacuationUnderPressure(t *testing.T) {
	// 64 KiB budget, 256 KiB of data: most chunks must round-trip.
	sys, eng := newSys(t, 64<<10)
	sys.Launch("app", func(th *Thread) {
		arr, _ := sys.NewArray(8, 32768)
		for i := uint64(0); i < arr.Len(); i++ {
			arr.WriteU64(th, i, i^0x5a5a)
		}
		for i := uint64(0); i < arr.Len(); i++ {
			if got := arr.ReadU64(th, i); got != i^0x5a5a {
				t.Errorf("elem %d corrupted: %d", i, got)
				return
			}
		}
	})
	eng.Run()
	if sys.Evacuated.N == 0 {
		t.Fatal("no evacuation under 4x pressure")
	}
	if sys.Misses.N == 0 {
		t.Fatal("no remote misses")
	}
}

func TestDerefCheckTax(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	var elapsed sim.Time
	const n = 10000
	sys.Launch("app", func(th *Thread) {
		arr, _ := sys.NewArray(8, n)
		arr.WriteU64(th, 0, 1) // warm chunk 0
		for i := uint64(1); i < n; i++ {
			arr.WriteU64(th, i, 1)
		}
		t0 := th.Now()
		var sum uint64
		for i := uint64(0); i < n; i++ {
			sum += arr.ReadU64(th, i)
		}
		elapsed = th.Now() - t0
		if sum != n {
			t.Error("bad sum")
		}
	})
	eng.Run()
	if sys.DerefChecks.N < n {
		t.Fatalf("deref checks = %d, want >= %d (every access pays)", sys.DerefChecks.N, n)
	}
	// All-local scan must still cost at least the deref tax.
	if elapsed < sim.Time(n)*DefaultCosts().DerefCheck {
		t.Fatalf("elapsed %v below the deref-check floor", elapsed)
	}
}

func TestStreamingPrefetchOverlap(t *testing.T) {
	// Sequential scan with 12.5% local memory: streaming prefetch must
	// cut the per-miss stall dramatically vs. a no-prefetch run.
	const elems = 1 << 16 // 512 KiB
	run := func(depth int) sim.Time {
		eng := sim.New()
		sys := New(eng, Config{
			LocalBytes:    64 << 10,
			RemoteBytes:   64 << 20,
			Fabric:        fabric.TCPParams(),
			PrefetchDepth: depth,
		})
		sys.Start()
		var elapsed sim.Time
		sys.Launch("app", func(th *Thread) {
			arr, _ := sys.NewArray(8, elems)
			t0 := th.Now()
			var sum uint64
			for i := uint64(0); i < elems; i++ {
				sum += arr.ReadU64(th, i)
			}
			_ = sum
			elapsed = th.Now() - t0
		})
		eng.Run()
		return elapsed
	}
	deep := run(16)
	shallow := run(1)
	if deep*3 > shallow*2 { // expect at least 1.5x from deep streaming
		t.Fatalf("streaming prefetch ineffective: deep=%v shallow=%v", deep, shallow)
	}
}

func TestByteArrayReadWrite(t *testing.T) {
	sys, eng := newSys(t, 32<<10)
	rng := rand.New(rand.NewSource(3))
	sys.Launch("app", func(th *Thread) {
		arr, _ := sys.NewArray(1, 100000)
		ref := make([]byte, 100000)
		for k := 0; k < 100; k++ {
			off := rng.Intn(90000)
			n := rng.Intn(9000) + 1
			if rng.Intn(2) == 0 {
				b := make([]byte, n)
				rng.Read(b)
				arr.WriteBytes(th, uint64(off), b)
				copy(ref[off:], b)
			} else {
				got := make([]byte, n)
				arr.ReadBytes(th, uint64(off), got)
				if !bytes.Equal(got, ref[off:off+n]) {
					t.Errorf("iteration %d: mismatch at %d", k, off)
					return
				}
			}
		}
	})
	eng.Run()
}

func TestTCPDelayApplied(t *testing.T) {
	// A single cold miss over TCP must cost at least the 14k-cycle delay.
	sys, eng := newSys(t, 1<<20)
	var elapsed sim.Time
	sys.Launch("app", func(th *Thread) {
		arr, _ := sys.NewArray(8, 8)
		t0 := th.Now()
		arr.ReadU64(th, 0)
		elapsed = th.Now() - t0
	})
	eng.Run()
	if elapsed < fabric.CyclesToTime(fabric.TCPCycles) {
		t.Fatalf("miss latency %v below the TCP floor", elapsed)
	}
}

func TestArrayBoundsPanic(t *testing.T) {
	sys, eng := newSys(t, 1<<20)
	sys.Launch("app", func(th *Thread) {
		arr, _ := sys.NewArray(8, 4)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		arr.ReadU64(th, 4)
	})
	eng.Run()
}

func TestRegistrySnapshotCoversSystem(t *testing.T) {
	eng := sim.New()
	sys := New(eng, Config{
		LocalBytes: 1 << 20, RemoteBytes: 16 << 20, Fabric: fabric.TCPParams(),
	})
	sys.Start()
	sys.Launch("app", func(th *Thread) {
		arr, err := sys.NewArray(8, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < 4096; i++ {
			arr.WriteU64(th, i, i)
		}
		for i := uint64(0); i < 4096; i++ {
			if got := arr.ReadU64(th, i); got != i {
				t.Errorf("elem %d: got %d", i, got)
				return
			}
		}
	})
	eng.Run()
	snap := sys.Registry().Snapshot()
	if n, ok := snap.Counter("aifm.deref_checks"); !ok || n != sys.DerefChecks.N {
		t.Fatalf("snapshot deref_checks = %d,%v want %d", n, ok, sys.DerefChecks.N)
	}
	if n, ok := snap.Counter("aifm.misses"); !ok || n == 0 {
		t.Fatalf("snapshot misses = %d,%v", n, ok)
	}
	if n, ok := snap.Counter("link.node0.rx.bytes"); !ok || n == 0 {
		t.Fatalf("snapshot link counter = %d,%v", n, ok)
	}
}
