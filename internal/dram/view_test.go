package dram

import "testing"

func TestViewReservedAlloc(t *testing.T) {
	p := NewPool(10)
	v := NewView(p, 4, 2, nil)
	if v.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", v.Capacity())
	}
	var ids []FrameID
	for i := 0; i < 4; i++ {
		id, ok := v.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed under reservation", i)
		}
		ids = append(ids, id)
	}
	if _, ok := v.Alloc(); ok {
		t.Fatal("alloc beyond reservation with nil slack should fail")
	}
	if v.Used() != 4 || v.FreeCount() != 0 {
		t.Fatalf("Used=%d FreeCount=%d, want 4,0", v.Used(), v.FreeCount())
	}
	v.Free(ids[0])
	if v.Used() != 3 || v.FreeCount() != 1 {
		t.Fatalf("after free: Used=%d FreeCount=%d, want 3,1", v.Used(), v.FreeCount())
	}
}

func TestViewBorrowsFromSlack(t *testing.T) {
	p := NewPool(10)
	slack := NewSlack(3)
	a := NewView(p, 4, 1, slack)
	b := NewView(p, 3, 1, slack)
	// a fills its reservation then borrows all 3 slack frames.
	var ids []FrameID
	for i := 0; i < 7; i++ {
		id, ok := a.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		ids = append(ids, id)
	}
	if a.Borrowed() != 3 || slack.Free() != 0 {
		t.Fatalf("Borrowed=%d slack.Free=%d, want 3,0", a.Borrowed(), slack.Free())
	}
	if _, ok := a.Alloc(); ok {
		t.Fatal("alloc with slack exhausted should fail")
	}
	// b's reservation is still guaranteed despite a's borrowing.
	for i := 0; i < 3; i++ {
		if _, ok := b.Alloc(); !ok {
			t.Fatalf("b alloc %d failed: reservation not protected", i)
		}
	}
	if _, ok := b.Alloc(); ok {
		t.Fatal("b alloc beyond reservation with no slack left should fail")
	}
	// Freeing a's frames releases borrows first.
	a.Free(ids[6])
	a.Free(ids[5])
	if a.Borrowed() != 1 || slack.Free() != 2 {
		t.Fatalf("after frees: Borrowed=%d slack.Free=%d, want 1,2", a.Borrowed(), slack.Free())
	}
}

func TestViewSetReserved(t *testing.T) {
	p := NewPool(10)
	slack := NewSlack(2)
	v := NewView(p, 5, 2, slack)
	for i := 0; i < 5; i++ {
		v.Alloc()
	}
	// Shrinking below use converts the overage into slack borrows.
	if got := v.SetReserved(3); got != 3 {
		t.Fatalf("SetReserved(3) = %d, want 3", got)
	}
	if v.Borrowed() != 2 || slack.Free() != 0 {
		t.Fatalf("Borrowed=%d slack.Free=%d, want 2,0", v.Borrowed(), slack.Free())
	}
	// Can't shrink further: use minus borrowable headroom is the limit.
	if got := v.SetReserved(0); got != 3 {
		t.Fatalf("SetReserved(0) = %d, want clamp to 3", got)
	}
	// Growing back releases the borrows.
	if got := v.SetReserved(6); got != 6 {
		t.Fatalf("SetReserved(6) = %d, want 6", got)
	}
	if v.Borrowed() != 0 || slack.Free() != 2 {
		t.Fatalf("after grow: Borrowed=%d slack.Free=%d, want 0,2", v.Borrowed(), slack.Free())
	}
}

func TestViewSetReservedFloor(t *testing.T) {
	p := NewPool(10)
	v := NewView(p, 5, 3, nil)
	if got := v.SetReserved(1); got != 3 {
		t.Fatalf("SetReserved(1) = %d, want floor 3", got)
	}
}

func TestViewLRUIsolated(t *testing.T) {
	p := NewPool(10)
	slack := NewSlack(0)
	a := NewView(p, 3, 0, slack)
	b := NewView(p, 3, 0, slack)
	ida, _ := a.Alloc()
	idb, _ := b.Alloc()
	a.LRUPushBack(ida)
	b.LRUPushBack(idb)
	if a.LRULen() != 1 || b.LRULen() != 1 {
		t.Fatalf("LRULen = %d,%d, want 1,1", a.LRULen(), b.LRULen())
	}
	if a.LRUFront() != ida || b.LRUFront() != idb {
		t.Fatal("views see each other's LRU frames")
	}
	count := 0
	a.Walk(func(id FrameID, f *Frame) bool {
		if id != ida {
			t.Fatalf("a.Walk visited foreign frame %d", id)
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("a.Walk visited %d frames, want 1", count)
	}
	a.LRURotate(ida)
	if a.LRUFront() != ida || a.LRULen() != 1 {
		t.Fatal("rotate broke single-frame list")
	}
	a.LRURemove(ida)
	if a.LRULen() != 0 || b.LRULen() != 1 {
		t.Fatalf("remove leaked across views: %d,%d", a.LRULen(), b.LRULen())
	}
}

func TestViewFreeCountCappedByPool(t *testing.T) {
	p := NewPool(4)
	v := NewView(p, 4, 0, nil)
	// Drain the pool directly (as another owner would).
	p.Alloc()
	p.Alloc()
	p.Alloc()
	if v.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d, want 1 (pool-capped)", v.FreeCount())
	}
}

// TestViewHotPathDoesNotAllocate: the tenant-charged fault path runs
// Alloc/Free and the LRU ops on every fault; none of them may allocate.
func TestViewHotPathDoesNotAllocate(t *testing.T) {
	pool := NewPool(8)
	slack := NewSlack(2)
	v := NewView(pool, 4, 1, slack)
	if n := testing.AllocsPerRun(200, func() {
		id, ok := v.Alloc()
		if !ok {
			t.Fatal("alloc failed")
		}
		v.LRUPushBack(id)
		v.LRURotate(id)
		v.LRURemove(id)
		v.Free(id)
	}); n != 0 {
		t.Fatalf("view hot path allocates %v times per op", n)
	}
}
