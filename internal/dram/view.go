package dram

import "fmt"

// Frames is the allocator surface the page manager and fault path need:
// either the whole Pool (single-owner mode, the pre-tenant behaviour) or a
// tenant View carving a quota out of a shared Pool. Methods mirror Pool's
// exported API exactly so the swap is type-only — no call site changes, no
// timing changes.
type Frames interface {
	// Allocation.
	Alloc() (FrameID, bool)
	Free(id FrameID)
	Capacity() int
	FreeCount() int
	Used() int

	// Frame access.
	Bytes(id FrameID) []byte
	Meta(id FrameID) *Frame

	// Clock / LRU list (per-owner: each View keeps its own list so one
	// tenant's eviction clock never scans another tenant's frames).
	LRULen() int
	LRUPushBack(id FrameID)
	LRURemove(id FrameID)
	LRUFront() FrameID
	LRUNext(id FrameID) FrameID
	LRURotate(id FrameID)
	Walk(fn func(id FrameID, f *Frame) bool)

	// Per-core shards (sharded fault path). A Pool supports n shards; a
	// View is always single-sharded — tenancy and per-core sharding
	// partition the same frames along different axes and do not compose.
	SetShards(n int)
	Shards() int
	LRULenOf(shard int) int
	LRUPushBackOn(shard int, id FrameID)
	LRUFrontOf(shard int) FrameID
	WalkShard(shard int, fn func(id FrameID, f *Frame) bool)
}

var (
	_ Frames = (*Pool)(nil)
	_ Frames = (*View)(nil)
)

// Slack is the borrowable remainder of a shared pool: frames not reserved
// by any tenant, which views may allocate beyond their reservation on a
// first-come basis. The planner guarantees Σ reserved + slack ≤ pool
// capacity, so a view's reserved frames are always satisfiable even when
// the slack is fully borrowed.
type Slack struct {
	total int
	used  int
}

// NewSlack creates a slack pool of `frames` borrowable frames.
func NewSlack(frames int) *Slack {
	if frames < 0 {
		panic("dram: negative slack")
	}
	return &Slack{total: frames}
}

// Total returns the slack pool's size.
func (s *Slack) Total() int { return s.total }

// Free returns how many slack frames are currently unborrowed.
func (s *Slack) Free() int { return s.total - s.used }

// View is one tenant's partition of a shared Pool: a hard reservation of
// `reserved` frames (never stealable by other tenants), an optional shared
// Slack pool it may borrow from when over its reservation, and its own LRU
// list so its clock hand only ever touches its own frames. A View never
// holds frames itself — every Alloc/Free goes to the underlying Pool; the
// View only does the accounting that enforces the quota.
type View struct {
	pool     *Pool
	lru      lruList
	reserved int    // hard quota: frames guaranteed to this view
	floor    int    // admission floor: SetReserved never goes below this
	used     int    // frames currently allocated through this view
	borrowed int    // frames of `used` charged to the slack pool
	slack    *Slack // shared borrow pool; nil = borrowing disabled
}

// NewView carves a view of `reserved` frames (with an admission floor of
// `floor`) out of pool, borrowing from slack when over-reserved. slack may
// be nil to disable borrowing.
func NewView(pool *Pool, reserved, floor int, slack *Slack) *View {
	if reserved <= 0 {
		panic("dram: view needs at least one reserved frame")
	}
	if floor < 0 || floor > reserved {
		panic(fmt.Sprintf("dram: view floor %d outside [0,%d]", floor, reserved))
	}
	return &View{
		pool:     pool,
		lru:      lruList{head: NoFrame, tail: NoFrame},
		reserved: reserved,
		floor:    floor,
		slack:    slack,
	}
}

// Reserved returns the view's current hard quota.
func (v *View) Reserved() int { return v.reserved }

// Floor returns the admission floor below which SetReserved will not go.
func (v *View) Floor() int { return v.floor }

// Borrowed returns how many of the view's frames are charged to the slack
// pool.
func (v *View) Borrowed() int { return v.borrowed }

// Capacity reports the view's quota — what this tenant may rely on. Slack
// is deliberately excluded: watermarks and experiment sizing derive from
// Capacity, and slack frames can vanish when a neighbour claims them.
func (v *View) Capacity() int { return v.reserved }

// Used returns the number of frames allocated through this view.
func (v *View) Used() int { return v.used }

// FreeCount returns how many more frames the view could allocate right
// now: headroom under its reservation plus unborrowed slack, capped by
// what the underlying pool actually has free.
func (v *View) FreeCount() int {
	n := v.reserved - v.used
	if n < 0 {
		n = 0
	}
	if v.slack != nil {
		n += v.slack.Free()
	}
	if pf := v.pool.FreeCount(); pf < n {
		n = pf
	}
	return n
}

// Alloc takes a frame from the underlying pool, charging it to this
// view's reservation first and to the slack pool once over-reserved.
func (v *View) Alloc() (FrameID, bool) {
	if v.used >= v.reserved {
		if v.slack == nil || v.slack.Free() == 0 {
			return NoFrame, false
		}
		id, ok := v.pool.Alloc()
		if !ok {
			return NoFrame, false
		}
		v.used++
		v.borrowed++
		v.slack.used++
		return id, true
	}
	id, ok := v.pool.Alloc()
	if !ok {
		// Σ reserved + slack ≤ capacity makes this unreachable, but a
		// misconfigured pool shouldn't silently deadlock the reclaimer.
		return NoFrame, false
	}
	v.used++
	return id, true
}

// Free returns a frame to the underlying pool, releasing slack borrows
// first so the borrowable pool refills as soon as the view shrinks back
// toward its reservation.
func (v *View) Free(id FrameID) {
	v.pool.Free(id)
	v.used--
	if v.slack == nil {
		return
	}
	if over := v.used - v.reserved; v.borrowed > over {
		release := v.borrowed
		if over > 0 {
			release = v.borrowed - over
		}
		v.borrowed -= release
		v.slack.used -= release
	}
}

// SetReserved moves the view's quota to r, clamped to the admission floor
// and to what the view's current usage allows (usage beyond the new quota
// must be coverable by slack borrows). Returns the quota actually applied.
// The rebalancer calls this; it never forces eviction — a shrunk view just
// borrows until its reclaimer drains it back under quota.
func (v *View) SetReserved(r int) int {
	if r < v.floor {
		r = v.floor
	}
	if v.slack == nil {
		if r < v.used {
			r = v.used
		}
	} else if min := v.used - v.borrowed - v.slack.Free(); r < min {
		r = min
	}
	v.reserved = r
	// Re-derive the slack charge for the new quota.
	over := v.used - v.reserved
	if over < 0 {
		over = 0
	}
	if v.slack != nil {
		v.slack.used += over - v.borrowed
		v.borrowed = over
	}
	return r
}

// Bytes returns the frame's backing memory.
func (v *View) Bytes(id FrameID) []byte { return v.pool.Bytes(id) }

// Meta returns the frame's metadata for reading and mutation.
func (v *View) Meta(id FrameID) *Frame { return v.pool.Meta(id) }

// LRULen returns the number of frames on this view's LRU list.
func (v *View) LRULen() int { return v.lru.n }

// LRUPushBack appends a frame at the hot end of this view's LRU list.
func (v *View) LRUPushBack(id FrameID) { v.pool.listPushBack(&v.lru, id) }

// LRURemove unlinks a frame from this view's LRU list.
func (v *View) LRURemove(id FrameID) { v.pool.listRemove(&v.lru, id) }

// LRUFront returns the view's coldest frame, or NoFrame.
func (v *View) LRUFront() FrameID { return v.lru.head }

// LRUNext returns the frame after id on the view's list, or NoFrame.
func (v *View) LRUNext(id FrameID) FrameID { return v.pool.frame(id).next }

// LRURotate moves a frame to the hot end of the view's list.
func (v *View) LRURotate(id FrameID) {
	v.pool.listRemove(&v.lru, id)
	v.pool.listPushBack(&v.lru, id)
}

// Walk calls fn for each of the view's LRU frames from cold to hot.
func (v *View) Walk(fn func(id FrameID, f *Frame) bool) { v.pool.listWalk(&v.lru, fn) }

// SetShards is a no-op for n == 1; a View cannot be sharded (tenancy and
// per-core sharding do not compose — Config.Validate rejects the pair).
func (v *View) SetShards(n int) {
	if n != 1 {
		panic("dram: a tenant View cannot be sharded")
	}
}

// Shards returns 1: a view is always a single shard.
func (v *View) Shards() int { return 1 }

// LRULenOf returns the view's list length (shard must be 0).
func (v *View) LRULenOf(shard int) int {
	v.mustShard0(shard)
	return v.lru.n
}

// LRUPushBackOn appends on the view's single list (shard must be 0).
func (v *View) LRUPushBackOn(shard int, id FrameID) {
	v.mustShard0(shard)
	v.LRUPushBack(id)
}

// LRUFrontOf returns the view's coldest frame (shard must be 0).
func (v *View) LRUFrontOf(shard int) FrameID {
	v.mustShard0(shard)
	return v.lru.head
}

// WalkShard walks the view's single list (shard must be 0).
func (v *View) WalkShard(shard int, fn func(id FrameID, f *Frame) bool) {
	v.mustShard0(shard)
	v.pool.listWalk(&v.lru, fn)
}

func (v *View) mustShard0(shard int) {
	if shard != 0 {
		panic(fmt.Sprintf("dram: view has one shard, got shard %d", shard))
	}
}
