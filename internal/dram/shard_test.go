package dram

import (
	"math/rand"
	"testing"

	"dilos/internal/pagetable"
)

// collectShards walks every shard list and returns, per shard, the frame
// ids from cold to hot.
func collectShards(p *Pool) [][]FrameID {
	out := make([][]FrameID, p.Shards())
	for s := 0; s < p.Shards(); s++ {
		p.WalkShard(s, func(id FrameID, f *Frame) bool {
			out[s] = append(out[s], id)
			return true
		})
	}
	return out
}

// checkDisjoint asserts no frame sits on two shard lists, every listed
// frame's Shard() matches the list it is on, and the per-shard counters
// agree with the links.
func checkDisjoint(t *testing.T, p *Pool) {
	t.Helper()
	seen := map[FrameID]int{}
	total := 0
	for s, ids := range collectShards(p) {
		if len(ids) != p.LRULenOf(s) {
			t.Fatalf("shard %d: walk found %d frames, counter says %d", s, len(ids), p.LRULenOf(s))
		}
		total += len(ids)
		for _, id := range ids {
			if prev, dup := seen[id]; dup {
				t.Fatalf("frame %d on shard %d and shard %d", id, prev, s)
			}
			seen[id] = s
			if p.Meta(id).Shard() != s {
				t.Fatalf("frame %d on shard %d but Shard() = %d", id, s, p.Meta(id).Shard())
			}
		}
	}
	if total != p.LRULen() {
		t.Fatalf("LRULen = %d, shard walks found %d", p.LRULen(), total)
	}
}

// TestShardDisjointness churns frames across per-core shard lists —
// pushes, second-chance rotations, removals, and re-homes to a different
// shard — and checks after every phase that each frame is on at most one
// list. A frame on two clocks would be reclaimed twice.
func TestShardDisjointness(t *testing.T) {
	const shards, nframes = 4, 64
	p := NewPool(nframes)
	p.SetShards(shards)
	if p.Shards() != shards {
		t.Fatalf("Shards() = %d", p.Shards())
	}
	var ids []FrameID
	for i := 0; i < nframes; i++ {
		id, ok := p.Alloc()
		if !ok {
			t.Fatal("pool exhausted early")
		}
		p.Meta(id).VPN = pagetable.VPN(i)
		p.LRUPushBackOn(i%shards, id)
		ids = append(ids, id)
	}
	checkDisjoint(t, p)

	rng := rand.New(rand.NewSource(42))
	// Rotations stay on the home shard.
	for i := 0; i < 200; i++ {
		p.LRURotate(ids[rng.Intn(len(ids))])
	}
	checkDisjoint(t, p)

	// Re-home a random third of the frames: remove unlinks from the old
	// shard, push homes to the new one.
	for i := 0; i < nframes/3; i++ {
		id := ids[rng.Intn(len(ids))]
		if !p.Meta(id).inLRU {
			continue
		}
		p.LRURemove(id)
		p.LRUPushBackOn(rng.Intn(shards), id)
	}
	checkDisjoint(t, p)

	// Evict half: remove + free, then re-alloc and land on fresh shards.
	for i := 0; i < nframes/2; i++ {
		id := ids[i]
		p.LRURemove(id)
		p.Free(id)
	}
	checkDisjoint(t, p)
	for i := 0; i < nframes/2; i++ {
		id, ok := p.Alloc()
		if !ok {
			t.Fatal("re-alloc failed")
		}
		p.LRUPushBackOn(rng.Intn(shards), id)
	}
	checkDisjoint(t, p)
}

// TestShardDoublePushPanics pins the invariant directly: homing a frame
// onto a second list while it is still linked must panic, whichever shard
// the second push targets.
func TestShardDoublePushPanics(t *testing.T) {
	p := NewPool(4)
	p.SetShards(2)
	id, _ := p.Alloc()
	p.LRUPushBackOn(0, id)
	defer func() {
		if recover() == nil {
			t.Fatal("double push did not panic")
		}
	}()
	p.LRUPushBackOn(1, id)
}

// TestSetShardsAfterUseRejected: resharding with frames still on a list
// would orphan links, so it must panic.
func TestSetShardsAfterUseRejected(t *testing.T) {
	p := NewPool(4)
	id, _ := p.Alloc()
	p.LRUPushBack(id)
	defer func() {
		if recover() == nil {
			t.Fatal("SetShards with a populated LRU did not panic")
		}
	}()
	p.SetShards(4)
}
