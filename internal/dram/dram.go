// Package dram manages the computing node's local page frames: a fixed-size
// pool backing the local cache of the disaggregated address space. It
// provides O(1) allocation from a free list plus the intrusive LRU list the
// page manager's cleaner and reclaimer walk (§4.4). The pool knows nothing
// about PTEs; the page manager records each frame's owning virtual page so
// eviction can find the mapping to tear down.
package dram

import (
	"fmt"

	"dilos/internal/pagetable"
)

// FrameID identifies a frame in the pool.
type FrameID int32

// NoFrame is the nil FrameID.
const NoFrame FrameID = -1

// NoVPN marks a frame with no owner.
const NoVPN pagetable.VPN = ^pagetable.VPN(0)

// NoVec marks a frame with no clean-vector log entry.
const NoVec int32 = -1

// Frame is per-frame metadata.
type Frame struct {
	VPN    pagetable.VPN // owning virtual page, NoVPN when unowned
	Pinned bool          // excluded from reclamation (in-flight IO)
	VecIdx int32         // page manager's clean-vector log index, NoVec when none
	next   FrameID
	prev   FrameID
	shard  int16 // which LRU shard the frame is (or was last) on
	inLRU  bool
	free   bool
}

// Shard returns the LRU shard the frame is homed to (meaningful while the
// frame is on a list).
func (f *Frame) Shard() int { return int(f.shard) }

// lruList is one intrusive LRU list over a pool's frames: front = coldest
// (next clock victim), back = most recently inserted/rotated. The pool owns
// one for its legacy single-owner API; each tenant View owns its own — a
// frame's link fields live in Frame, and a frame is on at most one list.
type lruList struct {
	head, tail FrameID
	n          int
}

// Pool is a frame allocator over a contiguous local-DRAM arena. Its LRU
// state is an array of per-shard clock lists (one by default); sharded
// callers home each frame to the faulting core's list so the cleaner and
// reclaimer sweep shared-nothing queues.
type Pool struct {
	mem    []byte
	frames []Frame
	free   []FrameID
	lists  []lruList
}

// NewPool creates a pool of `frames` page frames with a single LRU shard.
func NewPool(frames int) *Pool {
	if frames <= 0 {
		panic("dram: pool needs at least one frame")
	}
	p := &Pool{
		mem:    make([]byte, frames*pagetable.PageSize),
		frames: make([]Frame, frames),
		free:   make([]FrameID, 0, frames),
		lists:  []lruList{{head: NoFrame, tail: NoFrame}},
	}
	for i := frames - 1; i >= 0; i-- {
		p.frames[i] = Frame{VPN: NoVPN, VecIdx: NoVec, next: NoFrame, prev: NoFrame, free: true}
		p.free = append(p.free, FrameID(i))
	}
	return p
}

// SetShards resizes the pool to n per-core LRU shards. Must be called
// before any frame is on a list (boot time).
func (p *Pool) SetShards(n int) {
	if n <= 0 {
		panic("dram: SetShards needs n >= 1")
	}
	for i := range p.lists {
		if p.lists[i].n != 0 {
			panic("dram: SetShards with frames on the LRU")
		}
	}
	p.lists = make([]lruList, n)
	for i := range p.lists {
		p.lists[i] = lruList{head: NoFrame, tail: NoFrame}
	}
}

// Shards returns the number of LRU shards.
func (p *Pool) Shards() int { return len(p.lists) }

// Capacity returns the total number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// FreeCount returns the number of unallocated frames.
func (p *Pool) FreeCount() int { return len(p.free) }

// Used returns the number of allocated frames.
func (p *Pool) Used() int { return len(p.frames) - len(p.free) }

// Alloc takes a frame from the free list. ok is false when the pool is
// exhausted — the caller (the page manager) then blocks on the reclaimer.
func (p *Pool) Alloc() (FrameID, bool) {
	k := len(p.free)
	if k == 0 {
		return NoFrame, false
	}
	id := p.free[k-1]
	p.free = p.free[:k-1]
	f := &p.frames[id]
	f.free = false
	f.VPN = NoVPN
	f.Pinned = false
	f.VecIdx = NoVec
	f.shard = 0
	return id, true
}

// Free returns a frame to the free list. The frame must not be on the LRU.
func (p *Pool) Free(id FrameID) {
	f := p.frame(id)
	if f.free {
		panic(fmt.Sprintf("dram: double free of frame %d", id))
	}
	if f.inLRU {
		panic(fmt.Sprintf("dram: freeing frame %d still on LRU", id))
	}
	f.free = true
	f.VPN = NoVPN
	f.Pinned = false
	f.VecIdx = NoVec
	p.free = append(p.free, id)
}

// Bytes returns the frame's backing memory.
func (p *Pool) Bytes(id FrameID) []byte {
	p.frame(id)
	off := int(id) * pagetable.PageSize
	return p.mem[off : off+pagetable.PageSize : off+pagetable.PageSize]
}

// Meta returns the frame's metadata for reading and mutation.
func (p *Pool) Meta(id FrameID) *Frame { return p.frame(id) }

func (p *Pool) frame(id FrameID) *Frame {
	if id < 0 || int(id) >= len(p.frames) {
		panic(fmt.Sprintf("dram: bad frame id %d", id))
	}
	return &p.frames[id]
}

// LRULen returns the number of frames across all LRU shards.
func (p *Pool) LRULen() int {
	n := 0
	for i := range p.lists {
		n += p.lists[i].n
	}
	return n
}

// LRULenOf returns the number of frames on one shard's list.
func (p *Pool) LRULenOf(shard int) int { return p.lists[shard].n }

// LRUPushBack appends a frame at the hot end of shard 0's LRU list. Newly
// allocated pages enter here (§4.4: "The allocator inserts all newly
// allocated pages into an LRU list").
func (p *Pool) LRUPushBack(id FrameID) { p.LRUPushBackOn(0, id) }

// LRUPushBackOn appends a frame at the hot end of one shard's list and
// homes the frame there; later LRURotate/LRURemove calls touch only that
// shard.
func (p *Pool) LRUPushBackOn(shard int, id FrameID) {
	f := p.frame(id)
	f.shard = int16(shard)
	p.listPushBack(&p.lists[shard], id)
}

// LRURemove unlinks a frame from its home shard's LRU list.
func (p *Pool) LRURemove(id FrameID) {
	f := p.frame(id)
	p.listRemove(&p.lists[f.shard], id)
}

// LRUFront returns the coldest frame of shard 0 (clock hand position), or
// NoFrame.
func (p *Pool) LRUFront() FrameID { return p.lists[0].head }

// LRUFrontOf returns the coldest frame of one shard, or NoFrame.
func (p *Pool) LRUFrontOf(shard int) FrameID { return p.lists[shard].head }

// LRUNext returns the frame after id on its shard's list, or NoFrame.
func (p *Pool) LRUNext(id FrameID) FrameID { return p.frame(id).next }

// LRURotate moves a frame to the hot end of its home shard — the clock
// algorithm's "second chance" for pages whose accessed bit was set.
func (p *Pool) LRURotate(id FrameID) {
	f := p.frame(id)
	l := &p.lists[f.shard]
	p.listRemove(l, id)
	p.listPushBack(l, id)
}

// Walk calls fn for each LRU frame from cold to hot, shard 0 first;
// returning false stops. fn must not mutate the list; use the returned ids
// afterwards.
func (p *Pool) Walk(fn func(id FrameID, f *Frame) bool) {
	for i := range p.lists {
		stopped := false
		p.listWalk(&p.lists[i], func(id FrameID, f *Frame) bool {
			if !fn(id, f) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// WalkShard calls fn for each frame of one shard's list from cold to hot.
func (p *Pool) WalkShard(shard int, fn func(id FrameID, f *Frame) bool) {
	p.listWalk(&p.lists[shard], fn)
}

// listPushBack appends a frame at the hot end of one LRU list.
func (p *Pool) listPushBack(l *lruList, id FrameID) {
	f := p.frame(id)
	if f.inLRU {
		panic(fmt.Sprintf("dram: frame %d already on LRU", id))
	}
	if f.free {
		panic(fmt.Sprintf("dram: free frame %d pushed to LRU", id))
	}
	f.inLRU = true
	f.prev = l.tail
	f.next = NoFrame
	if l.tail != NoFrame {
		p.frames[l.tail].next = id
	} else {
		l.head = id
	}
	l.tail = id
	l.n++
}

// listRemove unlinks a frame from one LRU list.
func (p *Pool) listRemove(l *lruList, id FrameID) {
	f := p.frame(id)
	if !f.inLRU {
		panic(fmt.Sprintf("dram: frame %d not on LRU", id))
	}
	if f.prev != NoFrame {
		p.frames[f.prev].next = f.next
	} else {
		l.head = f.next
	}
	if f.next != NoFrame {
		p.frames[f.next].prev = f.prev
	} else {
		l.tail = f.prev
	}
	f.inLRU = false
	f.next, f.prev = NoFrame, NoFrame
	l.n--
}

// listWalk calls fn for each frame of one list from cold to hot.
func (p *Pool) listWalk(l *lruList, fn func(id FrameID, f *Frame) bool) {
	for id := l.head; id != NoFrame; id = p.frames[id].next {
		if !fn(id, &p.frames[id]) {
			return
		}
	}
}
