// Package dram manages the computing node's local page frames: a fixed-size
// pool backing the local cache of the disaggregated address space. It
// provides O(1) allocation from a free list plus the intrusive LRU list the
// page manager's cleaner and reclaimer walk (§4.4). The pool knows nothing
// about PTEs; the page manager records each frame's owning virtual page so
// eviction can find the mapping to tear down.
package dram

import (
	"fmt"

	"dilos/internal/pagetable"
)

// FrameID identifies a frame in the pool.
type FrameID int32

// NoFrame is the nil FrameID.
const NoFrame FrameID = -1

// NoVPN marks a frame with no owner.
const NoVPN pagetable.VPN = ^pagetable.VPN(0)

// Frame is per-frame metadata.
type Frame struct {
	VPN    pagetable.VPN // owning virtual page, NoVPN when unowned
	Pinned bool          // excluded from reclamation (in-flight IO)
	next   FrameID
	prev   FrameID
	inLRU  bool
	free   bool
}

// lruList is one intrusive LRU list over a pool's frames: front = coldest
// (next clock victim), back = most recently inserted/rotated. The pool owns
// one for its legacy single-owner API; each tenant View owns its own — a
// frame's link fields live in Frame, and a frame is on at most one list.
type lruList struct {
	head, tail FrameID
	n          int
}

// Pool is a frame allocator over a contiguous local-DRAM arena.
type Pool struct {
	mem    []byte
	frames []Frame
	free   []FrameID
	lru    lruList
}

// NewPool creates a pool of `frames` page frames.
func NewPool(frames int) *Pool {
	if frames <= 0 {
		panic("dram: pool needs at least one frame")
	}
	p := &Pool{
		mem:    make([]byte, frames*pagetable.PageSize),
		frames: make([]Frame, frames),
		free:   make([]FrameID, 0, frames),
		lru:    lruList{head: NoFrame, tail: NoFrame},
	}
	for i := frames - 1; i >= 0; i-- {
		p.frames[i] = Frame{VPN: NoVPN, next: NoFrame, prev: NoFrame, free: true}
		p.free = append(p.free, FrameID(i))
	}
	return p
}

// Capacity returns the total number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// FreeCount returns the number of unallocated frames.
func (p *Pool) FreeCount() int { return len(p.free) }

// Used returns the number of allocated frames.
func (p *Pool) Used() int { return len(p.frames) - len(p.free) }

// Alloc takes a frame from the free list. ok is false when the pool is
// exhausted — the caller (the page manager) then blocks on the reclaimer.
func (p *Pool) Alloc() (FrameID, bool) {
	k := len(p.free)
	if k == 0 {
		return NoFrame, false
	}
	id := p.free[k-1]
	p.free = p.free[:k-1]
	f := &p.frames[id]
	f.free = false
	f.VPN = NoVPN
	f.Pinned = false
	return id, true
}

// Free returns a frame to the free list. The frame must not be on the LRU.
func (p *Pool) Free(id FrameID) {
	f := p.frame(id)
	if f.free {
		panic(fmt.Sprintf("dram: double free of frame %d", id))
	}
	if f.inLRU {
		panic(fmt.Sprintf("dram: freeing frame %d still on LRU", id))
	}
	f.free = true
	f.VPN = NoVPN
	f.Pinned = false
	p.free = append(p.free, id)
}

// Bytes returns the frame's backing memory.
func (p *Pool) Bytes(id FrameID) []byte {
	p.frame(id)
	off := int(id) * pagetable.PageSize
	return p.mem[off : off+pagetable.PageSize : off+pagetable.PageSize]
}

// Meta returns the frame's metadata for reading and mutation.
func (p *Pool) Meta(id FrameID) *Frame { return p.frame(id) }

func (p *Pool) frame(id FrameID) *Frame {
	if id < 0 || int(id) >= len(p.frames) {
		panic(fmt.Sprintf("dram: bad frame id %d", id))
	}
	return &p.frames[id]
}

// LRULen returns the number of frames on the LRU list.
func (p *Pool) LRULen() int { return p.lru.n }

// LRUPushBack appends a frame at the hot end of the LRU list. Newly
// allocated pages enter here (§4.4: "The allocator inserts all newly
// allocated pages into an LRU list").
func (p *Pool) LRUPushBack(id FrameID) { p.listPushBack(&p.lru, id) }

// LRURemove unlinks a frame from the LRU list.
func (p *Pool) LRURemove(id FrameID) { p.listRemove(&p.lru, id) }

// LRUFront returns the coldest frame (clock hand position), or NoFrame.
func (p *Pool) LRUFront() FrameID { return p.lru.head }

// LRUNext returns the frame after id on the list, or NoFrame.
func (p *Pool) LRUNext(id FrameID) FrameID { return p.frame(id).next }

// LRURotate moves a frame to the hot end — the clock algorithm's "second
// chance" for pages whose accessed bit was set.
func (p *Pool) LRURotate(id FrameID) {
	p.listRemove(&p.lru, id)
	p.listPushBack(&p.lru, id)
}

// Walk calls fn for each LRU frame from cold to hot; returning false stops.
// fn must not mutate the list; use the returned ids afterwards.
func (p *Pool) Walk(fn func(id FrameID, f *Frame) bool) { p.listWalk(&p.lru, fn) }

// listPushBack appends a frame at the hot end of one LRU list.
func (p *Pool) listPushBack(l *lruList, id FrameID) {
	f := p.frame(id)
	if f.inLRU {
		panic(fmt.Sprintf("dram: frame %d already on LRU", id))
	}
	if f.free {
		panic(fmt.Sprintf("dram: free frame %d pushed to LRU", id))
	}
	f.inLRU = true
	f.prev = l.tail
	f.next = NoFrame
	if l.tail != NoFrame {
		p.frames[l.tail].next = id
	} else {
		l.head = id
	}
	l.tail = id
	l.n++
}

// listRemove unlinks a frame from one LRU list.
func (p *Pool) listRemove(l *lruList, id FrameID) {
	f := p.frame(id)
	if !f.inLRU {
		panic(fmt.Sprintf("dram: frame %d not on LRU", id))
	}
	if f.prev != NoFrame {
		p.frames[f.prev].next = f.next
	} else {
		l.head = f.next
	}
	if f.next != NoFrame {
		p.frames[f.next].prev = f.prev
	} else {
		l.tail = f.prev
	}
	f.inLRU = false
	f.next, f.prev = NoFrame, NoFrame
	l.n--
}

// listWalk calls fn for each frame of one list from cold to hot.
func (p *Pool) listWalk(l *lruList, fn func(id FrameID, f *Frame) bool) {
	for id := l.head; id != NoFrame; id = p.frames[id].next {
		if !fn(id, &p.frames[id]) {
			return
		}
	}
}
