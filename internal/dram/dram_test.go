package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeConservation(t *testing.T) {
	p := NewPool(8)
	if p.Capacity() != 8 || p.FreeCount() != 8 {
		t.Fatalf("capacity=%d free=%d", p.Capacity(), p.FreeCount())
	}
	var ids []FrameID
	for {
		id, ok := p.Alloc()
		if !ok {
			break
		}
		ids = append(ids, id)
	}
	if len(ids) != 8 || p.FreeCount() != 0 || p.Used() != 8 {
		t.Fatalf("alloc'd %d, free=%d", len(ids), p.FreeCount())
	}
	seen := map[FrameID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate frame %d", id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		p.Free(id)
	}
	if p.FreeCount() != 8 {
		t.Fatal("frames lost")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool(2)
	id, _ := p.Alloc()
	p.Free(id)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Free(id)
}

func TestFreeWhileOnLRUPanics(t *testing.T) {
	p := NewPool(2)
	id, _ := p.Alloc()
	p.LRUPushBack(id)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Free(id)
}

func TestBytesAreDistinctAndPageSized(t *testing.T) {
	p := NewPool(3)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	ba, bb := p.Bytes(a), p.Bytes(b)
	if len(ba) != 4096 || cap(ba) != 4096 {
		t.Fatalf("frame size %d cap %d", len(ba), cap(ba))
	}
	ba[0] = 0xaa
	if bb[0] == 0xaa {
		t.Fatal("frames share memory")
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewPool(4)
	var ids []FrameID
	for i := 0; i < 4; i++ {
		id, _ := p.Alloc()
		p.LRUPushBack(id)
		ids = append(ids, id)
	}
	if p.LRUFront() != ids[0] {
		t.Fatal("front is not the oldest")
	}
	p.LRURotate(ids[0]) // second chance
	if p.LRUFront() != ids[1] {
		t.Fatal("rotate did not advance the clock hand")
	}
	var order []FrameID
	p.Walk(func(id FrameID, f *Frame) bool {
		order = append(order, id)
		return true
	})
	want := []FrameID{ids[1], ids[2], ids[3], ids[0]}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLRURemoveMiddle(t *testing.T) {
	p := NewPool(3)
	var ids []FrameID
	for i := 0; i < 3; i++ {
		id, _ := p.Alloc()
		p.LRUPushBack(id)
		ids = append(ids, id)
	}
	p.LRURemove(ids[1])
	if p.LRULen() != 2 {
		t.Fatalf("len = %d", p.LRULen())
	}
	var order []FrameID
	p.Walk(func(id FrameID, f *Frame) bool { order = append(order, id); return true })
	if len(order) != 2 || order[0] != ids[0] || order[1] != ids[2] {
		t.Fatalf("order = %v", order)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	p := NewPool(5)
	for i := 0; i < 5; i++ {
		id, _ := p.Alloc()
		p.LRUPushBack(id)
	}
	n := 0
	p.Walk(func(id FrameID, f *Frame) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

// Property (DESIGN.md §6): under any random op sequence, free + used ==
// capacity, no frame is both free and on the LRU, and the LRU list length
// matches the count of inLRU frames.
func TestQuickPoolInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 16
		p := NewPool(cap)
		allocated := map[FrameID]bool{} // id -> onLRU
		for i := 0; i < 400; i++ {
			switch rng.Intn(4) {
			case 0:
				if id, ok := p.Alloc(); ok {
					allocated[id] = false
				}
			case 1: // push a random allocated, non-LRU frame
				for id, on := range allocated {
					if !on {
						p.LRUPushBack(id)
						allocated[id] = true
						break
					}
				}
			case 2: // remove a random LRU frame
				for id, on := range allocated {
					if on {
						p.LRURemove(id)
						allocated[id] = false
						break
					}
				}
			case 3: // free a random non-LRU frame
				for id, on := range allocated {
					if !on {
						p.Free(id)
						delete(allocated, id)
						break
					}
				}
			}
			if p.FreeCount()+p.Used() != cap {
				return false
			}
			onLRU := 0
			for _, on := range allocated {
				if on {
					onLRU++
				}
			}
			if onLRU != p.LRULen() {
				return false
			}
		}
		// Walk must visit exactly LRULen frames.
		n := 0
		p.Walk(func(FrameID, *Frame) bool { n++; return true })
		return n == p.LRULen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
