package comm

import (
	"testing"

	"dilos/internal/fabric"
	"dilos/internal/memnode"
)

func TestHubQueueAssignment(t *testing.T) {
	node := memnode.New(8<<20, 7)
	link := fabric.NewLink(node, fabric.DefaultParams())
	h := NewHub(link, 3, node.ProtKey)
	if h.Cores() != 3 {
		t.Fatalf("cores = %d", h.Cores())
	}
	seen := map[*fabric.QP]bool{}
	for c := 0; c < 3; c++ {
		for m := Module(0); m < NumModules; m++ {
			qp := h.QP(c, m)
			if qp == nil {
				t.Fatalf("nil QP for core %d module %v", c, m)
			}
			if seen[qp] {
				t.Fatalf("QP shared between (core,module) pairs — not shared-nothing")
			}
			seen[qp] = true
		}
	}
	if len(seen) != 3*int(NumModules) {
		t.Fatalf("expected %d distinct QPs, got %d", 3*int(NumModules), len(seen))
	}
}

func TestNoHeadOfLineBlockingAcrossModules(t *testing.T) {
	node := memnode.New(8<<20, 7)
	link := fabric.NewLink(node, fabric.DefaultParams())
	h := NewHub(link, 1, node.ProtKey)
	off, _ := node.AllocPage()

	// §4.5's head-of-line scenario: a large low-priority transfer (a
	// 16 KiB guide subpage batch) is in flight. A tiny fault-path probe
	// behind it on the SAME queue is FIFO-ordered after it; on its own
	// queue it overtakes (it still shares wire occupancy, but not
	// completion ordering).
	pf := h.QP(0, ModPrefetch)
	big := pf.Read(0, off, make([]byte, 16384))
	shared := pf.Read(1, off, make([]byte, 8))
	own := h.QP(0, ModFault).Read(1, off, make([]byte, 8))
	if shared.CompleteAt < big.CompleteAt {
		t.Fatal("shared-queue op escaped its FIFO — model broken")
	}
	if own.CompleteAt >= shared.CompleteAt {
		t.Fatalf("separate QP gave no head-of-line relief: own=%v shared=%v",
			own.CompleteAt, shared.CompleteAt)
	}
}

func TestModuleString(t *testing.T) {
	names := map[Module]string{
		ModFault: "fault", ModPrefetch: "prefetch", ModCleaner: "cleaner",
		ModReclaim: "reclaim", ModGuide: "guide",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}
