package comm

import (
	"testing"
	"testing/quick"

	"dilos/internal/fabric"
	"dilos/internal/memnode"
)

func TestHubQueueAssignment(t *testing.T) {
	node := memnode.New(8<<20, 7)
	link := fabric.NewLink(node, fabric.DefaultParams())
	h := NewHub(link, 3, node.ProtKey)
	if h.Cores() != 3 {
		t.Fatalf("cores = %d", h.Cores())
	}
	seen := map[*fabric.QP]bool{}
	for c := 0; c < 3; c++ {
		for m := Module(0); m < NumModules; m++ {
			qp := h.QP(c, m)
			if qp == nil {
				t.Fatalf("nil QP for core %d module %v", c, m)
			}
			if seen[qp] {
				t.Fatalf("QP shared between (core,module) pairs — not shared-nothing")
			}
			seen[qp] = true
		}
	}
	if len(seen) != 3*int(NumModules) {
		t.Fatalf("expected %d distinct QPs, got %d", 3*int(NumModules), len(seen))
	}
}

func TestNoHeadOfLineBlockingAcrossModules(t *testing.T) {
	node := memnode.New(8<<20, 7)
	link := fabric.NewLink(node, fabric.DefaultParams())
	h := NewHub(link, 1, node.ProtKey)
	off, _ := node.AllocPage()

	// §4.5's head-of-line scenario: a large low-priority transfer (a
	// 16 KiB guide subpage batch) is in flight. A tiny fault-path probe
	// behind it on the SAME queue is FIFO-ordered after it; on its own
	// queue it overtakes (it still shares wire occupancy, but not
	// completion ordering).
	pf := h.QP(0, ModPrefetch)
	big := pf.Read(0, off, make([]byte, 16384))
	shared := pf.Read(1, off, make([]byte, 8))
	own := h.QP(0, ModFault).Read(1, off, make([]byte, 8))
	if shared.CompleteAt < big.CompleteAt {
		t.Fatal("shared-queue op escaped its FIFO — model broken")
	}
	if own.CompleteAt >= shared.CompleteAt {
		t.Fatalf("separate QP gave no head-of-line relief: own=%v shared=%v",
			own.CompleteAt, shared.CompleteAt)
	}
}

func TestModuleString(t *testing.T) {
	names := map[Module]string{
		ModFault: "fault", ModPrefetch: "prefetch", ModCleaner: "cleaner",
		ModReclaim: "reclaim", ModGuide: "guide",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

// TestHubDistinctQPsProperty checks the shared-nothing invariant over
// arbitrary core counts: a per-module hub hands every (core, module) pair
// its own queue pair, and the same pair always resolves to the same QP.
func TestHubDistinctQPsProperty(t *testing.T) {
	prop := func(coreSeed uint8) bool {
		cores := int(coreSeed)%8 + 1
		node := memnode.New(8<<20, 7)
		link := fabric.NewLink(node, fabric.DefaultParams())
		h := NewHub(link, cores, node.ProtKey)
		if h.Cores() != cores {
			return false
		}
		seen := map[*fabric.QP]bool{}
		for c := 0; c < cores; c++ {
			for m := Module(0); m < NumModules; m++ {
				qp := h.QP(c, m)
				if qp == nil || seen[qp] || h.QP(c, m) != qp {
					return false
				}
				seen[qp] = true
			}
		}
		return len(seen) == cores*int(NumModules)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSharedHubAliasesProperty checks the ablation hub's invariant: all
// modules on one core alias a single queue pair, and distinct cores still
// get distinct queue pairs.
func TestSharedHubAliasesProperty(t *testing.T) {
	prop := func(coreSeed uint8) bool {
		cores := int(coreSeed)%8 + 1
		node := memnode.New(8<<20, 7)
		link := fabric.NewLink(node, fabric.DefaultParams())
		h := NewSharedHub(link, cores, node.ProtKey)
		perCore := map[*fabric.QP]bool{}
		for c := 0; c < cores; c++ {
			qp := h.QP(c, ModFault)
			if qp == nil || perCore[qp] {
				return false
			}
			perCore[qp] = true
			for m := Module(0); m < NumModules; m++ {
				if h.QP(c, m) != qp {
					return false
				}
			}
		}
		return len(perCore) == cores
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModuleStringRoundTrip(t *testing.T) {
	for m := Module(0); m < NumModules; m++ {
		got, err := ParseModule(m.String())
		if err != nil {
			t.Fatalf("ParseModule(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseModule(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseModule("bogus"); err == nil {
		t.Fatal("ParseModule accepted an unknown name")
	}
	if _, err := ParseModule(NumModules.String()); err == nil {
		t.Fatal("ParseModule accepted the out-of-range sentinel")
	}
}
