// Package comm is DiLOS' communication module (§4.5): it hands every paging
// module on every core its own RDMA queue pair, so a page fault's fetch is
// never queued behind lower-priority prefetch, cleaner, or guide traffic
// (no head-of-line blocking), and modules never contend on a lock for queue
// access (shared-nothing). Guides additionally get dedicated per-core
// subpage queues for their own subpaging mechanisms.
package comm

import (
	"fmt"

	"dilos/internal/fabric"
)

// Module identifies a paging module for queue assignment.
type Module int

// The paging modules of a DiLOS computing node.
const (
	ModFault    Module = iota // page fault handler fetches
	ModPrefetch               // prefetcher page fetches
	ModCleaner                // background write-back
	ModReclaim                // reclaimer traffic (sync write-back under pressure)
	ModGuide                  // guide subpage queues (§4.5, separate from paging)
	ModHealth                 // health-monitor probes and re-replication traffic
	ModMigrate                // migration-engine page copies (drain/rebalance)
	NumModules
)

func (m Module) String() string {
	switch m {
	case ModFault:
		return "fault"
	case ModPrefetch:
		return "prefetch"
	case ModCleaner:
		return "cleaner"
	case ModReclaim:
		return "reclaim"
	case ModGuide:
		return "guide"
	case ModHealth:
		return "health"
	case ModMigrate:
		return "migrate"
	}
	return fmt.Sprintf("module(%d)", int(m))
}

// ParseModule is the inverse of Module.String for the named modules.
func ParseModule(name string) (Module, error) {
	for m := Module(0); m < NumModules; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("comm: unknown module %q", name)
}

// Hub owns the per-core × per-module queue pairs.
type Hub struct {
	qps [][]*fabric.QP // [core][module]
}

// NewHub creates queue pairs for `cores` cores against the link.
func NewHub(link *fabric.Link, cores int, protKey uint32) *Hub {
	h := &Hub{qps: make([][]*fabric.QP, cores)}
	for c := 0; c < cores; c++ {
		h.qps[c] = make([]*fabric.QP, NumModules)
		for m := Module(0); m < NumModules; m++ {
			h.qps[c][m] = link.MustQP(fmt.Sprintf("core%d.%s", c, m), protKey)
		}
	}
	return h
}

// NewSharedHub creates a hub where every module on a core shares one queue
// pair (the design §4.5 argues against: fault fetches get FIFO-ordered
// behind prefetcher and cleaner traffic). It exists for the ablation
// benchmarks.
func NewSharedHub(link *fabric.Link, cores int, protKey uint32) *Hub {
	h := &Hub{qps: make([][]*fabric.QP, cores)}
	for c := 0; c < cores; c++ {
		qp := link.MustQP(fmt.Sprintf("core%d.shared", c), protKey)
		h.qps[c] = make([]*fabric.QP, NumModules)
		for m := Module(0); m < NumModules; m++ {
			h.qps[c][m] = qp
		}
	}
	return h
}

// Cores returns the number of cores the hub serves.
func (h *Hub) Cores() int { return len(h.qps) }

// QP returns the queue pair for (core, module). Any module gains
// blocking-free access regardless of the core it runs on.
func (h *Hub) QP(core int, m Module) *fabric.QP {
	return h.qps[core][m]
}

// SetLimiter attaches one fabric-bandwidth limiter to every queue pair in
// the hub. Multi-tenant systems call this with the tenant's token bucket:
// all the tenant's traffic — faults, prefetch, write-back — drains from
// one budget, which is exactly the shape of the noisy-neighbor problem.
func (h *Hub) SetLimiter(lim fabric.Limiter) {
	for _, core := range h.qps {
		for _, qp := range core {
			qp.Lim = lim
		}
	}
}
