// Package trace records and replays page-access traces. A Recorder hooks
// a system's fault stream (VPN, virtual time, fault kind) into a bounded
// ring; traces can be saved to a compact binary format, inspected for
// stride/locality statistics, and replayed through any space.Space — which
// is how prefetcher changes are evaluated against captured behaviour
// instead of hand-written loops.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/space"
)

// Kind classifies a recorded event.
type Kind uint8

// Event kinds.
const (
	Major Kind = iota
	Minor
	Hit
	Write
)

func (k Kind) String() string {
	switch k {
	case Major:
		return "major"
	case Minor:
		return "minor"
	case Hit:
		return "hit"
	case Write:
		return "write"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded page access. Core is the ID of the core whose
// fault handler observed the access (0 when the producer predates core
// attribution or the trace was saved in the v1 format).
type Event struct {
	At   sim.Time
	VPN  pagetable.VPN
	Kind Kind
	Core int
}

// Recorder accumulates events in a bounded ring (oldest dropped first).
type Recorder struct {
	Cap     int
	events  []Event
	start   int
	dropped int64
}

// NewRecorder creates a recorder keeping up to cap events (≤0 → 1<<20).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 1 << 20
	}
	return &Recorder{Cap: cap}
}

// Record appends an event attributed to core 0.
func (r *Recorder) Record(at sim.Time, vpn pagetable.VPN, kind Kind) {
	r.RecordOn(at, vpn, kind, 0)
}

// RecordOn appends an event attributed to the given core.
func (r *Recorder) RecordOn(at sim.Time, vpn pagetable.VPN, kind Kind, core int) {
	e := Event{At: at, VPN: vpn, Kind: kind, Core: core}
	if len(r.events) < r.Cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.Cap
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many events the ring evicted.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Events returns the retained events in arrival order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Stats summarizes a trace for prefetcher design: kind counts, the
// distribution of strides, and how much of the trace a pure sequential
// prefetcher could have covered.
type Stats struct {
	Counts        [4]int64
	UniquePages   int
	SeqFraction   float64 // |stride| == 1 share of transitions
	TopStride     int64
	TopStrideFrac float64
}

// Analyze computes Stats over the retained events.
func (r *Recorder) Analyze() Stats {
	ev := r.Events()
	var st Stats
	pages := map[pagetable.VPN]bool{}
	strides := map[int64]int{}
	var seq, total int
	for i, e := range ev {
		st.Counts[e.Kind]++
		pages[e.VPN] = true
		if i > 0 {
			d := int64(e.VPN) - int64(ev[i-1].VPN)
			strides[d]++
			total++
			if d == 1 || d == -1 {
				seq++
			}
		}
	}
	st.UniquePages = len(pages)
	if total > 0 {
		st.SeqFraction = float64(seq) / float64(total)
		best, bestN := int64(0), 0
		for d, n := range strides {
			if n > bestN {
				best, bestN = d, n
			}
		}
		st.TopStride = best
		st.TopStrideFrac = float64(bestN) / float64(total)
	}
	return st
}

// Save writes the trace in a compact binary format:
// "DTR2" u32-count, then per event varint(dt) varint(zigzag dvpn) u8 kind
// uvarint(core). The v1 format ("DTRC", no core byte) is still loadable.
func (r *Recorder) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("DTR2"); err != nil {
		return err
	}
	ev := r.Events()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(ev)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	prevT := sim.Time(0)
	prevV := pagetable.VPN(0)
	for _, e := range ev {
		n := binary.PutUvarint(buf[:], uint64(e.At-prevT))
		bw.Write(buf[:n])
		n = binary.PutVarint(buf[:], int64(e.VPN)-int64(prevV))
		bw.Write(buf[:n])
		bw.WriteByte(byte(e.Kind))
		n = binary.PutUvarint(buf[:], uint64(e.Core))
		bw.Write(buf[:n])
		prevT, prevV = e.At, e.VPN
	}
	return bw.Flush()
}

// Load reads a trace written by Save — either the current "DTR2" format
// or the pre-core "DTRC" layout (every event then reports Core 0).
func Load(rd io.Reader) ([]Event, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	var hasCore bool
	switch string(magic) {
	case "DTRC":
	case "DTR2":
		hasCore = true
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(hdr[:])
	// Never trust the header for the allocation size (a corrupt count
	// would be an OOM); grow as events actually decode.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	events := make([]Event, 0, capHint)
	prevT := sim.Time(0)
	prevV := pagetable.VPN(0)
	for i := uint32(0); i < count; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		dv, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		k, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if Kind(k) > Write {
			return nil, fmt.Errorf("trace: invalid event kind %d", k)
		}
		var core uint64
		if hasCore {
			core, err = binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if core > 1<<16 {
				return nil, fmt.Errorf("trace: implausible core ID %d", core)
			}
		}
		prevT += sim.Time(dt)
		prevV = pagetable.VPN(int64(prevV) + dv)
		events = append(events, Event{At: prevT, VPN: prevV, Kind: Kind(k), Core: int(core)})
	}
	return events, nil
}

// Replay drives a Space with the access pattern of a trace: one touch per
// event at the event's page (reads for Major/Minor/Hit, a store for
// Write), pages rebased onto `base`. Inter-event think time is reproduced
// as Compute so the paging system sees the original pacing. Returns the
// number of events replayed.
func Replay(sp space.Space, base uint64, events []Event) int {
	if len(events) == 0 {
		return 0
	}
	minV := events[0].VPN
	for _, e := range events {
		if e.VPN < minV {
			minV = e.VPN
		}
	}
	prev := events[0].At
	for _, e := range events {
		if think := e.At - prev; think > 0 {
			sp.Compute(think / 4) // think time net of the original fault cost
		}
		prev = e.At
		addr := base + uint64(e.VPN-minV)*pagetable.PageSize
		if e.Kind == Write {
			sp.StoreU64(addr, uint64(e.VPN))
		} else {
			sp.LoadU8(addr)
		}
	}
	return len(events)
}

// Span returns the page-span of a trace (max VPN − min VPN + 1).
func Span(events []Event) uint64 {
	if len(events) == 0 {
		return 0
	}
	minV, maxV := events[0].VPN, events[0].VPN
	for _, e := range events {
		if e.VPN < minV {
			minV = e.VPN
		}
		if e.VPN > maxV {
			maxV = e.VPN
		}
	}
	return uint64(maxV-minV) + 1
}
