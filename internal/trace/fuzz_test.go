package trace

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens the trace decoder against corrupt files.
func FuzzLoad(f *testing.F) {
	r := NewRecorder(0)
	r.Record(1, 2, Major)
	r.Record(5, 9, Write)
	var seed bytes.Buffer
	r.Save(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("DTRC"))
	f.Add([]byte("XXXX\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loads must save/load identically.
		r := NewRecorder(len(events) + 1)
		for _, e := range events {
			r.RecordOn(e.At, e.VPN, e.Kind, e.Core)
		}
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(events) {
			t.Fatal("length changed across save/load")
		}
	})
}
