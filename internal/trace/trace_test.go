package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"dilos/internal/pagetable"
	"dilos/internal/sim"
	"dilos/internal/space"
)

func TestRecorderOrderAndRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(sim.Time(i), pagetable.VPN(i), Major)
	}
	if r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	ev := r.Events()
	for i, e := range ev {
		if e.VPN != pagetable.VPN(i+2) {
			t.Fatalf("events = %v", ev)
		}
	}
}

func TestAnalyze(t *testing.T) {
	r := NewRecorder(0)
	// 10 sequential majors, then 5 stride-16 minors, then a hit.
	for i := 0; i < 10; i++ {
		r.Record(sim.Time(i), pagetable.VPN(100+i), Major)
	}
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(20+i), pagetable.VPN(200+16*i), Minor)
	}
	r.Record(30, 500, Hit)
	st := r.Analyze()
	if st.Counts[Major] != 10 || st.Counts[Minor] != 5 || st.Counts[Hit] != 1 {
		t.Fatalf("counts = %v", st.Counts)
	}
	if st.UniquePages != 16 {
		t.Fatalf("unique = %d", st.UniquePages)
	}
	if st.SeqFraction < 0.5 {
		t.Fatalf("seq fraction = %v", st.SeqFraction)
	}
	if st.TopStride != 1 {
		t.Fatalf("top stride = %d", st.TopStride)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	rng := rand.New(rand.NewSource(5))
	var want []Event
	at := sim.Time(0)
	for i := 0; i < 500; i++ {
		at += sim.Time(rng.Intn(10000))
		e := Event{At: at, VPN: pagetable.VPN(rng.Intn(1 << 20)), Kind: Kind(rng.Intn(4)), Core: rng.Intn(8)}
		r.RecordOn(e.At, e.VPN, e.Kind, e.Core)
		want = append(want, e)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestLoadV1Compat hand-builds a pre-core "DTRC" file and checks it still
// loads, with every event attributed to core 0.
func TestLoadV1Compat(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("DTRC")
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 2)
	buf.Write(hdr[:])
	var vb [binary.MaxVarintLen64]byte
	put := func(dt uint64, dv int64, k Kind) {
		n := binary.PutUvarint(vb[:], dt)
		buf.Write(vb[:n])
		n = binary.PutVarint(vb[:], dv)
		buf.Write(vb[:n])
		buf.WriteByte(byte(k))
	}
	put(100, 7, Major)
	put(50, -3, Write)
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 100, VPN: 7, Kind: Major, Core: 0},
		{At: 150, VPN: 4, Kind: Write, Core: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// Property: Save/Load round-trips any event sequence.
func TestQuickSaveLoad(t *testing.T) {
	f := func(raw []struct {
		Dt   uint16
		VPN  uint32
		Kind uint8
		Core uint8
	}) bool {
		r := NewRecorder(0)
		at := sim.Time(0)
		for _, x := range raw {
			at += sim.Time(x.Dt)
			r.RecordOn(at, pagetable.VPN(x.VPN), Kind(x.Kind%4), int(x.Core))
		}
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		want := r.Events()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayTouchesPages(t *testing.T) {
	events := []Event{
		{At: 0, VPN: 10, Kind: Major},
		{At: 1000, VPN: 11, Kind: Write},
		{At: 2000, VPN: 15, Kind: Minor},
	}
	sp := space.NewLocal(1 << 20)
	base := sp.Malloc(Span(events) * pagetable.PageSize)
	if n := Replay(sp, base, events); n != 3 {
		t.Fatalf("replayed %d", n)
	}
	// The write event must have landed (page 11 rebased to index 1).
	if sp.LoadU64(base+1*pagetable.PageSize) != 11 {
		t.Fatal("write event not replayed")
	}
	if Span(events) != 6 {
		t.Fatalf("span = %d", Span(events))
	}
}

func TestReplayEmpty(t *testing.T) {
	sp := space.NewLocal(4096)
	if Replay(sp, 0, nil) != 0 {
		t.Fatal("empty replay did something")
	}
}
