// Package chaos is the deterministic fault-injection substrate of the
// paging stack. DiLOS assumes a lossless fabric; the surveys in PAPERS.md
// name far-memory fault tolerance as the field's biggest open problem, so
// this repository makes failure a first-class, *testable* input: a seeded
// Injector that the fabric consults once per RDMA op and that can
//
//   - fail an op outright with some probability (lost/poisoned packet,
//     RNR-retry exhaustion — the op completes after a detection latency
//     carrying an error instead of data),
//   - amplify an op's latency (tail events: congestion, PFC pauses),
//   - stall a queue pair (the op and everything FIFO-ordered behind it
//     slips by a fixed window),
//   - crash and recover whole memory nodes on a schedule driven by sim
//     time (every op against a down node fails until the window closes).
//
// Determinism is the point: the same seed and schedule produce the
// byte-identical fault sequence on every run (property-tested), so chaos
// experiments are reproducible, bisectable, and usable as regression
// tests. The injector draws a fixed number of PRNG values per decision
// regardless of outcome, so one decision never shifts the sequence of the
// rest.
package chaos

import (
	"errors"
	"fmt"
	"strings"

	"dilos/internal/sim"
	"dilos/internal/stats"
)

// Injected op failures carry one of these sentinel errors.
var (
	// ErrInjected marks a probabilistically failed op.
	ErrInjected = errors.New("chaos: injected op failure")
	// ErrNodeDown marks an op against a node inside a crash window.
	ErrNodeDown = errors.New("chaos: memory node down")
)

// CrashWindow schedules a memory-node outage: every op against Node
// issued at t with At <= t < Until fails with ErrNodeDown. Until == 0
// means the node never comes back.
type CrashWindow struct {
	Node  int
	At    sim.Time
	Until sim.Time
}

// Config parameterises an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives the PRNG; identical seeds (and schedules) reproduce
	// identical fault sequences.
	Seed uint64
	// FailProb is the per-op probability of an injected failure.
	FailProb float64
	// TailProb is the per-op probability of tail-latency amplification;
	// an amplified op's latency is multiplied by TailFactor.
	TailProb   float64
	TailFactor float64
	// TailAt/TailUntil gate tail amplification to a virtual-time window —
	// the knob the detection-latency experiments use to switch a tail storm
	// on mid-run. Both zero means always on; TailUntil == 0 with TailAt set
	// means "from TailAt onward". The window test is PRNG-free, so gating
	// never shifts the draw sequence.
	TailAt    sim.Time
	TailUntil sim.Time
	// StallProb is the per-op probability of a queue-pair stall of
	// StallTime (the op and everything FIFO-behind it slips).
	StallProb float64
	StallTime sim.Time
	// DetectLatency is how long a failed op takes to complete with its
	// error — the (simulated) transport timeout. Zero selects the default.
	DetectLatency sim.Time
	// Crashes schedules whole-node outages.
	Crashes []CrashWindow
}

// DefaultDetectLatency is the failure-detection latency when the config
// leaves it zero: roughly an RDMA retransmission timeout, long against a
// ~3 µs op but short against the health monitor's probe period.
const DefaultDetectLatency = 15 * sim.Microsecond

// Decision is the injector's verdict on one op.
type Decision struct {
	// Fail aborts the op: no data moves and the op completes with Err
	// after FailAfter.
	Fail      bool
	Err       error
	FailAfter sim.Time
	// Extra is added to the op's completion latency (tail amplification).
	Extra sim.Time
	// Stall is added to the queue pair's FIFO horizon before the op.
	Stall sim.Time
}

// Injector makes per-op fault decisions. It is not safe for concurrent
// use; in this repository every consumer runs inside the single-threaded
// simulation.
type Injector struct {
	cfg Config
	rng Rand

	Fails   stats.Counter // ops failed (probabilistic + node-down)
	Tails   stats.Counter // ops with amplified latency
	Stalls  stats.Counter // QP stalls injected
	Crashed stats.Counter // ops refused because the node was down
}

// NewInjector builds an injector from the config.
func NewInjector(cfg Config) *Injector {
	if cfg.DetectLatency <= 0 {
		cfg.DetectLatency = DefaultDetectLatency
	}
	if cfg.TailFactor < 1 {
		cfg.TailFactor = 1
	}
	return &Injector{
		cfg:     cfg,
		rng:     NewRand(cfg.Seed),
		Fails:   stats.Counter{Name: "chaos.fails"},
		Tails:   stats.Counter{Name: "chaos.tails"},
		Stalls:  stats.Counter{Name: "chaos.stalls"},
		Crashed: stats.Counter{Name: "chaos.node_down_ops"},
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// RegisterStats folds the injector's counters into a registry.
func (in *Injector) RegisterStats(r *stats.Registry) {
	r.RegisterCounter(&in.Fails)
	r.RegisterCounter(&in.Tails)
	r.RegisterCounter(&in.Stalls)
	r.RegisterCounter(&in.Crashed)
}

// NodeDown reports whether node is inside a crash window at time now.
// It is PRNG-free, so callers may consult it without perturbing the
// fault sequence.
func (in *Injector) NodeDown(node int, now sim.Time) bool {
	for _, w := range in.cfg.Crashes {
		if w.Node == node && now >= w.At && (w.Until == 0 || now < w.Until) {
			return true
		}
	}
	return false
}

// Decide renders the verdict for one op of `bytes` bytes against `node`
// issued at `now`; lat is the op's nominal latency (for proportional tail
// amplification). Exactly three PRNG draws happen per call, whatever the
// outcome, so decisions never shift each other's randomness.
func (in *Injector) Decide(now sim.Time, node int, write bool, bytes int, lat sim.Time) Decision {
	pFail := in.rng.Float64()
	pTail := in.rng.Float64()
	pStall := in.rng.Float64()
	var d Decision
	if in.NodeDown(node, now) {
		in.Crashed.Inc()
		in.Fails.Inc()
		return Decision{Fail: true, Err: ErrNodeDown, FailAfter: in.cfg.DetectLatency}
	}
	if pFail < in.cfg.FailProb {
		in.Fails.Inc()
		return Decision{Fail: true, Err: ErrInjected, FailAfter: in.cfg.DetectLatency}
	}
	if pTail < in.cfg.TailProb && in.cfg.TailFactor > 1 && in.tailActive(now) {
		d.Extra = sim.Time(float64(lat) * (in.cfg.TailFactor - 1))
		in.Tails.Inc()
	}
	if pStall < in.cfg.StallProb && in.cfg.StallTime > 0 {
		d.Stall = in.cfg.StallTime
		in.Stalls.Inc()
	}
	return d
}

// tailActive reports whether now falls inside the tail-amplification
// window (always when no window is configured).
func (in *Injector) tailActive(now sim.Time) bool {
	if in.cfg.TailAt == 0 && in.cfg.TailUntil == 0 {
		return true
	}
	if now < in.cfg.TailAt {
		return false
	}
	return in.cfg.TailUntil == 0 || now < in.cfg.TailUntil
}

// Profiles name canned configurations for the CLI tools (-chaos-profile).
// Times are virtual; the crash profile's window is sized for the ext4
// experiment's run length and documented in EXPERIMENTS.md.
func Profiles() []string { return []string{"none", "flaky", "tail", "crash"} }

// ParseProfile builds a Config for a named profile under a seed.
func ParseProfile(name string, seed uint64) (Config, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return Config{Seed: seed}, nil
	case "flaky":
		return Config{
			Seed:       seed,
			FailProb:   0.02,
			TailProb:   0.05,
			TailFactor: 8,
			StallProb:  0.005,
			StallTime:  50 * sim.Microsecond,
		}, nil
	case "tail":
		return Config{
			Seed:       seed,
			TailProb:   0.10,
			TailFactor: 12,
		}, nil
	case "crash":
		return Config{
			Seed:    seed,
			Crashes: []CrashWindow{{Node: 1, At: 2 * sim.Millisecond, Until: 8 * sim.Millisecond}},
		}, nil
	}
	return Config{}, fmt.Errorf("chaos: unknown profile %q (have %v)", name, Profiles())
}

// Rand is a splitmix64 PRNG — tiny, fast, and fully determined by its
// seed. It also serves the retry jitter in fabric.ReliableQP, keeping the
// whole failure-handling stack reproducible.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) Rand { return Rand{state: seed} }

// Uint64 returns the next value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Jitter returns a uniform virtual-time value in [0, max).
func (r *Rand) Jitter(max sim.Time) sim.Time {
	if max <= 0 {
		return 0
	}
	return sim.Time(r.Uint64() % uint64(max))
}
