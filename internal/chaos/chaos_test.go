package chaos

import (
	"fmt"
	"testing"

	"dilos/internal/sim"
)

// opTrace drives an injector through a fixed mixed op sequence (reads,
// writes, vectored ops of varying size against several nodes) and
// serialises every decision byte-for-byte.
func opTrace(in *Injector, ops int) string {
	var out []byte
	rng := NewRand(7) // op mix generator, independent of the injector
	now := sim.Time(0)
	for i := 0; i < ops; i++ {
		node := int(rng.Uint64() % 3)
		write := rng.Uint64()%2 == 0
		bytes := 64 << (rng.Uint64() % 7) // 64 B .. 4 KiB
		segs := 1 + int(rng.Uint64()%4)
		lat := sim.Time(2*sim.Microsecond) + sim.Time(bytes/4)
		for s := 0; s < segs; s++ {
			d := in.Decide(now, node, write, bytes, lat)
			out = append(out, fmt.Sprintf("%d:%v:%v:%d:%d:%d;", i, d.Fail, d.Err, d.FailAfter, d.Extra, d.Stall)...)
		}
		now += sim.Time(rng.Uint64() % uint64(50*sim.Microsecond))
	}
	return string(out)
}

func chaosCfg(seed uint64) Config {
	return Config{
		Seed:       seed,
		FailProb:   0.05,
		TailProb:   0.10,
		TailFactor: 8,
		StallProb:  0.02,
		StallTime:  40 * sim.Microsecond,
		Crashes:    []CrashWindow{{Node: 1, At: 300 * sim.Microsecond, Until: 900 * sim.Microsecond}},
	}
}

// TestInjectorDeterminism is the satellite property test: two injectors
// with the same seed and schedule produce byte-identical fault sequences
// across reads, writes, and vectored ops.
func TestInjectorDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 32; seed++ {
		a := NewInjector(chaosCfg(seed))
		b := NewInjector(chaosCfg(seed))
		ta, tb := opTrace(a, 400), opTrace(b, 400)
		if ta != tb {
			t.Fatalf("seed %d: traces diverge", seed)
		}
		if a.Fails.N != b.Fails.N || a.Tails.N != b.Tails.N || a.Stalls.N != b.Stalls.N {
			t.Fatalf("seed %d: counters diverge", seed)
		}
		if a.Fails.N == 0 || a.Tails.N == 0 {
			t.Fatalf("seed %d: config injects but nothing was injected", seed)
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	a := NewInjector(chaosCfg(1))
	b := NewInjector(chaosCfg(2))
	if opTrace(a, 400) == opTrace(b, 400) {
		t.Fatal("different seeds produced the identical fault sequence")
	}
}

func TestCrashWindow(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Crashes: []CrashWindow{
		{Node: 1, At: 100, Until: 200},
		{Node: 2, At: 50}, // forever
	}})
	cases := []struct {
		node int
		at   sim.Time
		down bool
	}{
		{1, 99, false}, {1, 100, true}, {1, 199, true}, {1, 200, false},
		{2, 49, false}, {2, 50, true}, {2, 1 << 40, true},
		{0, 150, false},
	}
	for _, c := range cases {
		if got := in.NodeDown(c.node, c.at); got != c.down {
			t.Errorf("NodeDown(%d, %d) = %v, want %v", c.node, c.at, got, c.down)
		}
	}
	// An op against a down node fails with ErrNodeDown and charges the
	// detection latency, regardless of probabilities.
	d := in.Decide(150, 1, false, 4096, 3*sim.Microsecond)
	if !d.Fail || d.Err != ErrNodeDown || d.FailAfter != DefaultDetectLatency {
		t.Fatalf("op against down node: %+v", d)
	}
	d = in.Decide(250, 1, false, 4096, 3*sim.Microsecond)
	if d.Fail {
		t.Fatalf("op after window still failed: %+v", d)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := NewInjector(Config{Seed: 99})
	for i := 0; i < 1000; i++ {
		d := in.Decide(sim.Time(i), i%4, i%2 == 0, 4096, 3*sim.Microsecond)
		if d.Fail || d.Extra != 0 || d.Stall != 0 {
			t.Fatalf("zero config injected %+v at op %d", d, i)
		}
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range Profiles() {
		cfg, err := ParseProfile(name, 7)
		if err != nil {
			t.Fatalf("profile %q: %v", name, err)
		}
		if cfg.Seed != 7 {
			t.Fatalf("profile %q dropped the seed", name)
		}
	}
	if _, err := ParseProfile("bogus", 1); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(100)
		if j < 0 || j >= 100 {
			t.Fatalf("jitter %d out of [0,100)", j)
		}
	}
	if r.Jitter(0) != 0 || r.Jitter(-5) != 0 {
		t.Fatal("non-positive max must yield 0")
	}
}
