package redis

import (
	"encoding/binary"

	"dilos/internal/guide"
	"dilos/internal/pagetable"
	"dilos/internal/sim"
)

// AppGuide is the paper's app-aware prefetcher for Redis (§6.3): four
// subpage-prefetch handlers and four hooker functions, compiled with the
// Redis "source" (this package), no changes to the command implementations
// beyond the loader-style hook points they already expose.
//
//   - GET: when a value is found, a daemon reads the SDS header with a
//     subpage fetch, learns the value length, and prefetches exactly the
//     pages the value occupies.
//   - LRANGE (Figure 11): the daemon chases the quicklist — one subpage
//     read per 32-byte node yields the ziplist pointer, the cached ziplist
//     size, and the next node; the daemon prefetches the ziplist's pages
//     and the next node's page, then chases on — staying ahead of the
//     traversal at one subpage round-trip per node.
type AppGuide struct {
	Depth int // quicklist chase runway (nodes)

	host   guide.Host
	coreID int

	getQ []uint64 // SDS addresses awaiting header-guided prefetch

	lrNode   uint64 // next quicklist node to chase
	lrActive bool
	lrRunway int

	work sim.Waiter

	SubpageReads int64
	PagePrefetch int64
}

// NewAppGuide creates the Redis guide.
func NewAppGuide() *AppGuide { return &AppGuide{Depth: 6} }

// Name implements guide.Guide.
func (g *AppGuide) Name() string { return "redis-app-aware" }

// Start implements guide.Guide.
func (g *AppGuide) Start(h guide.Host) {
	g.host = h
	h.GoDaemon("guide.redis", g.daemon)
}

// OnFault implements guide.Guide (the guide is hook-driven).
func (g *AppGuide) OnFault(coreID int, vpn pagetable.VPN) {}

// Install wires the guide's hookers into a server running on process p
// (what DiLOS' ELF loader does when the guide binary is loaded beside the
// application).
func (g *AppGuide) Install(srv *Server, p *sim.Proc) {
	srv.OnGetValue = func(sds uint64) {
		g.getQ = append(g.getQ, sds)
		g.work.Wake(p.Now())
	}
	srv.OnLRangeStart = func(head uint64) {
		g.lrNode = head
		g.lrActive = true
		g.lrRunway = 0
		g.work.Wake(p.Now())
	}
	srv.OnLRangeNode = func(node, zl uint64) {
		if g.lrRunway > 0 {
			g.lrRunway--
		}
		g.work.Wake(p.Now())
	}
	srv.OnLRangeEnd = func() {
		g.lrActive = false
	}
}

func (g *AppGuide) daemon(p *sim.Proc) {
	for {
		switch {
		case len(g.getQ) > 0:
			sds := g.getQ[0]
			g.getQ = g.getQ[1:]
			g.prefetchSDS(p, sds)
		case g.lrActive && g.lrNode != 0 && g.lrRunway < g.Depth:
			g.chaseQuicklist(p)
		default:
			g.work.Wait(p)
		}
	}
}

// prefetchSDS reads the 8-byte SDS header via the guide queue and
// prefetches the exact pages of the value body.
func (g *AppGuide) prefetchSDS(p *sim.Proc, sds uint64) {
	var hdr [8]byte
	if err := g.host.ReadRemote(p, g.coreID, sds, hdr[:]); err != nil {
		return
	}
	g.SubpageReads++
	n := uint64(binary.LittleEndian.Uint32(hdr[:4]))
	g.prefetchRange(p, sds, sdsHeader+n)
}

// chaseQuicklist advances one node: a single subpage read of the 32-byte
// node header yields the ziplist pointer, its cached size, and the next
// node — Figure 11's PG/SubPG choreography at one round-trip per node.
func (g *AppGuide) chaseQuicklist(p *sim.Proc) {
	node := g.lrNode
	var nb [qlNodeSize]byte
	if err := g.host.ReadRemote(p, g.coreID, node, nb[:]); err != nil {
		g.lrActive = false
		return
	}
	g.SubpageReads++
	next := binary.LittleEndian.Uint64(nb[8:16])
	zl := binary.LittleEndian.Uint64(nb[16:24])
	zlbytes := uint64(binary.LittleEndian.Uint32(nb[28:32]))
	if zl != 0 && zlbytes > 0 {
		g.prefetchRange(p, zl, zlbytes)
	}
	if next != 0 {
		g.prefetchRange(p, next, qlNodeSize)
	}
	g.lrNode = next
	g.lrRunway++
}

// prefetchRange schedules page prefetches covering [addr, addr+n).
func (g *AppGuide) prefetchRange(p *sim.Proc, addr, n uint64) {
	if n == 0 {
		return
	}
	first := pagetable.VPNOf(addr)
	last := pagetable.VPNOf(addr + n - 1)
	g.PagePrefetch += int64(last - first + 1)
	g.host.Prefetch(p, g.coreID, guide.Request{Addr: addr, Bytes: n})
}
