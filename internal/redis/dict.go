package redis

import (
	"dilos/internal/dalloc"
	"dilos/internal/sim"
	"dilos/internal/space"
)

// Dict is Redis' main hash table: a power-of-two bucket array of entry
// pointers living in disaggregated memory, chained dictEntries of
// [key sds][val][next]. Growth doubles the bucket array at load factor 1
// (the paper's workloads pre-populate, so the amortized rehash pattern
// matches redis' behaviour well enough without incremental rehashing).
type Dict struct {
	sp    space.Space
	alloc *dalloc.Allocator

	buckets uint64 // DDC address of the bucket array
	size    uint64 // number of buckets (power of two)
	count   uint64
}

const entrySize = 24

// NewDict creates an empty dict with 16 buckets.
func NewDict(sp space.Space, alloc *dalloc.Allocator) *Dict {
	d := &Dict{sp: sp, alloc: alloc, size: 16}
	d.buckets = alloc.Alloc(d.size * 8)
	d.zeroBuckets(d.buckets, d.size)
	return d
}

func (d *Dict) zeroBuckets(addr, n uint64) {
	zero := make([]byte, 4096)
	for off := uint64(0); off < n*8; {
		chunk := n*8 - off
		if chunk > 4096 {
			chunk = 4096
		}
		d.sp.Store(addr+off, zero[:chunk])
		off += chunk
	}
}

// Len returns the number of keys.
func (d *Dict) Len() uint64 { return d.count }

// hash is FNV-1a over the key (host-side key bytes; cost charged per word).
func (d *Dict) hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	d.sp.Compute(sim.Time(len(key)/8+1) * 2 * sim.Nanosecond)
	return h
}

// bucketAddr returns the DDC address of bucket i.
func (d *Dict) bucketAddr(i uint64) uint64 { return d.buckets + i*8 }

// Find returns the value for key.
func (d *Dict) Find(key []byte) (uint64, bool) {
	h := d.hash(key) & (d.size - 1)
	e := d.sp.LoadU64(d.bucketAddr(h))
	for e != 0 {
		ks := d.sp.LoadU64(e)
		if d.sdsEqual(ks, key) {
			return d.sp.LoadU64(e + 8), true
		}
		e = d.sp.LoadU64(e + 16)
	}
	return 0, false
}

func (d *Dict) sdsEqual(addr uint64, key []byte) bool {
	if d.sp.LoadU32(addr) != uint32(len(key)) {
		return false
	}
	buf := make([]byte, len(key))
	d.sp.Load(addr+sdsHeader, buf)
	for i := range key {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}

// Insert stores key → val. If the key existed, the old value address is
// returned with ok=true and replaced.
func (d *Dict) Insert(key []byte, val uint64) (old uint64, existed bool) {
	if d.count >= d.size {
		d.grow()
	}
	h := d.hash(key) & (d.size - 1)
	ba := d.bucketAddr(h)
	e := d.sp.LoadU64(ba)
	for e != 0 {
		ks := d.sp.LoadU64(e)
		if d.sdsEqual(ks, key) {
			old = d.sp.LoadU64(e + 8)
			d.sp.StoreU64(e+8, val)
			return old, true
		}
		e = d.sp.LoadU64(e + 16)
	}
	// New entry at bucket head.
	entry := d.alloc.Alloc(entrySize)
	ks := d.newKeySDS(key)
	d.sp.StoreU64(entry, ks)
	d.sp.StoreU64(entry+8, val)
	d.sp.StoreU64(entry+16, d.sp.LoadU64(ba))
	d.sp.StoreU64(ba, entry)
	d.count++
	return 0, false
}

func (d *Dict) newKeySDS(key []byte) uint64 {
	addr := d.alloc.Alloc(uint64(sdsHeader + len(key)))
	d.sp.StoreU32(addr, uint32(len(key)))
	d.sp.StoreU32(addr+4, uint32(d.alloc.SizeOf(addr)-sdsHeader))
	d.sp.Store(addr+sdsHeader, key)
	return addr
}

// Delete removes key, returning its value address.
func (d *Dict) Delete(key []byte) (uint64, bool) {
	h := d.hash(key) & (d.size - 1)
	prev := uint64(0)
	e := d.sp.LoadU64(d.bucketAddr(h))
	for e != 0 {
		ks := d.sp.LoadU64(e)
		if d.sdsEqual(ks, key) {
			next := d.sp.LoadU64(e + 16)
			if prev == 0 {
				d.sp.StoreU64(d.bucketAddr(h), next)
			} else {
				d.sp.StoreU64(prev+16, next)
			}
			val := d.sp.LoadU64(e + 8)
			d.alloc.Free(ks)
			d.alloc.Free(e)
			d.count--
			return val, true
		}
		prev = e
		e = d.sp.LoadU64(e + 16)
	}
	return 0, false
}

// grow doubles the bucket array and rehashes every entry.
func (d *Dict) grow() {
	newSize := d.size * 2
	newBuckets := d.alloc.Alloc(newSize * 8)
	d.zeroBuckets(newBuckets, newSize)
	for i := uint64(0); i < d.size; i++ {
		e := d.sp.LoadU64(d.bucketAddr(i))
		for e != 0 {
			next := d.sp.LoadU64(e + 16)
			ks := d.sp.LoadU64(e)
			klen := d.sp.LoadU32(ks)
			kb := make([]byte, klen)
			d.sp.Load(ks+sdsHeader, kb)
			nh := d.hash(kb) & (newSize - 1)
			na := newBuckets + nh*8
			d.sp.StoreU64(e+16, d.sp.LoadU64(na))
			d.sp.StoreU64(na, e)
			e = next
		}
	}
	d.alloc.Free(d.buckets)
	d.buckets = newBuckets
	d.size = newSize
}
