package redis

import "strconv"

// Additional commands beyond the benchmark set — the string/list surface a
// key-value store is expected to have, all operating through the space.

// Exists reports whether key is present.
func (s *Server) Exists(key []byte) bool {
	s.sp.Compute(s.costs.Dispatch)
	_, ok := s.dict.Find(key)
	return ok
}

// StrLen returns the value length, or 0 for a missing key.
func (s *Server) StrLen(key []byte) uint32 {
	s.sp.Compute(s.costs.Dispatch)
	val, ok := s.dict.Find(key)
	if !ok {
		return 0
	}
	return s.SDSLen(val)
}

// Append appends suffix to the value (creating the key if missing) and
// returns the new length. Like Redis' sds, it grows in place when the SDS'
// spare capacity allows and reallocates otherwise.
func (s *Server) Append(key, suffix []byte) uint32 {
	s.sp.Compute(s.costs.Dispatch)
	val, ok := s.dict.Find(key)
	if !ok {
		sds := s.NewSDS(suffix)
		s.dict.Insert(key, sds)
		return uint32(len(suffix))
	}
	n := s.sp.LoadU32(val)
	alloc := s.sp.LoadU32(val + 4)
	if n+uint32(len(suffix)) <= alloc {
		s.sp.Store(val+sdsHeader+uint64(n), suffix)
		s.sp.StoreU32(val, n+uint32(len(suffix)))
		return n + uint32(len(suffix))
	}
	// Reallocate: old body + suffix into a fresh SDS.
	body := make([]byte, int(n)+len(suffix))
	s.sp.Load(val+sdsHeader, body[:n])
	copy(body[n:], suffix)
	sds := s.NewSDS(body)
	s.dict.Insert(key, sds)
	s.FreeSDS(val)
	return uint32(len(body))
}

// IncrBy interprets the value as a decimal integer and adds delta,
// returning the new value (Redis' INCR/INCRBY). Missing keys start at 0.
// Returns ok=false when the value is not an integer.
func (s *Server) IncrBy(key []byte, delta int64) (int64, bool) {
	s.sp.Compute(s.costs.Dispatch)
	cur := int64(0)
	if val, ok := s.dict.Find(key); ok {
		body := s.SDSRead(val)
		v, err := strconv.ParseInt(string(body), 10, 64)
		if err != nil {
			return 0, false
		}
		cur = v
	}
	cur += delta
	s.Set(key, []byte(strconv.FormatInt(cur, 10)))
	return cur, true
}

// LIndex returns element idx of the list at key (negative counts from the
// tail), or nil when out of range — a single-element LRANGE that skips
// whole quicklist nodes by their cached counts.
func (s *Server) LIndex(key []byte, idx int) []byte {
	s.sp.Compute(s.costs.Dispatch)
	addr, ok := s.dict.Find(key)
	if !ok {
		return nil
	}
	ql := s.openQuicklist(addr)
	n := int(ql.Len())
	if idx < 0 {
		idx = n + idx
	}
	if idx < 0 || idx >= n {
		return nil
	}
	out := ql.Range(idx, idx, nil, nil, nil)
	if len(out) != 1 {
		return nil
	}
	return out[0]
}

// DBSize returns the number of keys.
func (s *Server) DBSize() uint64 {
	s.sp.Compute(s.costs.Dispatch)
	return s.dict.Len()
}

// SetNX stores key → val only if the key does not exist; reports whether
// it was stored.
func (s *Server) SetNX(key, val []byte) bool {
	s.sp.Compute(s.costs.Dispatch)
	if _, ok := s.dict.Find(key); ok {
		return false
	}
	s.dict.Insert(key, s.NewSDS(val))
	return true
}

// GetSet atomically replaces the value and returns the old one (nil if
// the key was absent).
func (s *Server) GetSet(key, val []byte) []byte {
	s.sp.Compute(s.costs.Dispatch)
	sds := s.NewSDS(val)
	old, existed := s.dict.Insert(key, sds)
	if !existed {
		return nil
	}
	out := s.SDSRead(old)
	s.FreeSDS(old)
	return out
}

// GetDel returns the value and deletes the key (nil if absent).
func (s *Server) GetDel(key []byte) []byte {
	s.sp.Compute(s.costs.Dispatch)
	val, ok := s.dict.Delete(key)
	if !ok {
		return nil
	}
	out := s.SDSRead(val)
	s.FreeSDS(val)
	return out
}

// MGet returns the values for several keys (nil entries for misses).
func (s *Server) MGet(keys ...[]byte) [][]byte {
	s.sp.Compute(s.costs.Dispatch)
	out := make([][]byte, len(keys))
	for i, k := range keys {
		if val, ok := s.dict.Find(k); ok {
			out[i] = s.SDSRead(val)
		}
	}
	return out
}

// MSet stores several key/value pairs (args alternate key, value).
func (s *Server) MSet(pairs ...[]byte) {
	if len(pairs)%2 != 0 {
		panic("redis: MSet needs key/value pairs")
	}
	s.sp.Compute(s.costs.Dispatch)
	for i := 0; i < len(pairs); i += 2 {
		sds := s.NewSDS(pairs[i+1])
		if old, ok := s.dict.Insert(pairs[i], sds); ok {
			s.FreeSDS(old)
		}
	}
}
