package redis

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"
)

func respRoundTrip(t *testing.T, v RespValue) RespValue {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResp(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResp(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode %q: %v", buf.String(), err)
	}
	return got
}

func TestRespRoundTripBasics(t *testing.T) {
	cases := []RespValue{
		{Kind: RespString, Str: "OK"},
		{Kind: RespError, Str: "ERR boom"},
		{Kind: RespInt, Int: -42},
		{Kind: RespBulk, Bulk: []byte("hello\r\nworld")}, // CRLF inside bulk
		{Kind: RespBulk, Bulk: []byte{}},
		{Kind: RespNil},
		Command([]byte("SET"), []byte("k"), []byte("v")),
		{Kind: RespArray, Array: []RespValue{}},
	}
	for i, v := range cases {
		got := respRoundTrip(t, v)
		if !respEqual(got, v) {
			t.Fatalf("case %d: %+v != %+v", i, got, v)
		}
	}
}

func respEqual(a, b RespValue) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case RespString, RespError:
		return a.Str == b.Str
	case RespInt:
		return a.Int == b.Int
	case RespBulk:
		return bytes.Equal(a.Bulk, b.Bulk)
	case RespNil:
		return true
	case RespArray:
		if len(a.Array) != len(b.Array) {
			return false
		}
		for i := range a.Array {
			if !respEqual(a.Array[i], b.Array[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Property: arbitrary command arrays round-trip through the codec.
func TestQuickRespCommands(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true
		}
		cmd := Command(raw...)
		var buf bytes.Buffer
		if err := WriteResp(&buf, cmd); err != nil {
			return false
		}
		got, err := ReadResp(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return respEqual(got, cmd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRespRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "x\r\n", "$5\r\nab\r\n", "*2\r\n+a\r\n", ":notanint\r\n", "+no-terminator"} {
		if _, err := ReadResp(bufio.NewReader(bytes.NewReader([]byte(s)))); err == nil {
			t.Fatalf("accepted garbage %q", s)
		}
	}
}

func dispatch(t *testing.T, srv *Server, args ...string) RespValue {
	t.Helper()
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return srv.Dispatch(Command(bs...))
}

func TestDispatchStringCommands(t *testing.T) {
	srv, _ := localServer()
	if r := dispatch(t, srv, "PING"); r.Str != "PONG" {
		t.Fatalf("ping = %+v", r)
	}
	if r := dispatch(t, srv, "ECHO", "hi"); string(r.Bulk) != "hi" {
		t.Fatalf("echo = %+v", r)
	}
	if r := dispatch(t, srv, "SET", "k", "v"); r.Str != "OK" {
		t.Fatalf("set = %+v", r)
	}
	if r := dispatch(t, srv, "GET", "k"); string(r.Bulk) != "v" {
		t.Fatalf("get = %+v", r)
	}
	if r := dispatch(t, srv, "GET", "missing"); r.Kind != RespNil {
		t.Fatalf("get missing = %+v", r)
	}
	if r := dispatch(t, srv, "APPEND", "k", "!!"); r.Int != 3 {
		t.Fatalf("append = %+v", r)
	}
	if r := dispatch(t, srv, "STRLEN", "k"); r.Int != 3 {
		t.Fatalf("strlen = %+v", r)
	}
	if r := dispatch(t, srv, "EXISTS", "k", "missing", "k"); r.Int != 2 {
		t.Fatalf("exists = %+v", r)
	}
	if r := dispatch(t, srv, "DEL", "k", "missing"); r.Int != 1 {
		t.Fatalf("del = %+v", r)
	}
	if r := dispatch(t, srv, "DBSIZE"); r.Int != 0 {
		t.Fatalf("dbsize = %+v", r)
	}
}

func TestDispatchCounters(t *testing.T) {
	srv, _ := localServer()
	if r := dispatch(t, srv, "INCR", "n"); r.Int != 1 {
		t.Fatalf("incr = %+v", r)
	}
	if r := dispatch(t, srv, "INCRBY", "n", "10"); r.Int != 11 {
		t.Fatalf("incrby = %+v", r)
	}
	if r := dispatch(t, srv, "DECRBY", "n", "4"); r.Int != 7 {
		t.Fatalf("decrby = %+v", r)
	}
	if r := dispatch(t, srv, "DECR", "n"); r.Int != 6 {
		t.Fatalf("decr = %+v", r)
	}
	srv.Set([]byte("s"), []byte("text"))
	if r := dispatch(t, srv, "INCR", "s"); r.Kind != RespError {
		t.Fatalf("incr non-int = %+v", r)
	}
}

func TestDispatchLists(t *testing.T) {
	srv, _ := localServer()
	if r := dispatch(t, srv, "RPUSH", "l", "a", "b", "c"); r.Int != 3 {
		t.Fatalf("rpush = %+v", r)
	}
	if r := dispatch(t, srv, "LLEN", "l"); r.Int != 3 {
		t.Fatalf("llen = %+v", r)
	}
	if r := dispatch(t, srv, "LINDEX", "l", "1"); string(r.Bulk) != "b" {
		t.Fatalf("lindex = %+v", r)
	}
	if r := dispatch(t, srv, "LINDEX", "l", "9"); r.Kind != RespNil {
		t.Fatalf("lindex oob = %+v", r)
	}
	r := dispatch(t, srv, "LRANGE", "l", "0", "-1")
	if r.Kind != RespArray || len(r.Array) != 3 || string(r.Array[2].Bulk) != "c" {
		t.Fatalf("lrange = %+v", r)
	}
}

func TestDispatchErrors(t *testing.T) {
	srv, _ := localServer()
	if r := dispatch(t, srv, "NOSUCH"); r.Kind != RespError {
		t.Fatalf("unknown = %+v", r)
	}
	if r := dispatch(t, srv, "GET"); r.Kind != RespError {
		t.Fatalf("arity = %+v", r)
	}
	if r := srv.Dispatch(RespValue{Kind: RespInt, Int: 1}); r.Kind != RespError {
		t.Fatalf("non-array = %+v", r)
	}
	if r := srv.Dispatch(RespValue{Kind: RespArray,
		Array: []RespValue{{Kind: RespInt, Int: 1}}}); r.Kind != RespError {
		t.Fatalf("non-bulk arg = %+v", r)
	}
}

// End-to-end: a RESP conversation over a pipe against a server running on
// DiLOS-style local space — client encodes, server decodes+dispatches,
// replies round-trip.
func TestRespConversation(t *testing.T) {
	srv, _ := localServer()
	var wire bytes.Buffer
	cmds := []RespValue{
		Command([]byte("SET"), []byte("greeting"), []byte("hello")),
		Command([]byte("GET"), []byte("greeting")),
		Command([]byte("RPUSH"), []byte("q"), []byte("1"), []byte("2")),
		Command([]byte("LRANGE"), []byte("q"), []byte("0"), []byte("-1")),
	}
	for _, c := range cmds {
		if err := WriteResp(&wire, c); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&wire)
	var replies []RespValue
	for range cmds {
		cmd, err := ReadResp(r)
		if err != nil {
			t.Fatal(err)
		}
		replies = append(replies, srv.Dispatch(cmd))
	}
	if replies[0].Str != "OK" || string(replies[1].Bulk) != "hello" ||
		replies[2].Int != 2 || len(replies[3].Array) != 2 {
		t.Fatalf("conversation = %+v", replies)
	}
}
