package redis

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/guide"
	"dilos/internal/prefetch"
	"dilos/internal/sim"
	"dilos/internal/space"
)

func localServer() (*Server, *space.Local) {
	sp := space.NewLocal(256 << 20)
	return NewServer(sp), sp
}

func TestSetGetDel(t *testing.T) {
	srv, _ := localServer()
	srv.Set([]byte("hello"), []byte("world"))
	if got := srv.Get([]byte("hello")); !bytes.Equal(got, []byte("world")) {
		t.Fatalf("got %q", got)
	}
	if srv.Get([]byte("missing")) != nil {
		t.Fatal("missing key returned a value")
	}
	if !srv.Del([]byte("hello")) {
		t.Fatal("del failed")
	}
	if srv.Del([]byte("hello")) {
		t.Fatal("double del succeeded")
	}
	if srv.Get([]byte("hello")) != nil {
		t.Fatal("deleted key still readable")
	}
}

func TestSetOverwrite(t *testing.T) {
	srv, _ := localServer()
	srv.Set([]byte("k"), []byte("v1"))
	srv.Set([]byte("k"), []byte("v2-longer-value"))
	if got := srv.Get([]byte("k")); !bytes.Equal(got, []byte("v2-longer-value")) {
		t.Fatalf("got %q", got)
	}
	if srv.Dict().Len() != 1 {
		t.Fatalf("dict len = %d", srv.Dict().Len())
	}
}

func TestDictGrowth(t *testing.T) {
	srv, _ := localServer()
	const n = 5000
	for i := 0; i < n; i++ {
		srv.Set(KeyOf(i), valueOf(i, 32))
	}
	if srv.Dict().Len() != n {
		t.Fatalf("len = %d", srv.Dict().Len())
	}
	for i := 0; i < n; i++ {
		if got := srv.Get(KeyOf(i)); !bytes.Equal(got, valueOf(i, 32)) {
			t.Fatalf("key %d wrong after growth", i)
		}
	}
}

// Property-style: the dict behaves like a map under random SET/GET/DEL.
func TestDictVsMapRandomOps(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		srv, _ := localServer()
		ref := map[string][]byte{}
		for i := 0; i < 3000; i++ {
			k := []byte(fmt.Sprintf("key-%d", rng.Intn(300)))
			switch rng.Intn(3) {
			case 0:
				v := make([]byte, rng.Intn(200)+1)
				rng.Read(v)
				srv.Set(k, v)
				ref[string(k)] = append([]byte(nil), v...)
			case 1:
				got := srv.Get(k)
				want := ref[string(k)]
				if (got == nil) != (want == nil) || !bytes.Equal(got, want) {
					t.Fatalf("seed %d iter %d: get %q = %q, want %q", seed, i, k, got, want)
				}
			case 2:
				_, existed := ref[string(k)]
				if srv.Del(k) != existed {
					t.Fatalf("seed %d: del %q mismatch", seed, k)
				}
				delete(ref, string(k))
			}
		}
		if int(srv.Dict().Len()) != len(ref) {
			t.Fatalf("seed %d: len %d vs %d", seed, srv.Dict().Len(), len(ref))
		}
	}
}

func TestQuicklistPushRange(t *testing.T) {
	srv, _ := localServer()
	key := []byte("biglist")
	const n = 500
	for i := 0; i < n; i++ {
		srv.RPush(key, []byte(fmt.Sprintf("elem-%04d", i)))
	}
	if srv.LLen(key) != n {
		t.Fatalf("llen = %d", srv.LLen(key))
	}
	out := srv.LRange(key, 0, 99)
	if len(out) != 100 {
		t.Fatalf("lrange returned %d", len(out))
	}
	for i, e := range out {
		if string(e) != fmt.Sprintf("elem-%04d", i) {
			t.Fatalf("elem %d = %q", i, e)
		}
	}
	// Middle and tail slices.
	out = srv.LRange(key, 250, 259)
	if len(out) != 10 || string(out[0]) != "elem-0250" {
		t.Fatalf("middle range wrong: %q", out)
	}
	out = srv.LRange(key, -5, -1)
	if len(out) != 5 || string(out[4]) != fmt.Sprintf("elem-%04d", n-1) {
		t.Fatalf("negative range wrong: %q", out)
	}
}

func TestQuicklistSpansNodes(t *testing.T) {
	srv, _ := localServer()
	key := []byte("l")
	big := make([]byte, 512)
	for i := 0; i < 50; i++ { // 50*516 > zlMaxBytes: multiple nodes
		srv.RPush(key, big)
	}
	addr, _ := srv.Dict().Find(key)
	ql := srv.openQuicklist(addr)
	if ql.head() == ql.tail() {
		t.Fatal("expected multiple quicklist nodes")
	}
	if got := srv.LRange(key, 0, -1); len(got) != 50 {
		t.Fatalf("range across nodes = %d elems", len(got))
	}
}

func TestBenchDriversLocal(t *testing.T) {
	srv, sp := localServer()
	const keys = 200
	PopulateGET(srv, keys, SizeFixed(4096))
	res := RunGET(sp, srv, keys, 500, SizeFixed(4096), 1)
	if res.BadValues != 0 {
		t.Fatalf("bad values: %d", res.BadValues)
	}
	if res.Latency.Count() != 500 {
		t.Fatal("latency histogram incomplete")
	}
	del := RunDEL(srv, keys, 0.7, 2)
	if del < keys/2 {
		t.Fatalf("deleted only %d", del)
	}
}

func TestLRANGEDriverLocal(t *testing.T) {
	srv, sp := localServer()
	PopulateLRANGE(srv, 20, 2000, 100, 3)
	res := RunLRANGE(sp, srv, 20, 50, 4)
	if res.Elements == 0 {
		t.Fatal("no elements returned")
	}
}

// dilosServer boots a Redis server on a DiLOS node.
func dilosServer(t *testing.T, frames int, pf prefetch.Prefetcher, g guide.Guide) (*core.System, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	sys := core.New(eng, core.Config{
		CacheFrames: frames,
		Cores:       2,
		RemoteBytes: 512 << 20,
		Fabric:      fabric.DefaultParams(),
		Prefetcher:  pf,
	})
	if g != nil {
		sys.AttachGuide(g)
	}
	sys.Start()
	return sys, eng
}

func TestRedisOnDiLOS(t *testing.T) {
	sys, eng := dilosServer(t, 2048, nil, nil)
	sys.Launch("redis", 0, func(sp *core.DDCProc) {
		srv := NewServer(sp)
		const keys = 300
		PopulateGET(srv, keys, SizeFixed(4096))
		res := RunGET(sp, srv, keys, 600, SizeFixed(4096), 7)
		if res.BadValues != 0 {
			t.Errorf("bad values under paging: %d", res.BadValues)
		}
	})
	eng.Run()
	if sys.MajorFaults.N == 0 {
		t.Fatal("workload never faulted — not exercising paging")
	}
}

func TestAppGuideSpeedsUpLRANGE(t *testing.T) {
	run := func(g *AppGuide) sim.Time {
		var pf prefetch.Prefetcher
		sys, eng := dilosServer(t, 1024, pf, func() guide.Guide {
			if g == nil {
				return nil
			}
			return g
		}())
		var elapsed sim.Time
		sys.Launch("redis", 0, func(sp *core.DDCProc) {
			srv := NewServer(sp)
			if g != nil {
				g.Install(srv, sp.Proc())
			}
			PopulateLRANGE(srv, 64, 12000, 100, 5)
			// Evict the lists by streaming through a spoiler region.
			spoiler, _ := sys.MmapDDC(2048)
			for i := uint64(0); i < 2048; i++ {
				sp.StoreU8(spoiler+i*core.PageSize, 1)
			}
			res := RunLRANGE(sp, srv, 64, 200, 6)
			elapsed = res.Elapsed
			if res.Elements == 0 {
				t.Error("no elements")
			}
		})
		eng.Run()
		return elapsed
	}
	base := run(nil)
	guided := run(NewAppGuide())
	// Paper: app-aware beats general-purpose/no-prefetch by ~62% on
	// LRANGE. Require at least 20% here.
	if guided*5 > base*4 {
		t.Fatalf("guide ineffective: guided=%v base=%v", guided, base)
	}
}

func TestAppGuidePrefetchesGETValuePages(t *testing.T) {
	g := NewAppGuide()
	sys, eng := dilosServer(t, 1024, nil, g)
	sys.Launch("redis", 0, func(sp *core.DDCProc) {
		srv := NewServer(sp)
		g.Install(srv, sp.Proc())
		const keys = 40
		PopulateGET(srv, keys, SizeFixed(64<<10)) // 16-page values
		spoiler, _ := sys.MmapDDC(2048)
		for i := uint64(0); i < 2048; i++ {
			sp.StoreU8(spoiler+i*core.PageSize, 1)
		}
		res := RunGET(sp, srv, keys, 60, SizeFixed(64<<10), 8)
		if res.BadValues != 0 {
			t.Errorf("bad values: %d", res.BadValues)
		}
	})
	eng.Run()
	if g.SubpageReads == 0 || g.PagePrefetch == 0 {
		t.Fatalf("guide idle: subpage=%d prefetch=%d", g.SubpageReads, g.PagePrefetch)
	}
}
