package redis

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// RESP2 (REdis Serialization Protocol) codec plus a command dispatcher:
// the wire-compatibility layer that turns this package into something a
// redis client library could talk to. The simulator's Redis benchmarks
// call the Server methods directly (no protocol cost); Dispatch is the
// bridge for protocol-level use and tests the command surface end to end.

// RESP value kinds.
type RespKind uint8

// The RESP2 types.
const (
	RespString RespKind = iota // simple string
	RespError
	RespInt
	RespBulk
	RespArray
	RespNil // nil bulk string ($-1)
)

// RespValue is one RESP2 value.
type RespValue struct {
	Kind  RespKind
	Str   string      // simple string / error text
	Int   int64       // integer
	Bulk  []byte      // bulk string payload
	Array []RespValue // array elements
}

// WriteResp encodes a value in RESP2 framing.
func WriteResp(w io.Writer, v RespValue) error {
	switch v.Kind {
	case RespString:
		_, err := fmt.Fprintf(w, "+%s\r\n", v.Str)
		return err
	case RespError:
		_, err := fmt.Fprintf(w, "-%s\r\n", v.Str)
		return err
	case RespInt:
		_, err := fmt.Fprintf(w, ":%d\r\n", v.Int)
		return err
	case RespBulk:
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(v.Bulk)); err != nil {
			return err
		}
		if _, err := w.Write(v.Bulk); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\r\n")
		return err
	case RespNil:
		_, err := io.WriteString(w, "$-1\r\n")
		return err
	case RespArray:
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.Array)); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := WriteResp(w, e); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("resp: unknown kind %d", v.Kind)
}

// ReadResp decodes one RESP2 value.
func ReadResp(r *bufio.Reader) (RespValue, error) {
	line, err := respLine(r)
	if err != nil {
		return RespValue{}, err
	}
	if len(line) == 0 {
		return RespValue{}, fmt.Errorf("resp: empty frame")
	}
	body := string(line[1:])
	switch line[0] {
	case '+':
		return RespValue{Kind: RespString, Str: body}, nil
	case '-':
		return RespValue{Kind: RespError, Str: body}, nil
	case ':':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return RespValue{}, fmt.Errorf("resp: bad integer %q", body)
		}
		return RespValue{Kind: RespInt, Int: n}, nil
	case '$':
		n, err := strconv.Atoi(body)
		if err != nil {
			return RespValue{}, fmt.Errorf("resp: bad bulk length %q", body)
		}
		if n < 0 {
			return RespValue{Kind: RespNil}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return RespValue{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return RespValue{}, fmt.Errorf("resp: bulk not CRLF terminated")
		}
		return RespValue{Kind: RespBulk, Bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.Atoi(body)
		if err != nil || n < 0 {
			return RespValue{}, fmt.Errorf("resp: bad array length %q", body)
		}
		arr := make([]RespValue, n)
		for i := range arr {
			arr[i], err = ReadResp(r)
			if err != nil {
				return RespValue{}, err
			}
		}
		return RespValue{Kind: RespArray, Array: arr}, nil
	}
	return RespValue{}, fmt.Errorf("resp: unknown type byte %q", line[0])
}

func respLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("resp: line not CRLF terminated")
	}
	return line[:len(line)-2], nil
}

// Command builds a RESP command array from arguments.
func Command(args ...[]byte) RespValue {
	arr := make([]RespValue, len(args))
	for i, a := range args {
		arr[i] = RespValue{Kind: RespBulk, Bulk: a}
	}
	return RespValue{Kind: RespArray, Array: arr}
}

func respErr(format string, args ...any) RespValue {
	return RespValue{Kind: RespError, Str: "ERR " + fmt.Sprintf(format, args...)}
}

// Dispatch executes one RESP command array against the server and returns
// the RESP reply — the redis-server command table for the implemented
// surface: GET SET SETNX GETSET GETDEL MGET MSET DEL EXISTS STRLEN APPEND
// INCR INCRBY DECR DECRBY RPUSH LRANGE LLEN LINDEX DBSIZE PING ECHO.
func (s *Server) Dispatch(cmd RespValue) RespValue {
	if cmd.Kind != RespArray || len(cmd.Array) == 0 {
		return respErr("protocol: expected a command array")
	}
	args := make([][]byte, len(cmd.Array))
	for i, a := range cmd.Array {
		if a.Kind != RespBulk {
			return respErr("protocol: command arguments must be bulk strings")
		}
		args[i] = a.Bulk
	}
	name := string(bytes.ToUpper(args[0]))
	want := func(n int) *RespValue {
		if len(args) != n {
			v := respErr("wrong number of arguments for '%s'", name)
			return &v
		}
		return nil
	}
	switch name {
	case "PING":
		return RespValue{Kind: RespString, Str: "PONG"}
	case "ECHO":
		if e := want(2); e != nil {
			return *e
		}
		return RespValue{Kind: RespBulk, Bulk: args[1]}
	case "SET":
		if e := want(3); e != nil {
			return *e
		}
		s.Set(args[1], args[2])
		return RespValue{Kind: RespString, Str: "OK"}
	case "SETNX":
		if e := want(3); e != nil {
			return *e
		}
		if s.SetNX(args[1], args[2]) {
			return RespValue{Kind: RespInt, Int: 1}
		}
		return RespValue{Kind: RespInt, Int: 0}
	case "GETSET":
		if e := want(3); e != nil {
			return *e
		}
		old := s.GetSet(args[1], args[2])
		if old == nil {
			return RespValue{Kind: RespNil}
		}
		return RespValue{Kind: RespBulk, Bulk: old}
	case "GETDEL":
		if e := want(2); e != nil {
			return *e
		}
		v := s.GetDel(args[1])
		if v == nil {
			return RespValue{Kind: RespNil}
		}
		return RespValue{Kind: RespBulk, Bulk: v}
	case "MGET":
		if len(args) < 2 {
			return respErr("wrong number of arguments for 'mget'")
		}
		vals := s.MGet(args[1:]...)
		arr := make([]RespValue, len(vals))
		for i, v := range vals {
			if v == nil {
				arr[i] = RespValue{Kind: RespNil}
			} else {
				arr[i] = RespValue{Kind: RespBulk, Bulk: v}
			}
		}
		return RespValue{Kind: RespArray, Array: arr}
	case "MSET":
		if len(args) < 3 || len(args)%2 == 0 {
			return respErr("wrong number of arguments for 'mset'")
		}
		s.MSet(args[1:]...)
		return RespValue{Kind: RespString, Str: "OK"}
	case "GET":
		if e := want(2); e != nil {
			return *e
		}
		v := s.Get(args[1])
		if v == nil {
			return RespValue{Kind: RespNil}
		}
		return RespValue{Kind: RespBulk, Bulk: v}
	case "DEL":
		n := int64(0)
		for _, k := range args[1:] {
			if s.Del(k) {
				n++
			}
		}
		return RespValue{Kind: RespInt, Int: n}
	case "EXISTS":
		n := int64(0)
		for _, k := range args[1:] {
			if s.Exists(k) {
				n++
			}
		}
		return RespValue{Kind: RespInt, Int: n}
	case "STRLEN":
		if e := want(2); e != nil {
			return *e
		}
		return RespValue{Kind: RespInt, Int: int64(s.StrLen(args[1]))}
	case "APPEND":
		if e := want(3); e != nil {
			return *e
		}
		return RespValue{Kind: RespInt, Int: int64(s.Append(args[1], args[2]))}
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta := int64(1)
		switch name {
		case "INCR":
			if e := want(2); e != nil {
				return *e
			}
		case "DECR":
			if e := want(2); e != nil {
				return *e
			}
			delta = -1
		default:
			if e := want(3); e != nil {
				return *e
			}
			d, err := strconv.ParseInt(string(args[2]), 10, 64)
			if err != nil {
				return respErr("value is not an integer or out of range")
			}
			delta = d
			if name == "DECRBY" {
				delta = -d
			}
		}
		v, ok := s.IncrBy(args[1], delta)
		if !ok {
			return respErr("value is not an integer or out of range")
		}
		return RespValue{Kind: RespInt, Int: v}
	case "RPUSH":
		if len(args) < 3 {
			return respErr("wrong number of arguments for 'rpush'")
		}
		var n uint64
		for _, v := range args[2:] {
			n = s.RPush(args[1], v)
		}
		return RespValue{Kind: RespInt, Int: int64(n)}
	case "LLEN":
		if e := want(2); e != nil {
			return *e
		}
		return RespValue{Kind: RespInt, Int: int64(s.LLen(args[1]))}
	case "LINDEX":
		if e := want(3); e != nil {
			return *e
		}
		idx, err := strconv.Atoi(string(args[2]))
		if err != nil {
			return respErr("value is not an integer or out of range")
		}
		v := s.LIndex(args[1], idx)
		if v == nil {
			return RespValue{Kind: RespNil}
		}
		return RespValue{Kind: RespBulk, Bulk: v}
	case "LRANGE":
		if e := want(4); e != nil {
			return *e
		}
		start, err1 := strconv.Atoi(string(args[2]))
		stop, err2 := strconv.Atoi(string(args[3]))
		if err1 != nil || err2 != nil {
			return respErr("value is not an integer or out of range")
		}
		out := s.LRange(args[1], start, stop)
		arr := make([]RespValue, len(out))
		for i, e := range out {
			arr[i] = RespValue{Kind: RespBulk, Bulk: e}
		}
		return RespValue{Kind: RespArray, Array: arr}
	case "DBSIZE":
		if e := want(1); e != nil {
			return *e
		}
		return RespValue{Kind: RespInt, Int: int64(s.DBSize())}
	}
	return respErr("unknown command '%s'", name)
}
