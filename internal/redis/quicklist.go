package redis

// Ziplist and quicklist — the storage behind Redis lists (the LRANGE
// workload, §6.3 and Figure 11). A quicklist is a doubly linked list of
// 32-byte nodes, each owning a ziplist (a packed byte array of entries).
// The pointer-chasing shape — node → next node, node → ziplist, ziplist
// spanning pages — is exactly what defeats general-purpose prefetchers and
// what the quicklist guide exploits.

const (
	zlHeader    = 8    // [zlbytes u32][count u32]
	zlMaxBytes  = 3072 // new node when a ziplist would exceed this
	qlNodeSize  = 32   // [prev][next][zl][count u32][zlbytes u32]
	qlHandleLen = 24   // [head][tail][len]
)

// Quicklist is a host-side handle; all state lives in simulated memory at
// handleAddr so that re-opening a list from the dict reads it back.
type Quicklist struct {
	s          *Server
	handleAddr uint64
}

// NewQuicklist allocates an empty list.
func (s *Server) NewQuicklist() *Quicklist {
	h := s.alloc.Alloc(qlHandleLen)
	s.sp.StoreU64(h, 0)
	s.sp.StoreU64(h+8, 0)
	s.sp.StoreU64(h+16, 0)
	return &Quicklist{s: s, handleAddr: h}
}

// openQuicklist wraps an existing handle address.
func (s *Server) openQuicklist(addr uint64) *Quicklist {
	return &Quicklist{s: s, handleAddr: addr}
}

// Len returns the number of elements.
func (q *Quicklist) Len() uint64 { return q.s.sp.LoadU64(q.handleAddr + 16) }

func (q *Quicklist) head() uint64 { return q.s.sp.LoadU64(q.handleAddr) }
func (q *Quicklist) tail() uint64 { return q.s.sp.LoadU64(q.handleAddr + 8) }

// newZiplist allocates an empty ziplist sized for capacity bytes.
func (q *Quicklist) newZiplist(capacity uint64) uint64 {
	sp := q.s.sp
	zl := q.s.alloc.Alloc(zlHeader + capacity)
	sp.StoreU32(zl, zlHeader) // zlbytes: used bytes including header
	sp.StoreU32(zl+4, 0)      // count
	return zl
}

// Push appends val at the tail (RPUSH).
func (q *Quicklist) Push(val []byte) {
	sp := q.s.sp
	need := uint64(4 + len(val))
	tail := q.tail()
	var zl uint64
	if tail != 0 {
		zl = sp.LoadU64(tail + 16)
		used := uint64(sp.LoadU32(zl))
		capacity := q.s.alloc.SizeOf(zl)
		if used+need > capacity || used+need > zlMaxBytes {
			tail = 0 // ziplist full: open a new node
		}
	}
	if tail == 0 {
		tail = q.appendNode(need)
		zl = sp.LoadU64(tail + 16)
	}
	used := uint64(sp.LoadU32(zl))
	sp.StoreU32(zl+used, uint32(len(val)))
	sp.Store(zl+used+4, val)
	sp.StoreU32(zl, uint32(used+need))
	sp.StoreU32(zl+4, sp.LoadU32(zl+4)+1)
	sp.StoreU32(tail+24, sp.LoadU32(tail+24)+1)
	sp.StoreU32(tail+28, uint32(used+need)) // cached zlbytes for the guide
	sp.StoreU64(q.handleAddr+16, q.Len()+1)
}

// appendNode links a fresh node (with a ziplist sized for at least `need`
// bytes) at the tail and returns its address.
func (q *Quicklist) appendNode(need uint64) uint64 {
	sp := q.s.sp
	capacity := uint64(zlMaxBytes)
	if need > capacity {
		capacity = need
	}
	node := q.s.alloc.Alloc(qlNodeSize)
	zl := q.newZiplist(capacity)
	old := q.tail()
	sp.StoreU64(node, old) // prev
	sp.StoreU64(node+8, 0) // next
	sp.StoreU64(node+16, zl)
	sp.StoreU32(node+24, 0)
	sp.StoreU32(node+28, 0)
	if old != 0 {
		sp.StoreU64(old+8, node)
	} else {
		sp.StoreU64(q.handleAddr, node) // head
	}
	sp.StoreU64(q.handleAddr+8, node) // tail
	return node
}

// Range returns elements [start, stop] (inclusive, like LRANGE). The three
// callbacks are the guide hooks; any may be nil.
func (q *Quicklist) Range(start, stop int, onStart func(uint64), onNode func(node, zl uint64), onEnd func()) [][]byte {
	sp := q.s.sp
	if stop < 0 {
		stop = int(q.Len()) + stop
	}
	if start < 0 {
		start = int(q.Len()) + start
	}
	if start < 0 {
		start = 0
	}
	node := q.head()
	if node == 0 || stop < start {
		return nil
	}
	if onStart != nil {
		onStart(node)
	}
	var out [][]byte
	idx := 0
	for node != 0 && idx <= stop {
		zl := sp.LoadU64(node + 16)
		if onNode != nil {
			onNode(node, zl)
		}
		count := int(sp.LoadU32(node + 24))
		if idx+count <= start {
			idx += count // skip whole node without touching the ziplist
			node = sp.LoadU64(node + 8)
			continue
		}
		off := uint64(zlHeader)
		for k := 0; k < count && idx <= stop; k++ {
			elen := uint64(sp.LoadU32(zl + off))
			if idx >= start {
				buf := make([]byte, elen)
				sp.Load(zl+off+4, buf)
				out = append(out, buf)
			}
			off += 4 + elen
			idx++
		}
		node = sp.LoadU64(node + 8)
	}
	if onEnd != nil {
		onEnd()
	}
	return out
}
