package redis

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadResp hardens the RESP decoder against arbitrary wire bytes: it
// must never panic, and whatever it accepts must re-encode to something it
// decodes identically (decode∘encode idempotence).
func FuzzReadResp(f *testing.F) {
	var seed bytes.Buffer
	WriteResp(&seed, Command([]byte("SET"), []byte("k"), []byte("v")))
	f.Add(seed.Bytes())
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("$3\r\nabc\r\n"))
	f.Add([]byte("*2\r\n:1\r\n$-1\r\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, wire []byte) {
		v, err := ReadResp(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var re bytes.Buffer
		if err := WriteResp(&re, v); err != nil {
			t.Fatalf("accepted value failed to encode: %v", err)
		}
		v2, err := ReadResp(bufio.NewReader(&re))
		if err != nil {
			t.Fatalf("re-encoded value failed to decode: %v", err)
		}
		if !respEqual(v, v2) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}

// FuzzDispatch feeds arbitrary command arrays to the server: no panics,
// and replies must always be encodable.
func FuzzDispatch(f *testing.F) {
	f.Add([]byte("SET"), []byte("a"), []byte("b"))
	f.Add([]byte("GET"), []byte("a"), []byte(""))
	f.Add([]byte("RPUSH"), []byte("l"), []byte("x"))
	f.Add([]byte("INCRBY"), []byte("n"), []byte("nope"))
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		srv, _ := localServer()
		for _, cmd := range [][][]byte{{a}, {a, b}, {a, b, c}} {
			reply := srv.Dispatch(Command(cmd...))
			var buf bytes.Buffer
			if err := WriteResp(&buf, reply); err != nil {
				t.Fatalf("unencodable reply: %v", err)
			}
		}
	})
}
