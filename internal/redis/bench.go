package redis

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"dilos/internal/sim"
	"dilos/internal/space"
	"dilos/internal/stats"
)

// This file is the reproduction's redis-benchmark: population and query
// drivers for the paper's GET, LRANGE and DEL workloads (§6.2–§6.3).

// MixedSizes is the Facebook-photo-server-like value-size mix the paper
// uses for the GET (mixed) workload: six equally distributed sizes.
var MixedSizes = []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}

// KeyOf formats benchmark key i (fixed 16-byte keys, like
// redis-benchmark's key:__rand_int__ pattern).
func KeyOf(i int) []byte {
	k := make([]byte, 16)
	copy(k, "key:")
	binary.LittleEndian.PutUint64(k[4:], uint64(i))
	return k
}

// valueOf deterministically fills a value for key i.
func valueOf(i, size int) []byte {
	v := make([]byte, size)
	seed := uint64(i)*2654435761 + 12345
	for o := 0; o+8 <= size; o += 8 {
		binary.LittleEndian.PutUint64(v[o:], seed+uint64(o))
	}
	return v
}

// PopulateGET fills the keyspace with nKeys values sized by sizeOf(i).
func PopulateGET(srv *Server, nKeys int, sizeOf func(i int) int) {
	for i := 0; i < nKeys; i++ {
		srv.Set(KeyOf(i), valueOf(i, sizeOf(i)))
	}
}

// GETResult is one GET run's outcome.
type GETResult struct {
	Queries    int
	Elapsed    sim.Time
	Latency    *stats.Histogram
	BytesMoved int64
	BadValues  int
}

// ThroughputOps returns operations per second.
func (r GETResult) ThroughputOps() float64 {
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// RunGET issues `queries` GETs over random keys, recording per-op latency
// and verifying values.
func RunGET(sp space.Space, srv *Server, nKeys, queries int, sizeOf func(i int) int, seed int64) GETResult {
	rng := rand.New(rand.NewSource(seed))
	res := GETResult{Queries: queries, Latency: stats.NewHistogram("get")}
	t0 := sp.Now()
	for q := 0; q < queries; q++ {
		i := rng.Intn(nKeys)
		opStart := sp.Now()
		v := srv.Get(KeyOf(i))
		res.Latency.Record(sp.Now() - opStart)
		res.BytesMoved += int64(len(v))
		if len(v) != sizeOf(i) || (len(v) >= 8 &&
			binary.LittleEndian.Uint64(v[:8]) != uint64(i)*2654435761+12345) {
			res.BadValues++
		}
	}
	res.Elapsed = sp.Now() - t0
	return res
}

// PopulateLRANGE creates nLists lists and pushes elements round-robin at
// random, `totalElems` elements of elemSize bytes — the paper's modified
// redis-benchmark populates 100 k lists with 20 M elements the same way.
func PopulateLRANGE(srv *Server, nLists, totalElems, elemSize int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	val := make([]byte, elemSize)
	for e := 0; e < totalElems; e++ {
		li := rng.Intn(nLists)
		binary.LittleEndian.PutUint64(val, uint64(li)<<32|uint64(e))
		srv.RPush(listKey(li), val)
	}
}

func listKey(i int) []byte {
	k := make([]byte, 16)
	copy(k, "mylist:")
	binary.LittleEndian.PutUint64(k[8:], uint64(i))
	return k
}

// LRANGEResult is one LRANGE run's outcome.
type LRANGEResult struct {
	Queries  int
	Elapsed  sim.Time
	Latency  *stats.Histogram
	Elements int64
}

// ThroughputOps returns operations per second.
func (r LRANGEResult) ThroughputOps() float64 {
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// RunLRANGE issues `queries` LRANGE_100 calls (first 100 elements) against
// random lists.
func RunLRANGE(sp space.Space, srv *Server, nLists, queries int, seed int64) LRANGEResult {
	rng := rand.New(rand.NewSource(seed))
	res := LRANGEResult{Queries: queries, Latency: stats.NewHistogram("lrange")}
	t0 := sp.Now()
	for q := 0; q < queries; q++ {
		li := rng.Intn(nLists)
		opStart := sp.Now()
		out := srv.LRange(listKey(li), 0, 99)
		res.Latency.Record(sp.Now() - opStart)
		res.Elements += int64(len(out))
	}
	res.Elapsed = sp.Now() - t0
	return res
}

// RunDEL deletes a fraction of the keyspace at random — Figure 12's DEL
// phase, which fragments pages and sets up guided paging's savings.
func RunDEL(srv *Server, nKeys int, fraction float64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	deleted := 0
	for i := 0; i < nKeys; i++ {
		if rng.Float64() < fraction {
			if srv.Del(KeyOf(i)) {
				deleted++
			}
		}
	}
	return deleted
}

// SizeFixed returns a constant-size function.
func SizeFixed(n int) func(int) int { return func(int) int { return n } }

// SizeMixed returns the Facebook-photo mix assignment.
func SizeMixed() func(int) int {
	return func(i int) int { return MixedSizes[i%len(MixedSizes)] }
}

func (r GETResult) String() string {
	return fmt.Sprintf("GET: %d ops in %v (%.0f ops/s, p99=%v)",
		r.Queries, r.Elapsed, r.ThroughputOps(), r.Latency.P99())
}
