package redis

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"
)

func TestExistsAndDBSize(t *testing.T) {
	srv, _ := localServer()
	if srv.Exists([]byte("nope")) {
		t.Fatal("phantom key")
	}
	srv.Set([]byte("a"), []byte("1"))
	srv.Set([]byte("b"), []byte("2"))
	if !srv.Exists([]byte("a")) || srv.DBSize() != 2 {
		t.Fatalf("exists/dbsize wrong (size=%d)", srv.DBSize())
	}
	srv.Del([]byte("a"))
	if srv.Exists([]byte("a")) || srv.DBSize() != 1 {
		t.Fatal("delete not reflected")
	}
}

func TestStrLen(t *testing.T) {
	srv, _ := localServer()
	srv.Set([]byte("k"), []byte("hello"))
	if srv.StrLen([]byte("k")) != 5 {
		t.Fatalf("strlen = %d", srv.StrLen([]byte("k")))
	}
	if srv.StrLen([]byte("missing")) != 0 {
		t.Fatal("missing key strlen != 0")
	}
}

func TestAppendInPlaceAndRealloc(t *testing.T) {
	srv, _ := localServer()
	// Missing key: created.
	if n := srv.Append([]byte("log"), []byte("abc")); n != 3 {
		t.Fatalf("n = %d", n)
	}
	// Small appends eventually exceed the class capacity and reallocate;
	// content must survive both paths.
	want := []byte("abc")
	for i := 0; i < 40; i++ {
		chunk := []byte(fmt.Sprintf("-%02d", i))
		srv.Append([]byte("log"), chunk)
		want = append(want, chunk...)
	}
	if got := srv.Get([]byte("log")); !bytes.Equal(got, want) {
		t.Fatalf("append chain broken:\n got %q\nwant %q", got, want)
	}
	if srv.StrLen([]byte("log")) != uint32(len(want)) {
		t.Fatal("strlen disagrees")
	}
}

func TestIncrBy(t *testing.T) {
	srv, _ := localServer()
	if v, ok := srv.IncrBy([]byte("n"), 5); !ok || v != 5 {
		t.Fatalf("incr from missing: %d %t", v, ok)
	}
	if v, ok := srv.IncrBy([]byte("n"), -2); !ok || v != 3 {
		t.Fatalf("incr: %d %t", v, ok)
	}
	if got := srv.Get([]byte("n")); string(got) != "3" {
		t.Fatalf("stored %q", got)
	}
	srv.Set([]byte("s"), []byte("not-a-number"))
	if _, ok := srv.IncrBy([]byte("s"), 1); ok {
		t.Fatal("incr of non-integer succeeded")
	}
	// Survives many increments (SDS churn through the allocator).
	for i := 0; i < 200; i++ {
		srv.IncrBy([]byte("n"), 1)
	}
	if got := srv.Get([]byte("n")); string(got) != strconv.Itoa(203) {
		t.Fatalf("final %q", got)
	}
}

func TestLIndex(t *testing.T) {
	srv, _ := localServer()
	key := []byte("l")
	const n = 300
	for i := 0; i < n; i++ {
		srv.RPush(key, []byte(fmt.Sprintf("e%03d", i)))
	}
	cases := map[int]string{0: "e000", 150: "e150", n - 1: fmt.Sprintf("e%03d", n-1), -1: fmt.Sprintf("e%03d", n-1), -n: "e000"}
	for idx, want := range cases {
		if got := srv.LIndex(key, idx); string(got) != want {
			t.Fatalf("lindex %d = %q, want %q", idx, got, want)
		}
	}
	if srv.LIndex(key, n) != nil || srv.LIndex(key, -n-1) != nil {
		t.Fatal("out-of-range index returned data")
	}
	if srv.LIndex([]byte("missing"), 0) != nil {
		t.Fatal("missing list returned data")
	}
}

func TestSetNXGetSetGetDel(t *testing.T) {
	srv, _ := localServer()
	if !srv.SetNX([]byte("k"), []byte("v1")) {
		t.Fatal("setnx on missing key failed")
	}
	if srv.SetNX([]byte("k"), []byte("v2")) {
		t.Fatal("setnx overwrote")
	}
	if old := srv.GetSet([]byte("k"), []byte("v3")); string(old) != "v1" {
		t.Fatalf("getset old = %q", old)
	}
	if srv.GetSet([]byte("fresh"), []byte("x")) != nil {
		t.Fatal("getset on missing key returned a value")
	}
	if got := srv.GetDel([]byte("k")); string(got) != "v3" {
		t.Fatalf("getdel = %q", got)
	}
	if srv.Exists([]byte("k")) {
		t.Fatal("getdel left the key")
	}
	if srv.GetDel([]byte("k")) != nil {
		t.Fatal("getdel on missing key returned a value")
	}
}

func TestMGetMSet(t *testing.T) {
	srv, _ := localServer()
	srv.MSet([]byte("a"), []byte("1"), []byte("b"), []byte("2"))
	out := srv.MGet([]byte("a"), []byte("missing"), []byte("b"))
	if string(out[0]) != "1" || out[1] != nil || string(out[2]) != "2" {
		t.Fatalf("mget = %q", out)
	}
}

func TestDispatchNewStringCommands(t *testing.T) {
	srv, _ := localServer()
	if r := dispatch(t, srv, "SETNX", "k", "v"); r.Int != 1 {
		t.Fatalf("setnx = %+v", r)
	}
	if r := dispatch(t, srv, "SETNX", "k", "w"); r.Int != 0 {
		t.Fatalf("setnx 2 = %+v", r)
	}
	if r := dispatch(t, srv, "GETSET", "k", "x"); string(r.Bulk) != "v" {
		t.Fatalf("getset = %+v", r)
	}
	if r := dispatch(t, srv, "MSET", "a", "1", "b", "2"); r.Str != "OK" {
		t.Fatalf("mset = %+v", r)
	}
	if r := dispatch(t, srv, "MSET", "a", "1", "b"); r.Kind != RespError {
		t.Fatalf("odd mset = %+v", r)
	}
	r := dispatch(t, srv, "MGET", "a", "zzz", "b")
	if len(r.Array) != 3 || string(r.Array[0].Bulk) != "1" ||
		r.Array[1].Kind != RespNil || string(r.Array[2].Bulk) != "2" {
		t.Fatalf("mget = %+v", r)
	}
	if r := dispatch(t, srv, "GETDEL", "a"); string(r.Bulk) != "1" {
		t.Fatalf("getdel = %+v", r)
	}
	if r := dispatch(t, srv, "GETDEL", "a"); r.Kind != RespNil {
		t.Fatalf("getdel 2 = %+v", r)
	}
}
