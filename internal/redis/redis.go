// Package redis is a from-scratch, in-memory key-value store in the style
// of Redis 6, built so that its *data structures live in the simulated
// disaggregated address space*: the dict's bucket array, dict entries, SDS
// strings, ziplists, and quicklists are all allocated with the guided
// allocator and accessed through space.Space — which is what makes the
// paper's Redis evaluation (Figure 10, Table 4, Figure 12) and its
// app-aware guides (§6.3) reproducible. Commands: SET, GET, DEL, RPUSH,
// LRANGE.
//
// Layouts (little-endian):
//
//	SDS     [len u32][alloc u32][bytes…]            (header-first sdshdr)
//	entry   [key sds][val ptr][next entry]          (24 B dictEntry)
//	ziplist [zlbytes u32][count u32]([elen u32][bytes…])*
//	qlnode  [prev][next][zl][count u32][pad u32]    (32 B quicklistNode)
package redis

import (
	"fmt"

	"dilos/internal/dalloc"
	"dilos/internal/sim"
	"dilos/internal/space"
)

// Costs models Redis' command-processing CPU outside data access.
type Costs struct {
	Dispatch sim.Time // protocol parse + command lookup
	HashStep sim.Time // per 8 bytes hashed
}

// DefaultCosts returns testbed-like constants.
func DefaultCosts() Costs {
	return Costs{
		Dispatch: 300 * sim.Nanosecond,
		HashStep: 2 * sim.Nanosecond,
	}
}

// Server is one Redis instance bound to a Space.
type Server struct {
	sp    space.Space
	alloc *dalloc.Allocator
	dict  *Dict
	costs Costs

	// Hooks for the app-aware guides (installed by the loader, §5): the
	// unmodified command implementations below call them at the same
	// points DiLOS' trampolines would.
	OnGetValue    func(sdsAddr uint64)  // GET found its value object
	OnLRangeStart func(headNode uint64) // LRANGE begins at this node
	OnLRangeNode  func(node, zl uint64) // LRANGE visits a node
	OnLRangeEnd   func()                // LRANGE finished
}

// NewServer creates a server whose structures live in sp.
func NewServer(sp space.Space) *Server {
	s := &Server{sp: sp, alloc: dalloc.New(sp), costs: DefaultCosts()}
	s.dict = NewDict(sp, s.alloc)
	return s
}

// Allocator exposes the guided allocator (the eviction guide for §4.4).
func (s *Server) Allocator() *dalloc.Allocator { return s.alloc }

// Dict exposes the main keyspace dict.
func (s *Server) Dict() *Dict { return s.dict }

// --- SDS ---

const sdsHeader = 8

// NewSDS allocates an SDS holding val.
func (s *Server) NewSDS(val []byte) uint64 {
	addr := s.alloc.Alloc(uint64(sdsHeader + len(val)))
	s.sp.StoreU32(addr, uint32(len(val)))
	s.sp.StoreU32(addr+4, uint32(s.alloc.SizeOf(addr)-sdsHeader))
	s.sp.Store(addr+sdsHeader, val)
	return addr
}

// SDSLen reads an SDS length.
func (s *Server) SDSLen(addr uint64) uint32 { return s.sp.LoadU32(addr) }

// SDSRead copies an SDS body into a host buffer.
func (s *Server) SDSRead(addr uint64) []byte {
	n := s.sp.LoadU32(addr)
	out := make([]byte, n)
	s.sp.Load(addr+sdsHeader, out)
	return out
}

// SDSEqual compares an SDS with a host key (reading through the space).
func (s *Server) SDSEqual(addr uint64, key []byte) bool {
	if s.sp.LoadU32(addr) != uint32(len(key)) {
		return false
	}
	buf := make([]byte, len(key))
	s.sp.Load(addr+sdsHeader, buf)
	for i := range key {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}

// FreeSDS releases an SDS.
func (s *Server) FreeSDS(addr uint64) { s.alloc.Free(addr) }

// --- commands ---

// Set stores key → val (a fresh SDS). Replaces an existing value.
func (s *Server) Set(key, val []byte) {
	s.sp.Compute(s.costs.Dispatch)
	sds := s.NewSDS(val)
	if old, ok := s.dict.Insert(key, sds); ok {
		s.FreeSDS(old)
	}
}

// Get returns the value for key, or nil.
func (s *Server) Get(key []byte) []byte {
	s.sp.Compute(s.costs.Dispatch)
	val, ok := s.dict.Find(key)
	if !ok {
		return nil
	}
	if s.OnGetValue != nil {
		s.OnGetValue(val)
	}
	return s.SDSRead(val)
}

// Del removes key, returning whether it existed. The value's chunks go
// back to the allocator — which is what leaves pages with dead areas for
// guided paging to skip (Figure 12's DEL phase).
func (s *Server) Del(key []byte) bool {
	s.sp.Compute(s.costs.Dispatch)
	val, ok := s.dict.Delete(key)
	if !ok {
		return false
	}
	s.FreeSDS(val)
	return true
}

// RPush appends val to the list at key (creating it), returning its new
// length.
func (s *Server) RPush(key, val []byte) uint64 {
	s.sp.Compute(s.costs.Dispatch)
	var ql *Quicklist
	if addr, ok := s.dict.Find(key); ok {
		ql = s.openQuicklist(addr)
	} else {
		ql = s.NewQuicklist()
		s.dict.Insert(key, ql.handleAddr)
	}
	ql.Push(val)
	return ql.Len()
}

// LRange returns elements [start, stop] of the list at key (stop
// inclusive, as in Redis).
func (s *Server) LRange(key []byte, start, stop int) [][]byte {
	s.sp.Compute(s.costs.Dispatch)
	addr, ok := s.dict.Find(key)
	if !ok {
		return nil
	}
	ql := s.openQuicklist(addr)
	return ql.Range(start, stop, s.OnLRangeStart, s.OnLRangeNode, s.OnLRangeEnd)
}

// LLen returns the list length.
func (s *Server) LLen(key []byte) uint64 {
	addr, ok := s.dict.Find(key)
	if !ok {
		return 0
	}
	return s.openQuicklist(addr).Len()
}

func (s *Server) String() string {
	return fmt.Sprintf("redis: keys=%d allocs=%d", s.dict.Len(), s.alloc.Allocs)
}
