// Experiment registry: every artifact self-registers an Entry here, and
// cmd/dilosbench dispatches purely off the registry — no hand-maintained
// id list in the command. Registration happens in init functions, whose
// order Go fixes by file name, so Entries() imposes a deterministic order
// of its own: classic artifacts (figures, tables, ablations) keep their
// registration order, and "extN" extensions sort by numeric suffix. The
// -exp list output and flag help therefore never depend on which file
// registered first.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Entry is one runnable experiment.
type Entry struct {
	// ID is the -exp name ("fig7a", "ext12", ...).
	ID string
	// Desc is the one-line -list description.
	Desc string
	// CoresAware marks experiments that consume the -cores sweep
	// internally (ext10); the driver must not loop them per core count.
	CoresAware bool
	// Run prints the experiment's tables to stdout.
	Run func(sc Scale)
	// JSON, when set, returns the experiment's structured rows for -json.
	JSON func(sc Scale) any
}

// ChaosSeed drives the deterministic fault injection and determinism legs
// of the seeded experiments (ext4, ext7, ext11, ext12); cmd/dilosbench
// binds it to -chaos-seed.
var ChaosSeed uint64 = 42

var registry []Entry

// Register adds an experiment. Duplicate ids panic at init time — two
// files claiming one id is a programming error, not a runtime condition.
func Register(id, desc string, coresAware bool, run func(sc Scale)) {
	if _, ok := Lookup(id); ok {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", id))
	}
	registry = append(registry, Entry{ID: id, Desc: desc, CoresAware: coresAware, Run: run})
}

// RegisterJSON attaches a -json row producer to an already-registered
// experiment.
func RegisterJSON(id string, fn func(sc Scale) any) {
	for i := range registry {
		if registry[i].ID == id {
			registry[i].JSON = fn
			return
		}
	}
	panic(fmt.Sprintf("experiments: RegisterJSON(%q) before Register", id))
}

// Lookup finds an experiment by id.
func Lookup(id string) (Entry, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// extNum returns the numeric suffix of an "extN" id, or -1.
func extNum(id string) int {
	rest, ok := strings.CutPrefix(id, "ext")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

// Entries returns every experiment in the canonical order: classic
// artifacts in registration order, then extensions by number. The sort is
// stable, so registration order breaks ties.
func Entries() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		ni, nj := extNum(out[i].ID), extNum(out[j].ID)
		if (ni >= 0) != (nj >= 0) {
			return nj >= 0 // classic artifacts before extensions
		}
		if ni >= 0 {
			return ni < nj
		}
		return false // classics keep registration order
	})
	return out
}
