package experiments

import (
	"fmt"

	"dilos/internal/core"
	"dilos/internal/fabric"
	"dilos/internal/fastswap"
	"dilos/internal/sim"
	"dilos/internal/space"
	"dilos/internal/telemetry"
	"dilos/internal/workloads"
)

// This file adds ext6: fault anatomy from the flight recorder. Where
// Figure 1/6 report mean segments from hand-maintained accumulators
// (Breakdown), ext6 derives the same decomposition — plus tails — from the
// recorded per-fault spans, which both cross-checks the accumulators and
// exercises the recorder end to end.

// Ext6Row is one system × cache-fraction cell: the per-stage latency
// anatomy of every major fault the run recorded.
type Ext6Row struct {
	System   SystemKind
	Fraction float64
	Anatomy  telemetry.Anatomy
}

// ext6Fractions sweeps the paging-pressure regimes; 100 % is omitted — a
// fully cached run has almost no faults to attribute.
var ext6Fractions = []float64{0.125, 0.25, 0.5}

// ExtAnatomy runs a sequential write-then-read sweep on Fastswap and two
// DiLOS flavours under its own flight recorders (independent of the
// Telemetry global) and attributes every major fault to stages.
func ExtAnatomy(sc Scale) []Ext6Row {
	pages := sc.SeqPages / 4
	if pages < 1024 {
		pages = 1024
	}
	systems := []SystemKind{SysFastswap, SysDiLOSNone, SysDiLOSRA}
	var rows []Ext6Row
	for _, frac := range ext6Fractions {
		for _, kind := range systems {
			rows = append(rows, Ext6Row{
				System:   kind,
				Fraction: frac,
				Anatomy:  runAnatomy(kind, pages, frac),
			})
		}
	}
	return rows
}

// runAnatomy boots one system with a recorder sized to hold every fault of
// the run (write sweep + read sweep + readahead-induced minors) and
// returns the recording's fault anatomy. A -cores override (CoreCount > 1)
// splits the sweep into one worker per core over disjoint slices, so the
// anatomy reflects concurrent fault handlers — the regime where the
// sharded manager and the wide-lock baseline diverge.
func runAnatomy(kind SystemKind, pages uint64, frac float64) telemetry.Anatomy {
	rec := telemetry.NewRecorder(int(3*pages) + 1024)
	eng := sim.New()
	workers := 1
	if CoreCount > 1 {
		workers = CoreCount
	}
	slice := func(c int) (lo, n uint64) {
		per := pages / uint64(workers)
		lo = uint64(c) * per
		hi := lo + per
		if c == workers-1 {
			hi = pages
		}
		return lo, hi - lo
	}
	sweep := func(sp space.Space, base uint64, c int) {
		lo, n := slice(c)
		workloads.SeqWrite(sp, base+lo*core.PageSize, n)
		workloads.SeqRead(sp, base+lo*core.PageSize, n)
	}
	switch kind {
	case SysFastswap:
		cores := 4
		if CoreCount > 0 {
			cores = CoreCount
		}
		sys := fastswap.New(eng, fastswap.Config{
			CacheFrames: frames(pages, frac),
			Cores:       cores,
			RemoteBytes: pages*fastswap.PageSize + (64 << 20),
			Fabric:      fabric.DefaultParams(),
			Tel:         rec,
			SampleEvery: SampleEvery,
		})
		sys.Start()
		if workers == 1 {
			sys.Launch("seq", 0, func(sp *fastswap.FSProc) {
				base, err := sys.MmapDDC(pages)
				if err != nil {
					panic(err)
				}
				sweep(sp, base, 0)
			})
		} else {
			base, err := sys.MmapDDC(pages)
			if err != nil {
				panic(err)
			}
			for c := 0; c < workers; c++ {
				c := c
				sys.Launch(fmt.Sprintf("seq%d", c), c, func(sp *fastswap.FSProc) { sweep(sp, base, c) })
			}
		}
		eng.Run()
		collect("ext6/"+string(kind)+"/"+FracLabel(frac), sys)
	default:
		cfg := core.Config{
			CacheFrames: frames(pages, frac),
			Cores:       4,
			RemoteBytes: pages*core.PageSize + (64 << 20),
			Fabric:      fabric.DefaultParams(),
			Prefetcher:  pfFor(kind),
			Batch:       Batch,
			Tel:         rec,
			SampleEvery: SampleEvery,
		}
		applyCores(&cfg)
		sys := core.New(eng, cfg)
		sys.Start()
		if workers == 1 {
			sys.Launch("seq", 0, func(sp *core.DDCProc) {
				base, err := sys.MmapDDC(pages)
				if err != nil {
					panic(err)
				}
				sweep(sp, base, 0)
			})
		} else {
			base, err := sys.MmapDDC(pages)
			if err != nil {
				panic(err)
			}
			for c := 0; c < workers; c++ {
				c := c
				sys.Launch(fmt.Sprintf("seq%d", c), c, func(sp *core.DDCProc) { sweep(sp, base, c) })
			}
		}
		eng.Run()
		collect("ext6/"+string(kind)+"/"+FracLabel(frac), sys)
	}
	return telemetry.FaultAnatomy(rec)
}
